"""Implementation of the PyGB-style DSL.

The DSL wraps :mod:`repro.graphblas` objects and dispatches overloaded
operators into the core operations, with the active semiring and descriptor
flags drawn from a thread-local context stack — PyGB's "dynamic execution"
(section II.D) without its C++ code generation, which our NumPy back-end
replaces.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..graphblas import Descriptor, Matrix as _CoreMatrix, Vector as _CoreVector
from ..graphblas import operations as _ops
from ..graphblas import plan as _plan
from ..graphblas.errors import InvalidValue
from ..graphblas.semiring import Semiring
from ..graphblas.types import lookup_type

__all__ = ["Matrix", "Vector", "Replace", "Structural", "ambient_semiring"]

_state = threading.local()


def _stack() -> list:
    if not hasattr(_state, "stack"):
        _state.stack = []
    return _state.stack


def ambient_semiring(default: str = "PLUS_TIMES") -> Semiring:
    """The innermost active semiring, or ``default``."""
    for entry in reversed(_stack()):
        if isinstance(entry, Semiring):
            return entry
    return _plan.resolve_semiring(default)


def _ambient_desc() -> Descriptor:
    d = Descriptor()
    for entry in _stack():
        if isinstance(entry, Descriptor):
            d = d & entry
    return d


class _Context:
    """A with-able piece of ambient state (semiring or descriptor flag)."""

    def __init__(self, payload):
        self.payload = payload

    def __enter__(self):
        _stack().append(self.payload)
        return self.payload

    def __exit__(self, *exc):
        _stack().pop()
        return False


def semiring_context(name: str) -> _Context:
    """Context manager selecting a named semiring for the enclosed block.

    Resolution goes through the shared :mod:`repro.graphblas.plan`
    resolvers, so the DSL accepts exactly the specs the core operations
    accept (names, ``Semiring`` objects) and raises the same errors.
    """
    return _Context(_plan.resolve_semiring(name))


LogicalSemiring = semiring_context("LOR_LAND")
PlusTimesSemiring = semiring_context("PLUS_TIMES")
MinPlusSemiring = semiring_context("MIN_PLUS")
MaxPlusSemiring = semiring_context("MAX_PLUS")
MinTimesSemiring = semiring_context("MIN_TIMES")
MinFirstSemiring = semiring_context("MIN_FIRST")
MinSecondSemiring = semiring_context("MIN_SECOND")
MaxMinSemiring = semiring_context("MAX_MIN")
PlusMinSemiring = semiring_context("PLUS_MIN")
AnySecondiSemiring = semiring_context("ANY_SECONDI")

Replace = _Context(Descriptor(replace=True))
Structural = _Context(Descriptor(structural_mask=True))


@dataclass
class _Complemented:
    """``~x``: a complemented mask."""

    inner: "Matrix | Vector"


@dataclass
class _Transposed:
    """``A.T``: a lazy transpose usable in products."""

    inner: "Matrix"

    def __matmul__(self, other):
        if isinstance(other, Vector):
            return _MatVec(self.inner, other, transpose=True)
        if isinstance(other, (Matrix, _Transposed)):
            return _MatMat(self.inner, other, transpose_a=True)
        return NotImplemented

    @property
    def T(self) -> "Matrix":
        return self.inner


@dataclass
class _MatVec:
    """Unevaluated ``A @ u`` (or ``A.T @ u``)."""

    A: "Matrix"
    u: "Vector"
    transpose: bool = False

    def evaluate(self, out: "Vector", mask, desc) -> "Vector":
        d = desc.with_(transpose_a=desc.transpose_a ^ self.transpose)
        _ops.mxv(
            out._obj,
            self.A._obj,
            self.u._obj,
            ambient_semiring(),
            mask=mask,
            desc=d,
        )
        return out

    def new(self) -> "Vector":
        sr = ambient_semiring()
        size = self.A._obj.ncols if self.transpose else self.A._obj.nrows
        out_type = sr.out_type(self.A._obj.dtype, self.u._obj.dtype)
        out = Vector(_CoreVector(out_type, size))
        return self.evaluate(out, None, _ambient_desc())


@dataclass
class _MatMat:
    """Unevaluated ``A @ B``."""

    A: "Matrix"
    B: "Matrix | _Transposed"
    transpose_a: bool = False

    def evaluate(self, out: "Matrix", mask, desc) -> "Matrix":
        B = self.B
        transpose_b = False
        if isinstance(B, _Transposed):
            transpose_b = True
            B = B.inner
        d = desc.with_(
            transpose_a=desc.transpose_a ^ self.transpose_a,
            transpose_b=desc.transpose_b ^ transpose_b,
        )
        _ops.mxm(
            out._obj, self.A._obj, B._obj, ambient_semiring(), mask=mask, desc=d
        )
        return out

    def new(self) -> "Matrix":
        sr = ambient_semiring()
        B = self.B.inner if isinstance(self.B, _Transposed) else self.B
        nrows = self.A._obj.ncols if self.transpose_a else self.A._obj.nrows
        ncols = (
            B._obj.nrows if isinstance(self.B, _Transposed) else B._obj.ncols
        )
        out_type = sr.out_type(self.A._obj.dtype, B._obj.dtype)
        out = Matrix(_CoreMatrix(out_type, nrows, ncols))
        return self.evaluate(out, None, _ambient_desc())


class _MaskedTarget:
    """``w[mask]``: an assignment target under a mask."""

    def __init__(self, target, mask_spec):
        self.target = target
        if isinstance(mask_spec, _Complemented):
            self.mask = mask_spec.inner
            self.complement = True
        else:
            self.mask = mask_spec
            self.complement = False

    def _desc(self) -> Descriptor:
        d = _ambient_desc()
        if self.complement:
            d = d.with_(complement_mask=True)
        return d

    def __setitem__(self, key, value) -> None:
        """``w[mask][:] = scalar`` — masked constant assign over all indices."""
        if key != slice(None):
            raise InvalidValue("masked constant assign expects [:]")
        _ops.assign(
            self.target._obj,
            value,
            _ops.ALL,
            *(() if isinstance(self.target, Vector) else (_ops.ALL,)),
            mask=None if self.mask is None else self.mask._obj,
            desc=self._desc(),
        )

    def assign(self, value) -> None:
        mask = None if self.mask is None else self.mask._obj
        d = self._desc()
        if isinstance(value, (_MatVec, _MatMat)):
            value.evaluate(self.target, mask, d)
        elif isinstance(value, (Matrix, Vector)):
            if isinstance(value, Vector):
                ti, tv = value._obj.extract_tuples()
                from ..graphblas.mask import write_vector

                write_vector(self.target._obj, ti, tv, mask=mask, desc=d)
            else:
                tr, tc, tv = value._obj.extract_tuples()
                from ..graphblas.mask import write_matrix

                write_matrix(self.target._obj, tr, tc, tv, mask=mask, desc=d)
        else:
            self[:] = value


def _is_mask_spec(key) -> bool:
    return isinstance(key, (Matrix, Vector, _Complemented))


class Vector:
    """DSL vector: wraps a core Vector; ``v.nvals``, ``~v``, ``v[mask]``."""

    __slots__ = ("_obj",)

    def __init__(self, obj: _CoreVector):
        self._obj = obj

    @classmethod
    def new(cls, dtype, size: int) -> "Vector":
        return cls(_CoreVector(lookup_type(dtype), size))

    @classmethod
    def from_coo(cls, indices, values, **kw) -> "Vector":
        return cls(_CoreVector.from_coo(indices, values, **kw))

    @property
    def nvals(self) -> int:
        return self._obj.nvals

    @property
    def size(self) -> int:
        return self._obj.size

    def dup(self) -> "Vector":
        return Vector(self._obj.dup())

    def clear(self) -> "Vector":
        self._obj.clear()
        return self

    def to_dense(self, fill=0):
        return self._obj.to_dense(fill)

    def __invert__(self) -> _Complemented:
        return _Complemented(self)

    def __getitem__(self, key):
        if _is_mask_spec(key):
            return _MaskedTarget(self, key)
        return self._obj.extract_element(key)

    def __setitem__(self, key, value) -> None:
        if _is_mask_spec(key):
            _MaskedTarget(self, key).assign(value)
        elif key == slice(None):
            _ops.assign(self._obj, value, _ops.ALL, desc=_ambient_desc())
        else:
            self._obj.set_element(key, value)

    def __add__(self, other: "Vector") -> "Vector":
        out = Vector(_CoreVector(self._obj.dtype, self._obj.size))
        _ops.ewise_add(
            out._obj, self._obj, other._obj, ambient_semiring().add.op
        )
        return out

    def __mul__(self, other: "Vector") -> "Vector":
        out = Vector(_CoreVector(self._obj.dtype, self._obj.size))
        _ops.ewise_mult(
            out._obj, self._obj, other._obj, ambient_semiring().mult
        )
        return out

    def reduce(self, op="PLUS"):
        return _ops.reduce_scalar(self._obj, op)

    def apply(self, op, **kw) -> "Vector":
        out = Vector(_CoreVector(self._obj.dtype, self._obj.size))
        _ops.apply(out._obj, self._obj, op, **kw)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"pygb.{self._obj!r}"


class Matrix:
    """DSL matrix: wraps a core Matrix; ``A.T``, ``A @ x``, ``A[mask]``."""

    __slots__ = ("_obj",)

    def __init__(self, obj: _CoreMatrix):
        self._obj = obj

    @classmethod
    def new(cls, dtype, nrows: int, ncols: int) -> "Matrix":
        return cls(_CoreMatrix(lookup_type(dtype), nrows, ncols))

    @classmethod
    def from_coo(cls, rows, cols, values, **kw) -> "Matrix":
        return cls(_CoreMatrix.from_coo(rows, cols, values, **kw))

    @property
    def T(self) -> _Transposed:
        return _Transposed(self)

    @property
    def nvals(self) -> int:
        return self._obj.nvals

    @property
    def shape(self):
        return self._obj.shape

    def dup(self) -> "Matrix":
        return Matrix(self._obj.dup())

    def to_dense(self, fill=0):
        return self._obj.to_dense(fill)

    def __invert__(self) -> _Complemented:
        return _Complemented(self)

    def __matmul__(self, other):
        if isinstance(other, Vector):
            return _MatVec(self, other)
        if isinstance(other, (Matrix, _Transposed)):
            return _MatMat(self, other)
        return NotImplemented

    def __add__(self, other: "Matrix") -> "Matrix":
        out = Matrix(_CoreMatrix(self._obj.dtype, *self._obj.shape))
        _ops.ewise_add(out._obj, self._obj, other._obj, ambient_semiring().add.op)
        return out

    def __mul__(self, other: "Matrix") -> "Matrix":
        out = Matrix(_CoreMatrix(self._obj.dtype, *self._obj.shape))
        _ops.ewise_mult(out._obj, self._obj, other._obj, ambient_semiring().mult)
        return out

    def __getitem__(self, key):
        if _is_mask_spec(key):
            return _MaskedTarget(self, key)
        return self._obj.extract_element(*key)

    def __setitem__(self, key, value) -> None:
        if _is_mask_spec(key):
            _MaskedTarget(self, key).assign(value)
        else:
            self._obj.set_element(*key, value)

    def reduce(self, op="PLUS"):
        return _ops.reduce_scalar(self._obj, op)

    def apply(self, op, **kw) -> "Matrix":
        out = Matrix(_CoreMatrix(self._obj.dtype, *self._obj.shape))
        _ops.apply(out._obj, self._obj, op, **kw)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"pygb.{self._obj!r}"
