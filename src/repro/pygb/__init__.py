"""PyGB-style Python DSL for the GraphBLAS (paper section II.D, Figure 2b).

PyGB's goal — reproduced here — is code that "closely tracks the notation
from the GraphBLAS math spec".  The level-BFS of Figure 2(b) runs against
this module essentially verbatim::

    from repro import pygb as gb

    def bfs(graph, frontier, levels):
        depth = 0
        while frontier.nvals > 0:
            depth += 1
            levels[frontier][:] = depth
            with gb.LogicalSemiring, gb.Replace:
                frontier[~levels] = graph.T @ frontier

The pieces:

* ``Matrix``/``Vector`` wrap the core objects and overload ``@`` (matrix
  product over the ambient semiring), ``+`` (eWiseAdd), ``*`` (eWiseMult),
  ``A.T`` (lazy transpose), and ``~x`` (complemented mask).
* ``with SomeSemiring:`` sets the ambient semiring; ``with Replace:`` sets
  the REPLACE descriptor; context state is a thread-local stack, so blocks
  nest.  A context object exists for every named built-in semiring
  (``LogicalSemiring``, ``PlusTimesSemiring``, ``MinPlusSemiring``, ...).
* ``w[mask] = expr`` evaluates ``expr`` into ``w`` under ``mask`` and the
  ambient descriptor; ``w[mask][:] = scalar`` is masked constant assign.
"""

from .dsl import (
    Matrix,
    Vector,
    Replace,
    Structural,
    ambient_semiring,
    semiring_context,
    LogicalSemiring,
    PlusTimesSemiring,
    MinPlusSemiring,
    MaxPlusSemiring,
    MinTimesSemiring,
    MinFirstSemiring,
    MinSecondSemiring,
    MaxMinSemiring,
    PlusMinSemiring,
    AnySecondiSemiring,
)

__all__ = [
    "Matrix",
    "Vector",
    "Replace",
    "Structural",
    "ambient_semiring",
    "semiring_context",
    "LogicalSemiring",
    "PlusTimesSemiring",
    "MinPlusSemiring",
    "MaxPlusSemiring",
    "MinTimesSemiring",
    "MinFirstSemiring",
    "MinSecondSemiring",
    "MaxMinSemiring",
    "PlusMinSemiring",
    "AnySecondiSemiring",
]
