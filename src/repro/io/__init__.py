"""Graph/matrix I/O utilities (paper section III: "a library of utilities
including loading matrices from disk in Matrix Market format").
"""

from .mmio import mmread, mmwrite
from .edgelist import read_edgelist, write_edgelist
from .binary import (
    load_graph_npz,
    load_matrix_npz,
    save_graph_npz,
    save_matrix_npz,
)
from .checkpoint import load_state, save_state

__all__ = [
    "mmread",
    "mmwrite",
    "read_edgelist",
    "write_edgelist",
    "load_matrix_npz",
    "save_matrix_npz",
    "load_graph_npz",
    "save_graph_npz",
    "save_state",
    "load_state",
]
