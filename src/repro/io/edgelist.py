"""Plain edge-list I/O: ``src dst [weight]`` per line, ``#`` comments.

The lowest-common-denominator interchange format (SNAP datasets etc.).
"""

from __future__ import annotations

import os

import numpy as np

from ..graphblas import faults, telemetry
from ..lagraph.graph import Graph, GraphKind

__all__ = ["read_edgelist", "write_edgelist"]


def read_edgelist(
    source,
    *,
    kind: GraphKind | str = GraphKind.DIRECTED,
    n: int | None = None,
    dtype=np.float64,
) -> Graph:
    """Parse an edge list into a :class:`~repro.lagraph.graph.Graph`."""
    if faults.ENABLED:
        faults.trip("io.read")
    if isinstance(source, (str, os.PathLike)) and os.path.exists(source):
        with open(source, "r", encoding="utf-8") as f:
            text = f.read()
    elif isinstance(source, str):
        text = source
    else:
        text = source.read()
    if telemetry.ENABLED:
        telemetry.tally("io.read", calls=1, bytes_moved=len(text))

    src, dst, w = [], [], []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith(("#", "%")):
            continue
        parts = line.split()
        src.append(int(parts[0]))
        dst.append(int(parts[1]))
        w.append(float(parts[2]) if len(parts) > 2 else 1.0)
    return Graph.from_edges(
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        np.asarray(w, dtype=dtype),
        n=n,
        kind=kind,
        dtype=dtype,
    )


def write_edgelist(target, graph: Graph, *, weights: bool = True) -> None:
    """Write a graph's adjacency entries one edge per line.

    Undirected graphs emit each edge once (upper-triangle convention).
    """
    if faults.ENABLED:
        faults.trip("io.write")
    rows, cols, vals = graph.A.extract_tuples()
    if graph.kind is GraphKind.UNDIRECTED:
        keep = rows <= cols
        rows, cols, vals = rows[keep], cols[keep], vals[keep]

    def _emit(f):
        f.write(f"# nodes {graph.n} edges {rows.size}\n")
        for i, j, v in zip(rows, cols, vals):
            if weights:
                f.write(f"{i} {j} {v}\n")
            else:
                f.write(f"{i} {j}\n")

    if telemetry.ENABLED:
        inner = _emit

        def _emit(f):
            from .mmio import _CountingWriter

            counter = _CountingWriter(f)
            inner(counter)
            telemetry.tally("io.write", calls=1, bytes_moved=counter.n)

    if isinstance(target, (str, os.PathLike)):
        with open(target, "w", encoding="utf-8") as f:
            _emit(f)
    else:
        _emit(target)
