"""Atomic serialization of iterative-algorithm loop state.

The governor's checkpoint/resume path (:class:`repro.graphblas.governor.
Checkpoint`) snapshots an algorithm's loop-carried state — frontier /
parent / rank containers plus scalar counters — into a single ``.npz``
file.  The file holds one JSON ``__manifest__`` describing every entry
(kind, shape, dtype) next to the raw index/value arrays, written in the
same ``Ap``/``Ai``/``Ax`` layout as :mod:`repro.io.binary` so a resumed
matrix reconstructs the identical storage structure.

Writes are atomic: the payload goes to a temp file in the same directory
and is moved into place with ``os.replace``, so a crash (or injected
``io.write`` fault) mid-save leaves the previous snapshot intact —
verified by the resilience suite.
"""

from __future__ import annotations

import json
import os

import numpy as np

from ..graphblas import Matrix, Vector, faults, telemetry
from ..graphblas.errors import InvalidValue
from ..graphblas.io_move import export_matrix, import_matrix
from ..graphblas.types import lookup_type

__all__ = ["save_state", "load_state", "atomic_write_npz", "FORMAT_VERSION"]

FORMAT_VERSION = 1

#: separator between a state key and its array field inside the npz
_SEP = "::"


def atomic_write_npz(path, arrays: dict) -> int:
    """Write ``arrays`` to ``path`` as one compressed npz, atomically.

    The payload goes to a temp file in the same directory and is moved
    into place with ``os.replace``, so a crash (or an injected
    ``io.write`` fault, tripped here) mid-save leaves either the previous
    file or nothing — never a torn write.  Shared by checkpoints and the
    tile spill pools (:class:`repro.graphblas.tiled.SpillPool`).  Returns
    the final file size in bytes.
    """
    if faults.ENABLED:
        faults.trip("io.write")
    path = str(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as f:
            np.savez_compressed(f, **arrays)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - only on write failure
            os.unlink(tmp)
    return int(os.path.getsize(path))


def _check_key(key) -> str:
    if not isinstance(key, str) or not key:
        raise InvalidValue(f"state keys must be non-empty strings, got {key!r}")
    if _SEP in key:
        raise InvalidValue(f"state key {key!r} may not contain {_SEP!r}")
    return key


def save_state(path, state: dict) -> None:
    """Atomically serialize a state dict to ``path``.

    Values may be :class:`~repro.graphblas.matrix.Matrix`,
    :class:`~repro.graphblas.vector.Vector`, or JSON-native scalars
    (bool/int/float/str, including their NumPy forms).  Containers are
    copied out non-destructively.
    """
    manifest: dict = {"version": FORMAT_VERSION, "entries": {}}
    payload: dict = {}
    for key, val in state.items():
        _check_key(key)
        if isinstance(val, Matrix):
            ex = export_matrix(val.dup())
            manifest["entries"][key] = {
                "kind": "matrix", "format": ex.format, "nrows": ex.nrows,
                "ncols": ex.ncols, "dtype": ex.dtype.name,
            }
            payload[f"{key}{_SEP}Ap"] = ex.Ap
            payload[f"{key}{_SEP}Ai"] = ex.Ai
            payload[f"{key}{_SEP}Ax"] = ex.Ax
            if ex.Ah is not None:
                payload[f"{key}{_SEP}Ah"] = ex.Ah
        elif isinstance(val, Vector):
            idx, vals = val.extract_tuples()
            manifest["entries"][key] = {
                "kind": "vector", "size": int(val.size),
                "dtype": val.dtype.name,
            }
            payload[f"{key}{_SEP}i"] = idx
            payload[f"{key}{_SEP}v"] = vals
        else:
            if isinstance(val, np.generic):
                val = val.item()
            if not isinstance(val, (bool, int, float, str)):
                raise InvalidValue(
                    f"cannot checkpoint {key!r}: unsupported type "
                    f"{type(val).__name__}"
                )
            manifest["entries"][key] = {"kind": "scalar", "value": val}
    payload["__manifest__"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    ).copy()

    nbytes = atomic_write_npz(path, payload)
    if telemetry.ENABLED:
        telemetry.tally("io.write", calls=1, bytes_moved=nbytes)


def load_state(path) -> dict:
    """Reconstruct a state dict saved by :func:`save_state`."""
    if faults.ENABLED:
        faults.trip("io.read")
    state: dict = {}
    nbytes = 0
    with np.load(str(path), allow_pickle=False) as z:
        if "__manifest__" not in z.files:
            raise InvalidValue(f"{path!r} is not a checkpoint file")
        manifest = json.loads(bytes(z["__manifest__"]).decode("utf-8"))
        if manifest.get("version") != FORMAT_VERSION:
            raise InvalidValue(
                f"checkpoint {path!r} has version {manifest.get('version')}, "
                f"expected {FORMAT_VERSION}"
            )
        for key, ent in manifest["entries"].items():
            kind = ent["kind"]
            if kind == "matrix":
                Ah_key = f"{key}{_SEP}Ah"
                A = import_matrix(
                    format=ent["format"],
                    nrows=int(ent["nrows"]),
                    ncols=int(ent["ncols"]),
                    dtype=ent["dtype"],
                    Ap=z[f"{key}{_SEP}Ap"],
                    Ai=z[f"{key}{_SEP}Ai"],
                    Ax=z[f"{key}{_SEP}Ax"],
                    Ah=z[Ah_key] if Ah_key in z.files else None,
                    copy=True,
                    check=True,
                )
                nbytes += int(A.nbytes)
                state[key] = A
            elif kind == "vector":
                idx = z[f"{key}{_SEP}i"]
                vals = z[f"{key}{_SEP}v"]
                dt = lookup_type(ent["dtype"])
                # dup=None: indices are already unique; avoids any
                # dup-reduction reordering so resume is bit-identical.
                v = Vector.from_coo(idx, vals, size=int(ent["size"]),
                                    dtype=dt, dup=None)
                nbytes += int(idx.nbytes + vals.nbytes)
                state[key] = v
            elif kind == "scalar":
                state[key] = ent["value"]
            else:
                raise InvalidValue(
                    f"checkpoint entry {key!r} has unknown kind {kind!r}"
                )
    if telemetry.ENABLED:
        telemetry.tally("io.read", calls=1, bytes_moved=int(nbytes))
    return state
