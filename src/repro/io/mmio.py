"""Matrix Market exchange format (Boisvert, Pozo & Remington [29]).

Implements the coordinate and array formats with general / symmetric /
skew-symmetric symmetry, real / integer / pattern fields — the subset in
actual use across SuiteSparse collection graph matrices.  Written from the
NIST format specification; no scipy dependency.
"""

from __future__ import annotations

import io
import os

import numpy as np

from ..graphblas import Matrix, faults, telemetry
from ..graphblas.errors import InvalidValue

__all__ = ["mmread", "mmwrite"]

_FIELDS = ("real", "integer", "pattern", "complex")
_SYMMETRIES = ("general", "symmetric", "skew-symmetric", "hermitian")


def mmread(source) -> Matrix:
    """Read a Matrix Market file (path, file object, or string contents)."""
    if isinstance(source, (str, os.PathLike)) and os.path.exists(source):
        with open(source, "r", encoding="utf-8") as f:
            return _parse(f)
    if isinstance(source, str):
        return _parse(io.StringIO(source))
    return _parse(source)


def _parse(f) -> Matrix:
    A = _parse_body(f)
    if telemetry.ENABLED:
        telemetry.tally("io.read", calls=1, bytes_moved=int(A.nbytes))
    return A


def _parse_body(f) -> Matrix:
    if faults.ENABLED:
        faults.trip("io.read")
    header = f.readline().strip().split()
    if len(header) < 5 or header[0] != "%%MatrixMarket" or header[1].lower() != "matrix":
        raise InvalidValue("not a MatrixMarket matrix file")
    layout = header[2].lower()
    field = header[3].lower()
    symmetry = header[4].lower()
    if layout not in ("coordinate", "array"):
        raise InvalidValue(f"unsupported layout {layout!r}")
    if field not in _FIELDS or field == "complex":
        raise InvalidValue(f"unsupported field {field!r}")
    if symmetry not in _SYMMETRIES or symmetry == "hermitian":
        raise InvalidValue(f"unsupported symmetry {symmetry!r}")

    line = f.readline()
    while line.startswith("%") or not line.strip():
        line = f.readline()
    dims = line.split()

    if layout == "coordinate":
        nrows, ncols, nnz = int(dims[0]), int(dims[1]), int(dims[2])
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=np.float64)
        k = 0
        for line in f:
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            parts = line.split()
            rows[k] = int(parts[0]) - 1  # 1-based on disk
            cols[k] = int(parts[1]) - 1
            if field == "pattern":
                vals[k] = 1.0
            else:
                vals[k] = float(parts[2])
            k += 1
        if k != nnz:
            raise InvalidValue(f"expected {nnz} entries, found {k}")
        dtype = np.int64 if field == "integer" else np.float64
        if symmetry in ("symmetric", "skew-symmetric"):
            # mirror the stored lower triangle across the diagonal
            off = rows != cols
            all_r = np.concatenate([rows, cols[off]])
            all_c = np.concatenate([cols, rows[off]])
            all_v = np.concatenate(
                [vals, -vals[off] if symmetry == "skew-symmetric" else vals[off]]
            )
            return Matrix.from_coo(
                all_r, all_c, all_v.astype(dtype), nrows=nrows, ncols=ncols, dtype=dtype
            )
        return Matrix.from_coo(
            rows, cols, vals.astype(dtype), nrows=nrows, ncols=ncols, dtype=dtype
        )

    # array (dense, column-major on disk)
    nrows, ncols = int(dims[0]), int(dims[1])
    values = []
    for line in f:
        line = line.strip()
        if line and not line.startswith("%"):
            values.append(float(line.split()[0]))
    if symmetry == "general":
        if len(values) != nrows * ncols:
            raise InvalidValue("array entry count mismatch")
        dense = np.asarray(values).reshape((ncols, nrows)).T
    else:
        dense = np.zeros((nrows, ncols))
        k = 0
        for j in range(ncols):
            for i in range(j, nrows):
                dense[i, j] = values[k]
                if i != j:
                    dense[j, i] = -values[k] if symmetry == "skew-symmetric" else values[k]
                k += 1
    dtype = np.int64 if field == "integer" else np.float64
    return Matrix.from_dense(dense.astype(dtype), missing=None)


def mmwrite(target, A: Matrix, *, comment: str | None = None, field: str | None = None) -> None:
    """Write a Matrix in coordinate format (1-based, general symmetry)."""
    if faults.ENABLED:
        faults.trip("io.write")
    rows, cols, vals = A.extract_tuples()
    if field is None:
        field = (
            "pattern"
            if A.dtype.is_bool
            else ("integer" if A.dtype.is_integral else "real")
        )

    def _emit(f):
        f.write(f"%%MatrixMarket matrix coordinate {field} general\n")
        if comment:
            for ln in comment.splitlines():
                f.write(f"% {ln}\n")
        f.write(f"{A.nrows} {A.ncols} {rows.size}\n")
        for i, j, v in zip(rows, cols, vals):
            if field == "pattern":
                f.write(f"{i + 1} {j + 1}\n")
            elif field == "integer":
                f.write(f"{i + 1} {j + 1} {int(v)}\n")
            else:
                f.write(f"{i + 1} {j + 1} {float(v):.17g}\n")

    if telemetry.ENABLED:
        inner = _emit

        def _emit(f):
            counter = _CountingWriter(f)
            inner(counter)
            telemetry.tally("io.write", calls=1, bytes_moved=counter.n)

    if isinstance(target, (str, os.PathLike)):
        with open(target, "w", encoding="utf-8") as f:
            _emit(f)
    else:
        _emit(target)


class _CountingWriter:
    """Pass-through text sink that counts the bytes it forwards."""

    def __init__(self, f):
        self._f = f
        self.n = 0

    def write(self, s: str):
        self.n += len(s)
        return self._f.write(s)
