"""Binary (NumPy ``.npz``) round-trip of GraphBLAS matrices.

Fast local serialization preserving exact storage format — the library-
internal analogue of the O(1) import/export of paper section IV: the
arrays written are precisely the ``Ap``/``Ai``/``Ax`` (+``Ah``) the move
interface exposes, so save -> load reconstructs the identical structure.
"""

from __future__ import annotations

import numpy as np

from ..graphblas import Matrix, faults, telemetry
from ..graphblas.io_move import export_matrix, import_matrix

__all__ = ["save_matrix_npz", "load_matrix_npz", "save_graph_npz", "load_graph_npz"]


def save_matrix_npz(path, A: Matrix) -> None:
    """Serialize a matrix (non-destructively) to an ``.npz`` file."""
    if faults.ENABLED:
        faults.trip("io.write")
    ex = export_matrix(A.dup())  # export moves; dup keeps the caller's copy
    payload = {
        "format": np.asarray(ex.format),
        "nrows": np.asarray(ex.nrows),
        "ncols": np.asarray(ex.ncols),
        "dtype": np.asarray(ex.dtype.name),
        "Ap": ex.Ap,
        "Ai": ex.Ai,
        "Ax": ex.Ax,
    }
    if ex.Ah is not None:
        payload["Ah"] = ex.Ah
    if telemetry.ENABLED:
        telemetry.tally(
            "io.write",
            calls=1,
            bytes_moved=int(ex.Ap.nbytes + ex.Ai.nbytes + ex.Ax.nbytes),
        )
    np.savez_compressed(path, **payload)


def load_matrix_npz(path) -> Matrix:
    """Reconstruct a matrix saved by :func:`save_matrix_npz`."""
    if faults.ENABLED:
        faults.trip("io.read")
    with np.load(path, allow_pickle=False) as z:
        A = import_matrix(
            format=str(z["format"]),
            nrows=int(z["nrows"]),
            ncols=int(z["ncols"]),
            dtype=str(z["dtype"]),
            Ap=z["Ap"],
            Ai=z["Ai"],
            Ax=z["Ax"],
            Ah=z["Ah"] if "Ah" in z.files else None,
            copy=True,
            check=True,
        )
    if telemetry.ENABLED:
        telemetry.tally("io.read", calls=1, bytes_moved=int(A.nbytes))
    return A


def save_graph_npz(path, graph) -> None:
    """Serialize a :class:`~repro.lagraph.graph.Graph` (adjacency + kind)."""
    if faults.ENABLED:
        faults.trip("io.write")
    ex = export_matrix(graph.A.dup())
    payload = {
        "format": np.asarray(ex.format),
        "nrows": np.asarray(ex.nrows),
        "ncols": np.asarray(ex.ncols),
        "dtype": np.asarray(ex.dtype.name),
        "Ap": ex.Ap,
        "Ai": ex.Ai,
        "Ax": ex.Ax,
        "kind": np.asarray(graph.kind.value),
    }
    if ex.Ah is not None:
        payload["Ah"] = ex.Ah
    if telemetry.ENABLED:
        telemetry.tally(
            "io.write",
            calls=1,
            bytes_moved=int(ex.Ap.nbytes + ex.Ai.nbytes + ex.Ax.nbytes),
        )
    np.savez_compressed(path, **payload)


def load_graph_npz(path):
    """Reconstruct a graph saved by :func:`save_graph_npz`."""
    if faults.ENABLED:
        faults.trip("io.read")
    from ..lagraph.graph import Graph

    with np.load(path, allow_pickle=False) as z:
        A = import_matrix(
            format=str(z["format"]),
            nrows=int(z["nrows"]),
            ncols=int(z["ncols"]),
            dtype=str(z["dtype"]),
            Ap=z["Ap"],
            Ai=z["Ai"],
            Ax=z["Ax"],
            Ah=z["Ah"] if "Ah" in z.files else None,
            copy=True,
            check=True,
        )
        kind = str(z["kind"])
    if telemetry.ENABLED:
        telemetry.tally("io.read", calls=1, bytes_moved=int(A.nbytes))
    return Graph(A, kind)
