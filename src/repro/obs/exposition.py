"""Exposition sinks for the metrics registry.

Three ways out of :class:`repro.obs.registry.MetricsRegistry`:

* :func:`prometheus_text` — the Prometheus text exposition format
  (version 0.0.4): ``# HELP`` / ``# TYPE`` headers, escaped labels,
  cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count`` for
  histograms.  Scrape-ready: serve the string from any HTTP handler.
* :func:`json_snapshot` — the registry's nested snapshot (with p50/p90/
  p99 extracted) as a JSON string, for dashboards that want structure
  rather than samples.
* :class:`Emitter` — a daemon thread that appends one structured-log JSON
  line per interval (counters plus histogram summaries), the "metrics to
  stdout every 30 s" idiom for containers without a scraper.

:func:`check_prometheus_text` is a line-format linter used by the tests
and the CI metrics-smoke leg: it validates metric/label syntax, TYPE
consistency, histogram bucket monotonicity, and ``_count`` agreement.
"""

from __future__ import annotations

import json
import math
import re
import threading
import time

from .registry import MetricsRegistry, bucket_upper_bound

__all__ = [
    "prometheus_text",
    "json_snapshot",
    "check_prometheus_text",
    "Emitter",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_value(v: float) -> str:
    if v == math.inf:
        return "+Inf"
    if v == -math.inf:
        return "-Inf"
    f = float(v)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _fmt_labels(labels: tuple, extra: list | None = None) -> str:
    pairs = [(k, v) for k, v in labels]
    if extra:
        pairs += extra
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in pairs)
    return "{" + body + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    m = registry.merged()
    lines: list[str] = []

    def header(name: str, kind: str) -> None:
        declared, help_text = registry.meta(name)
        if declared != "untyped":
            kind = declared
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    by_name: dict[str, list] = {}
    for (name, labels), value in m["counters"].items():
        by_name.setdefault(name, []).append((labels, value))
    for name in sorted(by_name):
        header(name, "counter")
        for labels, value in sorted(by_name[name]):
            lines.append(f"{name}{_fmt_labels(labels)} {_fmt_value(value)}")

    by_name = {}
    for (name, labels), value in m["gauges"].items():
        by_name.setdefault(name, []).append((labels, value))
    for name in sorted(by_name):
        header(name, "gauge")
        for labels, value in sorted(by_name[name]):
            lines.append(f"{name}{_fmt_labels(labels)} {_fmt_value(value)}")

    by_name = {}
    for (name, labels), h in m["histograms"].items():
        by_name.setdefault(name, []).append((labels, h))
    for name in sorted(by_name):
        header(name, "histogram")
        for labels, h in sorted(by_name[name], key=lambda t: t[0]):
            cum = 0
            for e in sorted(h["buckets"]):
                cum += h["buckets"][e]
                le = _fmt_value(bucket_upper_bound(e))
                lines.append(
                    f"{name}_bucket{_fmt_labels(labels, [('le', le)])} {cum}"
                )
            lines.append(
                f"{name}_bucket{_fmt_labels(labels, [('le', '+Inf')])} {h['count']}"
            )
            lines.append(f"{name}_sum{_fmt_labels(labels)} {_fmt_value(h['sum'])}")
            lines.append(f"{name}_count{_fmt_labels(labels)} {h['count']}")

    return "\n".join(lines) + ("\n" if lines else "")


def json_snapshot(registry: MetricsRegistry, *, indent: int | None = None) -> str:
    """The registry snapshot (counters/gauges/histograms + percentiles)
    serialized as JSON."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


# --------------------------------------------------------------------------
# line-format checker
# --------------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)(?: (?P<ts>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>(?:[^"\\]|\\.)*)"'
)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def check_prometheus_text(text: str) -> list[str]:
    """Lint a Prometheus text exposition; returns a list of problems.

    Checks line syntax, metric/label name grammar, ``# TYPE`` values,
    duplicate series, histogram bucket monotonicity, and that each
    histogram's ``+Inf`` bucket equals its ``_count``.  An empty list
    means the exposition parses cleanly.
    """
    errors: list[str] = []
    types: dict[str, str] = {}
    seen: set[tuple] = set()
    buckets: dict[tuple, list[tuple[float, float]]] = {}
    counts: dict[tuple, float] = {}

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("TYPE", "HELP"):
                if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                    errors.append(f"line {lineno}: malformed {parts[1]} comment")
                elif parts[1] == "TYPE":
                    kind = parts[3] if len(parts) > 3 else ""
                    if kind not in ("counter", "gauge", "histogram",
                                    "summary", "untyped"):
                        errors.append(
                            f"line {lineno}: unknown TYPE {kind!r}"
                        )
                    types[parts[2]] = kind
            continue
        mm = _SAMPLE_RE.match(line)
        if mm is None:
            errors.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name = mm.group("name")
        label_text = mm.group("labels") or ""
        labels: list[tuple[str, str]] = []
        if label_text:
            pos = 0
            while pos < len(label_text):
                pm = _LABEL_PAIR_RE.match(label_text, pos)
                if pm is None:
                    errors.append(
                        f"line {lineno}: malformed labels {label_text!r}"
                    )
                    break
                labels.append((pm.group("key"), pm.group("val")))
                pos = pm.end()
                if pos < len(label_text):
                    if label_text[pos] != ",":
                        errors.append(
                            f"line {lineno}: malformed labels {label_text!r}"
                        )
                        break
                    pos += 1
        try:
            value = _parse_value(mm.group("value"))
        except ValueError:
            errors.append(f"line {lineno}: bad value {mm.group('value')!r}")
            continue
        series = (name, tuple(sorted(labels)))
        if series in seen:
            errors.append(f"line {lineno}: duplicate series {series}")
        seen.add(series)

        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types \
                    and types[name[: -len(suffix)]] == "histogram":
                base = name[: -len(suffix)]
                break
        if base != name and name.endswith("_bucket"):
            le = dict(labels).get("le")
            if le is None:
                errors.append(f"line {lineno}: _bucket without le label")
            else:
                key = (base, tuple(sorted(p for p in labels if p[0] != "le")))
                buckets.setdefault(key, []).append((_parse_value(le), value))
        elif base != name and name.endswith("_count"):
            counts[(base, tuple(sorted(labels)))] = value

    for key, pairs in buckets.items():
        pairs.sort(key=lambda t: t[0])
        cum = [v for _, v in pairs]
        if any(b < a for a, b in zip(cum, cum[1:])):
            errors.append(f"histogram {key[0]}{dict(key[1])}: buckets not cumulative")
        if pairs and pairs[-1][0] != math.inf:
            errors.append(f"histogram {key[0]}{dict(key[1])}: missing +Inf bucket")
        elif pairs:
            total = counts.get(key)
            if total is not None and total != pairs[-1][1]:
                errors.append(
                    f"histogram {key[0]}{dict(key[1])}: "
                    f"+Inf bucket {pairs[-1][1]} != _count {total}"
                )
    return errors


# --------------------------------------------------------------------------
# periodic structured-log emitter
# --------------------------------------------------------------------------

class Emitter:
    """Daemon thread appending one JSON metrics line per interval.

    Each line is ``{"ts": <unix seconds>, "kind": "metrics", "counters":
    {...}, "histograms": {name: {count, sum, p50, p90, p99}}}`` — compact
    enough for a log pipeline, complete enough to graph.  ``stream`` is
    any object with ``write``; default ``sys.stderr``.
    """

    def __init__(self, registry: MetricsRegistry, interval_s: float = 30.0,
                 stream=None):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.registry = registry
        self.interval_s = float(interval_s)
        self.stream = stream
        self.emitted = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _line(self) -> str:
        snap = self.registry.snapshot()
        counters = {
            name: sum(s["value"] for s in series)
            for name, series in snap["counters"].items()
        }
        hists = {}
        for name, series in snap["histograms"].items():
            count = sum(s["count"] for s in series)
            total = sum(s["sum"] for s in series)
            worst = max(series, key=lambda s: s["p99"], default=None)
            hists[name] = {
                "count": count,
                "sum": total,
                "p50": worst["p50"] if worst else 0.0,
                "p90": worst["p90"] if worst else 0.0,
                "p99": worst["p99"] if worst else 0.0,
            }
        return json.dumps(
            {"ts": time.time(), "kind": "metrics",
             "counters": counters, "histograms": hists},
            sort_keys=True,
        )

    def emit_once(self) -> None:
        """Write one metrics line now (also used by the timer loop)."""
        import sys

        stream = self.stream if self.stream is not None else sys.stderr
        stream.write(self._line() + "\n")
        self.emitted += 1

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.emit_once()
            except Exception:  # noqa: BLE001 - the emitter must never crash the host
                continue

    def start(self) -> "Emitter":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="obs-emitter", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, *, final_emit: bool = False) -> None:
        """Stop the loop; optionally flush one last line."""
        self._stop.set()
        t, self._thread = self._thread, None
        if t is not None:
            t.join(timeout=5.0)
        if final_emit:
            self.emit_once()
