"""Process-wide metrics registry: counters, gauges, log-bucketed histograms.

The telemetry subsystem (:mod:`repro.graphblas.telemetry`) is *per-thread*
and *per-session*: a collector is attached, a workload runs, a snapshot is
read, the collector is thrown away.  That is the right shape for tracing
one run, and the wrong shape for a long-lived service, where operators
need cumulative counters and latency percentiles aggregated across every
thread and request since process start — the fleet view Prometheus
scrapes.

This module is that durable layer.  One :class:`MetricsRegistry` lives for
the process; writers record into **per-thread shards** (a plain dict owned
by exactly one thread — no lock, no atomics on the hot path) and readers
merge all shards on demand.  Shards are retained after their thread exits
so counters never go backwards, which Prometheus requires of a counter.

Three instrument kinds:

``counter``
    Monotonic float/int total (``graphblas_ops_total``).  ``inc`` only.
``gauge``
    Last-written value, or a *callback* gauge evaluated at read time
    (kernel-cache occupancy, pool size).  Gauges are registry-level and
    lightly locked — they are set rarely, read at scrape time.
``histogram``
    Log2-bucketed distribution (sum, count, sparse ``exp -> count``
    buckets).  One ``frexp`` per observation; p50/p90/p99 are extracted
    at read time by geometric interpolation inside the winning bucket.
    Log2 buckets cover nanoseconds to hours (or bytes to tebibytes)
    with ~50 buckets and bounded relative error, the same trick as
    HdrHistogram/DDSketch at a fraction of the machinery.

Everything here is engine-agnostic: the GraphBLAS-specific metric names
are produced by :mod:`repro.obs.sink`, which translates the telemetry
event stream into these instruments.
"""

from __future__ import annotations

import math
import threading

__all__ = [
    "LabelSet",
    "MetricsRegistry",
    "percentiles_from_buckets",
    "bucket_upper_bound",
    "MIN_EXP",
    "MAX_EXP",
]

# Log2 bucket exponent range: 2**-21 s ~ 0.5 us up to 2**40 ~ 1 TiB /
# ~12.7 days.  Observations outside the range clamp to the end buckets.
MIN_EXP = -21
MAX_EXP = 40

#: canonical label encoding: a tuple of (key, value) pairs sorted by key.
LabelSet = tuple


def _labelset(labels) -> LabelSet:
    if not labels:
        return ()
    if type(labels) is tuple:
        # pre-canonical (sorted (key, value) str pairs) — the hot-path
        # contract used by repro.obs.sink's cached label tuples
        return labels
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def bucket_upper_bound(exp: int) -> float:
    """The inclusive upper bound of bucket ``exp`` (value <= 2**exp)."""
    return float(2.0 ** exp)


def _bucket_exp(value: float) -> int:
    """Bucket index for ``value``: smallest ``e`` with ``value <= 2**e``."""
    if value <= 0.0:
        return MIN_EXP
    m, e = math.frexp(value)  # value = m * 2**e, m in [0.5, 1)
    # frexp gives value <= 2**e with equality only at powers of two,
    # where m == 0.5 and e is one too high.
    if m == 0.5:
        e -= 1
    return min(max(e, MIN_EXP), MAX_EXP)


class _Hist:
    """One shard's histogram state (single-writer, merged on read)."""

    __slots__ = ("sum", "count", "buckets")

    def __init__(self):
        self.sum = 0.0
        self.count = 0
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        e = _bucket_exp(value)
        self.buckets[e] = self.buckets.get(e, 0) + 1


class _Shard:
    """Per-thread write buffer: plain dicts owned by exactly one thread."""

    __slots__ = ("counters", "hists")

    def __init__(self):
        self.counters: dict[tuple, float] = {}
        self.hists: dict[tuple, _Hist] = {}


def percentiles_from_buckets(buckets: dict[int, int], count: int,
                             qs=(0.5, 0.9, 0.99)) -> list[float]:
    """Percentile estimates from merged log2 buckets.

    Walks buckets in exponent order and geometrically interpolates inside
    the bucket containing each target rank, so estimates carry the
    bucket's bounded relative error and are monotonic in ``q``.
    """
    if count <= 0:
        return [0.0 for _ in qs]
    order = sorted(buckets)
    out = []
    for q in qs:
        target = q * count
        cum = 0
        value = bucket_upper_bound(order[-1])
        for e in order:
            n = buckets[e]
            if cum + n >= target:
                hi = bucket_upper_bound(e)
                lo = hi / 2.0
                frac = (target - cum) / n
                value = lo * (hi / lo) ** frac
                break
            cum += n
        out.append(value)
    return out


class MetricsRegistry:
    """A process-wide family of counters, gauges, and histograms.

    Writers call :meth:`counter_inc` / :meth:`observe` /
    :meth:`gauge_set`; each thread writes into its own shard, so the hot
    path is two dict operations with no lock.  Readers call
    :meth:`merged` (or the higher-level :func:`repro.obs.json_snapshot` /
    :func:`repro.obs.prometheus_text`), which sums every shard ever
    created — including shards of threads that have exited, so totals are
    cumulative for the life of the process.
    """

    def __init__(self):
        self._tls = threading.local()
        self._lock = threading.Lock()
        self._shards: list[_Shard] = []
        self._gauges: dict[tuple, float] = {}
        self._gauge_callbacks: dict[tuple, object] = {}
        #: metric metadata for exposition: name -> (kind, help, unit)
        self._meta: dict[str, tuple[str, str]] = {}

    # -- metadata ----------------------------------------------------------

    def declare(self, name: str, kind: str, help: str = "") -> None:
        """Register exposition metadata (idempotent; first call wins)."""
        self._meta.setdefault(name, (kind, help))

    def meta(self, name: str) -> tuple[str, str]:
        return self._meta.get(name, ("untyped", ""))

    # -- shard plumbing ----------------------------------------------------

    def _shard(self) -> _Shard:
        shard = getattr(self._tls, "shard", None)
        if shard is None:
            shard = _Shard()
            with self._lock:
                self._shards.append(shard)
            self._tls.shard = shard
        return shard

    # -- writing -----------------------------------------------------------

    def counter_inc(self, name: str, value: float = 1, labels=None) -> None:
        """Add ``value`` (must be >= 0) to a monotonic counter."""
        key = (name, _labelset(labels))
        c = self._shard().counters
        c[key] = c.get(key, 0) + value

    def observe(self, name: str, value: float, labels=None) -> None:
        """Record one observation into a log2-bucketed histogram."""
        key = (name, _labelset(labels))
        hists = self._shard().hists
        h = hists.get(key)
        if h is None:
            h = hists[key] = _Hist()
        h.observe(float(value))

    def gauge_set(self, name: str, value: float, labels: dict | None = None) -> None:
        """Set a gauge to ``value`` (last write wins, process-wide)."""
        key = (name, _labelset(labels))
        with self._lock:
            self._gauges[key] = float(value)

    def register_gauge(self, name: str, fn, labels: dict | None = None) -> None:
        """Register a callback gauge: ``fn()`` is evaluated at read time.

        Callback failures surface as a missing sample, never a scrape
        error — a broken gauge must not take down the exposition path.
        """
        key = (name, _labelset(labels))
        with self._lock:
            self._gauge_callbacks[key] = fn

    def unregister_gauge(self, name: str, labels: dict | None = None) -> None:
        key = (name, _labelset(labels))
        with self._lock:
            self._gauge_callbacks.pop(key, None)
            self._gauges.pop(key, None)

    # -- reading -----------------------------------------------------------

    def merged(self) -> dict:
        """Merge every shard into ``{"counters": ..., "gauges": ...,
        "histograms": ...}`` keyed by ``(name, labelset)``.

        Shard dicts are copied before iteration (``dict.copy`` is atomic
        under the GIL), so a merge racing live writers sees a consistent
        point-in-time view of each shard.
        """
        with self._lock:
            shards = list(self._shards)
            gauges = dict(self._gauges)
            callbacks = list(self._gauge_callbacks.items())

        counters: dict[tuple, float] = {}
        hists: dict[tuple, dict] = {}
        for shard in shards:
            for key, val in shard.counters.copy().items():
                counters[key] = counters.get(key, 0) + val
            for key, h in shard.hists.copy().items():
                agg = hists.get(key)
                if agg is None:
                    agg = hists[key] = {"sum": 0.0, "count": 0, "buckets": {}}
                agg["sum"] += h.sum
                agg["count"] += h.count
                for e, n in h.buckets.copy().items():
                    agg["buckets"][e] = agg["buckets"].get(e, 0) + n

        for key, fn in callbacks:
            try:
                gauges[key] = float(fn())
            except Exception:  # noqa: BLE001 - a broken gauge must not kill a scrape
                continue
        return {"counters": counters, "gauges": gauges, "histograms": hists}

    def snapshot(self) -> dict:
        """JSON-serializable view: nested by name, with percentiles.

        ``{"counters": {name: [{"labels": {...}, "value": v}, ...]},
        "gauges": {...}, "histograms": {name: [{"labels", "count", "sum",
        "p50", "p90", "p99", "buckets"}, ...]}}``
        """
        m = self.merged()
        out = {"counters": {}, "gauges": {}, "histograms": {}}
        for (name, labels), value in sorted(m["counters"].items()):
            out["counters"].setdefault(name, []).append(
                {"labels": dict(labels), "value": value}
            )
        for (name, labels), value in sorted(m["gauges"].items()):
            out["gauges"].setdefault(name, []).append(
                {"labels": dict(labels), "value": value}
            )
        for (name, labels), h in sorted(m["histograms"].items()):
            p50, p90, p99 = percentiles_from_buckets(h["buckets"], h["count"])
            out["histograms"].setdefault(name, []).append(
                {
                    "labels": dict(labels),
                    "count": h["count"],
                    "sum": h["sum"],
                    "p50": p50,
                    "p90": p90,
                    "p99": p99,
                    "buckets": {str(e): n for e, n in sorted(h["buckets"].items())},
                }
            )
        return out

    def reset(self) -> None:
        """Drop every shard, gauge, and callback (tests only).

        The thread-local handle is replaced wholesale, so every thread's
        next write transparently creates (and registers) a fresh shard.
        """
        with self._lock:
            self._shards.clear()
            self._gauges.clear()
            self._gauge_callbacks.clear()
        # a fresh local() orphans every thread's cached shard at once
        self._tls = threading.local()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        m = self.merged()
        return (
            f"MetricsRegistry(counters={len(m['counters'])}, "
            f"gauges={len(m['gauges'])}, histograms={len(m['histograms'])})"
        )
