"""Telemetry-stream -> metrics-registry translation, plus the slow-op log.

:mod:`repro.graphblas.telemetry` already has every interesting site
instrumented — Table-I op timers, engine decisions (SpGEMM method,
push/pull direction, kernel compiles, twin reuse), governor verdicts
(admit/reject/degrade/tiled/retry/cancel), spill pool traffic, backend
dispatch — but it only delivers those records to a per-thread collector.

:class:`MetricsSink` is the second consumer: installed into the telemetry
module by :func:`repro.obs.enable`, it receives the same stream (from
*every* thread, with or without a collector attached) and folds it into
the process-wide :class:`~repro.obs.registry.MetricsRegistry` under
stable, Prometheus-ready metric names.  Label sets are deliberately
low-cardinality — op names, backend names, event kinds — never indices,
tile keys, or paths.

The sink also owns the **slow-op log**: a bounded min-heap of the N
slowest ``plan.done`` records (the per-plan execution events emitted by
the backend dispatcher when observability is on), each carrying its
EXPLAIN fields — route, backend, estimated vs actual bytes, kernel-cache
hits, spill activity — so "what were my worst ops since startup" is one
call, no trace replay needed.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from functools import lru_cache

from .registry import MetricsRegistry

__all__ = ["MetricsSink", "SlowOpLog", "DEFAULT_SLOW_CAPACITY"]

DEFAULT_SLOW_CAPACITY = 32


# Pre-canonical label tuples for the hottest event shapes: the registry
# accepts them verbatim (no per-record dict build + sort), and the sets
# are low-cardinality by construction so the caches stay tiny.

@lru_cache(maxsize=4096)
def _labels1(key: str, value) -> tuple:
    return ((key, str(value)),)


@lru_cache(maxsize=4096)
def _labels2(k1: str, v1, k2: str, v2) -> tuple:
    # callers pass keys already in sorted order
    return ((k1, str(v1)), (k2, str(v2)))


class SlowOpLog:
    """Keep the ``capacity`` slowest plan records at or over a threshold.

    A min-heap ordered by duration: once full, a new record must beat the
    current fastest member to enter.  ``threshold_s`` filters noise at
    the source; 0.0 admits everything (capacity still bounds memory).
    """

    def __init__(self, threshold_s: float = 0.1,
                 capacity: int = DEFAULT_SLOW_CAPACITY):
        self.threshold_s = float(threshold_s)
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._heap: list[tuple[float, int, dict]] = []
        self._seq = itertools.count()

    def offer(self, seconds: float, record: dict) -> bool:
        """Consider one plan record; returns True if it was retained."""
        if seconds < self.threshold_s or self.capacity <= 0:
            return False
        entry = (float(seconds), next(self._seq), record)
        with self._lock:
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, entry)
                return True
            if entry[0] > self._heap[0][0]:
                heapq.heapreplace(self._heap, entry)
                return True
        return False

    def records(self) -> list[dict]:
        """The retained records, slowest first."""
        with self._lock:
            ordered = sorted(self._heap, key=lambda e: (-e[0], e[1]))
        return [dict(rec) for _, _, rec in ordered]

    def clear(self) -> None:
        with self._lock:
            self._heap.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)


class MetricsSink:
    """Fold telemetry records into a :class:`MetricsRegistry`.

    The method names mirror the telemetry module's recording surface
    (``record_op`` / ``tally`` / ``decision`` / ``instant`` / ``span`` /
    ``dropped``); :mod:`repro.graphblas.telemetry` forwards each record
    here when a sink is installed.
    """

    def __init__(self, registry: MetricsRegistry,
                 slow_log: SlowOpLog | None = None):
        self.registry = registry
        self.slow_log = slow_log if slow_log is not None else SlowOpLog()
        self._declare()

    def _declare(self) -> None:
        d = self.registry.declare
        d("graphblas_op_seconds", "histogram",
          "Wall time of Table-I operations by op name")
        d("graphblas_op_out_entries_total", "counter",
          "Stored entries written to operation outputs")
        d("graphblas_plan_seconds", "histogram",
          "Dispatcher-measured kernel time per executed OpPlan")
        d("graphblas_plan_bytes", "histogram",
          "Estimated and actual result bytes per executed OpPlan")
        d("graphblas_plan_route_total", "counter",
          "Executed OpPlans by dispatch route (direct/tiled/degraded)")
        d("graphblas_backend_dispatch_total", "counter",
          "OpPlans served, by backend and op")
        d("graphblas_backend_fallback_total", "counter",
          "Backend fallback hops (declined -> fallback)")
        d("graphblas_governor_events_total", "counter",
          "Execution-governor verdicts and actions by event kind")
        d("graphblas_spill_bytes_total", "counter",
          "Bytes moved by the tiled spill pools, by direction")
        d("graphblas_engine_events_total", "counter",
          "Performance-engine events (kernel compiles, twin reuse, ...)")
        d("graphblas_compile_seconds", "histogram",
          "Wall time of compiled-tier kernel JIT builds, by toolchain")
        d("graphblas_compiled_kernel_events_total", "counter",
          "Compiled-kernel cache activity (compile/hit) by toolchain")
        d("graphblas_compiled_early_exit_total", "counter",
          "Terminal-monoid early exits taken by compiled kernels, by op")
        d("graphblas_spgemm_method_total", "counter",
          "SpGEMM method selections")
        d("graphblas_mxv_direction_total", "counter",
          "Push/pull direction selections for mxv/vxm")
        d("graphblas_differential_divergence_total", "counter",
          "Differential-backend divergences detected (should stay 0)")
        d("graphblas_decisions_total", "counter",
          "Engine decision events not covered by a dedicated metric")
        d("graphblas_iteration_events_total", "counter",
          "Per-iteration instants recorded inside algorithm spans")
        d("graphblas_span_seconds", "histogram",
          "Algorithm span wall time by span name")
        d("graphblas_flops_total", "counter",
          "Semiring multiply-add operations tallied by the kernels")
        d("graphblas_bytes_moved_total", "counter",
          "Bytes moved by import/export and file I/O, by op")
        d("graphblas_calls_total", "counter",
          "Auxiliary call tallies (resolve cache, I/O) by op")
        d("graphblas_telemetry_dropped_total", "counter",
          "Telemetry events dropped at collector ring-buffer capacity")
        d("graphblas_slow_ops_total", "counter",
          "Plans admitted to the slow-op log")

    # -- the telemetry recording surface ----------------------------------

    def record_op(self, name: str, seconds: float,
                  out_nvals: int | None) -> None:
        self.registry.observe("graphblas_op_seconds", seconds, _labels1("op", name))
        if out_nvals:
            self.registry.counter_inc(
                "graphblas_op_out_entries_total", int(out_nvals), _labels1("op", name)
            )

    def tally(self, name: str, fields: dict) -> None:
        if name.startswith("governor."):
            return  # spill/reload traffic is counted from its decisions
        for field, value in fields.items():
            if field == "flops":
                self.registry.counter_inc(
                    "graphblas_flops_total", int(value), _labels1("op", name)
                )
            elif field == "bytes_moved":
                self.registry.counter_inc(
                    "graphblas_bytes_moved_total", int(value), _labels1("op", name)
                )
            elif field == "calls":
                self.registry.counter_inc(
                    "graphblas_calls_total", int(value), _labels1("op", name)
                )

    def decision(self, kind: str, detail: dict) -> None:
        inc = self.registry.counter_inc
        if kind == "plan.done":
            self._plan_done(detail)
            return
        if kind == "backend.dispatch":
            inc("graphblas_backend_dispatch_total", 1,
                _labels2("backend", detail.get("backend"),
                         "op", detail.get("op")))
            return
        if kind == "backend.fallback":
            inc("graphblas_backend_fallback_total", 1,
                _labels2("declined", detail.get("declined"),
                         "fallback", detail.get("fallback")))
            return
        if kind.startswith("governor."):
            event = kind.split(".", 1)[1]
            inc("graphblas_governor_events_total", 1, _labels1("event", event))
            if event in ("spill", "reload") and detail.get("bytes"):
                inc("graphblas_spill_bytes_total", int(detail["bytes"]),
                    _labels1("direction", event))
            return
        if kind.startswith("engine."):
            sub = kind.split(".", 1)[1]
            if "event" in detail:
                labels = _labels2("event", detail["event"], "kind", sub)
            else:
                labels = _labels1("kind", sub)
            inc("graphblas_engine_events_total", 1, labels)
            return
        if kind == "compiled.kernel":
            event = str(detail.get("event", "compile"))
            toolchain = detail.get("toolchain")
            inc("graphblas_compiled_kernel_events_total", 1,
                _labels2("event", event, "toolchain", toolchain))
            if event == "compile" and detail.get("seconds") is not None:
                self.registry.observe(
                    "graphblas_compile_seconds", float(detail["seconds"]),
                    _labels1("toolchain", toolchain))
            return
        if kind == "compiled.early_exit":
            terminated = int(detail.get("terminated", 0))
            if terminated:
                inc("graphblas_compiled_early_exit_total", terminated,
                    _labels1("op", detail.get("op")))
            return
        if kind == "spgemm.method":
            inc("graphblas_spgemm_method_total", 1,
                _labels1("method", detail.get("method")))
            return
        if kind == "mxv.direction":
            inc("graphblas_mxv_direction_total", 1,
                _labels1("direction", detail.get("direction")))
            return
        if kind == "differential.divergence":
            inc("graphblas_differential_divergence_total", 1,
                _labels1("op", detail.get("op")))
            return
        inc("graphblas_decisions_total", 1, _labels1("kind", kind))

    def _plan_done(self, detail: dict) -> None:
        op = str(detail.get("op"))
        backend = str(detail.get("backend"))
        route = str(detail.get("route", "direct"))
        seconds = float(detail.get("seconds", 0.0))
        self.registry.observe(
            "graphblas_plan_seconds", seconds,
            _labels2("backend", backend, "op", op),
        )
        self.registry.counter_inc(
            "graphblas_plan_route_total", 1, _labels2("op", op, "route", route)
        )
        est = detail.get("est_bytes")
        if est:
            self.registry.observe(
                "graphblas_plan_bytes", int(est),
                _labels2("kind", "estimated", "op", op),
            )
        actual = detail.get("actual_bytes")
        if actual:
            self.registry.observe(
                "graphblas_plan_bytes", int(actual),
                _labels2("kind", "actual", "op", op),
            )
        if seconds >= self.slow_log.threshold_s:
            record = dict(detail)
            record["wall_time"] = time.time()
            if self.slow_log.offer(seconds, record):
                self.registry.counter_inc(
                    "graphblas_slow_ops_total", 1, _labels1("op", op)
                )

    def instant(self, name: str, attrs: dict) -> None:
        self.registry.counter_inc(
            "graphblas_iteration_events_total", 1, _labels1("name", name)
        )

    def span(self, name: str, seconds: float) -> None:
        self.registry.observe("graphblas_span_seconds", seconds, _labels1("span", name))

    def dropped(self, event_type: str, count: int = 1) -> None:
        self.registry.counter_inc(
            "graphblas_telemetry_dropped_total", count, _labels1("type", event_type)
        )
