"""Production observability: process-wide metrics, exposition, EXPLAIN.

:mod:`repro.graphblas.telemetry` answers "what did *this* run on *this*
thread just do"; this package answers the fleet questions a long-lived
service is operated by — cumulative counters, latency/size percentiles
aggregated across every thread since process start, scrape endpoints,
and per-plan profiles:

* :func:`enable` installs a :class:`~repro.obs.sink.MetricsSink` into
  the telemetry fan-out; from then on every instrumented site in the
  engine (Table-I op timers, SpGEMM/push-pull decisions, governor
  verdicts, spill traffic, backend dispatch) feeds the process-wide
  :class:`~repro.obs.registry.MetricsRegistry` from all threads, with
  or without per-thread collectors.
* :func:`prometheus_text` / :func:`json_snapshot` / :func:`start_emitter`
  expose the registry (Prometheus scrape format, structured JSON, and a
  periodic JSON log line).
* :func:`explain` profiles one callable into a per-OpPlan report —
  route, backend, estimated vs actual bytes, kernel-cache and spill
  activity — and :func:`slow_ops` returns the N slowest plans seen
  since enable (ring-buffered with their full EXPLAIN records).

Environment (read at import through :mod:`repro.graphblas.envutil`):

* ``GRAPHBLAS_OBS`` — ``on`` auto-enables observability at import
  (default ``off``; :func:`enable` always works regardless).
* ``GRAPHBLAS_OBS_SLOW_MS`` — slow-op log threshold in milliseconds
  (default 100).
* ``GRAPHBLAS_OBS_SLOW_N`` — slow-op log capacity (default 32).
* ``GRAPHBLAS_OBS_EMIT_S`` — when > 0, :func:`enable` also starts the
  periodic emitter at this interval.

Typical service setup::

    from repro import obs

    obs.enable()                       # lock-cheap sharded counters
    ... serve traffic ...
    text = obs.prometheus_text()       # scrape endpoint body
    worst = obs.slow_ops()             # the 32 slowest plans, explained

Zero overhead while disabled: instrumented sites see the same single
module-attribute guard as plain telemetry
(``benchmarks/bench_obs_overhead.py`` holds this to noise).
"""

from __future__ import annotations

import threading

from ..graphblas import telemetry as _telemetry
from ..graphblas.envutil import env_float, env_int, env_on_off
from . import exposition as _exposition
from .explain import ExplainReport, explain
from .registry import MetricsRegistry
from .sink import DEFAULT_SLOW_CAPACITY, MetricsSink, SlowOpLog

__all__ = [
    "enable",
    "disable",
    "enabled",
    "registry",
    "counter_inc",
    "gauge_set",
    "observe",
    "register_gauge",
    "unregister_gauge",
    "snapshot",
    "json_snapshot",
    "prometheus_text",
    "check_prometheus_text",
    "start_emitter",
    "stop_emitter",
    "explain",
    "ExplainReport",
    "slow_ops",
    "clear_slow_ops",
    "set_slow_op_threshold",
    "slow_op_threshold",
    "reset",
    "MetricsRegistry",
    "MetricsSink",
    "SlowOpLog",
]

DEFAULT_SLOW_MS = 100.0

_lock = threading.Lock()
_registry = MetricsRegistry()
_slow_log = SlowOpLog(
    threshold_s=env_float("GRAPHBLAS_OBS_SLOW_MS", DEFAULT_SLOW_MS, minimum=0.0)
    / 1e3,
    capacity=env_int("GRAPHBLAS_OBS_SLOW_N", DEFAULT_SLOW_CAPACITY, minimum=0),
)
_sink: MetricsSink | None = None
_emitter: _exposition.Emitter | None = None

check_prometheus_text = _exposition.check_prometheus_text


def registry() -> MetricsRegistry:
    """The process-wide metrics registry (live even while disabled —
    direct :func:`counter_inc`/:func:`observe` calls always land)."""
    return _registry


# -- recording passthroughs (for application-level metrics) ------------------

def counter_inc(name: str, value: float = 1, **labels) -> None:
    """Add to a counter in the process registry."""
    _registry.counter_inc(name, value, labels or None)


def gauge_set(name: str, value: float, **labels) -> None:
    """Set a gauge in the process registry."""
    _registry.gauge_set(name, value, labels or None)


def observe(name: str, value: float, **labels) -> None:
    """Record a histogram observation in the process registry."""
    _registry.observe(name, value, labels or None)


def register_gauge(name: str, fn, **labels) -> None:
    """Register a callback gauge in the process registry: ``fn()`` is
    evaluated at read time (scrape/snapshot)."""
    _registry.register_gauge(name, fn, labels or None)


def unregister_gauge(name: str, **labels) -> None:
    """Drop a callback gauge (and any direct sample under the same key)."""
    _registry.unregister_gauge(name, labels or None)


# -- enable/disable -----------------------------------------------------------

def _engine_gauges() -> list[tuple[str, object, dict]]:
    """Collect-on-read gauges over engine-internal stats."""
    from ..graphblas import compiled, engine, plan

    gauges: list[tuple[str, object, dict]] = []
    for stat in ("hits", "misses", "evictions", "size", "capacity",
                 "unspecializable"):
        gauges.append((
            "graphblas_engine_kernel_cache",
            lambda s=stat: engine.kernel_cache_stats()[s],
            {"stat": stat},
        ))
    for stat in ("hits", "misses", "evictions", "size", "capacity",
                 "unsupported", "compile_seconds"):
        gauges.append((
            "graphblas_compiled_kernel_cache",
            lambda s=stat: compiled.cache_stats()[s],
            {"stat": stat},
        ))
    for kind in ("configured", "started", "live_threads"):
        gauges.append((
            "graphblas_engine_pool_workers",
            lambda k=kind: engine.pool_stats()[k],
            {"kind": kind},
        ))
    for stat in ("hits", "misses", "size"):
        gauges.append((
            "graphblas_plan_resolver_cache",
            lambda s=stat: plan.resolver_cache_stats()[s],
            {"stat": stat},
        ))
    from ..graphblas import updatelog

    gauges.append(("graphblas_pending_tuples", updatelog.pending_depth, {}))
    gauges.append(("graphblas_zombies", updatelog.zombie_depth, {}))
    return gauges


def enable(*, slow_ms: float | None = None,
           slow_capacity: int | None = None) -> MetricsRegistry:
    """Turn on process-wide metrics collection (idempotent).

    Installs the telemetry fan-out sink, registers the engine's
    collect-on-read gauges (kernel cache, thread pool, resolver cache),
    and optionally retunes the slow-op log.  Returns the registry.
    """
    global _sink
    if slow_ms is not None:
        _slow_log.threshold_s = float(slow_ms) / 1e3
    if slow_capacity is not None:
        _slow_log.capacity = int(slow_capacity)
    with _lock:
        if _sink is None:
            _sink = MetricsSink(_registry, _slow_log)
            _registry.declare("graphblas_engine_kernel_cache", "gauge",
                              "Kernel LRU stats, by stat label")
            _registry.declare("graphblas_compiled_kernel_cache", "gauge",
                              "Compiled-tier JIT kernel LRU stats, by "
                              "stat label")
            _registry.declare("graphblas_engine_pool_workers", "gauge",
                              "Shared engine thread pool occupancy")
            _registry.declare("graphblas_plan_resolver_cache", "gauge",
                              "Plan resolver memo-table stats")
            _registry.declare("graphblas_pending_tuples", "gauge",
                              "Unassembled update-log insertions across "
                              "live matrices/vectors")
            _registry.declare("graphblas_zombies", "gauge",
                              "Unassembled update-log deletions across "
                              "live matrices/vectors")
            for name, fn, labels in _engine_gauges():
                _registry.register_gauge(name, fn, labels)
            from ..graphblas import updatelog

            updatelog.enable_depth_tracking(True)
            _telemetry.set_sink(_sink)
    emit_s = env_float("GRAPHBLAS_OBS_EMIT_S", 0.0, minimum=0.0)
    if emit_s > 0 and _emitter is None:
        start_emitter(emit_s)
    return _registry


def disable() -> None:
    """Stop feeding the registry (its accumulated totals remain readable)."""
    global _sink
    stop_emitter()
    with _lock:
        if _sink is not None:
            _telemetry.set_sink(None)
            _sink = None
            from ..graphblas import updatelog

            updatelog.enable_depth_tracking(False)


def enabled() -> bool:
    """Whether the metrics sink is currently installed."""
    return _sink is not None


# -- exposition ---------------------------------------------------------------

def snapshot() -> dict:
    """Structured registry snapshot (counters/gauges/histograms, with
    p50/p90/p99 per histogram series)."""
    return _registry.snapshot()


def json_snapshot(*, indent: int | None = None) -> str:
    """The snapshot serialized as JSON."""
    return _exposition.json_snapshot(_registry, indent=indent)


def prometheus_text() -> str:
    """The registry in Prometheus text exposition format (scrape body)."""
    return _exposition.prometheus_text(_registry)


def start_emitter(interval_s: float = 30.0, stream=None) -> _exposition.Emitter:
    """Start (or return) the periodic structured-log metrics emitter."""
    global _emitter
    with _lock:
        if _emitter is None:
            _emitter = _exposition.Emitter(_registry, interval_s, stream)
            _emitter.start()
        return _emitter


def stop_emitter(*, final_emit: bool = False) -> None:
    """Stop the periodic emitter, optionally flushing one last line."""
    global _emitter
    with _lock:
        em, _emitter = _emitter, None
    if em is not None:
        em.stop(final_emit=final_emit)


# -- slow-op log --------------------------------------------------------------

def slow_ops() -> list[dict]:
    """The retained slowest plan records (slowest first), with their
    EXPLAIN fields (route, backend, est/actual bytes, spills, ...)."""
    return _slow_log.records()


def clear_slow_ops() -> None:
    _slow_log.clear()


def set_slow_op_threshold(slow_ms: float) -> None:
    """Plans at or above this duration enter the slow-op log."""
    _slow_log.threshold_s = float(slow_ms) / 1e3


def slow_op_threshold() -> float:
    """The current slow-op threshold in milliseconds."""
    return _slow_log.threshold_s * 1e3


def reset() -> None:
    """Disable, drop all metrics and slow-op records (tests only)."""
    disable()
    _registry.reset()
    _slow_log.clear()


if env_on_off("GRAPHBLAS_OBS", False):
    enable()
