"""EXPLAIN/profile: per-OpPlan execution reports for any op or algorithm.

``obs.explain(fn)`` runs ``fn`` under a telemetry capture with per-plan
dispatch events forced on, then correlates the event stream into one
record per executed :class:`~repro.graphblas.plan.OpPlan`:

* the **dispatch route** — which backend served it, or the governor's
  re-plan (``tiled`` spill execution, ``degraded`` to a lighter engine);
* the **admission verdict** with estimated vs actual result bytes, so
  the governor's footprint model is auditable against reality;
* **engine activity** — kernel-cache hits vs compiles, SpGEMM method,
  push/pull direction, and compiled-tier JIT cache traffic (the ``cmp``
  column);
* **spill traffic** — tiles, spills, reloads, and bytes through the
  plan's :class:`~repro.graphblas.tiled.SpillPool`;
* **wall time**, kernel-only (the dispatcher's measurement).

The correlation needs no plan IDs: telemetry events are appended in
program order by the executing thread, and every decision belonging to a
plan (admission, tile planning, method selection, pool summary) is
emitted before that plan's ``plan.done`` record, so a single in-order
sweep attributes each pending decision to the next completed plan.

The report renders as an aligned text table (``str(report)``) and a
machine-readable dict (``report.as_dict()``); algorithm spans and
top-level op timers ride along as secondary tables.
"""

from __future__ import annotations

from ..graphblas import telemetry

__all__ = ["explain", "ExplainReport"]

# decision kinds folded into the next plan.done record, and the fields
# lifted from each
_POOL_FIELDS = ("tiles", "spills", "reloads", "evictions",
                "spilled_bytes", "reloaded_bytes")


def _new_pending() -> dict:
    return {"decisions": [], "fallbacks": []}


def _fold(record: dict, pending: dict) -> dict:
    """Attach the pending pre-dispatch decisions to one plan record."""
    for kind, args in pending["decisions"]:
        if kind == "governor.pool":
            for f in _POOL_FIELDS:
                if f in args:
                    record[f] = record.get(f, 0) + int(args[f])
        elif kind == "governor.tile_plan":
            record["tile_dim"] = args.get("tile_dim")
        elif kind == "spgemm.method":
            record.setdefault("method", args.get("method"))
        elif kind == "mxv.direction":
            record["direction"] = args.get("direction")
        elif kind == "governor.admit":
            record.setdefault("est_bytes", args.get("est_bytes"))
        elif kind == "engine.workers":
            record["workers"] = args.get("admitted")
        elif kind == "compiled.kernel":
            record["compiled_toolchain"] = args.get("toolchain")
    if pending["fallbacks"]:
        record["fallbacks"] = list(pending["fallbacks"])
    return record


def _build_records(events: list[dict]) -> tuple[list[dict], dict, dict]:
    plans: list[dict] = []
    pending = _new_pending()
    ops: dict[str, dict] = {}
    spans: dict[str, dict] = {}
    # plan.done events that fall inside a stream.window span's time range
    # belong to that window (span events are appended at span exit but
    # carry their begin timestamp and duration)
    plan_ts: list[float] = []
    for ev in events:
        etype = ev["type"]
        name = ev["name"]
        args = ev.get("args", {})
        if etype == "decision":
            if name == "plan.done":
                plans.append(_fold(dict(args), pending))
                plan_ts.append(ev.get("ts", 0.0))
                pending = _new_pending()
            elif name == "backend.fallback":
                pending["fallbacks"].append(
                    f"{args.get('declined')}->{args.get('fallback')}"
                )
            else:
                pending["decisions"].append((name, args))
        elif etype == "op":
            agg = ops.setdefault(name, {"calls": 0, "seconds": 0.0})
            agg["calls"] += 1
            agg["seconds"] += ev.get("dur", 0.0) / 1e6
        elif etype == "span":
            agg = spans.setdefault(name, {"count": 0, "seconds": 0.0})
            agg["count"] += 1
            agg["seconds"] += ev.get("dur", 0.0) / 1e6
            if name == "stream.window" and "index" in args:
                lo = ev.get("ts", 0.0)
                hi = lo + ev.get("dur", 0.0)
                for r, t in zip(plans, plan_ts):
                    if lo <= t <= hi:
                        r.setdefault("window", args["index"])
    return plans, ops, spans


def _fmt_bytes(n) -> str:
    if n is None:
        return "-"
    n = int(n)
    for unit, scale in (("GiB", 1 << 30), ("MiB", 1 << 20), ("KiB", 1 << 10)):
        if n >= scale:
            return f"{n / scale:.1f}{unit}"
    return f"{n}B"


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in rows)
    return "\n".join(out)


class ExplainReport:
    """The outcome of one :func:`explain` capture.

    ``records`` holds one dict per executed plan (dispatch order);
    ``ops`` and ``spans`` aggregate the surrounding operation timers and
    algorithm spans; ``result`` is whatever the profiled callable
    returned.  ``str(report)`` renders the aligned tables.
    """

    def __init__(self, records, ops, spans, result):
        self.records = records
        self.ops = ops
        self.spans = spans
        self.result = result

    def as_dict(self) -> dict:
        return {
            "plans": [dict(r) for r in self.records],
            "ops": {k: dict(v) for k, v in self.ops.items()},
            "spans": {k: dict(v) for k, v in self.spans.items()},
        }

    def text(self) -> str:
        parts = []
        if self.records:
            headers = ["#", "op", "route", "backend", "method", "ms",
                       "est", "actual", "admission", "kcache", "cmp",
                       "spills", "reloads"]
            windowed = any("window" in r for r in self.records)
            if windowed:
                headers.append("win")
            rows = []
            for i, r in enumerate(self.records):
                hits = r.get("kernel_hits", 0)
                compiles = r.get("kernel_compiles", 0)
                if hits or compiles:
                    kcache = f"{hits}h/{compiles}c"
                else:
                    kcache = "-"
                chits = r.get("compiled_hits", 0)
                ccompiles = r.get("compiled_compiles", 0)
                if chits or ccompiles:
                    cmp_cell = f"{chits}h/{ccompiles}c"
                elif r.get("compiled_toolchain"):
                    cmp_cell = str(r["compiled_toolchain"])
                else:
                    cmp_cell = "-"
                rows.append([
                    str(i),
                    str(r.get("op", "?")),
                    str(r.get("route", "direct")),
                    str(r.get("backend", "-")),
                    str(r.get("method") or r.get("direction") or "-"),
                    f"{r.get('seconds', 0.0) * 1e3:.3f}",
                    _fmt_bytes(r.get("est_bytes")),
                    _fmt_bytes(r.get("actual_bytes")),
                    str(r.get("admission", "-")),
                    kcache,
                    cmp_cell,
                    str(r.get("spills", 0) or "-"),
                    str(r.get("reloads", 0) or "-"),
                ])
                if windowed:
                    w = r.get("window")
                    rows[-1].append("-" if w is None else str(w))
            parts.append("EXPLAIN: executed plans\n" + _table(headers, rows))
        else:
            parts.append("EXPLAIN: no plans executed")
        if self.spans:
            rows = [
                [name, str(v["count"]), f"{v['seconds'] * 1e3:.3f}"]
                for name, v in sorted(self.spans.items())
            ]
            parts.append("spans\n" + _table(["span", "count", "ms"], rows))
        if self.ops:
            rows = [
                [name, str(v["calls"]), f"{v['seconds'] * 1e3:.3f}"]
                for name, v in sorted(self.ops.items())
            ]
            parts.append("operations\n" + _table(["op", "calls", "ms"], rows))
        return "\n\n".join(parts)

    def __str__(self) -> str:
        return self.text()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExplainReport(plans={len(self.records)}, ops={len(self.ops)})"


def explain(fn, *args, max_events: int | None = None, **kwargs) -> ExplainReport:
    """Profile ``fn(*args, **kwargs)`` and report every executed OpPlan.

    Works standalone — observability need not be enabled; per-plan
    dispatch events are forced on for the duration via
    :func:`repro.graphblas.telemetry.plan_capture`.  Nested inside an
    outer telemetry ``collect`` the outer collector keeps every event;
    the report is built only from those recorded during this call.

    ::

        report = obs.explain(lambda: ops.mxm(C, A, B, "PLUS_TIMES"))
        print(report)             # aligned per-plan table
        report.records[0]["route"]   # "tiled" when the governor re-planned
    """
    kw = {} if max_events is None else {"max_events": max_events}
    with telemetry.plan_capture():
        with telemetry.collect(**kw) as col:
            start = len(col.events)
            result = fn(*args, **kwargs)
            events = list(col.events[start:])
    plans, ops, spans = _build_records(events)
    return ExplainReport(plans, ops, spans, result)
