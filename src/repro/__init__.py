"""LAGraph reproduction: graph algorithms on a complete Python GraphBLAS.

A full-scope reproduction of Mattson et al., "LAGraph: A Community Effort
to Collect Graph Algorithms Built on Top of the GraphBLAS" (IPDPSW 2019):

* :mod:`repro.graphblas` — a complete GraphBLAS implementation (the
  substrate): opaque Matrix/Vector/Scalar, all Table-I operations, masks/
  accumulators/descriptors, CSR/CSC/hypersparse storage, zombies & pending
  tuples, three SpGEMM methods, push-pull SpMV, O(1) move import/export,
  the 960/600 built-in semiring families, the C-API facade, and the dense
  "MATLAB mimic" reference implementation.
* :mod:`repro.lagraph` — the algorithm library of the paper's section V.
* :mod:`repro.pygb` — the PyGB-style DSL of Figure 2(b).
* :mod:`repro.io`, :mod:`repro.generators`, :mod:`repro.harness` — the
  support libraries of Figure 1 / section III.
* :mod:`repro.obs` — production observability: the process-wide metrics
  registry, Prometheus/JSON exposition, and the per-plan EXPLAIN profiler.
"""

from . import generators, graphblas, harness, io, lagraph, obs, pygb

__version__ = "1.0.0"

__all__ = [
    "graphblas", "lagraph", "pygb", "io", "generators", "harness", "obs",
    "__version__",
]
