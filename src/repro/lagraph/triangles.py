"""Triangle counting and enumeration (paper section V, refs [34], [35]).

Masked SpGEMM is the canonical GraphBLAS showcase: computing ``A*A`` only
where ``A`` has entries touches exactly the wedges that can close into
triangles.  Three classic methods are provided (all assume an undirected
simple graph; self-loops are removed first):

* ``burkhardt``:  ntri = sum((A*A) .* A) / 6
* ``cohen``:      ntri = sum((L*U) .* A) / 2
* ``sandia_ll``:  ntri = sum((L*L) .* L)   — the masked lower-triangular
  form, usually fastest because the mask is smallest.
"""

from __future__ import annotations

import numpy as np

from ..graphblas import Matrix, telemetry
from ..graphblas import operations as ops
from ..graphblas.descriptor import Descriptor
from ..graphblas.errors import InvalidValue
from .graph import Graph

__all__ = [
    "triangle_count",
    "triangle_count_delta",
    "triangle_counts_per_vertex",
    "triangle_matrix",
    "triangle_enumerate",
]


def _canonical_pairs(rows: np.ndarray, cols: np.ndarray):
    """Distinct undirected non-loop pairs (u, v) with u < v."""
    keep = rows != cols
    if not keep.any():
        return []
    u = np.minimum(rows[keep], cols[keep])
    v = np.maximum(rows[keep], cols[keep])
    uv = np.unique(np.stack([u, v], axis=1), axis=0)
    return list(zip(uv[:, 0].tolist(), uv[:, 1].tolist()))


def triangle_count_delta(graph: Graph, deltas, prev_count: int) -> int:
    """Advance an undirected triangle count across assembled windows.

    Reverse-undo wedge counting: starting from the *final* adjacency (the
    pre-window state no longer exists after assembly), the windows are
    walked backwards and every edge toggle is undone while counting the
    wedges it closes in the evolving neighbor sets.  Each step is the
    exact triangle-count difference of one single-edge change, so the sum
    telescopes to ``T_new - T_old`` regardless of event order.  Cost is
    O(delta x avg-degree) instead of the masked SpGEMM of a recount.

    The graph must be undirected with both directions stored (the
    :class:`~repro.lagraph.Graph` UNDIRECTED contract); value overwrites
    and self-loops close no wedges and are ignored.
    """
    A = graph.A
    A.wait()
    store = A.by_row()
    adj: dict[int, set] = {}

    def nbrs(u: int) -> set:
        s = adj.get(u)
        if s is None:
            start, end = store.major_ranges(np.array([u], dtype=np.int64))
            s = set(store.minor[int(start[0]):int(end[0])].tolist())
            s.discard(u)
            adj[u] = s
        return s

    change = 0
    for delta in reversed(list(deltas)):
        nr, nc, _ = delta.new_edges()
        rr, rc, _ = delta.removed_edges()
        for u, v in _canonical_pairs(nr, nc):
            su, sv = nbrs(u), nbrs(v)
            su.discard(v)
            sv.discard(u)
            change += len(su & sv)
        for u, v in _canonical_pairs(rr, rc):
            su, sv = nbrs(u), nbrs(v)
            change -= len(su & sv)
            su.add(v)
            sv.add(u)
    return prev_count + change

_RS = Descriptor(replace=True, structural_mask=True)


def _prepared(graph: Graph) -> Matrix:
    """Boolean structure with the diagonal dropped."""
    S = graph.without_self_edges().structure("FP64")
    return S


def triangle_count(graph: Graph, method: str = "sandia_ll") -> int:
    """Count triangles of an undirected graph with the chosen method."""
    A = _prepared(graph)
    n = A.nrows
    method = method.lower()
    with telemetry.span("triangles", method=method, n=n, nvals=int(A.nvals)):
        return _count(A, n, method)


def _count(A: Matrix, n: int, method: str) -> int:
    if method == "burkhardt":
        C = Matrix("FP64", n, n)
        ops.mxm(C, A, A, "PLUS_TIMES", mask=A, desc=_RS, method="dot")
        return int(round(ops.reduce_scalar(C, "PLUS") / 6))
    if method == "cohen":
        L = Matrix("FP64", n, n)
        ops.select(L, A, "TRIL", -1)
        U = Matrix("FP64", n, n)
        ops.select(U, A, "TRIU", 1)
        C = Matrix("FP64", n, n)
        ops.mxm(C, L, U, "PLUS_TIMES", mask=A, desc=_RS, method="dot")
        return int(round(ops.reduce_scalar(C, "PLUS") / 2))
    if method == "sandia_ll":
        L = Matrix("FP64", n, n)
        ops.select(L, A, "TRIL", -1)
        C = Matrix("FP64", n, n)
        ops.mxm(C, L, L, "PLUS_TIMES", mask=L, desc=_RS, method="dot")
        return int(round(ops.reduce_scalar(C, "PLUS")))
    raise InvalidValue(f"unknown triangle-count method {method!r}")


def triangle_matrix(graph: Graph) -> Matrix:
    """Per-edge triangle counts: T(i, j) = triangles through edge (i, j)."""
    A = _prepared(graph)
    n = A.nrows
    T = Matrix("FP64", n, n)
    ops.mxm(T, A, A, "PLUS_TIMES", mask=A, desc=_RS, method="dot")
    return T


def triangle_enumerate(graph: Graph) -> np.ndarray:
    """List all triangles as sorted (i, j, k) rows, i < j < k.

    The paper's catalogue asks for "triangle counting and enumeration"
    [34], [35].  Enumeration works on the strictly-lower-triangular
    structure L: for every L edge (j, i) with i < j, the triangles through
    it are the common neighbours k < i, read off the row intersections
    that the masked ``L*L`` dot product identifies.  Returns an (ntri, 3)
    int array.
    """
    A = _prepared(graph)
    n = A.nrows
    L = Matrix("FP64", n, n)
    ops.select(L, A, "TRIL", -1)
    U = Matrix("FP64", n, n)
    ops.select(U, A, "TRIU", 1)
    # an S entry at (c, a) means edge (a, c) closes >= 1 triangle through
    # some middle vertex k with a < k < c
    S = Matrix("FP64", n, n)
    ops.mxm(S, L, L, "PLUS_TIMES", mask=L, desc=_RS, method="dot")
    sr, sc, _ = S.extract_tuples()
    lstore = L.by_row()
    ustore = U.by_row()
    out: list[tuple[int, int, int]] = []
    lo_s, lo_e = lstore.major_ranges(sr)  # neighbours of c below c
    hi_s, hi_e = ustore.major_ranges(sc)  # neighbours of a above a
    for e in range(sr.size):
        below_c = lstore.minor[lo_s[e] : lo_e[e]]
        above_a = ustore.minor[hi_s[e] : hi_e[e]]
        common = np.intersect1d(below_c, above_a, assume_unique=True)
        c, a = int(sr[e]), int(sc[e])
        for k in common:
            out.append((a, int(k), c))  # a < k < c by construction
    return np.array(sorted(out), dtype=np.int64).reshape(-1, 3)


def triangle_counts_per_vertex(graph: Graph) -> np.ndarray:
    """Triangles incident on each vertex (for clustering coefficients)."""
    T = triangle_matrix(graph)
    from ..graphblas import Vector

    w = Vector("FP64", T.nrows)
    ops.reduce_rowwise(w, T, "PLUS")
    return (w.to_dense() / 2).astype(np.int64)
