"""Basic measurements on graphs (paper section VI's support-library list).

The paper's conclusion names "basic measurements on graphs" among the
support libraries LAGraph owes its users.  Everything here reduces to
Table-I operations: degree moments, density, reciprocity, degree
assortativity, clustering coefficients, diameter estimation by multi-source
BFS, and k-core decomposition by repeated masked degree filtering.
"""

from __future__ import annotations

import numpy as np

from ..graphblas import Matrix, Vector
from ..graphblas import operations as ops
from ..graphblas.descriptor import Descriptor
from .bfs import bfs_level
from .graph import Graph, GraphKind
from .triangles import triangle_counts_per_vertex

__all__ = [
    "degree_statistics",
    "density",
    "reciprocity",
    "degree_assortativity",
    "average_clustering",
    "global_clustering",
    "estimate_diameter",
    "kcore_decomposition",
    "graph_summary",
]

_RS = Descriptor(replace=True, structural_mask=True)


def degree_statistics(graph: Graph, *, direction: str = "out") -> dict[str, float]:
    """min / max / mean / median degree and the skew ratio max/mean.

    ``direction`` selects which degree is summarized: ``"out"`` (default)
    or ``"in"``.  For ``GraphKind.UNDIRECTED`` the two coincide; for
    directed graphs they can differ substantially, so callers analysing
    incoming link structure must ask for ``direction="in"`` explicitly.
    """
    from ..graphblas.errors import InvalidValue

    if direction not in ("out", "in"):
        raise InvalidValue(f"direction must be 'out' or 'in', got {direction!r}")
    deg = graph.in_degree if direction == "in" else graph.out_degree
    d = deg.to_dense(fill=0).astype(np.float64)
    mean = float(d.mean()) if d.size else 0.0
    return {
        "min": float(d.min()) if d.size else 0.0,
        "max": float(d.max()) if d.size else 0.0,
        "mean": mean,
        "median": float(np.median(d)) if d.size else 0.0,
        "skew": float(d.max() / mean) if mean else 0.0,
    }


def density(graph: Graph) -> float:
    """Stored edges / possible edges (self-loops excluded)."""
    n = graph.n
    possible = n * (n - 1)
    if graph.kind is GraphKind.UNDIRECTED:
        possible //= 2
    return graph.nedges / possible if possible else 0.0


def reciprocity(graph: Graph) -> float:
    """Fraction of directed edges whose reverse edge also exists."""
    if graph.kind is GraphKind.UNDIRECTED:
        return 1.0
    S = graph.without_self_edges().structure("BOOL")
    both = Matrix("BOOL", graph.n, graph.n)
    ops.ewise_mult(both, S, S, "LAND", desc="T1")  # S .* S^T
    total = S.nvals
    return both.nvals / total if total else 0.0


def degree_assortativity(graph: Graph) -> float:
    """Pearson correlation of endpoint degrees over the edges."""
    g = graph.without_self_edges()
    r, c, _ = g.A.extract_tuples()
    if r.size < 2:
        return 0.0
    if graph.kind is GraphKind.UNDIRECTED:
        deg = g.out_degree.to_dense(fill=0).astype(np.float64)
        x, y = deg[r], deg[c]
    else:
        dout = g.out_degree.to_dense(fill=0).astype(np.float64)
        din = g.in_degree.to_dense(fill=0).astype(np.float64)
        x, y = dout[r], din[c]
    sx, sy = x.std(), y.std()
    if sx == 0 or sy == 0:
        return 0.0
    return float(((x - x.mean()) * (y - y.mean())).mean() / (sx * sy))


def average_clustering(graph: Graph) -> float:
    """Mean local clustering coefficient (undirected, simple)."""
    g = graph.without_self_edges()
    tri = triangle_counts_per_vertex(g).astype(np.float64)
    d = g.out_degree.to_dense(fill=0).astype(np.float64)
    possible = d * (d - 1) / 2
    with np.errstate(invalid="ignore", divide="ignore"):
        cc = np.where(possible > 0, tri / possible, 0.0)
    return float(cc.mean()) if cc.size else 0.0


def global_clustering(graph: Graph) -> float:
    """Transitivity: 3 * triangles / wedges."""
    from .subgraph import subgraph_census

    c = subgraph_census(graph)
    return 3 * c["triangles"] / c["wedges"] if c["wedges"] else 0.0


def estimate_diameter(graph: Graph, *, samples: int = 8, seed=None) -> int:
    """Lower bound on the diameter by BFS eccentricities from samples.

    Exact when ``samples >= n``.  Unreachable pairs are ignored (per-
    component eccentricity).
    """
    n = graph.n
    rng = np.random.default_rng(seed)
    if samples >= n:
        sources = np.arange(n)
    else:
        sources = rng.choice(n, size=samples, replace=False)
    best = 0
    far = None
    for s in map(int, sources):
        lv = bfs_level(s, graph)
        _, vals = lv.extract_tuples()
        if vals.size:
            ecc = int(vals.max())
            if ecc > best:
                best = ecc
                far = lv
    # one refinement sweep from the farthest vertex found (double sweep)
    if far is not None:
        idx, vals = far.extract_tuples()
        v = int(idx[np.argmax(vals)])
        lv = bfs_level(v, graph)
        _, vals = lv.extract_tuples()
        if vals.size:
            best = max(best, int(vals.max()))
    return best


def kcore_decomposition(graph: Graph) -> Vector:
    """Core number per vertex: the largest k with the vertex in the k-core.

    Peeling in linear algebra: repeatedly select the vertices of degree
    < k within the surviving subgraph (a masked reduce) and remove them.
    """
    n = graph.n
    S = graph.without_self_edges().structure("INT64")
    if graph.kind is not GraphKind.UNDIRECTED and not graph.is_symmetric_structure:
        sym = Matrix("INT64", n, n)
        ops.ewise_add(sym, S, S, "MAX", desc="T1")
        S = sym
    alive = Vector("BOOL", n)
    ops.assign(alive, True, ops.ALL)
    core = Vector("INT64", n)
    ops.assign(core, 0, ops.ALL)

    k = 1
    while alive.nvals > 0:
        while True:
            # degrees within the surviving subgraph
            deg = Vector("INT64", n)
            ops.mxv(deg, S, alive_ones(alive), "PLUS_TIMES", mask=alive, desc=_RS)
            low_idx = _low_degree(deg, alive, k)
            if low_idx.size == 0:
                break
            dead = Vector.from_coo(low_idx, np.ones(low_idx.size, bool), size=n)
            ops.assign(
                alive,
                alive,
                ops.ALL,
                mask=dead,
                desc=Descriptor(replace=True, structural_mask=True, complement_mask=True),
            )
        if alive.nvals == 0:
            break
        ops.assign(core, k, ops.ALL, mask=alive, desc="S")
        k += 1
    return core


def alive_ones(alive: Vector) -> Vector:
    out = Vector("INT64", alive.size)
    ops.apply(out, alive, "one")
    return out


def _low_degree(deg: Vector, alive: Vector, k: int) -> np.ndarray:
    """Alive vertices with surviving degree < k (missing degree = 0)."""
    ai, _ = alive.extract_tuples()
    di, dv = deg.extract_tuples()
    dense = np.zeros(alive.size, dtype=np.int64)
    dense[di] = dv
    return ai[dense[ai] < k]


def graph_summary(graph: Graph) -> dict[str, float]:
    """One-call overview used by examples and the bench harness."""
    stats = degree_statistics(graph)
    return {
        "vertices": graph.n,
        "edges": graph.nedges,
        "density": density(graph),
        "max_degree": stats["max"],
        "mean_degree": stats["mean"],
        "reciprocity": reciprocity(graph),
        "assortativity": degree_assortativity(graph),
    }
