"""Breadth-first search: level, parent, and direction-optimizing variants.

BFS heads the paper's algorithm catalogue (section V) and is the paper's
running example: Figure 2 shows level BFS in four notations; section II.E
explains how GraphBLAST folds Beamer's direction-optimizing (push-pull)
traversal into ``GrB_mxv``; and section II.A notes that SuiteSparse's
terminal-monoid early exit "will enable a fast direction-optimizing BFS".

Conventions: the source vertex has level 0; unreachable vertices have no
entry in the level vector; the source's parent is itself.
"""

from __future__ import annotations

import numpy as np

from ..graphblas import Matrix, Vector, governor, telemetry
from ..graphblas import operations as ops
from ..graphblas.descriptor import Descriptor
from ..graphblas.errors import InvalidValue
from ..graphblas.mxv import DirectionOptimizer
from .graph import Graph

__all__ = ["bfs_level", "bfs_parent", "bfs", "bfs_levels_batch"]

# mask = complement of the structural visited set; replace the frontier
_RSC = Descriptor(replace=True, complement_mask=True, structural_mask=True)
_S = Descriptor(structural_mask=True)


def bfs_level(
    source: int,
    graph: Graph,
    *,
    method: str = "auto",
    optimizer: DirectionOptimizer | None = None,
    checkpoint=None,
    resume=None,
) -> Vector:
    """Level BFS (Figure 2): v -> hops from ``source``; INT64 vector.

    ``method`` forces ``"push"`` or ``"pull"``; ``"auto"`` applies the
    direction-optimization rule (supply a :class:`DirectionOptimizer` to
    observe or tune the switching behaviour).
    """
    level, _ = bfs(source, graph, parent=False, method=method,
                   optimizer=optimizer, checkpoint=checkpoint, resume=resume)
    return level


def bfs_parent(
    source: int,
    graph: Graph,
    *,
    method: str = "auto",
    optimizer: DirectionOptimizer | None = None,
) -> Vector:
    """Parent BFS: v -> its BFS-tree parent (positional ANY_SECONDI semiring)."""
    _, parent = bfs(
        source, graph, level=False, parent=True, method=method, optimizer=optimizer
    )
    return parent


def _bfs_start(source, n, level, parent, resume):
    """Fresh (or checkpoint-restored) BFS loop state.

    Returns ``(levels, parents, frontier, depth)``; the restore path
    rejects a snapshot taken with different level/parent outputs.
    """
    if resume is not None:
        st = governor.load_checkpoint(resume, algorithm="bfs")
        if level != ("levels" in st) or parent != ("parents" in st):
            raise InvalidValue(
                "checkpoint was taken with different level/parent outputs"
            )
        return (st.get("levels"), st.get("parents"), st["frontier"],
                int(st["__iteration__"]))
    levels = Vector("INT64", n) if level else None
    parents = Vector("INT64", n) if parent else None
    if parent:
        frontier = Vector("INT64", n)
        frontier.set_element(source, source)
    else:
        frontier = Vector("BOOL", n)
        frontier.set_element(source, True)
    return levels, parents, frontier, 0


def _bfs_state(levels, parents, frontier) -> dict:
    """The loop-carried containers a BFS checkpoint must capture."""
    state = {"frontier": frontier}
    if levels is not None:
        state["levels"] = levels
    if parents is not None:
        state["parents"] = parents
    return state


def bfs(
    source: int,
    graph: Graph,
    *,
    level: bool = True,
    parent: bool = False,
    method: str = "auto",
    optimizer: DirectionOptimizer | None = None,
    checkpoint=None,
    resume=None,
) -> tuple[Vector | None, Vector | None]:
    """Combined level/parent BFS over out-edges of ``graph``.

    Returns ``(level_vector, parent_vector)`` with None for outputs not
    requested.  The traversal is the Figure 2 loop: assign the depth (or
    parents) under the frontier mask, then advance the frontier through the
    adjacency transpose under the complemented visited mask with replace.

    ``checkpoint`` (a path, :class:`~repro.graphblas.governor.Checkpoint`,
    or callable) snapshots the loop state after each completed level;
    ``resume`` restarts from such a snapshot.  The governor's cancellation
    token is polled once per level.
    """
    n = graph.n
    if not 0 <= int(source) < n:
        raise InvalidValue(f"source {source} outside [0,{n})")
    if not (level or parent):
        raise InvalidValue("request at least one of level/parent")
    AT = graph.AT
    cp = governor.as_checkpoint(checkpoint)
    levels, parents, frontier, depth = _bfs_start(source, n, level, parent, resume)
    # visited mask: any vector that has an entry exactly at visited vertices
    visited = levels if levels is not None else parents
    # product value = the frontier vertex id for parent BFS
    semiring = "ANY_SECONDI" if parent else "LOR_LAND"

    with telemetry.span("bfs", source=int(source), n=n, parent=parent):
        while frontier.nvals > 0:
            if governor.ACTIVE:
                governor.poll()
            if telemetry.ENABLED:
                telemetry.instant(
                    "bfs.level",
                    level=depth,
                    frontier_nvals=int(frontier.nvals),
                    frontier_density=frontier.nvals / n,
                )
            if levels is not None:
                ops.assign(levels, depth, ops.ALL, mask=frontier, desc=_S)
            if parents is not None:
                ops.assign(parents, frontier, ops.ALL, mask=frontier, desc=_S)
            ops.mxv(
                frontier,
                AT,
                frontier,
                semiring,
                mask=visited,
                desc=_RSC,
                method=method,
                optimizer=optimizer,
            )
            depth += 1
            if cp is not None:
                governor.save_hook(cp, "bfs", depth,
                                   _bfs_state(levels, parents, frontier))
    return levels, parents


def bfs_levels_batch(sources, graph: Graph) -> Matrix:
    """Multi-source BFS: row s of the result holds levels from sources[s].

    The frontier is an ns x n Boolean matrix advanced with masked ``mxm`` —
    the batched form used by betweenness centrality.
    """
    sources = np.asarray(sources, dtype=np.int64)
    ns, n = sources.size, graph.n
    levels = Matrix("INT64", ns, n)
    frontier = Matrix.from_coo(
        np.arange(ns), sources, np.ones(ns, dtype=bool), nrows=ns, ncols=n
    )
    depth = 0
    with telemetry.span("bfs_batch", sources=int(ns), n=n):
        while frontier.nvals > 0:
            if governor.ACTIVE:
                governor.poll()
            if telemetry.ENABLED:
                telemetry.instant(
                    "bfs.level", level=depth, frontier_nvals=int(frontier.nvals)
                )
            ops.assign(levels, depth, ops.ALL, ops.ALL, mask=frontier, desc=_S)
            ops.mxm(frontier, frontier, graph.A, "LOR_LAND", mask=levels, desc=_RSC)
            depth += 1
    return levels
