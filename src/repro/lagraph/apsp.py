"""All-pairs shortest paths by (min, +) repeated squaring.

The paper cites Solomonik, Buluç and Demmel [33] for communication-optimal
APSP; their algebraic core is the min-plus closure computed here: with
``D_1 = A (+) 0-diagonal``, repeated semiring squaring ``D_{2k} = D_k
(min).(+) D_k`` converges to the distance matrix in ceil(log2(n)) rounds
(or earlier, at the first fixpoint).
"""

from __future__ import annotations

import numpy as np

from ..graphblas import Matrix
from ..graphblas import operations as ops
from ..graphblas.errors import InvalidValue
from .graph import Graph

__all__ = ["apsp", "apsp_distances_dense"]


def apsp(graph: Graph) -> Matrix:
    """Distance matrix D: D(i, j) = shortest-path weight i -> j.

    Unreachable pairs have no entry.  Requires non-negative weights (a
    negative cycle would prevent the fixpoint).
    """
    n = graph.n
    _, _, weights = graph.A.extract_tuples()
    if weights.size and float(np.min(weights)) < 0:
        raise InvalidValue("apsp requires non-negative weights")

    D = Matrix("FP64", n, n)
    ops.apply(D, graph.A, "identity")
    # distance 0 to self: fold in a zero diagonal with MIN
    eye = Matrix.sparse_identity(n, dtype="FP64", value=0.0)
    ops.ewise_add(D, D, eye, "MIN")

    rounds = max(1, int(np.ceil(np.log2(max(n, 2)))))
    for _ in range(rounds):
        prev = D.dup()
        # D = min(D, D min.+ D): squaring doubles the path-length horizon
        ops.mxm(D, D, D, "MIN_PLUS", accum="MIN")
        if D.isequal(prev):
            break
    return D


def apsp_distances_dense(graph: Graph) -> np.ndarray:
    """Dense convenience view: np.inf marks unreachable pairs."""
    return apsp(graph).to_dense(fill=np.inf)
