"""Bipartite matching (paper section V, refs [42], [43] — Azad & Buluç).

The bipartite graph is an nl x nr sparse matrix (rows = left side,
columns = right side).

* :func:`maximal_matching` — the Azad-Buluç greedy pattern: every
  unmatched left vertex proposes to its minimum unmatched right neighbour
  (a masked (min, secondi) row reduction), each right vertex accepts its
  minimum proposer (a scatter-min, ``build`` with dup=MIN), repeat until no
  proposals; guarantees a maximal matching.
* :func:`maximum_matching` — maximum-cardinality matching by repeated
  alternating-BFS phases with augmentation (the linear-algebraic
  Hopcroft-Karp of [43]): a multi-source BFS from all free left vertices
  alternates unmatched/matched edges, recording parents with positional
  semirings; every phase augments a maximal set of vertex-disjoint paths.
"""

from __future__ import annotations

import numpy as np

from ..graphblas import Matrix, Vector
from ..graphblas import operations as ops
from ..graphblas.descriptor import Descriptor

__all__ = ["maximal_matching", "maximum_matching", "is_matching", "is_maximal_matching"]

_RS = Descriptor(replace=True, structural_mask=True)
_RSC = Descriptor(replace=True, structural_mask=True, complement_mask=True)
_S = Descriptor(structural_mask=True)


def maximal_matching(B: Matrix, *, seed: int | None = None) -> Vector:
    """Greedy maximal matching; returns mate_left (left i -> right j).

    ``B`` is the nl x nr biadjacency matrix.  Result vector has an entry
    for every matched left vertex; unmatched left vertices have none.
    """
    nl, nr = B.shape
    mate_l = Vector("INT64", nl)  # left -> right
    matched_r = Vector("BOOL", nr)

    free_l = Vector("BOOL", nl)
    ops.assign(free_l, True, ops.ALL)
    # only left vertices with at least one neighbour can ever match
    deg = Vector("INT64", nl)
    ones = Matrix("INT64", nl, nr)
    ops.apply(ones, B, "one")
    ops.reduce_rowwise(deg, ones, "PLUS")
    d_b = Vector("BOOL", nl)
    ops.apply(d_b, deg, "one")
    ops.ewise_mult(free_l, free_l, d_b, "LAND")

    while True:
        # proposals: each free left vertex picks its min unmatched right nbr
        # (row-wise reduction over the complement mask of matched rights is
        # expressed by first removing matched columns from consideration)
        avail = Vector("INT64", nr)
        ops.assign(avail, 1, ops.ALL)
        ops.assign(avail, avail, ops.ALL, mask=matched_r, desc=_RSC)
        prop = Vector("INT64", nl)
        # prop(i) = min { j : B(i,j) and avail(j) } via (min, secondj)...
        # expressed as mxv over B with the positional SECONDI on B^T's view:
        ops.mxv(prop, B, avail, "MIN_SECONDI", mask=free_l, desc=_RS)
        if prop.nvals == 0:
            return mate_l
        # acceptances: right vertex takes the min proposer
        pi, pj = prop.extract_tuples()
        accept = Vector("INT64", nr)
        accept.build(pj, pi, dup="MIN")
        aj, ai = accept.extract_tuples()
        # commit the accepted pairs
        for j, i in zip(aj, ai):
            mate_l.set_element(int(i), int(j))
            matched_r.set_element(int(j), True)
        mate_l.wait()
        matched_r.wait()
        newly = Vector.from_coo(np.sort(ai), np.ones(ai.size, bool), size=nl)
        ops.assign(free_l, free_l, ops.ALL, mask=newly, desc=_RSC)


def maximum_matching(B: Matrix, *, init: Vector | None = None) -> Vector:
    """Maximum-cardinality bipartite matching (alternating BFS phases)."""
    nl, nr = B.shape
    mate_l = init.dup() if init is not None else maximal_matching(B)

    while True:
        li, lv = mate_l.extract_tuples()
        mate_l_d = np.full(nl, -1, dtype=np.int64)
        mate_l_d[li] = lv
        mate_r_d = np.full(nr, -1, dtype=np.int64)
        mate_r_d[lv] = li

        # multi-source alternating BFS from free left vertices
        free_left = np.flatnonzero(mate_l_d < 0)
        if free_left.size == 0:
            return mate_l
        parent_r = np.full(nr, -1, dtype=np.int64)  # right -> left parent
        origin_l = np.full(nl, -1, dtype=np.int64)  # left vertex -> is reached
        origin_l[free_left] = free_left
        frontier = Vector.from_coo(free_left, free_left.astype(np.int64), size=nl)
        reached_r = Vector("BOOL", nr)
        augment_ends = []

        while frontier.nvals > 0 and not augment_ends:
            # explore unmatched edges left->right, recording a left parent
            q = Vector("INT64", nr)
            ops.vxm(q, frontier, B, "ANY_SECONDI", mask=reached_r, desc=_RSC)
            qi, qparent = q.extract_tuples()
            if qi.size == 0:
                break
            for j in qi:
                reached_r.set_element(int(j), True)
            reached_r.wait()
            parent_r[qi] = qparent
            # free right vertices end augmenting paths
            free_hits = qi[mate_r_d[qi] < 0]
            if free_hits.size:
                augment_ends = list(free_hits)
                break
            # follow matched edges right->left to build the next frontier
            nxt_l = mate_r_d[qi]
            fresh = nxt_l[origin_l[nxt_l] < 0]
            origin_l[fresh] = fresh
            frontier = Vector.from_coo(
                np.sort(fresh), np.sort(fresh).astype(np.int64), size=nl
            ) if fresh.size else Vector("INT64", nl)

        if not augment_ends:
            return mate_l

        # augment vertex-disjoint paths found this phase (greedy subset)
        used_l: set[int] = set()
        for j in augment_ends:
            # walk back: j <- parent_r[j] = i; edge (i, j) becomes matched;
            # previous mate of i (if any) continues the walk
            path = []
            jj = int(j)
            ok = True
            while True:
                i = int(parent_r[jj])
                if i in used_l:
                    ok = False
                    break
                path.append((i, jj))
                used_l.add(i)
                prev = int(mate_l_d[i])
                if prev < 0:
                    break
                jj = prev
            if ok:
                for i, jj2 in path:
                    mate_l.set_element(i, jj2)
                    mate_l_d[i] = jj2
        mate_l.wait()


def is_matching(B: Matrix, mate_l: Vector) -> bool:
    """Validator: edges exist and no endpoint is reused."""
    li, lv = mate_l.extract_tuples()
    if np.unique(lv).size != lv.size:
        return False
    for i, j in zip(li, lv):
        if B.get(int(i), int(j)) is None:
            return False
    return True


def is_maximal_matching(B: Matrix, mate_l: Vector) -> bool:
    """Validator: matching, and no edge has both endpoints free."""
    if not is_matching(B, mate_l):
        return False
    li, lv = mate_l.extract_tuples()
    matched_l = set(int(i) for i in li)
    matched_r = set(int(j) for j in lv)
    r, c, _ = B.extract_tuples()
    for i, j in zip(r, c):
        if int(i) not in matched_l and int(j) not in matched_r:
            return False
    return True
