"""Graph neural network training and inference on the GraphBLAS.

The paper's section V closes with algorithms "we consider to be important
but [that have] so far not been implemented using a GraphBLAS-like
library", headed by *graph neural network training and inference*.  This
module delivers that extension: a two-layer graph convolutional network
(Kipf & Welling GCN) for semi-supervised node classification in which
every tensor is a GraphBLAS matrix and every contraction is ``mxm``.

Forward pass (per layer):  H' = act(S H W),  with the renormalized
propagation operator  S = D^-1/2 (A + I) D^-1/2  built once from Table-I
operations.  Training runs full-batch gradient descent with a manual
backward pass — also entirely ``mxm``/``eWise`` (S is symmetric, so
backprop through the propagation is another S-multiply).
"""

from __future__ import annotations

import numpy as np

from ..graphblas import Matrix, Vector
from ..graphblas import operations as ops
from ..graphblas.errors import InvalidValue
from .graph import Graph

__all__ = ["GCN", "normalized_propagation"]


def normalized_propagation(graph: Graph) -> Matrix:
    """S = D^-1/2 (A + I) D^-1/2 — the renormalized GCN operator."""
    n = graph.n
    A_hat = Matrix("FP64", n, n)
    ops.apply(A_hat, graph.A, "one")
    eye = Matrix.sparse_identity(n, dtype="FP64", value=1.0)
    ops.ewise_add(A_hat, A_hat, eye, "MAX")  # add self-loops

    deg = Vector("FP64", n)
    ops.reduce_rowwise(deg, A_hat, "PLUS")
    dinv_sqrt = Vector("FP64", n)
    ops.apply(dinv_sqrt, deg, "sqrt")
    ops.apply(dinv_sqrt, dinv_sqrt, "minv")
    D = ops.diag(dinv_sqrt)

    T = Matrix("FP64", n, n)
    ops.mxm(T, D, A_hat, "PLUS_TIMES")
    S = Matrix("FP64", n, n)
    ops.mxm(S, T, D, "PLUS_TIMES")
    return S


def _mm(A: Matrix, B: Matrix, *, ta=False, tb=False) -> Matrix:
    from ..graphblas.descriptor import Descriptor

    nr = A.ncols if ta else A.nrows
    nc = B.nrows if tb else B.ncols
    C = Matrix("FP64", nr, nc)
    ops.mxm(C, A, B, "PLUS_TIMES", desc=Descriptor(transpose_a=ta, transpose_b=tb))
    return C


def _relu(A: Matrix) -> Matrix:
    out = Matrix("FP64", *A.shape)
    ops.select(out, A, "VALUEGT", 0.0)
    return out


def _relu_grad_mask(A: Matrix, G: Matrix) -> Matrix:
    """Zero the gradient where the pre-activation was <= 0."""
    pos = Matrix("FP64", *A.shape)
    ops.select(pos, A, "VALUEGT", 0.0)
    out = Matrix("FP64", *G.shape)
    ops.ewise_mult(out, G, _ones_like(pos), "TIMES")
    return out


def _ones_like(A: Matrix) -> Matrix:
    out = Matrix("FP64", *A.shape)
    ops.apply(out, A, "one")
    return out


def _scale(A: Matrix, s: float) -> Matrix:
    out = Matrix("FP64", *A.shape)
    ops.apply(out, A, "times", right=s)
    return out


def _add(A: Matrix, B: Matrix) -> Matrix:
    out = Matrix("FP64", *A.shape)
    ops.ewise_add(out, A, B, "PLUS")
    return out


class GCN:
    """A two-layer GCN:  softmax(S relu(S X W1) W2).

    Parameters are dense (stored as GraphBLAS matrices); the graph
    propagation S and feature matrix X may be arbitrarily sparse.
    """

    def __init__(
        self,
        graph: Graph,
        n_features: int,
        n_hidden: int,
        n_classes: int,
        *,
        seed: int | None = 0,
    ):
        if min(n_features, n_hidden, n_classes) <= 0:
            raise InvalidValue("layer sizes must be positive")
        rng = np.random.default_rng(seed)
        self.S = normalized_propagation(graph)
        s1 = np.sqrt(2.0 / (n_features + n_hidden))
        s2 = np.sqrt(2.0 / (n_hidden + n_classes))
        self.W1 = Matrix.from_dense(rng.normal(0, s1, (n_features, n_hidden)))
        self.W2 = Matrix.from_dense(rng.normal(0, s2, (n_hidden, n_classes)))
        self.n_classes = n_classes

    # -- inference -----------------------------------------------------------

    def forward(self, X: Matrix):
        """Returns (logits, cache-for-backprop)."""
        SX = _mm(self.S, X)  # n x f
        Z1 = _mm(SX, self.W1)  # n x h (pre-activation)
        H1 = _relu(Z1)
        SH = _mm(self.S, H1)
        logits = _mm(SH, self.W2)  # n x c
        return logits, (SX, Z1, SH)

    def predict(self, X: Matrix) -> np.ndarray:
        """Class id per vertex."""
        logits, _ = self.forward(X)
        return np.argmax(logits.to_dense(), axis=1)

    # -- training ------------------------------------------------------------

    def fit(
        self,
        X: Matrix,
        labels: np.ndarray,
        train_mask: np.ndarray,
        *,
        epochs: int = 100,
        lr: float = 0.5,
        verbose: bool = False,
    ) -> list[float]:
        """Full-batch gradient descent on masked softmax cross-entropy.

        Returns the loss history over the training vertices.
        """
        labels = np.asarray(labels)
        train_idx = np.flatnonzero(np.asarray(train_mask))
        if train_idx.size == 0:
            raise InvalidValue("empty training mask")
        n = self.S.nrows
        Y = np.zeros((n, self.n_classes))
        Y[train_idx, labels[train_idx]] = 1.0

        history: list[float] = []
        for _ in range(epochs):
            logits, (SX, Z1, SH) = self.forward(X)
            L = logits.to_dense()
            # masked softmax cross-entropy and its gradient
            shifted = L - L.max(axis=1, keepdims=True)
            expL = np.exp(shifted)
            P = expL / expL.sum(axis=1, keepdims=True)
            loss = -np.mean(
                np.log(P[train_idx, labels[train_idx]] + 1e-12)
            )
            history.append(float(loss))
            G = (P - Y) / train_idx.size
            G[np.setdiff1d(np.arange(n), train_idx)] = 0.0
            G_logits = Matrix.from_dense(G)

            # backward: logits = SH @ W2
            gW2 = _mm(SH, G_logits, ta=True)
            gSH = _mm(G_logits, self.W2, tb=True)
            # SH = S @ H1, S symmetric: gH1 = S^T gSH = S gSH
            gH1 = _mm(self.S, gSH)
            gZ1 = _relu_grad_mask(Z1, gH1)
            # Z1 = SX @ W1
            gW1 = _mm(SX, gZ1, ta=True)

            self.W1 = _add(self.W1, _scale(gW1, -lr))
            self.W2 = _add(self.W2, _scale(gW2, -lr))
        return history

    def accuracy(self, X: Matrix, labels: np.ndarray, mask=None) -> float:
        pred = self.predict(X)
        labels = np.asarray(labels)
        if mask is None:
            return float((pred == labels).mean())
        idx = np.flatnonzero(np.asarray(mask))
        return float((pred[idx] == labels[idx]).mean())
