"""Centrality measures: PageRank and betweenness (paper section V).

* PageRank follows the LAGraph/GAP formulation: out-degree-normalized
  rank propagation over the (+, second) semiring with teleport and proper
  dangling-vertex redistribution.
* Betweenness centrality is Brandes' algorithm in batched linear-algebra
  form (Buluç & Gilbert's CombBLAS formulation [2]): a multi-source
  forward sweep counting shortest paths with masked ``plus_first``
  products, then the dependency back-propagation with masked products
  against the transpose.
"""

from __future__ import annotations

import numpy as np

from ..graphblas import Matrix, Vector, governor, telemetry
from ..graphblas import operations as ops
from ..graphblas.descriptor import Descriptor
from ..graphblas.errors import InvalidValue
from .graph import Graph, GraphKind

__all__ = [
    "pagerank",
    "betweenness_centrality",
    "closeness_centrality",
    "hits",
]

_S = Descriptor(structural_mask=True)
_RSC = Descriptor(replace=True, complement_mask=True, structural_mask=True)
_RS = Descriptor(replace=True, structural_mask=True)


def pagerank(
    graph: Graph,
    *,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iters: int = 100,
    init: Vector | None = None,
    checkpoint=None,
    resume=None,
) -> tuple[Vector, int]:
    """PageRank; returns (rank vector summing to 1, iterations used).

    ``init`` warm-starts the power iteration from a previous rank vector
    (the dynamic-graph restart: after a small edge delta the old ranks
    are near the new fixed point, so few iterations remain).

    ``checkpoint`` snapshots the rank vector after each completed
    iteration; ``resume`` restarts from such a snapshot.  The iteration
    body depends only on the loop-carried rank vector, so a resumed run
    is bit-identical to an uninterrupted one.  The governor's
    cancellation token is polled once per iteration.
    """
    n = graph.n
    AT = graph.AT
    deg = graph.out_degree  # entries only at non-dangling vertices

    teleport = (1.0 - damping) / n
    cp = governor.as_checkpoint(checkpoint)
    if resume is not None:
        st = governor.load_checkpoint(resume, algorithm="pagerank")
        r = st["r"]
        start = int(st["__iteration__"]) + 1
        if r.size != n:
            raise InvalidValue(
                f"checkpoint rank vector has size {r.size}, graph has {n}"
            )
    elif init is not None:
        if init.size != n:
            raise InvalidValue(
                f"init rank vector has size {init.size}, graph has {n}"
            )
        r = Vector("FP64", n)
        ops.apply(r, init, "identity")
        start = 1
    else:
        r = Vector.full(1.0 / n, n, dtype="FP64")
        start = 1
    deg_f = Vector("FP64", n)
    ops.apply(deg_f, deg, "identity")  # cast INT64 degrees to FP64
    inv_deg = Vector("FP64", n)
    ops.apply(inv_deg, deg_f, "minv")  # 1/deg at non-dangling vertices

    iters = start - 1
    with telemetry.span("pagerank", n=n, damping=damping, tol=tol):
        for iters in range(start, max_iters + 1):
            if governor.ACTIVE:
                governor.poll()
            prev = r.dup()
            # per-edge contribution of each vertex: r / out-degree
            w = Vector("FP64", n)
            ops.ewise_mult(w, r, inv_deg, "times")
            # rank mass parked on dangling vertices, redistributed uniformly
            dangling = float(ops.reduce_scalar(r, "plus")) - float(
                ops.reduce_scalar(w_times_deg(w, deg), "plus")
            )
            t = Vector("FP64", n)
            ops.mxv(t, AT, w, "PLUS_SECOND", method="pull")
            base = teleport + damping * dangling / n
            r = Vector.full(base, n, dtype="FP64")
            ops.apply(t, t, "times", right=damping)
            ops.ewise_add(r, r, t, "plus")
            # L1 convergence check
            diff = Vector("FP64", n)
            ops.ewise_add(diff, r, prev, "minus")
            ops.apply(diff, diff, "abs")
            resid = float(ops.reduce_scalar(diff, "plus"))
            if telemetry.ENABLED:
                telemetry.instant("pagerank.iteration", iteration=iters, residual=resid)
            if cp is not None:
                governor.save_hook(cp, "pagerank", iters, {"r": r})
            if resid < tol:
                break
    return r, iters


def w_times_deg(w: Vector, deg: Vector) -> Vector:
    """w * deg — recovers the rank mass of non-dangling vertices."""
    out = Vector("FP64", w.size)
    ops.ewise_mult(out, w, deg, "times")
    return out


def _bc_state(phase, paths, frontier, stack, bcu, ns):
    """Loop state snapshotted by betweenness checkpoints (both phases)."""
    state = {"phase": phase, "ns": int(ns), "paths": paths,
             "depth": len(stack)}
    if frontier is not None:
        state["frontier"] = frontier
    if bcu is not None:
        state["bcu"] = bcu
    for i, s in enumerate(stack):
        state[f"stack_{i}"] = s
    return state


def betweenness_centrality(graph: Graph, sources=None, *,
                           checkpoint=None, resume=None) -> Vector:
    """Batched Brandes betweenness; exact when ``sources`` is None.

    Returns the standard (unnormalized) betweenness: for undirected graphs
    the conventional halving is applied.

    ``checkpoint``/``resume`` snapshot the loop state after each level of
    either phase (the snapshot records which phase it was taken in); a
    resumed run must pass the same ``sources``.  The governor's
    cancellation token is polled once per level in both phases.
    """
    n = graph.n
    if sources is None:
        sources = np.arange(n, dtype=np.int64)
    else:
        sources = np.asarray(sources, dtype=np.int64)
    ns = sources.size
    A = graph.A
    cp = governor.as_checkpoint(checkpoint)

    st = None
    if resume is not None:
        st = governor.load_checkpoint(resume, algorithm="betweenness")
        if int(st["ns"]) != ns:
            raise InvalidValue(
                f"checkpoint was taken with {st['ns']} sources, got {ns}"
            )

    if st is not None:
        paths = st["paths"]
        stack = [st[f"stack_{i}"] for i in range(int(st["depth"]))]
    else:
        # forward phase: count shortest paths level by level
        paths = Matrix.from_coo(
            np.arange(ns),
            sources,
            np.ones(ns, dtype=np.float64),
            nrows=ns,
            ncols=n,
            dtype="FP64",
        )
        stack = [paths.dup()]  # stack[d] = the depth-d frontier
    if st is None or st["phase"] == "forward":
        frontier = st["frontier"] if st is not None else stack[0].dup()
        with telemetry.span("betweenness.forward", sources=int(ns), n=n):
            while True:
                if governor.ACTIVE:
                    governor.poll()
                next_frontier = Matrix("FP64", ns, n)
                # advance one level, counting paths: (+, first) carries path counts
                ops.mxm(next_frontier, frontier, A, "PLUS_FIRST", mask=paths, desc=_RSC)
                if next_frontier.nvals == 0:
                    break
                if telemetry.ENABLED:
                    telemetry.instant(
                        "betweenness.level",
                        depth=len(stack),
                        frontier_nvals=int(next_frontier.nvals),
                    )
                ops.ewise_add(paths, paths, next_frontier, "plus")
                stack.append(next_frontier)
                frontier = next_frontier
                if cp is not None:
                    governor.save_hook(
                        cp, "betweenness", len(stack) - 1,
                        _bc_state("forward", paths, frontier, stack, None, ns),
                    )

    # backward phase: dependency accumulation, deepest level first
    if st is not None and st["phase"] == "backward":
        bcu = st["bcu"]
        start_d = int(st["__iteration__"]) - 1
    else:
        bcu = Matrix.from_dense(np.ones((ns, n)), dtype="FP64")
        start_d = len(stack) - 1
    with telemetry.span("betweenness.backward", sources=int(ns), n=n):
        for d in range(start_d, 0, -1):
            if governor.ACTIVE:
                governor.poll()
            w = Matrix("FP64", ns, n)
            # w = (1 + delta) ./ sigma, restricted to this level's frontier
            ops.ewise_mult(w, bcu, inv(paths), "times", mask=stack[d], desc=_RS)
            back = Matrix("FP64", ns, n)
            # pull dependencies one level up: back(s, v) = sum_{(v,u) in E} w(s, u)
            ops.mxm(
                back,
                w,
                A,
                "PLUS_FIRST",
                mask=stack[d - 1],
                desc=_RS & Descriptor(transpose_b=True),
            )
            update = Matrix("FP64", ns, n)
            ops.ewise_mult(update, back, paths, "times")
            ops.ewise_add(bcu, bcu, update, "plus")
            if cp is not None:
                governor.save_hook(
                    cp, "betweenness", d,
                    _bc_state("backward", paths, None, stack, bcu, ns),
                )

    # centrality(v) = sum_s delta_s(v), excluding each source's own
    # self-dependency: bcu(s, v) = 1 + delta_s(v), so subtract the ns
    # baseline ones and the diagonal terms delta_v(v).
    c = Vector("FP64", n)
    ops.reduce_rowwise(c, bcu, "plus", desc="T0")
    ops.apply(c, c, "plus", right=-float(ns))
    roots = Matrix.from_coo(
        np.arange(ns), sources, np.ones(ns), nrows=ns, ncols=n, dtype="FP64"
    )
    self_dep = Matrix("FP64", ns, n)
    ops.ewise_mult(self_dep, bcu, roots, "first")  # bcu at (s, sources[s])
    dv = Vector("FP64", n)
    ops.reduce_rowwise(dv, self_dep, "plus", desc="T0")
    counts = Vector("FP64", n)
    ops.reduce_rowwise(counts, roots, "plus", desc="T0")
    ops.ewise_add(dv, dv, neg(counts), "plus")  # dv = sum_s delta_v(v)
    ops.ewise_add(c, c, neg(dv), "plus")
    if graph.kind is GraphKind.UNDIRECTED:
        ops.apply(c, c, "times", right=0.5)
    return c


def neg(v: Vector) -> Vector:
    """Element-wise additive inverse."""
    out = Vector("FP64", v.size)
    ops.apply(out, v, "ainv")
    return out


def closeness_centrality(graph: Graph, *, wf_improved: bool = True) -> Vector:
    """Closeness centrality via batched BFS levels.

    c(v) = (r - 1) / sum(d(v, u)) over v's reachable set of size r (incoming
    distances, per the standard definition), optionally scaled by the
    Wasserman-Faust factor (r - 1)/(n - 1) for disconnected graphs —
    matching networkx's default.  One masked ``mxm`` BFS sweep computes all
    sources at once.
    """
    from .bfs import bfs_levels_batch

    n = graph.n
    # distances INTO v = BFS levels FROM v on the reversed graph
    rev = Graph(graph.AT, graph.kind) if graph.kind is GraphKind.DIRECTED else graph
    L = bfs_levels_batch(np.arange(n), rev)
    r, _, v = L.extract_tuples()
    totals = np.zeros(n)
    reach = np.zeros(n)
    np.add.at(totals, r, v.astype(np.float64))
    np.add.at(reach, r, 1.0)  # includes the source itself at distance 0
    out = np.zeros(n)
    nonzero = totals > 0
    out[nonzero] = (reach[nonzero] - 1) / totals[nonzero]
    if wf_improved and n > 1:
        out[nonzero] *= (reach[nonzero] - 1) / (n - 1)
    return Vector.from_dense(out)


def hits(
    graph: Graph, *, tol: float = 1e-10, max_iters: int = 200
) -> tuple[Vector, Vector]:
    """HITS hubs and authorities by alternating mxv power iteration.

    a = A^T h; h = A a; normalized each round (L1, like networkx).
    Returns (hubs, authorities).
    """
    n = graph.n
    h = Vector.full(1.0 / n, n, dtype="FP64")
    a = Vector("FP64", n)
    for _ in range(max_iters):
        prev = h.to_dense()
        ops.mxv(a, graph.AT, h, "PLUS_SECOND", method="pull")
        _l1_normalize(a)
        ops.mxv(h, graph.A, a, "PLUS_SECOND", method="pull")
        _l1_normalize(h)
        if np.abs(h.to_dense() - prev).sum() < tol:
            break
    return h, a


def _l1_normalize(v: Vector) -> None:
    total = float(ops.reduce_scalar(v, "PLUS"))
    if total > 0:
        ops.apply(v, v, "times", right=1.0 / total)


def inv(M: Matrix) -> Matrix:
    """Element-wise reciprocal of the stored entries."""
    out = Matrix("FP64", *M.shape)
    ops.apply(out, M, "minv")
    return out
