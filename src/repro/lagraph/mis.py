"""Maximal independent set — Luby's algorithm (paper section V, ref [44]).

Each round every remaining candidate draws a random score; a vertex joins
the independent set iff its score beats every remaining neighbour's score
(computed with one (max, second) masked mxv).  Winners and their
neighbours leave the candidate set.  Expected O(log n) rounds.
"""

from __future__ import annotations

import numpy as np

from ..graphblas import Vector
from ..graphblas import operations as ops
from ..graphblas.descriptor import Descriptor
from .graph import Graph

__all__ = ["maximal_independent_set", "is_independent_set", "is_maximal_independent_set"]

_S = Descriptor(structural_mask=True)
_RS = Descriptor(replace=True, structural_mask=True)
_RSC = Descriptor(replace=True, structural_mask=True, complement_mask=True)


def maximal_independent_set(graph: Graph, *, seed: int | None = None) -> Vector:
    """Boolean vector marking a maximal independent set (ignores self-loops)."""
    n = graph.n
    S = graph.without_self_edges().structure("BOOL")
    rng = np.random.default_rng(seed)

    iset = Vector("BOOL", n)
    candidates = Vector("BOOL", n)
    ops.assign(candidates, True, ops.ALL)

    while candidates.nvals > 0:
        ci, _ = candidates.extract_tuples()
        # unique random scores prevent livelock on score ties
        scores = Vector.from_coo(
            ci, rng.permutation(ci.size).astype(np.float64) + 1.0, size=n
        )
        # each candidate's strongest remaining neighbour
        nbr_max = Vector("FP64", n)
        ops.mxv(nbr_max, S, scores, "MAX_SECOND", mask=candidates, desc=_RS)
        # winners: score exceeds all neighbours' (missing nbr_max => isolated)
        diff = Vector("FP64", n)
        ops.ewise_add(diff, scores, neg(nbr_max), "PLUS")
        winners = Vector("FP64", n)
        ops.select(winners, diff, "VALUEGT", 0.0)
        if winners.nvals == 0:  # defensive: cannot happen with unique scores
            break
        ops.assign(iset, True, ops.ALL, mask=winners, desc=_S)
        # remove winners and their neighbourhoods from the candidate pool
        nbrs = Vector("BOOL", n)
        ops.mxv(nbrs, S, winners, "LOR_LAND", mask=None)
        dead = Vector("BOOL", n)
        ops.ewise_add(dead, bool_of(winners), nbrs, "LOR")
        ops.assign(candidates, candidates, ops.ALL, mask=dead, desc=_RSC)
    return iset


def neg(v: Vector) -> Vector:
    out = Vector("FP64", v.size)
    ops.apply(out, v, "ainv")
    return out


def bool_of(v: Vector) -> Vector:
    out = Vector("BOOL", v.size)
    ops.apply(out, v, "one")
    return out


def is_independent_set(graph: Graph, iset: Vector) -> bool:
    """Validator: no two set members are adjacent (self-loops ignored)."""
    S = graph.without_self_edges().structure("BOOL")
    touched = Vector("BOOL", graph.n)
    ops.mxv(touched, S, iset, "LOR_LAND", mask=iset, desc=_RS)
    return touched.nvals == 0


def is_maximal_independent_set(graph: Graph, iset: Vector) -> bool:
    """Validator: independent, and every non-member has a member neighbour."""
    if not is_independent_set(graph, iset):
        return False
    S = graph.without_self_edges().structure("BOOL")
    covered = Vector("BOOL", graph.n)
    ops.mxv(covered, S, iset, "LOR_LAND")
    ops.ewise_add(covered, covered, iset, "LOR")
    return covered.nvals == graph.n
