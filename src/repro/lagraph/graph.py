"""The LAGraph ``Graph`` object: an adjacency matrix plus cached properties.

The paper's section IV stresses that "graph algorithms do not occur in
isolation": the library hands algorithms a graph whose expensive derived
objects — the transpose, degree vectors, structural symmetry — are computed
once and cached, and returns opaque GraphBLAS handles so downstream
operations pay no copy cost.  This mirrors the ``LAGraph_Graph`` /
``LAGraph_Cached_*`` design the LAGraph project converged on.
"""

from __future__ import annotations

import enum

import numpy as np

from ..graphblas import Matrix, Vector
from ..graphblas import operations as ops
from ..graphblas.errors import InvalidValue

__all__ = ["Graph", "GraphKind"]


class GraphKind(str, enum.Enum):
    """Adjacency interpretation (LAGraph_Kind)."""

    DIRECTED = "directed"
    UNDIRECTED = "undirected"


class Graph:
    """A graph held as an n x n adjacency matrix with cached properties.

    ``A[i, j]`` is the weight of edge i -> j (any GraphBLAS domain).  For
    ``UNDIRECTED`` graphs the matrix must be structurally symmetric (each
    edge stored in both directions), which :meth:`from_edges` arranges.
    """

    def __init__(self, A: Matrix, kind: GraphKind | str = GraphKind.DIRECTED):
        if A.nrows != A.ncols:
            raise InvalidValue("adjacency matrix must be square")
        self.A = A
        self.kind = GraphKind(kind)
        self._cache: dict[str, object] = {}

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        sources,
        targets,
        weights=None,
        *,
        n: int | None = None,
        kind: GraphKind | str = GraphKind.DIRECTED,
        dtype=None,
        dup="PLUS",
    ) -> "Graph":
        """Build from edge lists; undirected graphs get both directions."""
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if weights is None:
            weights = np.ones(sources.size, dtype=dtype or np.bool_)
        else:
            weights = np.asarray(weights)
        kind = GraphKind(kind)
        if n is None:
            n = int(max(sources.max(initial=-1), targets.max(initial=-1))) + 1
            n = max(n, 1)
        weights = np.resize(weights, sources.shape)
        if kind is GraphKind.UNDIRECTED:
            keep = sources != targets  # do not double self-loops
            sources, targets = (
                np.concatenate([sources, targets[keep]]),
                np.concatenate([targets, sources[keep]]),
            )
            weights = np.concatenate([weights, weights[keep]])
        A = Matrix.from_coo(
            sources,
            targets,
            weights,
            nrows=n,
            ncols=n,
            dtype=dtype or weights.dtype,
            dup=dup,
        )
        return cls(A, kind)

    @classmethod
    def from_dense(cls, array, *, missing=0, kind=GraphKind.DIRECTED) -> "Graph":
        return cls(Matrix.from_dense(array, missing=missing), kind)

    # -- basic properties --------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self.A.nrows

    @property
    def nvals(self) -> int:
        """Number of stored adjacency entries (2x edges if undirected)."""
        return self.A.nvals

    @property
    def nedges(self) -> int:
        """Number of edges (self-loops counted once)."""
        if self.kind is GraphKind.UNDIRECTED:
            return (self.nvals + self.nself_edges) // 2
        return self.nvals

    # -- cached properties (LAGraph_Cached_*) --------------------------------

    def delete_cached(self) -> None:
        """Drop every cached property (after mutating ``A``)."""
        self._cache.clear()

    @property
    def AT(self) -> Matrix:
        """Cached transpose (LAGraph_Cached_AT); A itself if undirected."""
        if self.kind is GraphKind.UNDIRECTED:
            return self.A
        if "AT" not in self._cache:
            T = Matrix(self.A.dtype, self.n, self.n)
            ops.transpose(T, self.A)
            self._cache["AT"] = T
        return self._cache["AT"]

    @property
    def out_degree(self) -> Vector:
        """Cached out-degree vector (LAGraph_Cached_OutDegree)."""
        if "out_degree" not in self._cache:
            d = Vector("INT64", self.n)
            # count in INT64: a BOOL-domain PLUS would saturate at one
            ones = Matrix("INT64", self.n, self.n)
            ops.apply(ones, self.A, "one")
            ops.reduce_rowwise(d, ones, "plus")
            self._cache["out_degree"] = d
        return self._cache["out_degree"]

    @property
    def in_degree(self) -> Vector:
        """Cached in-degree vector (LAGraph_Cached_InDegree)."""
        if self.kind is GraphKind.UNDIRECTED:
            return self.out_degree
        if "in_degree" not in self._cache:
            d = Vector("INT64", self.n)
            ones = Matrix("INT64", self.n, self.n)
            ops.apply(ones, self.A, "one")
            ops.reduce_rowwise(d, ones, "plus", desc="T0")
            self._cache["in_degree"] = d
        return self._cache["in_degree"]

    @property
    def is_symmetric_structure(self) -> bool:
        """Cached structural symmetry test."""
        if self.kind is GraphKind.UNDIRECTED:
            return True
        if "symmetric" not in self._cache:
            r1, c1, _ = self.A.extract_tuples()
            r2, c2, _ = self.AT.extract_tuples()
            self._cache["symmetric"] = bool(
                np.array_equal(r1, r2) and np.array_equal(c1, c2)
            )
        return self._cache["symmetric"]

    @property
    def nself_edges(self) -> int:
        """Cached count of self-loops (LAGraph_Cached_NSelfEdges)."""
        if "nself" not in self._cache:
            r, c, _ = self.A.extract_tuples()
            self._cache["nself"] = int(np.count_nonzero(r == c))
        return self._cache["nself"]

    def without_self_edges(self) -> "Graph":
        """A copy with the diagonal removed (LAGraph_DeleteSelfEdges)."""
        B = Matrix(self.A.dtype, self.n, self.n)
        ops.select(B, self.A, "offdiag")
        return Graph(B, self.kind)

    def enable_dual_storage(self) -> "Graph":
        """Keep CSR and CSC twins of A (and its cached transpose) alive.

        This is GraphBLAST's performance-oriented storage (section II.E,
        Figure 3): push traversal reads one orientation, pull the other, at
        2x memory.  Without it each push/pull switch pays an O(e log e)
        conversion.
        """
        self.A.keep_both_orientations(True)
        self.A.by_col()
        self.A.by_row()
        AT = self.AT
        if AT is not self.A:
            AT.keep_both_orientations(True)
            AT.by_col()
            AT.by_row()
        return self

    def structure(self, dtype="BOOL") -> Matrix:
        """The pattern of A as a boolean matrix of True entries."""
        B = Matrix(dtype, self.n, self.n)
        ops.apply(B, self.A, "one")
        return B

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Graph({self.kind.value}, n={self.n}, nvals={self.A._store.nvals})"
        )
