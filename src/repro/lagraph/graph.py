"""The LAGraph ``Graph`` object: an adjacency matrix plus cached properties.

The paper's section IV stresses that "graph algorithms do not occur in
isolation": the library hands algorithms a graph whose expensive derived
objects — the transpose, degree vectors, structural symmetry — are computed
once and cached, and returns opaque GraphBLAS handles so downstream
operations pay no copy cost.  This mirrors the ``LAGraph_Graph`` /
``LAGraph_Cached_*`` design the LAGraph project converged on.
"""

from __future__ import annotations

import enum

import numpy as np

from ..graphblas import Matrix, Vector, telemetry
from ..graphblas import operations as ops
from ..graphblas.errors import InvalidValue

__all__ = ["Graph", "GraphKind"]


class GraphKind(str, enum.Enum):
    """Adjacency interpretation (LAGraph_Kind)."""

    DIRECTED = "directed"
    UNDIRECTED = "undirected"


class Graph:
    """A graph held as an n x n adjacency matrix with cached properties.

    ``A[i, j]`` is the weight of edge i -> j (any GraphBLAS domain).  For
    ``UNDIRECTED`` graphs the matrix must be structurally symmetric (each
    edge stored in both directions), which :meth:`from_edges` arranges.
    """

    def __init__(self, A: Matrix, kind: GraphKind | str = GraphKind.DIRECTED):
        if A.nrows != A.ncols:
            raise InvalidValue("adjacency matrix must be square")
        self.A = A
        self.kind = GraphKind(kind)
        self._cache: dict[str, object] = {}
        # Settled A epoch each cached property was computed (or last
        # patched) at; a read whose recorded epoch trails ``A._epoch``
        # is never served as-is — it is patched forward from the delta
        # chain when a patcher exists, recomputed otherwise.
        self._cache_epoch: dict[str, int] = {}
        # the delta feed that makes cache maintenance incremental
        A.track_deltas(True)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        sources,
        targets,
        weights=None,
        *,
        n: int | None = None,
        kind: GraphKind | str = GraphKind.DIRECTED,
        dtype=None,
        dup="PLUS",
    ) -> "Graph":
        """Build from edge lists; undirected graphs get both directions."""
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if weights is None:
            weights = np.ones(sources.size, dtype=dtype or np.bool_)
        else:
            weights = np.asarray(weights)
        kind = GraphKind(kind)
        if n is None:
            n = int(max(sources.max(initial=-1), targets.max(initial=-1))) + 1
            n = max(n, 1)
        weights = np.resize(weights, sources.shape)
        if kind is GraphKind.UNDIRECTED:
            keep = sources != targets  # do not double self-loops
            sources, targets = (
                np.concatenate([sources, targets[keep]]),
                np.concatenate([targets, sources[keep]]),
            )
            weights = np.concatenate([weights, weights[keep]])
        A = Matrix.from_coo(
            sources,
            targets,
            weights,
            nrows=n,
            ncols=n,
            dtype=dtype or weights.dtype,
            dup=dup,
        )
        return cls(A, kind)

    @classmethod
    def from_dense(cls, array, *, missing=0, kind=GraphKind.DIRECTED) -> "Graph":
        return cls(Matrix.from_dense(array, missing=missing), kind)

    # -- basic properties --------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self.A.nrows

    @property
    def nvals(self) -> int:
        """Number of stored adjacency entries (2x edges if undirected)."""
        return self.A.nvals

    @property
    def nedges(self) -> int:
        """Number of edges (self-loops counted once)."""
        if self.kind is GraphKind.UNDIRECTED:
            return (self.nvals + self.nself_edges) // 2
        return self.nvals

    # -- cached properties (LAGraph_Cached_*) --------------------------------

    def delete_cached(self) -> None:
        """Drop every cached property (after mutating ``A``).

        No longer required for correctness — cache reads are epoch-checked
        and patched or recomputed automatically — but kept as the explicit
        LAGraph-style reset.
        """
        self._cache.clear()
        self._cache_epoch.clear()

    def _cache_get(self, key: str):
        """Serve ``key`` only at the current epoch, patching forward from
        the delta chain when this property knows how; None means the
        caller must recompute (and ``_cache_put`` the result)."""
        if key not in self._cache:
            return None
        cached_at = self._cache_epoch.get(key, -1)
        current = self.A._epoch
        if cached_at == current:
            return self._cache[key]
        patcher = _PATCHERS.get(key)
        if patcher is not None:
            chain = self.A.deltas_since(cached_at)
            if chain is not None:
                value = self._cache[key]
                for delta in chain:
                    value = patcher(self, value, delta)
                self._cache[key] = value
                self._cache_epoch[key] = self.A._epoch
                if telemetry.ENABLED:
                    telemetry.decision(
                        "graph.cache", key=key, patched=True,
                        windows=len(chain),
                    )
                return value
        # stale with no usable delta chain: recompute from scratch
        del self._cache[key]
        self._cache_epoch.pop(key, None)
        if telemetry.ENABLED:
            telemetry.decision("graph.cache", key=key, patched=False)
        return None

    def _cache_put(self, key: str, value):
        self._cache[key] = value
        self._cache_epoch[key] = self.A._epoch
        return value

    @property
    def AT(self) -> Matrix:
        """Cached transpose (LAGraph_Cached_AT); A itself if undirected."""
        if self.kind is GraphKind.UNDIRECTED:
            return self.A
        self.A.wait()
        T = self._cache_get("AT")
        if T is None:
            T = Matrix(self.A.dtype, self.n, self.n)
            ops.transpose(T, self.A)
            self._cache_put("AT", T)
        return T

    @property
    def out_degree(self) -> Vector:
        """Cached out-degree vector (LAGraph_Cached_OutDegree)."""
        self.A.wait()
        d = self._cache_get("out_degree")
        if d is None:
            d = Vector("INT64", self.n)
            # count in INT64: a BOOL-domain PLUS would saturate at one
            ones = Matrix("INT64", self.n, self.n)
            ops.apply(ones, self.A, "one")
            ops.reduce_rowwise(d, ones, "plus")
            self._cache_put("out_degree", d)
        return d

    @property
    def in_degree(self) -> Vector:
        """Cached in-degree vector (LAGraph_Cached_InDegree)."""
        if self.kind is GraphKind.UNDIRECTED:
            return self.out_degree
        self.A.wait()
        d = self._cache_get("in_degree")
        if d is None:
            d = Vector("INT64", self.n)
            ones = Matrix("INT64", self.n, self.n)
            ops.apply(ones, self.A, "one")
            ops.reduce_rowwise(d, ones, "plus", desc="T0")
            self._cache_put("in_degree", d)
        return d

    @property
    def is_symmetric_structure(self) -> bool:
        """Cached structural symmetry test (recomputed when stale: the
        predicate cannot be patched from a delta alone)."""
        if self.kind is GraphKind.UNDIRECTED:
            return True
        self.A.wait()
        sym = self._cache_get("symmetric")
        if sym is None:
            r1, c1, _ = self.A.extract_tuples()
            r2, c2, _ = self.AT.extract_tuples()
            sym = self._cache_put(
                "symmetric",
                bool(np.array_equal(r1, r2) and np.array_equal(c1, c2)),
            )
        return sym

    @property
    def nself_edges(self) -> int:
        """Cached count of self-loops (LAGraph_Cached_NSelfEdges)."""
        self.A.wait()
        nself = self._cache_get("nself")
        if nself is None:
            r, c, _ = self.A.extract_tuples()
            nself = self._cache_put("nself", int(np.count_nonzero(r == c)))
        return nself

    def without_self_edges(self) -> "Graph":
        """A copy with the diagonal removed (LAGraph_DeleteSelfEdges)."""
        B = Matrix(self.A.dtype, self.n, self.n)
        ops.select(B, self.A, "offdiag")
        return Graph(B, self.kind)

    def enable_dual_storage(self) -> "Graph":
        """Keep CSR and CSC twins of A (and its cached transpose) alive.

        This is GraphBLAST's performance-oriented storage (section II.E,
        Figure 3): push traversal reads one orientation, pull the other, at
        2x memory.  Without it each push/pull switch pays an O(e log e)
        conversion.
        """
        self.A.keep_both_orientations(True)
        self.A.by_col()
        self.A.by_row()
        AT = self.AT
        if AT is not self.A:
            AT.keep_both_orientations(True)
            AT.by_col()
            AT.by_row()
        return self

    def structure(self, dtype="BOOL") -> Matrix:
        """The pattern of A as a boolean matrix of True entries."""
        B = Matrix(dtype, self.n, self.n)
        ops.apply(B, self.A, "one")
        return B

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Graph({self.kind.value}, n={self.n}, nvals={self.A._store.nvals})"
        )


# -- cached-property patchers --------------------------------------------------
#
# Each takes (graph, cached value, DeltaBatch) and returns the value advanced
# by one assembled window, so `_cache_get` can maintain a property in O(delta)
# instead of recomputing it in O(e).  Properties without an entry here
# (structural symmetry) fall back to recompute-on-stale.


def _patch_degree(value: Vector, delta, *, by_row: bool) -> Vector:
    dd = value.to_dense(0).astype(np.int64, copy=False)
    nr, nc, _ = delta.new_edges()
    rr, rc, _ = delta.removed_edges()
    np.add.at(dd, nr if by_row else nc, 1)
    np.subtract.at(dd, rr if by_row else rc, 1)
    return Vector.from_dense(dd, missing=0, dtype="INT64")


def _patch_out_degree(g: "Graph", value: Vector, delta) -> Vector:
    return _patch_degree(value, delta, by_row=True)


def _patch_in_degree(g: "Graph", value: Vector, delta) -> Vector:
    return _patch_degree(value, delta, by_row=False)


def _patch_transpose(g: "Graph", T: Matrix, delta) -> Matrix:
    # replay the window on the transpose with rows and columns swapped;
    # insertions and deletions are coordinate-disjoint after resolution,
    # so one batch applies them all
    rows = np.concatenate([delta.ins_cols, delta.del_cols])
    cols = np.concatenate([delta.ins_rows, delta.del_rows])
    vals = np.concatenate(
        [delta.ins_values, np.zeros(delta.del_rows.size, dtype=T.dtype.np_dtype)]
    )
    dels = np.concatenate(
        [
            np.zeros(delta.ins_rows.size, dtype=bool),
            np.ones(delta.del_rows.size, dtype=bool),
        ]
    )
    if rows.size:
        T.update_batch(rows, cols, vals, deleted=dels)
        T.wait()
    return T


def _patch_nself(g: "Graph", nself: int, delta) -> int:
    nr, nc, _ = delta.new_edges()
    rr, rc, _ = delta.removed_edges()
    return (
        nself
        + int(np.count_nonzero(nr == nc))
        - int(np.count_nonzero(rr == rc))
    )


_PATCHERS = {
    "out_degree": _patch_out_degree,
    "in_degree": _patch_in_degree,
    "AT": _patch_transpose,
    "nself": _patch_nself,
}
