"""A* search — the paper's "important but not yet implemented on a
GraphBLAS-like library" list (section V).

This extension shows the natural decomposition: the priority queue and
admissible heuristic stay in the host language, while neighbour expansion
is a GraphBLAS row extract on the opaque adjacency matrix — no adjacency
lists ever materialize outside the GraphBLAS.
"""

from __future__ import annotations

import heapq
from typing import Callable

import numpy as np

from ..graphblas import Vector
from ..graphblas import operations as ops
from ..graphblas.errors import InvalidValue
from .graph import Graph

__all__ = ["astar_path", "astar_distance"]


def _expand(graph: Graph, u: int) -> tuple[np.ndarray, np.ndarray]:
    """Out-neighbours of u and edge weights, via a GrB column extract of A^T."""
    w = Vector(graph.A.dtype, graph.n)
    ops.extract(w, graph.A, ops.ALL, int(u), desc="T0")  # w = A(u, :)
    return w.extract_tuples()


def astar_path(
    source: int,
    target: int,
    graph: Graph,
    heuristic: Callable[[int], float] | None = None,
) -> tuple[list[int], float]:
    """A* shortest path; returns (vertex path, distance).

    ``heuristic(v)`` must lower-bound the distance v -> target (defaults to
    0, i.e. Dijkstra).  Raises if no path exists or weights are negative.
    """
    n = graph.n
    if not (0 <= source < n and 0 <= target < n):
        raise InvalidValue("source/target out of range")
    h = heuristic if heuristic is not None else (lambda v: 0.0)

    dist = {source: 0.0}
    parent: dict[int, int] = {}
    heap: list[tuple[float, int]] = [(h(source), source)]
    done: set[int] = set()

    while heap:
        f, u = heapq.heappop(heap)
        if u in done:
            continue
        if u == target:
            path = [u]
            while path[-1] != source:
                path.append(parent[path[-1]])
            return path[::-1], dist[u]
        done.add(u)
        nbrs, weights = _expand(graph, u)
        for v, w in zip(nbrs, weights):
            w = float(w)
            if w < 0:
                raise InvalidValue("A* requires non-negative weights")
            nd = dist[u] + w
            v = int(v)
            if v not in dist or nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd + h(v), v))
    raise InvalidValue(f"no path from {source} to {target}")


def astar_distance(source: int, target: int, graph: Graph, heuristic=None) -> float:
    """Shortest-path weight from :func:`astar_path` (path discarded)."""
    return astar_path(source, target, graph, heuristic)[1]
