"""Collaborative filtering by stochastic gradient descent (section V, [39]).

GraphMat-style matrix-factorization CF: factor a sparse rating matrix
``R ~ U V^T`` (U: users x k, V: items x k) by gradient descent on the
squared error over R's *stored entries only*.  The signature GraphBLAS
step is the masked product ``P<R> = U (+).(x) V^T`` — predictions are
computed exactly on the rating pattern, never densified.
"""

from __future__ import annotations

import numpy as np

from ..graphblas import Matrix
from ..graphblas import operations as ops
from ..graphblas.descriptor import Descriptor
from ..graphblas.errors import InvalidValue

__all__ = ["CFModel", "train_cf", "cf_rmse"]

_RS = Descriptor(replace=True, structural_mask=True)


class CFModel:
    """Learned factors; predict with :meth:`predict` / score with rmse."""

    def __init__(self, U: Matrix, V: Matrix):
        self.U = U
        self.V = V

    def predict(self, R_pattern: Matrix) -> Matrix:
        """Masked predictions on the given rating pattern."""
        P = Matrix("FP64", R_pattern.nrows, R_pattern.ncols)
        ops.mxm(
            P,
            self.U,
            self.V,
            "PLUS_TIMES",
            mask=R_pattern,
            desc=_RS & Descriptor(transpose_b=True),
        )
        return P

    def predict_one(self, user: int, item: int) -> float:
        urow = self.U.to_dense()[user]
        vrow = self.V.to_dense()[item]
        return float(urow @ vrow)


def cf_rmse(R: Matrix, model: CFModel) -> float:
    """Root-mean-squared error over R's stored ratings."""
    P = model.predict(R)
    E = Matrix("FP64", R.nrows, R.ncols)
    ops.ewise_add(E, R, _neg(P), "PLUS")
    sq = Matrix("FP64", R.nrows, R.ncols)
    ops.ewise_mult(sq, E, E, "TIMES")
    return float(np.sqrt(ops.reduce_scalar(sq, "PLUS") / max(R.nvals, 1)))


def _neg(M: Matrix) -> Matrix:
    out = Matrix("FP64", *M.shape)
    ops.apply(out, M, "ainv")
    return out


def train_cf(
    R: Matrix,
    rank: int = 8,
    *,
    epochs: int = 30,
    lr: float = 0.01,
    reg: float = 0.05,
    seed: int | None = 0,
) -> tuple[CFModel, list[float]]:
    """Batch-gradient matrix factorization; returns (model, rmse history).

    Per epoch (all as GraphBLAS products):

    * ``E<R> = R - U V^T``                 (masked error)
    * ``U  += lr * (D_u E V - reg U)``     (user-factor gradient, mxm)
    * ``V  += lr * (D_i E^T U - reg V)``   (item-factor gradient, mxm)

    ``D_u``/``D_i`` scale each row by 1/(its rating count), making the
    per-epoch step an *average* gradient so ``lr`` is independent of how
    many ratings a user or item has.
    """
    if rank <= 0:
        raise InvalidValue("rank must be positive")
    rng = np.random.default_rng(seed)
    nu, ni = R.shape
    scale = 1.0 / np.sqrt(rank)
    U = Matrix.from_dense(rng.normal(0, scale, (nu, rank)))
    V = Matrix.from_dense(rng.normal(0, scale, (ni, rank)))
    model = CFModel(U, V)
    Du = ops.diag(_inv_counts(R, rows=True))
    Di = ops.diag(_inv_counts(R, rows=False))

    history = [cf_rmse(R, model)]
    for _ in range(epochs):
        P = model.predict(R)
        E = Matrix("FP64", nu, ni)
        ops.ewise_add(E, R, _neg(P), "PLUS")  # E = R - P on R's pattern

        GU = Matrix("FP64", nu, rank)
        ops.mxm(GU, E, model.V, "PLUS_TIMES")  # E V
        ops.mxm(GU, Du, GU, "PLUS_TIMES")  # average over each user's ratings
        GV = Matrix("FP64", ni, rank)
        ops.mxm(GV, E, model.U, "PLUS_TIMES", desc="T0")  # E^T U
        ops.mxm(GV, Di, GV, "PLUS_TIMES")

        model.U = _axpy(model.U, GU, lr, reg)
        model.V = _axpy(model.V, GV, lr, reg)
        history.append(cf_rmse(R, model))
    return model, history


def _inv_counts(R: Matrix, rows: bool) -> "Vector":
    """1 / (entries per row or column), entries only where count > 0."""
    from ..graphblas import Vector

    n = R.nrows if rows else R.ncols
    ones = Matrix("FP64", *R.shape)
    ops.apply(ones, R, "one")
    counts = Vector("FP64", n)
    ops.reduce_rowwise(counts, ones, "PLUS", desc=None if rows else "T0")
    inv = Vector("FP64", n)
    ops.apply(inv, counts, "minv")
    return inv


def _axpy(X: Matrix, G: Matrix, lr: float, reg: float) -> Matrix:
    """X <- (1 - lr*reg) * X + lr * G."""
    shrunk = Matrix("FP64", *X.shape)
    ops.apply(shrunk, X, "times", right=1.0 - lr * reg)
    step = Matrix("FP64", *G.shape)
    ops.apply(step, G, "times", right=lr)
    out = Matrix("FP64", *X.shape)
    ops.ewise_add(out, shrunk, step, "PLUS")
    return out
