"""Single-source shortest paths: Bellman-Ford and delta-stepping.

The paper's catalogue lists single-source shortest path with the
linear-algebraic delta-stepping of Sridhar et al. [32] as the reference
GraphBLAS formulation; plain Bellman-Ford over the (min, +) semiring is
the textbook baseline both for testing and for the Table II comparison.
"""

from __future__ import annotations

import numpy as np

from ..graphblas import Vector, governor, telemetry
from ..graphblas import operations as ops
from ..graphblas.descriptor import Descriptor
from ..graphblas.errors import InvalidValue
from .graph import Graph

__all__ = ["bellman_ford_sssp", "delta_stepping_sssp", "sssp"]

_S = Descriptor(structural_mask=True)


def bellman_ford_sssp(
    source: int,
    graph: Graph,
    *,
    max_iters: int | None = None,
    checkpoint=None,
    resume=None,
) -> Vector:
    """Bellman-Ford over the (min, +) semiring.

    ``d'(j) = min(d(j), min_i d(i) + A(i, j))`` iterated to fixpoint; raises
    on a negative-weight cycle.  Unreachable vertices have no entry.

    ``checkpoint`` snapshots the distance vector after each completed
    relaxation round; ``resume`` restarts from such a snapshot.  Each
    round depends only on the loop-carried distances, so a resumed run is
    bit-identical.  The governor's cancellation token is polled per round.
    """
    n = graph.n
    if not 0 <= int(source) < n:
        raise InvalidValue(f"source {source} outside [0,{n})")
    cp = governor.as_checkpoint(checkpoint)
    if resume is not None:
        st = governor.load_checkpoint(resume, algorithm="sssp")
        d = st["d"]
        start = int(st["__iteration__"]) + 1
        if d.size != n:
            raise InvalidValue(
                f"checkpoint distance vector has size {d.size}, graph has {n}"
            )
    else:
        d = Vector("FP64", n)
        d.set_element(source, 0.0)
        start = 0
    limit = n if max_iters is None else max_iters
    with telemetry.span("sssp.bellman_ford", source=int(source), n=n):
        for it in range(start, limit):
            if governor.ACTIVE:
                governor.poll()
            prev = d.dup()
            # d<-- min over incoming relaxations, folded in with the MIN accum
            ops.vxm(d, d, graph.A, "MIN_PLUS", accum="MIN")
            if telemetry.ENABLED:
                telemetry.instant(
                    "sssp.iteration", iteration=it, reached=int(d.nvals)
                )
            if cp is not None:
                governor.save_hook(cp, "sssp", it, {"d": d})
            if d.isequal(prev):
                return d
    # one more relaxation still improving => negative cycle
    prev = d.dup()
    ops.vxm(d, d, graph.A, "MIN_PLUS", accum="MIN")
    if not d.isequal(prev):
        raise InvalidValue("graph contains a negative-weight cycle")
    return d


def delta_stepping_sssp(source: int, graph: Graph, delta: float | None = None) -> Vector:
    """Delta-stepping SSSP (Sridhar et al. [32]) for non-negative weights.

    Edges are split into light (w <= delta) and heavy (w > delta); vertices
    settle bucket by bucket, with a light-edge relaxation loop inside each
    bucket followed by one heavy-edge relaxation out of it.
    """
    n = graph.n
    if not 0 <= int(source) < n:
        raise InvalidValue(f"source {source} outside [0,{n})")
    _, _, weights = graph.A.extract_tuples()
    if weights.size and weights.min() < 0:
        raise InvalidValue("delta-stepping requires non-negative weights")
    if delta is None:
        # common heuristic: average edge weight (falls back to 1)
        delta = float(weights.mean()) if weights.size else 1.0
    if delta <= 0:
        raise InvalidValue("delta must be positive")

    from ..graphblas import Matrix

    AL = Matrix("FP64", n, n)
    ops.select(AL, graph.A, "VALUELE", delta)
    AH = Matrix("FP64", n, n)
    ops.select(AH, graph.A, "VALUEGT", delta)

    t = Vector("FP64", n)
    t.set_element(source, 0.0)

    settled_below = 0.0  # everything with distance < settled_below is final
    span = telemetry.span("sssp.delta_stepping", source=int(source), n=n, delta=delta)
    with span:
        bucket_no = 0
        while True:
            if governor.ACTIVE:
                governor.poll()  # bucket boundary: distances stay valid
            # find the next non-empty bucket
            frontier_all = Vector("FP64", n)
            ops.select(frontier_all, t, "VALUEGE", settled_below)
            if frontier_all.nvals == 0:
                break
            bucket_lo = float(ops.reduce_scalar(frontier_all, "MIN"))
            step = int(np.floor(bucket_lo / delta))
            lo, hi = step * delta, (step + 1) * delta
            if telemetry.ENABLED:
                telemetry.instant(
                    "sssp.bucket",
                    bucket=bucket_no,
                    lo=lo,
                    hi=hi,
                    candidates=int(frontier_all.nvals),
                )
            bucket_no += 1

            # light-edge fixpoint within the bucket
            while True:
                tB = Vector("FP64", n)
                ops.select(tB, t, "VALUEGE", lo)
                ops.select(tB, tB, "VALUELT", hi)
                before = t.dup()
                ops.vxm(t, tB, AL, "MIN_PLUS", accum="MIN")
                if t.isequal(before):
                    break
            # one heavy-edge relaxation out of the settled bucket
            tB = Vector("FP64", n)
            ops.select(tB, t, "VALUEGE", lo)
            ops.select(tB, tB, "VALUELT", hi)
            ops.vxm(t, tB, AH, "MIN_PLUS", accum="MIN")
            settled_below = hi
    return t


def sssp(source: int, graph: Graph, *, method: str = "delta", delta: float | None = None) -> Vector:
    """Dispatching front-end: ``method`` is ``"delta"`` or ``"bellman-ford"``."""
    if method in ("delta", "delta-stepping"):
        return delta_stepping_sssp(source, graph, delta)
    if method in ("bf", "bellman-ford", "bellman_ford"):
        return bellman_ford_sssp(source, graph)
    raise InvalidValue(f"unknown sssp method {method!r}")
