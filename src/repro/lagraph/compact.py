"""Single-purpose "application-style" algorithms for the Table II count.

Table II of the paper counts *application* code: one algorithm, one
purpose, written against the framework (Ligra, GraphIt, or the GraphBLAS).
The library implementations in this package are multi-featured (combined
level+parent BFS, pluggable direction optimizers, validators), so for a
like-for-like count this module carries the plain single-purpose versions
— exactly what a LAGraph *user* would write.  Each is tested to produce
identical results to its full-featured sibling.
"""

from __future__ import annotations

import numpy as np

from ..graphblas import Matrix, Vector
from ..graphblas import operations as ops
from .graph import Graph

__all__ = ["bfs_levels_compact", "sssp_compact", "local_clustering_compact"]


def bfs_levels_compact(source: int, graph: Graph) -> Vector:
    """Level BFS, Figure 2 style (source at level 0)."""
    n = graph.n
    levels = Vector("INT64", n)
    frontier = Vector("BOOL", n)
    frontier.set_element(source, True)
    depth = 0
    while frontier.nvals > 0:
        ops.assign(levels, depth, ops.ALL, mask=frontier, desc="S")
        ops.mxv(frontier, graph.AT, frontier, "LOR_LAND", mask=levels, desc="RSC")
        depth += 1
    return levels


def sssp_compact(source: int, graph: Graph, delta: float = 2.0) -> Vector:
    """Delta-stepping SSSP (non-negative weights)."""
    n = graph.n
    AL = Matrix("FP64", n, n)
    ops.select(AL, graph.A, "VALUELE", delta)
    AH = Matrix("FP64", n, n)
    ops.select(AH, graph.A, "VALUEGT", delta)
    t = Vector("FP64", n)
    t.set_element(source, 0.0)
    settled = 0.0
    while True:
        rest = Vector("FP64", n)
        ops.select(rest, t, "VALUEGE", settled)
        if rest.nvals == 0:
            return t
        lo = float(ops.reduce_scalar(rest, "MIN")) // delta * delta
        hi = lo + delta
        while True:
            tB = Vector("FP64", n)
            ops.select(tB, t, "VALUEGE", lo)
            ops.select(tB, tB, "VALUELT", hi)
            before = t.dup()
            ops.vxm(t, tB, AL, "MIN_PLUS", accum="MIN")
            if t.isequal(before):
                break
        ops.vxm(t, tB, AH, "MIN_PLUS", accum="MIN")
        settled = hi


def local_clustering_compact(
    seed: int, graph: Graph, alpha: float = 0.15, eps: float = 1e-5
) -> np.ndarray:
    """ACL push + sweep cut; returns the member vertex ids."""
    from .clustering import conductance

    n = graph.n
    deg = np.maximum(graph.out_degree.to_dense(), 1).astype(float)
    S = graph.structure("FP64")
    p = Vector("FP64", n)
    r = Vector("FP64", n)
    r.set_element(seed, 1.0)
    while True:
        ri, rv = r.extract_tuples()
        sel = rv >= eps * deg[ri]
        heavy, hv = ri[sel], rv[sel]
        if heavy.size == 0:
            break
        ops.ewise_add(p, p, Vector.from_coo(heavy, alpha * hv, size=n), "PLUS")
        keep = Vector.from_coo(np.arange(heavy.size), (1 - alpha) / 2 * hv, size=heavy.size)
        src = Vector.from_coo(heavy, (1 - alpha) / 2 * hv / deg[heavy], size=n)
        spread = Vector("FP64", n)
        ops.vxm(spread, src, S, "PLUS_TIMES")
        ops.assign(r, keep, heavy)
        ops.ewise_add(r, r, spread, "PLUS")
    pi, pv = p.extract_tuples()
    order = pi[np.argsort(-pv / deg[pi], kind="stable")]
    best, best_cond = order[:1], np.inf
    for k in range(1, order.size + 1):
        cond = conductance(graph, order[:k])
        if cond < best_cond:
            best, best_cond = order[:k], cond
    return np.sort(best)
