"""Per-algorithm validators — the paper's "test harness for each algorithm".

Section III lists a test harness among the repository's basic elements.
These checkers validate algorithm *outputs* from first principles (no
oracle), so they run both in the pytest suite and inside the benchmark
harness on large random graphs where oracles are too slow.
"""

from __future__ import annotations

import numpy as np

from ..graphblas import Vector
from .graph import Graph

__all__ = [
    "check_bfs_levels",
    "check_bfs_parents",
    "check_sssp_distances",
    "check_component_labels",
    "check_pagerank",
]


def check_bfs_levels(graph: Graph, source: int, levels: Vector) -> None:
    """BFS-level invariants: source at 0; every edge spans <= 1 level;
    every reached non-source vertex has an in-neighbour one level up."""
    li, lvl = levels.extract_tuples()
    lv = {int(i): int(x) for i, x in zip(li, lvl)}
    assert lv.get(source) == 0, "source level must be 0"
    r, c, _ = graph.A.extract_tuples()
    for u, v in zip(r, c):
        u, v = int(u), int(v)
        if u in lv:
            assert v in lv, f"reached {u} has unreached successor {v}"
            assert lv[v] <= lv[u] + 1, f"edge ({u},{v}) spans >1 level"
    preds: dict[int, set[int]] = {}
    for u, v in zip(r, c):
        preds.setdefault(int(v), set()).add(int(u))
    for v, d in lv.items():
        if v == source:
            continue
        assert any(
            lv.get(p) == d - 1 for p in preds.get(v, ())
        ), f"{v} at level {d} lacks a level-{d-1} predecessor"


def check_bfs_parents(graph: Graph, source: int, parents: Vector, levels: Vector) -> None:
    """Parent invariants: parent edges exist and climb exactly one level."""
    pi, pv = parents.extract_tuples()
    li, lvl = levels.extract_tuples()
    lv = {int(i): int(x) for i, x in zip(li, lvl)}
    assert set(int(i) for i in pi) == set(lv), "parent/level patterns differ"
    for v, p in zip(pi, pv):
        v, p = int(v), int(p)
        if v == source:
            assert p == source, "source must be its own parent"
            continue
        assert graph.A.get(p, v) is not None, f"parent edge ({p},{v}) missing"
        assert lv[p] == lv[v] - 1, f"parent of {v} not one level up"


def check_sssp_distances(graph: Graph, source: int, dist: Vector) -> None:
    """SSSP invariants: d(source)=0; triangle inequality tight somewhere."""
    di, dv = dist.extract_tuples()
    d = {int(i): float(x) for i, x in zip(di, dv)}
    assert d.get(source) == 0.0, "source distance must be 0"
    r, c, w = graph.A.extract_tuples()
    ins: dict[int, list[tuple[int, float]]] = {}
    for u, v, x in zip(r, c, w):
        u, v, x = int(u), int(v), float(x)
        if u in d:
            assert v in d, f"finite {u} has unreached successor {v}"
            assert d[v] <= d[u] + x + 1e-9, f"edge ({u},{v}) relaxable"
        ins.setdefault(v, []).append((u, x))
    for v, dval in d.items():
        if v == source:
            continue
        assert any(
            abs(d.get(u, np.inf) + x - dval) < 1e-9 for u, x in ins.get(v, [])
        ), f"{v} has no tight incoming edge"


def check_component_labels(graph: Graph, labels: Vector) -> None:
    """CC invariants: every vertex labelled; endpoints share labels; labels
    are the minimum vertex id of their component (canonical form)."""
    li, lval = labels.extract_tuples()
    assert li.size == graph.n, "every vertex needs a label"
    lab = np.asarray(lval)
    r, c, _ = graph.A.extract_tuples()
    assert np.all(lab[r] == lab[c]), "edge endpoints in different components"
    for comp in np.unique(lab):
        members = np.flatnonzero(lab == comp)
        assert comp == members.min(), "label must be min member id"


def check_pagerank(rank: Vector, tol: float = 1e-6) -> None:
    """PageRank invariants: dense, positive, sums to 1."""
    assert rank.nvals == rank.size, "rank vector must be dense"
    vals = rank.to_dense()
    assert np.all(vals > 0), "ranks must be positive"
    assert abs(vals.sum() - 1.0) < tol, "ranks must sum to 1"
