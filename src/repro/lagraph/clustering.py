"""Clustering algorithms (paper section V, refs [45], [46]).

* :func:`markov_clustering` — MCL (van Dongen; HipMCL [45] is its
  distributed GraphBLAS incarnation): alternate *expansion* (semiring
  squaring of the column-stochastic matrix), *inflation* (Hadamard power +
  renormalization) and *pruning* (select of small entries) to a fixpoint;
  clusters are read off the attractor rows.
* :func:`peer_pressure_clustering` — Gilbert, Reinhardt & Shah [46]: each
  vertex adopts the most common cluster among its neighbours, computed as
  one cluster-indicator x adjacency product plus a column-argmax, iterated
  to a fixpoint.
* :func:`local_clustering` — the Table II "local graph clustering" row:
  Andersen-Chung-Lang approximate personalized PageRank push, followed by
  a conductance sweep cut.
"""

from __future__ import annotations

import numpy as np

from ..graphblas import Matrix, Vector
from ..graphblas import operations as ops
from ..graphblas.descriptor import Descriptor
from ..graphblas.errors import InvalidValue
from .graph import Graph

__all__ = [
    "markov_clustering",
    "peer_pressure_clustering",
    "local_clustering",
    "conductance",
]

_RS = Descriptor(replace=True, structural_mask=True)


def _column_normalize(M: Matrix) -> Matrix:
    """Scale columns to sum to 1 (column-stochastic), via diag scaling."""
    n = M.ncols
    s = Vector("FP64", n)
    ops.reduce_rowwise(s, M, "PLUS", desc="T0")  # column sums
    inv = Vector("FP64", n)
    ops.apply(inv, s, "minv")
    D = ops.diag(inv)
    out = Matrix("FP64", M.nrows, n)
    ops.mxm(out, M, D, "PLUS_TIMES")
    return out


def markov_clustering(
    graph: Graph,
    *,
    expansion: int = 2,
    inflation: float = 2.0,
    prune: float = 1e-4,
    max_iters: int = 100,
    add_self_loops: bool = True,
) -> Vector:
    """MCL; returns an INT64 cluster-id vector (ids are attractor vertices)."""
    if expansion < 2:
        raise InvalidValue("expansion must be >= 2")
    n = graph.n
    M = Matrix("FP64", n, n)
    ops.apply(M, graph.A, "one")
    if add_self_loops:
        eye = Matrix.sparse_identity(n, dtype="FP64", value=1.0)
        ops.ewise_add(M, M, eye, "MAX")
    M = _column_normalize(M)

    for _ in range(max_iters):
        prev = M.dup()
        # expansion: M <- M^expansion over (+, x)
        E = M.dup()
        for _ in range(expansion - 1):
            nxt = Matrix("FP64", n, n)
            ops.mxm(nxt, E, M, "PLUS_TIMES")
            E = nxt
        # inflation: Hadamard power, then renormalize columns
        ops.apply(E, E, "pow", right=inflation)
        # pruning of tiny entries keeps the iteration sparse
        pruned = Matrix("FP64", n, n)
        ops.select(pruned, E, "VALUEGT", prune)
        M = _column_normalize(pruned)
        # convergence: no structural change and small value drift
        diff = Matrix("FP64", n, n)
        ops.ewise_add(diff, M, neg_m(prev), "PLUS")
        ops.apply(diff, diff, "abs")
        if float(ops.reduce_scalar(diff, "MAX")) < 1e-8:
            break

    # attractors: vertices with mass on their own diagonal; each column's
    # cluster is its strongest attractor row
    r, c, v = M.extract_tuples()
    labels = np.full(n, -1, dtype=np.int64)
    best = np.full(n, -1.0)
    for i, j, x in zip(r, c, v):
        if x > best[j]:
            best[j] = x
            labels[j] = i
    # canonicalize ids: label of an attractor is itself
    for j in range(n):
        if labels[j] >= 0 and labels[labels[j]] >= 0:
            labels[j] = labels[labels[j]]
    return Vector.from_dense(labels)


def neg_m(M: Matrix) -> Matrix:
    out = Matrix("FP64", *M.shape)
    ops.apply(out, M, "ainv")
    return out


def peer_pressure_clustering(
    graph: Graph, *, max_iters: int = 50
) -> Vector:
    """Peer-pressure clustering; returns an INT64 cluster-id vector."""
    n = graph.n
    S = graph.structure("FP64")
    # every vertex starts in its own cluster: C is cluster x vertex one-hot
    C = Matrix.sparse_identity(n, dtype="FP64", value=1.0)

    for _ in range(max_iters):
        # votes: T(c, v) = number of v's neighbours in cluster c
        T = Matrix("FP64", n, n)
        ops.mxm(T, C, S, "PLUS_TIMES")
        # each vertex also votes for its current cluster (tie stability)
        ops.ewise_add(T, T, half(C), "PLUS")
        # column argmax: strongest cluster per vertex, min id on ties
        m = Vector("FP64", n)
        ops.reduce_rowwise(m, T, "MAX", desc="T0")
        D = ops.diag(m)
        colmax = Matrix("FP64", n, n)
        ops.mxm(colmax, T, D, "ANY_SECOND")
        winners = Matrix("BOOL", n, n)
        ops.ewise_mult(winners, T, colmax, "GE")
        w2 = Matrix("BOOL", n, n)
        ops.select(w2, winners, "VALUEEQ", True)
        rowidx = Matrix("INT64", n, n)
        ops.apply(rowidx, w2, "ROWINDEX", thunk=0)
        newlab = Vector("INT64", n)
        ops.reduce_rowwise(newlab, rowidx, "MIN", desc="T0")
        # rebuild the indicator from the new labels
        li, lv = newlab.extract_tuples()
        C_next = Matrix.from_coo(
            lv, li, np.ones(li.size), nrows=n, ncols=n, dtype="FP64"
        )
        if C_next.isequal(C):
            break
        C = C_next

    li, lv = newlab.extract_tuples()
    labels = np.arange(n, dtype=np.int64)
    labels[li] = lv
    return Vector.from_dense(labels)


def half(C: Matrix) -> Matrix:
    """C * 0.5 — a self-vote smaller than any full neighbour vote."""
    out = Matrix("FP64", *C.shape)
    ops.apply(out, C, "times", right=0.5)
    return out


def local_clustering(
    seed_vertex: int,
    graph: Graph,
    *,
    alpha: float = 0.15,
    eps: float = 1e-5,
    max_pushes: int = 10_000,
) -> tuple[np.ndarray, float]:
    """ACL approximate-PPR local clustering around ``seed_vertex``.

    Returns (member vertex ids, conductance of the sweep cut) — the
    Table II "local graph clustering" computation.
    """
    n = graph.n
    deg = np.maximum(graph.out_degree.to_dense(), 1).astype(np.float64)
    S = graph.structure("FP64")

    p = Vector("FP64", n)
    r = Vector("FP64", n)
    r.set_element(seed_vertex, 1.0)

    for _ in range(max_pushes):
        # vectorized batch push: all vertices with r(u) >= eps * deg(u)
        ri, rv = r.extract_tuples()
        sel = rv >= eps * deg[ri]
        heavy, hv = ri[sel], rv[sel]
        if heavy.size == 0:
            break
        # p += alpha * r_heavy
        add_p = Vector.from_coo(heavy, alpha * hv, size=n)
        ops.ewise_add(p, p, add_p, "PLUS")
        # lazy-walk push: half the remaining mass stays, half spreads
        keep = Vector.from_coo(
            np.arange(heavy.size), (1 - alpha) / 2 * hv, size=heavy.size
        )
        spread_src = Vector.from_coo(
            heavy, (1 - alpha) / 2 * hv / deg[heavy], size=n
        )
        spread = Vector("FP64", n)
        ops.vxm(spread, spread_src, S, "PLUS_TIMES")
        ops.assign(r, keep, heavy)  # r_heavy <- kept mass
        ops.ewise_add(r, r, spread, "PLUS")

    # sweep cut: order by p/deg, take the prefix of minimum conductance
    pi, pv = p.extract_tuples()
    if pi.size == 0:
        return np.array([seed_vertex], dtype=np.int64), 1.0
    order = pi[np.argsort(-pv / deg[pi], kind="stable")]
    best_set, best_cond = order[:1], np.inf
    for k in range(1, order.size + 1):
        cond = conductance(graph, order[:k])
        if cond < best_cond:
            best_cond = cond
            best_set = order[:k]
    return np.sort(best_set), float(best_cond)


def conductance(graph: Graph, members) -> float:
    """Cut edges / min(vol(S), vol(V-S)) for vertex set ``members``."""
    members = np.asarray(members, dtype=np.int64)
    n = graph.n
    ind = Vector.from_coo(np.sort(members), np.ones(members.size), size=n)
    deg = graph.out_degree.to_dense().astype(np.float64)
    vol_s = float(deg[members].sum())
    vol_rest = float(deg.sum() - vol_s)
    if min(vol_s, vol_rest) == 0:
        return 1.0
    # edges leaving S: sum over members of neighbours outside S
    S = graph.structure("FP64")
    hits = Vector("FP64", n)
    ops.vxm(hits, ind, S, "PLUS_TIMES")
    inside = Vector("FP64", n)
    ops.ewise_mult(inside, hits, ind, "FIRST")
    cut = float(ops.reduce_scalar(hits, "PLUS")) - float(
        ops.reduce_scalar(inside, "PLUS")
    )
    return cut / min(vol_s, vol_rest)
