"""k-truss decomposition (paper section V, refs [36], [37]).

A k-truss is a maximal subgraph in which every edge participates in at
least k-2 triangles.  Davis's GraphBLAS formulation [36] iterates one
masked SpGEMM per round: the *support* of every surviving edge is
``(C*C) .* C`` (its triangle count in the current subgraph); edges below
k-2 are deleted with ``select`` until a fixpoint.
"""

from __future__ import annotations

import numpy as np

from ..graphblas import Matrix
from ..graphblas import operations as ops
from ..graphblas.descriptor import Descriptor
from ..graphblas.errors import InvalidValue
from .graph import Graph

__all__ = ["ktruss", "ktruss_incremental", "all_ktruss", "trussness"]

_RS = Descriptor(replace=True, structural_mask=True)


def ktruss(graph: Graph, k: int) -> Matrix:
    """The k-truss subgraph; entries hold each edge's triangle support."""
    if k < 3:
        raise InvalidValue("k-truss requires k >= 3")
    C = graph.without_self_edges().structure("INT64")
    n = C.nrows
    while True:
        nvals_before = C.nvals
        S = Matrix("INT64", n, n)
        # support: number of triangles each current edge belongs to
        ops.mxm(S, C, C, "PLUS_LAND", mask=C, desc=_RS, method="dot")
        keep = Matrix("INT64", n, n)
        ops.select(keep, S, "VALUEGE", k - 2)
        C = keep
        if C.nvals == nvals_before:
            return C


def ktruss_incremental(graph: Graph, k: int) -> Matrix:
    """Edge-centric k-truss (Low et al. [37] flavor): recompute support only
    for edges *touched* by the previous round's deletions.

    A deleted edge (u, v) can only change the support of edges incident to
    u or v, so each round the masked support product is restricted to the
    rows/columns of dirty vertices — the work shrinks with the frontier of
    deletions instead of rescanning the whole surviving graph.  Produces
    exactly the same k-truss as :func:`ktruss`.
    """
    if k < 3:
        raise InvalidValue("k-truss requires k >= 3")
    import numpy as np

    C = graph.without_self_edges().structure("INT64")
    n = C.nrows
    # full support once up front; edges in no triangle must be present with
    # an explicit 0 so the deletion select can see them
    S = Matrix("INT64", n, n)
    ops.mxm(S, C, C, "PLUS_LAND", mask=C, desc=_RS, method="dot")
    zeros = Matrix("INT64", n, n)
    ops.apply(zeros, C, "times", right=0)
    ops.ewise_add(S, S, zeros, "FIRST")

    while True:
        low = Matrix("INT64", n, n)
        ops.select(low, S, "VALUELT", k - 2)
        if low.nvals == 0:
            return C
        # drop the under-supported edges
        keep = Matrix("INT64", n, n)
        ops.select(keep, S, "VALUEGE", k - 2)
        C = Matrix("INT64", n, n)
        ops.apply(C, keep, "one")
        # vertices that lost an edge: only their incident edges can change
        lr, lc, _ = low.extract_tuples()
        dirty = np.unique(np.concatenate([lr, lc]))
        # surviving edges incident to a dirty vertex
        er, ec, ev = keep.extract_tuples()
        touched = np.isin(er, dirty) | np.isin(ec, dirty)
        # recompute support just for the touched edges (masked dot product)
        patch_mask = Matrix.from_coo(
            er[touched],
            ec[touched],
            np.ones(int(touched.sum()), dtype=np.int64),
            nrows=n,
            ncols=n,
            dtype="INT64",
        )
        patch = Matrix("INT64", n, n)
        if patch_mask.nvals:
            ops.mxm(patch, C, C, "PLUS_LAND", mask=patch_mask, desc=_RS, method="dot")
        # untouched edges keep their old support; touched take the new one
        # (touched edges absent from the patch now have zero support — they
        # must stay present with value 0 so the next select can drop them)
        from ..graphblas.coords import match_coo

        pr, pc, pv = patch.extract_tuples()
        new_vals = np.zeros(int(touched.sum()), dtype=np.int64)
        ia, ib, _, _ = match_coo(er[touched], ec[touched], pr, pc)
        new_vals[ia] = pv[ib]
        S = Matrix("INT64", n, n)
        S.build(
            np.concatenate([er[~touched], er[touched]]),
            np.concatenate([ec[~touched], ec[touched]]),
            np.concatenate([ev[~touched], new_vals]),
            dup=None,
        )


def all_ktruss(graph: Graph) -> list[tuple[int, int, int]]:
    """Sweep k = 3, 4, ... until empty; returns (k, edges, vertices) rows.

    Edge counts are undirected (stored entries / 2).
    """
    out = []
    k = 3
    while True:
        C = ktruss(graph, k)
        if C.nvals == 0:
            break
        from ..graphblas import Vector

        d = Vector("INT64", C.nrows)
        ops.reduce_rowwise(d, C, "PLUS")
        out.append((k, C.nvals // 2, d.nvals))
        k += 1
    return out


def trussness(graph: Graph) -> dict[tuple[int, int], int]:
    """Max k for which each undirected edge survives in the k-truss."""
    result: dict[tuple[int, int], int] = {}
    k = 3
    while True:
        C = ktruss(graph, k)
        r, c, _ = C.extract_tuples()
        if r.size == 0:
            return result
        for i, j in zip(r, c):
            if i < j:
                result[(int(i), int(j))] = k
        k += 1
