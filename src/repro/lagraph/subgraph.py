"""Subgraph (graphlet) counting (paper section V, ref [41]).

Chen et al.'s "GraphBLAS approach for subgraph counting" counts small
patterns with semiring expressions over the adjacency matrix.  For an
undirected simple graph this module counts the standard 3- and 4-vertex
patterns from the moments of A (all computed with Table-I operations and
verified against brute-force enumeration in the tests).  Counts are
*non-induced* (template embeddings, the convention of the cited work):
a 4-clique, for example, contains twelve 3-paths and three 4-cycles.

* edges, wedges (2-paths), triangles;
* 3-paths (P4), 4-cycles (C4), tailed triangles, and claws (K1,3).
"""

from __future__ import annotations

import numpy as np

from ..graphblas import Matrix
from ..graphblas import operations as ops
from .graph import Graph
from .triangles import triangle_count, triangle_counts_per_vertex, triangle_matrix

__all__ = ["subgraph_census"]


def _degrees(graph: Graph) -> np.ndarray:
    return graph.without_self_edges().out_degree.to_dense().astype(np.float64)


def subgraph_census(graph: Graph) -> dict[str, int]:
    """Counts of small connected patterns in an undirected simple graph."""
    G = graph.without_self_edges()
    S = G.structure("FP64")
    n = G.n
    d = _degrees(graph)
    m = int(G.nvals // 2)

    # wedges: paths of length 2 = sum_v C(d_v, 2)
    wedges = int(round(float((d * (d - 1) / 2).sum())))

    tri = triangle_count(graph)
    tri_per_vertex = triangle_counts_per_vertex(graph).astype(np.float64)
    tri_per_edge = triangle_matrix(graph)  # T(i,j) = triangles on edge (i,j)

    # 4-cycles from closed 4-walks: tr(A^4) = 8 C4 + 2 sum d^2 - 2m... use
    # the standard identity tr(A^4) = sum_i sum_j (A^2)_ij^2 and subtract
    # degenerate walks: tr(A^4) = 8 C4 + 2 * sum_v d_v^2 - 2m
    A2 = Matrix("FP64", n, n)
    ops.mxm(A2, S, S, "PLUS_TIMES")
    sq = Matrix("FP64", n, n)
    ops.ewise_mult(sq, A2, A2, "TIMES")
    tr_a4 = float(ops.reduce_scalar(sq, "PLUS"))
    c4 = int(round((tr_a4 - 2 * float((d * d).sum()) + 2 * m) / 8))

    # 3-paths (P4): sum over edges (u,v) of (d_u - 1)(d_v - 1), minus 3x
    # each triangle (whose three "paths" close into the triangle)
    r, c, _ = G.A.extract_tuples()
    upper = r < c
    p4 = int(
        round(float(((d[r[upper]] - 1) * (d[c[upper]] - 1)).sum()) - 3 * tri)
    )

    # tailed triangles: each triangle vertex with an extra neighbour
    tailed = int(round(float((tri_per_vertex * (d - 2)).sum())))

    # claws (K1,3 stars): sum_v C(d_v, 3)
    claws = int(round(float((d * (d - 1) * (d - 2) / 6).sum())))

    return {
        "vertices": n,
        "edges": m,
        "wedges": wedges,
        "triangles": tri,
        "three_paths": p4,
        "four_cycles": c4,
        "tailed_triangles": tailed,
        "claws": claws,
    }
