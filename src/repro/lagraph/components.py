"""Connected components (paper section V, ref [38] — LACC / FastSV).

Two linear-algebraic algorithms:

* :func:`connected_components` — **FastSV** (the successor to the LACC
  algorithm of Azad & Buluç the paper cites): a parent vector is improved
  each round by (1) *hooking* — every vertex offers its grandparent to its
  neighbours' parents via a (min, second) product and a min-duplicate
  scatter (``GrB_Vector_build`` with dup=MIN), and (2) *shortcutting* —
  pointer jumping f = f[f].  Converges in O(log n) rounds.
* :func:`cc_label_propagation` — the simple min-label-propagation baseline
  (one (min, second) mxv per round, O(diameter) rounds), kept as the
  cross-check oracle.

Both treat the graph as undirected (weakly connected components).
"""

from __future__ import annotations

import numpy as np

from ..graphblas import Matrix, Vector, governor, telemetry
from ..graphblas import operations as ops
from ..graphblas.errors import InvalidValue
from .graph import Graph, GraphKind

__all__ = [
    "connected_components",
    "cc_label_propagation",
    "component_sizes",
    "merge_labels",
]


def merge_labels(labels: np.ndarray, us, vs) -> np.ndarray:
    """Fold a batch of new edges into a min-vertex-id component labeling.

    The incremental half of FastSV: a window of edge *insertions* can only
    merge components, so instead of re-running the O(e) hooking rounds we
    union the touched labels (min label becomes the root, preserving the
    min-vertex-id invariant) and relabel through the union-find roots.
    O(delta * alpha + L) where L is the number of distinct labels.
    Deletions can split components and are not handled here — callers
    fall back to :func:`connected_components`.
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    if us.size == 0:
        return labels
    parent: dict[int, int] = {}

    def find(x: int) -> int:
        root = x
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(x, x) != x:
            parent[x], x = root, parent[x]
        return root

    changed = False
    for a, b in zip(labels[us].tolist(), labels[vs].tolist()):
        ra, rb = find(a), find(b)
        if ra != rb:
            if ra < rb:
                parent[rb] = ra
            else:
                parent[ra] = rb
            changed = True
    if not changed:
        return labels
    # vectorized relabel: map each distinct label through its union root
    uniq, inv = np.unique(labels, return_inverse=True)
    roots = np.fromiter(
        (find(int(x)) for x in uniq), dtype=labels.dtype, count=uniq.size
    )
    return roots[inv]


def _symmetric_structure(graph: Graph) -> Matrix:
    S = graph.structure("BOOL")
    if graph.kind is not GraphKind.UNDIRECTED and not graph.is_symmetric_structure:
        ops.ewise_add(S, S, S, "LOR", desc="T1")  # S = S | S^T
    return S


def connected_components(graph: Graph, *, checkpoint=None, resume=None) -> Vector:
    """FastSV: component id (minimum vertex id in component) per vertex.

    ``checkpoint`` snapshots the parent-pointer vector after each completed
    hooking/shortcutting round; ``resume`` restarts from such a snapshot.
    Each round depends only on the loop-carried parent vector, so a resumed
    run is bit-identical.  The governor's token is polled once per round.
    """
    n = graph.n
    S = _symmetric_structure(graph)
    cp = governor.as_checkpoint(checkpoint)
    if resume is not None:
        st = governor.load_checkpoint(resume, algorithm="components")
        f = st["f"]
        rounds = int(st["__iteration__"])
        if f.size != n:
            raise InvalidValue(
                f"checkpoint parent vector has size {f.size}, graph has {n}"
            )
    else:
        f = Vector.from_dense(np.arange(n, dtype=np.int64))  # parent pointers
        rounds = 0
    with telemetry.span("components.fastsv", n=n):
        while True:
            if governor.ACTIVE:
                governor.poll()
            changed = False
            fd = f.to_dense()
            # grandparents: gp = f[f]  (a gather, i.e. GrB extract with I = f)
            gp = Vector("INT64", n)
            ops.extract(gp, f, fd)
            gpd = gp.to_dense()

            # hooking: mngp(i) = min over neighbours j of gp(j)
            mngp = Vector("INT64", n)
            ops.mxv(mngp, S, gp, "MIN_SECOND")
            mi, mv = mngp.extract_tuples()
            # hook the *parent* of i to the min neighbouring grandparent:
            # f[f[i]] = min(f[f[i]], mngp(i)) — a scatter-min, i.e. a
            # GrB_Vector_build with dup = MIN folded into f with eWise MIN
            if mi.size:
                scatter = Vector("INT64", n)
                scatter.build(fd[mi], mv, dup="MIN")
                before = f.dup()
                ops.ewise_add(f, f, scatter, "MIN")
                changed |= not f.isequal(before)
                # hook also directly: f[i] = min(f[i], mngp(i))
                before = f.dup()
                ops.ewise_add(f, f, mngp, "MIN")
                changed |= not f.isequal(before)

            # shortcutting: f = min(f, f[f])
            before = f.dup()
            ops.ewise_add(f, f, gp, "MIN")
            changed |= not f.isequal(before)

            rounds += 1
            if telemetry.ENABLED:
                telemetry.instant(
                    "components.round", round=rounds, changed=changed
                )
            if cp is not None:
                governor.save_hook(cp, "components", rounds, {"f": f})
            if not changed:
                # fully path-compress before returning
                fd = f.to_dense()
                while True:
                    nxt = fd[fd]
                    if np.array_equal(nxt, fd):
                        break
                    fd = nxt
                return Vector.from_dense(fd)


def cc_label_propagation(graph: Graph, max_iters: int | None = None) -> Vector:
    """Min-label propagation: O(diameter) (min, second) products."""
    n = graph.n
    S = _symmetric_structure(graph)
    labels = Vector.from_dense(np.arange(n, dtype=np.int64))
    limit = max_iters if max_iters is not None else n
    for _ in range(limit):
        before = labels.dup()
        ops.mxv(labels, S, labels, "MIN_SECOND", accum="MIN")
        if labels.isequal(before):
            break
    return labels


def component_sizes(labels: Vector) -> dict[int, int]:
    """Histogram of component sizes from a label vector."""
    _, vals = labels.extract_tuples()
    ids, counts = np.unique(vals, return_counts=True)
    return {int(i): int(c) for i, c in zip(ids, counts)}
