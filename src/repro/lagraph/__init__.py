"""LAGraph: high-level graph algorithms on top of the GraphBLAS.

This package is the paper's primary contribution surface: the section V
catalogue of graph algorithms, every one written against the GraphBLAS
operations of :mod:`repro.graphblas`, plus the Graph object and the
per-algorithm test harness the paper's Figure 1 and section III call for.
"""

from .apsp import apsp, apsp_distances_dense
from .bnb import max_independent_set_size, maximum_independent_set
from .astar import astar_distance, astar_path
from .bfs import bfs, bfs_level, bfs_levels_batch, bfs_parent
from .centrality import (
    betweenness_centrality,
    closeness_centrality,
    hits,
    pagerank,
)
from .cf import CFModel, cf_rmse, train_cf
from .clustering import (
    conductance,
    local_clustering,
    markov_clustering,
    peer_pressure_clustering,
)
from .coloring import color_count, greedy_color, is_valid_coloring
from .components import (
    cc_label_propagation,
    component_sizes,
    connected_components,
)
from .dnn import dnn_categories, dnn_inference
from .gnn import GCN, normalized_propagation
from .graph_kernels import (
    shortest_path_kernel,
    sp_kernel_matrix,
    wl_kernel_matrix,
    wl_subtree_kernel,
)
from .graph import Graph, GraphKind
from .ktruss import all_ktruss, ktruss, trussness
from .measurements import (
    average_clustering,
    degree_assortativity,
    degree_statistics,
    density,
    estimate_diameter,
    global_clustering,
    graph_summary,
    kcore_decomposition,
    reciprocity,
)
from .matching import (
    is_matching,
    is_maximal_matching,
    maximal_matching,
    maximum_matching,
)
from .mis import (
    is_independent_set,
    is_maximal_independent_set,
    maximal_independent_set,
)
from .sssp import bellman_ford_sssp, delta_stepping_sssp, sssp
from .subgraph import subgraph_census
from .triangles import (
    triangle_count,
    triangle_counts_per_vertex,
    triangle_matrix,
)
from .utils import (
    check_bfs_levels,
    check_bfs_parents,
    check_component_labels,
    check_pagerank,
    check_sssp_distances,
)

__all__ = [
    "Graph",
    "GraphKind",
    # traversal / paths
    "bfs",
    "bfs_level",
    "bfs_parent",
    "bfs_levels_batch",
    "sssp",
    "bellman_ford_sssp",
    "delta_stepping_sssp",
    "apsp",
    "apsp_distances_dense",
    "astar_path",
    "astar_distance",
    "maximum_independent_set",
    "max_independent_set_size",
    # centrality
    "pagerank",
    "betweenness_centrality",
    "closeness_centrality",
    "hits",
    # structure
    "triangle_count",
    "triangle_counts_per_vertex",
    "triangle_matrix",
    "ktruss",
    "all_ktruss",
    "trussness",
    "connected_components",
    "cc_label_propagation",
    "component_sizes",
    "subgraph_census",
    # sets & matching
    "maximal_independent_set",
    "is_independent_set",
    "is_maximal_independent_set",
    "greedy_color",
    "is_valid_coloring",
    "color_count",
    "maximal_matching",
    "maximum_matching",
    "is_matching",
    "is_maximal_matching",
    # clustering & ML
    "markov_clustering",
    "peer_pressure_clustering",
    "local_clustering",
    "conductance",
    "dnn_inference",
    "dnn_categories",
    "GCN",
    "normalized_propagation",
    "wl_subtree_kernel",
    "wl_kernel_matrix",
    "shortest_path_kernel",
    "sp_kernel_matrix",
    "degree_statistics",
    "density",
    "reciprocity",
    "degree_assortativity",
    "average_clustering",
    "global_clustering",
    "estimate_diameter",
    "kcore_decomposition",
    "graph_summary",
    "train_cf",
    "cf_rmse",
    "CFModel",
    # harness
    "check_bfs_levels",
    "check_bfs_parents",
    "check_sssp_distances",
    "check_component_labels",
    "check_pagerank",
]
