"""Graph coloring (paper section V, ref [40] — Osama et al., IPDPSW'19).

Independent-set coloring: repeatedly extract a maximal independent set of
the still-uncolored subgraph (Luby rounds restricted by a mask) and give
the whole set the next color.  This is the Jones-Plassmann family that the
cited GPU paper builds on, expressed with masked (max, second) products.
"""

from __future__ import annotations

import numpy as np

from ..graphblas import Vector
from ..graphblas import operations as ops
from ..graphblas.descriptor import Descriptor
from .graph import Graph

__all__ = ["greedy_color", "is_valid_coloring", "color_count"]

_S = Descriptor(structural_mask=True)
_RS = Descriptor(replace=True, structural_mask=True)


def greedy_color(graph: Graph, *, seed: int | None = None) -> Vector:
    """Color vertices; returns an INT64 vector of colors 1, 2, 3, ...

    Self-loops are ignored (a self-loop would make coloring impossible).
    """
    n = graph.n
    S = graph.without_self_edges().structure("BOOL")
    rng = np.random.default_rng(seed)

    colors = Vector("INT64", n)
    uncolored = Vector("BOOL", n)
    ops.assign(uncolored, True, ops.ALL)
    color = 0

    while uncolored.nvals > 0:
        color += 1
        # one Luby round per color: candidates are the uncolored vertices
        candidates = uncolored.dup()
        while candidates.nvals > 0:
            ci, _ = candidates.extract_tuples()
            scores = Vector.from_coo(
                ci, rng.permutation(ci.size).astype(np.float64) + 1.0, size=n
            )
            nbr_max = Vector("FP64", n)
            ops.mxv(nbr_max, S, scores, "MAX_SECOND", mask=candidates, desc=_RS)
            diff = Vector("FP64", n)
            neg = Vector("FP64", n)
            ops.apply(neg, nbr_max, "ainv")
            ops.ewise_add(diff, scores, neg, "PLUS")
            winners = Vector("FP64", n)
            ops.select(winners, diff, "VALUEGT", 0.0)
            ops.assign(colors, color, ops.ALL, mask=winners, desc=_S)
            # drop winners and their neighbours from this round's pool,
            # and winners from the uncolored set
            nbrs = Vector("BOOL", n)
            ops.mxv(nbrs, S, winners, "LOR_LAND")
            dead = Vector("BOOL", n)
            w_b = Vector("BOOL", n)
            ops.apply(w_b, winners, "one")
            ops.ewise_add(dead, w_b, nbrs, "LOR")
            ops.assign(
                candidates,
                candidates,
                ops.ALL,
                mask=dead,
                desc=Descriptor(replace=True, structural_mask=True, complement_mask=True),
            )
            ops.assign(
                uncolored,
                uncolored,
                ops.ALL,
                mask=w_b,
                desc=Descriptor(replace=True, structural_mask=True, complement_mask=True),
            )
    return colors


def is_valid_coloring(graph: Graph, colors: Vector) -> bool:
    """Validator: every vertex colored, no edge monochromatic."""
    if colors.nvals != graph.n:
        return False
    r, c, _ = graph.without_self_edges().A.extract_tuples()
    cd = colors.to_dense()
    return not np.any(cd[r] == cd[c])


def color_count(colors: Vector) -> int:
    """Number of distinct colors used by a coloring vector."""
    _, vals = colors.extract_tuples()
    return int(np.unique(vals).size) if vals.size else 0
