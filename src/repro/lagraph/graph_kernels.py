"""Graph kernels for supervised learning (paper section V "future work").

Two classic graph-similarity kernels, both built on GraphBLAS operations:

* **Weisfeiler-Lehman subtree kernel** (Shervashidze et al.) — iteratively
  refine vertex labels by hashing (label, sorted multiset of neighbor
  labels); the kernel is the dot product of label-count histograms across
  iterations.  The neighbor-label gathering is one masked matrix step per
  iteration.
* **Shortest-path kernel** (Borgwardt & Kriegel) — compare histograms of
  pairwise distances, computed with the (min, +) APSP of
  :mod:`repro.lagraph.apsp`.

Both return proper (PSD) kernels, suitable for an SVM's Gram matrix.
"""

from __future__ import annotations

import numpy as np

from .apsp import apsp
from .graph import Graph

__all__ = [
    "wl_subtree_kernel",
    "wl_kernel_matrix",
    "shortest_path_kernel",
    "sp_kernel_matrix",
]


def _wl_features(
    graphs: list[Graph],
    labels: list[np.ndarray] | None,
    iterations: int,
) -> list[dict[tuple, int]]:
    """Per-graph sparse feature maps: refined-label -> count."""
    if labels is None:
        labels = [g.out_degree.to_dense(fill=0).astype(np.int64) for g in graphs]
    cur = [np.asarray(l).copy() for l in labels]
    feats: list[dict] = [dict() for _ in graphs]

    def absorb(gi: int, lab: np.ndarray, it: int) -> None:
        vals, counts = np.unique(lab, return_counts=True)
        for v, c in zip(vals, counts):
            feats[gi][(it, v)] = feats[gi].get((it, v), 0) + int(c)

    for gi, lab in enumerate(cur):
        absorb(gi, lab, 0)

    for it in range(1, iterations + 1):
        # global relabeling dictionary shared across the graph set
        signature_ids: dict[tuple, int] = {}
        nxt = []
        for gi, g in enumerate(graphs):
            # neighbor multisets via the adjacency structure
            S = g.structure("INT64")
            r, c, _ = S.extract_tuples()
            lab = cur[gi]
            order = np.lexsort((lab[c], r))
            r_s, nl = r[order], lab[c][order]
            new_lab = np.empty(g.n, dtype=np.int64)
            # vertices with no neighbors keep a signature of empty multiset
            starts = np.searchsorted(r_s, np.arange(g.n), "left")
            ends = np.searchsorted(r_s, np.arange(g.n), "right")
            for v in range(g.n):
                sig = (int(lab[v]), tuple(nl[starts[v] : ends[v]].tolist()))
                new_lab[v] = signature_ids.setdefault(sig, len(signature_ids))
            nxt.append(new_lab)
        cur = nxt
        for gi, lab in enumerate(cur):
            absorb(gi, lab, it)
    return feats


def wl_subtree_kernel(
    g1: Graph,
    g2: Graph,
    *,
    labels1=None,
    labels2=None,
    iterations: int = 3,
) -> float:
    """WL subtree kernel value k(g1, g2)."""
    f1, f2 = _wl_features(
        [g1, g2],
        None if labels1 is None else [np.asarray(labels1), np.asarray(labels2)],
        iterations,
    )
    common = set(f1) & set(f2)
    return float(sum(f1[k] * f2[k] for k in common))


def wl_kernel_matrix(
    graphs: list[Graph], *, labels=None, iterations: int = 3, normalize: bool = True
) -> np.ndarray:
    """Gram matrix K[i, j] = k_WL(graphs[i], graphs[j])."""
    feats = _wl_features(graphs, labels, iterations)
    m = len(graphs)
    K = np.zeros((m, m))
    for i in range(m):
        for j in range(i, m):
            common = set(feats[i]) & set(feats[j])
            K[i, j] = K[j, i] = sum(feats[i][k] * feats[j][k] for k in common)
    if normalize:
        d = np.sqrt(np.maximum(np.diag(K), 1e-12))
        K = K / np.outer(d, d)
    return K


def _distance_histogram(g: Graph, max_dist: int) -> np.ndarray:
    D = apsp(g)
    r, c, v = D.extract_tuples()
    off = r != c
    d = np.minimum(v[off].astype(np.int64), max_dist)
    hist = np.bincount(d, minlength=max_dist + 1).astype(np.float64)
    return hist


def shortest_path_kernel(g1: Graph, g2: Graph, *, max_dist: int = 16) -> float:
    """Shortest-path kernel: dot product of pairwise-distance histograms."""
    h1 = _distance_histogram(g1, max_dist)
    h2 = _distance_histogram(g2, max_dist)
    return float(h1 @ h2)


def sp_kernel_matrix(
    graphs: list[Graph], *, max_dist: int = 16, normalize: bool = True
) -> np.ndarray:
    """Gram matrix of the shortest-path kernel over a graph set."""
    hists = np.stack([_distance_histogram(g, max_dist) for g in graphs])
    K = hists @ hists.T
    if normalize:
        d = np.sqrt(np.maximum(np.diag(K), 1e-12))
        K = K / np.outer(d, d)
    return K
