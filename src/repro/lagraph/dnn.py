"""Sparse deep-neural-network inference (paper section V, ref [47]).

Kepner et al.'s "Enabling massive deep neural networks with the
GraphBLAS" — the kernel of the MIT GraphChallenge sparse-DNN benchmark.
Each layer is one masked-free pipeline of Table-I operations::

    Y <- Y (+).(x) W_l          # feature propagation (mxm)
    Y <- Y (+) bias_l           # per-neuron bias on the stored entries
    Y <- select(Y, > 0)         # ReLU: drop non-positive activations
    Y <- min(Y, clip)           # saturation (GraphChallenge uses 32)

Inputs, weights and activations are all sparse GraphBLAS matrices, so
inference is a chain of semiring products — exactly the "machine learning
on GraphBLAS" use-case the paper highlights.
"""

from __future__ import annotations

import numpy as np

from ..graphblas import Matrix, Vector, governor
from ..graphblas import operations as ops
from ..graphblas.errors import InvalidValue

__all__ = ["dnn_inference", "dnn_categories"]


def dnn_inference(
    Y0: Matrix,
    weights: list[Matrix],
    biases: list[Vector] | list[float],
    *,
    relu_clip: float | None = 32.0,
    checkpoint=None,
    resume=None,
) -> Matrix:
    """Run sparse inference; rows of ``Y0`` are input samples.

    ``biases[l]`` may be a per-neuron Vector or a uniform float.  Returns
    the final activation matrix.

    ``checkpoint`` snapshots the activation matrix after each completed
    layer; ``resume`` restarts at the first unapplied layer.  Each layer
    depends only on the previous activations, so a resumed run is
    bit-identical.  The governor's token is polled once per layer.
    """
    if len(weights) != len(biases):
        raise InvalidValue("one bias per layer required")
    cp = governor.as_checkpoint(checkpoint)
    if resume is not None:
        st = governor.load_checkpoint(resume, algorithm="dnn")
        Y = st["Y"]
        done = int(st["__iteration__"])  # layers already applied
        if done > len(weights):
            raise InvalidValue(
                f"checkpoint records {done} layers, network has {len(weights)}"
            )
    else:
        Y = Y0
        done = 0
    for layer, (W, b) in enumerate(zip(weights, biases), start=1):
        if layer <= done:
            continue
        if governor.ACTIVE:
            governor.poll()
        if Y.ncols != W.nrows:
            raise InvalidValue(
                f"layer mismatch: activations {Y.shape} x weights {W.shape}"
            )
        Z = Matrix("FP64", Y.nrows, W.ncols)
        ops.mxm(Z, Y, W, "PLUS_TIMES")
        if isinstance(b, Vector):
            # add bias(j) to every stored entry of column j: Z += Z_pattern*diag(b)
            D = ops.diag(b)
            Badd = Matrix("FP64", Z.nrows, Z.ncols)
            ops.mxm(Badd, pattern_ones(Z), D, "PLUS_TIMES")
            ops.ewise_add(Z, Z, Badd, "PLUS")
        elif b:
            ops.apply(Z, Z, "plus", right=float(b))
        # ReLU
        Yn = Matrix("FP64", Z.nrows, Z.ncols)
        ops.select(Yn, Z, "VALUEGT", 0.0)
        if relu_clip is not None:
            clipped = Matrix("FP64", Yn.nrows, Yn.ncols)
            ops.apply(clipped, Yn, "min", right=float(relu_clip))
            Yn = clipped
        Y = Yn
        if cp is not None:
            governor.save_hook(cp, "dnn", layer, {"Y": Y})
    return Y


def pattern_ones(M: Matrix) -> Matrix:
    out = Matrix("FP64", *M.shape)
    ops.apply(out, M, "one")
    return out


def dnn_categories(Y: Matrix) -> np.ndarray:
    """GraphChallenge scoring: ids of samples with any surviving activation."""
    scores = Vector("FP64", Y.nrows)
    ops.reduce_rowwise(scores, Y, "PLUS")
    idx, _ = scores.extract_tuples()
    return idx
