"""Branch and bound on the GraphBLAS (paper section V "future work" list).

An exact maximum-independent-set solver: branch on the highest-degree
undecided vertex (in / out), prune with the classic bound
|current| + |candidates| and a greedy-coloring bound on the candidate
subgraph (an independent set holds at most one vertex per color class).

Graph state during the search is kept in GraphBLAS vectors; candidate
neighborhoods and subgraph degrees come from masked ``mxv``/``extract``,
so the search tree logic stays in the host language and every graph
operation stays in the GraphBLAS — the same division of labor as A*.
"""

from __future__ import annotations

import numpy as np

from ..graphblas import Matrix, Vector
from ..graphblas import operations as ops
from ..graphblas.descriptor import Descriptor
from .graph import Graph
from .mis import maximal_independent_set

__all__ = ["maximum_independent_set", "max_independent_set_size"]

_RS = Descriptor(replace=True, structural_mask=True)


def _matching_bound(S: Matrix, cand: np.ndarray) -> int:
    """Upper bound for alpha(G[cand]): |cand| - (greedy matching size).

    Each matched edge contributes at least one vertex *outside* any
    independent set, so alpha <= n - |matching|.  The candidate subgraph
    comes out of the GraphBLAS with one ``extract``.
    """
    if cand.size <= 1:
        return cand.size
    sub = Matrix("BOOL", cand.size, cand.size)
    ops.extract(sub, S, cand, cand)
    r, c, _ = sub.extract_tuples()
    adj: list[list[int]] = [[] for _ in range(cand.size)]
    for i, j in zip(r, c):
        adj[i].append(int(j))
    matched = np.zeros(cand.size, dtype=bool)
    msize = 0
    for v in range(cand.size):
        if matched[v]:
            continue
        for u in adj[v]:
            if not matched[u] and u != v:
                matched[v] = matched[u] = True
                msize += 1
                break
    return cand.size - msize


def maximum_independent_set(graph: Graph, *, node_limit: int = 2_000_000) -> Vector:
    """Exact maximum independent set (exponential worst case; use on small
    or sparse graphs).  Returns a Boolean membership vector."""
    n = graph.n
    S = graph.without_self_edges().structure("BOOL")
    deg_dense = graph.without_self_edges().out_degree.to_dense(fill=0)

    # warm start: any maximal independent set is a lower bound
    warm = maximal_independent_set(graph, seed=0)
    wi, _ = warm.extract_tuples()
    best = {"size": int(wi.size), "members": set(int(i) for i in wi)}

    neighbors: dict[int, np.ndarray] = {}

    def nbrs(v: int) -> np.ndarray:
        if v not in neighbors:
            w = Vector("BOOL", n)
            ops.extract(w, S, ops.ALL, int(v), desc="T0")  # row v of S
            idx, _ = w.extract_tuples()
            neighbors[v] = idx
        return neighbors[v]

    visited = {"nodes": 0}

    def search(chosen: set[int], cand: np.ndarray) -> None:
        visited["nodes"] += 1
        if visited["nodes"] > node_limit:
            raise RuntimeError("branch-and-bound node limit exceeded")
        if len(chosen) > best["size"]:
            best["size"] = len(chosen)
            best["members"] = set(chosen)
        if cand.size == 0:
            return
        if len(chosen) + cand.size <= best["size"]:
            return  # trivial bound
        if cand.size > 4 and len(chosen) + _matching_bound(S, cand) <= best["size"]:
            return  # matching-based bound on the candidate subgraph
        # branch on the max-degree candidate
        v = int(cand[np.argmax(deg_dense[cand])])
        rest = cand[cand != v]
        # include v: drop v's neighbourhood from the candidates
        nv = nbrs(v)
        search(chosen | {v}, np.setdiff1d(rest, nv, assume_unique=True))
        # exclude v
        search(chosen, rest)

    search(set(), np.arange(n, dtype=np.int64))
    members = np.array(sorted(best["members"]), dtype=np.int64)
    return Vector.from_coo(members, np.ones(members.size, bool), size=n)


def max_independent_set_size(graph: Graph) -> int:
    """alpha(G): the exact maximum-independent-set cardinality."""
    return int(maximum_independent_set(graph).nvals)
