"""Synthetic sparse-DNN workload (GraphChallenge-style substitution).

The GraphChallenge inference datasets (RadiX-Net synthetic DNNs) are not
shipped offline; this generator produces the same *shape* of workload —
fixed-fan-in sparse layers with uniform negative bias, sparse {0,1} input
features — so :func:`repro.lagraph.dnn.dnn_inference` exercises the
identical GraphBLAS code path (mxm + bias + ReLU select).
"""

from __future__ import annotations

import numpy as np

from ..graphblas import Matrix

__all__ = ["synthetic_dnn"]


def synthetic_dnn(
    n_samples: int,
    n_neurons: int,
    n_layers: int,
    *,
    fan_in: int = 8,
    input_density: float = 0.3,
    neuron_survival: float = 0.75,
    gain: float = 2.0,
    bias: float | None = None,
    seed=None,
) -> tuple[Matrix, list[Matrix], list[float]]:
    """Returns (Y0, weights, biases) for :func:`dnn_inference`.

    Per layer, a ``neuron_survival`` fraction of neurons receive exactly
    ``fan_in`` incoming weights of value ``gain``/fan_in; the rest have
    none (ReLU kills them), so activations neither die out nor densify —
    the sparse steady state the GraphChallenge networks exhibit.  The
    default bias is a small negative threshold.
    """
    rng = np.random.default_rng(seed)
    if bias is None:
        bias = -0.3 / fan_in

    weights = []
    n_live = max(1, int(round(n_neurons * neuron_survival)))
    for _ in range(n_layers):
        live = rng.choice(n_neurons, size=n_live, replace=False).astype(np.int64)
        cols = np.repeat(live, fan_in)
        rows = rng.integers(0, n_neurons, size=n_live * fan_in).astype(np.int64)
        vals = np.full(rows.size, gain / fan_in)
        W = Matrix.from_coo(
            rows, cols, vals, nrows=n_neurons, ncols=n_neurons, dtype=np.float64,
            dup="PLUS",
        )
        weights.append(W)

    mask = rng.random((n_samples, n_neurons)) < input_density
    r, c = np.nonzero(mask)
    Y0 = Matrix.from_coo(
        r, c, np.ones(r.size), nrows=n_samples, ncols=n_neurons, dtype=np.float64
    )
    return Y0, weights, [float(bias)] * n_layers
