"""Scale-free graph generation: RMAT / stochastic Kronecker.

The paper's conclusion names "generation of scale-free graphs" among the
support libraries LAGraph needs.  The RMAT recursive quadrant sampler (the
Graph500 generator) produces the skewed degree distributions that stress
masked/hypersparse code paths.
"""

from __future__ import annotations

import numpy as np

from ..graphblas import Matrix
from ..graphblas import operations as ops
from ..graphblas.errors import InvalidValue
from ..lagraph.graph import Graph, GraphKind

__all__ = ["rmat_graph", "kronecker_graph"]


def rmat_graph(
    scale: int,
    edge_factor: int = 16,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    kind: GraphKind | str = GraphKind.DIRECTED,
    weighted: bool = False,
    dedup: bool = True,
    seed=None,
) -> Graph:
    """RMAT graph with 2**scale vertices and edge_factor * n edge samples.

    Default (a, b, c) are the Graph500 parameters; d = 1 - a - b - c.
    Duplicate samples are either folded (``dedup``) or summed as weights.
    """
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise InvalidValue("quadrant probabilities must be non-negative")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = edge_factor * n

    rows = np.zeros(m, dtype=np.int64)
    cols = np.zeros(m, dtype=np.int64)
    # recursive quadrant choice, vectorized one bit per level
    for level in range(scale):
        r = rng.random(m)
        right = (r >= a) & (r < a + b)  # col bit set
        lower = (r >= a + b) & (r < a + b + c)  # row bit set
        both = r >= a + b + c
        bit = np.int64(1 << level)
        rows += bit * (lower | both)
        cols += bit * (right | both)

    off = rows != cols
    rows, cols = rows[off], cols[off]
    if GraphKind(kind) is GraphKind.UNDIRECTED:
        swap = rows > cols
        rows[swap], cols[swap] = cols[swap], rows[swap]
    if weighted:
        w = rng.uniform(1, 10, rows.size)
    else:
        w = np.ones(rows.size)
    dup = "FIRST" if dedup else "PLUS"
    return Graph.from_edges(rows, cols, w, n=n, kind=kind, dtype=np.float64, dup=dup)


def kronecker_graph(
    initiator: Matrix, power: int, *, kind: GraphKind | str = GraphKind.DIRECTED
) -> Graph:
    """Deterministic Kronecker-power graph: A = B (x) B (x) ... (x) B.

    Built with ``GrB_kronecker`` — the Table-I operation exercised end to
    end (this is how Graph500's reference generator is defined).
    """
    if power < 1:
        raise InvalidValue("power must be >= 1")
    A = initiator.dup()
    for _ in range(power - 1):
        nr, nc = A.nrows * initiator.nrows, A.ncols * initiator.ncols
        K = Matrix(A.dtype, nr, nc)
        ops.kronecker(K, A, initiator, "TIMES")
        A = K
    return Graph(A, kind)
