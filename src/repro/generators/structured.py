"""Deterministic structured graphs with known analytic properties.

Paths, cycles, grids, stars and cliques: the fixtures whose BFS levels,
distances, triangle counts and colorings are known in closed form.
"""

from __future__ import annotations

import numpy as np

from ..lagraph.graph import Graph, GraphKind

__all__ = ["path_graph", "cycle_graph", "grid_graph", "star_graph", "complete_graph"]


def path_graph(n: int, *, kind=GraphKind.UNDIRECTED, weights=None) -> Graph:
    """0 - 1 - 2 - ... - (n-1)."""
    src = np.arange(n - 1, dtype=np.int64)
    dst = src + 1
    w = np.ones(n - 1) if weights is None else np.asarray(weights, dtype=np.float64)
    return Graph.from_edges(src, dst, w, n=n, kind=kind, dtype=np.float64)


def cycle_graph(n: int, *, kind=GraphKind.UNDIRECTED) -> Graph:
    src = np.arange(n, dtype=np.int64)
    dst = (src + 1) % n
    return Graph.from_edges(src, dst, np.ones(n), n=n, kind=kind, dtype=np.float64)


def grid_graph(rows: int, cols: int, *, kind=GraphKind.UNDIRECTED) -> Graph:
    """rows x cols lattice; vertex (r, c) has id r * cols + c."""
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    right_s, right_d = ids[:, :-1].ravel(), ids[:, 1:].ravel()
    down_s, down_d = ids[:-1, :].ravel(), ids[1:, :].ravel()
    src = np.concatenate([right_s, down_s])
    dst = np.concatenate([right_d, down_d])
    return Graph.from_edges(
        src, dst, np.ones(src.size), n=rows * cols, kind=kind, dtype=np.float64
    )


def star_graph(n: int, *, kind=GraphKind.UNDIRECTED) -> Graph:
    """Hub 0 connected to spokes 1..n-1."""
    dst = np.arange(1, n, dtype=np.int64)
    src = np.zeros(n - 1, dtype=np.int64)
    return Graph.from_edges(src, dst, np.ones(n - 1), n=n, kind=kind, dtype=np.float64)


def complete_graph(n: int, *, kind=GraphKind.UNDIRECTED) -> Graph:
    i, j = np.triu_indices(n, k=1)
    return Graph.from_edges(
        i.astype(np.int64), j.astype(np.int64), np.ones(i.size), n=n, kind=kind,
        dtype=np.float64,
    )
