"""Random test-matrix generators (paper sections III & VI: "creating
random test matrices", "generation of scale-free graphs")."""

from .random_graphs import (
    erdos_renyi_gnm,
    erdos_renyi_gnp,
    random_bipartite,
    random_matrix,
    random_vector,
)
from .rmat import rmat_graph, kronecker_graph
from .structured import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from .dnn_layers import synthetic_dnn

__all__ = [
    "erdos_renyi_gnp",
    "erdos_renyi_gnm",
    "random_bipartite",
    "random_matrix",
    "random_vector",
    "rmat_graph",
    "kronecker_graph",
    "grid_graph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "synthetic_dnn",
]
