"""Uniform random graphs, matrices and vectors for tests and benchmarks."""

from __future__ import annotations

import numpy as np

from ..graphblas import Matrix, Vector
from ..graphblas.errors import InvalidValue
from ..lagraph.graph import Graph, GraphKind

__all__ = [
    "erdos_renyi_gnp",
    "erdos_renyi_gnm",
    "random_bipartite",
    "random_matrix",
    "random_vector",
]


def _rng(seed):
    return np.random.default_rng(seed)


def erdos_renyi_gnp(
    n: int,
    p: float,
    *,
    kind: GraphKind | str = GraphKind.DIRECTED,
    weighted: bool = False,
    seed=None,
) -> Graph:
    """G(n, p): each ordered pair is an edge independently with prob p.

    Sampled by the geometric skip method, O(expected edges) time/memory.
    """
    if not 0 <= p <= 1:
        raise InvalidValue("p must be in [0, 1]")
    rng = _rng(seed)
    total = n * n
    if p == 0 or n == 0:
        picks = np.empty(0, dtype=np.int64)
    elif p == 1:
        picks = np.arange(total, dtype=np.int64)
    else:
        est = int(total * p + 10 * np.sqrt(total * p) + 10)
        gaps = rng.geometric(p, size=est)
        pos = np.cumsum(gaps) - 1
        while pos.size and pos[-1] < total - 1:  # rare: extend the tail
            more = rng.geometric(p, size=est)
            pos = np.concatenate([pos, pos[-1] + np.cumsum(more)])
        picks = pos[pos < total]
    rows, cols = picks // n, picks % n
    off = rows != cols
    rows, cols = rows[off], cols[off]  # simple graph: no self-loops
    if GraphKind(kind) is GraphKind.UNDIRECTED:
        keep = rows < cols
        rows, cols = rows[keep], cols[keep]
    w = rng.uniform(1, 10, rows.size) if weighted else np.ones(rows.size)
    return Graph.from_edges(rows, cols, w, n=n, kind=kind, dtype=np.float64)


def erdos_renyi_gnm(
    n: int,
    m: int,
    *,
    kind: GraphKind | str = GraphKind.DIRECTED,
    weighted: bool = False,
    seed=None,
) -> Graph:
    """G(n, m): exactly m distinct edges sampled uniformly."""
    rng = _rng(seed)
    seen: set[tuple[int, int]] = set()
    undirected = GraphKind(kind) is GraphKind.UNDIRECTED
    limit = n * (n - 1) // (2 if undirected else 1)
    if m > limit:
        raise InvalidValue(f"m={m} exceeds the {limit} possible edges")
    while len(seen) < m:
        need = m - len(seen)
        r = rng.integers(0, n, size=2 * need + 8)
        c = rng.integers(0, n, size=2 * need + 8)
        for i, j in zip(r, c):
            if i == j:
                continue
            key = (min(i, j), max(i, j)) if undirected else (int(i), int(j))
            seen.add((int(key[0]), int(key[1])))
            if len(seen) == m:
                break
    rows = np.fromiter((i for i, _ in seen), dtype=np.int64, count=m)
    cols = np.fromiter((j for _, j in seen), dtype=np.int64, count=m)
    w = rng.uniform(1, 10, m) if weighted else np.ones(m)
    return Graph.from_edges(rows, cols, w, n=n, kind=kind, dtype=np.float64)


def random_bipartite(
    nl: int, nr: int, p: float, *, weighted: bool = False, seed=None
) -> Matrix:
    """Random nl x nr biadjacency matrix with density p."""
    rng = _rng(seed)
    mask = rng.random((nl, nr)) < p
    rows, cols = np.nonzero(mask)
    vals = rng.uniform(1, 10, rows.size) if weighted else np.ones(rows.size)
    return Matrix.from_coo(rows, cols, vals, nrows=nl, ncols=nr, dtype=np.float64)


def random_matrix(
    nrows: int,
    ncols: int,
    density: float,
    *,
    dtype=np.float64,
    low=1,
    high=9,
    seed=None,
) -> Matrix:
    """Uniform random sparse matrix (test fodder)."""
    rng = _rng(seed)
    nnz = int(round(nrows * ncols * density))
    picks = rng.choice(nrows * ncols, size=min(nnz, nrows * ncols), replace=False)
    rows, cols = picks // ncols, picks % ncols
    dt = np.dtype(dtype)
    if dt.kind == "b":
        vals = np.ones(rows.size, dtype=bool)
    elif dt.kind in "iu":
        vals = rng.integers(low, high + 1, rows.size).astype(dt)
    else:
        vals = rng.uniform(low, high, rows.size).astype(dt)
    return Matrix.from_coo(rows, cols, vals, nrows=nrows, ncols=ncols, dtype=dtype)


def random_vector(size: int, density: float, *, dtype=np.float64, seed=None) -> Vector:
    """Uniform random sparse vector."""
    rng = _rng(seed)
    nnz = int(round(size * density))
    idx = rng.choice(size, size=min(nnz, size), replace=False)
    dt = np.dtype(dtype)
    if dt.kind == "b":
        vals = np.ones(idx.size, dtype=bool)
    elif dt.kind in "iu":
        vals = rng.integers(1, 10, idx.size).astype(dt)
    else:
        vals = rng.uniform(1, 10, idx.size).astype(dt)
    return Vector.from_coo(idx, vals, size=size, dtype=dtype)
