"""Streaming graph ingestion over the delta layer (ROADMAP: streaming graphs).

A :class:`GraphStream` accepts timestamped edge batches and maintains a
:class:`~repro.lagraph.Graph` whose adjacency is advanced one *window* at a
time.  Each closed window is applied through the matrix update log
(``update_batch`` + ``wait``), so it settles into the delta-window chain
(:class:`~repro.graphblas.updatelog.DeltaBatch`) that incremental
maintainers (:mod:`repro.stream.incremental`) and the ``Graph`` property
cache consume — the hypersparse update blocks of arXiv 2509.18984 built on
the paper's pending-tuple machinery.

Window types
------------
* ``tumbling`` — time is partitioned into ``[t0 + k*width, t0 + (k+1)*width)``
  slices; the graph *accumulates* every edge ever ingested, windows are the
  batching boundaries.
* ``sliding`` — the graph holds only edges with timestamps in
  ``[t_close - width, t_close)``; closing a window inserts the newly arrived
  edges and *removes* the expired ones, so deltas exercise deletions.

Governor admission
------------------
Window assembly under an active :class:`~repro.graphblas.governor.
ExecutionContext` with a memory budget is *chunked*, not rejected: the
update log for an over-budget window is applied in budget-sized slices,
each settled by its own ``wait()``.  The delta chain stays contiguous, so
maintainers see one logical window as several batches, transparently.
"""

from __future__ import annotations

import time as _time

import numpy as np

from ..graphblas import Matrix, governor, telemetry
from ..graphblas.errors import InvalidValue
from ..lagraph import Graph, GraphKind
from .incremental import DynamicPageRank, IncrementalComponents, IncrementalTriangles

__all__ = [
    "GraphStream",
    "Window",
    "DynamicPageRank",
    "IncrementalComponents",
    "IncrementalTriangles",
]

_INDEX = np.int64

#: Estimated bytes of update-log working set per logged edge (Python ints in
#: list slots plus the assembly's int64 triplet) — deliberately generous so
#: chunk admission errs on the small side.
_LOG_BYTES_PER_EDGE = 200

#: Fraction of the governor's memory budget one assembly chunk may claim.
_CHUNK_BUDGET_FRACTION = 0.25


class Window:
    """One closed stream window and what its assembly produced."""

    __slots__ = (
        "index",
        "t_start",
        "t_end",
        "n_events",
        "n_expired",
        "chunks",
        "seconds",
        "deltas",
        "epoch_from",
        "epoch_to",
    )

    def __init__(self, index, t_start, t_end, n_events, n_expired, chunks,
                 seconds, deltas, epoch_from, epoch_to):
        self.index = index
        self.t_start = t_start
        self.t_end = t_end
        self.n_events = n_events
        self.n_expired = n_expired
        self.chunks = chunks
        self.seconds = seconds
        self.deltas = deltas
        self.epoch_from = epoch_from
        self.epoch_to = epoch_to

    @property
    def edges_per_s(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return (self.n_events + self.n_expired) / self.seconds

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Window(#{self.index}, [{self.t_start:g},{self.t_end:g}), "
            f"events={self.n_events}, expired={self.n_expired}, "
            f"chunks={self.chunks})"
        )


class GraphStream:
    """Timestamped edge-batch ingestion with windowed assembly.

    Parameters
    ----------
    n:
        Vertex-set size (fixed for the stream's lifetime).
    kind:
        ``GraphKind`` — UNDIRECTED streams mirror each edge (u, v) to
        (v, u), matching ``Graph.from_edges``.
    window:
        ``"tumbling"`` or ``"sliding"``.
    width:
        Window width in timestamp units.
    t0:
        Stream epoch: the first window covers ``[t0, t0 + width)``.
    dtype:
        Adjacency domain; incoming weights default to 1.

    Timestamps must be non-decreasing across ``ingest`` calls (out-of-order
    arrivals raise ``InvalidValue``); coordinate collisions within a window
    resolve last-wins, the ``setElement`` contract.
    """

    def __init__(
        self,
        n: int,
        *,
        kind: GraphKind | str = GraphKind.UNDIRECTED,
        window: str = "tumbling",
        width: float = 1.0,
        t0: float = 0.0,
        dtype="FP64",
    ):
        if window not in ("tumbling", "sliding"):
            raise InvalidValue(f"unknown window type {window!r}")
        if not width > 0:
            raise InvalidValue("window width must be positive")
        self.graph = Graph(Matrix(dtype, n, n), kind)
        self.window_kind = window
        self.width = float(width)
        self.t0 = float(t0)
        self._win_end = self.t0 + self.width
        self._win_index = 0
        self._last_ts = -np.inf
        # buffered events for the open window
        self._buf_src: list[np.ndarray] = []
        self._buf_dst: list[np.ndarray] = []
        self._buf_ts: list[np.ndarray] = []
        self._buf_w: list[np.ndarray] = []
        # live edges with their timestamps (sliding expiry set)
        self._live_src = np.empty(0, dtype=_INDEX)
        self._live_dst = np.empty(0, dtype=_INDEX)
        self._live_ts = np.empty(0, dtype=np.float64)
        self.edges_total = 0
        self.windows_total = 0

    # -- ingestion ---------------------------------------------------------

    def ingest(self, src, dst, ts, weights=None) -> list[Window]:
        """Buffer a batch of timestamped edges; returns every window the
        batch's timestamps closed (possibly none, possibly several)."""
        src = np.asarray(src, dtype=_INDEX).ravel()
        dst = np.asarray(dst, dtype=_INDEX).ravel()
        ts = np.asarray(ts, dtype=np.float64).ravel()
        if not (src.size == dst.size == ts.size):
            raise InvalidValue("src/dst/ts arrays must have identical length")
        if src.size == 0:
            return []
        if weights is None:
            w = np.ones(src.size)
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.ndim == 0:
                w = np.broadcast_to(w, src.shape).copy()
            elif w.size != src.size:
                raise InvalidValue("weights must be scalar or match length")
        if ts[0] < self._last_ts or np.any(ts[1:] < ts[:-1]):
            raise InvalidValue("timestamps must be non-decreasing")
        self._last_ts = float(ts[-1])

        closed: list[Window] = []
        start = 0
        while start < ts.size:
            # events belonging to the currently open window
            cut = int(np.searchsorted(ts[start:], self._win_end, side="left"))
            if cut:
                sl = slice(start, start + cut)
                self._buf_src.append(src[sl])
                self._buf_dst.append(dst[sl])
                self._buf_ts.append(ts[sl])
                self._buf_w.append(w[sl])
                start += cut
            if start < ts.size:
                if not self._buf_src and self.window_kind == "tumbling":
                    # nothing buffered: fast-forward over empty spans
                    # without emitting empty windows
                    nxt = float(ts[start])
                    self._win_end = self.t0 + self.width * (
                        1 + int((nxt - self.t0) // self.width)
                    )
                else:
                    # a timestamp at/past the boundary closes the window
                    closed.append(self._close_window())
        return closed

    def flush(self) -> Window | None:
        """Close the currently open window even though its span has not
        elapsed (end-of-stream)."""
        if not self._buf_src and self.window_kind == "tumbling":
            return None
        return self._close_window()

    @property
    def last_timestamp(self) -> float:
        """Timestamp of the newest ingested event (``t0`` before any)."""
        return self._last_ts if self._last_ts != -np.inf else self.t0

    # -- publication -------------------------------------------------------

    def snapshot(self) -> Graph:
        """An immutable copy-on-write snapshot of the accumulated graph.

        The returned :class:`Graph` wraps a duplicate of the stream's
        adjacency (``Matrix.dup`` settles pending work first), so later
        ingestion never mutates it — this is the serving layer's
        publication primitive.  ``published_epoch`` on the snapshot
        records the source matrix's epoch at the copy, giving readers a
        total order over publications.

        Call :meth:`flush` first to fold the open window's buffered
        events into the graph; ``snapshot`` copies only applied windows.
        """
        snap = Graph(self.graph.A.dup(), self.graph.kind)
        snap.published_epoch = int(self.graph.A._epoch)
        return snap

    # -- window assembly ---------------------------------------------------

    def _close_window(self) -> Window:
        t_end = self._win_end
        t_start = t_end - self.width
        if self._buf_src:
            s = np.concatenate(self._buf_src)
            d = np.concatenate(self._buf_dst)
            tss = np.concatenate(self._buf_ts)
            w = np.concatenate(self._buf_w)
        else:
            s = d = np.empty(0, dtype=_INDEX)
            tss = np.empty(0, dtype=np.float64)
            w = np.empty(0, dtype=np.float64)
        self._buf_src, self._buf_dst = [], []
        self._buf_ts, self._buf_w = [], []

        # sliding: edges whose timestamp slid out of [t_end - width, t_end)
        if self.window_kind == "sliding":
            expired = self._live_ts < t_start
            exp_s, exp_d = self._live_src[expired], self._live_dst[expired]
            keep = ~expired
            self._live_src = np.concatenate([self._live_src[keep], s])
            self._live_dst = np.concatenate([self._live_dst[keep], d])
            self._live_ts = np.concatenate([self._live_ts[keep], tss])
            if exp_s.size:
                # a coordinate expires only when no in-horizon event still
                # supports it (a later arrival re-asserted the same edge);
                # undirected events support either orientation
                nn = np.int64(self.graph.n)
                if self.graph.kind is GraphKind.UNDIRECTED:
                    live_keys = (
                        np.minimum(self._live_src, self._live_dst) * nn
                        + np.maximum(self._live_src, self._live_dst)
                    )
                    exp_keys = (
                        np.minimum(exp_s, exp_d) * nn
                        + np.maximum(exp_s, exp_d)
                    )
                else:
                    live_keys = self._live_src * nn + self._live_dst
                    exp_keys = exp_s * nn + exp_d
                drop = ~np.isin(exp_keys, live_keys)
                exp_s, exp_d = exp_s[drop], exp_d[drop]
        else:
            exp_s = exp_d = np.empty(0, dtype=_INDEX)

        if self.graph.kind is GraphKind.UNDIRECTED:
            s, d, w = _mirror(s, d, w)
            exp_s, exp_d, _ = _mirror(exp_s, exp_d, None)

        A = self.graph.A
        epoch_from = A._epoch
        t0 = _time.perf_counter()
        chunks = 0
        with telemetry.span(
            "stream.window",
            index=self._win_index,
            t_end=t_end,
            events=int(s.size),
            expired=int(exp_s.size),
        ):
            chunk = self._admitted_chunk(s.size + exp_s.size)
            for lo in range(0, s.size, chunk):
                A.update_batch(s[lo:lo + chunk], d[lo:lo + chunk], w[lo:lo + chunk])
                A.wait()
                chunks += 1
                if governor.ACTIVE:
                    governor.poll()
            for lo in range(0, exp_s.size, chunk):
                A.update_batch(
                    exp_s[lo:lo + chunk], exp_d[lo:lo + chunk], deleted=True
                )
                A.wait()
                chunks += 1
                if governor.ACTIVE:
                    governor.poll()
        seconds = _time.perf_counter() - t0
        deltas = A.deltas_since(epoch_from)

        win = Window(
            self._win_index, t_start, t_end, int(s.size), int(exp_s.size),
            chunks, seconds, deltas, epoch_from, A._epoch,
        )
        self._win_index += 1
        self._win_end += self.width
        self.edges_total += int(s.size)
        self.windows_total += 1
        self._record_metrics(win)
        return win

    def _admitted_chunk(self, n_events: int) -> int:
        """Events per assembly chunk the governor's budget admits.

        Over-budget windows are split, not rejected: each chunk's update
        log stays within a fraction of the context budget.
        """
        if n_events == 0:
            return 1
        ctx = governor.current()
        if ctx is None or ctx.memory_budget is None:
            return n_events
        admitted = int(
            ctx.memory_budget * _CHUNK_BUDGET_FRACTION / _LOG_BYTES_PER_EDGE
        )
        admitted = max(1024, admitted)
        if admitted < n_events and telemetry.ENABLED:
            telemetry.decision(
                "stream.chunked",
                events=n_events,
                chunk=admitted,
                budget=ctx.memory_budget,
            )
        return admitted

    def _record_metrics(self, win: Window) -> None:
        try:
            from .. import obs
        except ImportError:  # pragma: no cover - obs is part of the package
            return
        n_edges = win.n_events + win.n_expired
        obs.counter_inc("stream_edges_total", n_edges)
        obs.counter_inc("stream_windows_total", kind=self.window_kind)
        obs.observe("stream_window_assembly_seconds", win.seconds)
        if win.seconds > 0:
            obs.gauge_set("stream_edges_per_second", n_edges / win.seconds)


def _mirror(s: np.ndarray, d: np.ndarray, w: np.ndarray | None):
    """Both directions of each edge, self-loops not doubled."""
    keep = s != d
    ss = np.concatenate([s, d[keep]])
    dd = np.concatenate([d, s[keep]])
    ww = None if w is None else np.concatenate([w, w[keep]])
    return ss, dd, ww
