"""Incremental algorithm maintenance keyed on assembled delta windows.

Each maintainer caches the result of one algorithm together with the
adjacency epoch it was computed at.  ``update()`` asks the matrix for the
contiguous :class:`~repro.graphblas.updatelog.DeltaBatch` chain since that
epoch and advances the cached result in O(delta)-flavored work; whenever
the chain is unavailable (tracking off, bulk mutation, window log
truncated) or the delta violates the maintainer's assumptions (deletions
for union-only components), it falls back to the from-scratch algorithm —
the parity oracle it is tested against.

* :class:`DynamicPageRank` — batched thresholded residual push
  (vectorized Gauss–Southwell).  The residual vector is carried across
  windows; a window adjusts it only at the vertices whose out-links
  changed, then pushes until the L1 residual is back under ``tol``.
  Parity contract: ``||p - p*||_1 <= tol / (1 - damping)``, so against the
  from-scratch power iteration the L1 gap is at most
  ``2 * tol / (1 - damping)``.
* :class:`IncrementalComponents` — insertions can only merge components,
  so the min-vertex-id labeling is advanced with a union-find over the
  delta's endpoints (:func:`repro.lagraph.components.merge_labels`);
  windows containing physical deletions trigger a FastSV recompute.
  Exact parity.
* :class:`IncrementalTriangles` — per-delta wedge counting
  (:func:`repro.lagraph.triangles.triangle_count_delta`).  Exact parity.
"""

from __future__ import annotations

import numpy as np

from ..graphblas import Vector, telemetry
from ..graphblas.formats import ragged_take
from ..lagraph.centrality import pagerank
from ..lagraph.components import connected_components, merge_labels
from ..lagraph.graph import Graph
from ..lagraph.triangles import triangle_count, triangle_count_delta

__all__ = ["DynamicPageRank", "IncrementalComponents", "IncrementalTriangles"]

_INDEX = np.int64


def _chain_net_edges(chain, n: int):
    """Net structural effect of a window chain on each touched coordinate.

    Compares each coordinate's presence *before the first batch that
    touched it* with its presence *after the last*: returns
    ``(add_u, add_v, rem_u, rem_v)`` — coordinates that net-appeared and
    net-vanished.  Value-only overwrites cancel out.  Returns None when
    the composite key would overflow (callers recompute).
    """
    if n > 2**31:
        return None
    keys, batches, existed, isins = [], [], [], []
    for bi, d in enumerate(chain):
        ikey = d.ins_rows * np.int64(n) + d.ins_cols
        dkey = d.del_rows * np.int64(n) + d.del_cols
        pkey = d.prev_rows * np.int64(n) + d.prev_cols
        k = np.concatenate([ikey, dkey])
        if k.size == 0:
            continue
        keys.append(k)
        batches.append(np.full(k.size, bi, dtype=_INDEX))
        existed.append(np.isin(k, pkey))
        isins.append(
            np.concatenate(
                [np.ones(ikey.size, dtype=bool), np.zeros(dkey.size, dtype=bool)]
            )
        )
    empty = np.empty(0, dtype=_INDEX)
    if not keys:
        return empty, empty, empty, empty
    keys = np.concatenate(keys)
    batches = np.concatenate(batches)
    existed = np.concatenate(existed)
    isins = np.concatenate(isins)
    order = np.lexsort((batches, keys))
    ks = keys[order]
    first = np.empty(ks.size, dtype=bool)
    first[0] = True
    np.not_equal(ks[1:], ks[:-1], out=first[1:])
    last = np.empty(ks.size, dtype=bool)
    last[-1] = True
    np.not_equal(ks[1:], ks[:-1], out=last[:-1])
    uniq = ks[first]
    init_present = existed[order][first]
    final_present = isins[order][last]
    added = final_present & ~init_present
    removed = init_present & ~final_present
    au, av = uniq[added] // n, uniq[added] % n
    ru, rv = uniq[removed] // n, uniq[removed] % n
    return au, av, ru, rv


class DynamicPageRank:
    """PageRank maintained across windows by residual push.

    ``update()`` returns ``(ranks, sweeps)`` where ``ranks`` is the dense
    FP64 rank array (summing to ~1) and ``sweeps`` is the number of push
    sweeps the window needed (0 when nothing changed).
    """

    def __init__(self, graph: Graph, *, damping: float = 0.85,
                 tol: float = 1e-8, max_sweeps: int = 1000):
        self.graph = graph
        self.damping = float(damping)
        self.tol = float(tol)
        self.max_sweeps = int(max_sweeps)
        self._p: np.ndarray | None = None
        self._r: np.ndarray | None = None
        self._epoch = -1
        self.recomputes = 0
        self.windows = 0
        self.last_sweeps = 0

    @property
    def ranks(self) -> np.ndarray | None:
        return self._p

    def as_vector(self) -> Vector:
        return Vector.from_dense(self._p, dtype="FP64")

    # -- the solver --------------------------------------------------------

    def _exact_residual(self, store, deg: np.ndarray, n: int) -> np.ndarray:
        """r = b + d * M^T p - p over the full current adjacency, O(e)."""
        p, d = self._p, self.damping
        rows, cols, _ = store.to_coo()
        pod = np.zeros(n)
        nz = deg > 0
        pod[nz] = p[nz] / deg[nz]
        if rows.size:
            t = np.bincount(cols, weights=pod[rows], minlength=n)
        else:
            t = np.zeros(n)
        dangling = float(p[~nz].sum())
        return (1.0 - d) / n + d * t + d * dangling / n - p

    def _adjust_residual(self, chain, store, deg_new: np.ndarray, n: int) -> bool:
        """Advance the carried residual by the chain's net edge changes;
        touches only the changed sources' adjacency.  False → recompute."""
        net = _chain_net_edges(chain, n)
        if net is None:
            return False
        au, av, ru, rv = net
        if au.size == 0 and ru.size == 0:
            return True  # value-only window: structure-blind PageRank
        p, d, r = self._p, self.damping, self._r
        deg_old = deg_new.astype(np.float64, copy=True)
        np.subtract.at(deg_old, au, 1)
        np.add.at(deg_old, ru, 1)
        U = np.unique(np.concatenate([au, ru]))
        dnu, dou = deg_new[U], deg_old[U]
        coef_new = np.where(dnu > 0, d * p[U] / np.maximum(dnu, 1), 0.0)
        coef_old = np.where(dou > 0, d * p[U] / np.maximum(dou, 1), 0.0)
        # over the final adjacency of the touched sources
        starts, ends = store.major_ranges(U)
        counts = ends - starts
        neigh = ragged_take(store.minor, starts, counts)
        if neigh.size:
            wgt = np.repeat(coef_new - coef_old, counts)
            r += np.bincount(neigh, weights=wgt, minlength=n)
        # the old adjacency lacked the net-added coords and had the removed
        if au.size:
            np.add.at(r, av, coef_old[np.searchsorted(U, au)])
        if ru.size:
            np.subtract.at(r, rv, coef_old[np.searchsorted(U, ru)])
        # dangling transitions redistribute uniformly
        dang_shift = float(p[U][dnu == 0].sum()) - float(p[U][dou == 0].sum())
        if dang_shift:
            r += d * dang_shift / n
        return True

    def _push(self, store, deg: np.ndarray, n: int) -> int | None:
        """Batched Gauss–Southwell sweeps until ||r||_1 <= tol."""
        p, r, d = self._p, self._r, self.damping
        theta = self.tol / (2.0 * n)
        sweeps = 0
        while float(np.abs(r).sum()) > self.tol:
            if sweeps >= self.max_sweeps:
                return None
            active = np.flatnonzero(np.abs(r) > theta)
            if active.size == 0:
                break
            dr = r[active].copy()
            p[active] += dr
            r[active] = 0.0
            degs = deg[active]
            nz = degs > 0
            act_nz = active[nz]
            if act_nz.size:
                starts, ends = store.major_ranges(act_nz)
                counts = ends - starts
                neigh = ragged_take(store.minor, starts, counts)
                if neigh.size:
                    wgt = np.repeat(d * dr[nz] / degs[nz], counts)
                    r += np.bincount(neigh, weights=wgt, minlength=n)
            dangling_mass = float(dr[~nz].sum())
            if dangling_mass:
                r += d * dangling_mass / n
            sweeps += 1
        return sweeps

    def update(self) -> tuple[np.ndarray, int]:
        A = self.graph.A
        A.wait()
        n = self.graph.n
        deg = self.graph.out_degree.to_dense(0).astype(np.float64)
        store = A.by_row()
        chain = None if self._p is None else A.deltas_since(self._epoch)
        with telemetry.span("stream.pagerank", n=n, windows=self.windows):
            patched = False
            if chain is not None:
                patched = self._adjust_residual(chain, store, deg, n)
            if not patched:
                if self._p is not None:
                    self.recomputes += 1
                self._p = np.full(n, 1.0 / n)
                self._r = self._exact_residual(store, deg, n)
            sweeps = self._push(store, deg, n)
            if sweeps is None:
                # pathological window: restart from scratch once
                self.recomputes += 1
                self._p = np.full(n, 1.0 / n)
                self._r = self._exact_residual(store, deg, n)
                sweeps = self._push(store, deg, n)
                if sweeps is None:
                    raise RuntimeError(
                        "dynamic pagerank failed to converge "
                        f"in {self.max_sweeps} sweeps"
                    )
        self._epoch = A._epoch
        self.windows += 1
        self.last_sweeps = sweeps
        if telemetry.ENABLED:
            telemetry.instant(
                "stream.pagerank.window", sweeps=sweeps, patched=patched
            )
        return self._p, sweeps

    def parity_gap(self) -> float:
        """L1 distance to a fresh from-scratch PageRank (test/bench hook).

        Bounded by ``2 * tol / (1 - damping)`` per the parity contract.
        """
        full, _ = pagerank(self.graph, damping=self.damping, tol=self.tol)
        return float(np.abs(full.to_dense(0.0) - self._p).sum())


class IncrementalComponents:
    """Min-vertex-id component labels maintained across windows."""

    def __init__(self, graph: Graph):
        self.graph = graph
        self._labels: np.ndarray | None = None
        self._epoch = -1
        self.recomputes = 0
        self.windows = 0

    @property
    def labels(self) -> np.ndarray | None:
        return self._labels

    def update(self) -> np.ndarray:
        A = self.graph.A
        A.wait()
        chain = None if self._labels is None else A.deltas_since(self._epoch)
        with telemetry.span("stream.components", windows=self.windows):
            patched = False
            if chain is not None:
                labels = self._labels
                patched = True
                for delta in chain:
                    rr, _, _ = delta.removed_edges()
                    if rr.size:
                        patched = False  # deletions may split components
                        break
                    nr, nc, _ = delta.new_edges()
                    labels = merge_labels(labels, nr, nc)
                if patched:
                    self._labels = labels
            if not patched:
                if self._labels is not None:
                    self.recomputes += 1
                self._labels = (
                    connected_components(self.graph).to_dense().astype(np.int64)
                )
        self._epoch = A._epoch
        self.windows += 1
        return self._labels


class IncrementalTriangles:
    """Global triangle count maintained by per-delta wedge updates."""

    def __init__(self, graph: Graph, *, method: str = "sandia_ll"):
        self.graph = graph
        self.method = method
        self._count: int | None = None
        self._epoch = -1
        self.recomputes = 0
        self.windows = 0

    @property
    def count(self) -> int | None:
        return self._count

    def update(self) -> int:
        A = self.graph.A
        A.wait()
        chain = None if self._count is None else A.deltas_since(self._epoch)
        with telemetry.span("stream.triangles", windows=self.windows):
            if chain is not None:
                self._count = triangle_count_delta(self.graph, chain, self._count)
            else:
                if self._count is not None:
                    self.recomputes += 1
                self._count = triangle_count(self.graph, self.method)
        self._epoch = A._epoch
        self.windows += 1
        return self._count
