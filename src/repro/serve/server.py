"""The resilient multi-tenant graph server.

:class:`GraphServer` is the library-behind-an-API usage model the LAGraph
papers describe: a long-lived, in-process serving subsystem that owns
read-mostly graph snapshots and executes concurrent algorithm queries
(bfs / sssp / pagerank / triangles / components) from many tenants over
a worker thread pool.  The robustness spine:

* **Snapshot publication** — writers ingest through
  :class:`~repro.stream.GraphStream`; :meth:`GraphServer.publish` settles
  the stream and swaps in an immutable copy at the settled epoch
  (:meth:`~repro.stream.GraphStream.snapshot`).  Queries pin the
  published snapshot at submit, so a reader never observes an in-flight
  mutation and parity against direct calls on the same snapshot is exact.
* **Admission control** — a bounded queue with per-tenant fair share
  (:class:`~repro.serve.admission.AdmissionQueue`).  Beyond the depth or
  deadline watermark, requests are shed with
  :class:`~repro.serve.errors.Overloaded` instead of queueing into
  latency collapse.
* **Per-request governance** — every query runs inside its own
  :class:`~repro.graphblas.governor.ExecutionContext` carrying the
  tenant's memory budget, the request deadline (queue wait included),
  and a cancellation token.
* **Retries** — retryable failures (fault-injected ``OutOfMemory``,
  transient ``BudgetExceeded``) re-run with the shared seeded
  exponential backoff (:mod:`repro.serve.backoff`); a ``BudgetExceeded``
  retry forces the governor's tiled spill path on, so the query runs
  bounded-memory instead of failing.
* **Circuit breakers** — repeated kernel failures/divergences on a
  backend trip its :class:`~repro.serve.breaker.CircuitBreaker`; queries
  transparently fail over to the reference/scipy chain, and half-open
  probes restore the optimized backend once it recovers.
* **Graceful degradation** — queue load selects an execution tier:
  ``full`` -> ``lite`` (performance engine off) -> ``reference``
  (spec-literal backend) -> shed at admission.

Health/readiness probes, cooperative drain/shutdown, and serve-level
metrics (``serve_requests_total{tenant,algo,outcome}``, queue-depth and
breaker-state gauges, latency histograms) ride along; see
``docs/API.md`` ("Serving").
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, replace

from .. import obs
from ..graphblas import backends, engine, faults, governor, telemetry
from ..graphblas.errors import (
    ApiError,
    BudgetExceeded,
    Cancelled,
    DeadlineExceeded,
    GraphBLASError,
    InvalidValue,
    OutOfMemory,
)
from ..lagraph import (
    Graph,
    GraphKind,
    bfs,
    connected_components,
    pagerank,
    sssp,
    triangle_count,
)
from ..stream import GraphStream
from .admission import AdmissionQueue
from .backoff import Backoff, retry_call
from .breaker import CircuitBreaker, STATE_CODES
from .config import ServeConfig, serve_config
from .errors import Overloaded, QueryFailed, ServerClosed

__all__ = [
    "GraphServer",
    "TenantPolicy",
    "QueryTicket",
    "ALGORITHMS",
    "register_algorithm",
    "TIERS",
]

#: Degradation ladder, mildest first; ``shed`` happens at admission.
TIERS = ("full", "lite", "reference", "shed")
_TIER_CODES = {t: i for i, t in enumerate(TIERS)}

#: Fault-injection point fired once per query attempt (chaos harness).
_SERVE_POINT = "serve.exec"


# --------------------------------------------------------------------------
# the query surface
# --------------------------------------------------------------------------

def _run_bfs(graph: Graph, *, source):
    levels, _ = bfs(int(source), graph, level=True, parent=False)
    return levels


def _run_sssp(graph: Graph, *, source, method: str = "delta"):
    return sssp(int(source), graph, method=method)


def _run_pagerank(graph: Graph, *, damping: float = 0.85, tol: float = 1e-8,
                  max_iters: int = 100):
    ranks, _ = pagerank(graph, damping=damping, tol=tol, max_iters=max_iters)
    return ranks


def _run_triangles(graph: Graph):
    return triangle_count(graph)


def _run_components(graph: Graph):
    return connected_components(graph)


ALGORITHMS: dict = {
    "bfs": _run_bfs,
    "sssp": _run_sssp,
    "pagerank": _run_pagerank,
    "triangles": _run_triangles,
    "components": _run_components,
}


def register_algorithm(name: str, fn, *, replace: bool = False) -> None:
    """Extend the served algorithm surface: ``fn(graph, **params)``."""
    if name in ALGORITHMS and not replace:
        raise InvalidValue(f"algorithm {name!r} already registered")
    ALGORITHMS[name] = fn


# --------------------------------------------------------------------------
# tenancy
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant resource envelope inherited by every request.

    ``None`` fields inherit the server config's defaults at submit time.
    """

    #: per-request governor memory budget in bytes (None = server default).
    memory_budget: int | None = None
    #: per-request deadline in seconds, queue wait included.
    deadline_s: float | None = None
    #: serve-level retry attempts for retryable failures.
    attempts: int | None = None
    #: allow the governor to degrade/spill over-budget plans.
    degrade: bool = True
    #: hard per-tenant queue cap (None = fair share only).
    max_queue: int | None = None


# --------------------------------------------------------------------------
# request tickets
# --------------------------------------------------------------------------

class QueryTicket:
    """A submitted query's future: result, outcome, and execution record."""

    __slots__ = (
        "seq", "tenant", "algo", "params", "snapshot", "policy",
        "deadline_at", "token", "tier", "backend", "retries", "failovers",
        "outcome", "error", "value", "t_submit", "t_start", "t_done",
        "kernel_seed", "serve_seed", "_event",
    )

    def __init__(self, seq, tenant, algo, params, snapshot, policy,
                 deadline_at, kernel_seed, serve_seed):
        self.seq = seq
        self.tenant = tenant
        self.algo = algo
        self.params = params
        self.snapshot = snapshot
        self.policy = policy
        self.deadline_at = deadline_at
        self.token = governor.CancellationToken()
        self.tier = None
        self.backend = None
        self.retries = 0
        self.failovers = 0
        self.outcome = None
        self.error = None
        self.value = None
        self.t_submit = time.monotonic()
        self.t_start = None
        self.t_done = None
        self.kernel_seed = kernel_seed
        self.serve_seed = serve_seed
        self._event = threading.Event()

    # -- client side -------------------------------------------------------

    def cancel(self, reason: str = "cancelled by client") -> None:
        """Cooperatively cancel: queued requests never run, in-flight ones
        stop at the next governor poll point."""
        self.token.cancel(reason)

    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        return self._event.wait(timeout)

    def result(self, timeout: float | None = None):
        """The query result; raises the terminal error for failed queries.

        Governor interruptions (``DeadlineExceeded``, ``Cancelled``) and
        API errors propagate unwrapped; terminal execution failures are
        wrapped in :class:`~repro.serve.errors.QueryFailed` with the
        underlying error as ``__cause__``.
        """
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"query #{self.seq} ({self.algo}) still pending"
            )
        if self.outcome == "ok":
            return self.value
        if isinstance(self.error, (DeadlineExceeded, Cancelled, ApiError)):
            raise self.error
        raise QueryFailed(
            f"{self.algo} for tenant {self.tenant!r} failed terminally "
            f"({type(self.error).__name__ if self.error else 'no backend'}: "
            f"{self.error})",
            outcome=self.outcome or "failed",
        ) from self.error

    # -- record ------------------------------------------------------------

    @property
    def queue_wait_s(self) -> float | None:
        if self.t_start is None:
            return None
        return self.t_start - self.t_submit

    @property
    def exec_s(self) -> float | None:
        if self.t_done is None or self.t_start is None:
            return None
        return self.t_done - self.t_start

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = self.outcome or ("queued" if self.t_start is None else "running")
        return f"<QueryTicket #{self.seq} {self.algo} {self.tenant!r} {state}>"


# --------------------------------------------------------------------------
# engine-off degradation (process-wide, refcounted)
# --------------------------------------------------------------------------

_engine_lock = threading.Lock()
_engine_off_depth = 0
_engine_was_on = False


@contextmanager
def _engine_off():
    """Run the enclosed query with the performance engine disabled.

    The engine switch is process-global, so concurrent tiers refcount it:
    the first degraded query turns the engine off, the last one back on.
    Results are bit-identical either way (PR 5's guarantee); the tier
    sheds the engine's transient working sets (parallel block buffers,
    twin materialization) under load.
    """
    global _engine_off_depth, _engine_was_on
    with _engine_lock:
        if _engine_off_depth == 0:
            _engine_was_on = engine.get_config().enabled
            if _engine_was_on:
                engine.set_engine(False)
        _engine_off_depth += 1
    try:
        yield
    finally:
        with _engine_lock:
            _engine_off_depth -= 1
            if _engine_off_depth == 0 and _engine_was_on:
                engine.set_engine(True)


# --------------------------------------------------------------------------
# served graphs
# --------------------------------------------------------------------------

class _ServedGraph:
    """One named graph: its write stream and the published snapshot."""

    __slots__ = ("name", "stream", "published", "lock", "publishes")

    def __init__(self, name: str, stream: GraphStream | None):
        self.name = name
        self.stream = stream
        self.published: Graph | None = None
        self.lock = threading.Lock()
        self.publishes = 0


_server_seq = itertools.count(1)


# --------------------------------------------------------------------------
# the server
# --------------------------------------------------------------------------

class GraphServer:
    """Long-lived multi-tenant graph-serving subsystem (see module doc).

    ::

        with GraphServer(workers=4) as srv:
            srv.add_graph("social", n=1 << 12)
            srv.ingest("social", src, dst)
            srv.publish("social")
            ranks = srv.query("pagerank", graph="social", tenant="alice")

    Configuration resolves overrides > ``GxB_Serve_set`` process defaults
    > ``GRAPHBLAS_SERVE_*`` environment > built-in defaults.
    """

    def __init__(self, config: ServeConfig | None = None, *,
                 name: str | None = None, start: bool = True, **overrides):
        base = config if config is not None else serve_config()
        self.config = replace(base, **overrides) if overrides else base
        self.name = name or f"srv{next(_server_seq)}"
        self._graphs: dict[str, _ServedGraph] = {}
        self._graphs_lock = threading.Lock()
        self._tenants: dict[str, TenantPolicy] = {"default": TenantPolicy()}
        self._queue = AdmissionQueue(self.config.queue_depth)
        self._breakers: dict[str, CircuitBreaker] = {}
        for be in (self.config.backend, *self.config.fallbacks):
            self._breakers.setdefault(be, CircuitBreaker(
                be,
                failure_threshold=self.config.breaker_threshold,
                reset_timeout_s=self.config.breaker_reset_s,
                probe_successes=self.config.breaker_probes,
                on_transition=self._on_breaker_transition,
            ))
        self._seq = itertools.count(1)
        self._state = "created"
        self._state_lock = threading.Lock()
        self._stop = threading.Event()
        self._inflight: set[QueryTicket] = set()
        self._inflight_lock = threading.Lock()
        self._idle = threading.Condition(self._inflight_lock)
        self._ema_exec_s = 0.005  # seeds the deadline-watermark estimate
        self._counts: dict[str, int] = {}
        self._counts_lock = threading.Lock()
        self._tier = "full"
        self._workers: list[threading.Thread] = []
        self._declare_metrics()
        if start:
            self.start()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "GraphServer":
        with self._state_lock:
            if self._state == "running":
                return self
            if self._state == "closed":
                raise ServerClosed(f"server {self.name!r} is closed")
            self._state = "running"
        for i in range(self.config.workers):
            t = threading.Thread(
                target=self._worker_loop, name=f"serve-{self.name}-w{i}",
                daemon=True,
            )
            t.start()
            self._workers.append(t)
        return self

    def drain(self, timeout: float | None = 5.0) -> bool:
        """Stop intake, let queued + in-flight work finish, then cancel.

        Returns True if everything completed within ``timeout``; on
        timeout the remaining queue is failed as cancelled and in-flight
        requests are cooperatively cancelled (they stop at their next
        governor poll point).
        """
        with self._state_lock:
            if self._state in ("draining", "closed"):
                return self._queue.depth == 0 and not self._inflight
            self._state = "draining"
        if telemetry.ENABLED:
            telemetry.decision("serve.drain", server=self.name,
                               queued=self._queue.depth,
                               inflight=len(self._inflight))
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._queue.depth or self._inflight:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                self._idle.wait(remaining if remaining is not None else 0.1)
        clean = self._queue.depth == 0 and not self._inflight
        if not clean:
            for req in self._queue.drain():
                req.token.cancel("server draining")
                self._finish(req, "cancelled",
                             Cancelled("server draining"))
            with self._inflight_lock:
                inflight = list(self._inflight)
            for req in inflight:
                req.token.cancel("server draining")
        return clean

    def close(self, timeout: float | None = 5.0) -> None:
        """Drain, stop the workers, and release the server's gauges."""
        self.drain(timeout)
        self._stop.set()
        self._queue.close()
        for t in self._workers:
            t.join(timeout=2.0)
        self._workers = []
        with self._state_lock:
            self._state = "closed"
        self._release_metrics()

    def __enter__(self) -> "GraphServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- graphs ------------------------------------------------------------

    def add_graph(self, name: str, n: int | None = None, *,
                  kind: GraphKind | str = GraphKind.UNDIRECTED,
                  graph: Graph | None = None,
                  stream: GraphStream | None = None,
                  window: str = "tumbling", width: float = 1.0,
                  dtype="FP64") -> None:
        """Register a served graph.

        Exactly one of ``n`` (a fresh ingest stream), ``stream`` (attach
        an existing :class:`~repro.stream.GraphStream`), or ``graph``
        (publish a static graph immediately; no ingest) must be given.
        """
        given = sum(x is not None for x in (n, stream, graph))
        if given != 1:
            raise InvalidValue("pass exactly one of n=, stream=, or graph=")
        with self._graphs_lock:
            if name in self._graphs:
                raise InvalidValue(f"graph {name!r} already served")
            if graph is not None:
                sg = _ServedGraph(name, None)
                snap = Graph(graph.A.dup(), graph.kind)
                snap.published_epoch = int(graph.A._epoch)
                sg.published = snap
                sg.publishes = 1
            else:
                st = stream if stream is not None else GraphStream(
                    int(n), kind=kind, window=window, width=width, dtype=dtype,
                )
                sg = _ServedGraph(name, st)
            self._graphs[name] = sg
        obs.gauge_set("serve_published_epoch",
                      float(sg.published.published_epoch) if sg.published else -1.0,
                      server=self.name, graph=name)

    def graphs(self) -> tuple[str, ...]:
        return tuple(self._graphs)

    def _served(self, name: str) -> _ServedGraph:
        sg = self._graphs.get(name)
        if sg is None:
            raise InvalidValue(
                f"unknown graph {name!r}; served: {', '.join(self._graphs) or 'none'}"
            )
        return sg

    def ingest(self, name: str, src, dst, ts=None, weights=None) -> None:
        """Feed timestamped edges into ``name``'s write stream.

        ``ts=None`` stamps the batch at the stream's current timestamp
        (stays within the open window).  Published snapshots are not
        affected until :meth:`publish`.
        """
        sg = self._served(name)
        if sg.stream is None:
            raise InvalidValue(f"graph {name!r} is static (no ingest stream)")
        with sg.lock:
            if ts is None:
                import numpy as np
                last = sg.stream.last_timestamp
                ts = np.full(np.asarray(src).size if hasattr(src, "__len__")
                             else 1, last, dtype=np.float64)
            sg.stream.ingest(src, dst, ts, weights)

    def publish(self, name: str) -> int:
        """Settle ``name``'s stream and atomically swap in an immutable
        snapshot of the accumulated graph; returns the published epoch.

        Queries submitted before the swap keep the snapshot they pinned;
        queries submitted after see the new epoch.  Copy-on-write at the
        epoch boundary: the published matrix is never mutated again.
        """
        sg = self._served(name)
        if sg.stream is None:
            return int(sg.published.published_epoch)
        with sg.lock:
            sg.stream.flush()
            snap = sg.stream.snapshot()
            sg.published = snap  # atomic reference swap
            sg.publishes += 1
        epoch = int(snap.published_epoch)
        if telemetry.ENABLED:
            telemetry.decision("serve.publish", server=self.name, graph=name,
                               epoch=epoch, nvals=int(snap.A.nvals))
        obs.counter_inc("serve_publish_total", server=self.name, graph=name)
        obs.gauge_set("serve_published_epoch", float(epoch),
                      server=self.name, graph=name)
        return epoch

    def snapshot(self, name: str) -> Graph:
        """The currently published snapshot (immutable)."""
        sg = self._served(name)
        snap = sg.published
        if snap is None:
            raise InvalidValue(f"graph {name!r} has no published snapshot yet")
        return snap

    # -- tenants -----------------------------------------------------------

    def register_tenant(self, tenant: str,
                        policy: TenantPolicy | None = None,
                        **kwargs) -> TenantPolicy:
        """Attach a :class:`TenantPolicy` (or keyword fields) to ``tenant``."""
        if policy is None:
            policy = TenantPolicy(**kwargs)
        elif kwargs:
            policy = replace(policy, **kwargs)
        self._tenants[tenant] = policy
        return policy

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self._tenants.get(tenant) or self._tenants["default"]

    # -- admission ---------------------------------------------------------

    def submit(self, algo: str, *, graph: str, tenant: str = "default",
               **params) -> QueryTicket:
        """Admit a query; returns a :class:`QueryTicket` or raises
        :class:`Overloaded` / :class:`ServerClosed` immediately."""
        if self._state != "running":
            raise ServerClosed(
                f"server {self.name!r} is {self._state}; not accepting work"
            )
        fn = ALGORITHMS.get(algo)
        if fn is None:
            raise InvalidValue(
                f"unknown algorithm {algo!r}; "
                f"served: {', '.join(sorted(ALGORITHMS))}"
            )
        snap = self.snapshot(graph)  # pins the published epoch
        policy = self.policy_for(tenant)
        deadline_s = policy.deadline_s if policy.deadline_s is not None \
            else self.config.deadline_s
        now = time.monotonic()
        deadline_at = None if not deadline_s else now + float(deadline_s)
        seq = next(self._seq)
        base = (self.config.seed * 0x9E3779B9 + seq * 0x85EBCA6B) & 0xFFFFFFFF
        req = QueryTicket(seq, tenant, algo, params, snap, policy,
                          deadline_at, kernel_seed=base,
                          serve_seed=base ^ 0x5BF03635)
        # deadline watermark: shed work that cannot survive the queue wait
        depth = self._queue.depth
        if deadline_at is not None and depth >= self.config.workers:
            est_wait = (depth / self.config.workers) * self._ema_exec_s
            if now + est_wait >= deadline_at:
                self._shed(req, Overloaded(
                    f"estimated queue wait {est_wait:.3f}s exceeds the "
                    f"request deadline of {deadline_s}s",
                    reason="deadline_watermark", tenant=tenant,
                ))
        try:
            self._queue.put(req, tenant, max_queue=policy.max_queue)
        except Overloaded as exc:
            self._shed(req, exc)
        obs.gauge_set("serve_queue_depth", float(self._queue.depth),
                      server=self.name)
        return req

    def query(self, algo: str, *, graph: str, tenant: str = "default",
              timeout: float | None = None, **params):
        """Synchronous :meth:`submit` + :meth:`QueryTicket.result`."""
        return self.submit(
            algo, graph=graph, tenant=tenant, **params
        ).result(timeout)

    def _shed(self, req: QueryTicket, exc: Overloaded):
        req.outcome = "shed"
        req.error = exc
        req._event.set()
        with self._counts_lock:
            self._counts["shed"] = self._counts.get("shed", 0) + 1
        obs.counter_inc("serve_requests_total", tenant=req.tenant,
                        algo=req.algo, outcome="shed")
        obs.counter_inc("serve_shed_total", tenant=req.tenant,
                        reason=exc.reason)
        if telemetry.ENABLED:
            telemetry.decision("serve.shed", server=self.name,
                               tenant=req.tenant, algo=req.algo,
                               reason=exc.reason, depth=self._queue.depth)
        raise exc

    # -- degradation ladder ------------------------------------------------

    def current_tier(self) -> str:
        """The load tier new requests execute under (queue-depth driven)."""
        load = self._queue.load()
        if load >= self.config.reference_watermark:
            tier = "reference"
        elif load >= self.config.lite_watermark:
            tier = "lite"
        else:
            tier = "full"
        if tier != self._tier:
            self._tier = tier
            obs.counter_inc("serve_degrade_total", tier=tier)
            obs.gauge_set("serve_tier", float(_TIER_CODES[tier]),
                          server=self.name)
            if telemetry.ENABLED:
                telemetry.decision("serve.degrade", server=self.name,
                                   tier=tier, load=round(load, 3))
        return tier

    def _chain(self, tier: str) -> list[str]:
        if tier == "reference" and "reference" in self._breakers:
            primary = "reference"
        else:
            primary = self.config.backend
        chain = [primary]
        chain += [b for b in self._breakers if b != primary]
        return chain

    # -- execution ---------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            req = self._queue.get(timeout=0.05)
            if req is None:
                if self._stop.is_set():
                    return
                continue
            with self._inflight_lock:
                self._inflight.add(req)
            try:
                self._serve_one(req)
            finally:
                with self._idle:
                    self._inflight.discard(req)
                    self._idle.notify_all()
                obs.gauge_set("serve_queue_depth", float(self._queue.depth),
                              server=self.name)

    def _serve_one(self, req: QueryTicket) -> None:
        req.t_start = time.monotonic()
        try:
            if req.token.cancelled:
                self._finish(req, "cancelled",
                             Cancelled(req.token.reason or "cancelled"))
                return
            if req.deadline_at is not None and req.t_start >= req.deadline_at:
                self._finish(req, "deadline", DeadlineExceeded(
                    "deadline passed while queued"
                ))
                return
            tier = self.current_tier()
            req.tier = tier
            last_exc: BaseException | None = None
            for be_name in self._chain(tier):
                breaker = self._breakers[be_name]
                if not breaker.allow():
                    continue
                degraded = be_name != self.config.backend or tier != "full"
                if degraded and telemetry.ENABLED:
                    telemetry.decision("serve.degrade", server=self.name,
                                       tenant=req.tenant, algo=req.algo,
                                       tier=tier, backend=be_name)
                try:
                    value = self._run_on_backend(req, be_name, tier)
                except (DeadlineExceeded, Cancelled) as exc:
                    breaker.release_probe()
                    outcome = ("deadline" if isinstance(exc, DeadlineExceeded)
                               else "cancelled")
                    self._finish(req, outcome, exc)
                    return
                except ApiError as exc:
                    breaker.release_probe()  # caller error, not the backend's
                    self._finish(req, "invalid", exc)
                    return
                except BaseException as exc:  # kernel failure / divergence
                    breaker.record_failure()
                    req.failovers += 1
                    last_exc = exc
                    if telemetry.ENABLED:
                        telemetry.decision(
                            "serve.failover", server=self.name,
                            algo=req.algo, backend=be_name,
                            error=type(exc).__name__,
                            breaker=breaker.state,
                        )
                    continue
                breaker.record_success()
                req.backend = be_name
                self._finish(req, "ok", result=value)
                return
            self._finish(req, "failed", last_exc)
        except BaseException as exc:  # the worker itself must survive
            self._finish(req, "failed", exc)

    def _run_on_backend(self, req: QueryTicket, be_name: str, tier: str):
        """One backend's serve-level retry loop around a governed attempt."""
        policy = req.policy
        attempts = policy.attempts if policy.attempts is not None \
            else self.config.attempts
        backoff = Backoff(
            base=self.config.base_delay_s, cap=self.config.max_delay_s,
            jitter=1.0, seed=req.serve_seed,
        )
        state = {"spill": None}

        def attempt():
            return self._attempt(req, be_name, tier, state["spill"])

        def on_retry(failures, delay, exc):
            # a BudgetExceeded that escaped the governor means spilling
            # was unavailable/off: force the tiled spill path on retry
            if isinstance(exc, BudgetExceeded):
                state["spill"] = True
            req.token.raise_if_cancelled()
            req.retries += 1
            obs.counter_inc("serve_retries_total", algo=req.algo)
            if telemetry.ENABLED:
                telemetry.decision(
                    "serve.retry", server=self.name, algo=req.algo,
                    backend=be_name, attempt=failures,
                    delay_s=round(delay, 6), error=type(exc).__name__,
                    spill=bool(state["spill"]),
                )

        return retry_call(
            attempt, attempts=attempts, backoff=backoff,
            transient=(OutOfMemory, BudgetExceeded), on_retry=on_retry,
        )

    def _attempt(self, req: QueryTicket, be_name: str, tier: str, spill):
        remaining = None
        if req.deadline_at is not None:
            remaining = req.deadline_at - time.monotonic()
            if remaining <= 0:
                raise DeadlineExceeded(
                    f"deadline passed after {req.retries} retries"
                )
        policy = req.policy
        budget = policy.memory_budget if policy.memory_budget is not None \
            else self.config.memory_budget
        kernel_retry = governor.RetryPolicy(
            attempts=3, base_delay=self.config.base_delay_s,
            max_delay=self.config.max_delay_s, jitter=1.0,
            seed=req.kernel_seed,
        )
        engine_cm = _engine_off() if tier in ("lite", "reference") \
            else nullcontext()
        with engine_cm, backends.backend(be_name), governor.ExecutionContext(
            memory_budget=budget, deadline=remaining, cancel=req.token,
            retry=kernel_retry, degrade=policy.degrade, spill=spill,
        ):
            if faults.ENABLED:
                faults.trip(_SERVE_POINT)
            return ALGORITHMS[req.algo](req.snapshot, **req.params)

    # -- completion --------------------------------------------------------

    def _finish(self, req: QueryTicket, outcome: str,
                error: BaseException | None = None, result=None) -> None:
        if req.outcome is not None:  # already finished (drain race)
            return
        req.t_done = time.monotonic()
        req.outcome = outcome
        req.error = error
        req.value = result
        exec_s = req.exec_s
        if exec_s is not None and outcome == "ok":
            # EMA feeds the deadline-watermark wait estimate at admission
            self._ema_exec_s += 0.2 * (exec_s - self._ema_exec_s)
        with self._counts_lock:
            self._counts[outcome] = self._counts.get(outcome, 0) + 1
        obs.counter_inc("serve_requests_total", tenant=req.tenant,
                        algo=req.algo, outcome=outcome)
        if exec_s is not None:
            obs.observe("serve_request_seconds", exec_s, algo=req.algo)
        if req.queue_wait_s is not None:
            obs.observe("serve_queue_wait_seconds", req.queue_wait_s)
        if telemetry.ENABLED:
            telemetry.decision(
                "serve.request", server=self.name, tenant=req.tenant,
                algo=req.algo, outcome=outcome, tier=req.tier,
                backend=req.backend, retries=req.retries,
                failovers=req.failovers,
                seconds=round(exec_s, 6) if exec_s is not None else None,
            )
        req._event.set()

    def _on_breaker_transition(self, backend: str, old: str, new: str) -> None:
        obs.counter_inc("serve_breaker_transitions_total",
                        backend=backend, state=new)
        obs.gauge_set("serve_breaker_state", float(STATE_CODES[new]),
                      server=self.name, backend=backend)
        if telemetry.ENABLED:
            telemetry.decision("serve.breaker", server=self.name,
                               backend=backend, old=old, new=new)

    # -- observability -----------------------------------------------------

    def _declare_metrics(self) -> None:
        reg = obs.registry()
        reg.declare("serve_requests_total", "counter",
                    "Served queries by tenant, algorithm, and outcome")
        reg.declare("serve_shed_total", "counter",
                    "Requests shed at admission, by tenant and reason")
        reg.declare("serve_retries_total", "counter",
                    "Serve-level retries, by algorithm")
        reg.declare("serve_degrade_total", "counter",
                    "Degradation-tier transitions, by tier entered")
        reg.declare("serve_breaker_transitions_total", "counter",
                    "Circuit-breaker state transitions, by backend")
        reg.declare("serve_publish_total", "counter",
                    "Snapshot publications, by graph")
        reg.declare("serve_queue_depth", "gauge",
                    "Admitted requests waiting for a worker")
        reg.declare("serve_inflight", "gauge",
                    "Requests currently executing")
        reg.declare("serve_tier", "gauge",
                    "Degradation tier (0 full, 1 lite, 2 reference)")
        reg.declare("serve_breaker_state", "gauge",
                    "Breaker state (0 closed, 1 half-open, 2 open)")
        reg.declare("serve_published_epoch", "gauge",
                    "Published snapshot epoch, by graph")
        reg.declare("serve_request_seconds", "histogram",
                    "Query execution latency, by algorithm")
        reg.declare("serve_queue_wait_seconds", "histogram",
                    "Admission-to-execution queue wait")
        obs.register_gauge("serve_queue_depth",
                           lambda: float(self._queue.depth),
                           server=self.name)
        obs.register_gauge("serve_inflight",
                           lambda: float(len(self._inflight)),
                           server=self.name)
        for be, br in self._breakers.items():
            obs.register_gauge("serve_breaker_state",
                               (lambda b=br: float(b.state_code)),
                               server=self.name, backend=be)
            obs.gauge_set("serve_breaker_state", 0.0,
                          server=self.name, backend=be)
        obs.gauge_set("serve_tier", 0.0, server=self.name)

    def _release_metrics(self) -> None:
        obs.unregister_gauge("serve_queue_depth", server=self.name)
        obs.unregister_gauge("serve_inflight", server=self.name)
        for be in self._breakers:
            obs.unregister_gauge("serve_breaker_state",
                                 server=self.name, backend=be)

    # -- health ------------------------------------------------------------

    def ready(self) -> bool:
        """Readiness probe: accepting work and able to serve it."""
        return (
            self._state == "running"
            and any(t.is_alive() for t in self._workers)
            and any(sg.published is not None for sg in self._graphs.values())
        )

    def health(self) -> dict:
        """Liveness/health probe: one structured dict for the supervisor."""
        breakers = {be: br.snapshot() for be, br in self._breakers.items()}
        degraded = self._tier != "full" or any(
            b["state"] != "closed" for b in breakers.values()
        )
        status = self._state
        if status == "running" and degraded:
            status = "degraded"
        with self._counts_lock:
            counts = dict(self._counts)
        return {
            "server": self.name,
            "status": status,
            "ready": self.ready(),
            "tier": self._tier,
            "workers": sum(t.is_alive() for t in self._workers),
            "queue_depth": self._queue.depth,
            "inflight": len(self._inflight),
            "graphs": {
                name: {
                    "published_epoch": (
                        int(sg.published.published_epoch)
                        if sg.published is not None else None
                    ),
                    "publishes": sg.publishes,
                }
                for name, sg in self._graphs.items()
            },
            "breakers": breakers,
            "requests": counts,
            "shed_total": self._queue.shed_total,
        }

    def stats(self) -> dict:
        """Cumulative outcome counts plus queue/breaker counters."""
        with self._counts_lock:
            counts = dict(self._counts)
        return {
            "outcomes": counts,
            "admitted": self._queue.admitted_total,
            "shed": self._queue.shed_total,
            "breakers": {be: br.snapshot()
                         for be, br in self._breakers.items()},
            "ema_exec_s": self._ema_exec_s,
        }
