"""Serving-layer configuration: environment knobs + process overrides.

Mirrors the spill/engine configuration pattern: hardened environment
parsing through :mod:`repro.graphblas.envutil` (malformed values warn
once and fall back), with process-wide overrides installed by
``capi.GxB_Serve_set`` taking precedence over the environment.

Environment knobs (all optional):

* ``GRAPHBLAS_SERVE_WORKERS`` — worker threads (default 4).
* ``GRAPHBLAS_SERVE_QUEUE_DEPTH`` — admission queue capacity (default 128).
* ``GRAPHBLAS_SERVE_DEADLINE_S`` — default per-request deadline in
  seconds, queue wait included (default 30; ``0`` disables).
* ``GRAPHBLAS_SERVE_BUDGET`` — default per-request governor memory
  budget in bytes, ``k``/``m``/``g`` suffixes accepted (default unset =
  unlimited; ``0`` also means unlimited).
* ``GRAPHBLAS_SERVE_BREAKER_THRESHOLD`` — consecutive backend failures
  that trip its circuit breaker (default 5).
* ``GRAPHBLAS_SERVE_BREAKER_RESET_S`` — seconds an open breaker waits
  before half-open probing (default 5).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..graphblas import envutil
from ..graphblas.errors import InvalidValue

__all__ = [
    "ServeConfig",
    "env_config",
    "serve_config",
    "set_serve_config",
    "reset_serve_config",
    "DEFAULT_WORKERS",
    "DEFAULT_QUEUE_DEPTH",
    "DEFAULT_DEADLINE_S",
    "DEFAULT_BREAKER_THRESHOLD",
    "DEFAULT_BREAKER_RESET_S",
]

DEFAULT_WORKERS = 4
DEFAULT_QUEUE_DEPTH = 128
DEFAULT_DEADLINE_S = 30.0
DEFAULT_BREAKER_THRESHOLD = 5
DEFAULT_BREAKER_RESET_S = 5.0


@dataclass
class ServeConfig:
    """One server's tunables (see the module docstring for the knobs)."""

    workers: int = DEFAULT_WORKERS
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    #: default per-request deadline (seconds, queue wait included);
    #: None/0 = no deadline.
    deadline_s: float | None = DEFAULT_DEADLINE_S
    #: default per-request governor memory budget (bytes); None/0 = none.
    memory_budget: int | None = None
    breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD
    breaker_reset_s: float = DEFAULT_BREAKER_RESET_S
    #: consecutive half-open probe successes that close a breaker.
    breaker_probes: int = 2
    #: primary kernel backend and the degradation chain behind it.
    backend: str = "optimized"
    fallbacks: tuple = ("reference", "scipy")
    #: queue-load fractions at which the degradation ladder advances:
    #: >= lite -> engine off; >= reference -> reference backend.
    lite_watermark: float = 0.60
    reference_watermark: float = 0.85
    #: base seed for per-request retry backoff schedules.
    seed: int = 0
    #: serve-level retry attempts / backoff for retryable failures.
    attempts: int = 3
    base_delay_s: float = 0.002
    max_delay_s: float = 0.25

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise InvalidValue(f"workers must be >= 1, got {self.workers}")
        if self.queue_depth < 1:
            raise InvalidValue(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.deadline_s is not None and self.deadline_s < 0:
            raise InvalidValue(
                f"deadline_s must be >= 0, got {self.deadline_s}"
            )
        if self.memory_budget is not None and self.memory_budget < 0:
            raise InvalidValue(
                f"memory_budget must be >= 0, got {self.memory_budget}"
            )
        if self.breaker_threshold < 1:
            raise InvalidValue(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_reset_s < 0:
            raise InvalidValue(
                f"breaker_reset_s must be >= 0, got {self.breaker_reset_s}"
            )
        if self.attempts < 1:
            raise InvalidValue(f"attempts must be >= 1, got {self.attempts}")
        self.fallbacks = tuple(self.fallbacks)

    def as_dict(self) -> dict:
        return {
            "workers": self.workers,
            "queue_depth": self.queue_depth,
            "deadline_s": self.deadline_s,
            "memory_budget": self.memory_budget,
            "breaker_threshold": self.breaker_threshold,
            "breaker_reset_s": self.breaker_reset_s,
            "breaker_probes": self.breaker_probes,
            "backend": self.backend,
            "fallbacks": self.fallbacks,
            "lite_watermark": self.lite_watermark,
            "reference_watermark": self.reference_watermark,
        }


def env_config() -> ServeConfig:
    """A :class:`ServeConfig` from the environment, hardened."""
    deadline = envutil.env_float(
        "GRAPHBLAS_SERVE_DEADLINE_S", DEFAULT_DEADLINE_S, minimum=0.0
    )
    budget = envutil.env_bytes("GRAPHBLAS_SERVE_BUDGET", None, minimum=0)
    return ServeConfig(
        workers=envutil.env_int(
            "GRAPHBLAS_SERVE_WORKERS", DEFAULT_WORKERS, minimum=1
        ),
        queue_depth=envutil.env_int(
            "GRAPHBLAS_SERVE_QUEUE_DEPTH", DEFAULT_QUEUE_DEPTH, minimum=1
        ),
        deadline_s=deadline if deadline else None,
        memory_budget=budget if budget else None,
        breaker_threshold=envutil.env_int(
            "GRAPHBLAS_SERVE_BREAKER_THRESHOLD",
            DEFAULT_BREAKER_THRESHOLD, minimum=1,
        ),
        breaker_reset_s=envutil.env_float(
            "GRAPHBLAS_SERVE_BREAKER_RESET_S",
            DEFAULT_BREAKER_RESET_S, minimum=0.0,
        ),
    )


# Process-wide overrides installed by capi.GxB_Serve_set (the same
# override-over-environment layering as the spill configuration).
_override: dict = {}

_OVERRIDABLE = (
    "workers", "queue_depth", "deadline_s", "memory_budget",
    "breaker_threshold", "breaker_reset_s", "breaker_probes", "backend",
)


def set_serve_config(**kwargs) -> None:
    """Install process-wide serve defaults (the ``GxB_Serve_set`` core).

    Only the arguments given change; unknown names raise
    :class:`~repro.graphblas.errors.InvalidValue`.  The values are
    validated by constructing the effective config immediately, so a bad
    override never lies latent until the next server starts.
    """
    trial = dict(_override)
    for key, value in kwargs.items():
        if key not in _OVERRIDABLE:
            raise InvalidValue(
                f"unknown serve option {key!r}; "
                f"settable: {', '.join(_OVERRIDABLE)}"
            )
        if value is None:
            continue
        trial[key] = value
    replace(env_config(), **trial)  # validate before committing
    _override.clear()
    _override.update(trial)


def reset_serve_config() -> None:
    """Drop all overrides (back to environment control)."""
    _override.clear()


def serve_config() -> ServeConfig:
    """Effective process defaults: overrides over environment."""
    cfg = env_config()
    if _override:
        cfg = replace(cfg, **_override)
    return cfg
