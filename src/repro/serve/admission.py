"""Bounded admission queue with per-tenant fair share and load shedding.

Unbounded queues turn overload into unbounded latency: every request is
eventually served, far past its deadline, while memory grows without
limit.  The serving layer instead *sheds* — rejects with
:class:`~repro.serve.errors.Overloaded` at admission time — once the
queue passes its watermarks, keeping latency bounded for the work it
does accept (the classic goodput-over-throughput tradeoff).

Fairness has two halves:

* **Service order** — :meth:`AdmissionQueue.get` round-robins across
  per-tenant subqueues, so a tenant with 1 queued request waits behind
  at most one request per other tenant, not behind a flood.
* **Admission** — each tenant's *fair quota* is ``capacity / active
  tenants`` (recomputed per put).  While the queue has room everyone is
  admitted; once total depth reaches capacity, only tenants *below*
  their quota may still enter (bounded overflow, at most one quota's
  worth per tenant) and tenants at/above quota are shed with reason
  ``"tenant_quota"`` or ``"queue_full"``.  A flooding tenant therefore
  cannot lock a quiet one out of a full queue.

``capacity`` is consequently a soft bound: worst-case depth is below
``2 * capacity`` (every tenant admitted while full stops at its quota).
A per-tenant hard cap (``max_queue`` on the tenant policy) is enforced
unconditionally with reason ``"tenant_limit"``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque

from .errors import Overloaded

__all__ = ["AdmissionQueue"]


class AdmissionQueue:
    """Thread-safe bounded multi-tenant queue (round-robin service)."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._queues: OrderedDict[str, deque] = OrderedDict()
        self._depth = 0
        self._closed = False
        self.shed_total = 0
        self.admitted_total = 0

    # -- producer ----------------------------------------------------------

    def put(self, item, tenant: str, *, max_queue: int | None = None) -> None:
        """Admit ``item`` for ``tenant`` or raise :class:`Overloaded`.

        ``max_queue`` is the tenant's hard per-tenant cap (from its
        policy); the fair quota is computed from the live tenant count.
        """
        with self._not_empty:
            q = self._queues.get(tenant)
            tenant_depth = len(q) if q is not None else 0
            if max_queue is not None and tenant_depth >= max_queue:
                self.shed_total += 1
                raise Overloaded(
                    f"tenant {tenant!r} at its hard queue cap "
                    f"({tenant_depth}/{max_queue})",
                    reason="tenant_limit", tenant=tenant,
                )
            if self._depth >= self.capacity:
                active = len(self._queues) + (0 if q is not None else 1)
                quota = max(1, self.capacity // active)
                if tenant_depth >= quota:
                    self.shed_total += 1
                    reason = ("queue_full" if active == 1 else "tenant_quota")
                    raise Overloaded(
                        f"queue at capacity ({self._depth}/{self.capacity}) "
                        f"and tenant {tenant!r} at its fair share "
                        f"({tenant_depth}/{quota})",
                        reason=reason, tenant=tenant,
                    )
            if q is None:
                q = self._queues[tenant] = deque()
            q.append(item)
            self._depth += 1
            self.admitted_total += 1
            self._not_empty.notify()

    # -- consumer ----------------------------------------------------------

    def get(self, timeout: float | None = None):
        """Next item, round-robin across tenants; None on timeout/close."""
        with self._not_empty:
            if self._depth == 0 and not self._closed:
                self._not_empty.wait(timeout)
            if self._depth == 0:
                return None
            # round-robin: serve the first tenant in insertion order, then
            # rotate it to the back so every tenant advances in turn
            tenant, q = next(iter(self._queues.items()))
            item = q.popleft()
            self._depth -= 1
            del self._queues[tenant]
            if q:
                self._queues[tenant] = q  # re-append: moves to the back
            return item

    # -- lifecycle / introspection ----------------------------------------

    def close(self) -> None:
        """Wake all blocked getters; further gets return None when empty."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    def drain(self) -> list:
        """Remove and return everything still queued (shutdown path)."""
        with self._not_empty:
            items = [item for q in self._queues.values() for item in q]
            self._queues.clear()
            self._depth = 0
            return items

    @property
    def depth(self) -> int:
        return self._depth

    def depth_for(self, tenant: str) -> int:
        with self._lock:
            q = self._queues.get(tenant)
            return len(q) if q is not None else 0

    def load(self) -> float:
        """Queue depth as a fraction of (soft) capacity."""
        return self._depth / self.capacity

    def tenants(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._queues)
