"""Per-backend circuit breaker with half-open probing.

A breaker guards one kernel backend in the serving layer's fallback
chain.  Repeated kernel failures or divergences *open* the breaker, and
queries route around the backend (to the reference/scipy chain) instead
of hammering a failing engine.  After ``reset_timeout_s`` the breaker
goes *half-open* and admits a single probe request at a time; once
``probe_successes`` consecutive probes succeed the breaker closes and
the optimized backend is restored.  A failed probe reopens it for
another full timeout.

States and transitions::

    CLOSED --(failure_threshold consecutive failures)--> OPEN
    OPEN   --(reset_timeout_s elapsed)---------------->  HALF_OPEN
    HALF_OPEN --(probe_successes successes)----------->  CLOSED
    HALF_OPEN --(any failure)------------------------->  OPEN

All methods are thread-safe; ``clock`` is injectable so tests drive the
timeout deterministically.  ``on_transition(name, old, new)`` fires
outside the lock on every state change (metrics/telemetry hook).
"""

from __future__ import annotations

import threading
import time

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN", "STATE_CODES"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Numeric encoding for the ``serve_breaker_state`` gauge.
STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """One backend's failure-trip state machine."""

    def __init__(self, name: str = "backend", *,
                 failure_threshold: int = 5,
                 reset_timeout_s: float = 5.0,
                 probe_successes: int = 2,
                 clock=time.monotonic,
                 on_transition=None) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_s < 0:
            raise ValueError(
                f"reset_timeout_s must be >= 0, got {reset_timeout_s}"
            )
        if probe_successes < 1:
            raise ValueError(
                f"probe_successes must be >= 1, got {probe_successes}"
            )
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self.probe_successes = int(probe_successes)
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0          # consecutive failures while closed
        self._successes = 0         # consecutive probe successes, half-open
        self._probe_in_flight = False
        self._opened_at: float | None = None
        # cumulative counters for health/metrics
        self.opened_total = 0
        self.failures_total = 0
        self.successes_total = 0
        self.probes_total = 0

    # -- state -------------------------------------------------------------

    def _transition(self, new: str) -> tuple[str, str] | None:
        """State change under the lock; returns (old, new) for the hook."""
        old = self._state
        if old == new:
            return None
        self._state = new
        if new == OPEN:
            self._opened_at = self._clock()
            self.opened_total += 1
        if new == HALF_OPEN:
            self._successes = 0
            self._probe_in_flight = False
        if new == CLOSED:
            self._failures = 0
            self._successes = 0
            self._probe_in_flight = False
        return (old, new)

    def _fire(self, change: tuple[str, str] | None) -> None:
        if change is not None and self._on_transition is not None:
            self._on_transition(self.name, change[0], change[1])

    @property
    def state(self) -> str:
        """Current state, applying the OPEN -> HALF_OPEN timeout lazily."""
        with self._lock:
            change = self._maybe_half_open()
        self._fire(change)
        return self._state

    def _maybe_half_open(self) -> tuple[str, str] | None:
        if self._state == OPEN and self._opened_at is not None \
                and self._clock() - self._opened_at >= self.reset_timeout_s:
            return self._transition(HALF_OPEN)
        return None

    @property
    def state_code(self) -> int:
        """0 = closed, 1 = half-open, 2 = open (gauge encoding)."""
        return STATE_CODES[self.state]

    # -- request gating ----------------------------------------------------

    def allow(self) -> bool:
        """May a request use this backend right now?

        Closed: always.  Open: no (until the reset timeout flips the
        breaker half-open).  Half-open: one probe at a time — a ``True``
        return *claims* the probe slot, and the caller must follow up
        with :meth:`record_success`, :meth:`record_failure`, or
        :meth:`release_probe`.
        """
        with self._lock:
            change = self._maybe_half_open()
            if self._state == CLOSED:
                allowed = True
            elif self._state == OPEN:
                allowed = False
            else:  # HALF_OPEN: single probe in flight
                allowed = not self._probe_in_flight
                if allowed:
                    self._probe_in_flight = True
                    self.probes_total += 1
        self._fire(change)
        return allowed

    def release_probe(self) -> None:
        """Give back a claimed half-open probe slot without a verdict
        (the request was cancelled before the backend ran)."""
        with self._lock:
            self._probe_in_flight = False

    # -- verdicts ----------------------------------------------------------

    def record_success(self) -> None:
        """A request served by this backend completed correctly."""
        with self._lock:
            self.successes_total += 1
            if self._state == HALF_OPEN:
                self._probe_in_flight = False
                self._successes += 1
                change = (
                    self._transition(CLOSED)
                    if self._successes >= self.probe_successes else None
                )
            else:
                self._failures = 0
                change = None
        self._fire(change)

    def record_failure(self) -> None:
        """A request served by this backend failed (kernel error or
        divergence).  Enough consecutive failures trip the breaker; any
        half-open probe failure reopens it."""
        with self._lock:
            self.failures_total += 1
            if self._state == HALF_OPEN:
                change = self._transition(OPEN)
            elif self._state == CLOSED:
                self._failures += 1
                change = (
                    self._transition(OPEN)
                    if self._failures >= self.failure_threshold else None
                )
            else:
                change = None
        self._fire(change)

    # -- introspection -----------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict state for health probes and test assertions."""
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "opened_total": self.opened_total,
                "failures_total": self.failures_total,
                "successes_total": self.successes_total,
                "probes_total": self.probes_total,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CircuitBreaker {self.name!r} {self._state}>"
