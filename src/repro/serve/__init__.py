"""``repro.serve`` — resilient in-process multi-tenant graph serving.

The subsystem turns the library into a long-lived service: writers
ingest edges through :class:`~repro.stream.GraphStream`, publication
swaps in immutable copy-on-write snapshots, and many tenants run
concurrent algorithm queries over a governed worker pool with admission
control, retries, circuit breakers, and graceful degradation.  See
:mod:`repro.serve.server` for the full design and ``docs/API.md``
("Serving") for the user-facing guide.

Quick start::

    from repro.serve import GraphServer

    with GraphServer(workers=4) as srv:
        srv.add_graph("web", n=1 << 12)
        srv.ingest("web", src, dst)
        srv.publish("web")
        ranks = srv.query("pagerank", graph="web", tenant="alice")
"""

from .backoff import Backoff, retry_call
from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .admission import AdmissionQueue
from .config import (
    ServeConfig,
    env_config,
    reset_serve_config,
    serve_config,
    set_serve_config,
)
from .errors import Overloaded, QueryFailed, ServeError, ServerClosed
from .server import (
    ALGORITHMS,
    TIERS,
    GraphServer,
    QueryTicket,
    TenantPolicy,
    register_algorithm,
)

__all__ = [
    # server
    "GraphServer",
    "TenantPolicy",
    "QueryTicket",
    "ALGORITHMS",
    "register_algorithm",
    "TIERS",
    # config
    "ServeConfig",
    "serve_config",
    "env_config",
    "set_serve_config",
    "reset_serve_config",
    # building blocks
    "Backoff",
    "retry_call",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "AdmissionQueue",
    # errors
    "ServeError",
    "Overloaded",
    "ServerClosed",
    "QueryFailed",
]
