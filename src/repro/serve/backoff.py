"""Shared retry backoff: capped exponential delays with seeded jitter.

Before this module, two layers computed retry delays independently: the
governor's :class:`~repro.graphblas.governor.RetryPolicy` (used bare at
backend dispatch) and ad-hoc sleeps in spill I/O.  Both now delegate to
one :class:`Backoff`, so the serving layer, the dispatch retry, and any
future retry site share identical, testable schedules.

The schedule is the standard capped-exponential-with-jitter shape::

    raw(k)   = min(base * factor**(k-1), cap)          # k = failures so far
    delay(k) = raw(k) * (1 - jitter + jitter * u)      # u ~ U[0, 1)

``jitter=1.0`` is AWS-style *full jitter* (uniform over ``(0, raw]``),
``jitter=0.0`` is the deterministic exponential ladder, and values in
between blend the two.  The jitter RNG is seeded, so a recorded seed
replays the exact same schedule — the property the resilience suite
relies on to reproduce fault scenarios.

This module is a dependency leaf (NumPy only): it must stay importable
from :mod:`repro.graphblas.governor` without pulling the serving layer's
graph machinery into the core import graph.
"""

from __future__ import annotations

import time

import numpy as np

__all__ = ["Backoff", "retry_call"]


class Backoff:
    """Capped exponential backoff with seeded jitter.

    Parameters
    ----------
    base:
        Delay before the second attempt (seconds).
    cap:
        Upper bound on any single delay (seconds).
    factor:
        Exponential growth factor between attempts.
    jitter:
        Jitter fraction in ``[0, 1]``: each delay is drawn uniformly from
        ``[raw * (1 - jitter), raw)``; ``1.0`` is full jitter, ``0.0``
        disables jitter entirely.
    seed:
        Seed for the jitter RNG; equal seeds replay equal schedules.
    """

    def __init__(self, *, base: float = 0.01, cap: float = 2.0,
                 factor: float = 2.0, jitter: float = 0.5,
                 seed: int = 0) -> None:
        if base < 0:
            raise ValueError(f"base must be >= 0, got {base}")
        if cap < 0:
            raise ValueError(f"cap must be >= 0, got {cap}")
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.base = float(base)
        self.cap = float(cap)
        self.factor = float(factor)
        self.jitter = float(jitter)
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)

    def raw(self, failures: int) -> float:
        """The un-jittered delay after ``failures`` failures (>= 1)."""
        if failures < 1:
            raise ValueError(f"failures must be >= 1, got {failures}")
        return min(self.base * (self.factor ** (failures - 1)), self.cap)

    def delay(self, failures: int) -> float:
        """The jittered delay before the next attempt.

        Consumes one draw from the seeded RNG per call, so delays must be
        requested in attempt order to reproduce a recorded schedule.
        """
        d = self.raw(failures)
        if self.jitter and d > 0:
            d *= 1.0 - self.jitter + self.jitter * float(self._rng.random())
        return d

    def delays(self, n: int) -> list[float]:
        """The next ``n`` delays, in order (advances the RNG)."""
        return [self.delay(k) for k in range(1, n + 1)]

    def reset(self) -> None:
        """Rewind the jitter RNG to the start of the seeded stream."""
        self._rng = np.random.default_rng(self.seed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Backoff(base={self.base}, cap={self.cap}, "
            f"factor={self.factor}, jitter={self.jitter}, seed={self.seed})"
        )


def retry_call(fn, *, attempts: int, backoff: Backoff, transient,
               on_retry=None, sleep=time.sleep):
    """Run ``fn()`` with up to ``attempts`` tries under one shared loop.

    ``transient`` is the exception class (or tuple) worth retrying;
    anything else propagates immediately.  After each transient failure
    that leaves attempts remaining, ``on_retry(failures, delay, exc)`` is
    invoked (telemetry, governor poll, stats) *before* sleeping, so a
    cancelled context aborts the retry rather than sleeping through it.
    ``sleep`` is injectable for tests.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    for attempt in range(1, attempts + 1):
        try:
            return fn()
        except transient as exc:
            if attempt == attempts:
                raise
            d = backoff.delay(attempt)
            if on_retry is not None:
                on_retry(attempt, d, exc)
            if d > 0:
                sleep(d)
