"""Serving-layer failure taxonomy.

The serving layer separates *admission* failures (the request never ran:
the server shed it or is shutting down) from *execution* failures (the
request ran and terminally failed after retries and fallbacks).  Clients
can retry ``Overloaded`` elsewhere or later; ``QueryFailed`` carries the
terminal underlying error and the request's execution record.

Governor interruptions (:class:`~repro.graphblas.errors.DeadlineExceeded`,
:class:`~repro.graphblas.errors.Cancelled`) propagate unwrapped from
:meth:`~repro.serve.server.QueryTicket.result` — they are the same
exceptions a direct, governed algorithm call would raise.
"""

from __future__ import annotations

__all__ = ["ServeError", "Overloaded", "ServerClosed", "QueryFailed"]


class ServeError(Exception):
    """Base class for serving-layer errors."""


class Overloaded(ServeError):
    """The request was shed at admission instead of queued.

    Raised by :meth:`~repro.serve.server.GraphServer.submit` when the
    bounded queue is beyond its depth watermark, the tenant is over its
    fair share, or the request's deadline cannot survive the estimated
    queue wait.  ``reason`` is one of ``"queue_full"``,
    ``"tenant_quota"``, ``"tenant_limit"``, or ``"deadline_watermark"``.
    """

    def __init__(self, message: str, *, reason: str = "queue_full",
                 tenant: str | None = None) -> None:
        super().__init__(message)
        self.reason = reason
        self.tenant = tenant


class ServerClosed(ServeError):
    """The server is draining or closed and accepts no new work."""


class QueryFailed(ServeError):
    """A served query terminally failed after retries and backend fallbacks.

    ``__cause__`` holds the final underlying exception; ``outcome`` the
    recorded terminal outcome label.
    """

    def __init__(self, message: str, *, outcome: str = "failed") -> None:
        super().__init__(message)
        self.outcome = outcome
