"""The GraphBLAS operations of Table I.

Every operation follows the spec's canonical pipeline:

1. resolve descriptor (input transposes, mask semantics, replace);
2. run a sparse kernel producing the intermediate result ``T``;
3. merge ``T`` into the output through the shared accum-then-mask write
   step (:mod:`repro.graphblas.mask`).

Matrix and vector variants share entry points and dispatch on object type,
mirroring the polymorphic C interface the IBM implementation builds with
``_Generic`` (section II.B).

Signatures are "output first": ``mxm(C, A, B, semiring, mask=…, accum=…,
desc=…)`` updates and returns ``C``.  The strict C-API shape lives in
:mod:`repro.graphblas.capi`.
"""

from __future__ import annotations

import numpy as np

from . import faults, telemetry
from . import mxv as _mxv_mod
from .coords import coords_in, idx_in, match_coo, match_idx
from .descriptor import Descriptor, desc as _desc
from .errors import (
    DimensionMismatch,
    DomainMismatch,
    IndexOutOfBounds,
    InvalidValue,
)
from .mask import mask_true_coords, mask_true_idx, write_matrix, write_vector
from .matrix import Matrix
from .monoid import Monoid, monoid as _monoid
from .mxm import _gather_ranges, mxm_coo
from .mxv import DirectionOptimizer, spmspv_push, spmv_pull
from .ops import BinaryOp, IndexUnaryOp, binary as _binary, indexunary as _indexunary, unary as _unary
from .semiring import Semiring, semiring as _semiring
from .types import BOOL, lookup_type
from .vector import Vector

__all__ = [
    "ALL",
    "mxm",
    "mxv",
    "vxm",
    "ewise_add",
    "ewise_mult",
    "apply",
    "select",
    "reduce_rowwise",
    "reduce_scalar",
    "transpose",
    "extract",
    "assign",
    "subassign",
    "kronecker",
    "concat",
    "split",
    "diag",
    "diag_extract",
    "nvals_like",
]

_INDEX = np.int64


class _All:
    """``GrB_ALL``: select every index of a dimension."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ALL"


ALL = _All()


def _resolve_accum(accum) -> BinaryOp | None:
    return None if accum is None else _binary(accum)


def _resolve_index(I, dim: int) -> np.ndarray:
    """Resolve an index specification (ALL, slice, int, array) to indices."""
    if I is None or isinstance(I, _All):
        return np.arange(dim, dtype=_INDEX)
    if isinstance(I, slice):
        return np.arange(*I.indices(dim), dtype=_INDEX)
    if np.isscalar(I):
        I = [I]
    I = np.asarray(I, dtype=_INDEX)
    if I.size and (I.min() < 0 or I.max() >= dim):
        raise IndexOutOfBounds(f"index set exceeds dimension {dim}")
    return I


def _matrix_coo(A: Matrix, transposed: bool):
    rows, cols, vals = A.extract_tuples()
    if transposed:
        rows, cols = cols, rows
    return rows, cols, vals


def _mat_shape(A: Matrix, transposed: bool) -> tuple[int, int]:
    return (A.ncols, A.nrows) if transposed else A.shape


# --------------------------------------------------------------------------
# mxm / mxv / vxm
# --------------------------------------------------------------------------

@telemetry.instrumented("mxm")
def mxm(
    C: Matrix,
    A: Matrix,
    B: Matrix,
    semiring="PLUS_TIMES",
    *,
    mask: Matrix | None = None,
    accum=None,
    desc=None,
    method: str = "auto",
) -> Matrix:
    """``GrB_mxm``: C<mask> (+)= A (+).(x) B."""
    d = _desc(desc)
    sr = _semiring(semiring)
    accum = _resolve_accum(accum)
    nra, nca = _mat_shape(A, d.transpose_a)
    nrb, ncb = _mat_shape(B, d.transpose_b)
    if nca != nrb:
        raise DimensionMismatch(f"inner dims differ: {nca} vs {nrb}")
    if C.shape != (nra, ncb):
        raise DimensionMismatch(f"output is {C.shape}, expected {(nra, ncb)}")

    a_rows = A.by_col().transposed() if d.transpose_a else A.by_row()
    b_rows = B.by_col().transposed() if d.transpose_b else B.by_row()
    out_type = sr.out_type(A.dtype, B.dtype)

    mask_hint = None
    if mask is not None and not d.complement_mask:
        mask_hint = mask_true_coords(mask, d)
    tr, tc, tv = mxm_coo(
        a_rows,
        b_rows,
        sr,
        out_type,
        method=method,
        mask_coords=mask_hint,
        mask_complement=False,
    )
    return write_matrix(C, tr, tc, tv, mask=mask, accum=accum, desc=d)


@telemetry.instrumented("mxv")
def mxv(
    w: Vector,
    A: Matrix,
    u: Vector,
    semiring="PLUS_TIMES",
    *,
    mask: Vector | None = None,
    accum=None,
    desc=None,
    method: str = "auto",
    optimizer: DirectionOptimizer | None = None,
) -> Vector:
    """``GrB_mxv``: w<mask> (+)= A (+).(x) u, with push/pull selection."""
    return _matvec(w, A, u, semiring, mask, accum, desc, method, optimizer, True)


@telemetry.instrumented("vxm")
def vxm(
    w: Vector,
    u: Vector,
    A: Matrix,
    semiring="PLUS_TIMES",
    *,
    mask: Vector | None = None,
    accum=None,
    desc=None,
    method: str = "auto",
    optimizer: DirectionOptimizer | None = None,
) -> Vector:
    """``GrB_vxm``: w^T<mask> (+)= u^T (+).(x) A."""
    return _matvec(w, A, u, semiring, mask, accum, desc, method, optimizer, False)


def _matvec(w, A, u, semiring, mask, accum, desc, method, optimizer, is_mxv):
    d = _desc(desc)
    sr = _semiring(semiring)
    accum = _resolve_accum(accum)
    # effective transpose: vxm(u, A) is mxv with A^T, so fold the flag
    transposed = d.transpose_a if is_mxv else not d.transpose_a
    inner = A.nrows if transposed else A.ncols
    outer = A.ncols if transposed else A.nrows
    if u.size != inner:
        raise DimensionMismatch(f"vector size {u.size}, matrix inner dim {inner}")
    if w.size != outer:
        raise DimensionMismatch(f"output size {w.size}, matrix outer dim {outer}")
    out_type = (
        sr.out_type(A.dtype, u.dtype) if is_mxv else sr.out_type(u.dtype, A.dtype)
    )

    if method not in ("auto", "push", "pull"):
        raise InvalidValue(f"unknown mxv method {method!r}")
    if method == "auto":
        density = u.nvals / u.size
        threshold = (
            optimizer.threshold
            if optimizer is not None
            else _mxv_mod.get_switch_threshold()
        )
        if optimizer is not None:
            method = optimizer.choose(density)
        else:
            method = "push" if density <= threshold else "pull"
        if telemetry.ENABLED:
            telemetry.decision(
                "mxv.direction",
                op="mxv" if is_mxv else "vxm",
                direction=method,
                density=density,
                threshold=threshold,
                frontier_nvals=u.nvals,
                size=u.size,
                hysteresis=optimizer is not None,
            )
    elif telemetry.ENABLED:
        telemetry.decision(
            "mxv.direction",
            op="mxv" if is_mxv else "vxm",
            direction=method,
            forced=True,
            frontier_nvals=u.nvals,
            size=u.size,
        )

    if method == "push":
        store = A.by_row() if transposed else A.by_col()
        u_idx, u_vals = u.extract_tuples()
        ti, tv = spmspv_push(store, u_idx, u_vals, sr, out_type, matrix_first=is_mxv)
    else:
        store = A.by_col().transposed() if transposed else A.by_row()
        hint = None
        if mask is not None and not d.complement_mask:
            hint = mask_true_idx(mask, d)
        ti, tv = spmv_pull(
            store,
            u.to_dense(),
            u.pattern(),
            sr,
            out_type,
            matrix_first=is_mxv,
            outer_hint=hint,
        )
    return write_vector(w, ti, tv, mask=mask, accum=accum, desc=d)


# --------------------------------------------------------------------------
# element-wise operations
# --------------------------------------------------------------------------

def _ewise_op(op):
    """eWise ops accept a BinaryOp, Monoid (its op), or Semiring (its add)."""
    if isinstance(op, Semiring):
        return op.add.op
    if isinstance(op, Monoid):
        return op.op
    return _binary(op)


@telemetry.instrumented("eWiseAdd")
def ewise_add(C, A, B, op="PLUS", *, mask=None, accum=None, desc=None):
    """``GrB_eWiseAdd``: set *union* of patterns; op applied where both."""
    if faults.ENABLED:
        faults.trip("ewise")
    d = _desc(desc)
    op = _ewise_op(op)
    accum = _resolve_accum(accum)
    if op.positional:
        raise DomainMismatch("positional ops are not valid in eWiseAdd")
    if isinstance(A, Vector):
        if A.size != B.size or C.size != A.size:
            raise DimensionMismatch("eWiseAdd vector sizes differ")
        ai, av = A.extract_tuples()
        bi, bv = B.extract_tuples()
        out_type = op.out_type(A.dtype, B.dtype)
        ia, ib, oa, ob = match_idx(ai, bi)
        both = op.apply(av[ia], bv[ib], out_type)
        ti = np.concatenate([ai[ia], ai[oa], bi[ob]])
        tv = np.concatenate(
            [both, out_type.cast_array(av[oa]), out_type.cast_array(bv[ob])]
        )
        order = np.argsort(ti, kind="stable")
        return write_vector(C, ti[order], tv[order], mask=mask, accum=accum, desc=d)
    shape_a = _mat_shape(A, d.transpose_a)
    shape_b = _mat_shape(B, d.transpose_b)
    if shape_a != shape_b or C.shape != shape_a:
        raise DimensionMismatch("eWiseAdd matrix shapes differ")
    ar, ac, av = _matrix_coo(A, d.transpose_a)
    br, bc, bv = _matrix_coo(B, d.transpose_b)
    out_type = op.out_type(A.dtype, B.dtype)
    ia, ib, oa, ob = match_coo(ar, ac, br, bc)
    both = op.apply(av[ia], bv[ib], out_type)
    tr = np.concatenate([ar[ia], ar[oa], br[ob]])
    tc = np.concatenate([ac[ia], ac[oa], bc[ob]])
    tv = np.concatenate(
        [both, out_type.cast_array(av[oa]), out_type.cast_array(bv[ob])]
    )
    return write_matrix(C, tr, tc, tv, mask=mask, accum=accum, desc=d)


@telemetry.instrumented("eWiseMult")
def ewise_mult(C, A, B, op="TIMES", *, mask=None, accum=None, desc=None):
    """``GrB_eWiseMult``: set *intersection* of patterns."""
    if faults.ENABLED:
        faults.trip("ewise")
    d = _desc(desc)
    op = _ewise_op(op)
    accum = _resolve_accum(accum)
    if op.positional:
        raise DomainMismatch("positional ops are not valid in eWiseMult")
    if isinstance(A, Vector):
        if A.size != B.size or C.size != A.size:
            raise DimensionMismatch("eWiseMult vector sizes differ")
        ai, av = A.extract_tuples()
        bi, bv = B.extract_tuples()
        out_type = op.out_type(A.dtype, B.dtype)
        ia, ib, _, _ = match_idx(ai, bi)
        tv = op.apply(av[ia], bv[ib], out_type)
        return write_vector(C, ai[ia], tv, mask=mask, accum=accum, desc=d)
    shape_a = _mat_shape(A, d.transpose_a)
    shape_b = _mat_shape(B, d.transpose_b)
    if shape_a != shape_b or C.shape != shape_a:
        raise DimensionMismatch("eWiseMult matrix shapes differ")
    ar, ac, av = _matrix_coo(A, d.transpose_a)
    br, bc, bv = _matrix_coo(B, d.transpose_b)
    out_type = op.out_type(A.dtype, B.dtype)
    ia, ib, _, _ = match_coo(ar, ac, br, bc)
    tv = op.apply(av[ia], bv[ib], out_type)
    return write_matrix(C, ar[ia], ac[ia], tv, mask=mask, accum=accum, desc=d)


# --------------------------------------------------------------------------
# apply / select
# --------------------------------------------------------------------------

@telemetry.instrumented("apply")
def apply(
    C,
    A,
    op="IDENTITY",
    *,
    left=None,
    right=None,
    thunk=None,
    mask=None,
    accum=None,
    desc=None,
):
    """``GrB_apply``: C<mask> (+)= f(A).

    ``op`` may be a UnaryOp; a BinaryOp with ``left`` or ``right`` bound
    (``GrB_apply_BinaryOp1st/2nd``); or an IndexUnaryOp with ``thunk``.
    """
    if faults.ENABLED:
        faults.trip("apply")
    d = _desc(desc)
    accum = _resolve_accum(accum)
    is_vec = isinstance(A, Vector)

    if is_vec:
        if C.size != A.size:
            raise DimensionMismatch("apply vector sizes differ")
        ti, tv_in = A.extract_tuples()
        rows, cols = ti, np.zeros_like(ti)
    else:
        if C.shape != _mat_shape(A, d.transpose_a):
            raise DimensionMismatch("apply matrix shapes differ")
        rows, cols, tv_in = _matrix_coo(A, d.transpose_a)

    from .ops import INDEXUNARY_OPS

    if isinstance(op, IndexUnaryOp) or (
        isinstance(op, str) and op.upper() in INDEXUNARY_OPS
    ):
        iu = _indexunary(op)
        out_type = iu.out_type(A.dtype)
        tv = out_type.cast_array(iu.apply(tv_in, rows, cols, thunk if thunk is not None else 0))
    elif left is not None or right is not None:
        bop = _binary(op)
        if left is not None and right is not None:
            raise InvalidValue("bind only one side of the binary op")
        if left is not None:
            out_type = bop.out_type(lookup_type(np.asarray(left).dtype), A.dtype)
            tv = bop.apply(np.broadcast_to(np.asarray(left), tv_in.shape), tv_in, out_type)
        else:
            out_type = bop.out_type(A.dtype, lookup_type(np.asarray(right).dtype))
            tv = bop.apply(tv_in, np.broadcast_to(np.asarray(right), tv_in.shape), out_type)
    else:
        uop = _unary(op)
        out_type = uop.out_type(A.dtype)
        tv = uop.apply(tv_in, out_type)

    if is_vec:
        return write_vector(C, rows, tv, mask=mask, accum=accum, desc=d)
    return write_matrix(C, rows, cols, tv, mask=mask, accum=accum, desc=d)


@telemetry.instrumented("select")
def select(C, A, op, thunk=0, *, mask=None, accum=None, desc=None):
    """``GrB_select``: keep entries where the index-unary predicate holds."""
    if faults.ENABLED:
        faults.trip("select")
    d = _desc(desc)
    accum = _resolve_accum(accum)
    iu = _indexunary(op)
    if isinstance(A, Vector):
        if C.size != A.size:
            raise DimensionMismatch("select vector sizes differ")
        ti, tv = A.extract_tuples()
        keep = BOOL.cast_array(iu.apply(tv, ti, np.zeros_like(ti), thunk))
        return write_vector(C, ti[keep], tv[keep], mask=mask, accum=accum, desc=d)
    if C.shape != _mat_shape(A, d.transpose_a):
        raise DimensionMismatch("select matrix shapes differ")
    rows, cols, vals = _matrix_coo(A, d.transpose_a)
    keep = BOOL.cast_array(iu.apply(vals, rows, cols, thunk))
    return write_matrix(
        C, rows[keep], cols[keep], vals[keep], mask=mask, accum=accum, desc=d
    )


# --------------------------------------------------------------------------
# reduce
# --------------------------------------------------------------------------

@telemetry.instrumented("reduce")
def reduce_rowwise(
    w: Vector,
    A: Matrix,
    op="PLUS",
    *,
    mask=None,
    accum=None,
    desc=None,
):
    """``GrB_reduce`` (matrix to vector): w(i) = (+)_j A(i, j).

    Reduce columns instead by setting the transpose descriptor.
    """
    if faults.ENABLED:
        faults.trip("reduce")
    d = _desc(desc)
    mon = _monoid(op)
    accum = _resolve_accum(accum)
    nr, _ = _mat_shape(A, d.transpose_a)
    if w.size != nr:
        raise DimensionMismatch(f"output size {w.size}, expected {nr}")
    store = A.by_col() if d.transpose_a else A.by_row()
    counts = np.diff(store.indptr)
    nonempty = counts > 0
    ids = store.h if store.hyper else np.arange(store.n_major, dtype=_INDEX)
    ti = ids[nonempty]
    starts = store.indptr[:-1][nonempty]
    tv = mon.reduce_segments(store.values, starts, A.dtype)
    return write_vector(w, ti, tv, mask=mask, accum=accum, desc=d)


@telemetry.instrumented("reduce")
def reduce_scalar(A, op="PLUS", *, accum=None, init=None):
    """``GrB_reduce`` (to scalar): fold every stored value with a monoid.

    Returns a Python value; an empty object reduces to the monoid identity.
    ``accum``/``init`` fold the result into a prior value.
    """
    if faults.ENABLED:
        faults.trip("reduce")
    mon = _monoid(op)
    if isinstance(A, Vector):
        _, vals = A.extract_tuples()
        dtype = A.dtype
    else:
        _, _, vals = A.extract_tuples()
        dtype = A.dtype
    out = mon.reduce_array(vals, dtype)
    if accum is not None and init is not None:
        out = _binary(accum).apply(np.asarray(init), np.asarray(out), dtype)
        out = out.item() if dtype.builtin else out
    return out


# --------------------------------------------------------------------------
# transpose / extract / assign / kronecker
# --------------------------------------------------------------------------

@telemetry.instrumented("transpose")
def transpose(C: Matrix, A: Matrix, *, mask=None, accum=None, desc=None) -> Matrix:
    """``GrB_transpose``: C<mask> (+)= A^T.

    Per the C API's quirk, setting the INP0 transpose descriptor yields
    C<mask> (+)= A (the two transposes cancel).
    """
    if faults.ENABLED:
        faults.trip("transpose")
    d = _desc(desc)
    accum = _resolve_accum(accum)
    transposed = not d.transpose_a
    if C.shape != _mat_shape(A, transposed):
        raise DimensionMismatch("transpose output shape mismatch")
    rows, cols, vals = _matrix_coo(A, transposed)
    return write_matrix(C, rows, cols, vals, mask=mask, accum=accum, desc=d)


def _expand_selection(sel: np.ndarray, entry_ids: np.ndarray):
    """Map original indices through a (possibly duplicated) selection list.

    Returns (entry_positions, output_indices): for every occurrence of
    ``entry_ids[p]`` in ``sel``, one pair (p, position-in-sel).
    """
    order = np.argsort(sel, kind="stable")
    sorted_sel = sel[order]
    lo = np.searchsorted(sorted_sel, entry_ids, "left")
    hi = np.searchsorted(sorted_sel, entry_ids, "right")
    reps = hi - lo
    gather = _gather_ranges(lo, hi)
    out_pos = order[gather]
    entry_sel = np.repeat(np.arange(entry_ids.size, dtype=_INDEX), reps)
    return entry_sel, out_pos.astype(_INDEX)


@telemetry.instrumented("extract")
def extract(C, A, I=ALL, J=ALL, *, mask=None, accum=None, desc=None):
    """``GrB_extract``: C<mask> (+)= A(I, J) (matrix), w (+)= u(I) (vector),
    or w (+)= A(I, j) (column extract when J is a scalar and A a matrix)."""
    if faults.ENABLED:
        faults.trip("extract")
    d = _desc(desc)
    accum = _resolve_accum(accum)

    if isinstance(A, Vector):
        I_res = _resolve_index(I, A.size)
        if C.size != I_res.size:
            raise DimensionMismatch("extract output size mismatch")
        ai, av = A.extract_tuples()
        entry_sel, out_pos = _expand_selection(I_res, ai)
        ti, tv = out_pos, av[entry_sel]
        order = np.argsort(ti, kind="stable")
        return write_vector(C, ti[order], tv[order], mask=mask, accum=accum, desc=d)

    nr, nc = _mat_shape(A, d.transpose_a)
    col_extract = isinstance(C, Vector) and np.isscalar(J) and not isinstance(J, _All)
    if col_extract:
        I_res = _resolve_index(I, nr)
        j = int(J)
        if not 0 <= j < nc:
            raise IndexOutOfBounds(f"column {j} outside [0,{nc})")
        rows, cols, vals = _matrix_coo(A, d.transpose_a)
        in_col = cols == j
        entry_sel, out_pos = _expand_selection(I_res, rows[in_col])
        tv = vals[in_col][entry_sel]
        order = np.argsort(out_pos, kind="stable")
        return write_vector(
            C, out_pos[order], tv[order], mask=mask, accum=accum, desc=d
        )

    I_res = _resolve_index(I, nr)
    J_res = _resolve_index(J, nc)
    if C.shape != (I_res.size, J_res.size):
        raise DimensionMismatch(
            f"extract output is {C.shape}, expected {(I_res.size, J_res.size)}"
        )
    rows, cols, vals = _matrix_coo(A, d.transpose_a)
    r_sel, r_out = _expand_selection(I_res, rows)
    cols2, vals2 = cols[r_sel], vals[r_sel]
    c_sel, c_out = _expand_selection(J_res, cols2)
    tr = r_out[c_sel]
    tc = c_out
    tv = vals2[c_sel]
    return write_matrix(C, tr, tc, tv, mask=mask, accum=accum, desc=d)


def _region_z(C: Matrix, mapped, region_rows, region_cols, accum):
    """Assemble Z for assign: region-replacement or accum-union with C."""
    mr, mc, mv = mapped
    cr, cc, cv = C.extract_tuples()
    if accum is None:
        in_region = np.isin(cr, region_rows) & np.isin(cc, region_cols)
        keep = ~in_region
        zr = np.concatenate([cr[keep], mr])
        zc = np.concatenate([cc[keep], mc])
        zv = np.concatenate([cv[keep], C.dtype.cast_array(mv)])
        return zr, zc, zv
    ia, ib, oc, om = match_coo(cr, cc, mr, mc)
    both = accum.apply(cv[ia], mv[ib], C.dtype)
    zr = np.concatenate([cr[ia], cr[oc], mr[om]])
    zc = np.concatenate([cc[ia], cc[oc], mc[om]])
    zv = np.concatenate([both, cv[oc], C.dtype.cast_array(mv[om])])
    return zr, zc, zv


@telemetry.instrumented("assign")
def assign(C, A, I=ALL, J=ALL, *, mask=None, accum=None, desc=None):
    """``GrB_assign``: C<mask>(I, J) (+)= A.

    ``A`` may be a Matrix, a Vector (row/column assign through vector C), or
    a scalar (constant fill of the region).  The mask spans all of C, per
    GrB_assign (not GxB_subassign) semantics.
    """
    if faults.ENABLED:
        faults.trip("assign")
    d = _desc(desc)
    accum = _resolve_accum(accum)

    # Fast path for the ubiquitous "masked fill" (e.g. BFS level stamping):
    # C<mask>(ALL[, ALL]) = scalar with no accum/complement/replace writes the
    # scalar exactly at the mask's admitted coordinates and keeps C elsewhere.
    if (
        not isinstance(A, (Matrix, Vector))
        and (I is None or isinstance(I, _All))
        and (J is None or isinstance(J, _All))
        and mask is not None
        and accum is None
        and not d.complement_mask
        and not d.replace
    ):
        if isinstance(C, Vector):
            mi = mask_true_idx(mask, d)
            ci, cv = C.extract_tuples()
            keep = ~idx_in(ci, mi)
            zi = np.concatenate([ci[keep], mi])
            zv = np.concatenate(
                [cv[keep], C.dtype.cast_array(np.broadcast_to(np.asarray(A), mi.shape))]
            )
            order = np.argsort(zi, kind="stable")
            return write_vector(C, zi[order], zv[order], mask=None, accum=None, desc=d)
        mr, mc = mask_true_coords(mask, d)
        cr, cc, cv = C.extract_tuples()
        keep = ~coords_in(cr, cc, mr, mc)
        zr = np.concatenate([cr[keep], mr])
        zc = np.concatenate([cc[keep], mc])
        zv = np.concatenate(
            [cv[keep], C.dtype.cast_array(np.broadcast_to(np.asarray(A), mr.shape))]
        )
        return write_matrix(C, zr, zc, zv, mask=None, accum=None, desc=d)

    if isinstance(C, Vector):
        I_res = _resolve_index(I, C.size)
        if isinstance(A, Vector):
            if A.size != I_res.size:
                raise DimensionMismatch("assign input length != index count")
            ai, av = A.extract_tuples()
            mi, mv = I_res[ai], av
        else:  # scalar fill
            mi, mv = I_res, np.broadcast_to(np.asarray(A), I_res.shape)
        if np.unique(mi).size != mi.size:
            raise InvalidValue("duplicate indices in assign")
        ci, cv = C.extract_tuples()
        if accum is None:
            keep = ~np.isin(ci, I_res)
            zi = np.concatenate([ci[keep], mi])
            zv = np.concatenate([cv[keep], C.dtype.cast_array(mv)])
        else:
            order = np.argsort(mi, kind="stable")
            mi, mv = mi[order], np.asarray(mv)[order]
            ia, ib, oc, om = match_idx(ci, mi)
            both = accum.apply(cv[ia], mv[ib], C.dtype)
            zi = np.concatenate([ci[ia], ci[oc], mi[om]])
            zv = np.concatenate([both, cv[oc], C.dtype.cast_array(mv[om])])
        order = np.argsort(zi, kind="stable")
        return write_vector(C, zi[order], zv[order], mask=mask, accum=None, desc=d)

    I_res = _resolve_index(I, C.nrows)
    J_res = _resolve_index(J, C.ncols)
    if np.unique(I_res).size != I_res.size or np.unique(J_res).size != J_res.size:
        raise InvalidValue("duplicate indices in assign")

    if isinstance(A, Matrix):
        if _mat_shape(A, d.transpose_a) != (I_res.size, J_res.size):
            raise DimensionMismatch("assign input shape != region shape")
        ar, ac, av = _matrix_coo(A, d.transpose_a)
        mapped = (I_res[ar], J_res[ac], av)
    elif isinstance(A, Vector):
        # row/column assign: C(i, J) = u or C(I, j) = u
        if I_res.size == 1 and A.size == J_res.size:
            ai, av = A.extract_tuples()
            mapped = (np.full(ai.size, I_res[0], dtype=_INDEX), J_res[ai], av)
        elif J_res.size == 1 and A.size == I_res.size:
            ai, av = A.extract_tuples()
            mapped = (I_res[ai], np.full(ai.size, J_res[0], dtype=_INDEX), av)
        else:
            raise DimensionMismatch("vector assign needs a single row or column")
    else:  # scalar fill of the whole region
        grid_r = np.repeat(I_res, J_res.size)
        grid_c = np.tile(J_res, I_res.size)
        mapped = (grid_r, grid_c, np.broadcast_to(np.asarray(A), grid_r.shape))

    zr, zc, zv = _region_z(C, mapped, I_res, J_res, accum)
    return write_matrix(C, zr, zc, zv, mask=mask, accum=None, desc=d)


@telemetry.instrumented("subassign")
def subassign(C, A, I=ALL, J=ALL, *, mask=None, accum=None, desc=None):
    """``GxB_subassign``: C(I, J)<mask> (+)= A.

    Unlike :func:`assign`, the mask (and REPLACE) apply only *inside* the
    I x J region — the mask has the region's dimensions.  Entries of C
    outside the region are never touched.
    """
    if faults.ENABLED:
        faults.trip("assign")
    d = _desc(desc)
    accum = _resolve_accum(accum)

    if isinstance(C, Vector):
        I_res = _resolve_index(I, C.size)
        if np.unique(I_res).size != I_res.size:
            raise InvalidValue("duplicate indices in subassign")
        if mask is not None and mask.size != I_res.size:
            raise DimensionMismatch("subassign mask must have region size")
        # region view of C, in region coordinates
        order = np.argsort(I_res, kind="stable")
        ci, cv = C.extract_tuples()
        pos = np.searchsorted(I_res[order], ci)
        pos_c = np.minimum(pos, I_res.size - 1)
        inside = (I_res[order][pos_c] == ci) if I_res.size else np.zeros(ci.size, bool)
        region = Vector(C.dtype, max(int(I_res.size), 1))
        reg_idx = order[pos_c[inside]]
        rorder = np.argsort(reg_idx, kind="stable")
        region.build(reg_idx[rorder], cv[inside][rorder], dup=None)
        # the operand in region coordinates
        if isinstance(A, Vector):
            if A.size != I_res.size:
                raise DimensionMismatch("subassign input length != index count")
            ti, tv = A.extract_tuples()
        else:
            ti = np.arange(I_res.size, dtype=_INDEX)
            tv = np.broadcast_to(np.asarray(A), ti.shape)
        write_vector(region, ti, tv, mask=mask, accum=accum, desc=d)
        # splice the region back
        ri, rv = region.extract_tuples()
        zi = np.concatenate([ci[~inside], I_res[ri]])
        zv = np.concatenate([cv[~inside], rv])
        zorder = np.argsort(zi, kind="stable")
        return write_vector(C, zi[zorder], zv[zorder], mask=None, accum=None,
                            desc=Descriptor())

    I_res = _resolve_index(I, C.nrows)
    J_res = _resolve_index(J, C.ncols)
    if np.unique(I_res).size != I_res.size or np.unique(J_res).size != J_res.size:
        raise InvalidValue("duplicate indices in subassign")
    if mask is not None and mask.shape != (I_res.size, J_res.size):
        raise DimensionMismatch("subassign mask must have region shape")

    cr, cc, cv = C.extract_tuples()
    rmap = _position_map(I_res, cr)
    cmap = _position_map(J_res, cc)
    inside = (rmap >= 0) & (cmap >= 0)
    region = Matrix(C.dtype, max(int(I_res.size), 1), max(int(J_res.size), 1))
    region.build(rmap[inside], cmap[inside], cv[inside], dup=None)

    if isinstance(A, Matrix):
        if _mat_shape(A, d.transpose_a) != (I_res.size, J_res.size):
            raise DimensionMismatch("subassign input shape != region shape")
        tr, tc, tv = _matrix_coo(A, d.transpose_a)
    elif isinstance(A, Vector):
        if I_res.size == 1 and A.size == J_res.size:
            ai, av = A.extract_tuples()
            tr, tc, tv = np.zeros(ai.size, dtype=_INDEX), ai, av
        elif J_res.size == 1 and A.size == I_res.size:
            ai, av = A.extract_tuples()
            tr, tc, tv = ai, np.zeros(ai.size, dtype=_INDEX), av
        else:
            raise DimensionMismatch("vector subassign needs one row or column")
    else:
        tr = np.repeat(np.arange(I_res.size, dtype=_INDEX), J_res.size)
        tc = np.tile(np.arange(J_res.size, dtype=_INDEX), I_res.size)
        tv = np.broadcast_to(np.asarray(A), tr.shape)
    write_matrix(region, tr, tc, tv, mask=mask, accum=accum, desc=d)

    rr, rc, rv = region.extract_tuples()
    zr = np.concatenate([cr[~inside], I_res[rr]])
    zc = np.concatenate([cc[~inside], J_res[rc]])
    zv = np.concatenate([cv[~inside], rv])
    return write_matrix(C, zr, zc, zv, mask=None, accum=None, desc=Descriptor())


def _position_map(sel: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Map original indices to their position in unique ``sel`` (-1 if absent)."""
    if sel.size == 0 or ids.size == 0:
        return np.full(ids.size, -1, dtype=_INDEX)
    order = np.argsort(sel, kind="stable")
    sorted_sel = sel[order]
    pos = np.searchsorted(sorted_sel, ids)
    pos_c = np.minimum(pos, sel.size - 1)
    hit = sorted_sel[pos_c] == ids
    out = np.full(ids.size, -1, dtype=_INDEX)
    out[hit] = order[pos_c[hit]]
    return out


@telemetry.instrumented("kronecker")
def kronecker(C, A, B, op="TIMES", *, mask=None, accum=None, desc=None):
    """``GrB_kronecker``: C<mask> (+)= kron(A, B)."""
    if faults.ENABLED:
        faults.trip("kronecker")
    d = _desc(desc)
    accum = _resolve_accum(accum)
    bop = _ewise_op(op)
    nra, nca = _mat_shape(A, d.transpose_a)
    nrb, ncb = _mat_shape(B, d.transpose_b)
    if C.shape != (nra * nrb, nca * ncb):
        raise DimensionMismatch("kronecker output shape mismatch")
    ar, ac, av = _matrix_coo(A, d.transpose_a)
    br, bc, bv = _matrix_coo(B, d.transpose_b)
    out_type = bop.out_type(A.dtype, B.dtype)
    tr = (np.repeat(ar, br.size) * nrb + np.tile(br, ar.size)).astype(_INDEX)
    tc = (np.repeat(ac, bc.size) * ncb + np.tile(bc, ac.size)).astype(_INDEX)
    tv = bop.apply(np.repeat(av, bv.size), np.tile(bv, av.size), out_type)
    return write_matrix(C, tr, tc, tv, mask=mask, accum=accum, desc=d)


def concat(tiles, dtype=None) -> Matrix:
    """``GxB_Matrix_concat``: assemble a block matrix from a 2-D tile grid.

    ``tiles`` is a list of rows of Matrices; tiles in a grid row must share
    nrows, tiles in a grid column must share ncols.
    """
    if not tiles or not tiles[0]:
        raise InvalidValue("concat needs a non-empty tile grid")
    ncols_per = [t.ncols for t in tiles[0]]
    for row in tiles:
        if len(row) != len(ncols_per):
            raise DimensionMismatch("ragged tile grid")
        if any(t.ncols != w for t, w in zip(row, ncols_per)):
            raise DimensionMismatch("tile column widths differ")
        if len({t.nrows for t in row}) != 1:
            raise DimensionMismatch("tile row heights differ")
    row_off = np.concatenate([[0], np.cumsum([row[0].nrows for row in tiles])])
    col_off = np.concatenate([[0], np.cumsum(ncols_per)])
    out_dtype = lookup_type(dtype) if dtype is not None else tiles[0][0].dtype
    rows_all, cols_all, vals_all = [], [], []
    for bi, row in enumerate(tiles):
        for bj, t in enumerate(row):
            r, c, v = t.extract_tuples()
            rows_all.append(r + row_off[bi])
            cols_all.append(c + col_off[bj])
            vals_all.append(out_dtype.cast_array(v))
    C = Matrix(out_dtype, int(row_off[-1]), int(col_off[-1]))
    C.build(
        np.concatenate(rows_all),
        np.concatenate(cols_all),
        np.concatenate(vals_all),
        dup=None,
    )
    return C


def split(A: Matrix, row_sizes, col_sizes) -> list[list[Matrix]]:
    """``GxB_Matrix_split``: the inverse of :func:`concat`.

    ``row_sizes``/``col_sizes`` must sum to A's dimensions; returns the
    grid of tiles.
    """
    row_sizes = [int(s) for s in row_sizes]
    col_sizes = [int(s) for s in col_sizes]
    if sum(row_sizes) != A.nrows or sum(col_sizes) != A.ncols:
        raise DimensionMismatch("tile sizes must sum to the matrix dimensions")
    if any(s <= 0 for s in row_sizes + col_sizes):
        raise InvalidValue("tile sizes must be positive")
    row_off = np.concatenate([[0], np.cumsum(row_sizes)])
    col_off = np.concatenate([[0], np.cumsum(col_sizes)])
    out = []
    for bi in range(len(row_sizes)):
        row = []
        for bj in range(len(col_sizes)):
            t = Matrix(A.dtype, row_sizes[bi], col_sizes[bj])
            extract(
                t,
                A,
                np.arange(row_off[bi], row_off[bi + 1]),
                np.arange(col_off[bj], col_off[bj + 1]),
            )
            row.append(t)
        out.append(row)
    return out


def diag(v: Vector, k: int = 0, dtype=None) -> Matrix:
    """Build a square matrix with vector ``v`` on diagonal ``k`` (GxB_diag)."""
    i, vals = v.extract_tuples()
    n = v.size + abs(int(k))
    rows = i if k >= 0 else i - k
    cols = i + k if k >= 0 else i
    return Matrix.from_coo(
        rows, cols, vals, nrows=n, ncols=n, dtype=dtype or v.dtype
    )


def diag_extract(A: Matrix, k: int = 0, dtype=None) -> Vector:
    """Extract diagonal ``k`` of a matrix as a vector (GxB_Vector_diag)."""
    k = int(k)
    if k >= A.ncols or -k >= A.nrows:
        raise InvalidValue(f"diagonal {k} outside a {A.shape} matrix")
    r, c, v = A.extract_tuples()
    on_diag = (c - r) == k
    idx = r[on_diag] if k >= 0 else c[on_diag]
    size = min(A.nrows, A.ncols - k) if k >= 0 else min(A.ncols, A.nrows + k)
    return Vector.from_coo(
        idx, v[on_diag], size=size, dtype=dtype or A.dtype, dup=None
    )


def nvals_like(x) -> int:
    """Uniform nvals accessor used by generic harness code."""
    return x.nvals
