"""The GraphBLAS operations of Table I — the dispatch shim.

Every operation follows the spec's canonical pipeline, now split into two
explicit halves:

1. :mod:`repro.graphblas.plan` resolves the engine-independent parts —
   descriptor, operator/semiring/accumulator names, shapes, index sets —
   into a typed :class:`~repro.graphblas.plan.OpPlan`;
2. :mod:`repro.graphblas.backends` routes the plan to the active
   :class:`~repro.graphblas.backends.KernelBackend` (``optimized`` by
   default; ``reference``, ``scipy``, or ``differential`` by selection).

This module is the thin shim tying the halves together.  It owns the
cross-cutting concerns that must fire exactly once per call, whichever
engine runs: fault-injection trip points and telemetry op timers.

Matrix and vector variants share entry points and dispatch on object type,
mirroring the polymorphic C interface the IBM implementation builds with
``_Generic`` (section II.B).

Signatures are "output first": ``mxm(C, A, B, semiring, mask=…, accum=…,
desc=…)`` updates and returns ``C``.  Each operation also accepts
``backend=`` to override the engine for that single call.  The strict
C-API shape lives in :mod:`repro.graphblas.capi`.
"""

from __future__ import annotations

import numpy as np

from . import faults, governor, plan as _plan, telemetry
from .backends import dispatch as _dispatch
from .errors import DimensionMismatch, InvalidValue
from .matrix import Matrix
from .mxv import DirectionOptimizer
from .plan import (
    ALL,
    _All,
    resolve_accum as _resolve_accum,
    resolve_ewise_op as _ewise_op,
    resolve_index as _resolve_index,
)
from .types import lookup_type
from .vector import Vector

__all__ = [
    "ALL",
    "mxm",
    "mxv",
    "vxm",
    "ewise_add",
    "ewise_mult",
    "apply",
    "select",
    "reduce_rowwise",
    "reduce_scalar",
    "transpose",
    "extract",
    "assign",
    "subassign",
    "kronecker",
    "concat",
    "split",
    "diag",
    "diag_extract",
    "nvals_like",
]


# --------------------------------------------------------------------------
# Table-I operations: plan, then dispatch
# --------------------------------------------------------------------------

@telemetry.instrumented("mxm")
def mxm(C, A, B, semiring="PLUS_TIMES", *, mask=None, accum=None, desc=None,
        method="auto", backend=None):
    """``GrB_mxm``: C<mask> (+)= A (+).(x) B."""
    p = _plan.plan_mxm(C, A, B, semiring, mask=mask, accum=accum, desc=desc,
                       method=method)
    return _dispatch(p, backend)


@telemetry.instrumented("mxv")
def mxv(w, A, u, semiring="PLUS_TIMES", *, mask=None, accum=None, desc=None,
        method="auto", optimizer: DirectionOptimizer | None = None,
        backend=None):
    """``GrB_mxv``: w<mask> (+)= A (+).(x) u, with push/pull selection."""
    p = _plan.plan_mxv(w, A, u, semiring, mask=mask, accum=accum, desc=desc,
                       method=method, optimizer=optimizer)
    return _dispatch(p, backend)


@telemetry.instrumented("vxm")
def vxm(w, u, A, semiring="PLUS_TIMES", *, mask=None, accum=None, desc=None,
        method="auto", optimizer: DirectionOptimizer | None = None,
        backend=None):
    """``GrB_vxm``: w^T<mask> (+)= u^T (+).(x) A."""
    p = _plan.plan_vxm(w, u, A, semiring, mask=mask, accum=accum, desc=desc,
                       method=method, optimizer=optimizer)
    return _dispatch(p, backend)


@telemetry.instrumented("eWiseAdd")
def ewise_add(C, A, B, op="PLUS", *, mask=None, accum=None, desc=None,
              backend=None):
    """``GrB_eWiseAdd``: set *union* of patterns; op applied where both."""
    if faults.ENABLED:
        faults.trip("ewise")
    p = _plan.plan_ewise_add(C, A, B, op, mask=mask, accum=accum, desc=desc)
    return _dispatch(p, backend)


@telemetry.instrumented("eWiseMult")
def ewise_mult(C, A, B, op="TIMES", *, mask=None, accum=None, desc=None,
               backend=None):
    """``GrB_eWiseMult``: set *intersection* of patterns."""
    if faults.ENABLED:
        faults.trip("ewise")
    p = _plan.plan_ewise_mult(C, A, B, op, mask=mask, accum=accum, desc=desc)
    return _dispatch(p, backend)


@telemetry.instrumented("apply")
def apply(C, A, op="IDENTITY", *, left=None, right=None, thunk=None,
          mask=None, accum=None, desc=None, backend=None):
    """``GrB_apply``: C<mask> (+)= f(A).

    ``op`` may be a UnaryOp; a BinaryOp with ``left`` or ``right`` bound
    (``GrB_apply_BinaryOp1st/2nd``); or an IndexUnaryOp with ``thunk``.
    """
    if faults.ENABLED:
        faults.trip("apply")
    p = _plan.plan_apply(C, A, op, left=left, right=right, thunk=thunk,
                         mask=mask, accum=accum, desc=desc)
    return _dispatch(p, backend)


@telemetry.instrumented("select")
def select(C, A, op, thunk=0, *, mask=None, accum=None, desc=None,
           backend=None):
    """``GrB_select``: keep entries where the index-unary predicate holds."""
    if faults.ENABLED:
        faults.trip("select")
    p = _plan.plan_select(C, A, op, thunk, mask=mask, accum=accum, desc=desc)
    return _dispatch(p, backend)


@telemetry.instrumented("reduce")
def reduce_rowwise(w, A, op="PLUS", *, mask=None, accum=None, desc=None,
                   backend=None):
    """``GrB_reduce`` (matrix to vector): w(i) = (+)_j A(i, j).

    Reduce columns instead by setting the transpose descriptor.
    """
    if faults.ENABLED:
        faults.trip("reduce")
    p = _plan.plan_reduce_rowwise(w, A, op, mask=mask, accum=accum, desc=desc)
    return _dispatch(p, backend)


@telemetry.instrumented("reduce")
def reduce_scalar(A, op="PLUS", *, accum=None, init=None, backend=None):
    """``GrB_reduce`` (to scalar): fold every stored value with a monoid.

    Returns a Python value; an empty object reduces to the monoid identity.
    ``accum``/``init`` fold the result into a prior value.
    """
    if faults.ENABLED:
        faults.trip("reduce")
    p = _plan.plan_reduce_scalar(A, op, accum=accum, init=init)
    return _dispatch(p, backend)


@telemetry.instrumented("transpose")
def transpose(C, A, *, mask=None, accum=None, desc=None, backend=None):
    """``GrB_transpose``: C<mask> (+)= A^T.

    Per the C API's quirk, setting the INP0 transpose descriptor yields
    C<mask> (+)= A (the two transposes cancel).
    """
    if faults.ENABLED:
        faults.trip("transpose")
    p = _plan.plan_transpose(C, A, mask=mask, accum=accum, desc=desc)
    return _dispatch(p, backend)


@telemetry.instrumented("extract")
def extract(C, A, I=ALL, J=ALL, *, mask=None, accum=None, desc=None,
            backend=None):
    """``GrB_extract``: C<mask> (+)= A(I, J) (matrix), w (+)= u(I) (vector),
    or w (+)= A(I, j) (column extract when J is a scalar and A a matrix)."""
    if faults.ENABLED:
        faults.trip("extract")
    p = _plan.plan_extract(C, A, I, J, mask=mask, accum=accum, desc=desc)
    return _dispatch(p, backend)


@telemetry.instrumented("assign")
def assign(C, A, I=ALL, J=ALL, *, mask=None, accum=None, desc=None,
           backend=None):
    """``GrB_assign``: C<mask>(I, J) (+)= A.

    ``A`` may be a Matrix, a Vector (row/column assign through vector C), or
    a scalar (constant fill of the region).  The mask spans all of C, per
    GrB_assign (not GxB_subassign) semantics.
    """
    if faults.ENABLED:
        faults.trip("assign")
    p = _plan.plan_assign(C, A, I, J, mask=mask, accum=accum, desc=desc)
    return _dispatch(p, backend)


@telemetry.instrumented("subassign")
def subassign(C, A, I=ALL, J=ALL, *, mask=None, accum=None, desc=None,
              backend=None):
    """``GxB_subassign``: C(I, J)<mask> (+)= A.

    Unlike :func:`assign`, the mask (and REPLACE) apply only *inside* the
    I x J region — the mask has the region's dimensions.  Entries of C
    outside the region are never touched.
    """
    if faults.ENABLED:
        faults.trip("assign")
    p = _plan.plan_subassign(C, A, I, J, mask=mask, accum=accum, desc=desc)
    return _dispatch(p, backend)


@telemetry.instrumented("kronecker")
def kronecker(C, A, B, op="TIMES", *, mask=None, accum=None, desc=None,
              backend=None):
    """``GrB_kronecker``: C<mask> (+)= kron(A, B)."""
    if faults.ENABLED:
        faults.trip("kronecker")
    p = _plan.plan_kronecker(C, A, B, op, mask=mask, accum=accum, desc=desc)
    return _dispatch(p, backend)


# --------------------------------------------------------------------------
# structural utilities (not part of the Table-I kernel surface)
# --------------------------------------------------------------------------

def concat(tiles, dtype=None) -> Matrix:
    """``GxB_Matrix_concat``: assemble a block matrix from a 2-D tile grid.

    ``tiles`` is a list of rows of Matrices; tiles in a grid row must share
    nrows, tiles in a grid column must share ncols.
    """
    if not tiles or not tiles[0]:
        raise InvalidValue("concat needs a non-empty tile grid")
    ncols_per = [t.ncols for t in tiles[0]]
    for row in tiles:
        if len(row) != len(ncols_per):
            raise DimensionMismatch("ragged tile grid")
        if any(t.ncols != w for t, w in zip(row, ncols_per)):
            raise DimensionMismatch("tile column widths differ")
        if len({t.nrows for t in row}) != 1:
            raise DimensionMismatch("tile row heights differ")
    row_off = np.concatenate([[0], np.cumsum([row[0].nrows for row in tiles])])
    col_off = np.concatenate([[0], np.cumsum(ncols_per)])
    out_dtype = lookup_type(dtype) if dtype is not None else tiles[0][0].dtype
    rows_all, cols_all, vals_all = [], [], []
    for bi, row in enumerate(tiles):
        if governor.ACTIVE:
            governor.poll()
        for bj, t in enumerate(row):
            r, c, v = t.extract_tuples()
            rows_all.append(r + row_off[bi])
            cols_all.append(c + col_off[bj])
            vals_all.append(out_dtype.cast_array(v))
    C = Matrix(out_dtype, int(row_off[-1]), int(col_off[-1]))
    C.build(
        np.concatenate(rows_all),
        np.concatenate(cols_all),
        np.concatenate(vals_all),
        dup=None,
    )
    return C


def split(A: Matrix, row_sizes, col_sizes) -> list[list[Matrix]]:
    """``GxB_Matrix_split``: the inverse of :func:`concat`.

    ``row_sizes``/``col_sizes`` must sum to A's dimensions; returns the
    grid of tiles.
    """
    row_sizes = [int(s) for s in row_sizes]
    col_sizes = [int(s) for s in col_sizes]
    if sum(row_sizes) != A.nrows or sum(col_sizes) != A.ncols:
        raise DimensionMismatch("tile sizes must sum to the matrix dimensions")
    if any(s <= 0 for s in row_sizes + col_sizes):
        raise InvalidValue("tile sizes must be positive")
    row_off = np.concatenate([[0], np.cumsum(row_sizes)])
    col_off = np.concatenate([[0], np.cumsum(col_sizes)])
    out = []
    for bi in range(len(row_sizes)):
        if governor.ACTIVE:
            governor.poll()
        row = []
        for bj in range(len(col_sizes)):
            t = Matrix(A.dtype, row_sizes[bi], col_sizes[bj])
            extract(
                t,
                A,
                np.arange(row_off[bi], row_off[bi + 1]),
                np.arange(col_off[bj], col_off[bj + 1]),
            )
            row.append(t)
        out.append(row)
    return out


def diag(v: Vector, k: int = 0, dtype=None) -> Matrix:
    """Build a square matrix with vector ``v`` on diagonal ``k`` (GxB_diag)."""
    i, vals = v.extract_tuples()
    n = v.size + abs(int(k))
    rows = i if k >= 0 else i - k
    cols = i + k if k >= 0 else i
    return Matrix.from_coo(
        rows, cols, vals, nrows=n, ncols=n, dtype=dtype or v.dtype
    )


def diag_extract(A: Matrix, k: int = 0, dtype=None) -> Vector:
    """Extract diagonal ``k`` of a matrix as a vector (GxB_Vector_diag)."""
    k = int(k)
    if k >= A.ncols or -k >= A.nrows:
        raise InvalidValue(f"diagonal {k} outside a {A.shape} matrix")
    r, c, v = A.extract_tuples()
    on_diag = (c - r) == k
    idx = r[on_diag] if k >= 0 else c[on_diag]
    size = min(A.nrows, A.ncols - k) if k >= 0 else min(A.ncols, A.nrows + k)
    return Vector.from_coo(
        idx, v[on_diag], size=size, dtype=dtype or A.dtype, dup=None
    )


def nvals_like(x) -> int:
    """Uniform nvals accessor used by generic harness code."""
    return x.nvals
