"""Sparse matrix-matrix multiply over a semiring: three methods.

The paper (section II.A) describes SuiteSparse's code-generated kernels:
**Gustavson's method** (row-wise saxpy), a **dot-product method** (with
no-mask / mask / complemented-mask variants), and a **heap-based method**
(k-way merge), expanding over all built-in semirings.  It also describes the
*early-exit* prototype: with a terminal monoid (OR's ``true``, AND's
``false``, MIN/MAX extrema) a dot product stops as soon as the terminal
value appears — the enabler for direction-optimized BFS.

All three methods are implemented here over row/col-oriented
:class:`~repro.graphblas.formats.SparseStore` views and are checked against
each other (and the dense reference) by the test suite.  Method choice:

* ``gustavson`` — vectorized expansion of all partial products, chunked to
  bound intermediate memory; the general-purpose workhorse.
* ``dot`` — computes only requested output positions; the clear winner when
  a sparse mask limits the output (e.g. masked triangle counting), and the
  home of the early-exit optimization.
* ``heap`` — literal k-way ordered merge per output row; fidelity
  implementation of the third SuiteSparse method.
* ``auto`` — dot when a (non-complemented) mask is present and selective,
  else Gustavson.

Positional multiply operators (FIRSTI/SECONDJ/...) are served by the
Gustavson path, substituting coordinates for values.
"""

from __future__ import annotations

import heapq
import time

import numpy as np

from . import engine, faults, governor, telemetry
from .errors import InvalidValue
from .formats import SparseStore
from .ops import BinaryOp
from .semiring import Semiring
from .types import Type

__all__ = ["mxm_coo", "resolve_method", "dot_candidates", "MXM_METHODS"]

_INDEX = np.int64

# Cap on the number of expanded partial products held at once (per chunk).
# Chosen by the ablation in benchmarks/bench_ablation_design.py: small
# chunks keep the expansion buffers cache-resident (up to ~1.5x faster on
# skewed graphs) while costing nothing on uniform ones.
GUSTAVSON_CHUNK_FLOPS = 1 << 16

MXM_METHODS = ("auto", "gustavson", "dot", "heap", "tiled")


def _gather_ranges(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[k], ends[k])`` for all k, vectorized."""
    lens = ends - starts
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=_INDEX)
    offsets = np.repeat(np.cumsum(lens) - lens, lens)
    return np.arange(total, dtype=_INDEX) - offsets + np.repeat(starts, lens)


def _positional_values(
    mult: BinaryOp,
    i: np.ndarray,
    k: np.ndarray,
    j: np.ndarray,
) -> np.ndarray:
    """Coordinate-valued multiply: z = f(i, k, j) per partial product."""
    kind = mult.positional
    if kind == "firsti":
        return i.astype(np.int64)
    if kind == "firsti1":
        return i.astype(np.int64) + 1
    if kind in ("firstj", "secondi"):
        return k.astype(np.int64)
    if kind == "secondj":
        return j.astype(np.int64)
    if kind == "secondj1":
        return j.astype(np.int64) + 1
    raise InvalidValue(f"unknown positional kind {kind!r}")


def resolve_method(
    method: str,
    semiring: Semiring,
    mask_coords,
    mask_complement: bool,
    a_rows: SparseStore,
    b_rows: SparseStore,
) -> str:
    """Resolve a requested SpGEMM method to the concrete kernel to run.

    The one method policy shared by every backend (the vectorized engine
    and the compiled tier both route through here, so their
    ``spgemm.method`` telemetry and governor poll points are identical):
    ``tiled`` degrades to the bit-identical in-memory Gustavson, ``auto``
    picks dot exactly when a usable (non-complemented) mask hint exists,
    positional products force Gustavson's coordinate expansion.
    """
    requested = method
    if method == "tiled":
        # the dispatcher serves "tiled" via repro.graphblas.tiled; when a
        # plan reaches the in-memory kernel anyway (direct call, degraded
        # backend) Gustavson is the bit-identical equivalent
        method = "gustavson"
    if method == "auto":
        if mask_coords is not None and not mask_complement:
            method = "dot"
        else:
            method = "gustavson"
    if semiring.mult.positional and method != "gustavson":
        method = "gustavson"  # positional products need coordinate expansion
    if telemetry.ENABLED:
        telemetry.decision(
            "spgemm.method",
            method=method,
            requested=requested,
            masked=mask_coords is not None,
            a_nvals=a_rows.nvals,
            b_nvals=b_rows.nvals,
        )
    if governor.ACTIVE:
        # SpGEMM method boundary: last cooperative cancellation point
        # before the expansion kernels allocate their working set.
        governor.poll()
    return method


def mxm_coo(
    a_rows: SparseStore,
    b_rows: SparseStore,
    semiring: Semiring,
    out_type: Type,
    method: str = "auto",
    mask_coords: tuple[np.ndarray, np.ndarray] | None = None,
    mask_complement: bool = False,
    nthreads: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """C = A (+).(x) B on row-oriented stores; returns sorted COO arrays.

    ``mask_coords`` — when given, only those output coordinates need be
    computed (the structural part of the output mask); the caller still
    applies the full mask/accum write step afterwards, so producing extra
    entries would be legal but wasteful.  With ``mask_complement`` the hint
    is the set of coordinates *not* wanted; the dot method cannot use a
    complemented hint directly, but Gustavson can drop them post hoc.

    ``nthreads`` — the descriptor's ``GxB_NTHREADS`` request; caps the
    engine's row-blocked parallelism for this call.
    """
    if a_rows.n_minor != b_rows.n_major:
        raise InvalidValue(
            f"inner dimensions differ: {a_rows.n_minor} vs {b_rows.n_major}"
        )
    if method not in MXM_METHODS:
        raise InvalidValue(f"unknown mxm method {method!r}")
    if faults.ENABLED:
        faults.trip("spgemm.flop")
    method = resolve_method(
        method, semiring, mask_coords, mask_complement, a_rows, b_rows
    )

    if method == "gustavson":
        r, c, v = _mxm_gustavson(a_rows, b_rows, semiring, out_type, nthreads)
        if mask_coords is not None:
            from .coords import coords_in

            sel = coords_in(r, c, *mask_coords)
            if mask_complement:
                sel = ~sel
            r, c, v = r[sel], c[sel], v[sel]
        return r, c, v
    if method == "dot":
        return _mxm_dot(a_rows, b_rows, semiring, out_type, mask_coords, mask_complement)
    return _mxm_heap(a_rows, b_rows, semiring, out_type, mask_coords, mask_complement)


# --------------------------------------------------------------------------
# Gustavson: saxpy expansion
# --------------------------------------------------------------------------

def _mxm_gustavson(
    a_rows: SparseStore,
    b_rows: SparseStore,
    semiring: Semiring,
    out_type: Type,
    nthreads: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    ar, ac, av = a_rows.to_coo()
    if ar.size == 0 or b_rows.nvals == 0:
        return (
            np.empty(0, dtype=_INDEX),
            np.empty(0, dtype=_INDEX),
            np.empty(0, dtype=out_type.np_dtype),
        )
    starts, ends = b_rows.major_ranges(ac)
    lens = ends - starts
    flops = np.cumsum(lens)
    total = int(flops[-1])
    if telemetry.ENABLED:
        telemetry.tally("mxm", flops=total)
    if total == 0:
        return (
            np.empty(0, dtype=_INDEX),
            np.empty(0, dtype=_INDEX),
            np.empty(0, dtype=out_type.np_dtype),
        )

    kern = engine.kernel_for(semiring, out_type, method="gustavson")
    # Fused (i * n_minor + j) sort key: one stable argsort instead of
    # lexsort's two passes.  Store invariants guarantee i < n_major and
    # j < n_minor, so the key is collision-free whenever it fits in int64.
    key_mult = None
    if engine.ENABLED:
        n_minor = b_rows.n_minor
        if 0 < n_minor and a_rows.n_major <= engine.KEY_LIMIT // n_minor:
            key_mult = np.int64(n_minor)

    # Row blocks for the shared thread pool: only specializable semirings
    # go parallel (their inner loops are pure-numpy and thread-safe), and
    # only when the expansion is big enough to amortize the handoff.  The
    # governor admits the worker count against its memory budget — each
    # in-flight block holds one chunk's expansion buffers.
    workers = 1
    if engine.PARALLEL and kern is not None and total >= engine.MIN_PARALLEL_FLOPS:
        requested = engine.requested_workers(nthreads)
        if requested > 1:
            per_block = GUSTAVSON_CHUNK_FLOPS * (48 + out_type.np_dtype.itemsize)
            workers = governor.admit_workers(requested, per_block, op="mxm")

    blocks = _row_blocks(ar, flops, workers) if workers > 1 else [(0, ar.size)]
    block_args = (ar, ac, av, b_rows.minor, b_rows.values, starts, ends, lens,
                  flops, semiring, out_type, kern, key_mult)
    if len(blocks) > 1:
        def timed(lo, hi):
            t0 = time.perf_counter()
            res = _gustavson_block(lo, hi, *block_args)
            return res, t0, time.perf_counter()

        results = engine.run_blocks(timed, blocks, len(blocks))
        if telemetry.ENABLED:
            for idx, ((_, t0, t1), (lo, hi)) in enumerate(zip(results, blocks)):
                telemetry.span_at(
                    "engine.block", t0, t1, op="mxm", block=idx, rows=hi - lo
                )
        pieces = [res for res, _, _ in results]
    else:
        pieces = [_gustavson_block(0, ar.size, *block_args)]

    out_r = [arr for piece in pieces for arr in piece[0]]
    out_c = [arr for piece in pieces for arr in piece[1]]
    out_v = [arr for piece in pieces for arr in piece[2]]
    return (
        np.concatenate(out_r),
        np.concatenate(out_c),
        np.concatenate(out_v),
    )


def _gustavson_block(
    lo_end: int,
    hi_end: int,
    ar, ac, av, b_minor, b_values, starts, ends, lens, flops,
    semiring: Semiring,
    out_type: Type,
    kern,
    key_mult,
):
    """Expand A entries ``[lo_end, hi_end)``; both bounds lie on A-row
    boundaries, so per-block outputs concatenate sorted and deduplicated
    (each output row is produced wholly inside one block)."""
    mult = semiring.mult
    positional = mult.positional is not None
    out_r: list[np.ndarray] = []
    out_c: list[np.ndarray] = []
    out_v: list[np.ndarray] = []
    # chunk the entries so each expansion stays below the flop cap, cutting
    # only at row boundaries of A so per-chunk results concatenate sorted
    lo = lo_end
    while lo < hi_end:
        base = flops[lo - 1] if lo else 0
        hi = int(np.searchsorted(flops, base + GUSTAVSON_CHUNK_FLOPS))
        hi = min(max(hi, lo + 1), hi_end)
        if hi < hi_end:  # extend to finish the current A row
            row = ar[hi - 1]
            while hi < hi_end and ar[hi] == row:
                hi += 1
        chunk = slice(lo, hi)
        gather = _gather_ranges(starts[chunk], ends[chunk])
        reps = lens[chunk]
        i = np.repeat(ar[chunk], reps)
        j = b_minor[gather]
        if positional:
            k = np.repeat(ac[chunk], reps)
            vals = _positional_values(mult, i, k, j)
        elif kern is not None:
            vals = kern.combine(np.repeat(av[chunk], reps), b_values[gather])
        else:
            vals = mult.apply(np.repeat(av[chunk], reps), b_values[gather])
        # combine duplicates (same output coordinate) with the add monoid
        if key_mult is not None and i.size:
            key = i * key_mult + j
            order = np.argsort(key, kind="stable")
            i, j, vals = i[order], j[order], vals[order]
            key = key[order]
            change = np.empty(i.size, dtype=bool)
            change[0] = True
            np.not_equal(key[1:], key[:-1], out=change[1:])
            seg = np.flatnonzero(change).astype(_INDEX)
        else:
            order = np.lexsort((j, i))
            i, j, vals = i[order], j[order], vals[order]
            seg = _pair_group_starts(i, j)
        if seg.size != i.size:
            if kern is not None:
                vals = kern.segment_reduce(vals, seg)
            else:
                vals = semiring.add.reduce_segments(vals, seg, out_type)
            i, j = i[seg], j[seg]
        else:
            vals = out_type.cast_array(vals)
        out_r.append(i)
        out_c.append(j)
        out_v.append(vals)
        lo = hi
    return out_r, out_c, out_v


def _row_blocks(ar: np.ndarray, flops: np.ndarray, nblocks: int):
    """Split ``[0, ar.size)`` into up to ``nblocks`` flop-balanced spans,
    cutting only at A-row boundaries (a row split across blocks would emit
    its output entries twice)."""
    total = int(flops[-1])
    cuts = [0]
    for k in range(1, nblocks):
        hi = int(np.searchsorted(flops, (total * k) // nblocks))
        if hi <= cuts[-1]:
            continue
        while hi < ar.size and ar[hi] == ar[hi - 1]:
            hi += 1
        if hi > cuts[-1] and hi < ar.size:
            cuts.append(hi)
    cuts.append(ar.size)
    return [(cuts[m], cuts[m + 1]) for m in range(len(cuts) - 1)]


def _pair_group_starts(i: np.ndarray, j: np.ndarray) -> np.ndarray:
    if i.size == 0:
        return np.empty(0, dtype=_INDEX)
    change = np.empty(i.size, dtype=bool)
    change[0] = True
    np.logical_or(i[1:] != i[:-1], j[1:] != j[:-1], out=change[1:])
    return np.flatnonzero(change).astype(_INDEX)


# --------------------------------------------------------------------------
# Dot-product method (masked / unmasked / complemented-mask variants)
# --------------------------------------------------------------------------

# Scan the intersection in blocks; with a terminal monoid, stop at the first
# block whose running reduction hits the annihilator (the "early exit").
_EARLY_EXIT_BLOCK = 64


def dot_candidates(
    a_rows: SparseStore,
    b_cols: SparseStore,
    mask_coords,
    mask_complement: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Candidate (i, j) output coordinates for the dot method.

    A non-complemented mask *is* the candidate list (the fused-mask
    payoff); otherwise every (nonempty A row) x (nonempty B col) pair is
    a candidate, minus the masked-out set when the mask is complemented.
    Row-major sorted, like the mask coordinate contract.  Shared by the
    vectorized engine and the compiled tier so both enumerate (and
    therefore early-exit over) exactly the same dots.
    """
    if mask_coords is None or mask_complement:
        arows = (
            a_rows.h
            if a_rows.hyper
            else np.flatnonzero(np.diff(a_rows.indptr)).astype(_INDEX)
        )
        bcols = (
            b_cols.h
            if b_cols.hyper
            else np.flatnonzero(np.diff(b_cols.indptr)).astype(_INDEX)
        )
        out_i = np.repeat(arows, bcols.size)
        out_j = np.tile(bcols, arows.size)
        if mask_coords is not None:
            from .coords import coords_in

            drop = coords_in(out_i, out_j, *mask_coords)
            out_i, out_j = out_i[~drop], out_j[~drop]
        return out_i, out_j
    return mask_coords


def _mxm_dot(
    a_rows: SparseStore,
    b_rows: SparseStore,
    semiring: Semiring,
    out_type: Type,
    mask_coords,
    mask_complement: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    b_cols = b_rows.with_orientation(b_rows.orientation.flipped)
    out_i, out_j = dot_candidates(a_rows, b_cols, mask_coords, mask_complement)
    if out_i.size == 0:
        return (
            np.empty(0, dtype=_INDEX),
            np.empty(0, dtype=_INDEX),
            np.empty(0, dtype=out_type.np_dtype),
        )

    a_start, a_end = a_rows.major_ranges(out_i)
    b_start, b_end = b_cols.major_ranges(out_j)
    if telemetry.ENABLED:
        # the dot method's work is bounded by the scanned list lengths
        telemetry.tally(
            "mxm", flops=int((a_end - a_start).sum() + (b_end - b_start).sum())
        )

    add = semiring.add
    mult = semiring.mult
    terminal = add.terminal(out_type)
    a_minor = a_rows.minor
    a_vals = a_rows.values
    b_minor = b_cols.minor
    b_vals = b_cols.values

    # Specialized bindings hoist the operator dispatch out of the per-dot
    # loop; each replicates its generic counterpart bit for bit.
    mask_kind = "none" if mask_coords is None else (
        "comp" if mask_complement else "mask"
    )
    kern = engine.kernel_for(semiring, out_type, mask_kind=mask_kind, method="dot")
    if kern is not None:
        _mult = kern.combine
        _reduce = kern.reduce_all
        _fold = kern.fold2
    else:
        _mult = mult.apply

        def _reduce(v):
            return add.reduce_array(v, out_type)

        def _fold(acc, blk_red):
            return out_type.cast_array(
                add.op.apply(np.asarray(acc), np.asarray(blk_red))
            ).item()

    keep = np.zeros(out_i.size, dtype=bool)
    out_vals = np.empty(out_i.size, dtype=out_type.np_dtype)
    early_exits = 0
    early_eligible = 0

    for p in range(out_i.size):
        asl = slice(a_start[p], a_end[p])
        bsl = slice(b_start[p], b_end[p])
        ai = a_minor[asl]
        bi = b_minor[bsl]
        if ai.size == 0 or bi.size == 0:
            continue
        # sorted intersection: positions of common inner indices
        pos = np.searchsorted(bi, ai)
        pos_c = np.minimum(pos, bi.size - 1)
        hit = bi[pos_c] == ai
        if not hit.any():
            continue
        av = a_vals[asl][hit]
        bv = b_vals[bsl][pos[hit]]
        if terminal is not None and av.size > _EARLY_EXIT_BLOCK:
            early_eligible += 1
            acc = None
            done = False
            for lo in range(0, av.size, _EARLY_EXIT_BLOCK):
                blk = _mult(
                    av[lo : lo + _EARLY_EXIT_BLOCK],
                    bv[lo : lo + _EARLY_EXIT_BLOCK],
                )
                blk_red = _reduce(blk)
                acc = blk_red if acc is None else _fold(acc, blk_red)
                if acc == terminal:  # early exit: annihilator reached
                    done = True
                    break
            out_vals[p] = acc
            keep[p] = True
            early_exits += done
        else:
            prods = _mult(av, bv)
            out_vals[p] = _reduce(prods)
            keep[p] = True

    if telemetry.ENABLED and early_eligible:
        telemetry.decision(
            "mxm.early_exit",
            terminated=early_exits,
            eligible=early_eligible,
            dots=int(out_i.size),
        )
    out_i, out_j, out_vals = out_i[keep], out_j[keep], out_vals[keep]
    order = np.lexsort((out_j, out_i))
    return out_i[order], out_j[order], out_vals[order]


# --------------------------------------------------------------------------
# Heap method: literal k-way merge per output row
# --------------------------------------------------------------------------

def _mxm_heap(
    a_rows: SparseStore,
    b_rows: SparseStore,
    semiring: Semiring,
    out_type: Type,
    mask_coords,
    mask_complement: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    add = semiring.add
    mult = semiring.mult
    out_r: list[int] = []
    out_c: list[int] = []
    out_v: list = []

    a_full = a_rows.to_full_pointer()
    indptr = a_full.indptr
    for i in range(a_full.n_major):
        lo, hi = int(indptr[i]), int(indptr[i + 1])
        if lo == hi:
            continue
        ks = a_full.minor[lo:hi]
        avs = a_full.values[lo:hi]
        bs, be = b_rows.major_ranges(ks)
        # heap of (col_index, source_row_position, cursor) — merge the rows
        # of B selected by A(i,:) in column order
        heap: list[tuple[int, int, int]] = []
        for s in range(ks.size):
            if bs[s] < be[s]:
                heapq.heappush(heap, (int(b_rows.minor[bs[s]]), s, int(bs[s])))
        cur_col = -1
        acc = None
        while heap:
            col, s, cursor = heapq.heappop(heap)
            prod = mult.fn(avs[s], b_rows.values[cursor])
            if col != cur_col:
                if acc is not None:
                    out_r.append(i)
                    out_c.append(cur_col)
                    out_v.append(acc)
                cur_col = col
                acc = prod
            else:
                acc = add.op.fn(acc, prod)
            cursor += 1
            if cursor < be[s]:
                heapq.heappush(heap, (int(b_rows.minor[cursor]), s, cursor))
        if acc is not None:
            out_r.append(i)
            out_c.append(cur_col)
            out_v.append(acc)

    r = np.asarray(out_r, dtype=_INDEX)
    c = np.asarray(out_c, dtype=_INDEX)
    v = out_type.cast_array(np.asarray(out_v)) if out_v else np.empty(
        0, dtype=out_type.np_dtype
    )
    if mask_coords is not None:
        from .coords import coords_in

        sel = coords_in(r, c, *mask_coords)
        if mask_complement:
            sel = ~sel
        r, c, v = r[sel], c[sel], v[sel]
    return r, c, v
