"""Kernel template library for the compiled tier.

The paper credits SuiteSparse's speed to *code-generated* semiring
kernels: 960 monomorphic inner loops, one per (monoid, multiply, type)
combination, with terminal-monoid early exit compiled into the hot loop.
This module is the template half of our analogue: given a
:class:`KernelSpec` — ``(add monoid, multiply op, value type)`` — it
renders the same five kernels in two source languages:

* **C** (:func:`c_source`) — compiled by the ``cc`` toolchain into a
  shared library and called through ctypes (the call releases the GIL,
  so row blocks run truly parallel on the PR-5 worker pool);
* **Python** (:func:`py_source`) — the *same algorithms* as typed scalar
  loops, consumed either by ``numba.njit`` (the ``numba`` toolchain,
  ``pip install .[compiled]``) or executed as plain Python (the
  ``python`` toolchain: slow, but it lets the template logic be parity-
  tested in environments with neither numba nor a C compiler).

The five kernels per spec:

``spgemm_count`` / ``spgemm_fill``
    Gustavson SpGEMM over a row block, two-phase (symbolic count, then
    numeric fill) with a sparse-accumulator (SPA) per output row.  The
    accumulation order — A-row entries ascending by inner index — is
    the order the vectorized engine folds duplicates in, so integer and
    order-insensitive (MIN/MAX/logical) results match the NumPy path
    bit for bit; float PLUS/TIMES can differ in the last ulp because
    numpy's ``reduceat`` unrolls long segments 8-wide while the SPA
    folds strictly left to right.
``dot``
    Sorted-intersection dot products for an explicit output-coordinate
    list (the fused-mask mxm path), with **true terminal early exit**:
    the loop breaks the moment the accumulator reaches the monoid's
    annihilator (LOR's true, LAND's false, MIN/MAX extrema, TIMES' 0) —
    per *element*, not per 64-element block like the vectorized engine.
``push`` / ``pull``
    SpMSpV scatter and masked SpMV dot kernels for mxv/vxm, sharing the
    SPA and early-exit machinery.

Semantics notes (all mirrored from the NumPy operator tables in
:mod:`repro.graphblas.ops` / :mod:`repro.graphblas.monoid`):

* MIN/MAX use NumPy's NaN-propagating comparison (``x if x < y or
  isnan(x) else y``); ``x != x`` is the portable isnan spelling.
* BOOL stores as one byte of 0/1; PLUS degenerates to OR and TIMES/MIN
  to AND, exactly as ``np.add``/``np.multiply`` do on bools.
* LOR/LAND monoids are offered for BOOL only — on wider types the
  vectorized engine's single-product segments skip the bool
  normalization, a corner this tier declines rather than reproduces.
* Signed overflow must wrap to match NumPy: the cc toolchain compiles
  with ``-fwrapv``, and ``-ffp-contract=off`` keeps float multiply-add
  sequences unfused (bit-parity with NumPy's separate ops).
"""

from __future__ import annotations

from dataclasses import dataclass
from string import Template

import numpy as np

from ..monoid import monoid as _monoid
from ..types import lookup_type

__all__ = [
    "KernelSpec",
    "spec_for",
    "spec_supported",
    "c_source",
    "py_source",
    "CTYPES",
    "SUPPORTED_ADDS",
    "SUPPORTED_MULTS",
]

# value-type name -> C type (indices are always int64_t)
CTYPES: dict[str, str] = {
    "BOOL": "uint8_t",
    "INT8": "int8_t",
    "INT16": "int16_t",
    "INT32": "int32_t",
    "INT64": "int64_t",
    "UINT8": "uint8_t",
    "UINT16": "uint16_t",
    "UINT32": "uint32_t",
    "UINT64": "uint64_t",
    "FP32": "float",
    "FP64": "double",
}

# multiply ops: name -> (C format, Python format) over operands {x}, {y}.
# NaN-propagating MIN/MAX match np.minimum/np.maximum; the x != x test is
# isnan and constant-folds away for integer types.
_MULTS: dict[str, tuple[str, str]] = {
    "FIRST": ("({x})", "({x})"),
    "SECOND": ("({y})", "({y})"),
    "PLUS": ("({x} + {y})", "({x} + {y})"),
    "MINUS": ("({x} - {y})", "({x} - {y})"),
    "TIMES": ("({x} * {y})", "({x} * {y})"),
    "MIN": (
        "(({x} < {y} || {x} != {x}) ? {x} : {y})",
        "({x} if ({x} < {y} or {x} != {x}) else {y})",
    ),
    "MAX": (
        "(({x} > {y} || {x} != {x}) ? {x} : {y})",
        "({x} if ({x} > {y} or {x} != {x}) else {y})",
    ),
    "LAND": (
        "((VT)(({x} != 0) && ({y} != 0)))",
        "(({x} != 0) and ({y} != 0))",
    ),
    "LOR": (
        "((VT)(({x} != 0) || ({y} != 0)))",
        "(({x} != 0) or ({y} != 0))",
    ),
    "ONEB": ("((VT)1)", "(True)"),
}

# BOOL overrides: np.add on bools is OR, np.multiply is AND.
_BOOL_MULTS: dict[str, tuple[str, str]] = {
    "PLUS": ("((VT)({x} || {y}))", "({x} or {y})"),
    "TIMES": ("((VT)({x} && {y}))", "({x} and {y})"),
    "MIN": ("((VT)({x} && {y}))", "({x} and {y})"),
    "MAX": ("((VT)({x} || {y}))", "({x} or {y})"),
    "ONEB": ("((VT)1)", "(True)"),
}

# add monoids: the scalar fold a = ADD(a, x), same format slots.
_ADDS: dict[str, tuple[str, str]] = {
    "PLUS": _MULTS["PLUS"],
    "TIMES": _MULTS["TIMES"],
    "MIN": _MULTS["MIN"],
    "MAX": _MULTS["MAX"],
}

_BOOL_ADDS: dict[str, tuple[str, str]] = {
    "PLUS": _BOOL_MULTS["PLUS"],
    "TIMES": _BOOL_MULTS["TIMES"],
    "MIN": _BOOL_MULTS["MIN"],
    "MAX": _BOOL_MULTS["MAX"],
    "LOR": ("((VT)({x} || {y}))", "({x} or {y})"),
    "LAND": ("((VT)({x} && {y}))", "({x} and {y})"),
}

SUPPORTED_ADDS = ("PLUS", "TIMES", "MIN", "MAX", "LOR", "LAND")
SUPPORTED_MULTS = tuple(_MULTS)

_BOOL_ONLY_MULTS = ("FIRST", "SECOND", "PLUS", "TIMES", "MIN", "MAX",
                    "LAND", "LOR", "ONEB")


def _mult_fmt(name: str, type_name: str) -> tuple[str, str] | None:
    if type_name == "BOOL":
        if name in _BOOL_MULTS:
            return _BOOL_MULTS[name]
        if name in ("FIRST", "SECOND", "LAND", "LOR"):
            return _MULTS[name]
        return None
    return _MULTS.get(name)


def _add_fmt(name: str, type_name: str) -> tuple[str, str] | None:
    if type_name == "BOOL":
        return _BOOL_ADDS.get(name)
    return _ADDS.get(name)


def spec_supported(add_name: str, mult_name: str, type_name: str) -> bool:
    """Whether a (monoid, multiply, type) triple has a kernel template."""
    if type_name not in CTYPES:
        return False
    if type_name == "BOOL" and mult_name not in _BOOL_ONLY_MULTS:
        return False
    return (
        _add_fmt(add_name, type_name) is not None
        and _mult_fmt(mult_name, type_name) is not None
    )


@dataclass(frozen=True)
class KernelSpec:
    """One code-generation point: (add monoid, multiply op, value type)."""

    add_name: str
    mult_name: str
    type_name: str

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.add_name, self.mult_name, self.type_name)

    @property
    def np_dtype(self) -> np.dtype:
        return lookup_type(self.type_name).np_dtype

    def terminal(self):
        """The annihilator as a numpy scalar, or None."""
        return _monoid(self.add_name).terminal(lookup_type(self.type_name))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.add_name}.{self.mult_name}.{self.type_name}"


def spec_for(semiring, out_type) -> KernelSpec | None:
    """The spec serving ``semiring`` over ``out_type``, or None."""
    add, mult = semiring.add, semiring.mult
    if not (add.builtin and mult.builtin and out_type.builtin):
        return None
    if mult.positional is not None:
        return None
    if not spec_supported(add.name, mult.name, out_type.name):
        return None
    return KernelSpec(add.name, mult.name, out_type.name)


def _c_terminal_literal(value, type_name: str) -> str:
    if value is None:
        return "0"
    if type_name == "BOOL":
        return "1" if value else "0"
    if type_name in ("FP32", "FP64"):
        f = float(value)
        if np.isinf(f):
            return "INFINITY" if f > 0 else "(-INFINITY)"
        return float(f).hex()  # C99 hexfloat, exact
    v = int(value)
    if v == -(2**63):
        return "(-9223372036854775807LL - 1)"
    if type_name.startswith("UINT"):
        return f"{v}ULL"
    return f"{v}LL"


# --------------------------------------------------------------------------
# C source
# --------------------------------------------------------------------------

_C_TEMPLATE = Template(r"""/* generated kernel set: ${SPEC} */
#include <stdint.h>
#include <math.h>

typedef ${CTYPE} VT;

#define HAS_TERM ${HAS_TERM}
#define TERM ((VT)${TERM_LIT})

/* sort (idx, val) pairs in [lo, hi] by idx: quicksort with insertion tail */
static void sortpairs(int64_t *idx, VT *val, int64_t lo, int64_t hi)
{
    while (hi - lo > 24) {
        int64_t mid = lo + ((hi - lo) >> 1);
        int64_t a = idx[lo], b = idx[mid], c = idx[hi];
        int64_t pv = a < b ? (b < c ? b : (a < c ? c : a))
                           : (a < c ? a : (b < c ? c : b));
        int64_t i = lo, j = hi;
        while (i <= j) {
            while (idx[i] < pv) i++;
            while (idx[j] > pv) j--;
            if (i <= j) {
                int64_t ti = idx[i]; idx[i] = idx[j]; idx[j] = ti;
                VT tv = val[i]; val[i] = val[j]; val[j] = tv;
                i++; j--;
            }
        }
        if (j - lo < hi - i) { sortpairs(idx, val, lo, j); lo = i; }
        else                 { sortpairs(idx, val, i, hi); hi = j; }
    }
    for (int64_t s = lo + 1; s <= hi; s++) {
        int64_t ki = idx[s]; VT kv = val[s];
        int64_t t = s - 1;
        while (t >= lo && idx[t] > ki) {
            idx[t + 1] = idx[t]; val[t + 1] = val[t]; t--;
        }
        idx[t + 1] = ki; val[t + 1] = kv;
    }
}

/* Gustavson symbolic phase: distinct output columns per row in a block.
   mark must arrive filled with a value < row_lo (the caller uses -1). */
int64_t gb_spgemm_count(
    int64_t row_lo, int64_t row_hi,
    const int64_t *ap, const int64_t *aj,
    const int64_t *bp, const int64_t *bj,
    int64_t *mark)
{
    int64_t total = 0;
    for (int64_t i = row_lo; i < row_hi; i++) {
        for (int64_t p = ap[i]; p < ap[i + 1]; p++) {
            int64_t k = aj[p];
            for (int64_t q = bp[k]; q < bp[k + 1]; q++) {
                int64_t j = bj[q];
                if (mark[j] != i) { mark[j] = i; total++; }
            }
        }
    }
    return total;
}

/* Gustavson numeric phase: SPA accumulation in A-row entry order (the
   same fold order as the vectorized engine's stable sort + reduceat),
   output sorted by column within each row. */
int64_t gb_spgemm_fill(
    int64_t row_lo, int64_t row_hi,
    const int64_t *ap, const int64_t *aj, const VT *ax,
    const int64_t *bp, const int64_t *bj, const VT *bx,
    int64_t *mark, int64_t *slot,
    int64_t *ci, int64_t *cj, VT *cx)
{
    int64_t nz = 0;
    for (int64_t i = row_lo; i < row_hi; i++) {
        int64_t row_start = nz;
        for (int64_t p = ap[i]; p < ap[i + 1]; p++) {
            int64_t k = aj[p];
            VT av = ax[p];
            for (int64_t q = bp[k]; q < bp[k + 1]; q++) {
                int64_t j = bj[q];
                VT prod = ${MULT_AV_BQ};
                if (mark[j] != i) {
                    mark[j] = i;
                    slot[j] = nz;
                    cj[nz] = j;
                    cx[nz] = prod;
                    nz++;
                } else {
                    int64_t s = slot[j];
                    VT acc = cx[s];
                    cx[s] = ${ADD_ACC_PROD};
                }
            }
        }
        if (nz - row_start > 1)
            sortpairs(cj, cx, row_start, nz - 1);
        for (int64_t s = row_start; s < nz; s++) ci[s] = i;
    }
    return nz;
}

/* dot products for an explicit (i, j) list: sorted-intersection scan
   with per-element terminal early exit.
   stats: [terminated, nonempty, scanned, depth_at_exit_sum] */
void gb_dot(
    int64_t n,
    const int64_t *as, const int64_t *ae,
    const int64_t *bs, const int64_t *be,
    const int64_t *aj, const VT *ax,
    const int64_t *bj, const VT *bx,
    uint8_t *keep, VT *out, int64_t *stats)
{
    for (int64_t p = 0; p < n; p++) {
        int64_t pa = as[p], pb = bs[p];
        const int64_t ea = ae[p], eb = be[p];
        VT acc = (VT)0;
        int have = 0;
        int64_t depth = 0;
        while (pa < ea && pb < eb) {
            int64_t ka = aj[pa], kb = bj[pb];
            if (ka < kb) pa++;
            else if (kb < ka) pb++;
            else {
                VT prod = ${MULT_AXPA_BXPB};
                if (have) { acc = ${ADD_ACC_PROD}; }
                else      { acc = prod; have = 1; }
                depth++;
#if HAS_TERM
                if (acc == TERM) { stats[0]++; stats[3] += depth; break; }
#endif
                pa++; pb++;
            }
        }
        stats[2] += depth;
        if (have) { stats[1]++; keep[p] = 1; out[p] = acc; }
    }
}

/* SpMSpV push: scatter each frontier entry through its matrix column
   (the store's major axis is the vector's dimension).  mark arrives
   filled with -1; output is sorted by index on exit. */
int64_t gb_push(
    int64_t nu, const int64_t *ui, const VT *ux,
    const int64_t *ap, const int64_t *aj, const VT *ax,
    int matrix_first,
    int64_t *mark,
    int64_t *oi, VT *ov)
{
    int64_t nz = 0;
    for (int64_t t = 0; t < nu; t++) {
        int64_t k = ui[t];
        VT uv = ux[t];
        for (int64_t p = ap[k]; p < ap[k + 1]; p++) {
            int64_t j = aj[p];
            VT prod = matrix_first ? ${MULT_AXP_UV} : ${MULT_UV_AXP};
            if (mark[j] < 0) {
                mark[j] = nz;
                oi[nz] = j;
                ov[nz] = prod;
                nz++;
            } else {
                int64_t s = mark[j];
                VT acc = ov[s];
                ov[s] = ${ADD_ACC_PROD};
            }
        }
    }
    if (nz > 1)
        sortpairs(oi, ov, 0, nz - 1);
    return nz;
}

/* masked SpMV pull: one dot per requested output row against the dense
   vector, skipping absent entries, terminal early exit per row.
   stats layout matches gb_dot. */
int64_t gb_pull(
    int64_t nr, const int64_t *rows,
    const int64_t *ap, const int64_t *aj, const VT *ax,
    const VT *ud, const uint8_t *up,
    int matrix_first,
    int64_t *oi, VT *ov, int64_t *stats)
{
    int64_t nz = 0;
    for (int64_t t = 0; t < nr; t++) {
        int64_t i = rows[t];
        VT acc = (VT)0;
        int have = 0;
        int64_t depth = 0;
        for (int64_t p = ap[i]; p < ap[i + 1]; p++) {
            int64_t j = aj[p];
            if (!up[j]) continue;
            VT uv = ud[j];
            VT prod = matrix_first ? ${MULT_AXP_UV} : ${MULT_UV_AXP};
            if (have) { acc = ${ADD_ACC_PROD}; }
            else      { acc = prod; have = 1; }
            depth++;
#if HAS_TERM
            if (acc == TERM) { stats[0]++; stats[3] += depth; break; }
#endif
        }
        stats[2] += depth;
        if (have) { stats[1]++; oi[nz] = i; ov[nz] = acc; nz++; }
    }
    return nz;
}
""")


def c_source(spec: KernelSpec) -> str:
    """Render the five C kernels for one spec."""
    c_mult, _ = _mult_fmt(spec.mult_name, spec.type_name)
    c_add, _ = _add_fmt(spec.add_name, spec.type_name)
    term = spec.terminal()
    return _C_TEMPLATE.substitute(
        SPEC=str(spec),
        CTYPE=CTYPES[spec.type_name],
        HAS_TERM="1" if term is not None else "0",
        TERM_LIT=_c_terminal_literal(term, spec.type_name),
        MULT_AV_BQ=c_mult.format(x="av", y="bx[q]"),
        MULT_AXPA_BXPB=c_mult.format(x="ax[pa]", y="bx[pb]"),
        MULT_AXP_UV=c_mult.format(x="ax[p]", y="uv"),
        MULT_UV_AXP=c_mult.format(x="uv", y="ax[p]"),
        ADD_ACC_PROD=c_add.format(x="acc", y="prod"),
    )


# --------------------------------------------------------------------------
# Python source (numba-jittable; also runs interpreted)
# --------------------------------------------------------------------------

_PY_TEMPLATE = Template(r'''# generated kernel set: ${SPEC}
import numpy as np


def sortpairs(idx, val, lo, hi):
    while hi - lo > 24:
        mid = lo + ((hi - lo) >> 1)
        a = idx[lo]; b = idx[mid]; c = idx[hi]
        if a < b:
            pv = b if b < c else (c if a < c else a)
        else:
            pv = a if a < c else (c if b < c else b)
        i = lo; j = hi
        while i <= j:
            while idx[i] < pv:
                i += 1
            while idx[j] > pv:
                j -= 1
            if i <= j:
                ti = idx[i]; idx[i] = idx[j]; idx[j] = ti
                tv = val[i]; val[i] = val[j]; val[j] = tv
                i += 1; j -= 1
        if j - lo < hi - i:
            sortpairs(idx, val, lo, j); lo = i
        else:
            sortpairs(idx, val, i, hi); hi = j
    for s in range(lo + 1, hi + 1):
        ki = idx[s]; kv = val[s]
        t = s - 1
        while t >= lo and idx[t] > ki:
            idx[t + 1] = idx[t]; val[t + 1] = val[t]; t -= 1
        idx[t + 1] = ki; val[t + 1] = kv


def gb_spgemm_count(row_lo, row_hi, ap, aj, bp, bj, mark):
    total = 0
    for i in range(row_lo, row_hi):
        for p in range(ap[i], ap[i + 1]):
            k = aj[p]
            for q in range(bp[k], bp[k + 1]):
                j = bj[q]
                if mark[j] != i:
                    mark[j] = i
                    total += 1
    return total


def gb_spgemm_fill(row_lo, row_hi, ap, aj, ax, bp, bj, bx,
                   mark, slot, ci, cj, cx):
    nz = 0
    for i in range(row_lo, row_hi):
        row_start = nz
        for p in range(ap[i], ap[i + 1]):
            k = aj[p]
            av = ax[p]
            for q in range(bp[k], bp[k + 1]):
                j = bj[q]
                prod = ${MULT_AV_BQ}
                if mark[j] != i:
                    mark[j] = i
                    slot[j] = nz
                    cj[nz] = j
                    cx[nz] = prod
                    nz += 1
                else:
                    s = slot[j]
                    acc = cx[s]
                    cx[s] = ${ADD_ACC_PROD}
        if nz - row_start > 1:
            sortpairs(cj, cx, row_start, nz - 1)
        for s in range(row_start, nz):
            ci[s] = i
    return nz


def gb_dot(n, a_s, ae, bs, be, aj, ax, bj, bx, keep, out,
           has_term, term, stats):
    for p in range(n):
        pa = a_s[p]; pb = bs[p]
        ea = ae[p]; eb = be[p]
        acc = out[p]
        have = False
        depth = 0
        while pa < ea and pb < eb:
            ka = aj[pa]; kb = bj[pb]
            if ka < kb:
                pa += 1
            elif kb < ka:
                pb += 1
            else:
                prod = ${MULT_AXPA_BXPB}
                if have:
                    acc = ${ADD_ACC_PROD}
                else:
                    acc = prod
                    have = True
                depth += 1
                if has_term and acc == term:
                    stats[0] += 1
                    stats[3] += depth
                    break
                pa += 1; pb += 1
        stats[2] += depth
        if have:
            stats[1] += 1
            keep[p] = True
            out[p] = acc


def gb_push(nu, ui, ux, ap, aj, ax, matrix_first, mark, oi, ov):
    nz = 0
    for t in range(nu):
        k = ui[t]
        uv = ux[t]
        for p in range(ap[k], ap[k + 1]):
            j = aj[p]
            prod = ${MULT_AXP_UV} if matrix_first else ${MULT_UV_AXP}
            if mark[j] < 0:
                mark[j] = nz
                oi[nz] = j
                ov[nz] = prod
                nz += 1
            else:
                s = mark[j]
                acc = ov[s]
                ov[s] = ${ADD_ACC_PROD}
    if nz > 1:
        sortpairs(oi, ov, 0, nz - 1)
    return nz


def gb_pull(nr, rows, ap, aj, ax, ud, up, matrix_first,
            oi, ov, has_term, term, stats):
    nz = 0
    for t in range(nr):
        i = rows[t]
        acc = term
        have = False
        depth = 0
        for p in range(ap[i], ap[i + 1]):
            j = aj[p]
            if not up[j]:
                continue
            uv = ud[j]
            prod = ${MULT_AXP_UV} if matrix_first else ${MULT_UV_AXP}
            if have:
                acc = ${ADD_ACC_PROD}
            else:
                acc = prod
                have = True
            depth += 1
            if has_term and acc == term:
                stats[0] += 1
                stats[3] += depth
                break
        stats[2] += depth
        if have:
            stats[1] += 1
            oi[nz] = i
            ov[nz] = acc
            nz += 1
    return nz
''')


def py_source(spec: KernelSpec) -> str:
    """Render the numba-jittable Python kernels for one spec."""
    _, py_mult = _mult_fmt(spec.mult_name, spec.type_name)
    _, py_add = _add_fmt(spec.add_name, spec.type_name)
    return _PY_TEMPLATE.substitute(
        SPEC=str(spec),
        MULT_AV_BQ=py_mult.format(x="av", y="bx[q]"),
        MULT_AXPA_BXPB=py_mult.format(x="ax[pa]", y="bx[pb]"),
        MULT_AXP_UV=py_mult.format(x="ax[p]", y="uv"),
        MULT_UV_AXP=py_mult.format(x="uv", y="ax[p]"),
        ADD_ACC_PROD=py_add.format(x="acc", y="prod"),
    )
