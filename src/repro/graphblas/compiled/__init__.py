"""Compiled kernel tier: JIT semiring kernels with terminal early exit.

This package is the code-generation analogue of SuiteSparse's 960
pre-compiled semiring built-ins that the paper credits for its speed.
Where the PR-5 engine specializes *NumPy closures* (vectorized, but
structurally unable to stop mid-row), this tier generates monomorphic
scalar loops per ``(add monoid, multiply op, value type)`` and compiles
them — with numba when the ``[compiled]`` extra is installed, with the
system C compiler otherwise — so terminal monoids (LOR, LAND, MIN, MAX,
TIMES) genuinely bail out of the hot loop at the first annihilator.

Layout mirrors :mod:`repro.graphblas.engine`'s kernel cache:

* :func:`kernel_for` — LRU cache of built kernel sets keyed
  ``(toolchain, add, mult, type)``; emits ``compiled.kernel`` telemetry
  decisions (``event="compile"`` with wall seconds on a miss,
  ``event="hit"`` otherwise) that feed the ``graphblas_compile_seconds``
  histogram.
* :func:`cache_stats` — hits/misses/evictions/size/capacity plus
  cumulative compile seconds, surfaced as obs gauges.
* Env knobs: ``GRAPHBLAS_COMPILED_TOOLCHAIN`` (``auto``/``numba``/
  ``cc``/``python``/``off``), ``GRAPHBLAS_COMPILED_CACHE`` (LRU
  capacity), ``GRAPHBLAS_COMPILED_DIR`` (cc artifact directory).

Selecting ``GRAPHBLAS_BACKEND=compiled`` when no toolchain is usable
never raises: :func:`warn_unavailable` warns once (the
:mod:`repro.graphblas.envutil` policy) and dispatch falls through the
backend chain to ``optimized``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

from .. import envutil, telemetry
from . import templates, toolchain as _toolchain
from .templates import KernelSpec, spec_for, spec_supported

__all__ = [
    "available",
    "toolchain_name",
    "kernel_for",
    "supports",
    "cache_stats",
    "clear_cache",
    "reset",
    "set_config",
    "get_config",
    "warn_unavailable",
    "KernelSpec",
    "spec_for",
    "spec_supported",
]

DEFAULT_CACHE_SIZE = 128

_lock = threading.RLock()
_cache: "OrderedDict[tuple, _toolchain.KernelSet]" = OrderedDict()
_stats = {
    "hits": 0,
    "misses": 0,
    "evictions": 0,
    "unsupported": 0,
    "compile_seconds": 0.0,
}
_config: dict | None = None


def _load_config() -> dict:
    global _config
    with _lock:
        if _config is None:
            _config = {
                "preference": envutil.env_choice(
                    "GRAPHBLAS_COMPILED_TOOLCHAIN", "auto",
                    ("auto", "numba", "cc", "python", "off")),
                "capacity": max(1, envutil.env_int(
                    "GRAPHBLAS_COMPILED_CACHE", DEFAULT_CACHE_SIZE)),
            }
        return _config


def set_config(*, toolchain=None, capacity=None) -> None:
    """Override the env-derived tier config (the ``GxB_Compiled_set``
    path).  ``toolchain`` picks the preference (``auto``/``numba``/
    ``cc``/``python``/``off``); ``capacity`` resizes the kernel LRU,
    evicting immediately when shrunk.  Arguments left ``None`` keep
    their current values.  Cached kernels survive a toolchain switch —
    the cache key includes the toolchain, so stale sets are never
    served, only retained until evicted.
    """
    global _config
    cfg = dict(_load_config())
    if toolchain is not None:
        choices = ("auto", "numba", "cc", "python", "off")
        if toolchain not in choices:
            raise ValueError(
                f"toolchain must be one of {choices}, got {toolchain!r}"
            )
        cfg["preference"] = toolchain
    if capacity is not None:
        capacity = int(capacity)
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        cfg["capacity"] = capacity
    with _lock:
        _config = cfg
        while len(_cache) > cfg["capacity"]:
            _cache.popitem(last=False)
            _stats["evictions"] += 1


def get_config() -> dict:
    """The effective tier config (preference + cache capacity)."""
    return dict(_load_config())


def toolchain_name() -> str | None:
    """The resolved toolchain (``numba``/``cc``/``python``) or None."""
    return _toolchain.probe_toolchain(_load_config()["preference"])


def available() -> bool:
    """Whether any usable toolchain exists under the current config."""
    return toolchain_name() is not None


def supports(semiring, out_type) -> bool:
    """Whether this tier has a kernel template for the op."""
    return spec_for(semiring, out_type) is not None


def kernel_for(semiring, out_type) -> "_toolchain.KernelSet | None":
    """Fetch (or build) the kernel set for a semiring over ``out_type``.

    Returns None when the op has no template or no toolchain is usable.
    Build cost is paid once per (toolchain, add, mult, type) and
    amortized by the LRU; the cc toolchain additionally reuses
    content-addressed artifacts across processes.
    """
    spec = spec_for(semiring, out_type)
    if spec is None:
        with _lock:
            _stats["unsupported"] += 1
        return None
    tc = toolchain_name()
    if tc is None:
        return None
    key = (tc, *spec.key)
    with _lock:
        kern = _cache.get(key)
        if kern is not None:
            _cache.move_to_end(key)
            _stats["hits"] += 1
            if telemetry.ENABLED:
                telemetry.decision(
                    "compiled.kernel", event="hit", toolchain=tc,
                    kernel=str(spec))
            return kern
    # build outside the lock: compiles can take seconds and other
    # threads may want cache hits meanwhile
    t0 = time.perf_counter()
    kern = _toolchain.build(spec, tc)
    dt = time.perf_counter() - t0
    with _lock:
        if key not in _cache:
            _cache[key] = kern
            _stats["misses"] += 1
            _stats["compile_seconds"] += dt
            cap = _load_config()["capacity"]
            while len(_cache) > cap:
                _cache.popitem(last=False)
                _stats["evictions"] += 1
        else:  # lost a build race; keep the cached one
            kern = _cache[key]
            _stats["hits"] += 1
    if telemetry.ENABLED:
        telemetry.decision(
            "compiled.kernel", event="compile", toolchain=tc,
            kernel=str(spec), seconds=dt)
    return kern


def cache_stats() -> dict:
    """Snapshot of the compiled-kernel cache (obs gauge source)."""
    with _lock:
        out = dict(_stats)
        out["size"] = len(_cache)
        out["capacity"] = _load_config()["capacity"]
        return out


def clear_cache() -> None:
    with _lock:
        _cache.clear()


def reset() -> None:
    """Re-read env config and drop all cached kernels (test hook)."""
    global _config
    with _lock:
        _config = None
        _cache.clear()
        for k in _stats:
            _stats[k] = 0.0 if k == "compile_seconds" else 0


def warn_unavailable() -> None:
    """Warn once that the compiled backend was requested but unusable."""
    pref = _load_config()["preference"]
    if pref == "off":
        why = "GRAPHBLAS_COMPILED_TOOLCHAIN=off disables the tier"
    else:
        why = ("no toolchain available (numba not installed and no C "
               "compiler on PATH)")
    envutil.warn_once("GRAPHBLAS_BACKEND", "compiled", why, "optimized")
