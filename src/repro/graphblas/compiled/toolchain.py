"""Toolchains that turn kernel templates into callable kernel sets.

Three toolchains, probed in order of preference:

``numba``
    The documented optional dependency (``pip install .[compiled]``).
    The generated Python source (:func:`templates.py_source`) is
    ``njit(nogil=True)``-compiled, so row blocks run truly parallel on
    the engine worker pool.
``cc``
    Zero-dependency built-in: the generated C source is compiled with
    the system C compiler (``$CC``, ``cc``, or ``gcc``) into a shared
    library loaded through ctypes.  ctypes foreign calls release the
    GIL, so this tier parallelizes exactly like numba.  Artifacts are
    content-addressed (sha256 of the source) in the build directory, so
    a warm cache survives process restarts.
``python``
    The same generated Python source, interpreted.  Far too slow for
    production — it exists as the oracle for template parity tests in
    environments with neither numba nor a compiler.

All three expose the same :class:`KernelSet` interface over NumPy
arrays; the orchestration in :mod:`repro.graphblas.backends.compiled`
is toolchain-agnostic.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading

import numpy as np

from . import templates

__all__ = ["KernelSet", "build", "probe_toolchain", "TOOLCHAINS"]

TOOLCHAINS = ("numba", "cc", "python")

_I8 = ctypes.c_int64
_P = ctypes.c_void_p
_INT = ctypes.c_int

_lock = threading.Lock()
_cc_path: str | None | bool = None  # None = unprobed, False = absent
_numba_ok: bool | None = None


def _find_cc() -> str | None:
    global _cc_path
    with _lock:
        if _cc_path is None:
            for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
                if cand and shutil.which(cand):
                    _cc_path = shutil.which(cand)
                    break
            else:
                _cc_path = False
        return _cc_path or None


def _have_numba() -> bool:
    global _numba_ok
    with _lock:
        if _numba_ok is None:
            try:
                import numba  # noqa: F401

                _numba_ok = True
            except Exception:
                _numba_ok = False
        return _numba_ok


def probe_toolchain(preference: str = "auto") -> str | None:
    """Resolve a toolchain name, or None if nothing usable.

    ``auto`` prefers numba, then the C compiler, then nothing —
    interpreted Python is never auto-selected (it would be a silent
    100x regression); it must be requested explicitly.
    """
    if preference == "off":
        return None
    if preference in ("numba", "cc", "python"):
        if preference == "numba" and not _have_numba():
            return None
        if preference == "cc" and _find_cc() is None:
            return None
        return preference
    # auto
    if _have_numba():
        return "numba"
    if _find_cc() is not None:
        return "cc"
    return None


class KernelSet:
    """Uniform interface to one compiled (add, mult, type) kernel set.

    All methods take C-contiguous NumPy arrays of the right dtypes
    (int64 indices, the spec's value type); the caller normalizes.
    """

    toolchain = "abstract"

    def __init__(self, spec: templates.KernelSpec):
        self.spec = spec
        term = spec.terminal()
        self.has_terminal = term is not None
        dt = spec.np_dtype
        # the python/numba kernels need a typed scalar even when no
        # terminal exists; zero is never compared in that case
        self._term = dt.type(term) if term is not None else dt.type(0)

    def spgemm_count(self, row_lo, row_hi, ap, aj, bp, bj, mark) -> int:
        raise NotImplementedError

    def spgemm_fill(self, row_lo, row_hi, ap, aj, ax, bp, bj, bx,
                    mark, slot, ci, cj, cx) -> int:
        raise NotImplementedError

    def dot(self, a_s, ae, bs, be, aj, ax, bj, bx, keep, out, stats) -> None:
        raise NotImplementedError

    def push(self, ui, ux, ap, aj, ax, matrix_first, mark, oi, ov) -> int:
        raise NotImplementedError

    def pull(self, rows, ap, aj, ax, ud, up, matrix_first,
             oi, ov, stats) -> int:
        raise NotImplementedError


def _buf(arr: np.ndarray):
    """ctypes-ready data pointer; bool arrays pass as their byte view."""
    if arr.dtype == np.bool_:
        arr = arr.view(np.uint8)
    return arr.ctypes.data


class _CKernelSet(KernelSet):
    toolchain = "cc"

    def __init__(self, spec, lib: ctypes.CDLL):
        super().__init__(spec)
        self._lib = lib

        def proto(name, restype, *argtypes):
            fn = getattr(lib, name)
            fn.restype = restype
            fn.argtypes = list(argtypes)
            return fn

        self._count = proto("gb_spgemm_count", _I8,
                            _I8, _I8, _P, _P, _P, _P, _P)
        self._fill = proto("gb_spgemm_fill", _I8,
                           _I8, _I8, _P, _P, _P, _P, _P, _P,
                           _P, _P, _P, _P, _P)
        self._dot = proto("gb_dot", None,
                          _I8, _P, _P, _P, _P, _P, _P, _P, _P,
                          _P, _P, _P)
        self._push = proto("gb_push", _I8,
                           _I8, _P, _P, _P, _P, _P, _INT, _P, _P, _P)
        self._pull = proto("gb_pull", _I8,
                           _I8, _P, _P, _P, _P, _P, _P, _INT,
                           _P, _P, _P)

    def spgemm_count(self, row_lo, row_hi, ap, aj, bp, bj, mark):
        return self._count(row_lo, row_hi, _buf(ap), _buf(aj),
                           _buf(bp), _buf(bj), _buf(mark))

    def spgemm_fill(self, row_lo, row_hi, ap, aj, ax, bp, bj, bx,
                    mark, slot, ci, cj, cx):
        return self._fill(row_lo, row_hi, _buf(ap), _buf(aj), _buf(ax),
                          _buf(bp), _buf(bj), _buf(bx),
                          _buf(mark), _buf(slot),
                          _buf(ci), _buf(cj), _buf(cx))

    def dot(self, a_s, ae, bs, be, aj, ax, bj, bx, keep, out, stats):
        self._dot(a_s.size, _buf(a_s), _buf(ae), _buf(bs), _buf(be),
                  _buf(aj), _buf(ax), _buf(bj), _buf(bx),
                  _buf(keep), _buf(out), _buf(stats))

    def push(self, ui, ux, ap, aj, ax, matrix_first, mark, oi, ov):
        return self._push(ui.size, _buf(ui), _buf(ux),
                          _buf(ap), _buf(aj), _buf(ax),
                          1 if matrix_first else 0,
                          _buf(mark), _buf(oi), _buf(ov))

    def pull(self, rows, ap, aj, ax, ud, up, matrix_first, oi, ov, stats):
        return self._pull(rows.size, _buf(rows),
                          _buf(ap), _buf(aj), _buf(ax),
                          _buf(ud), _buf(up),
                          1 if matrix_first else 0,
                          _buf(oi), _buf(ov), _buf(stats))


class _PyKernelSet(KernelSet):
    toolchain = "python"

    def __init__(self, spec, ns: dict):
        super().__init__(spec)
        self._count = ns["gb_spgemm_count"]
        self._fill = ns["gb_spgemm_fill"]
        self._dot = ns["gb_dot"]
        self._push = ns["gb_push"]
        self._pull = ns["gb_pull"]

    def spgemm_count(self, row_lo, row_hi, ap, aj, bp, bj, mark):
        return int(self._count(row_lo, row_hi, ap, aj, bp, bj, mark))

    def spgemm_fill(self, row_lo, row_hi, ap, aj, ax, bp, bj, bx,
                    mark, slot, ci, cj, cx):
        return int(self._fill(row_lo, row_hi, ap, aj, ax, bp, bj, bx,
                              mark, slot, ci, cj, cx))

    def dot(self, a_s, ae, bs, be, aj, ax, bj, bx, keep, out, stats):
        self._dot(a_s.size, a_s, ae, bs, be, aj, ax, bj, bx, keep, out,
                  self.has_terminal, self._term, stats)

    def push(self, ui, ux, ap, aj, ax, matrix_first, mark, oi, ov):
        return int(self._push(ui.size, ui, ux, ap, aj, ax,
                              matrix_first, mark, oi, ov))

    def pull(self, rows, ap, aj, ax, ud, up, matrix_first, oi, ov, stats):
        return int(self._pull(rows.size, rows, ap, aj, ax, ud, up,
                              matrix_first, oi, ov,
                              self.has_terminal, self._term, stats))


class _NumbaKernelSet(_PyKernelSet):
    toolchain = "numba"


def _exec_py(spec) -> dict:
    src = templates.py_source(spec)
    ns: dict = {}
    exec(compile(src, f"<gbk:{spec}>", "exec"), ns)
    return ns


def _build_python(spec) -> KernelSet:
    return _PyKernelSet(spec, _exec_py(spec))


def _build_numba(spec) -> KernelSet:
    import numba

    ns = _exec_py(spec)
    jit = numba.njit(nogil=True, cache=False)
    ns["sortpairs"] = sortpairs = jit(ns["sortpairs"])
    out: dict = {}
    for name in ("gb_spgemm_count", "gb_spgemm_fill", "gb_dot",
                 "gb_push", "gb_pull"):
        fn = ns[name]
        fn.__globals__["sortpairs"] = sortpairs
        out[name] = jit(fn)
    return _NumbaKernelSet(spec, out)


def build_dir() -> str:
    """Directory for cc artifacts (content-addressed .so files)."""
    root = os.environ.get("GRAPHBLAS_COMPILED_DIR")
    if not root:
        root = os.path.join(tempfile.gettempdir(),
                            f"graphblas-compiled-{os.getuid()}")
    os.makedirs(root, exist_ok=True)
    return root

# -fwrapv: signed overflow must wrap like NumPy; -ffp-contract=off: no
# FMA fusion, so float results match NumPy's separate multiply/add.
_CFLAGS = ["-O3", "-shared", "-fPIC", "-fwrapv", "-ffp-contract=off"]


def _build_cc(spec) -> KernelSet:
    cc = _find_cc()
    if cc is None:  # pragma: no cover - probed before build
        raise RuntimeError("no C compiler found")
    src = templates.c_source(spec)
    digest = hashlib.sha256(src.encode()).hexdigest()[:24]
    root = build_dir()
    lib_path = os.path.join(root, f"gbk_{digest}.so")
    if not os.path.exists(lib_path):
        src_path = os.path.join(root, f"gbk_{digest}.c")
        with open(src_path, "w") as fh:
            fh.write(src)
        tmp = lib_path + f".tmp.{os.getpid()}"
        cmd = [cc, *_CFLAGS, src_path, "-o", tmp, "-lm"]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            raise RuntimeError(
                f"kernel compile failed ({' '.join(cmd)}):\n{proc.stderr}")
        os.replace(tmp, lib_path)  # atomic: racing builders converge
    return _CKernelSet(spec, ctypes.CDLL(lib_path))


_BUILDERS = {
    "numba": _build_numba,
    "cc": _build_cc,
    "python": _build_python,
}


def build(spec: templates.KernelSpec, toolchain: str) -> KernelSet:
    """Compile one kernel set with the named toolchain."""
    return _BUILDERS[toolchain](spec)
