"""GraphBLAS error model (C API section 3.4).

The GraphBLAS C API distinguishes *API errors* (incorrect use of the
interface: wrong dimensions, bad indices, uninitialized objects) from
*execution errors* (failures while carrying out an otherwise-legal request:
out of memory, invalid values discovered at execution time).

The C API communicates these through ``GrB_Info`` return codes; the IBM
implementation (paper section II.B) internally raises C++ exceptions and
converts them to return codes at the API boundary.  This Python
implementation exposes the exception hierarchy directly, and the
:mod:`repro.graphblas.capi` facade converts exceptions back to ``GrB_Info``
codes exactly like the IBM front-end does.
"""

from __future__ import annotations

import enum

import numpy as np


class Info(enum.IntEnum):
    """``GrB_Info`` return codes from the GraphBLAS C API specification."""

    SUCCESS = 0
    NO_VALUE = 1

    # API errors
    UNINITIALIZED_OBJECT = 2
    NULL_POINTER = 3
    INVALID_VALUE = 4
    INVALID_INDEX = 5
    DOMAIN_MISMATCH = 6
    DIMENSION_MISMATCH = 7
    OUTPUT_NOT_EMPTY = 8

    # execution errors
    OUT_OF_MEMORY = 9
    INSUFFICIENT_SPACE = 10
    INVALID_OBJECT = 11
    INDEX_OUT_OF_BOUNDS = 12
    PANIC = 13

    # governor extensions (GxB_*): resource-governance outcomes reported
    # through the same return-code channel as the spec's execution errors.
    BUDGET_EXCEEDED = 14
    DEADLINE_EXCEEDED = 15
    CANCELLED = 16


class GraphBLASError(Exception):
    """Base class for all GraphBLAS errors."""

    info: Info = Info.PANIC


class ApiError(GraphBLASError):
    """Incorrect use of the GraphBLAS API (detected in the front-end)."""


class ExecutionError(GraphBLASError):
    """Failure while executing an otherwise legal operation."""


class UninitializedObject(ApiError):
    info = Info.UNINITIALIZED_OBJECT


class NullPointer(ApiError):
    info = Info.NULL_POINTER


class InvalidValue(ApiError):
    info = Info.INVALID_VALUE


class InvalidIndex(ApiError):
    info = Info.INVALID_INDEX


class DomainMismatch(ApiError):
    info = Info.DOMAIN_MISMATCH


class DimensionMismatch(ApiError):
    info = Info.DIMENSION_MISMATCH


class OutputNotEmpty(ApiError):
    info = Info.OUTPUT_NOT_EMPTY


class OutOfMemory(ExecutionError):
    info = Info.OUT_OF_MEMORY


class InsufficientSpace(ExecutionError):
    info = Info.INSUFFICIENT_SPACE


class InvalidObject(ExecutionError):
    info = Info.INVALID_OBJECT


class IndexOutOfBounds(ExecutionError):
    info = Info.INDEX_OUT_OF_BOUNDS


class Panic(ExecutionError):
    info = Info.PANIC


class BackendDivergence(ExecutionError):
    """Two kernel backends disagreed on an operation's pattern or values.

    Raised by the ``differential`` backend when the optimized engine and
    the dense spec-literal reference produce different results for the
    same :class:`~repro.graphblas.plan.OpPlan` — the runtime form of the
    paper's dual-implementation testing methodology (section II.A).
    """

    info = Info.PANIC


class GovernorError(ExecutionError):
    """Base class for resource-governance rejections.

    Raised by :mod:`repro.graphblas.governor` when an operation is refused
    or interrupted by the active :class:`~repro.graphblas.governor.ExecutionContext`.
    These are execution errors in the C API sense: the request was legal,
    but the governor declined to carry it out.  They are raised *before*
    any output is allocated, so all operands remain valid.
    """


class BudgetExceeded(GovernorError):
    """The estimated result footprint exceeds the context's memory budget.

    Follows the spirit of ``GrB_INSUFFICIENT_SPACE``: the operation was
    refused at admission time, before allocating its output.
    """

    info = Info.BUDGET_EXCEEDED


class DeadlineExceeded(GovernorError):
    """The context's wall-clock deadline passed before the operation ran."""

    info = Info.DEADLINE_EXCEEDED


class Cancelled(GovernorError):
    """The context's cancellation token was tripped.

    Cooperative: raised at poll points (between algorithm iterations, at
    SpGEMM method boundaries, before ``wait()`` assembly), so objects are
    always left in a valid state.
    """

    info = Info.CANCELLED


class NoValue(GraphBLASError):
    """Raised by extractElement when the entry is not present.

    This mirrors ``GrB_NO_VALUE``, which is informational rather than an
    error in the C API.
    """

    info = Info.NO_VALUE


def coerce_index(i, what: str = "index") -> int:
    """Strictly coerce a single index to ``int``.

    The C API's ``GrB_Index`` is an unsigned integer, so only genuinely
    integral values are accepted: Python/NumPy booleans are rejected (``True``
    is not the index 1), floats must be integral (``2.7`` is an error, ``2.0``
    is allowed as a convenience), and NumPy integer scalars are accepted
    explicitly.  Anything else raises :class:`InvalidIndex`.
    """
    if isinstance(i, (bool, np.bool_)):
        raise InvalidIndex(f"{what} must be an integer, got bool {i!r}")
    if isinstance(i, (int, np.integer)):
        return int(i)
    if isinstance(i, (float, np.floating)):
        f = float(i)
        if not f.is_integer():
            raise InvalidIndex(f"{what} must be integral, got {i!r}")
        return int(f)
    if isinstance(i, np.ndarray) and i.ndim == 0:
        return coerce_index(i.item(), what)
    raise InvalidIndex(f"{what} must be an integer, got {type(i).__name__}")


def check_index(i, bound: int, what: str = "index", exc=InvalidIndex) -> int:
    """Validate a single index against a dimension bound.

    Type errors always raise :class:`InvalidIndex`; out-of-range values
    raise ``exc`` (``InvalidIndex`` by default, but object methods pass
    :class:`IndexOutOfBounds` to keep the execution-error classification).
    """
    i = coerce_index(i, what)
    if i < 0 or i >= bound:
        raise exc(f"{what} {i} out of range [0, {bound})")
    return i
