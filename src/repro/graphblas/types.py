"""GraphBLAS domains (``GrB_Type``).

The C API predefines eleven types; implementations map them onto machine
types.  Here each :class:`Type` wraps a NumPy dtype so that all kernels can
run vectorized.  User-defined types (``GrB_Type_new``) are supported through
arbitrary NumPy dtypes (including structured dtypes and ``object``); kernels
fall back to pure-Python loops when ufunc paths are unavailable.

Typecasting follows the C API rules: any built-in type casts to any other
built-in type, with C semantics (bool <-> int <-> float truncation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .errors import DomainMismatch

__all__ = [
    "Type",
    "BOOL",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "UINT8",
    "UINT16",
    "UINT32",
    "UINT64",
    "FP32",
    "FP64",
    "BUILTIN_TYPES",
    "lookup_type",
    "unify_types",
]


@dataclass(frozen=True)
class Type:
    """An element domain: a named wrapper over a NumPy dtype.

    Parameters
    ----------
    name:
        The GraphBLAS name, e.g. ``"INT32"``.
    np_dtype:
        The backing NumPy dtype.
    builtin:
        True for the eleven predefined C API types.
    """

    name: str
    np_dtype: np.dtype = field(compare=False)
    builtin: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:  # normalize the dtype
        object.__setattr__(self, "np_dtype", np.dtype(self.np_dtype))

    @property
    def is_signed(self) -> bool:
        return self.np_dtype.kind == "i"

    @property
    def is_unsigned(self) -> bool:
        return self.np_dtype.kind == "u"

    @property
    def is_integral(self) -> bool:
        return self.np_dtype.kind in "iub"

    @property
    def is_float(self) -> bool:
        return self.np_dtype.kind == "f"

    @property
    def is_bool(self) -> bool:
        return self.np_dtype.kind == "b"

    def cast_array(self, values: np.ndarray) -> np.ndarray:
        """Cast ``values`` into this domain with C-style conversion."""
        values = np.asarray(values)
        if values.dtype == self.np_dtype:
            return values
        if not self.builtin:
            if values.dtype != self.np_dtype:
                raise DomainMismatch(
                    f"cannot typecast to user-defined type {self.name}"
                )
            return values
        if self.is_bool:
            return values.astype(bool)
        # C-style: float -> int truncates toward zero; NumPy astype does this.
        with np.errstate(invalid="ignore", over="ignore"):
            return values.astype(self.np_dtype)

    def cast_scalar(self, value):
        """Cast a Python scalar into this domain."""
        return self.cast_array(np.asarray(value)).item() if self.builtin else value

    def zero(self):
        """The zero value of the domain (used by the dense reference)."""
        return np.zeros(1, dtype=self.np_dtype)[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Type({self.name})"


BOOL = Type("BOOL", np.bool_, builtin=True)
INT8 = Type("INT8", np.int8, builtin=True)
INT16 = Type("INT16", np.int16, builtin=True)
INT32 = Type("INT32", np.int32, builtin=True)
INT64 = Type("INT64", np.int64, builtin=True)
UINT8 = Type("UINT8", np.uint8, builtin=True)
UINT16 = Type("UINT16", np.uint16, builtin=True)
UINT32 = Type("UINT32", np.uint32, builtin=True)
UINT64 = Type("UINT64", np.uint64, builtin=True)
FP32 = Type("FP32", np.float32, builtin=True)
FP64 = Type("FP64", np.float64, builtin=True)

BUILTIN_TYPES: tuple[Type, ...] = (
    BOOL,
    INT8,
    INT16,
    INT32,
    INT64,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
    FP32,
    FP64,
)

_BY_NAME = {t.name: t for t in BUILTIN_TYPES}
_BY_DTYPE = {t.np_dtype: t for t in BUILTIN_TYPES}


def lookup_type(spec) -> Type:
    """Resolve a :class:`Type` from a Type, name, dtype, or Python type."""
    if isinstance(spec, Type):
        return spec
    if isinstance(spec, str):
        try:
            return _BY_NAME[spec.upper()]
        except KeyError:
            raise DomainMismatch(f"unknown type name {spec!r}") from None
    if spec is bool:
        return BOOL
    if spec is int:
        return INT64
    if spec is float:
        return FP64
    dt = np.dtype(spec)
    if dt in _BY_DTYPE:
        return _BY_DTYPE[dt]
    return Type(str(dt), dt, builtin=False)


_RANK = {t.name: r for r, t in enumerate(BUILTIN_TYPES)}


def unify_types(a: Type, b: Type) -> Type:
    """Pick the output domain for a polymorphic two-input operation.

    Mirrors SuiteSparse behaviour: use NumPy promotion between the two
    built-in domains, so ``INT32 + FP64 -> FP64`` etc.  User-defined types
    must match exactly.
    """
    if a == b:
        return a
    if not (a.builtin and b.builtin):
        raise DomainMismatch(f"cannot unify {a.name} with {b.name}")
    dt = np.promote_types(a.np_dtype, b.np_dtype)
    if dt in _BY_DTYPE:
        return _BY_DTYPE[dt]
    # e.g. int64 + uint64 -> float64 promotion
    return _BY_DTYPE[np.dtype(np.float64)]
