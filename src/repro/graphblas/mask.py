"""The spec's output-write step: ``C<M> (+)= T`` with replace.

Every GraphBLAS operation ends identically (C API section 2.5): the
operation's intermediate result ``T`` is merged into the output ``C``
through the optional accumulator, and the (optionally complemented,
optionally structural) mask plus the REPLACE descriptor decide which
positions of ``C`` survive.  Implementing this *once* and funnelling every
operation through it is what makes the mask/accum algebra consistent across
the whole API — and it is where conformance tests hammer hardest.

The merge rules:

* no accum:  ``Z = T``;
* accum ⊕:   ``Z(i,j) = C(i,j) ⊕ T(i,j)`` where both exist, else whichever
  exists;

then

* ``C_out(i,j) = Z(i,j)``  where the mask admits (i,j) and Z has an entry;
* ``C_out(i,j) = C(i,j)``  where the mask rejects (i,j), REPLACE is off, and
  C has an entry;
* absent otherwise.
"""

from __future__ import annotations

import numpy as np

from .coords import coords_in, idx_in, match_coo, match_idx
from .descriptor import Descriptor
from .errors import DimensionMismatch, DomainMismatch
from .matrix import Matrix
from .ops import BinaryOp
from .types import BOOL
from .vector import Vector

__all__ = ["write_matrix", "write_vector", "mask_true_coords", "mask_true_idx"]

_INDEX = np.int64


def mask_true_coords(mask: Matrix | None, desc: Descriptor):
    """The mask's admitted coordinate set (before complementing), or None.

    With a *structural* mask every stored entry admits; otherwise only
    entries whose value casts to True.
    """
    if mask is None:
        return None
    mr, mc, mv = mask.extract_tuples()
    if not desc.structural_mask:
        keep = BOOL.cast_array(mv)
        mr, mc = mr[keep], mc[keep]
    return mr, mc


def mask_true_idx(mask: Vector | None, desc: Descriptor):
    if mask is None:
        return None
    mi, mv = mask.extract_tuples()
    if not desc.structural_mask:
        keep = BOOL.cast_array(mv)
        mi = mi[keep]
    return mi


def write_matrix(
    C: Matrix,
    T_rows: np.ndarray,
    T_cols: np.ndarray,
    T_vals: np.ndarray,
    mask: Matrix | None = None,
    accum: BinaryOp | None = None,
    desc: Descriptor = Descriptor(),
    sorted_unique: bool = False,
) -> Matrix:
    """Merge an operation result ``T`` (COO form) into ``C`` in place.

    ``sorted_unique`` — caller asserts ``T`` is row-major sorted with no
    duplicate coordinates; lets the plain ``C = T`` overwrite skip the
    rebuild's sort/dedup pass.  Ignored whenever an accumulator or mask
    merge could disturb the ordering.
    """
    if mask is not None and mask.shape != C.shape:
        raise DimensionMismatch(
            f"mask shape {mask.shape} != output shape {C.shape}"
        )
    if accum is not None and accum.positional:
        raise DomainMismatch("positional ops cannot be accumulators")
    T_rows = np.asarray(T_rows, dtype=_INDEX)
    T_cols = np.asarray(T_cols, dtype=_INDEX)
    T_vals = np.asarray(T_vals)

    if accum is None:
        zr, zc, zv = T_rows, T_cols, C.dtype.cast_array(T_vals)
    else:
        cr, cc, cv = C.extract_tuples()
        ia, ib, only_c, only_t = match_coo(cr, cc, T_rows, T_cols)
        both = accum.apply(cv[ia], T_vals[ib], C.dtype)
        zr = np.concatenate([cr[ia], cr[only_c], T_rows[only_t]])
        zc = np.concatenate([cc[ia], cc[only_c], T_cols[only_t]])
        zv = np.concatenate(
            [both, cv[only_c], C.dtype.cast_array(T_vals[only_t])]
        )

    mt = mask_true_coords(mask, desc)
    if mt is None:
        out_r, out_c, out_v = zr, zc, zv
        if not desc.replace and accum is None and mask is None:
            # plain C = T: full overwrite per spec
            pass
    else:
        mr, mc = mt
        admit_z = coords_in(zr, zc, mr, mc)
        if desc.complement_mask:
            admit_z = ~admit_z
        out_r, out_c, out_v = zr[admit_z], zc[admit_z], zv[admit_z]
        if not desc.replace:
            cr, cc, cv = C.extract_tuples()
            in_mask = coords_in(cr, cc, mr, mc)
            if desc.complement_mask:
                in_mask = ~in_mask
            keep = ~in_mask  # C entries outside the (effective) mask survive
            if np.any(keep):
                out_r = np.concatenate([out_r, cr[keep]])
                out_c = np.concatenate([out_c, cc[keep]])
                out_v = np.concatenate([out_v, cv[keep]])

    replaced = Matrix(C.dtype, C.nrows, C.ncols)
    replaced.build(
        out_r,
        out_c,
        out_v,
        dup=None,
        # the hint survives only the paths that leave T's ordering intact:
        # no accum merge and no mask (mask filtering would preserve order,
        # but the no-replace keep-concat does not — keep the guard simple)
        assume_sorted_unique=sorted_unique and accum is None and mt is None,
    )
    # adopt the rebuilt store in place, preserving C's format preference
    fmt = C.format
    C._store = replaced._store
    C._pend_i, C._pend_j = [], []
    C._pend_v, C._pend_del = [], []
    C._alt = None
    if fmt != C.format:
        C.set_format(fmt)
    return C


def write_vector(
    w: Vector,
    T_idx: np.ndarray,
    T_vals: np.ndarray,
    mask: Vector | None = None,
    accum: BinaryOp | None = None,
    desc: Descriptor = Descriptor(),
) -> Vector:
    """Merge an operation result ``t`` (sparse 1-D form) into ``w`` in place.

    ``T_idx`` must be sorted and duplicate-free.
    """
    if mask is not None and mask.size != w.size:
        raise DimensionMismatch(f"mask size {mask.size} != output size {w.size}")
    if accum is not None and accum.positional:
        raise DomainMismatch("positional ops cannot be accumulators")
    T_idx = np.asarray(T_idx, dtype=_INDEX)
    T_vals = np.asarray(T_vals)

    if accum is None:
        zi, zv = T_idx, w.dtype.cast_array(T_vals)
    else:
        wi, wv = w.extract_tuples()
        ia, ib, only_w, only_t = match_idx(wi, T_idx)
        both = accum.apply(wv[ia], T_vals[ib], w.dtype)
        zi = np.concatenate([wi[ia], wi[only_w], T_idx[only_t]])
        zv = np.concatenate([both, wv[only_w], w.dtype.cast_array(T_vals[only_t])])
        order = np.argsort(zi, kind="stable")
        zi, zv = zi[order], zv[order]

    mt = mask_true_idx(mask, desc)
    if mt is not None:
        admit_z = idx_in(zi, mt)
        if desc.complement_mask:
            admit_z = ~admit_z
        out_i, out_v = zi[admit_z], zv[admit_z]
        if not desc.replace:
            wi, wv = w.extract_tuples()
            in_mask = idx_in(wi, mt)
            if desc.complement_mask:
                in_mask = ~in_mask
            keep = ~in_mask
            if np.any(keep):
                out_i = np.concatenate([out_i, wi[keep]])
                out_v = np.concatenate([out_v, wv[keep]])
    else:
        out_i, out_v = zi, zv

    replaced = Vector(w.dtype, w.size)
    replaced.build(out_i, out_v, dup=None)
    w.indices = replaced.indices
    w.values = replaced.values
    w._pend_i, w._pend_v, w._pend_del = [], [], []
    return w
