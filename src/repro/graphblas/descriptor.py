"""``GrB_Descriptor``: per-call behaviour modifiers.

Descriptors select input transposition (INP0/INP1), mask complementing and
structural interpretation, and output REPLACE semantics — the knobs visible
in Figure 2(d)'s ``Desc_TranA_ScmpM_Replace``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace

__all__ = ["Descriptor", "NULL_DESC", "desc"]


@dataclass(frozen=True)
class Descriptor:
    """Immutable descriptor; compose with the ``&`` operator or keywords."""

    transpose_a: bool = False  # INP0: use A^T
    transpose_b: bool = False  # INP1: use B^T
    complement_mask: bool = False  # MASK: use !M
    structural_mask: bool = False  # MASK: structure only, ignore values
    replace: bool = False  # OUTP: clear C before writing
    nthreads: int | None = None  # GxB_NTHREADS: worker-count hint

    def __and__(self, other: "Descriptor") -> "Descriptor":
        return Descriptor(
            self.transpose_a or other.transpose_a,
            self.transpose_b or other.transpose_b,
            self.complement_mask or other.complement_mask,
            self.structural_mask or other.structural_mask,
            self.replace or other.replace,
            self.nthreads if self.nthreads is not None else other.nthreads,
        )

    def with_(self, **kwargs) -> "Descriptor":
        return _dc_replace(self, **kwargs)


NULL_DESC = Descriptor()

# Named descriptors matching the C API's predefined GrB_DESC_* set.
T0 = Descriptor(transpose_a=True)
T1 = Descriptor(transpose_b=True)
T0T1 = Descriptor(transpose_a=True, transpose_b=True)
C = Descriptor(complement_mask=True)
S = Descriptor(structural_mask=True)
SC = Descriptor(complement_mask=True, structural_mask=True)
R = Descriptor(replace=True)
RC = Descriptor(replace=True, complement_mask=True)
RS = Descriptor(replace=True, structural_mask=True)
RSC = Descriptor(replace=True, complement_mask=True, structural_mask=True)

_NAMED = {
    "T0": T0,
    "T1": T1,
    "T0T1": T0T1,
    "C": C,
    "S": S,
    "SC": SC,
    "R": R,
    "RC": RC,
    "RS": RS,
    "RSC": RSC,
    "NULL": NULL_DESC,
}


def desc(spec) -> Descriptor:
    """Resolve a Descriptor from a Descriptor, None, or predefined name."""
    if spec is None:
        return NULL_DESC
    if isinstance(spec, Descriptor):
        return spec
    try:
        return _NAMED[str(spec).upper()]
    except KeyError:
        from .errors import InvalidValue

        raise InvalidValue(f"unknown descriptor {spec!r}") from None
