"""The ``GrB_Scalar`` object: a zero- or one-entry container.

Scalars carry "value or no value" semantics: reductions into a scalar of an
empty object leave the scalar empty rather than storing the monoid identity.
"""

from __future__ import annotations

from .errors import NoValue
from .types import Type, lookup_type

__all__ = ["Scalar"]


class Scalar:
    """A typed scalar that may be empty (``nvals`` is 0 or 1)."""

    __slots__ = ("dtype", "_value", "_has")

    def __init__(self, dtype, value=None):
        self.dtype: Type = lookup_type(dtype)
        self._has = value is not None
        self._value = self.dtype.cast_scalar(value) if value is not None else None

    @classmethod
    def new(cls, dtype) -> "Scalar":
        return cls(dtype)

    @property
    def nvals(self) -> int:
        return 1 if self._has else 0

    @property
    def is_empty(self) -> bool:
        return not self._has

    def set(self, value) -> "Scalar":
        self._value = self.dtype.cast_scalar(value)
        self._has = True
        return self

    def clear(self) -> "Scalar":
        self._value = None
        self._has = False
        return self

    @property
    def value(self):
        if not self._has:
            raise NoValue("scalar is empty")
        return self._value

    def get(self, default=None):
        return self._value if self._has else default

    def dup(self) -> "Scalar":
        out = Scalar(self.dtype)
        if self._has:
            out.set(self._value)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = repr(self._value) if self._has else "<empty>"
        return f"Scalar({self.dtype.name}, {inner})"
