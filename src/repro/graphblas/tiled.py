"""Tiled, spill-to-disk execution: bounded-memory SpGEMM and mxv.

The governor's admission control (PR 4) answered an oversized operation
with "fail or degrade".  This module turns that into "run anyway, bounded
memory": a :class:`TiledMatrix` partitions a matrix into a 2D grid of
hypersparse blocks, SpGEMM/mxv are scheduled tile by tile, and cold tiles
are spilled to disk as atomic ``.npz`` files and reloaded on demand under
an LRU byte budget (:class:`SpillPool`).  The dispatcher routes a plan
here when the governor tagged it over-budget (see
:meth:`~repro.graphblas.governor.ExecutionContext.admit`) or when the
caller asked for ``method="tiled"`` explicitly.

**Bit-identity.**  Tiled results are bit-identical to the in-memory
kernels, floats included.  The in-memory Gustavson path folds each output
entry's partial products in ascending-``k`` order with one sequential
segment reduction; the tiled path reproduces that fold exactly by keeping
partial products *unreduced* across inner tiles, concatenating them in
ascending ``k``-tile order (within-tile expansion is already
``k``-ascending per row), stable-sorting by output coordinate, and
reducing once per output stripe.  Reducing per tile and folding across
tiles would regroup floating-point sums; collecting first does not.  The
same argument covers mxv: push and pull both fold ascending-``k`` per
output index, and so does the tiled expansion.

**Fault hardening.**  Spill writes go through the atomic temp-file +
rename writer shared with :mod:`repro.io.checkpoint`, tripping the
``io.write`` / ``io.read`` fault points; transient failures are retried
with the governing context's seeded
:class:`~repro.graphblas.governor.RetryPolicy` (or a default policy that
also treats ``OSError`` as transient).  A crash mid-spill leaves only a
``*.tmp.*`` file, rolled back by :func:`rollback_partial_spills`;
:meth:`SpillPool.close` removes every tile file, so a failed operation
leaves operands bit-identical and no orphaned tiles on disk.
Cancellation and deadlines are polled at every tile boundary.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
from collections import OrderedDict

import numpy as np

from . import engine, faults, governor, telemetry
from .errors import InvalidValue, OutOfMemory
from .formats import Orientation, SparseStore, group_starts
from .mxm import _gather_ranges, _pair_group_starts, _positional_values
from .mxv import _vec_positional
from .plan import resolve_semiring
from .types import lookup_type

__all__ = [
    "TiledMatrix",
    "SpillPool",
    "mxm_tiled",
    "mxv_tiled",
    "choose_tile_dim",
    "rollback_partial_spills",
    "execute",
    "DEFAULT_TILE_DIM",
    "MIN_TILE_DIM",
]

_INDEX = np.int64

#: Tile edge used when no budget information is available.
DEFAULT_TILE_DIM = 4096

#: Smallest tile edge the budget heuristic will choose.
MIN_TILE_DIM = 64

# Lazily bound to repro.io.checkpoint.atomic_write_npz (the import is
# deferred because repro.io imports this package back at load time).
_atomic_write_npz = None


def _atomic_writer():
    global _atomic_write_npz
    if _atomic_write_npz is None:
        from ..io.checkpoint import atomic_write_npz

        _atomic_write_npz = atomic_write_npz
    return _atomic_write_npz


def rollback_partial_spills(directory) -> list:
    """Remove leftover ``*.tmp.*`` files from interrupted spill writes.

    An atomic spill that crashed between opening its temp file and the
    rename leaves a ``<tile>.npz.tmp.<pid>`` file behind; completed tile
    files never have that infix.  Returns the paths removed.
    """
    removed = []
    directory = str(directory)
    if not os.path.isdir(directory):
        return removed
    for fname in os.listdir(directory):
        if ".tmp." in fname:
            path = os.path.join(directory, fname)
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - racing cleanup is fine
                continue
            removed.append(path)
    return removed


# --------------------------------------------------------------------------
# the spill pool
# --------------------------------------------------------------------------

class SpillPool:
    """LRU byte budget over resident tiles, spilling cold ones to disk.

    Tiles are immutable once :meth:`put`: a tile is written to disk at
    most once (first eviction) and later evictions merely drop the
    in-memory copy.  All spill I/O runs on the coordinating thread —
    worker threads of the parallel engine never touch the pool — so the
    thread-local fault/telemetry/governor machinery observes every
    spill and reload.
    """

    def __init__(self, budget: int | None = None, directory=None,
                 retry=None) -> None:
        if budget is None:
            budget = governor.spill_config()[2]
        self.budget = max(0, int(budget))
        base = directory if directory is not None else governor.spill_config()[1]
        if base is None:
            base = tempfile.gettempdir()
        base = str(base)
        os.makedirs(base, exist_ok=True)
        # Partial-spill rollback: a crashed predecessor using this
        # directory can only have left *.tmp.* files (the atomic writer
        # renames completed tiles); remove them before reusing the space.
        self.rolled_back = rollback_partial_spills(base)
        self.dir = tempfile.mkdtemp(prefix="gbspill-", dir=base)
        self._retry = retry if retry is not None else governor.RetryPolicy(
            attempts=3, base_delay=0.005, jitter=0.5, seed=0,
            transient=(OSError, OutOfMemory),
        )
        self._lock = threading.RLock()
        self._resident: OrderedDict[str, SparseStore] = OrderedDict()
        self._nbytes: dict[str, int] = {}
        self._on_disk: set[str] = set()
        self._resident_bytes = 0
        self._names = 0
        self._closed = False
        self.stats = {
            "tiles": 0, "spills": 0, "reloads": 0, "evictions": 0,
            "spilled_bytes": 0, "reloaded_bytes": 0,
        }

    # -- naming -------------------------------------------------------------

    def unique_name(self, prefix: str = "t") -> str:
        with self._lock:
            self._names += 1
            return f"{prefix}{self._names}"

    def _path(self, key: str) -> str:
        return os.path.join(self.dir, key.replace("/", "_") + ".npz")

    # -- tile lifecycle -----------------------------------------------------

    def put(self, key: str, store: SparseStore) -> None:
        """Register an immutable tile; may spill LRU tiles to stay in budget."""
        with self._lock:
            if key in self._nbytes:
                raise InvalidValue(f"tile {key!r} already in the pool")
            nbytes = int(store.nbytes)
            self._nbytes[key] = nbytes
            self._resident[key] = store
            self._resident_bytes += nbytes
            self.stats["tiles"] += 1
            self._evict()

    def get(self, key: str) -> SparseStore:
        """Fetch a tile, reloading from disk (with retry) if it was spilled."""
        with self._lock:
            store = self._resident.get(key)
            if store is not None:
                self._resident.move_to_end(key)
                return store
            if key not in self._nbytes:
                raise InvalidValue(f"unknown tile {key!r}")
            store = self._load(key)
            self._resident[key] = store
            self._resident_bytes += self._nbytes[key]
            self._evict(keep=key)
            return store

    @property
    def resident_bytes(self) -> int:
        return self._resident_bytes

    def _evict(self, keep: str | None = None) -> None:
        while self._resident_bytes > self.budget:
            victim = next(
                (k for k in self._resident if k != keep), None
            )
            if victim is None:
                break  # only the pinned tile remains; it must stay usable
            store = self._resident.pop(victim)
            if victim not in self._on_disk:
                try:
                    self._spill(victim, store)
                except BaseException:
                    # failed spill: the tile stays resident (MRU) so the
                    # operation can still be retried or fail cleanly with
                    # operands untouched — nothing was lost
                    self._resident[victim] = store
                    raise
            self._resident_bytes -= self._nbytes[victim]
            self.stats["evictions"] += 1

    # -- disk I/O (fault-injected, retried) ---------------------------------

    def _spill(self, key: str, store: SparseStore) -> None:
        path = self._path(key)
        meta = np.array(
            [store.n_major, store.n_minor,
             1 if store.orientation is Orientation.ROW else 0],
            dtype=_INDEX,
        )
        payload = {
            "meta": meta,
            "indptr": store.indptr,
            "minor": store.minor,
            "values": store.values,
        }
        if store.h is not None:
            payload["h"] = store.h
        write = _atomic_writer()
        nbytes = self._retry.call(lambda: write(path, payload), op="tile.spill")
        self._on_disk.add(key)
        self.stats["spills"] += 1
        self.stats["spilled_bytes"] += int(nbytes)
        if telemetry.ENABLED:
            telemetry.decision("governor.spill", tile=key, bytes=int(nbytes))
            telemetry.tally("governor.spill", calls=1, bytes_moved=int(nbytes))

    def _load(self, key: str) -> SparseStore:
        path = self._path(key)

        def _read() -> SparseStore:
            if faults.ENABLED:
                faults.trip("io.read")
            with np.load(path, allow_pickle=False) as z:
                meta = z["meta"]
                h = z["h"] if "h" in z.files else None
                return SparseStore(
                    Orientation.ROW if int(meta[2]) else Orientation.COL,
                    int(meta[0]),
                    int(meta[1]),
                    h,
                    z["indptr"],
                    z["minor"],
                    z["values"],
                )

        store = self._retry.call(_read, op="tile.reload")
        self.stats["reloads"] += 1
        self.stats["reloaded_bytes"] += int(store.nbytes)
        if telemetry.ENABLED:
            telemetry.decision("governor.reload", tile=key,
                               bytes=int(store.nbytes))
            telemetry.tally("governor.reload", calls=1,
                            bytes_moved=int(store.nbytes))
        return store

    def drop(self, key: str) -> None:
        """Forget a tile entirely — memory and disk file.

        Used for transient intermediates (chunk pieces of an output
        stripe) so they don't outlive the stripe that produced them.
        Unknown keys are ignored.
        """
        with self._lock:
            if key not in self._nbytes:
                return
            if key in self._resident:
                self._resident.pop(key)
                self._resident_bytes -= self._nbytes[key]
            if key in self._on_disk:
                self._on_disk.discard(key)
                try:
                    os.unlink(self._path(key))
                except OSError:  # pragma: no cover - already gone is fine
                    pass
            del self._nbytes[key]

    # -- teardown -----------------------------------------------------------

    def close(self) -> None:
        """Remove every tile file and the pool directory (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._resident.clear()
            self._resident_bytes = 0
            shutil.rmtree(self.dir, ignore_errors=True)

    def __enter__(self) -> "SpillPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# --------------------------------------------------------------------------
# the tiled matrix
# --------------------------------------------------------------------------

def choose_tile_dim(n_major: int, n_minor: int, est_bytes: int | None = None,
                    budget: int | None = None) -> int:
    """Pick a tile edge so one output stripe's expansion fits the budget.

    Targets roughly ``budget / 6`` bytes of expanded partial products per
    stripe (the sort and reduce passes hold a small constant multiple of
    the expansion), clamped to ``[MIN_TILE_DIM, max(n_major, n_minor)]``.
    """
    n = max(int(n_major), int(n_minor), 1)
    if budget is None or not est_bytes or est_bytes <= 0:
        return max(1, min(n, DEFAULT_TILE_DIM))
    target = max(int(budget) // 6, 1 << 16)
    per_row = max(int(est_bytes) // max(int(n_major), 1), 1)
    td = target // per_row
    return int(min(max(td, MIN_TILE_DIM), n))


def _group_by_tile(minor: np.ndarray, tile_dim: int):
    """Yield ``(tile_col, index_array)`` in ascending tile column.

    The grouping sort is stable, so entries inside each group keep their
    original (major, minor) order — the invariant the tile constructors
    rely on (``assume_sorted_unique``).
    """
    jb = minor // tile_dim
    order = np.argsort(jb, kind="stable")
    jb_sorted = jb[order]
    starts = group_starts(jb_sorted)
    ends = np.append(starts[1:], jb_sorted.size)
    for s, e in zip(starts, ends):
        yield int(jb_sorted[s]), order[s:e]


class TiledMatrix:
    """A matrix as a 2D grid of hypersparse tiles registered in a pool.

    The grid lives in the major/minor space of the store it was built
    from: ``nrows`` is the store's major dimension.  Only non-empty tiles
    exist; each is a row-oriented hypersparse
    :class:`~repro.graphblas.formats.SparseStore` with tile-local
    coordinates, held by a :class:`SpillPool` that spills cold tiles to
    disk under its byte budget.
    """

    def __init__(self, nrows: int, ncols: int, tile_dim: int, dtype,
                 pool: SpillPool, *, name: str | None = None) -> None:
        if tile_dim < 1:
            raise InvalidValue(f"tile_dim must be >= 1, got {tile_dim}")
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.tile_dim = int(tile_dim)
        self.dtype = dtype
        self.pool = pool
        self.name = name if name is not None else pool.unique_name("M")
        self.grid_rows = -(-self.nrows // self.tile_dim) if self.nrows else 0
        self.grid_cols = -(-self.ncols // self.tile_dim) if self.ncols else 0
        self._keys: dict[tuple[int, int], str] = {}

    # -- construction -------------------------------------------------------

    @classmethod
    def from_store(cls, store: SparseStore, tile_dim: int, pool: SpillPool,
                   *, dtype=None, name: str | None = None) -> "TiledMatrix":
        """Partition a major-oriented store into a 2D tile grid."""
        if dtype is None:
            dtype = lookup_type(store.values.dtype)
        t = cls(store.n_major, store.n_minor, tile_dim, dtype, pool, name=name)
        td = t.tile_dim
        for bi in range(t.grid_rows):
            governor.poll()
            maj, minr, vals = store.major_slab(bi * td, (bi + 1) * td)
            if maj.size == 0:
                continue
            maj_loc = maj - bi * td
            for bj, idx in _group_by_tile(minr, td):
                t._put_tile(
                    bi, bj, maj_loc[idx], minr[idx] - bj * td, vals[idx]
                )
        return t

    @classmethod
    def from_matrix(cls, A, tile_dim: int, pool: SpillPool,
                    *, name: str | None = None) -> "TiledMatrix":
        """Tile a :class:`~repro.graphblas.matrix.Matrix` (waits pending
        updates through the epoch machinery first)."""
        return cls.from_store(A.by_row(), tile_dim, pool, dtype=A.dtype,
                              name=name)

    def _tile_shape(self, bi: int, bj: int) -> tuple[int, int]:
        td = self.tile_dim
        return (min(td, self.nrows - bi * td), min(td, self.ncols - bj * td))

    def _put_tile(self, bi: int, bj: int, maj_loc, min_loc, vals) -> None:
        nmaj, nmin = self._tile_shape(bi, bj)
        store = SparseStore.from_coo(
            Orientation.ROW, nmaj, nmin, maj_loc, min_loc, vals, self.dtype,
            hyper=True, assume_sorted_unique=True,
        )
        key = f"{self.name}/{bi}.{bj}"
        self.pool.put(key, store)
        self._keys[(bi, bj)] = key

    # -- access -------------------------------------------------------------

    def tile(self, bi: int, bj: int) -> SparseStore | None:
        """The (bi, bj) tile store, or None when that tile is empty."""
        key = self._keys.get((bi, bj))
        return None if key is None else self.pool.get(key)

    def major_lengths(self) -> np.ndarray:
        """Entries per global major index, in one pass over the grid.

        The tiled SpGEMM uses this to predict each output row's expansion
        size (``sum of B-row lengths over A's row entries``) so stripes
        can be folded in bounded-memory row chunks.
        """
        lens = np.zeros(self.nrows, dtype=np.int64)
        td = self.tile_dim
        for (bi, bj) in sorted(self._keys):
            governor.poll()
            t = self.tile(bi, bj)
            d = np.diff(t.indptr)
            if t.h is not None:
                lens[t.h + bi * td] += d  # h is unique within one tile
            else:
                lens[bi * td:bi * td + d.size] += d
        return lens

    @property
    def nvals(self) -> int:
        return sum(self.tile(bi, bj).nvals for (bi, bj) in self._keys)

    def iter_stripes(self, max_bytes: int | None = None):
        """Yield ``(rows, cols, values)`` blocks, ascending rows.

        Entries in each block are sorted (row, col) and globally indexed.
        By default one block per tile stripe; with ``max_bytes`` a skewed
        stripe (far more entries than its siblings) is further split into
        row runs of roughly that many coordinate bytes, sized from the
        exact per-row counts, so streaming consumers (checksums, exports)
        hold a bounded block no matter how lopsided the matrix is.
        """
        if max_bytes is None:
            for bi in range(self.grid_rows):
                stripe = self._stripe_coo(bi)
                if stripe is not None:
                    yield stripe
            return
        lens = self.major_lengths()
        target = max(int(max_bytes), 1 << 16) // 24
        td = self.tile_dim
        for bi in range(self.grid_rows):
            rows_here = min(td, self.nrows - bi * td)
            row_lens = lens[bi * td:bi * td + rows_here]
            for lo, hi in _chunk_bounds(row_lens, target):
                governor.poll()
                parts_i, parts_j, parts_v = [], [], []
                for bj in range(self.grid_cols):
                    tile = self.tile(bi, bj)
                    if tile is None:
                        continue
                    maj, minr, v = tile.major_slab(lo, hi)
                    if maj.size == 0:
                        continue
                    parts_i.append(maj + bi * td)
                    parts_j.append(minr + bj * td)
                    parts_v.append(v)
                if not parts_i:
                    continue
                i = np.concatenate(parts_i)
                j = np.concatenate(parts_j)
                v = np.concatenate(parts_v)
                order = np.lexsort((j, i))
                yield i[order], j[order], v[order]

    def _stripe_coo(self, bi: int):
        td = self.tile_dim
        parts_i, parts_j, parts_v = [], [], []
        for bj in range(self.grid_cols):
            tile = self.tile(bi, bj)
            if tile is None or tile.nvals == 0:
                continue
            il, jl, v = tile.to_coo()
            parts_i.append(il + bi * td)
            parts_j.append(jl + bj * td)
            parts_v.append(v)
        if not parts_i:
            return None
        i = np.concatenate(parts_i)
        j = np.concatenate(parts_j)
        v = np.concatenate(parts_v)
        order = np.lexsort((j, i))  # entries are unique: canonical order
        return i[order], j[order], v[order]

    def to_coo(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All entries as globally indexed, sorted-unique COO arrays."""
        stripes = list(self.iter_stripes())
        if not stripes:
            return (
                np.empty(0, dtype=_INDEX),
                np.empty(0, dtype=_INDEX),
                np.empty(0, dtype=self.dtype.np_dtype),
            )
        return (
            np.concatenate([s[0] for s in stripes]),
            np.concatenate([s[1] for s in stripes]),
            np.concatenate([s[2] for s in stripes]),
        )

    def to_matrix(self):
        """Assemble back into a :class:`~repro.graphblas.matrix.Matrix`."""
        from .matrix import Matrix

        r, c, v = self.to_coo()
        return Matrix.from_coo(r, c, v, nrows=self.nrows, ncols=self.ncols,
                               dtype=self.dtype)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<TiledMatrix {self.nrows}x{self.ncols} tile_dim={self.tile_dim}"
            f" tiles={len(self._keys)}>"
        )


# --------------------------------------------------------------------------
# tiled kernels
# --------------------------------------------------------------------------

def _expand_pair(a_coo, b_tile, i0, k0, j0, mult, kern):
    """Unreduced partial products of one (I,K) x (K,J) tile pair.

    ``a_coo`` is the A-tile's (rows, cols, values) COO triple — possibly a
    row-restricted slice of it, when the stripe is folded in chunks.
    Pure numpy, thread-safe: no telemetry, faults, or governor access, so
    the engine may run several pairs on its shared pool.  Globalizes the
    coordinates with the tile origins so positional semirings see the same
    (i, k, j) the in-memory kernel would.
    """
    ar, ac, av = a_coo
    starts, ends = b_tile.major_ranges(ac)
    lens = ends - starts
    gather = _gather_ranges(starts, ends)
    if gather.size == 0:
        return None
    i = np.repeat(ar, lens) + i0
    j = b_tile.minor[gather] + j0
    if mult.positional is not None:
        k = np.repeat(ac, lens) + k0
        vals = _positional_values(mult, i, k, j)
    elif kern is not None:
        vals = kern.combine(np.repeat(av, lens), b_tile.values[gather])
    else:
        vals = mult.apply(np.repeat(av, lens), b_tile.values[gather])
    return i, j, vals


def _reduce_stripe(i, j, vals, semiring, out_type, kern, key_mult):
    """Fold one output stripe's partial products, bit-identical to the
    in-memory Gustavson chunk fold (same sort, same segment reduction)."""
    if key_mult is not None and i.size:
        key = i * key_mult + j
        order = np.argsort(key, kind="stable")
        i, j, vals = i[order], j[order], vals[order]
        key = key[order]
        change = np.empty(i.size, dtype=bool)
        change[0] = True
        np.not_equal(key[1:], key[:-1], out=change[1:])
        seg = np.flatnonzero(change).astype(_INDEX)
    else:
        order = np.lexsort((j, i))
        i, j, vals = i[order], j[order], vals[order]
        seg = _pair_group_starts(i, j)
    if seg.size != i.size:
        if kern is not None:
            vals = kern.segment_reduce(vals, seg)
        else:
            vals = semiring.add.reduce_segments(vals, seg, out_type)
        i, j = i[seg], j[seg]
    else:
        vals = out_type.cast_array(vals)
    return i, j, vals


def _chunk_bounds(counts: np.ndarray, target: int) -> list[tuple[int, int]]:
    """Partition rows into maximal runs whose summed counts fit ``target``.

    A single row over the target still forms its own chunk (the fold
    cannot split a row without changing the reduction order).
    """
    if counts.size == 0:
        return [(0, 0)]
    cum = np.cumsum(counts)
    if int(cum[-1]) <= target:
        return [(0, counts.size)]
    bounds = []
    lo = 0
    base = 0
    while lo < counts.size:
        hi = int(np.searchsorted(cum, base + target, side="right"))
        if hi <= lo:
            hi = lo + 1
        bounds.append((lo, hi))
        base = int(cum[hi - 1])
        lo = hi
    return bounds


def mxm_tiled(A: TiledMatrix, B: TiledMatrix, semiring="PLUS_TIMES",
              out_type=None, *, pool: SpillPool | None = None,
              name: str | None = None,
              chunk_bytes: int | None = None) -> TiledMatrix:
    """C = A (+).(x) B over tile grids; returns a tiled C.

    Per output stripe I, partial products are collected unreduced across
    inner tiles K in ascending order and folded once (see the module
    docstring for why this is bit-identical to the in-memory kernel).
    Output tiles are registered in ``pool`` as they are produced, so an
    over-budget product streams to disk instead of accumulating in RAM.
    Cancellation/deadline tokens are polled at every (I, K) boundary.

    ``chunk_bytes`` bounds the unreduced expansion held in memory at
    once: skewed stripes (RMAT hubs) are folded in row chunks sized from
    a per-row flop prediction (``B.major_lengths()``), and each chunk's
    output goes through the pool as a transient piece so not even one
    output stripe needs to be fully resident.  The fold decomposes
    exactly per output row — a row's partials never mix with another
    row's in the segment reduction — so any row partition yields bit
    for bit the same values.  Defaults to ``memory_budget / 6`` of the
    active governor context; with no budget the stripe is one chunk.
    """
    sr = resolve_semiring(semiring)
    if A.ncols != B.nrows:
        raise InvalidValue(f"inner dimensions differ: {A.ncols} vs {B.nrows}")
    if A.tile_dim != B.tile_dim:
        raise InvalidValue(
            f"tile dims differ: {A.tile_dim} vs {B.tile_dim}"
        )
    if out_type is None:
        out_type = sr.out_type(A.dtype, B.dtype)
    pool = pool if pool is not None else A.pool
    C = TiledMatrix(A.nrows, B.ncols, A.tile_dim, out_type, pool, name=name)
    mult = sr.mult
    kern = engine.kernel_for(sr, out_type, method="gustavson")
    key_mult = None
    if engine.ENABLED and 0 < C.ncols and C.nrows <= engine.KEY_LIMIT // max(C.ncols, 1):
        key_mult = np.int64(C.ncols)
    td = A.tile_dim

    if chunk_bytes is None:
        ctx = governor.current()
        if ctx is not None and ctx.memory_budget is not None:
            chunk_bytes = ctx.memory_budget // 6
    chunk_target = None
    b_rowlen = None
    if chunk_bytes is not None and chunk_bytes > 0:
        # ~24 B per unreduced partial (two int64 coords + a value)
        chunk_target = max(int(chunk_bytes), 1 << 20) // 24
        b_rowlen = B.major_lengths()

    for bi in range(A.grid_rows):
        rows_here = min(td, A.nrows - bi * td)
        # load this stripe's A entries once; predict per-row expansion
        a_data = []
        counts = None
        if chunk_target is not None:
            counts = np.zeros(rows_here, dtype=np.int64)
        for bk in range(A.grid_cols):
            governor.poll()  # tile boundary: cancellation/deadline point
            a_tile = A.tile(bi, bk)
            if a_tile is None or a_tile.nvals == 0:
                continue
            ar, ac, av = a_tile.to_coo()
            a_data.append((bk, ar, ac, av))
            if counts is not None:
                np.add.at(counts, ar, b_rowlen[ac + bk * td])
        if not a_data:
            continue
        if counts is None:
            bounds = [(0, rows_here)]
        else:
            bounds = _chunk_bounds(counts, chunk_target)

        piece_keys: dict[int, list[str]] = {}
        for ci, (lo, hi) in enumerate(bounds):
            parts = []
            for bk, ar, ac, av in a_data:
                governor.poll()  # tile boundary: cancellation/deadline point
                s = int(np.searchsorted(ar, lo))
                e = int(np.searchsorted(ar, hi))
                if s == e:
                    continue
                a_coo = (ar[s:e], ac[s:e], av[s:e])
                tasks = []
                for bj in range(B.grid_cols):
                    b_tile = B.tile(bk, bj)
                    if b_tile is None or b_tile.nvals == 0:
                        continue
                    tasks.append((a_coo, b_tile, bi * td, bk * td, bj * td,
                                  mult, kern))
                if not tasks:
                    continue
                workers = 1
                if (
                    engine.PARALLEL
                    and kern is not None
                    and len(tasks) >= engine.MIN_PARALLEL_TILES
                ):
                    requested = engine.requested_workers(None)
                    if requested > 1:
                        per_block = max(
                            a_coo[2].nbytes * 3
                            + max(t[1].nbytes for t in tasks),
                            1,
                        )
                        workers = governor.admit_workers(
                            requested, per_block, op="mxm.tiled"
                        )
                if workers > 1:
                    results = engine.run_blocks(
                        _expand_pair, tasks, min(workers, len(tasks))
                    )
                else:
                    results = [_expand_pair(*t) for t in tasks]
                parts.extend(r for r in results if r is not None)
            if not parts:
                continue
            i = np.concatenate([p[0] for p in parts])
            j = np.concatenate([p[1] for p in parts])
            vals = np.concatenate([p[2] for p in parts])
            del parts
            i, j, vals = _reduce_stripe(i, j, vals, sr, out_type, kern,
                                        key_mult)
            if i.size == 0:
                continue
            i_loc = i - bi * td
            if len(bounds) == 1:
                for bj, idx in _group_by_tile(j, td):
                    C._put_tile(bi, bj, i_loc[idx], j[idx] - bj * td,
                                vals[idx])
                continue
            # chunked stripe: stash each chunk's slice of every output
            # tile in the pool so the stripe never fully materializes
            for bj, idx in _group_by_tile(j, td):
                nmin = min(td, C.ncols - bj * td)
                piece = SparseStore.from_coo(
                    Orientation.ROW, rows_here, nmin, i_loc[idx],
                    j[idx] - bj * td, vals[idx], out_type,
                    hyper=True, assume_sorted_unique=True,
                )
                pkey = f"{C.name}/p{bi}.{bj}.{ci}"
                pool.put(pkey, piece)
                piece_keys.setdefault(bj, []).append(pkey)
        # assemble grid tiles from their chunk pieces (row-ascending
        # chunks, so concatenation is already sorted-unique)
        for bj in sorted(piece_keys):
            keys = piece_keys[bj]
            coos = [pool.get(k).to_coo() for k in keys]
            if len(coos) == 1:
                i_loc, j_loc, v = coos[0]
            else:
                i_loc = np.concatenate([c[0] for c in coos])
                j_loc = np.concatenate([c[1] for c in coos])
                v = np.concatenate([c[2] for c in coos])
            del coos
            C._put_tile(bi, bj, i_loc, j_loc, v)
            for k in keys:
                pool.drop(k)
    return C


def mxv_tiled(A: TiledMatrix, u_dense: np.ndarray, u_present: np.ndarray,
              semiring, out_type, matrix_first: bool = True
              ) -> tuple[np.ndarray, np.ndarray]:
    """y = A (+).(x) u over an outer-major tile grid; sorted (idx, vals).

    ``A`` must be tiled from the store whose *major* axis is the output
    dimension (the pull orientation).  Per output stripe, partial
    products stream in ascending inner-tile order and are folded once —
    bit-identical to both the push and pull in-memory kernels, which fold
    ascending-``k`` per output index.
    """
    sr = resolve_semiring(semiring)
    mult = sr.mult
    kern = engine.kernel_for(sr, out_type, method="push")
    td = A.tile_dim
    out_i, out_v = [], []
    for bi in range(A.grid_rows):
        parts = []
        for bj in range(A.grid_cols):
            governor.poll()  # tile boundary: cancellation/deadline point
            tile = A.tile(bi, bj)
            if tile is None or tile.nvals == 0:
                continue
            il, kl, av = tile.to_coo()
            k = kl + bj * td
            sel = u_present[k]
            if not sel.any():
                continue
            m = il[sel] + bi * td
            k = k[sel]
            av = av[sel]
            if mult.positional is not None:
                vals = _vec_positional(mult.positional, k, m, matrix_first)
            elif kern is not None:
                u_v = u_dense[k]
                vals = kern.combine(av, u_v) if matrix_first \
                    else kern.combine(u_v, av)
            else:
                u_v = u_dense[k]
                vals = mult.apply(av, u_v) if matrix_first \
                    else mult.apply(u_v, av)
            parts.append((m, vals))
        if not parts:
            continue
        m = np.concatenate([p[0] for p in parts])
        vals = np.concatenate([p[1] for p in parts])
        order = np.argsort(m, kind="stable")
        m, vals = m[order], vals[order]
        change = np.empty(m.size, dtype=bool)
        change[0] = True
        np.not_equal(m[1:], m[:-1], out=change[1:])
        seg = np.flatnonzero(change).astype(_INDEX)
        if seg.size != m.size:
            if kern is not None:
                vals = kern.segment_reduce(vals, seg)
            else:
                vals = sr.add.reduce_segments(vals, seg, out_type)
            m = m[seg]
        else:
            vals = out_type.cast_array(vals)
        out_i.append(m)
        out_v.append(vals)
    if not out_i:
        return np.empty(0, dtype=_INDEX), np.empty(0, dtype=out_type.np_dtype)
    return np.concatenate(out_i), np.concatenate(out_v)


# --------------------------------------------------------------------------
# dispatch entry point
# --------------------------------------------------------------------------

def _spill_pool_for(plan) -> SpillPool:
    ctx = governor.current()
    if ctx is not None:
        sdir, sbudget = ctx.spill_settings()
        retry = ctx.retry
    else:
        _, sdir, sbudget = governor.spill_config()
        retry = None
    return SpillPool(budget=sbudget, directory=sdir, retry=retry)


def _plan_tile_dim(plan, n_major, n_minor) -> int:
    td = plan.params.get("tile_dim")
    if td:
        return int(td)
    ctx = governor.current()
    budget = ctx.memory_budget if ctx is not None else None
    return choose_tile_dim(n_major, n_minor, plan.params.get("est_bytes"),
                           budget)


def _report_pool(pool: SpillPool, op: str) -> None:
    """One ``governor.pool`` decision summarizing a plan's spill traffic.

    Pools are per-plan and closed immediately after use, so this is the
    record EXPLAIN reports and the metrics registry aggregate from —
    emitted before ``close()`` while the stats are still meaningful.
    """
    if not telemetry.ENABLED:
        return
    st = pool.stats
    telemetry.decision(
        "governor.pool", op=op, tiles=st["tiles"], spills=st["spills"],
        reloads=st["reloads"], evictions=st["evictions"],
        spilled_bytes=st["spilled_bytes"], reloaded_bytes=st["reloaded_bytes"],
        resident_bytes=pool.resident_bytes, budget=pool.budget,
    )


def execute(plan):
    """Serve a plan the governor re-planned as tiled (or an explicit
    ``method="tiled"`` request).  Called by the backend dispatcher."""
    if plan.op == "mxm":
        return _execute_mxm(plan)
    if plan.op in ("mxv", "vxm"):
        return _execute_matvec(plan)
    raise InvalidValue(f"tiled execution does not serve {plan.op!r}")


def _execute_mxm(plan):
    from .mask import write_matrix

    A, B = plan.args
    C, d, sr = plan.out, plan.desc, plan.operator
    a_rows = A.by_col().transposed() if d.transpose_a else A.by_row()
    b_rows = B.by_col().transposed() if d.transpose_b else B.by_row()
    td = _plan_tile_dim(plan, a_rows.n_major, b_rows.n_minor)
    if telemetry.ENABLED:
        telemetry.decision(
            "governor.tile_plan", op="mxm", tile_dim=td,
            est_bytes=plan.params.get("est_bytes"),
        )
    pool = _spill_pool_for(plan)
    try:
        A_t = TiledMatrix.from_store(a_rows, td, pool, dtype=A.dtype)
        B_t = TiledMatrix.from_store(b_rows, td, pool, dtype=B.dtype)
        C_t = mxm_tiled(A_t, B_t, sr, plan.out_type, pool=pool)
        tr, tc, tv = C_t.to_coo()
    finally:
        _report_pool(pool, "mxm")
        pool.close()
    return write_matrix(
        C, tr, tc, tv, mask=plan.mask, accum=plan.accum, desc=d,
        # the stripe assembly guarantees sorted-unique output
        sorted_unique=True,
    )


def _execute_matvec(plan):
    from .mask import write_vector

    p = plan.params
    is_mxv = p["is_mxv"]
    A, u = plan.args if is_mxv else (plan.args[1], plan.args[0])
    w, d, sr = plan.out, plan.desc, plan.operator
    store = A.by_col().transposed() if p["transposed"] else A.by_row()
    td = _plan_tile_dim(plan, store.n_major, store.n_minor)
    if telemetry.ENABLED:
        telemetry.decision(
            "governor.tile_plan", op="mxv" if is_mxv else "vxm", tile_dim=td,
            est_bytes=p.get("est_bytes"),
        )
    pool = _spill_pool_for(plan)
    try:
        A_t = TiledMatrix.from_store(store, td, pool, dtype=A.dtype)
        ti, tv = mxv_tiled(A_t, u.to_dense(), u.pattern(), sr, plan.out_type,
                           matrix_first=is_mxv)
    finally:
        _report_pool(pool, "mxv" if is_mxv else "vxm")
        pool.close()
    return write_vector(w, ti, tv, mask=plan.mask, accum=plan.accum, desc=d)
