"""Hardened environment-variable parsing.

Configuration knobs (``GRAPHBLAS_BACKEND``, ``GRAPHBLAS_DIFF_BUDGET``,
``GRAPHBLAS_GOVERNOR_BUDGET``, ...) are read from the environment, where a
typo'd value used to propagate as a raw ``ValueError`` deep inside the op
pipeline or silently select the wrong engine.  The helpers here never
raise on malformed input: they warn once per distinct (variable, value)
pair and fall back to the documented default.

``env_bytes`` accepts plain integers plus ``k``/``m``/``g`` binary
suffixes (``64m`` == 64 MiB) so CI legs can say what they mean.
"""

from __future__ import annotations

import os
import warnings

__all__ = [
    "env_int", "env_float", "env_bytes", "env_choice", "env_path",
    "env_on_off", "warn_once", "reset_warned",
]

_warned: set[tuple[str, str]] = set()

_SUFFIX = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def _warn_once(var: str, raw: str, why: str, default) -> None:
    key = (var, raw)
    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(
        f"ignoring {var}={raw!r} ({why}); using default {default!r}",
        RuntimeWarning,
        stacklevel=3,
    )


def reset_warned() -> None:
    """Forget which (variable, value) pairs already warned (for tests)."""
    _warned.clear()


def warn_once(var: str, value: str, why: str, fallback) -> None:
    """Warn once per (variable, value) for a config that cannot be honored.

    Same dedup set and wording as the parsers above, for consumers whose
    value is *well-formed* but unusable in this environment — e.g.
    ``GRAPHBLAS_BACKEND=compiled`` with no JIT toolchain installed.
    """
    _warn_once(var, value, why, fallback)


def env_int(var: str, default, *, minimum=None):
    """Read an integer env var, warning and falling back on bad input."""
    raw = os.environ.get(var)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw.strip())
    except ValueError:
        _warn_once(var, raw, "not an integer", default)
        return default
    if minimum is not None and value < minimum:
        _warn_once(var, raw, f"below minimum {minimum}", default)
        return default
    return value


def env_float(var: str, default, *, minimum=None):
    """Read a float env var, warning and falling back on bad input."""
    raw = os.environ.get(var)
    if raw is None or not raw.strip():
        return default
    try:
        value = float(raw.strip())
    except ValueError:
        _warn_once(var, raw, "not a number", default)
        return default
    if value != value:  # NaN
        _warn_once(var, raw, "not a number", default)
        return default
    if minimum is not None and value < minimum:
        _warn_once(var, raw, f"below minimum {minimum}", default)
        return default
    return value


def env_bytes(var: str, default, *, minimum=None):
    """Read a byte count; accepts ``k``/``m``/``g`` binary suffixes."""
    raw = os.environ.get(var)
    if raw is None or not raw.strip():
        return default
    text = raw.strip().lower()
    scale = 1
    if text and text[-1] in _SUFFIX:
        scale = _SUFFIX[text[-1]]
        text = text[:-1]
    try:
        value = int(text) * scale
    except ValueError:
        _warn_once(var, raw, "not a byte count", default)
        return default
    if minimum is not None and value < minimum:
        _warn_once(var, raw, f"below minimum {minimum}", default)
        return default
    return value


def env_path(var: str, default=None):
    """Read a filesystem path env var.

    Unset means the default; a set-but-blank value is malformed (it would
    silently resolve to the current directory) and warns once.  Existence
    is *not* checked here — consumers create spill/checkpoint directories
    on demand.
    """
    raw = os.environ.get(var)
    if raw is None:
        return default
    value = raw.strip()
    if not value:
        _warn_once(var, raw, "empty path", default)
        return default
    return value


def env_on_off(var: str, default: bool) -> bool:
    """Read an ``on``/``off`` switch env var as a bool.

    The common pattern behind ``GRAPHBLAS_ENGINE`` / ``GRAPHBLAS_SPILL``
    / ``GRAPHBLAS_OBS``: unset or malformed values warn once and fall
    back to ``default``.
    """
    fallback = "on" if default else "off"
    return env_choice(var, fallback, ("on", "off")) == "on"


def env_choice(var: str, default, choices):
    """Read an enumerated env var, warning and falling back on bad input."""
    raw = os.environ.get(var)
    if raw is None or not raw.strip():
        return default
    value = raw.strip()
    if value not in choices:
        _warn_once(var, raw, f"not one of {', '.join(sorted(choices))}", default)
        return default
    return value
