"""Execution governor: budgets, deadlines, cancellation, checkpoint, retry.

LAGraph is the production-facing layer over the GraphBLAS kernels, and in
a long-lived analytic service the *library* — not each caller — must own
resource discipline: a single oversized ``mxm`` or a non-converging
``pagerank`` must not consume unbounded memory or wall time with no way
to bound, cancel, or resume it.

The governor is a thread-local scope threaded through the op pipeline::

    with governor.ExecutionContext(memory_budget=64 << 20, deadline=60.0) as ctx:
        ranks, iters = pagerank(G, checkpoint="pr.ckpt.npz")

Four cooperating mechanisms:

**Admission control.**  Every planner in :mod:`repro.graphblas.plan`
submits its finished :class:`~repro.graphblas.plan.OpPlan` to
:func:`admit` before any backend sees it.  The governor estimates the
result footprint from the plan (output shape, operand ``nvals``, SpGEMM
inner dimension) and raises :class:`~repro.graphblas.errors.BudgetExceeded`
— *before the output is allocated* — when the estimate exceeds the
context's ``memory_budget``.  A passed ``deadline`` (seconds of wall
clock from context entry) is checked at the same point and at every poll,
raising :class:`~repro.graphblas.errors.DeadlineExceeded`.

**Cooperative cancellation.**  :meth:`ExecutionContext.cancel` (from any
thread) trips a :class:`CancellationToken`; kernels and the iterative
LAGraph algorithms call :func:`poll` between iterations and at SpGEMM
method boundaries, raising :class:`~repro.graphblas.errors.Cancelled` at
the next poll point.  Poll points sit *before* mutation (and the C-API
boundary is transactional), so interrupted objects stay valid.

**Checkpoint/resume.**  :class:`Checkpoint` serializes an algorithm's
loop state atomically via :mod:`repro.io.checkpoint`; the iterative
algorithms accept ``checkpoint=`` / ``resume=`` and restart mid-loop,
bit-identically for deterministic algorithms.

**Retry & degradation.**  :class:`RetryPolicy` re-runs transient kernel
failures with bounded exponential backoff (jitter from a seeded RNG, so
schedules reproduce).  When admission would reject a plan but a lighter
engine can serve it, the governor *degrades* instead: it tags the plan
and the dispatcher routes it to the context's ``degrade_backends`` chain
(reference/scipy) rather than failing outright.

Every decision (admit/reject/cancel/retry/degrade/checkpoint/resume)
emits a ``governor.*`` telemetry decision event, so traces show why an
op was throttled.  Like :mod:`~repro.graphblas.faults` and
:mod:`~repro.graphblas.telemetry`, the module-level :data:`ACTIVE` flag
keeps the inactive fast path to a single attribute load.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from . import envutil, telemetry
from .errors import (
    BudgetExceeded,
    Cancelled,
    DeadlineExceeded,
    InvalidValue,
    OutOfMemory,
)

__all__ = [
    "ACTIVE",
    "CancellationToken",
    "RetryPolicy",
    "ExecutionContext",
    "Checkpoint",
    "current",
    "poll",
    "admit",
    "admit_workers",
    "with_retry",
    "estimate_result_entries",
    "estimate_plan_bytes",
    "as_checkpoint",
    "save_hook",
    "load_checkpoint",
    "env_limits",
    "env_spill",
    "spill_config",
    "set_spill_config",
    "reset_spill_config",
    "DEFAULT_SPILL_BUDGET",
]

#: True iff any thread has an ExecutionContext open.  Mirrors
#: ``faults.ENABLED`` / ``telemetry.ENABLED``: the un-governed fast path
#: through plan/dispatch/wait is one module-attribute load.
ACTIVE = False

_lock = threading.Lock()
_active_count = 0
_tls = threading.local()

#: GrB_Index storage cost per stored entry (int64).
_INDEX_BYTES = 8


class CancellationToken:
    """A thread-safe, latching cancellation flag.

    Tokens are shared: the context owning a long-running algorithm hands
    its token to another thread (or a signal handler), which calls
    :meth:`cancel`; the algorithm observes it at the next poll point.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason: str | None = None

    def cancel(self, reason: str = "cancelled") -> None:
        """Trip the token; idempotent (the first reason wins)."""
        if not self._event.is_set():
            self.reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def raise_if_cancelled(self) -> None:
        if self._event.is_set():
            raise Cancelled(self.reason or "cancelled")


class RetryPolicy:
    """Bounded retry with exponential backoff and seeded jitter.

    Wraps *transient* failures only — by default
    :class:`~repro.graphblas.errors.OutOfMemory`, the class raised by the
    fault-injection harness for alloc faults.  Governor rejections
    (budget/deadline/cancel) and API errors are never retried.

    The backoff schedule is the shared :class:`repro.serve.backoff.Backoff`
    (capped exponential with seeded jitter), so the governor, the backend
    dispatch retry, and the serving layer replay identical schedules from
    a recorded seed.
    """

    def __init__(self, attempts: int = 3, *, base_delay: float = 0.01,
                 max_delay: float = 2.0, jitter: float = 0.5, seed: int = 0,
                 transient=(OutOfMemory,)) -> None:
        if attempts < 1:
            raise InvalidValue(f"attempts must be >= 1, got {attempts}")
        if not 0.0 <= jitter <= 1.0:
            raise InvalidValue(f"jitter must be in [0, 1], got {jitter}")
        self.attempts = int(attempts)
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self.seed = int(seed)
        self.transient = tuple(transient)
        # lazy import: serve.backoff is a numpy-only leaf, but keeping the
        # import out of module scope avoids a package cycle at import time
        from ..serve.backoff import Backoff
        self._backoff = Backoff(
            base=self.base_delay, cap=self.max_delay,
            jitter=self.jitter, seed=self.seed,
        )

    def delay(self, failures: int) -> float:
        """Backoff before the next attempt after ``failures`` failures."""
        return self._backoff.delay(failures)

    def call(self, fn, *, op: str = "call"):
        """Run ``fn()``, retrying transient failures per the policy."""
        from ..serve.backoff import retry_call

        def on_retry(failures, d, exc):
            ctx = current()
            if ctx is not None:
                ctx.check()
                ctx.stats["retries"] += 1
            if telemetry.ENABLED:
                telemetry.decision(
                    "governor.retry", op=op, attempt=failures,
                    delay_s=round(d, 6), error=type(exc).__name__,
                )

        return retry_call(
            fn, attempts=self.attempts, backoff=self._backoff,
            transient=self.transient, on_retry=on_retry,
        )


def with_retry(fn, *args, policy: RetryPolicy | None = None, **kwargs):
    """Call ``fn(*args, **kwargs)`` under a retry policy.

    Uses ``policy``, else the active context's policy, else a default
    :class:`RetryPolicy`.
    """
    if policy is None:
        ctx = current()
        policy = ctx.retry if ctx is not None and ctx.retry is not None \
            else RetryPolicy()
    name = getattr(fn, "__name__", "call")
    return policy.call(lambda: fn(*args, **kwargs), op=name)


# --------------------------------------------------------------------------
# result-footprint estimation
# --------------------------------------------------------------------------

def _is_matrix(x) -> bool:
    from .matrix import Matrix
    return isinstance(x, Matrix)


def _is_vector(x) -> bool:
    from .vector import Vector
    return isinstance(x, Vector)


def _nvals(x) -> int:
    return int(x.nvals)


def _entry_bytes(container, out_type) -> int:
    itemsize = 8
    if out_type is not None:
        itemsize = int(np.dtype(out_type.np_dtype).itemsize)
    if _is_matrix(container):
        return 2 * _INDEX_BYTES + itemsize
    return _INDEX_BYTES + itemsize


def _ceil_div(a: int, b: int) -> int:
    return -(-a // max(b, 1))


def estimate_result_entries(plan) -> int:
    """Upper estimate of stored entries the op will materialize.

    Deliberately pessimistic-but-cheap: uses only operand ``nvals`` and
    shapes already resolved in the plan.  For SpGEMM the estimate follows
    the expected Gustavson flop count ``nnz(A) * nnz(B)/inner`` (the
    working set of un-summed partial products — the actual allocation
    peak), capped by a structural mask's population when one is present
    without complement.
    """
    op = plan.op
    args = plan.args
    out = plan.out

    if op == "mxm":
        A, B = args[0], args[1]
        inner = int(plan.params.get("inner", 1) or 1)
        flops = _nvals(A) * _ceil_div(_nvals(B), inner)
        dense = int(out.nrows) * int(out.ncols)
        est = max(min(flops, dense), flops // 4)
    elif op in ("mxv", "vxm"):
        A = args[0] if plan.params.get("is_mxv", op == "mxv") else args[1]
        est = min(int(out.size), _nvals(A))
    elif op == "ewise_add":
        est = _nvals(args[0]) + _nvals(args[1])
    elif op == "ewise_mult":
        est = min(_nvals(args[0]), _nvals(args[1]))
    elif op in ("apply", "select", "transpose"):
        est = _nvals(args[0])
    elif op == "extract":
        kind = plan.params.get("kind", "vector")
        if kind == "vector":
            est = int(plan.params["I"].size)
        elif kind == "col":
            est = int(plan.params["I"].size)
        else:
            region = int(plan.params["I"].size) * int(plan.params["J"].size)
            est = min(_nvals(args[0]), region)
    elif op in ("assign", "subassign"):
        A = args[0]
        if _is_matrix(A) or _is_vector(A):
            incoming = _nvals(A)
        else:  # scalar fill of the I x J region
            I = plan.params.get("I")
            J = plan.params.get("J")
            incoming = int(I.size) if I is not None else 1
            if J is not None:
                incoming *= int(J.size)
        est = _nvals(plan.out) + incoming
    elif op == "kronecker":
        est = _nvals(args[0]) * _nvals(args[1])
    elif op == "reduce_rowwise":
        est = int(out.size)
    elif op == "reduce_scalar":
        est = 1
    else:  # pragma: no cover - future ops default to the dense bound
        est = int(out.nrows) * int(out.ncols) if _is_matrix(out) \
            else int(out.size)

    mask = plan.mask
    if mask is not None and not plan.desc.complement_mask and op != "mxm":
        cap = _nvals(mask)
        if plan.accum is not None and out is not None:
            cap += _nvals(out)
        est = min(est, cap)
    return max(int(est), 1)


def estimate_plan_bytes(plan) -> int:
    """Estimated peak bytes the op will allocate for its result."""
    ref = plan.out if plan.out is not None else plan.args[0]
    return estimate_result_entries(plan) * _entry_bytes(ref, plan.out_type)


# --------------------------------------------------------------------------
# the execution context
# --------------------------------------------------------------------------

class ExecutionContext:
    """Thread-local resource scope for a batch of GraphBLAS work.

    Parameters
    ----------
    memory_budget:
        Per-operation result budget in bytes (None = unlimited).  Plans
        whose estimated footprint exceeds it are degraded to a lighter
        backend when possible, else rejected with
        :class:`~repro.graphblas.errors.BudgetExceeded`.
    deadline:
        Wall-clock seconds from ``__enter__``; once passed, every
        admission and poll raises
        :class:`~repro.graphblas.errors.DeadlineExceeded`.
    cancel:
        A shared :class:`CancellationToken` (one is created if omitted).
    retry:
        A :class:`RetryPolicy` applied around kernel execution at
        dispatch (None = no retry).
    degrade:
        Allow budget-exceeded plans to fall back to ``degrade_backends``
        instead of failing (default True).
    degrade_backends:
        Backend names tried, in order, for degraded plans; a backend must
        ``supports()`` the plan to be chosen (its own fallback chain is
        *not* honored for degraded plans — that would defeat the budget).

    Contexts nest (a thread-local stack; the innermost governs) and are
    single-use: re-entering a context raises.
    """

    def __init__(self, *, memory_budget: int | None = None,
                 deadline: float | None = None,
                 cancel: CancellationToken | None = None,
                 retry: RetryPolicy | None = None,
                 degrade: bool = True,
                 degrade_backends=("reference", "scipy"),
                 spill: bool | None = None,
                 spill_dir=None,
                 spill_budget: int | None = None) -> None:
        if memory_budget is not None and memory_budget < 0:
            raise InvalidValue(f"memory_budget must be >= 0, got {memory_budget}")
        if deadline is not None and deadline < 0:
            raise InvalidValue(f"deadline must be >= 0, got {deadline}")
        if spill_budget is not None and spill_budget < 0:
            raise InvalidValue(f"spill_budget must be >= 0, got {spill_budget}")
        self.memory_budget = None if memory_budget is None else int(memory_budget)
        self.deadline = None if deadline is None else float(deadline)
        self.token = cancel if cancel is not None else CancellationToken()
        self.retry = retry
        self.degrade = bool(degrade)
        self.degrade_backends = tuple(degrade_backends)
        self.spill = None if spill is None else bool(spill)
        self.spill_dir = spill_dir
        self.spill_budget = None if spill_budget is None else int(spill_budget)
        self.deadline_at: float | None = None
        self.stats = {
            "admitted": 0, "rejected": 0, "degraded": 0, "tiled": 0,
            "cancelled": 0, "retries": 0,
        }
        self._entered = False

    # -- scope management ---------------------------------------------------

    def __enter__(self) -> "ExecutionContext":
        if self._entered:
            raise InvalidValue("ExecutionContext is single-use; create a new one")
        self._entered = True
        if self.deadline is not None:
            self.deadline_at = time.monotonic() + self.deadline
        stack = getattr(_tls, "stack", None)
        if stack is None:
            stack = _tls.stack = []
        stack.append(self)
        global ACTIVE, _active_count
        with _lock:
            _active_count += 1
            ACTIVE = True
        return self

    def __exit__(self, *exc) -> None:
        _tls.stack.remove(self)
        global ACTIVE, _active_count
        with _lock:
            _active_count -= 1
            ACTIVE = _active_count > 0

    # -- controls -----------------------------------------------------------

    def cancel(self, reason: str = "cancelled") -> None:
        """Trip this context's cancellation token (any thread may call)."""
        self.token.cancel(reason)

    def remaining_seconds(self) -> float | None:
        """Seconds until the deadline (None = no deadline)."""
        if self.deadline_at is None:
            return None
        return self.deadline_at - time.monotonic()

    # -- enforcement --------------------------------------------------------

    def check(self) -> None:
        """Raise if cancelled or past deadline.  The poll primitive."""
        if self.token.cancelled:
            self.stats["cancelled"] += 1
            if telemetry.ENABLED:
                telemetry.decision("governor.cancel", reason=self.token.reason)
            raise Cancelled(self.token.reason or "cancelled")
        if self.deadline_at is not None and time.monotonic() > self.deadline_at:
            self.stats["cancelled"] += 1
            if telemetry.ENABLED:
                telemetry.decision("governor.cancel", reason="deadline",
                                   deadline_s=self.deadline)
            raise DeadlineExceeded(
                f"deadline of {self.deadline}s exceeded"
            )

    def admit(self, plan) -> None:
        """Admission control for one plan; called by every planner.

        Raises :class:`~repro.graphblas.errors.Cancelled` /
        :class:`~repro.graphblas.errors.DeadlineExceeded` /
        :class:`~repro.graphblas.errors.BudgetExceeded` before any output
        allocation, or tags the plan for degraded dispatch.
        """
        self.check()
        if self.memory_budget is None:
            self.stats["admitted"] += 1
            return
        est = estimate_plan_bytes(plan)
        plan.params["est_bytes"] = est
        if est <= self.memory_budget:
            self.stats["admitted"] += 1
            if telemetry.ENABLED:
                telemetry.decision("governor.admit", op=plan.op, est_bytes=est)
            return
        if plan.op in _TILEABLE and self.spill_enabled():
            plan.params["governor_tiled"] = True
            self.stats["tiled"] += 1
            return  # the dispatcher records the governor.tiled decision
        route = self._degrade_route(plan)
        if route is not None:
            plan.params["governor_degrade_to"] = route
            self.stats["degraded"] += 1
            return  # the dispatcher records the governor.degrade decision
        self.stats["rejected"] += 1
        if telemetry.ENABLED:
            telemetry.decision("governor.reject", op=plan.op, reason="budget",
                               est_bytes=est, budget=self.memory_budget)
        if plan.op not in _TILEABLE:
            spill_why = "tiled spill unavailable for this op"
        else:
            spill_why = "tiled spill disabled"
        if not self.degrade:
            degrade_why = "degrade disabled"
        else:
            degrade_why = (
                f"no degrade backend in {self.degrade_backends!r} supports it"
            )
        raise BudgetExceeded(
            f"{plan.op}: estimated result footprint {est} B exceeds the "
            f"context memory budget of {self.memory_budget} B by "
            f"{est - self.memory_budget} B ({spill_why}; {degrade_why})"
        )

    def spill_enabled(self) -> bool:
        """Whether over-budget tileable ops re-plan as tiled spill.

        An explicit ``spill=`` on the context wins; otherwise spilling
        follows ``degrade`` (a context that asked for hard rejection gets
        it) gated by the ``GRAPHBLAS_SPILL`` environment switch.
        """
        if self.spill is not None:
            return self.spill
        return self.degrade and spill_config()[0]

    def spill_settings(self) -> tuple:
        """(directory, byte budget) for this context's spill pools."""
        _, env_dir, env_budget = spill_config()
        directory = self.spill_dir if self.spill_dir is not None else env_dir
        budget = self.spill_budget if self.spill_budget is not None else env_budget
        return directory, budget

    def _degrade_route(self, plan) -> str | None:
        if not self.degrade:
            return None
        from . import backends as _backends
        for name in self.degrade_backends:
            try:
                be = _backends.get_backend(name)
            except InvalidValue:
                continue
            if be.supports(plan):
                return name
        return None


def current() -> ExecutionContext | None:
    """The innermost context governing this thread, or None."""
    stack = getattr(_tls, "stack", None)
    return stack[-1] if stack else None


def poll() -> None:
    """Cooperative cancellation/deadline check; no-op when un-governed."""
    ctx = current()
    if ctx is not None:
        ctx.check()


def admit(plan) -> None:
    """Submit a plan for admission; no-op when un-governed."""
    ctx = current()
    if ctx is not None:
        ctx.admit(plan)


def admit_workers(requested: int, per_block_bytes: int, op: str = "mxm") -> int:
    """Admit a parallel worker count against the governing memory budget.

    Each in-flight row block of the engine's parallel kernels holds
    roughly ``per_block_bytes`` of expansion buffers, so the admitted
    count keeps ``workers * per_block_bytes`` within the context's
    ``memory_budget``.  Never admits below one worker — serial execution
    is always allowed (the *plan* was already admitted as a whole; this
    only throttles the transient parallel working set on top of it).
    Un-governed threads get the requested count unchanged.
    """
    requested = max(1, int(requested))
    ctx = current()
    if ctx is None:
        return requested
    ctx.check()
    if ctx.memory_budget is None or per_block_bytes <= 0:
        return requested
    admitted = max(1, min(requested, ctx.memory_budget // int(per_block_bytes)))
    if telemetry.ENABLED and admitted != requested:
        telemetry.decision(
            "engine.workers",
            op=op,
            requested=requested,
            admitted=admitted,
            per_block_bytes=int(per_block_bytes),
            budget=ctx.memory_budget,
        )
    return admitted


def env_limits() -> tuple[int | None, float | None]:
    """(memory_budget, deadline) from the environment, hardened.

    Reads ``GRAPHBLAS_GOVERNOR_BUDGET`` (bytes; ``k``/``m``/``g``
    suffixes accepted) and ``GRAPHBLAS_GOVERNOR_DEADLINE`` (seconds).
    Used by the CI governor leg to wrap each resilience test in a
    budgeted, deadlined context.
    """
    budget = envutil.env_bytes("GRAPHBLAS_GOVERNOR_BUDGET", None, minimum=0)
    deadline = envutil.env_float("GRAPHBLAS_GOVERNOR_DEADLINE", None, minimum=0.0)
    return budget, deadline


# --------------------------------------------------------------------------
# spill configuration
# --------------------------------------------------------------------------

#: Ops the tiled planner can serve; everything else still degrades/rejects.
_TILEABLE = ("mxm", "mxv", "vxm")

#: Default resident-tile byte budget for spill pools.
DEFAULT_SPILL_BUDGET = 256 << 20

# Process-wide overrides installed by set_spill_config (the GxB_Spill_*
# C-API surface); None means "defer to the environment".
_spill_override: dict = {"enabled": None, "directory": None, "budget": None}


def env_spill() -> tuple[bool, str | None, int]:
    """(enabled, directory, byte budget) from the environment, hardened.

    Reads ``GRAPHBLAS_SPILL`` (``on``/``off``), ``GRAPHBLAS_SPILL_DIR``
    (base directory for pool scratch space) and
    ``GRAPHBLAS_SPILL_BUDGET`` (bytes; ``k``/``m``/``g`` suffixes).
    Malformed values warn once and fall back to the defaults: spilling
    on, the system temp dir, :data:`DEFAULT_SPILL_BUDGET`.
    """
    enabled = envutil.env_on_off("GRAPHBLAS_SPILL", True)
    directory = envutil.env_path("GRAPHBLAS_SPILL_DIR", None)
    budget = envutil.env_bytes(
        "GRAPHBLAS_SPILL_BUDGET", DEFAULT_SPILL_BUDGET, minimum=0
    )
    return enabled, directory, budget


def spill_config() -> tuple[bool, str | None, int]:
    """Effective (enabled, directory, budget): overrides, then environment."""
    enabled, directory, budget = env_spill()
    if _spill_override["enabled"] is not None:
        enabled = _spill_override["enabled"]
    if _spill_override["directory"] is not None:
        directory = _spill_override["directory"]
    if _spill_override["budget"] is not None:
        budget = _spill_override["budget"]
    return enabled, directory, budget


def set_spill_config(*, enabled: bool | None = None, directory=None,
                     budget: int | None = None) -> None:
    """Install process-wide spill overrides (the ``GxB_Spill_set`` core).

    Only the arguments given change; pass :func:`reset_spill_config` to
    drop all overrides and return to environment control.
    """
    if budget is not None:
        budget = int(budget)
        if budget < 0:
            raise InvalidValue(f"spill budget must be >= 0, got {budget}")
        _spill_override["budget"] = budget
    if enabled is not None:
        _spill_override["enabled"] = bool(enabled)
    if directory is not None:
        _spill_override["directory"] = str(directory)


def reset_spill_config() -> None:
    """Drop all spill overrides (back to environment defaults)."""
    _spill_override.update(enabled=None, directory=None, budget=None)


# --------------------------------------------------------------------------
# checkpoint/resume
# --------------------------------------------------------------------------

class Checkpoint:
    """Periodic, atomic snapshots of an iterative algorithm's loop state.

    Pass to an algorithm's ``checkpoint=``; every ``every``-th iteration
    the loop state (frontier/parent/rank containers plus the iteration
    counter) is serialized to ``path`` via
    :func:`repro.io.checkpoint.save_state` (write-to-temp + atomic
    rename, so a crash mid-save leaves the previous snapshot intact).
    """

    def __init__(self, path, *, every: int = 1) -> None:
        if every < 1:
            raise InvalidValue(f"every must be >= 1, got {every}")
        self.path = str(path)
        self.every = int(every)
        self.saves = 0

    def should(self, iteration: int) -> bool:
        return iteration % self.every == 0

    def save(self, algorithm: str, iteration: int, state: dict) -> None:
        from ..io.checkpoint import save_state
        payload = {"__algorithm__": algorithm, "__iteration__": int(iteration)}
        payload.update(state)
        save_state(self.path, payload)
        self.saves += 1
        if telemetry.ENABLED:
            telemetry.decision("governor.checkpoint", op=algorithm,
                               iteration=int(iteration), path=self.path)


def as_checkpoint(spec):
    """Normalize an algorithm's ``checkpoint=`` argument.

    None passes through; a :class:`Checkpoint` is used as-is; a plain
    callable is kept (invoked as ``fn(algorithm, iteration, state)``);
    a path becomes ``Checkpoint(path)``.
    """
    if spec is None or isinstance(spec, Checkpoint) or callable(spec):
        return spec
    return Checkpoint(spec)


def save_hook(cp, algorithm: str, iteration: int, state: dict) -> None:
    """Invoke a normalized checkpoint hook for one completed iteration."""
    if cp is None:
        return
    if isinstance(cp, Checkpoint):
        if cp.should(iteration):
            cp.save(algorithm, iteration, state)
        return
    cp(algorithm, int(iteration), dict(state))


def load_checkpoint(spec, *, algorithm: str | None = None) -> dict:
    """Load a snapshot for an algorithm's ``resume=`` path.

    ``spec`` is a path or a :class:`Checkpoint`.  When ``algorithm`` is
    given, a snapshot written by a different algorithm is rejected with
    :class:`~repro.graphblas.errors.InvalidValue` rather than resuming
    into the wrong loop.
    """
    path = spec.path if isinstance(spec, Checkpoint) else str(spec)
    from ..io.checkpoint import load_state
    state = load_state(path)
    found = state.get("__algorithm__")
    if algorithm is not None and found != algorithm:
        raise InvalidValue(
            f"checkpoint {path!r} was written by {found!r}, "
            f"cannot resume {algorithm!r}"
        )
    if telemetry.ENABLED:
        telemetry.decision("governor.resume", op=found or "unknown",
                           iteration=int(state.get("__iteration__", -1)),
                           path=path)
    return state
