"""The opaque ``GrB_Vector`` object.

A sparse vector is a sorted index array plus a parallel value array — the
same "sparse vector" building block the paper's section II.A describes as
the component of CSR/CSC matrices, and the ``SparseVector`` half of
GraphBLAST's Figure 3.  ``to_dense``/``from_dense`` provide the
``DenseVector`` half used by pull-direction kernels.

Incremental updates use the same ordered pending-log mechanism as
:class:`~repro.graphblas.matrix.Matrix`.
"""

from __future__ import annotations

import time as _time

import numpy as np

from . import context, faults, governor, telemetry, updatelog
from .errors import (
    IndexOutOfBounds,
    InvalidValue,
    NoValue,
    OutputNotEmpty,
    UninitializedObject,
    check_index,
)
from .formats import group_starts, reduce_by_segments
from .ops import binary
from .types import Type, lookup_type
from .updatelog import UpdateLog

__all__ = ["Vector"]

_INDEX = np.int64


class Vector:
    """An opaque sparse vector over a GraphBLAS domain."""

    __slots__ = (
        "dtype",
        "size",
        "indices",
        "values",
        "_log",
        "_valid",
        "__weakref__",
    )

    def __init__(self, dtype, size: int):
        size = int(size)
        if size <= 0:
            raise InvalidValue("vector size must be positive")
        if faults.ENABLED:
            faults.trip("alloc")
        self.dtype: Type = lookup_type(dtype)
        self.size = size
        self.indices = np.empty(0, dtype=_INDEX)
        self.values = np.empty(0, dtype=self.dtype.np_dtype)
        self._log = UpdateLog(matrix=False)
        self._valid = True

    # -- constructors ------------------------------------------------------

    @classmethod
    def new(cls, dtype, size: int) -> "Vector":
        """``GrB_Vector_new``."""
        return cls(dtype, size)

    @classmethod
    def from_coo(cls, indices, values, *, size=None, dtype=None, dup="PLUS") -> "Vector":
        indices = np.asarray(indices, dtype=_INDEX)
        values = np.asarray(values)
        if np.isscalar(values) or values.ndim == 0:
            values = np.broadcast_to(values, indices.shape).copy()
        if size is None:
            size = int(indices.max()) + 1 if indices.size else 1
        if dtype is None:
            dtype = values.dtype if values.size else np.float64
        v = cls(dtype, size)
        v.build(indices, values, dup=dup)
        return v

    @classmethod
    def from_dense(cls, array, *, missing=None, dtype=None) -> "Vector":
        array = np.asarray(array)
        if array.ndim != 1:
            raise InvalidValue("from_dense needs a 1-D array")
        if missing is None:
            mask = np.ones(array.shape, dtype=bool)
        elif missing != missing:  # NaN sentinel
            mask = ~np.isnan(array)
        else:
            mask = array != missing
        (idx,) = np.nonzero(mask)
        return cls.from_coo(
            idx, array[mask], size=array.shape[0], dtype=dtype or array.dtype
        )

    @classmethod
    def full(cls, value, size: int, dtype=None) -> "Vector":
        """Dense vector of one value (an iso-valued DenseVector)."""
        arr = np.full(size, value)
        return cls.from_dense(arr, dtype=dtype or arr.dtype)

    # -- invariants ----------------------------------------------------------

    def _require_valid(self) -> None:
        if not self._valid:
            raise UninitializedObject("vector contents were moved out by export")

    @property
    def has_pending(self) -> bool:
        return bool(self._log)

    @property
    def npending(self) -> int:
        """Pending insertions (the paper's *pending tuples*)."""
        return self._log.npending

    @property
    def nzombies(self) -> int:
        """Pending deletions (the paper's *zombies*)."""
        return self._log.nzombies

    # Raw update-log views, kept as assignable properties because the capi
    # snapshot/restore path and the resilience harness address the log
    # through them.
    @property
    def _pend_i(self) -> list[int]:
        return self._log.i

    @_pend_i.setter
    def _pend_i(self, value) -> None:
        self._log.i = list(value)

    @property
    def _pend_v(self) -> list:
        return self._log.v

    @_pend_v.setter
    def _pend_v(self, value) -> None:
        self._log.v = list(value)

    @property
    def _pend_del(self) -> list[bool]:
        return self._log.deleted

    @_pend_del.setter
    def _pend_del(self, value) -> None:
        self._log.deleted = list(value)

    @property
    def nvals(self) -> int:
        self.wait()
        return int(self.indices.size)

    @property
    def nbytes(self) -> int:
        return self.indices.nbytes + self.values.nbytes

    # -- deferred updates ----------------------------------------------------

    def set_element(self, i: int, value) -> None:
        """``GrB_Vector_setElement`` (pending-tuple deferred)."""
        self._require_valid()
        i = check_index(i, self.size, "index", exc=IndexOutOfBounds)
        if faults.ENABLED:
            faults.trip("setElement")
        self._log_update(i, value, False)

    def remove_element(self, i: int) -> None:
        """``GrB_Vector_removeElement`` (zombie deferred)."""
        self._require_valid()
        i = check_index(i, self.size, "index", exc=IndexOutOfBounds)
        if faults.ENABLED:
            faults.trip("removeElement")
        self._log_update(i, 0, True)

    def _log_update(self, i: int, value, is_delete: bool) -> None:
        """Append one action to the update log; in blocking mode assemble at
        once, un-appending the action if assembly fails so no half-applied
        update survives."""
        log = self._log
        if not log and updatelog.TRACK_DEPTH:
            updatelog.register_for_depth(self)
        log.append(i, None, value, is_delete)
        if context.get_mode() == context.Mode.BLOCKING:
            try:
                self.wait()
            except BaseException:
                log.pop()
                raise

    def wait(self) -> "Vector":
        """``GrB_Vector_wait``: assemble the pending log."""
        self._require_valid()
        if not self.has_pending:
            return self
        if governor.ACTIVE:
            # Poll before any assembly work: a cancellation here leaves
            # the arrays and the whole pending log fully intact.
            governor.poll()
        if faults.ENABLED:
            faults.trip("assemble")
        if telemetry.ENABLED:
            _t0 = _time.perf_counter()
            _pending = len(self._log)
            _zombies = sum(self._log.deleted)
        # sortedness fast path and last-wins dedup live in the shared log
        res = self._log.resolve(self.dtype)
        li, ins, lv = res.i, res.ins, res.values

        if res.fast and self.indices.size == 0:
            self.indices, self.values = li, lv
        else:
            keep = ~np.isin(self.indices, li)
            idx = np.concatenate([self.indices[keep], li[ins]])
            val = np.concatenate([self.values[keep], lv])
            order = np.argsort(idx, kind="stable")
            # atomic commit: assemble fully, then swap in the result and drop
            # the update log, so a mid-assembly failure changes nothing
            self.indices, self.values = idx[order], val[order]
        self._log.clear()
        if telemetry.ENABLED:
            telemetry.decision(
                "assembly",
                object="vector",
                pending=_pending,
                zombies=_zombies,
                nvals=int(self.indices.size),
                fast_path=res.fast,
            )
            telemetry.record_op(
                "wait", _time.perf_counter() - _t0, int(self.indices.size)
            )
        return self

    # -- element access ------------------------------------------------------

    def extract_element(self, i: int):
        self._require_valid()
        self.wait()
        i = int(i)
        if not 0 <= i < self.size:
            raise IndexOutOfBounds(f"{i} outside [0,{self.size})")
        pos = np.searchsorted(self.indices, i)
        if pos < self.indices.size and self.indices[pos] == i:
            v = self.values[pos]
            return v.item() if self.dtype.builtin else v
        raise NoValue(f"no entry at {i}")

    def get(self, i: int, default=None):
        try:
            return self.extract_element(i)
        except NoValue:
            return default

    def __getitem__(self, i):
        return self.extract_element(i)

    def __setitem__(self, i, value) -> None:
        self.set_element(i, value)

    def build(self, indices, values, dup="PLUS") -> "Vector":
        """``GrB_Vector_build``: bulk construction; target must be empty."""
        self._require_valid()
        if self.indices.size or self.has_pending:
            raise OutputNotEmpty("build requires an empty vector")
        if faults.ENABLED:
            faults.trip("build")
        indices = np.asarray(indices, dtype=_INDEX)
        values = np.asarray(values)
        if indices.shape != values.shape:
            raise InvalidValue("index/value arrays must have identical length")
        if indices.size:
            if indices.min() < 0 or indices.max() >= self.size:
                raise IndexOutOfBounds("index out of bounds in build")
            order = np.argsort(indices, kind="stable")
            indices, values = indices[order], values[order]
            starts = group_starts(indices)
            if starts.size != indices.size:
                if dup is None:
                    raise InvalidValue("duplicate indices and no dup operator")
                values = reduce_by_segments(binary(dup), values, starts, self.dtype)
                indices = indices[starts]
            else:
                values = self.dtype.cast_array(values)
        else:
            values = self.dtype.cast_array(values)
        self.indices, self.values = indices, values
        return self

    def extract_tuples(self) -> tuple[np.ndarray, np.ndarray]:
        """``GrB_Vector_extractTuples``: Omega(e) copy-out."""
        self._require_valid()
        self.wait()
        return self.indices.copy(), self.values.copy()

    # -- whole-object operations ---------------------------------------------

    def dup(self) -> "Vector":
        self._require_valid()
        self.wait()
        out = Vector(self.dtype, self.size)
        out.indices = self.indices.copy()
        out.values = self.values.copy()
        return out

    def clear(self) -> "Vector":
        self._require_valid()
        self.indices = np.empty(0, dtype=_INDEX)
        self.values = np.empty(0, dtype=self.dtype.np_dtype)
        self._log.clear()
        return self

    def resize(self, size: int) -> "Vector":
        self._require_valid()
        self.wait()
        size = int(size)
        if size <= 0:
            raise InvalidValue("vector size must be positive")
        keep = self.indices < size
        self.indices = self.indices[keep]
        self.values = self.values[keep]
        self.size = size
        return self

    def to_dense(self, fill=0) -> np.ndarray:
        """Dense 1-D array (the DenseVector view of Figure 3)."""
        self._require_valid()
        self.wait()
        out = np.full(self.size, fill, dtype=self.dtype.np_dtype)
        out[self.indices] = self.values
        return out

    def pattern(self) -> np.ndarray:
        self._require_valid()
        self.wait()
        out = np.zeros(self.size, dtype=bool)
        out[self.indices] = True
        return out

    @property
    def density(self) -> float:
        """nvals / size — the direction-optimization switch statistic."""
        return self.nvals / self.size

    def to_scipy(self):
        """Export as a 1-column ``scipy.sparse.csc_matrix`` (size x 1).

        Stored zeros survive the conversion; ImportError without scipy.
        """
        import scipy.sparse as sp

        idx, vals = self.extract_tuples()
        return sp.csc_matrix(
            (vals, (idx, np.zeros(idx.size, dtype=np.int64))), shape=(self.size, 1)
        )

    @classmethod
    def from_scipy(cls, v, *, dtype=None) -> "Vector":
        """Build from a 1-column (or 1-row) ``scipy.sparse`` matrix."""
        coo = v.tocoo()
        if coo.shape[1] == 1:
            idx, size = coo.row, coo.shape[0]
        elif coo.shape[0] == 1:
            idx, size = coo.col, coo.shape[1]
        else:
            raise ValueError("from_scipy needs a 1-row or 1-column matrix")
        return cls.from_coo(idx, coo.data, size=size, dtype=dtype, dup=None)

    def isequal(self, other: "Vector") -> bool:
        if not isinstance(other, Vector):
            return False
        if self.dtype != other.dtype or self.size != other.size:
            return False
        i1, v1 = self.extract_tuples()
        i2, v2 = other.extract_tuples()
        return bool(np.array_equal(i1, i2)) and bool(np.array_equal(v1, v2))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self._valid:
            return "Vector(<moved>)"
        return (
            f"Vector({self.dtype.name}, size={self.size}, "
            f"nvals={self.indices.size})"
        )
