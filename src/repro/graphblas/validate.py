"""Deep object validation — the spirit of SuiteSparse's ``GxB_check``.

SuiteSparse ships a ``GxB_*_check`` family that walks an opaque object and
verifies every structural invariant, returning ``GrB_INVALID_OBJECT`` when
the object has been corrupted.  This module is that checker for the Python
engine.  For a :class:`~repro.graphblas.matrix.Matrix` it verifies:

* dimensions positive and consistent with the store's orientation;
* row-pointer array well-formed: correct length, ``indptr[0] == 0``,
  ``indptr[-1] == nvals``, monotone non-decreasing;
* hypersparse list (if any) strictly increasing and in range;
* minor indices in bounds, strictly increasing (sorted, duplicate-free)
  within every major vector;
* value array parallel to the index array and of the object's exact dtype;
* the pending-tuple / zombie log internally consistent (parallel arrays,
  in-bounds coordinates, boolean deletion flags);
* the cached opposite-orientation twin (dual CSR/CSC storage), when
  present, agreeing entry-for-entry with the primary store.

The resilience suite calls :func:`check` after every injected fault to
prove no operand was left corrupt; it is also exposed through the C API as
``GrB_Matrix_check`` / ``GrB_Vector_check``.
"""

from __future__ import annotations

import numpy as np

from .errors import Info, InvalidObject
from .formats import Orientation, SparseStore
from .matrix import Matrix
from .scalar import Scalar
from .vector import Vector

__all__ = [
    "check",
    "expect_valid",
    "problems",
    "matrix_problems",
    "vector_problems",
    "store_problems",
]

_INDEX = np.int64


def _segmented_sorted_strict(minor: np.ndarray, indptr: np.ndarray) -> bool:
    """True iff ``minor`` is strictly increasing within every segment.

    Vectorized: a violation is a position where ``diff(minor) <= 0`` that is
    *not* a segment boundary.
    """
    if minor.size < 2:
        return True
    nondecreasing = np.diff(minor) <= 0
    if not np.any(nondecreasing):
        return True
    boundary = np.zeros(minor.size - 1, dtype=bool)
    inner = indptr[(indptr > 0) & (indptr < minor.size)]
    boundary[np.asarray(inner, dtype=_INDEX) - 1] = True
    return not np.any(nondecreasing & ~boundary)


def store_problems(s: SparseStore, dtype=None) -> list[str]:
    """Structural problems of one :class:`SparseStore` (empty list = valid)."""
    out: list[str] = []
    if s.n_major <= 0 or s.n_minor <= 0:
        out.append(f"non-positive store dimensions {s.n_major}x{s.n_minor}")
    indptr = s.indptr
    if not isinstance(indptr, np.ndarray) or indptr.ndim != 1 or not np.issubdtype(indptr.dtype, np.integer):
        return out + ["indptr is not a 1-D integer array"]
    expected_len = (s.h.size + 1) if s.hyper else (s.n_major + 1)
    if indptr.size != expected_len:
        out.append(f"indptr length {indptr.size}, expected {expected_len}")
    if indptr.size == 0 or indptr[0] != 0:
        out.append("indptr does not start at 0")
    if s.minor.size != s.values.size:
        out.append(
            f"index/value arrays disagree: {s.minor.size} vs {s.values.size}"
        )
    if indptr.size and indptr[-1] != s.minor.size:
        out.append(f"indptr ends at {indptr[-1]}, nvals is {s.minor.size}")
    if indptr.size > 1 and np.any(np.diff(indptr) < 0):
        out.append("indptr not monotone non-decreasing")
    if s.hyper:
        h = s.h
        if h.size > 1 and np.any(np.diff(h) <= 0):
            out.append("hyperlist not strictly increasing")
        if h.size and (int(h[0]) < 0 or int(h[-1]) >= s.n_major):
            out.append("hyperlist id out of range")
    if s.minor.size:
        if int(s.minor.min()) < 0 or int(s.minor.max()) >= s.n_minor:
            out.append("minor index out of range")
    if out:
        # structure already broken; per-vector checks could misindex
        return out
    if not _segmented_sorted_strict(s.minor, indptr):
        out.append("minor indices unsorted or duplicated within a vector")
    if dtype is not None and s.values.dtype != dtype.np_dtype:
        out.append(
            f"value array dtype {s.values.dtype} != object dtype {dtype.np_dtype}"
        )
    return out


def _pending_problems(obj, coords: list[list[int]], bounds: list[int]) -> list[str]:
    """Consistency of the ordered update log (pending tuples + zombies)."""
    out: list[str] = []
    lens = {len(c) for c in coords} | {len(obj._pend_v), len(obj._pend_del)}
    if len(lens) != 1:
        return [f"pending log arrays have mismatched lengths {sorted(lens)}"]
    for axis, (cs, bound) in enumerate(zip(coords, bounds)):
        for k, c in enumerate(cs):
            if not isinstance(c, (int, np.integer)) or not 0 <= int(c) < bound:
                out.append(f"pending coordinate #{k} axis {axis} out of range: {c!r}")
                break
    for k, d in enumerate(obj._pend_del):
        if not isinstance(d, (bool, np.bool_)):
            out.append(f"pending deletion flag #{k} is not boolean: {d!r}")
            break
    return out


def _canonical_coo(s: SparseStore):
    """Entries of a store as (row, col, value) sorted row-major."""
    major, minor, values = s.to_coo()
    if s.orientation is Orientation.COL:
        rows, cols = minor, major
    else:
        rows, cols = major, minor
    order = np.lexsort((cols, rows))
    return rows[order], cols[order], values[order]


def matrix_problems(A: Matrix) -> list[str]:
    """Every detected invariant violation of a Matrix (empty list = valid)."""
    if not isinstance(A, Matrix):
        return [f"not a Matrix: {type(A).__name__}"]
    if not A._valid:
        return ["object contents were moved out (uninitialized)"]
    out: list[str] = []
    if A.nrows <= 0 or A.ncols <= 0:
        out.append(f"non-positive dimensions {A.nrows}x{A.ncols}")
    s = A._store
    want = (
        (A.nrows, A.ncols)
        if s.orientation is Orientation.ROW
        else (A.ncols, A.nrows)
    )
    if (s.n_major, s.n_minor) != want:
        out.append(
            f"store dims {(s.n_major, s.n_minor)} disagree with matrix "
            f"{A.shape} in {s.orientation.value} orientation"
        )
    out += store_problems(s, A.dtype)
    out += _pending_problems(
        A, [A._pend_i, A._pend_j], [A.nrows, A.ncols]
    )
    alt = A._alt
    if alt is not None:
        if alt.orientation == s.orientation:
            out.append("cached twin has the same orientation as the store")
        elif (alt.n_major, alt.n_minor) != (s.n_minor, s.n_major):
            out.append("cached twin dimensions disagree with the store")
        else:
            alt_probs = store_problems(alt, A.dtype)
            if alt_probs:
                out += [f"cached twin: {p}" for p in alt_probs]
            else:
                pr, pc, pv = _canonical_coo(s)
                ar, ac, av = _canonical_coo(alt)
                if not (
                    np.array_equal(pr, ar)
                    and np.array_equal(pc, ac)
                    and np.array_equal(pv, av)
                ):
                    out.append("dual CSR/CSC copies disagree")
    return out


def vector_problems(v: Vector) -> list[str]:
    """Every detected invariant violation of a Vector (empty list = valid)."""
    if not isinstance(v, Vector):
        return [f"not a Vector: {type(v).__name__}"]
    if not v._valid:
        return ["object contents were moved out (uninitialized)"]
    out: list[str] = []
    if v.size <= 0:
        out.append(f"non-positive size {v.size}")
    idx, vals = v.indices, v.values
    if not isinstance(idx, np.ndarray) or not np.issubdtype(idx.dtype, np.integer):
        out.append("index array is not an integer array")
        return out
    if idx.size != vals.size:
        out.append(f"index/value arrays disagree: {idx.size} vs {vals.size}")
    if idx.size:
        if int(idx.min()) < 0 or int(idx.max()) >= v.size:
            out.append("index out of range")
        if idx.size > 1 and np.any(np.diff(idx) <= 0):
            out.append("indices unsorted or duplicated")
    if vals.dtype != v.dtype.np_dtype:
        out.append(f"value array dtype {vals.dtype} != object dtype {v.dtype.np_dtype}")
    out += _pending_problems(v, [v._pend_i], [v.size])
    return out


def problems(obj) -> list[str]:
    """Dispatch to the per-type checker; empty list means valid."""
    if isinstance(obj, Matrix):
        return matrix_problems(obj)
    if isinstance(obj, Vector):
        return vector_problems(obj)
    if isinstance(obj, Scalar):
        out = []
        if obj._has and obj._value is None:
            out.append("scalar marked non-empty but holds no value")
        return out
    return [f"unsupported object type {type(obj).__name__}"]


def check(obj) -> Info:
    """Deep-validate ``obj``; the ``GxB_check`` verdict as a ``GrB_Info``.

    Returns ``Info.SUCCESS`` when every invariant holds,
    ``Info.UNINITIALIZED_OBJECT`` for moved-out objects, and
    ``Info.INVALID_OBJECT`` for any structural corruption.
    """
    if isinstance(obj, (Matrix, Vector)) and not obj._valid:
        return Info.UNINITIALIZED_OBJECT
    return Info.SUCCESS if not problems(obj) else Info.INVALID_OBJECT


def expect_valid(obj) -> None:
    """Raise :class:`InvalidObject` (with the full report) unless valid."""
    probs = problems(obj)
    if probs:
        raise InvalidObject("; ".join(probs))
