"""Dense spec-literal reference implementation (the "MATLAB mimic").

The paper (section II.A) describes how SuiteSparse is tested: every
operation is written twice — once as high-performance sparse kernels, and
again as a very short, simple dense-matrix mimic whose pattern is held in a
separate Boolean matrix and which follows the API specification line by
line ("matrix multiply is written with a brute-force triply-nested for
loop").  Each computation is then executed both ways and must match in both
value and pattern.

This module is that mimic.  It deliberately shares **no kernel code** with
the sparse engine: values are dense NumPy arrays, structure is a separate
Boolean array, operators are applied through their scalar Python functions
(``op.fn``), and ``mxm`` really is a triply-nested loop.  The conformance
suite (tests/graphblas/test_conformance.py) drives both implementations
over randomized inputs and asserts equality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .descriptor import Descriptor, desc as _desc
from .matrix import Matrix
from .monoid import Monoid, monoid as _monoid
from .ops import BinaryOp, IndexUnaryOp, binary as _binary, indexunary as _indexunary, unary as _unary
from .semiring import Semiring, semiring as _semiring
from .types import Type
from .vector import Vector

__all__ = [
    "RefMatrix",
    "RefVector",
    "ref_mxm",
    "ref_mxv",
    "ref_vxm",
    "ref_ewise_add",
    "ref_ewise_mult",
    "ref_apply",
    "ref_select",
    "ref_reduce_rowwise",
    "ref_reduce_scalar",
    "ref_transpose",
    "ref_extract",
    "ref_assign",
    "ref_subassign",
    "ref_kronecker",
]


@dataclass
class RefMatrix:
    """Dense values + separate Boolean pattern (the mimic's data model)."""

    vals: np.ndarray
    pattern: np.ndarray
    dtype: Type

    @classmethod
    def zeros(cls, dtype: Type, nrows: int, ncols: int) -> "RefMatrix":
        return cls(
            np.zeros((nrows, ncols), dtype=dtype.np_dtype),
            np.zeros((nrows, ncols), dtype=bool),
            dtype,
        )

    @classmethod
    def from_matrix(cls, A: Matrix) -> "RefMatrix":
        return cls(A.to_dense(), A.pattern(), A.dtype)

    def to_matrix(self) -> Matrix:
        rows, cols = np.nonzero(self.pattern)
        return Matrix.from_coo(
            rows,
            cols,
            self.vals[rows, cols],
            nrows=self.vals.shape[0],
            ncols=self.vals.shape[1],
            dtype=self.dtype,
        )

    @property
    def shape(self):
        return self.vals.shape

    def copy(self) -> "RefMatrix":
        return RefMatrix(self.vals.copy(), self.pattern.copy(), self.dtype)

    def matches(self, A: Matrix) -> bool:
        """Value-and-pattern equality against a sparse Matrix.

        Patterns must be identical.  Values are compared exactly for
        integral domains; float domains allow last-ulp differences from
        summation order (the paper: bitwise identity "in most cases").
        """
        if not np.array_equal(self.pattern, A.pattern()):
            return False
        mine = np.where(self.pattern, self.vals, 0)
        theirs = np.where(A.pattern(), A.to_dense(), 0)
        return _values_match(mine, theirs, self.dtype)


@dataclass
class RefVector:
    vals: np.ndarray
    pattern: np.ndarray
    dtype: Type

    @classmethod
    def zeros(cls, dtype: Type, size: int) -> "RefVector":
        return cls(
            np.zeros(size, dtype=dtype.np_dtype), np.zeros(size, dtype=bool), dtype
        )

    @classmethod
    def from_vector(cls, v: Vector) -> "RefVector":
        return cls(v.to_dense(), v.pattern(), v.dtype)

    def to_vector(self) -> Vector:
        (idx,) = np.nonzero(self.pattern)
        return Vector.from_coo(idx, self.vals[idx], size=self.vals.size, dtype=self.dtype)

    @property
    def size(self):
        return self.vals.size

    def copy(self) -> "RefVector":
        return RefVector(self.vals.copy(), self.pattern.copy(), self.dtype)

    def matches(self, v: Vector) -> bool:
        if not np.array_equal(self.pattern, v.pattern()):
            return False
        mine = np.where(self.pattern, self.vals, 0)
        theirs = np.where(v.pattern(), v.to_dense(), 0)
        return _values_match(mine, theirs, self.dtype)


def _values_match(a: np.ndarray, b: np.ndarray, dtype: Type) -> bool:
    if dtype.builtin and dtype.is_float:
        rtol = 1e-5 if dtype.np_dtype == np.float32 else 1e-9
        atol = 1e-6 if dtype.np_dtype == np.float32 else 1e-12
        return bool(np.allclose(a, b, rtol=rtol, atol=atol, equal_nan=True))
    return bool(np.array_equal(a, b))


def _cast(dtype: Type, value):
    return dtype.cast_array(np.asarray(value)).item() if dtype.builtin else value


# --------------------------------------------------------------------------
# the write step, line by line from the spec
# --------------------------------------------------------------------------

def _ref_write_matrix(C: RefMatrix, Z: RefMatrix, mask: RefMatrix | None, d: Descriptor) -> RefMatrix:
    nrows, ncols = C.shape
    out = RefMatrix.zeros(C.dtype, nrows, ncols)
    for i in range(nrows):
        for j in range(ncols):
            if mask is None:
                admit = True
            elif d.structural_mask:
                admit = bool(mask.pattern[i, j])
            else:
                admit = bool(mask.pattern[i, j]) and bool(mask.vals[i, j])
            if d.complement_mask and mask is not None:
                admit = not admit
            if admit:
                if Z.pattern[i, j]:
                    out.pattern[i, j] = True
                    out.vals[i, j] = _cast(C.dtype, Z.vals[i, j])
            else:
                if not d.replace and C.pattern[i, j]:
                    out.pattern[i, j] = True
                    out.vals[i, j] = C.vals[i, j]
    return out


def _ref_accum_matrix(C: RefMatrix, T: RefMatrix, accum: BinaryOp | None) -> RefMatrix:
    if accum is None:
        Z = RefMatrix.zeros(C.dtype, *C.shape)
        Z.pattern[:] = T.pattern
        for i in range(C.shape[0]):
            for j in range(C.shape[1]):
                if T.pattern[i, j]:
                    Z.vals[i, j] = _cast(C.dtype, T.vals[i, j])
        return Z
    Z = RefMatrix.zeros(C.dtype, *C.shape)
    for i in range(C.shape[0]):
        for j in range(C.shape[1]):
            if C.pattern[i, j] and T.pattern[i, j]:
                Z.pattern[i, j] = True
                Z.vals[i, j] = _cast(C.dtype, accum.fn(C.vals[i, j], T.vals[i, j]))
            elif C.pattern[i, j]:
                Z.pattern[i, j] = True
                Z.vals[i, j] = C.vals[i, j]
            elif T.pattern[i, j]:
                Z.pattern[i, j] = True
                Z.vals[i, j] = _cast(C.dtype, T.vals[i, j])
    return Z


def _finish_matrix(C, T, mask, accum, d) -> RefMatrix:
    Z = _ref_accum_matrix(C, T, accum)
    return _ref_write_matrix(C, Z, mask, d)


def _ref_write_vector(w: RefVector, Z: RefVector, mask: RefVector | None, d: Descriptor) -> RefVector:
    out = RefVector.zeros(w.dtype, w.size)
    for i in range(w.size):
        if mask is None:
            admit = True
        elif d.structural_mask:
            admit = bool(mask.pattern[i])
        else:
            admit = bool(mask.pattern[i]) and bool(mask.vals[i])
        if d.complement_mask and mask is not None:
            admit = not admit
        if admit:
            if Z.pattern[i]:
                out.pattern[i] = True
                out.vals[i] = _cast(w.dtype, Z.vals[i])
        else:
            if not d.replace and w.pattern[i]:
                out.pattern[i] = True
                out.vals[i] = w.vals[i]
    return out


def _ref_accum_vector(w: RefVector, t: RefVector, accum: BinaryOp | None) -> RefVector:
    Z = RefVector.zeros(w.dtype, w.size)
    for i in range(w.size):
        if accum is not None and w.pattern[i] and t.pattern[i]:
            Z.pattern[i] = True
            Z.vals[i] = _cast(w.dtype, accum.fn(w.vals[i], t.vals[i]))
        elif accum is not None and w.pattern[i]:
            Z.pattern[i] = True
            Z.vals[i] = w.vals[i]
        elif t.pattern[i]:
            Z.pattern[i] = True
            Z.vals[i] = _cast(w.dtype, t.vals[i])
    return Z


def _finish_vector(w, t, mask, accum, d) -> RefVector:
    Z = _ref_accum_vector(w, t, accum)
    return _ref_write_vector(w, Z, mask, d)


def _maybe_transpose(A: RefMatrix, flag: bool) -> RefMatrix:
    if not flag:
        return A
    return RefMatrix(A.vals.T.copy(), A.pattern.T.copy(), A.dtype)


# --------------------------------------------------------------------------
# the operations
# --------------------------------------------------------------------------

def ref_mxm(C, A, B, semiring="PLUS_TIMES", *, mask=None, accum=None, desc=None) -> RefMatrix:
    """Brute-force triply-nested-loop matrix multiply over a semiring."""
    d = _desc(desc)
    sr = _semiring(semiring)
    accum = None if accum is None else _binary(accum)
    A = _maybe_transpose(A, d.transpose_a)
    B = _maybe_transpose(B, d.transpose_b)
    m, n = A.shape[0], B.shape[1]
    inner = A.shape[1]
    out_type = sr.out_type(A.dtype, B.dtype)
    T = RefMatrix.zeros(out_type, m, n)
    for i in range(m):
        for j in range(n):
            acc = None
            for k in range(inner):
                if A.pattern[i, k] and B.pattern[k, j]:
                    if sr.mult.positional is not None:
                        t = _ref_positional(sr.mult.positional, i, k, j)
                    else:
                        t = sr.mult.fn(A.vals[i, k], B.vals[k, j])
                    acc = t if acc is None else sr.add.op.fn(acc, t)
            if acc is not None:
                T.pattern[i, j] = True
                T.vals[i, j] = _cast(out_type, acc)
    return _finish_matrix(C, T, mask, accum, d)


def _ref_positional(kind: str, i: int, k: int, j: int):
    return {
        "firsti": i,
        "firsti1": i + 1,
        "firstj": k,
        "secondi": k,
        "secondj": j,
        "secondj1": j + 1,
    }[kind]


def ref_mxv(w, A, u, semiring="PLUS_TIMES", *, mask=None, accum=None, desc=None) -> RefVector:
    d = _desc(desc)
    sr = _semiring(semiring)
    accum = None if accum is None else _binary(accum)
    A = _maybe_transpose(A, d.transpose_a)
    out_type = sr.out_type(A.dtype, u.dtype)
    t = RefVector.zeros(out_type, A.shape[0])
    for i in range(A.shape[0]):
        acc = None
        for k in range(A.shape[1]):
            if A.pattern[i, k] and u.pattern[k]:
                if sr.mult.positional is not None:
                    p = _ref_positional(sr.mult.positional, i, k, 0)
                else:
                    p = sr.mult.fn(A.vals[i, k], u.vals[k])
                acc = p if acc is None else sr.add.op.fn(acc, p)
        if acc is not None:
            t.pattern[i] = True
            t.vals[i] = _cast(out_type, acc)
    return _finish_vector(w, t, mask, accum, d)


def ref_vxm(w, u, A, semiring="PLUS_TIMES", *, mask=None, accum=None, desc=None) -> RefVector:
    d = _desc(desc)
    sr = _semiring(semiring)
    accum = None if accum is None else _binary(accum)
    A = _maybe_transpose(A, d.transpose_a)
    out_type = sr.out_type(u.dtype, A.dtype)
    t = RefVector.zeros(out_type, A.shape[1])
    for j in range(A.shape[1]):
        acc = None
        for k in range(A.shape[0]):
            if u.pattern[k] and A.pattern[k, j]:
                if sr.mult.positional is not None:
                    p = _ref_positional(sr.mult.positional, k, k, j)
                else:
                    p = sr.mult.fn(u.vals[k], A.vals[k, j])
                acc = p if acc is None else sr.add.op.fn(acc, p)
        if acc is not None:
            t.pattern[j] = True
            t.vals[j] = _cast(out_type, acc)
    return _finish_vector(w, t, mask, accum, d)


def ref_ewise_add(C, A, B, op="PLUS", *, mask=None, accum=None, desc=None):
    d = _desc(desc)
    if isinstance(op, Semiring):
        op = op.add.op
    elif isinstance(op, Monoid):
        op = op.op
    else:
        op = _binary(op)
    accum = None if accum is None else _binary(accum)
    if isinstance(A, RefVector):
        out_type = op.out_type(A.dtype, B.dtype)
        t = RefVector.zeros(out_type, A.size)
        for i in range(A.size):
            if A.pattern[i] and B.pattern[i]:
                t.pattern[i] = True
                t.vals[i] = _cast(out_type, op.fn(A.vals[i], B.vals[i]))
            elif A.pattern[i]:
                t.pattern[i] = True
                t.vals[i] = _cast(out_type, A.vals[i])
            elif B.pattern[i]:
                t.pattern[i] = True
                t.vals[i] = _cast(out_type, B.vals[i])
        return _finish_vector(C, t, mask, accum, d)
    A = _maybe_transpose(A, d.transpose_a)
    B = _maybe_transpose(B, d.transpose_b)
    out_type = op.out_type(A.dtype, B.dtype)
    T = RefMatrix.zeros(out_type, *A.shape)
    for i in range(A.shape[0]):
        for j in range(A.shape[1]):
            if A.pattern[i, j] and B.pattern[i, j]:
                T.pattern[i, j] = True
                T.vals[i, j] = _cast(out_type, op.fn(A.vals[i, j], B.vals[i, j]))
            elif A.pattern[i, j]:
                T.pattern[i, j] = True
                T.vals[i, j] = _cast(out_type, A.vals[i, j])
            elif B.pattern[i, j]:
                T.pattern[i, j] = True
                T.vals[i, j] = _cast(out_type, B.vals[i, j])
    return _finish_matrix(C, T, mask, accum, d)


def ref_ewise_mult(C, A, B, op="TIMES", *, mask=None, accum=None, desc=None):
    d = _desc(desc)
    if isinstance(op, Semiring):
        op = op.add.op
    elif isinstance(op, Monoid):
        op = op.op
    else:
        op = _binary(op)
    accum = None if accum is None else _binary(accum)
    if isinstance(A, RefVector):
        out_type = op.out_type(A.dtype, B.dtype)
        t = RefVector.zeros(out_type, A.size)
        for i in range(A.size):
            if A.pattern[i] and B.pattern[i]:
                t.pattern[i] = True
                t.vals[i] = _cast(out_type, op.fn(A.vals[i], B.vals[i]))
        return _finish_vector(C, t, mask, accum, d)
    A = _maybe_transpose(A, d.transpose_a)
    B = _maybe_transpose(B, d.transpose_b)
    out_type = op.out_type(A.dtype, B.dtype)
    T = RefMatrix.zeros(out_type, *A.shape)
    for i in range(A.shape[0]):
        for j in range(A.shape[1]):
            if A.pattern[i, j] and B.pattern[i, j]:
                T.pattern[i, j] = True
                T.vals[i, j] = _cast(out_type, op.fn(A.vals[i, j], B.vals[i, j]))
    return _finish_matrix(C, T, mask, accum, d)


def ref_apply(C, A, op="IDENTITY", *, left=None, right=None, thunk=None, mask=None, accum=None, desc=None):
    from .ops import INDEXUNARY_OPS

    d = _desc(desc)
    accum = None if accum is None else _binary(accum)
    is_iu = isinstance(op, IndexUnaryOp) or (
        isinstance(op, str) and op.upper() in INDEXUNARY_OPS
    )

    def f(value, i, j):
        if is_iu:
            return _indexunary(op).fn(value, i, j, thunk if thunk is not None else 0)
        if left is not None:
            return _binary(op).fn(left, value)
        if right is not None:
            return _binary(op).fn(value, right)
        return _unary(op).fn(value)

    if is_iu:
        out_type = _indexunary(op).out_type(A.dtype)
    elif left is not None or right is not None:
        out_type = _binary(op).out_type(A.dtype, A.dtype)
    else:
        out_type = _unary(op).out_type(A.dtype)

    if isinstance(A, RefVector):
        t = RefVector.zeros(out_type, A.size)
        for i in range(A.size):
            if A.pattern[i]:
                t.pattern[i] = True
                t.vals[i] = _cast(out_type, f(A.vals[i], i, 0))
        return _finish_vector(C, t, mask, accum, d)
    A = _maybe_transpose(A, d.transpose_a)
    T = RefMatrix.zeros(out_type, *A.shape)
    for i in range(A.shape[0]):
        for j in range(A.shape[1]):
            if A.pattern[i, j]:
                T.pattern[i, j] = True
                T.vals[i, j] = _cast(out_type, f(A.vals[i, j], i, j))
    return _finish_matrix(C, T, mask, accum, d)


def ref_select(C, A, op, thunk=0, *, mask=None, accum=None, desc=None):
    d = _desc(desc)
    accum = None if accum is None else _binary(accum)
    iu = _indexunary(op)
    if isinstance(A, RefVector):
        t = RefVector.zeros(A.dtype, A.size)
        for i in range(A.size):
            if A.pattern[i] and bool(iu.fn(A.vals[i], i, 0, thunk)):
                t.pattern[i] = True
                t.vals[i] = A.vals[i]
        return _finish_vector(C, t, mask, accum, d)
    A = _maybe_transpose(A, d.transpose_a)
    T = RefMatrix.zeros(A.dtype, *A.shape)
    for i in range(A.shape[0]):
        for j in range(A.shape[1]):
            if A.pattern[i, j] and bool(iu.fn(A.vals[i, j], i, j, thunk)):
                T.pattern[i, j] = True
                T.vals[i, j] = A.vals[i, j]
    return _finish_matrix(C, T, mask, accum, d)


def ref_reduce_rowwise(w, A, op="PLUS", *, mask=None, accum=None, desc=None):
    d = _desc(desc)
    mon = _monoid(op)
    accum = None if accum is None else _binary(accum)
    A = _maybe_transpose(A, d.transpose_a)
    t = RefVector.zeros(A.dtype, A.shape[0])
    for i in range(A.shape[0]):
        acc = None
        for j in range(A.shape[1]):
            if A.pattern[i, j]:
                acc = A.vals[i, j] if acc is None else mon.op.fn(acc, A.vals[i, j])
        if acc is not None:
            t.pattern[i] = True
            t.vals[i] = _cast(A.dtype, acc)
    return _finish_vector(w, t, mask, accum, d)


def ref_reduce_scalar(A, op="PLUS", *, accum=None, init=None):
    mon = _monoid(op)
    acc = None
    if isinstance(A, RefVector):
        it = ((A.pattern[i], A.vals[i]) for i in range(A.size))
    else:
        it = (
            (A.pattern[i, j], A.vals[i, j])
            for i in range(A.shape[0])
            for j in range(A.shape[1])
        )
    for present, v in it:
        if present:
            acc = v if acc is None else mon.op.fn(acc, v)
    if acc is None:
        acc = mon.identity(A.dtype)
    acc = _cast(A.dtype, acc)
    if accum is not None and init is not None:
        acc = _cast(A.dtype, _binary(accum).fn(init, acc))
    return acc


def ref_transpose(C, A, *, mask=None, accum=None, desc=None):
    d = _desc(desc)
    accum = None if accum is None else _binary(accum)
    T = _maybe_transpose(A, not d.transpose_a)
    T = RefMatrix(T.vals.astype(A.dtype.np_dtype), T.pattern, A.dtype)
    return _finish_matrix(C, T, mask, accum, d)


def ref_extract(C, A, I=None, J=None, *, mask=None, accum=None, desc=None):
    d = _desc(desc)
    accum = None if accum is None else _binary(accum)
    if isinstance(A, RefVector):
        I = np.arange(A.size) if I is None else np.asarray(I, dtype=np.int64)
        t = RefVector.zeros(A.dtype, I.size)
        for out_i, i in enumerate(I):
            if A.pattern[i]:
                t.pattern[out_i] = True
                t.vals[out_i] = A.vals[i]
        return _finish_vector(C, t, mask, accum, d)
    A = _maybe_transpose(A, d.transpose_a)
    I = np.arange(A.shape[0]) if I is None else np.asarray(I, dtype=np.int64)
    if np.isscalar(J) and not isinstance(C, RefMatrix):  # column extract
        t = RefVector.zeros(A.dtype, I.size)
        for out_i, i in enumerate(I):
            if A.pattern[i, int(J)]:
                t.pattern[out_i] = True
                t.vals[out_i] = A.vals[i, int(J)]
        return _finish_vector(C, t, mask, accum, d)
    J = np.arange(A.shape[1]) if J is None else np.asarray(J, dtype=np.int64)
    T = RefMatrix.zeros(A.dtype, I.size, J.size)
    for out_i, i in enumerate(I):
        for out_j, j in enumerate(J):
            if A.pattern[i, j]:
                T.pattern[out_i, out_j] = True
                T.vals[out_i, out_j] = A.vals[i, j]
    return _finish_matrix(C, T, mask, accum, d)


def ref_assign(C, A, I=None, J=None, *, mask=None, accum=None, desc=None):
    d = _desc(desc)
    accum = None if accum is None else _binary(accum)
    if isinstance(C, RefVector):
        I = np.arange(C.size) if I is None else np.asarray(I, dtype=np.int64)
        Z = C.copy()
        if isinstance(A, RefVector):
            for k, i in enumerate(I):
                if A.pattern[k]:
                    if accum is not None and Z.pattern[i]:
                        Z.vals[i] = _cast(C.dtype, accum.fn(Z.vals[i], A.vals[k]))
                    else:
                        Z.pattern[i] = True
                        Z.vals[i] = _cast(C.dtype, A.vals[k])
                elif accum is None:
                    Z.pattern[i] = False
                    Z.vals[i] = 0
        else:  # scalar fill
            for i in I:
                if accum is not None and Z.pattern[i]:
                    Z.vals[i] = _cast(C.dtype, accum.fn(Z.vals[i], A))
                else:
                    Z.pattern[i] = True
                    Z.vals[i] = _cast(C.dtype, A)
        return _ref_write_vector(C, Z, mask, d)

    I = np.arange(C.shape[0]) if I is None else np.asarray(I, dtype=np.int64)
    J = np.arange(C.shape[1]) if J is None else np.asarray(J, dtype=np.int64)
    Z = C.copy()
    if isinstance(A, RefMatrix):
        A2 = _maybe_transpose(A, d.transpose_a)
        for a_i, i in enumerate(I):
            for a_j, j in enumerate(J):
                if A2.pattern[a_i, a_j]:
                    if accum is not None and Z.pattern[i, j]:
                        Z.vals[i, j] = _cast(
                            C.dtype, accum.fn(Z.vals[i, j], A2.vals[a_i, a_j])
                        )
                    else:
                        Z.pattern[i, j] = True
                        Z.vals[i, j] = _cast(C.dtype, A2.vals[a_i, a_j])
                elif accum is None:
                    Z.pattern[i, j] = False
                    Z.vals[i, j] = 0
    elif isinstance(A, RefVector):
        if I.size == 1:
            for a_j, j in enumerate(J):
                _ref_assign_one(Z, C.dtype, accum, int(I[0]), j, A, a_j)
        elif J.size == 1:
            for a_i, i in enumerate(I):
                _ref_assign_one(Z, C.dtype, accum, i, int(J[0]), A, a_i)
    else:  # scalar fill
        for i in I:
            for j in J:
                if accum is not None and Z.pattern[i, j]:
                    Z.vals[i, j] = _cast(C.dtype, accum.fn(Z.vals[i, j], A))
                else:
                    Z.pattern[i, j] = True
                    Z.vals[i, j] = _cast(C.dtype, A)
    return _ref_write_matrix(C, Z, mask, d)


def _ref_assign_one(Z, dtype, accum, i, j, A, k):
    if A.pattern[k]:
        if accum is not None and Z.pattern[i, j]:
            Z.vals[i, j] = _cast(dtype, accum.fn(Z.vals[i, j], A.vals[k]))
        else:
            Z.pattern[i, j] = True
            Z.vals[i, j] = _cast(dtype, A.vals[k])
    elif accum is None:
        Z.pattern[i, j] = False
        Z.vals[i, j] = 0


def ref_subassign(C, A, I=None, J=None, *, mask=None, accum=None, desc=None):
    """GxB_subassign: mask and REPLACE act inside the I x J region only."""
    d = _desc(desc)
    accum = None if accum is None else _binary(accum)
    if isinstance(C, RefVector):
        I = np.arange(C.size) if I is None else np.asarray(I, dtype=np.int64)
        out = C.copy()
        for k, i in enumerate(I):
            if mask is None:
                admit = True
            elif d.structural_mask:
                admit = bool(mask.pattern[k])
            else:
                admit = bool(mask.pattern[k]) and bool(mask.vals[k])
            if d.complement_mask and mask is not None:
                admit = not admit
            a_has = A.pattern[k] if isinstance(A, RefVector) else True
            a_val = A.vals[k] if isinstance(A, RefVector) else A
            if admit:
                if a_has:
                    if accum is not None and out.pattern[i]:
                        out.vals[i] = _cast(C.dtype, accum.fn(out.vals[i], a_val))
                    else:
                        out.pattern[i] = True
                        out.vals[i] = _cast(C.dtype, a_val)
                elif accum is None:
                    out.pattern[i] = False
                    out.vals[i] = 0
            elif d.replace:
                out.pattern[i] = False
                out.vals[i] = 0
        return out

    I = np.arange(C.shape[0]) if I is None else np.asarray(I, dtype=np.int64)
    J = np.arange(C.shape[1]) if J is None else np.asarray(J, dtype=np.int64)
    A2 = _maybe_transpose(A, d.transpose_a) if isinstance(A, RefMatrix) else A
    out = C.copy()
    for ai, i in enumerate(I):
        for aj, j in enumerate(J):
            if mask is None:
                admit = True
            elif d.structural_mask:
                admit = bool(mask.pattern[ai, aj])
            else:
                admit = bool(mask.pattern[ai, aj]) and bool(mask.vals[ai, aj])
            if d.complement_mask and mask is not None:
                admit = not admit
            if isinstance(A2, RefMatrix):
                a_has = A2.pattern[ai, aj]
                a_val = A2.vals[ai, aj]
            elif isinstance(A2, RefVector):
                k = aj if I.size == 1 else ai  # row- or column-subassign
                a_has = A2.pattern[k]
                a_val = A2.vals[k]
            else:
                a_has, a_val = True, A2
            if admit:
                if a_has:
                    if accum is not None and out.pattern[i, j]:
                        out.vals[i, j] = _cast(
                            C.dtype, accum.fn(out.vals[i, j], a_val)
                        )
                    else:
                        out.pattern[i, j] = True
                        out.vals[i, j] = _cast(C.dtype, a_val)
                elif accum is None:
                    out.pattern[i, j] = False
                    out.vals[i, j] = 0
            elif d.replace:
                out.pattern[i, j] = False
                out.vals[i, j] = 0
    return out


def ref_kronecker(C, A, B, op="TIMES", *, mask=None, accum=None, desc=None):
    d = _desc(desc)
    if isinstance(op, Semiring):
        op = op.add.op
    elif isinstance(op, Monoid):
        op = op.op
    else:
        op = _binary(op)
    accum = None if accum is None else _binary(accum)
    A = _maybe_transpose(A, d.transpose_a)
    B = _maybe_transpose(B, d.transpose_b)
    out_type = op.out_type(A.dtype, B.dtype)
    m = A.shape[0] * B.shape[0]
    n = A.shape[1] * B.shape[1]
    T = RefMatrix.zeros(out_type, m, n)
    for ai in range(A.shape[0]):
        for aj in range(A.shape[1]):
            if not A.pattern[ai, aj]:
                continue
            for bi in range(B.shape[0]):
                for bj in range(B.shape[1]):
                    if B.pattern[bi, bj]:
                        T.pattern[ai * B.shape[0] + bi, aj * B.shape[1] + bj] = True
                        T.vals[ai * B.shape[0] + bi, aj * B.shape[1] + bj] = _cast(
                            out_type, op.fn(A.vals[ai, aj], B.vals[bi, bj])
                        )
    return _finish_matrix(C, T, mask, accum, d)
