"""Vectorized sorted-coordinate set algebra.

Every GraphBLAS operation ultimately manipulates sets of (row, col) entry
coordinates: eWiseMult is set intersection, eWiseAdd is set union, masking
is membership selection, accumulation is a value-merging union.  This module
implements those primitives on COO arrays with NumPy merges — no composite
integer keys, so coordinates may come from hypersparse matrices with
enormous dimensions without overflow.

Within each input the coordinate pairs must be unique (GraphBLAS objects
never hold duplicates once assembled); matches across two inputs are then
exactly the adjacent duplicates after a stable lexsort of the concatenation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["match_coo", "match_idx", "coords_in", "idx_in"]

_INDEX = np.int64


def match_coo(
    ra: np.ndarray,
    ca: np.ndarray,
    rb: np.ndarray,
    cb: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Match two duplicate-free coordinate lists.

    Returns ``(ia, ib, only_a, only_b)``:

    * ``ia``/``ib`` — positions in A and B of the common coordinates, paired
      and ordered by coordinate;
    * ``only_a``/``only_b`` — positions of coordinates present on one side
      only, ordered by coordinate.
    """
    na, nb = ra.size, rb.size
    if na == 0 or nb == 0:
        empty = np.empty(0, dtype=_INDEX)
        only_a = _coord_order(ra, ca)
        only_b = _coord_order(rb, cb)
        return empty, empty, only_a, only_b
    r = np.concatenate([ra, rb])
    c = np.concatenate([ca, cb])
    order = np.lexsort((c, r))  # stable: A entries precede matching B entries
    rs, cs = r[order], c[order]
    dup = (rs[1:] == rs[:-1]) & (cs[1:] == cs[:-1])
    ia = order[:-1][dup]  # the A side of each matched pair
    ib = order[1:][dup] - na  # the B side
    matched = np.zeros(na + nb, dtype=bool)
    matched[ia] = True
    matched[ib + na] = True
    lone = order[~matched[order]]
    only_a = lone[lone < na]
    only_b = lone[lone >= na] - na
    return ia.astype(_INDEX), ib.astype(_INDEX), only_a.astype(_INDEX), only_b.astype(_INDEX)


def _coord_order(r: np.ndarray, c: np.ndarray) -> np.ndarray:
    if r.size == 0:
        return np.empty(0, dtype=_INDEX)
    return np.lexsort((c, r)).astype(_INDEX)


def match_idx(
    ia_idx: np.ndarray, ib_idx: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """1-D (vector) analogue of :func:`match_coo` on sorted-unique indices."""
    na, nb = ia_idx.size, ib_idx.size
    if na == 0 or nb == 0:
        empty = np.empty(0, dtype=_INDEX)
        return (
            empty,
            empty,
            np.arange(na, dtype=_INDEX),
            np.arange(nb, dtype=_INDEX),
        )
    # both inputs sorted: intersect with searchsorted
    pos = np.searchsorted(ib_idx, ia_idx)
    pos_c = np.minimum(pos, nb - 1)
    hit = ib_idx[pos_c] == ia_idx
    ia = np.flatnonzero(hit).astype(_INDEX)
    ib = pos[hit].astype(_INDEX)
    only_a = np.flatnonzero(~hit).astype(_INDEX)
    in_b = np.zeros(nb, dtype=bool)
    in_b[ib] = True
    only_b = np.flatnonzero(~in_b).astype(_INDEX)
    return ia, ib, only_a, only_b


def coords_in(
    r: np.ndarray,
    c: np.ndarray,
    qr: np.ndarray,
    qc: np.ndarray,
) -> np.ndarray:
    """Boolean mask: which (r, c) pairs appear in the (qr, qc) set."""
    ia, _, _, _ = match_coo(r, c, qr, qc)
    out = np.zeros(r.size, dtype=bool)
    out[ia] = True
    return out


def idx_in(i: np.ndarray, qi: np.ndarray) -> np.ndarray:
    """Boolean mask: which sorted-unique indices appear in sorted ``qi``."""
    if i.size == 0 or qi.size == 0:
        return np.zeros(i.size, dtype=bool)
    pos = np.minimum(np.searchsorted(qi, i), qi.size - 1)
    return qi[pos] == i
