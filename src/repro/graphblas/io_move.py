"""O(1) move-semantics import/export (paper section IV).

The paper devotes most of its Discussion to this mechanism: a graph library
above the GraphBLAS (LAGraph) must move sparse data in and out of the opaque
``GrB_Matrix`` *without copying*.  The design reproduced here follows the
SuiteSparse draft the paper describes, "much like the move constructor of
C++":

* ``export_matrix`` removes the three arrays (``Ap``, ``Ai``, ``Ax`` — plus
  ``Ah`` for hypersparse forms) from the matrix and hands *ownership* to the
  caller; the remains of the object are deleted (the handle is poisoned and
  raises on further use).  If the matrix is already stored in the requested
  format, this takes O(1) time and allocates nothing.
* ``import_matrix`` is symmetric: the caller's arrays are incorporated
  as-is into a new matrix (O(1)), or — with ``copy=True`` — copied in O(e).

After an export followed by an import of the same arrays, the matrix is
perfectly reconstructed, in O(1) total time; tests assert both the round
trip and the no-copy property (``np.shares_memory``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import telemetry
from .errors import InvalidObject, InvalidValue
from .formats import Orientation, SparseStore
from .matrix import Matrix
from .types import Type, lookup_type
from .vector import Vector

__all__ = ["ExportedMatrix", "export_matrix", "import_matrix", "export_vector", "import_vector"]

_INDEX = np.int64

_FORMATS = ("csr", "csc", "hypercsr", "hypercsc")


@dataclass
class ExportedMatrix:
    """Ownership record produced by :func:`export_matrix`.

    ``Ap``/``Ai``/``Ax`` follow the paper's naming: pointer array, index
    array, and values; ``Ah`` is the hypersparse vector list (None for plain
    CSR/CSC).  For CSR forms ``Ai`` holds column indices; for CSC forms it
    holds row indices.
    """

    format: str
    nrows: int
    ncols: int
    dtype: Type
    Ap: np.ndarray
    Ai: np.ndarray
    Ax: np.ndarray
    Ah: np.ndarray | None = None

    @property
    def nvals(self) -> int:
        return int(self.Ai.size)


def export_matrix(A: Matrix, format: str | None = None) -> ExportedMatrix:
    """Move the contents out of ``A``; the handle becomes unusable.

    With ``format=None`` the matrix's current format is used, guaranteeing
    the O(1), zero-allocation path.  Requesting a different format converts
    first (O(e) — "only the performance differs", as the paper puts it).
    """
    A._require_valid()
    A.wait()
    if format is None:
        format = A.format
    format = format.lower()
    if format not in _FORMATS:
        raise InvalidValue(f"unknown export format {format!r}")
    if format != A.format:
        A.set_format(format)
    s = A._store
    out = ExportedMatrix(
        format=format,
        nrows=A.nrows,
        ncols=A.ncols,
        dtype=A.dtype,
        Ap=s.indptr,
        Ai=s.minor,
        Ax=s.values,
        Ah=s.h,
    )
    # the remains of A are deleted; content is now owned by the caller
    A._store = None
    A._valid = False
    if telemetry.ENABLED:
        moved = out.Ap.nbytes + out.Ai.nbytes + out.Ax.nbytes
        if out.Ah is not None:
            moved += out.Ah.nbytes
        telemetry.tally("export", calls=1, bytes_moved=int(moved))
    return out


def import_matrix(
    exported: ExportedMatrix | None = None,
    *,
    format: str | None = None,
    nrows: int | None = None,
    ncols: int | None = None,
    Ap: np.ndarray | None = None,
    Ai: np.ndarray | None = None,
    Ax: np.ndarray | None = None,
    Ah: np.ndarray | None = None,
    dtype=None,
    copy: bool = False,
    check: bool = False,
) -> Matrix:
    """Build a matrix that takes ownership of caller arrays (O(1)).

    Accepts either an :class:`ExportedMatrix` or the individual arrays.
    ``copy=True`` selects the O(e) copying path (the arrays remain the
    caller's).  ``check=True`` validates the structure (O(n + e)).
    """
    if exported is not None:
        format = exported.format
        nrows, ncols = exported.nrows, exported.ncols
        Ap, Ai, Ax, Ah = exported.Ap, exported.Ai, exported.Ax, exported.Ah
        dtype = exported.dtype
    if format is None or nrows is None or ncols is None:
        raise InvalidValue("import needs format and dimensions")
    format = format.lower()
    if format not in _FORMATS:
        raise InvalidValue(f"unknown import format {format!r}")
    if Ap is None or Ai is None or Ax is None:
        raise InvalidValue("import needs Ap, Ai and Ax arrays")
    hyper = format.startswith("hyper")
    if hyper and Ah is None:
        raise InvalidValue("hypersparse import needs the Ah vector list")

    Ap = np.asarray(Ap, dtype=_INDEX)
    Ai = np.asarray(Ai, dtype=_INDEX)
    Ax = np.asarray(Ax)
    if Ah is not None:
        Ah = np.asarray(Ah, dtype=_INDEX)
    if copy:
        Ap, Ai, Ax = Ap.copy(), Ai.copy(), Ax.copy()
        Ah = None if Ah is None else Ah.copy()

    dt = lookup_type(dtype if dtype is not None else Ax.dtype)
    orientation = Orientation.COL if format.endswith("csc") else Orientation.ROW
    n_major = ncols if orientation is Orientation.COL else nrows
    n_minor = nrows if orientation is Orientation.COL else ncols

    store = SparseStore(
        orientation,
        n_major,
        n_minor,
        Ah if hyper else None,
        Ap,
        Ai,
        dt.cast_array(Ax),
    )
    if not hyper and Ap.size != n_major + 1:
        raise InvalidObject("pointer array has wrong length")
    if check:
        store.check_valid()

    A = Matrix(dt, nrows, ncols)
    A._store = store
    if telemetry.ENABLED:
        moved = Ap.nbytes + Ai.nbytes + store.values.nbytes
        if Ah is not None:
            moved += Ah.nbytes
        telemetry.tally("import", calls=1, bytes_moved=int(moved))
    return A


def export_vector(v: Vector) -> tuple[int, np.ndarray, np.ndarray]:
    """Move (size, indices, values) out of a vector; poisons the handle."""
    v._require_valid()
    v.wait()
    out = (v.size, v.indices, v.values)
    if telemetry.ENABLED:
        telemetry.tally(
            "export", calls=1, bytes_moved=int(out[1].nbytes + out[2].nbytes)
        )
    v.indices = None
    v.values = None
    v._valid = False
    return out


def import_vector(size: int, indices, values, *, dtype=None, copy: bool = False) -> Vector:
    """Adopt caller arrays as a vector (O(1) unless ``copy``)."""
    indices = np.asarray(indices, dtype=_INDEX)
    values = np.asarray(values)
    if copy:
        indices, values = indices.copy(), values.copy()
    dt = lookup_type(dtype if dtype is not None else values.dtype)
    v = Vector(dt, size)
    v.indices = indices
    v.values = dt.cast_array(values)
    if telemetry.ENABLED:
        telemetry.tally(
            "import", calls=1, bytes_moved=int(v.indices.nbytes + v.values.nbytes)
        )
    return v
