"""Execution modes (``GrB_Mode``): blocking vs non-blocking.

In non-blocking mode (the default here, as in SuiteSparse) incremental
updates — ``setElement`` / ``removeElement`` — are *deferred* as pending
tuples and zombies and assembled lazily in one O(e + p log p) step when a
materialized view is next needed.  In blocking mode every call completes
fully before returning, so each ``setElement`` costs O(e) — the contrast
the paper draws in section II.A, reproduced by bench E1.
"""

from __future__ import annotations

import contextlib
import threading

__all__ = ["Mode", "get_mode", "set_mode", "blocking", "nonblocking"]

_state = threading.local()


class Mode:
    BLOCKING = "blocking"
    NONBLOCKING = "nonblocking"


def get_mode() -> str:
    """The current execution mode (blocking or nonblocking)."""
    return getattr(_state, "mode", Mode.NONBLOCKING)


def set_mode(mode: str) -> None:
    """Set the execution mode (``Mode.BLOCKING`` / ``Mode.NONBLOCKING``)."""
    if mode not in (Mode.BLOCKING, Mode.NONBLOCKING):
        from .errors import InvalidValue

        raise InvalidValue(f"unknown mode {mode!r}")
    _state.mode = mode


@contextlib.contextmanager
def blocking():
    """Run a block of code in blocking mode."""
    prev = get_mode()
    set_mode(Mode.BLOCKING)
    try:
        yield
    finally:
        set_mode(prev)


@contextlib.contextmanager
def nonblocking():
    """Run a block of code in non-blocking (lazy) mode."""
    prev = get_mode()
    set_mode(Mode.NONBLOCKING)
    try:
        yield
    finally:
        set_mode(prev)
