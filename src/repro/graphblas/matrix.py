"""The opaque ``GrB_Matrix`` object.

Storage is a :class:`~repro.graphblas.formats.SparseStore` in one of the
four formats the paper describes (CSR, CSC, HyperCSR, HyperCSC), plus the
two deferred-update structures of section II.A:

* **pending tuples** — an unordered list of (i, j, v) for fast insertion;
* **zombies** — entries tagged for deletion but still physically present.

``wait()`` assembles both in a single O(n + e + p log p) pass, which is why
a sequence of e ``setElement`` calls is as fast as one e-tuple ``build`` —
the quantitative claim reproduced by bench E1.  In blocking mode each update
assembles immediately (O(e) per call).

A matrix may cache its opposite-orientation twin (``by_row``/``by_col``
below) — the dual CSR+CSC storage that GraphBLAST (section II.E, Figure 3)
uses for direction-optimized traversal, at 2x memory.
"""

from __future__ import annotations

import time as _time

import numpy as np

from . import context, engine, faults, governor, telemetry, updatelog
from .errors import (
    IndexOutOfBounds,
    InvalidValue,
    NoValue,
    UninitializedObject,
    check_index,
)
from .formats import Orientation, SparseStore, merge_sorted_delta
from .ops import SECOND, binary
from .types import Type, lookup_type
from .updatelog import DeltaBatch, UpdateLog, coords_isin as _coords_isin

__all__ = ["Matrix"]

_INDEX = np.int64
_EMPTY_IDX = np.empty(0, dtype=_INDEX)

#: Most recent assembled windows kept per delta-tracking matrix; consumers
#: that fall further behind recompute from scratch instead of patching.
DELTA_LOG_LIMIT = 64

# Switch to hypersparse when fewer than 1/HYPER_SWITCH of rows are non-empty
# (SuiteSparse exploits hypersparsity automatically; same spirit here).
HYPER_SWITCH = 16

# Above this major dimension a full O(n) pointer array is never allocated:
# matrices are born hypersparse, so "matrices with enormous dimensions can
# be created, as long as e << n" (section II.A).
AUTO_HYPER_DIM = 1 << 26


class Matrix:
    """An opaque sparse matrix over a GraphBLAS domain.

    Create with :meth:`Matrix.new`, :meth:`Matrix.from_coo`,
    :meth:`Matrix.from_dense`, or the capi facade.  All Table-I operations
    live in :mod:`repro.graphblas.operations`; this class only owns storage,
    incremental updates, and format control.
    """

    __slots__ = (
        "dtype",
        "nrows",
        "ncols",
        "_store",
        "_alt",
        "_log",
        "_deltas",
        "_track_deltas",
        "_valid",
        "_keep_both",
        "_epoch",
        "_alt_epoch",
        "__weakref__",
    )

    def __init__(self, dtype, nrows: int, ncols: int):
        nrows = int(nrows)
        ncols = int(ncols)
        if nrows <= 0 or ncols <= 0:
            raise InvalidValue("matrix dimensions must be positive")
        if faults.ENABLED:
            faults.trip("alloc")
        self.dtype: Type = lookup_type(dtype)
        self.nrows = nrows
        self.ncols = ncols
        self._store = SparseStore.empty(
            Orientation.ROW, nrows, ncols, self.dtype, hyper=nrows > AUTO_HYPER_DIM
        )
        self._alt: SparseStore | None = None  # cached flipped orientation
        # one ordered update log: insertions (pending tuples) and deletions
        # (zombies); ordering matters when both touch the same coordinate
        self._log = UpdateLog(matrix=True)
        # settled windows (DeltaBatch chain) when track_deltas() is on
        self._deltas: list[DeltaBatch] = []
        self._track_deltas = False
        self._valid = True
        self._keep_both = False
        # Mutation epoch for dual-format cache invalidation: bumped on
        # every primary-store change; the cached twin is only served while
        # _alt_epoch matches (engine.DUAL_FORMAT mode).
        self._epoch = 0
        self._alt_epoch = -1

    # -- constructors ------------------------------------------------------

    @classmethod
    def new(cls, dtype, nrows: int, ncols: int) -> "Matrix":
        """``GrB_Matrix_new``."""
        return cls(dtype, nrows, ncols)

    @classmethod
    def from_coo(
        cls,
        rows,
        cols,
        values,
        *,
        nrows: int | None = None,
        ncols: int | None = None,
        dtype=None,
        dup="PLUS",
    ) -> "Matrix":
        """Build from coordinate arrays (convenience over new + build)."""
        rows = np.asarray(rows, dtype=_INDEX)
        cols = np.asarray(cols, dtype=_INDEX)
        values = np.asarray(values)
        if np.isscalar(values) or values.ndim == 0:
            values = np.broadcast_to(values, rows.shape).copy()
        if nrows is None:
            nrows = int(rows.max()) + 1 if rows.size else 1
        if ncols is None:
            ncols = int(cols.max()) + 1 if cols.size else 1
        if dtype is None:
            dtype = values.dtype if values.size else np.float64
        m = cls(dtype, nrows, ncols)
        m.build(rows, cols, values, dup=dup)
        return m

    @classmethod
    def from_dense(cls, array, *, missing=None, dtype=None) -> "Matrix":
        """Build from a dense 2-D array; ``missing`` marks absent entries."""
        array = np.asarray(array)
        if array.ndim != 2:
            raise InvalidValue("from_dense needs a 2-D array")
        if missing is None:
            mask = np.ones(array.shape, dtype=bool)
        elif missing != missing:  # NaN sentinel
            mask = ~np.isnan(array)
        else:
            mask = array != missing
        rows, cols = np.nonzero(mask)
        return cls.from_coo(
            rows,
            cols,
            array[mask],
            nrows=array.shape[0],
            ncols=array.shape[1],
            dtype=dtype or array.dtype,
        )

    @classmethod
    def sparse_identity(cls, n: int, dtype=np.float64, value=1) -> "Matrix":
        idx = np.arange(n, dtype=_INDEX)
        return cls.from_coo(idx, idx, np.full(n, value), nrows=n, ncols=n, dtype=dtype)

    # -- invariants --------------------------------------------------------

    def _require_valid(self) -> None:
        if not self._valid:
            raise UninitializedObject(
                "matrix contents were moved out by export (section IV move semantics)"
            )

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrows, self.ncols)

    @property
    def has_pending(self) -> bool:
        return bool(self._log)

    @property
    def npending(self) -> int:
        """Pending insertions (the paper's *pending tuples*)."""
        return self._log.npending

    @property
    def nzombies(self) -> int:
        """Pending deletions (the paper's *zombies*)."""
        return self._log.nzombies

    # Raw update-log views, kept as assignable properties because the capi
    # snapshot/restore path and the resilience harness address the log
    # through them.
    @property
    def _pend_i(self) -> list[int]:
        return self._log.i

    @_pend_i.setter
    def _pend_i(self, value) -> None:
        self._log.i = list(value)

    @property
    def _pend_j(self) -> list[int]:
        return self._log.j

    @_pend_j.setter
    def _pend_j(self, value) -> None:
        self._log.j = list(value)

    @property
    def _pend_v(self) -> list:
        return self._log.v

    @_pend_v.setter
    def _pend_v(self, value) -> None:
        self._log.v = list(value)

    @property
    def _pend_del(self) -> list[bool]:
        return self._log.deleted

    @_pend_del.setter
    def _pend_del(self, value) -> None:
        self._log.deleted = list(value)

    @property
    def nvals(self) -> int:
        """``GrB_Matrix_nvals``: forces assembly of pending work."""
        self.wait()
        return self._store.nvals

    @property
    def format(self) -> str:
        s = self._store
        if s.orientation is Orientation.ROW:
            return "hypercsr" if s.hyper else "csr"
        return "hypercsc" if s.hyper else "csc"

    @property
    def nbytes(self) -> int:
        """Bytes held by the primary store (pending work not counted)."""
        self._require_valid()
        return self._store.nbytes

    # -- deferred updates (zombies & pending tuples) ------------------------

    def set_element(self, i: int, j: int, value) -> None:
        """``GrB_Matrix_setElement``: O(1) amortized in non-blocking mode."""
        self._require_valid()
        i = check_index(i, self.nrows, "row index", exc=IndexOutOfBounds)
        j = check_index(j, self.ncols, "col index", exc=IndexOutOfBounds)
        if faults.ENABLED:
            faults.trip("setElement")
        self._log_update(i, j, value, False)

    def remove_element(self, i: int, j: int) -> None:
        """``GrB_Matrix_removeElement``: tags a zombie for deferred deletion."""
        self._require_valid()
        i = check_index(i, self.nrows, "row index", exc=IndexOutOfBounds)
        j = check_index(j, self.ncols, "col index", exc=IndexOutOfBounds)
        if faults.ENABLED:
            faults.trip("removeElement")
        self._log_update(i, j, 0, True)

    def _log_update(self, i: int, j: int, value, is_delete: bool) -> None:
        """Append one action to the update log; in blocking mode assemble at
        once, un-appending the action if assembly fails so no half-applied
        update survives.

        The cached twin is *not* nulled here: it still flips the settled
        store, and ``wait()`` either patches it from the delta or drops it.
        The epoch bump keeps every epoch-checked consumer honest meanwhile.
        """
        log = self._log
        if not log:
            log.from_epoch = self._epoch
            if updatelog.TRACK_DEPTH:
                updatelog.register_for_depth(self)
        log.append(i, j, value, is_delete)
        self._epoch += 1
        if context.get_mode() == context.Mode.BLOCKING:
            try:
                self.wait()
            except BaseException:
                log.pop()
                self._epoch -= 1
                raise

    def update_batch(self, rows, cols, values=None, *, deleted=None) -> "Matrix":
        """Append a batch of set/remove actions to the update log, in order.

        The vectorized counterpart of e ``setElement``/``removeElement``
        calls — the paper's "e setElement calls are as cheap as one build",
        with the per-element Python loop removed.  ``deleted`` marks
        removeElement actions (scalar or per-element); ``values`` may be a
        scalar, an array, or None (deletions / structural batches).  In
        blocking mode the whole batch assembles at once and is rolled back
        in full on failure.
        """
        self._require_valid()
        rows = np.asarray(rows, dtype=_INDEX).ravel()
        cols = np.asarray(cols, dtype=_INDEX).ravel()
        if rows.size != cols.size:
            raise InvalidValue("update_batch row/col arrays must match in length")
        if rows.size == 0:
            return self
        if rows.min() < 0 or rows.max() >= self.nrows:
            raise IndexOutOfBounds("row index out of bounds in update_batch")
        if cols.min() < 0 or cols.max() >= self.ncols:
            raise IndexOutOfBounds("col index out of bounds in update_batch")
        if deleted is None:
            dels = [False] * rows.size
        else:
            dels = np.broadcast_to(
                np.asarray(deleted, dtype=bool), rows.shape
            ).tolist()
        if values is None:
            vals = [0] * rows.size
        else:
            v = np.asarray(values)
            if v.ndim == 0:
                vals = [v.item()] * rows.size
            else:
                if v.size != rows.size:
                    raise InvalidValue(
                        "update_batch values must be scalar or match length"
                    )
                vals = v.ravel().tolist()
        if faults.ENABLED:
            faults.trip("setElement")
        log = self._log
        before = len(log)
        if not log:
            log.from_epoch = self._epoch
            if updatelog.TRACK_DEPTH:
                updatelog.register_for_depth(self)
        log.extend(rows.tolist(), cols.tolist(), vals, dels)
        self._epoch += rows.size
        if context.get_mode() == context.Mode.BLOCKING:
            try:
                self.wait()
            except BaseException:
                log.truncate(before)
                self._epoch -= rows.size
                raise
        return self

    # -- settled delta windows ---------------------------------------------

    def track_deltas(self, flag: bool = True) -> "Matrix":
        """Record a :class:`DeltaBatch` per assembled window.

        While on, every ``wait()`` that settles pending work appends its
        window to a bounded chain retrievable with :meth:`deltas_since` —
        the feed consumed by incremental maintenance.  Off by default
        (zero cost for matrices nobody maintains state against).
        """
        self._track_deltas = bool(flag)
        if not flag:
            self._deltas.clear()
        return self

    @property
    def last_delta(self) -> DeltaBatch | None:
        """The most recently assembled window, if tracking is on."""
        return self._deltas[-1] if self._deltas else None

    def deltas_since(self, epoch: int) -> list[DeltaBatch] | None:
        """The contiguous window chain from settled ``epoch`` to now.

        Returns ``[]`` when nothing changed, or None when the chain cannot
        be reconstructed — tracking off, work still pending, a bulk
        mutation (build/clear/resize/set_format) broke the chain, or the
        bounded window log no longer reaches back to ``epoch``.  A None
        means the consumer must recompute from scratch.
        """
        if not self._track_deltas or self.has_pending:
            return None
        if epoch == self._epoch:
            return []
        chain: list[DeltaBatch] = []
        for d in reversed(self._deltas):
            chain.append(d)
            if d.epoch_from == epoch:
                break
        else:
            return None
        chain.reverse()
        at = epoch
        for d in chain:
            if d.epoch_from != at:
                return None
            at = d.epoch_to
        return chain if at == self._epoch else None

    def _remember_delta(self, delta: DeltaBatch) -> None:
        if self._deltas and self._deltas[-1].epoch_to != delta.epoch_from:
            # a bulk mutation bumped the epoch without a window in between:
            # older batches can no longer chain to any cached consumer state
            self._deltas.clear()
        self._deltas.append(delta)
        if len(self._deltas) > DELTA_LOG_LIMIT:
            del self._deltas[0]

    def wait(self) -> "Matrix":
        """``GrB_Matrix_wait``: kill zombies and assemble pending tuples.

        A single O(n + e + p log p) pass (hypersparse: O(e + p log p)), per
        the paper's section II.A.
        """
        self._require_valid()
        if not self.has_pending:
            return self
        if governor.ACTIVE:
            # Poll before any assembly work: a cancellation here leaves
            # the store and the whole pending/zombie log fully intact.
            governor.poll()
        if faults.ENABLED:
            faults.trip("assemble")
        if telemetry.ENABLED:
            _t0 = _time.perf_counter()
            _pending = len(self._log)
            _zombies = sum(self._log.deleted)
        orient = self._store.orientation
        hyper = self._store.hyper
        res = self._log.resolve(
            self.dtype, major_is_row=orient is Orientation.ROW
        )
        li, lj, ins, lv = res.i, res.j, res.ins, res.values

        major, minor, values = self._store.to_coo()
        if orient is Orientation.COL:
            rows, cols = minor, major
            n_major, n_minor = self.ncols, self.nrows
        else:
            rows, cols = major, minor
            n_major, n_minor = self.nrows, self.ncols

        prev_r = prev_c = _EMPTY_IDX
        prev_v = None
        if res.fast and rows.size == 0:
            # empty store + sorted unique insertions: assemble with no
            # sort and no dedup at all
            pmaj, pmin = (lj, li) if orient is Orientation.COL else (li, lj)
            assembled = SparseStore.from_coo(
                orient,
                n_major,
                n_minor,
                pmaj,
                pmin,
                lv,
                self.dtype,
                hyper=hyper,
                assume_sorted_unique=True,
            )
        else:
            # zombie kill + pending override: drop stored entries touched
            # by the log, then merge the surviving insertions into the
            # kept run (already sorted) instead of re-sorting everything
            keep = ~_coords_isin(rows, cols, li, lj, self.ncols)
            if self._track_deltas and not keep.all():
                hit = ~keep
                prev_r, prev_c = rows[hit].copy(), cols[hit].copy()
                prev_v = values[hit].copy()
            ins_maj, ins_min = (
                (lj[ins], li[ins]) if orient is Orientation.COL else (li[ins], lj[ins])
            )
            assembled = merge_sorted_delta(
                orient,
                n_major,
                n_minor,
                major[keep],
                minor[keep],
                values[keep],
                ins_maj,
                ins_min,
                lv,
                self.dtype,
                hyper=hyper,
            )
            if assembled is None:
                # enormous dimensions overflow the composite merge key:
                # fall back to the re-sorting assembly
                cat_maj = np.concatenate([major[keep], ins_maj])
                cat_min = np.concatenate([minor[keep], ins_min])
                cat_val = np.concatenate([values[keep], lv])
                assembled = SparseStore.from_coo(
                    orient,
                    n_major,
                    n_minor,
                    cat_maj,
                    cat_min,
                    cat_val,
                    self.dtype,
                    dup=SECOND,
                    hyper=hyper,
                )

        # Patch the cached twin from the same delta instead of dropping it
        # (engine.TWIN_PATCH): the alt store flips the pre-window epoch, so
        # killing the same coordinates and merging the same insertions in
        # its orientation re-synchronizes it without an O(e log e) rebuild.
        new_alt = None
        if (
            self._alt is not None
            and (self._keep_both or engine.DUAL_FORMAT)
            and engine.TWIN_PATCH
        ):
            new_alt = self._patched_alt(li, lj, ins, lv)

        # atomic commit: nothing is touched until assembly fully succeeded,
        # so a mid-assembly failure leaves both the store and the update log
        # exactly as they were
        from_epoch = self._log.from_epoch
        self._store = assembled
        self._log.clear()
        self._epoch += 1
        if new_alt is not None:
            self._alt = new_alt
            self._alt_epoch = self._epoch
        else:
            self._alt = None
        if self._track_deltas:
            if prev_v is None:
                prev_v = np.empty(0, dtype=self.dtype.np_dtype)
            self._remember_delta(
                DeltaBatch(
                    self.nrows,
                    self.ncols,
                    self.dtype,
                    li[ins],
                    lj[ins],
                    lv,
                    li[~ins],
                    lj[~ins],
                    prev_r,
                    prev_c,
                    prev_v,
                    from_epoch,
                    self._epoch,
                )
            )
        if telemetry.ENABLED:
            telemetry.decision(
                "assembly",
                object="matrix",
                pending=_pending,
                zombies=_zombies,
                nvals=int(assembled.nvals),
                fast_path=res.fast,
                twin_patched=new_alt is not None,
            )
            telemetry.record_op("wait", _time.perf_counter() - _t0, int(assembled.nvals))
        return self

    def _patched_alt(self, li, lj, ins, lv) -> SparseStore | None:
        """Apply the resolved log to the flipped-orientation twin.

        Returns the patched store, or None when the composite merge key
        would overflow (the caller then drops the twin and lets the next
        ``by_row``/``by_col`` rebuild it).
        """
        alt = self._alt
        amaj, amin, avals = alt.to_coo()
        if alt.orientation is Orientation.ROW:
            arows, acols = amaj, amin
            ins_maj, ins_min = li[ins], lj[ins]
        else:
            arows, acols = amin, amaj
            ins_maj, ins_min = lj[ins], li[ins]
        keep = ~_coords_isin(arows, acols, li, lj, self.ncols)
        return merge_sorted_delta(
            alt.orientation,
            alt.n_major,
            alt.n_minor,
            amaj[keep],
            amin[keep],
            avals[keep],
            ins_maj,
            ins_min,
            lv,
            self.dtype,
            hyper=alt.hyper,
        )

    # -- element access ----------------------------------------------------

    def extract_element(self, i: int, j: int):
        """``GrB_Matrix_extractElement``; raises :class:`NoValue` if absent."""
        self._require_valid()
        self.wait()
        i, j = int(i), int(j)
        if not (0 <= i < self.nrows and 0 <= j < self.ncols):
            raise IndexOutOfBounds(f"({i},{j}) outside {self.shape}")
        s = self._store
        maj, mino = (i, j) if s.orientation is Orientation.ROW else (j, i)
        start, end = s.major_ranges(np.array([maj], dtype=_INDEX))
        lo, hi = int(start[0]), int(end[0])
        pos = lo + np.searchsorted(s.minor[lo:hi], mino)
        if pos < hi and s.minor[pos] == mino:
            return s.values[pos].item() if self.dtype.builtin else s.values[pos]
        raise NoValue(f"no entry at ({i},{j})")

    def get(self, i: int, j: int, default=None):
        """Pythonic extract_element returning ``default`` when absent."""
        try:
            return self.extract_element(i, j)
        except NoValue:
            return default

    def __getitem__(self, key):
        i, j = key
        return self.extract_element(i, j)

    def __setitem__(self, key, value) -> None:
        i, j = key
        self.set_element(i, j, value)

    def build(
        self, rows, cols, values, dup="PLUS", *, assume_sorted_unique=False
    ) -> "Matrix":
        """``GrB_Matrix_build``: bulk construction from tuples.

        The target must be empty (``OutputNotEmpty`` otherwise, per spec).
        ``assume_sorted_unique`` skips the sort/dedup pass; the caller
        asserts the tuples are strictly sorted along this matrix's storage
        orientation with no duplicate coordinates.
        """
        from .errors import OutputNotEmpty

        self._require_valid()
        if self._store.nvals or self.has_pending:
            raise OutputNotEmpty("build requires an empty matrix")
        if faults.ENABLED:
            faults.trip("build")
        rows = np.asarray(rows, dtype=_INDEX)
        cols = np.asarray(cols, dtype=_INDEX)
        values = np.asarray(values)
        if rows.size:
            if rows.min() < 0 or rows.max() >= self.nrows:
                raise IndexOutOfBounds("row index out of bounds in build")
            if cols.min() < 0 or cols.max() >= self.ncols:
                raise IndexOutOfBounds("col index out of bounds in build")
        dup_op = binary(dup) if dup is not None else None
        hyper = self._store.hyper
        self._store = SparseStore.from_coo(
            self._store.orientation,
            self._store.n_major,
            self._store.n_minor,
            rows if self._store.orientation is Orientation.ROW else cols,
            cols if self._store.orientation is Orientation.ROW else rows,
            values,
            self.dtype,
            dup=dup_op,
            hyper=hyper,
            assume_sorted_unique=assume_sorted_unique,
        )
        self._alt = None
        self._epoch += 1
        return self

    def extract_tuples(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``GrB_Matrix_extractTuples``: Omega(e) copy-out of all entries."""
        self._require_valid()
        self.wait()
        major, minor, values = self._store.to_coo()
        if self._store.orientation is Orientation.COL:
            rows, cols = minor.copy(), major
        else:
            rows, cols = major, minor.copy()
        return rows, cols, values.copy()

    # -- format control ------------------------------------------------------

    def set_format(self, fmt: str) -> "Matrix":
        """Switch storage among csr / csc / hypercsr / hypercsc."""
        self._require_valid()
        self.wait()
        fmt = fmt.lower()
        want_orient = Orientation.COL if fmt.endswith("csc") else Orientation.ROW
        if fmt not in ("csr", "csc", "hypercsr", "hypercsc"):
            raise InvalidValue(f"unknown format {fmt!r}")
        want_hyper = fmt.startswith("hyper")
        s = self._store.with_orientation(want_orient)
        s = s.to_hyper() if want_hyper else s.to_full_pointer()
        self._store = s
        self._alt = None
        self._epoch += 1
        if telemetry.ENABLED:
            telemetry.decision(
                "format", object="matrix", format=fmt, forced=True,
                nvals=int(s.nvals),
            )
        return self

    def auto_format(self) -> "Matrix":
        """Pick hypersparse automatically when most vectors are empty."""
        self._require_valid()
        self.wait()
        s = self._store
        nonempty = s.nvec if s.hyper else int(np.count_nonzero(np.diff(s.indptr)))
        if nonempty * HYPER_SWITCH < s.n_major:
            self._store = s.to_hyper()
        else:
            self._store = s.to_full_pointer()
        if telemetry.ENABLED:
            telemetry.decision(
                "format",
                object="matrix",
                format=self.format,
                forced=False,
                nonempty=nonempty,
                n_major=int(s.n_major),
            )
        return self

    def keep_both_orientations(self, flag: bool = True) -> "Matrix":
        """Keep both CSR and CSC copies alive (GraphBLAST's 2x-memory mode)."""
        self._keep_both = bool(flag)
        if not flag:
            self._alt = None
        return self

    def by_row(self) -> SparseStore:
        """Row-oriented store view (converting and caching if needed)."""
        return self._oriented(Orientation.ROW)

    def by_col(self) -> SparseStore:
        """Column-oriented store view (converting and caching if needed)."""
        return self._oriented(Orientation.COL)

    def to_tiled(self, tile_dim: int, *, pool=None):
        """Partition into a :class:`~repro.graphblas.tiled.TiledMatrix`.

        Waits pending updates first (the tiles snapshot the settled
        epoch).  ``pool`` defaults to a fresh
        :class:`~repro.graphblas.tiled.SpillPool` configured from the
        governing context / environment.
        """
        from . import tiled as _tiled

        if pool is None:
            pool = _tiled.SpillPool()
        return _tiled.TiledMatrix.from_matrix(self, tile_dim, pool)

    def _oriented(self, orientation: Orientation) -> SparseStore:
        self._require_valid()
        self.wait()
        if self._store.orientation == orientation:
            return self._store
        if (
            self._alt is not None
            and self._alt.orientation == orientation
            and (self._keep_both or self._alt_epoch == self._epoch)
        ):
            return self._alt
        alt = self._store.with_orientation(orientation)
        if self._keep_both or engine.DUAL_FORMAT:
            # persistent dual-orientation twin: invalidated by nulling on
            # every mutation AND by the epoch check (belt and braces), so
            # a stale twin can never be served
            self._alt = alt
            self._alt_epoch = self._epoch
            if telemetry.ENABLED:
                telemetry.decision(
                    "engine.twin",
                    object="matrix",
                    orientation=orientation.name.lower(),
                    nvals=int(alt.nvals),
                    epoch=self._epoch,
                )
        return alt

    # -- whole-object operations -------------------------------------------

    def dup(self) -> "Matrix":
        """``GrB_Matrix_dup``: deep copy."""
        self._require_valid()
        self.wait()
        out = Matrix(self.dtype, self.nrows, self.ncols)
        out._store = self._store.copy()
        out._keep_both = self._keep_both
        return out

    def clear(self) -> "Matrix":
        """``GrB_Matrix_clear``: drop all entries, keep dimensions/type."""
        self._require_valid()
        self._log.clear()
        self._deltas.clear()
        self._store = SparseStore.empty(
            self._store.orientation,
            self._store.n_major,
            self._store.n_minor,
            self.dtype,
            hyper=self._store.hyper,
        )
        self._alt = None
        self._epoch += 1
        return self

    def resize(self, nrows: int, ncols: int) -> "Matrix":
        """``GrB_Matrix_resize``: grow or shrink (dropping outside entries)."""
        self._require_valid()
        self.wait()
        nrows, ncols = int(nrows), int(ncols)
        if nrows <= 0 or ncols <= 0:
            raise InvalidValue("matrix dimensions must be positive")
        rows, cols, vals = self.extract_tuples()
        keep = (rows < nrows) & (cols < ncols)
        orient = self._store.orientation
        hyper = self._store.hyper
        self.nrows, self.ncols = nrows, ncols
        n_major, n_minor = (
            (nrows, ncols) if orient is Orientation.ROW else (ncols, nrows)
        )
        major = rows[keep] if orient is Orientation.ROW else cols[keep]
        minor = cols[keep] if orient is Orientation.ROW else rows[keep]
        self._store = SparseStore.from_coo(
            orient,
            n_major,
            n_minor,
            major,
            minor,
            vals[keep],
            self.dtype,
            hyper=hyper,
            assume_sorted_unique=(orient is Orientation.ROW),
        )
        self._alt = None
        self._epoch += 1
        return self

    def to_dense(self, fill=0) -> np.ndarray:
        """Dense 2-D array with ``fill`` in empty positions (test helper)."""
        self._require_valid()
        self.wait()
        out = np.full((self.nrows, self.ncols), fill, dtype=self.dtype.np_dtype)
        rows, cols, vals = self.extract_tuples()
        out[rows, cols] = vals
        return out

    def pattern(self) -> np.ndarray:
        """Dense boolean structure matrix (test helper)."""
        self._require_valid()
        self.wait()
        out = np.zeros((self.nrows, self.ncols), dtype=bool)
        rows, cols, _ = self.extract_tuples()
        out[rows, cols] = True
        return out

    def to_scipy(self, format: str = "csr"):
        """Export as a ``scipy.sparse`` matrix (``csr``/``csc``/``coo``).

        Explicit zeros are preserved: scipy keeps stored entries until one
        of its own operations prunes them, so the round-trip through
        :meth:`from_scipy` is pattern-exact.  Raises ImportError when
        scipy is not installed.
        """
        import scipy.sparse as sp

        rows, cols, vals = self.extract_tuples()
        coo = sp.coo_matrix((vals, (rows, cols)), shape=self.shape)
        return coo.asformat(format)

    @classmethod
    def from_scipy(cls, A, *, dtype=None) -> "Matrix":
        """Build from any ``scipy.sparse`` matrix, keeping stored zeros."""
        coo = A.tocoo()
        return cls.from_coo(
            coo.row,
            coo.col,
            coo.data,
            nrows=A.shape[0],
            ncols=A.shape[1],
            dtype=dtype,
            dup=None,
        )

    def isequal(self, other: "Matrix") -> bool:
        """Same type, dimensions, pattern, and values (LAGraph_IsEqual)."""
        if not isinstance(other, Matrix):
            return False
        if self.dtype != other.dtype or self.shape != other.shape:
            return False
        r1, c1, v1 = self.extract_tuples()
        r2, c2, v2 = other.extract_tuples()
        if r1.size != r2.size:
            return False
        # extractTuples order depends on the storage orientation; compare
        # canonically (row-major) so CSR and CSC twins test equal
        o1 = np.lexsort((c1, r1))
        o2 = np.lexsort((c2, r2))
        return (
            bool(np.array_equal(r1[o1], r2[o2]))
            and bool(np.array_equal(c1[o1], c2[o2]))
            and bool(np.array_equal(v1[o1], v2[o2]))
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self._valid:
            return "Matrix(<moved>)"
        pend = f", pending={self.npending}, zombies={self.nzombies}" if self.has_pending else ""
        return (
            f"Matrix({self.dtype.name}, {self.nrows}x{self.ncols}, "
            f"nvals={self._store.nvals}{pend}, format={self.format})"
        )
