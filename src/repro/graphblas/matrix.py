"""The opaque ``GrB_Matrix`` object.

Storage is a :class:`~repro.graphblas.formats.SparseStore` in one of the
four formats the paper describes (CSR, CSC, HyperCSR, HyperCSC), plus the
two deferred-update structures of section II.A:

* **pending tuples** — an unordered list of (i, j, v) for fast insertion;
* **zombies** — entries tagged for deletion but still physically present.

``wait()`` assembles both in a single O(n + e + p log p) pass, which is why
a sequence of e ``setElement`` calls is as fast as one e-tuple ``build`` —
the quantitative claim reproduced by bench E1.  In blocking mode each update
assembles immediately (O(e) per call).

A matrix may cache its opposite-orientation twin (``by_row``/``by_col``
below) — the dual CSR+CSC storage that GraphBLAST (section II.E, Figure 3)
uses for direction-optimized traversal, at 2x memory.
"""

from __future__ import annotations

import time as _time

import numpy as np

from . import context, engine, faults, governor, telemetry
from .errors import (
    IndexOutOfBounds,
    InvalidValue,
    NoValue,
    UninitializedObject,
    check_index,
)
from .formats import Orientation, SparseStore
from .ops import SECOND, binary
from .types import Type, lookup_type

__all__ = ["Matrix"]

_INDEX = np.int64

# Switch to hypersparse when fewer than 1/HYPER_SWITCH of rows are non-empty
# (SuiteSparse exploits hypersparsity automatically; same spirit here).
HYPER_SWITCH = 16

# Above this major dimension a full O(n) pointer array is never allocated:
# matrices are born hypersparse, so "matrices with enormous dimensions can
# be created, as long as e << n" (section II.A).
AUTO_HYPER_DIM = 1 << 26


class Matrix:
    """An opaque sparse matrix over a GraphBLAS domain.

    Create with :meth:`Matrix.new`, :meth:`Matrix.from_coo`,
    :meth:`Matrix.from_dense`, or the capi facade.  All Table-I operations
    live in :mod:`repro.graphblas.operations`; this class only owns storage,
    incremental updates, and format control.
    """

    __slots__ = (
        "dtype",
        "nrows",
        "ncols",
        "_store",
        "_alt",
        "_pend_i",
        "_pend_j",
        "_pend_v",
        "_pend_del",
        "_valid",
        "_keep_both",
        "_epoch",
        "_alt_epoch",
    )

    def __init__(self, dtype, nrows: int, ncols: int):
        nrows = int(nrows)
        ncols = int(ncols)
        if nrows <= 0 or ncols <= 0:
            raise InvalidValue("matrix dimensions must be positive")
        if faults.ENABLED:
            faults.trip("alloc")
        self.dtype: Type = lookup_type(dtype)
        self.nrows = nrows
        self.ncols = ncols
        self._store = SparseStore.empty(
            Orientation.ROW, nrows, ncols, self.dtype, hyper=nrows > AUTO_HYPER_DIM
        )
        self._alt: SparseStore | None = None  # cached flipped orientation
        # one ordered update log: insertions (pending tuples) and deletions
        # (zombies); ordering matters when both touch the same coordinate
        self._pend_i: list[int] = []
        self._pend_j: list[int] = []
        self._pend_v: list = []
        self._pend_del: list[bool] = []
        self._valid = True
        self._keep_both = False
        # Mutation epoch for dual-format cache invalidation: bumped on
        # every primary-store change; the cached twin is only served while
        # _alt_epoch matches (engine.DUAL_FORMAT mode).
        self._epoch = 0
        self._alt_epoch = -1

    # -- constructors ------------------------------------------------------

    @classmethod
    def new(cls, dtype, nrows: int, ncols: int) -> "Matrix":
        """``GrB_Matrix_new``."""
        return cls(dtype, nrows, ncols)

    @classmethod
    def from_coo(
        cls,
        rows,
        cols,
        values,
        *,
        nrows: int | None = None,
        ncols: int | None = None,
        dtype=None,
        dup="PLUS",
    ) -> "Matrix":
        """Build from coordinate arrays (convenience over new + build)."""
        rows = np.asarray(rows, dtype=_INDEX)
        cols = np.asarray(cols, dtype=_INDEX)
        values = np.asarray(values)
        if np.isscalar(values) or values.ndim == 0:
            values = np.broadcast_to(values, rows.shape).copy()
        if nrows is None:
            nrows = int(rows.max()) + 1 if rows.size else 1
        if ncols is None:
            ncols = int(cols.max()) + 1 if cols.size else 1
        if dtype is None:
            dtype = values.dtype if values.size else np.float64
        m = cls(dtype, nrows, ncols)
        m.build(rows, cols, values, dup=dup)
        return m

    @classmethod
    def from_dense(cls, array, *, missing=None, dtype=None) -> "Matrix":
        """Build from a dense 2-D array; ``missing`` marks absent entries."""
        array = np.asarray(array)
        if array.ndim != 2:
            raise InvalidValue("from_dense needs a 2-D array")
        if missing is None:
            mask = np.ones(array.shape, dtype=bool)
        elif missing != missing:  # NaN sentinel
            mask = ~np.isnan(array)
        else:
            mask = array != missing
        rows, cols = np.nonzero(mask)
        return cls.from_coo(
            rows,
            cols,
            array[mask],
            nrows=array.shape[0],
            ncols=array.shape[1],
            dtype=dtype or array.dtype,
        )

    @classmethod
    def sparse_identity(cls, n: int, dtype=np.float64, value=1) -> "Matrix":
        idx = np.arange(n, dtype=_INDEX)
        return cls.from_coo(idx, idx, np.full(n, value), nrows=n, ncols=n, dtype=dtype)

    # -- invariants --------------------------------------------------------

    def _require_valid(self) -> None:
        if not self._valid:
            raise UninitializedObject(
                "matrix contents were moved out by export (section IV move semantics)"
            )

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrows, self.ncols)

    @property
    def has_pending(self) -> bool:
        return bool(self._pend_i)

    @property
    def npending(self) -> int:
        """Pending insertions (the paper's *pending tuples*)."""
        return sum(1 for d in self._pend_del if not d)

    @property
    def nzombies(self) -> int:
        """Pending deletions (the paper's *zombies*)."""
        return sum(1 for d in self._pend_del if d)

    @property
    def nvals(self) -> int:
        """``GrB_Matrix_nvals``: forces assembly of pending work."""
        self.wait()
        return self._store.nvals

    @property
    def format(self) -> str:
        s = self._store
        if s.orientation is Orientation.ROW:
            return "hypercsr" if s.hyper else "csr"
        return "hypercsc" if s.hyper else "csc"

    @property
    def nbytes(self) -> int:
        """Bytes held by the primary store (pending work not counted)."""
        self._require_valid()
        return self._store.nbytes

    # -- deferred updates (zombies & pending tuples) ------------------------

    def set_element(self, i: int, j: int, value) -> None:
        """``GrB_Matrix_setElement``: O(1) amortized in non-blocking mode."""
        self._require_valid()
        i = check_index(i, self.nrows, "row index", exc=IndexOutOfBounds)
        j = check_index(j, self.ncols, "col index", exc=IndexOutOfBounds)
        if faults.ENABLED:
            faults.trip("setElement")
        self._log_update(i, j, value, False)

    def remove_element(self, i: int, j: int) -> None:
        """``GrB_Matrix_removeElement``: tags a zombie for deferred deletion."""
        self._require_valid()
        i = check_index(i, self.nrows, "row index", exc=IndexOutOfBounds)
        j = check_index(j, self.ncols, "col index", exc=IndexOutOfBounds)
        if faults.ENABLED:
            faults.trip("removeElement")
        self._log_update(i, j, 0, True)

    def _log_update(self, i: int, j: int, value, is_delete: bool) -> None:
        """Append one action to the update log; in blocking mode assemble at
        once, un-appending the action if assembly fails so no half-applied
        update survives."""
        prev_alt = self._alt
        prev_epoch = self._epoch
        self._pend_i.append(i)
        self._pend_j.append(j)
        self._pend_v.append(value)
        self._pend_del.append(is_delete)
        self._alt = None
        self._epoch += 1
        if context.get_mode() == context.Mode.BLOCKING:
            try:
                self.wait()
            except BaseException:
                del self._pend_i[-1]
                del self._pend_j[-1]
                del self._pend_v[-1]
                del self._pend_del[-1]
                self._alt = prev_alt
                self._epoch = prev_epoch
                raise

    def wait(self) -> "Matrix":
        """``GrB_Matrix_wait``: kill zombies and assemble pending tuples.

        A single O(n + e + p log p) pass (hypersparse: O(e + p log p)), per
        the paper's section II.A.
        """
        self._require_valid()
        if not self.has_pending:
            return self
        if governor.ACTIVE:
            # Poll before any assembly work: a cancellation here leaves
            # the store and the whole pending/zombie log fully intact.
            governor.poll()
        if faults.ENABLED:
            faults.trip("assemble")
        if telemetry.ENABLED:
            _t0 = _time.perf_counter()
            _pending = len(self._pend_i)
            _zombies = sum(self._pend_del)
        major, minor, values = self._store.to_coo()
        if self._store.orientation is Orientation.COL:
            rows, cols = minor, major
        else:
            rows, cols = major, minor
        vals = values

        pi = np.asarray(self._pend_i, dtype=_INDEX)
        pj = np.asarray(self._pend_j, dtype=_INDEX)
        pdel = np.asarray(self._pend_del, dtype=bool)
        orient = self._store.orientation
        hyper = self._store.hyper

        # Sortedness fast path: a zombie-free log already strictly
        # increasing in the store's (major, minor) order needs no sort —
        # the append order is the assembly order, coordinates are unique
        # (strictness), and last-wins dedup is vacuous.
        pmaj, pmin = (pj, pi) if orient is Orientation.COL else (pi, pj)
        fast = not pdel.any() and (
            pi.size == 1
            or bool(
                np.all(
                    (pmaj[1:] > pmaj[:-1])
                    | ((pmaj[1:] == pmaj[:-1]) & (pmin[1:] > pmin[:-1]))
                )
            )
        )
        if fast:
            li, lj = pi, pj
            ins = np.ones(li.size, dtype=bool)
            lv = self.dtype.cast_array(np.asarray(self._pend_v))
        else:
            # the last log action per coordinate wins (lexsort is stable, so
            # the final occurrence in append order is the last in its group)
            order = np.lexsort((pj, pi))
            pi_s, pj_s = pi[order], pj[order]
            last = np.empty(pi_s.size, dtype=bool)
            last[-1] = True
            np.logical_or(
                pi_s[1:] != pi_s[:-1], pj_s[1:] != pj_s[:-1], out=last[:-1]
            )
            sel = order[last]
            li, lj, ldel = pi[sel], pj[sel], pdel[sel]
            ins = ~ldel
            lv = self.dtype.cast_array(
                np.asarray([self._pend_v[k] for k in sel[ins]])
            ) if np.any(ins) else np.empty(0, dtype=self.dtype.np_dtype)

        if orient is Orientation.COL:
            n_major, n_minor = self.ncols, self.nrows
        else:
            n_major, n_minor = self.nrows, self.ncols
        if fast and rows.size == 0:
            # empty store + sorted unique insertions: assemble with no
            # sort and no dedup at all
            assembled = SparseStore.from_coo(
                orient,
                n_major,
                n_minor,
                pmaj,
                pmin,
                lv,
                self.dtype,
                hyper=hyper,
                assume_sorted_unique=True,
            )
        else:
            # zombie kill + pending override: drop stored entries touched
            # by the log, then append the surviving insertions
            keep = ~_coords_isin(rows, cols, li, lj, self.ncols)
            rows = np.concatenate([rows[keep], li[ins]])
            cols = np.concatenate([cols[keep], lj[ins]])
            vals = np.concatenate([vals[keep], lv])
            if orient is Orientation.COL:
                major, minor = cols, rows
            else:
                major, minor = rows, cols
            assembled = SparseStore.from_coo(
                orient,
                n_major,
                n_minor,
                major,
                minor,
                vals,
                self.dtype,
                dup=SECOND,
                hyper=hyper,
            )
        # atomic commit: nothing is touched until assembly fully succeeded,
        # so a mid-assembly failure leaves both the store and the update log
        # exactly as they were
        self._store = assembled
        self._pend_i, self._pend_j = [], []
        self._pend_v, self._pend_del = [], []
        self._alt = None
        self._epoch += 1
        if telemetry.ENABLED:
            telemetry.decision(
                "assembly",
                object="matrix",
                pending=_pending,
                zombies=_zombies,
                nvals=int(assembled.nvals),
                fast_path=fast,
            )
            telemetry.record_op("wait", _time.perf_counter() - _t0, int(assembled.nvals))
        return self

    # -- element access ----------------------------------------------------

    def extract_element(self, i: int, j: int):
        """``GrB_Matrix_extractElement``; raises :class:`NoValue` if absent."""
        self._require_valid()
        self.wait()
        i, j = int(i), int(j)
        if not (0 <= i < self.nrows and 0 <= j < self.ncols):
            raise IndexOutOfBounds(f"({i},{j}) outside {self.shape}")
        s = self._store
        maj, mino = (i, j) if s.orientation is Orientation.ROW else (j, i)
        start, end = s.major_ranges(np.array([maj], dtype=_INDEX))
        lo, hi = int(start[0]), int(end[0])
        pos = lo + np.searchsorted(s.minor[lo:hi], mino)
        if pos < hi and s.minor[pos] == mino:
            return s.values[pos].item() if self.dtype.builtin else s.values[pos]
        raise NoValue(f"no entry at ({i},{j})")

    def get(self, i: int, j: int, default=None):
        """Pythonic extract_element returning ``default`` when absent."""
        try:
            return self.extract_element(i, j)
        except NoValue:
            return default

    def __getitem__(self, key):
        i, j = key
        return self.extract_element(i, j)

    def __setitem__(self, key, value) -> None:
        i, j = key
        self.set_element(i, j, value)

    def build(
        self, rows, cols, values, dup="PLUS", *, assume_sorted_unique=False
    ) -> "Matrix":
        """``GrB_Matrix_build``: bulk construction from tuples.

        The target must be empty (``OutputNotEmpty`` otherwise, per spec).
        ``assume_sorted_unique`` skips the sort/dedup pass; the caller
        asserts the tuples are strictly sorted along this matrix's storage
        orientation with no duplicate coordinates.
        """
        from .errors import OutputNotEmpty

        self._require_valid()
        if self._store.nvals or self.has_pending:
            raise OutputNotEmpty("build requires an empty matrix")
        if faults.ENABLED:
            faults.trip("build")
        rows = np.asarray(rows, dtype=_INDEX)
        cols = np.asarray(cols, dtype=_INDEX)
        values = np.asarray(values)
        if rows.size:
            if rows.min() < 0 or rows.max() >= self.nrows:
                raise IndexOutOfBounds("row index out of bounds in build")
            if cols.min() < 0 or cols.max() >= self.ncols:
                raise IndexOutOfBounds("col index out of bounds in build")
        dup_op = binary(dup) if dup is not None else None
        hyper = self._store.hyper
        self._store = SparseStore.from_coo(
            self._store.orientation,
            self._store.n_major,
            self._store.n_minor,
            rows if self._store.orientation is Orientation.ROW else cols,
            cols if self._store.orientation is Orientation.ROW else rows,
            values,
            self.dtype,
            dup=dup_op,
            hyper=hyper,
            assume_sorted_unique=assume_sorted_unique,
        )
        self._alt = None
        self._epoch += 1
        return self

    def extract_tuples(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``GrB_Matrix_extractTuples``: Omega(e) copy-out of all entries."""
        self._require_valid()
        self.wait()
        major, minor, values = self._store.to_coo()
        if self._store.orientation is Orientation.COL:
            rows, cols = minor.copy(), major
        else:
            rows, cols = major, minor.copy()
        return rows, cols, values.copy()

    # -- format control ------------------------------------------------------

    def set_format(self, fmt: str) -> "Matrix":
        """Switch storage among csr / csc / hypercsr / hypercsc."""
        self._require_valid()
        self.wait()
        fmt = fmt.lower()
        want_orient = Orientation.COL if fmt.endswith("csc") else Orientation.ROW
        if fmt not in ("csr", "csc", "hypercsr", "hypercsc"):
            raise InvalidValue(f"unknown format {fmt!r}")
        want_hyper = fmt.startswith("hyper")
        s = self._store.with_orientation(want_orient)
        s = s.to_hyper() if want_hyper else s.to_full_pointer()
        self._store = s
        self._alt = None
        self._epoch += 1
        if telemetry.ENABLED:
            telemetry.decision(
                "format", object="matrix", format=fmt, forced=True,
                nvals=int(s.nvals),
            )
        return self

    def auto_format(self) -> "Matrix":
        """Pick hypersparse automatically when most vectors are empty."""
        self._require_valid()
        self.wait()
        s = self._store
        nonempty = s.nvec if s.hyper else int(np.count_nonzero(np.diff(s.indptr)))
        if nonempty * HYPER_SWITCH < s.n_major:
            self._store = s.to_hyper()
        else:
            self._store = s.to_full_pointer()
        if telemetry.ENABLED:
            telemetry.decision(
                "format",
                object="matrix",
                format=self.format,
                forced=False,
                nonempty=nonempty,
                n_major=int(s.n_major),
            )
        return self

    def keep_both_orientations(self, flag: bool = True) -> "Matrix":
        """Keep both CSR and CSC copies alive (GraphBLAST's 2x-memory mode)."""
        self._keep_both = bool(flag)
        if not flag:
            self._alt = None
        return self

    def by_row(self) -> SparseStore:
        """Row-oriented store view (converting and caching if needed)."""
        return self._oriented(Orientation.ROW)

    def by_col(self) -> SparseStore:
        """Column-oriented store view (converting and caching if needed)."""
        return self._oriented(Orientation.COL)

    def to_tiled(self, tile_dim: int, *, pool=None):
        """Partition into a :class:`~repro.graphblas.tiled.TiledMatrix`.

        Waits pending updates first (the tiles snapshot the settled
        epoch).  ``pool`` defaults to a fresh
        :class:`~repro.graphblas.tiled.SpillPool` configured from the
        governing context / environment.
        """
        from . import tiled as _tiled

        if pool is None:
            pool = _tiled.SpillPool()
        return _tiled.TiledMatrix.from_matrix(self, tile_dim, pool)

    def _oriented(self, orientation: Orientation) -> SparseStore:
        self._require_valid()
        self.wait()
        if self._store.orientation == orientation:
            return self._store
        if (
            self._alt is not None
            and self._alt.orientation == orientation
            and (self._keep_both or self._alt_epoch == self._epoch)
        ):
            return self._alt
        alt = self._store.with_orientation(orientation)
        if self._keep_both or engine.DUAL_FORMAT:
            # persistent dual-orientation twin: invalidated by nulling on
            # every mutation AND by the epoch check (belt and braces), so
            # a stale twin can never be served
            self._alt = alt
            self._alt_epoch = self._epoch
            if telemetry.ENABLED:
                telemetry.decision(
                    "engine.twin",
                    object="matrix",
                    orientation=orientation.name.lower(),
                    nvals=int(alt.nvals),
                    epoch=self._epoch,
                )
        return alt

    # -- whole-object operations -------------------------------------------

    def dup(self) -> "Matrix":
        """``GrB_Matrix_dup``: deep copy."""
        self._require_valid()
        self.wait()
        out = Matrix(self.dtype, self.nrows, self.ncols)
        out._store = self._store.copy()
        out._keep_both = self._keep_both
        return out

    def clear(self) -> "Matrix":
        """``GrB_Matrix_clear``: drop all entries, keep dimensions/type."""
        self._require_valid()
        self._pend_i, self._pend_j = [], []
        self._pend_v, self._pend_del = [], []
        self._store = SparseStore.empty(
            self._store.orientation,
            self._store.n_major,
            self._store.n_minor,
            self.dtype,
            hyper=self._store.hyper,
        )
        self._alt = None
        self._epoch += 1
        return self

    def resize(self, nrows: int, ncols: int) -> "Matrix":
        """``GrB_Matrix_resize``: grow or shrink (dropping outside entries)."""
        self._require_valid()
        self.wait()
        nrows, ncols = int(nrows), int(ncols)
        if nrows <= 0 or ncols <= 0:
            raise InvalidValue("matrix dimensions must be positive")
        rows, cols, vals = self.extract_tuples()
        keep = (rows < nrows) & (cols < ncols)
        orient = self._store.orientation
        hyper = self._store.hyper
        self.nrows, self.ncols = nrows, ncols
        n_major, n_minor = (
            (nrows, ncols) if orient is Orientation.ROW else (ncols, nrows)
        )
        major = rows[keep] if orient is Orientation.ROW else cols[keep]
        minor = cols[keep] if orient is Orientation.ROW else rows[keep]
        self._store = SparseStore.from_coo(
            orient,
            n_major,
            n_minor,
            major,
            minor,
            vals[keep],
            self.dtype,
            hyper=hyper,
            assume_sorted_unique=(orient is Orientation.ROW),
        )
        self._alt = None
        self._epoch += 1
        return self

    def to_dense(self, fill=0) -> np.ndarray:
        """Dense 2-D array with ``fill`` in empty positions (test helper)."""
        self._require_valid()
        self.wait()
        out = np.full((self.nrows, self.ncols), fill, dtype=self.dtype.np_dtype)
        rows, cols, vals = self.extract_tuples()
        out[rows, cols] = vals
        return out

    def pattern(self) -> np.ndarray:
        """Dense boolean structure matrix (test helper)."""
        self._require_valid()
        self.wait()
        out = np.zeros((self.nrows, self.ncols), dtype=bool)
        rows, cols, _ = self.extract_tuples()
        out[rows, cols] = True
        return out

    def to_scipy(self, format: str = "csr"):
        """Export as a ``scipy.sparse`` matrix (``csr``/``csc``/``coo``).

        Explicit zeros are preserved: scipy keeps stored entries until one
        of its own operations prunes them, so the round-trip through
        :meth:`from_scipy` is pattern-exact.  Raises ImportError when
        scipy is not installed.
        """
        import scipy.sparse as sp

        rows, cols, vals = self.extract_tuples()
        coo = sp.coo_matrix((vals, (rows, cols)), shape=self.shape)
        return coo.asformat(format)

    @classmethod
    def from_scipy(cls, A, *, dtype=None) -> "Matrix":
        """Build from any ``scipy.sparse`` matrix, keeping stored zeros."""
        coo = A.tocoo()
        return cls.from_coo(
            coo.row,
            coo.col,
            coo.data,
            nrows=A.shape[0],
            ncols=A.shape[1],
            dtype=dtype,
            dup=None,
        )

    def isequal(self, other: "Matrix") -> bool:
        """Same type, dimensions, pattern, and values (LAGraph_IsEqual)."""
        if not isinstance(other, Matrix):
            return False
        if self.dtype != other.dtype or self.shape != other.shape:
            return False
        r1, c1, v1 = self.extract_tuples()
        r2, c2, v2 = other.extract_tuples()
        if r1.size != r2.size:
            return False
        # extractTuples order depends on the storage orientation; compare
        # canonically (row-major) so CSR and CSC twins test equal
        o1 = np.lexsort((c1, r1))
        o2 = np.lexsort((c2, r2))
        return (
            bool(np.array_equal(r1[o1], r2[o2]))
            and bool(np.array_equal(c1[o1], c2[o2]))
            and bool(np.array_equal(v1[o1], v2[o2]))
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self._valid:
            return "Matrix(<moved>)"
        pend = f", pending={self.npending}, zombies={self.nzombies}" if self.has_pending else ""
        return (
            f"Matrix({self.dtype.name}, {self.nrows}x{self.ncols}, "
            f"nvals={self._store.nvals}{pend}, format={self.format})"
        )


def _coords_isin(
    rows: np.ndarray,
    cols: np.ndarray,
    qi: np.ndarray,
    qj: np.ndarray,
    ncols: int,
) -> np.ndarray:
    """Boolean mask of which (rows, cols) pairs appear in (qi, qj)."""
    if rows.size == 0 or qi.size == 0:
        return np.zeros(rows.size, dtype=bool)
    if ncols <= 2**31:  # composite key fits comfortably in int64
        key = rows * np.int64(ncols) + cols
        qkey = qi * np.int64(ncols) + qj
        return np.isin(key, qkey)
    # huge dimensions: sort query pairs and binary-search both coordinates
    order = np.lexsort((qj, qi))
    qi, qj = qi[order], qj[order]
    lo = np.searchsorted(qi, rows, side="left")
    hi = np.searchsorted(qi, rows, side="right")
    out = np.zeros(rows.size, dtype=bool)
    for k in np.flatnonzero(hi > lo):
        seg = qj[lo[k] : hi[k]]
        p = np.searchsorted(seg, cols[k])
        out[k] = p < seg.size and seg[p] == cols[k]
    return out
