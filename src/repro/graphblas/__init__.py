"""A complete GraphBLAS implementation in Python/NumPy.

This package is the *substrate* of the LAGraph reproduction: everything the
paper's Figure 1 places below the "GraphBLAS API" line.  It provides the
opaque objects (Matrix, Vector, Scalar), the full operator algebra (types,
unary/binary/index-unary ops, monoids, semirings — including the 960/600
built-in-semiring families), the Table-I operations with masks,
accumulators and descriptors, the four storage formats with zombie/pending
update semantics, O(1) move import/export, and the dense spec-literal
reference implementation used for conformance testing.

Quick start::

    from repro import graphblas as gb

    A = gb.Matrix.from_coo([0, 1, 2], [1, 2, 0], [1.0, 2.0, 3.0])
    w = gb.Vector.from_coo([0], [1.0], size=3)
    y = gb.Vector.new(gb.FP64, 3)
    gb.mxv(y, A, w, "plus_times")
"""

from . import backends, engine, envutil, faults, governor, plan, telemetry, tiled, validate
from .backends import (
    available_backends,
    backend,
    current_backend,
    current_backend_name,
    get_backend,
    register_backend,
    set_default_backend,
)
from .context import Mode, blocking, get_mode, nonblocking, set_mode
from .descriptor import Descriptor, NULL_DESC, desc
from .errors import (
    ApiError,
    BackendDivergence,
    BudgetExceeded,
    Cancelled,
    DeadlineExceeded,
    GovernorError,
    DimensionMismatch,
    DomainMismatch,
    ExecutionError,
    GraphBLASError,
    IndexOutOfBounds,
    Info,
    InsufficientSpace,
    InvalidIndex,
    InvalidObject,
    InvalidValue,
    NoValue,
    OutOfMemory,
    OutputNotEmpty,
    Panic,
    UninitializedObject,
)
from .io_move import (
    ExportedMatrix,
    export_matrix,
    export_vector,
    import_matrix,
    import_vector,
)
from .matrix import Matrix
from .monoid import MONOIDS, Monoid, make_monoid, monoid
from .mxv import (
    DEFAULT_SWITCH_THRESHOLD,
    DirectionOptimizer,
    get_switch_threshold,
    set_switch_threshold,
)
from .operations import (
    ALL,
    apply,
    assign,
    concat,
    diag,
    diag_extract,
    ewise_add,
    ewise_mult,
    extract,
    kronecker,
    mxm,
    mxv,
    reduce_rowwise,
    reduce_scalar,
    select,
    split,
    subassign,
    transpose,
    vxm,
)
from .ops import (
    BINARY_OPS,
    INDEXUNARY_OPS,
    UNARY_OPS,
    BinaryOp,
    IndexUnaryOp,
    UnaryOp,
    binary,
    indexunary,
    unary,
)
from .plan import OpPlan, TABLE1_OPS
from .scalar import Scalar
from .semiring import (
    SEMIRINGS,
    Semiring,
    enumerate_builtin_semirings,
    make_semiring,
    semiring,
    semiring_census,
)
from .types import (
    BOOL,
    BUILTIN_TYPES,
    FP32,
    FP64,
    INT8,
    INT16,
    INT32,
    INT64,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
    Type,
    lookup_type,
    unify_types,
)
from .vector import Vector

__all__ = [
    # objects
    "Matrix",
    "Vector",
    "Scalar",
    # types
    "Type",
    "BOOL",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "UINT8",
    "UINT16",
    "UINT32",
    "UINT64",
    "FP32",
    "FP64",
    "BUILTIN_TYPES",
    "lookup_type",
    "unify_types",
    # operators
    "UnaryOp",
    "BinaryOp",
    "IndexUnaryOp",
    "unary",
    "binary",
    "indexunary",
    "UNARY_OPS",
    "BINARY_OPS",
    "INDEXUNARY_OPS",
    "Monoid",
    "monoid",
    "make_monoid",
    "MONOIDS",
    "Semiring",
    "semiring",
    "make_semiring",
    "SEMIRINGS",
    "enumerate_builtin_semirings",
    "semiring_census",
    # descriptors & modes
    "Descriptor",
    "desc",
    "NULL_DESC",
    "Mode",
    "get_mode",
    "set_mode",
    "blocking",
    "nonblocking",
    # operations
    "ALL",
    "mxm",
    "mxv",
    "vxm",
    "ewise_add",
    "ewise_mult",
    "apply",
    "select",
    "reduce_rowwise",
    "reduce_scalar",
    "transpose",
    "extract",
    "assign",
    "subassign",
    "kronecker",
    "concat",
    "split",
    "diag",
    "diag_extract",
    "DirectionOptimizer",
    "DEFAULT_SWITCH_THRESHOLD",
    "get_switch_threshold",
    "set_switch_threshold",
    # move import/export
    "export_matrix",
    "import_matrix",
    "export_vector",
    "import_vector",
    "ExportedMatrix",
    # errors
    "GraphBLASError",
    "ApiError",
    "ExecutionError",
    "Info",
    "NoValue",
    "InvalidValue",
    "InvalidIndex",
    "InvalidObject",
    "DimensionMismatch",
    "DomainMismatch",
    "IndexOutOfBounds",
    "OutOfMemory",
    "InsufficientSpace",
    "Panic",
    "OutputNotEmpty",
    "UninitializedObject",
    "BackendDivergence",
    "GovernorError",
    "BudgetExceeded",
    "DeadlineExceeded",
    "Cancelled",
    # kernel backends & planning
    "backends",
    "backend",
    "get_backend",
    "set_default_backend",
    "current_backend",
    "current_backend_name",
    "available_backends",
    "register_backend",
    "plan",
    "OpPlan",
    "TABLE1_OPS",
    # resilience & observability
    "faults",
    "validate",
    "telemetry",
    "governor",
    "envutil",
    "tiled",
    # performance engine
    "engine",
]
