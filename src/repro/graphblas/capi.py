"""Non-polymorphic GraphBLAS C-API facade (``GrB_*``).

Figure 2(d) of the paper shows level-BFS written against the GraphBLAS C
API.  This module reproduces that surface in Python: out-parameters become
return values, every function returns a ``GrB_Info`` code rather than
raising, and errors raised by the back-end are caught at this boundary and
converted — exactly the IBM implementation's front-end/back-end contract
(section II.B: "the body of each GraphBLAS API method is wrapped by a
try/catch block, which then returns the GraphBLAS execution error code
corresponding to the caught exception").

Beyond the IBM contract this facade makes two *transactional* guarantees:

* **Strong exception safety.**  Before running the back-end, every
  Matrix/Vector/Scalar argument is snapshotted (shallow — the engine never
  mutates stores or arrays in place, so holding references suffices).  If
  the back-end raises — including a ``MemoryError`` or an injected fault
  from :mod:`repro.graphblas.faults` — every operand is rolled back
  bit-identically before the error code is returned.  A failed call
  therefore leaves no observable trace, and retrying it after the fault
  clears produces exactly the result an undisturbed call would have.
* **Thread-local error reporting.**  The message of the last failed call
  on the current thread is retrievable with :func:`GrB_error` (the C API's
  ``GrB_error``); successful calls clear it.

``GrB_Matrix_check`` / ``GrB_Vector_check`` expose the deep validator of
:mod:`repro.graphblas.validate` (SuiteSparse's ``GxB_check``) through the
same return-code convention.

The argument order follows the C API: output, mask, accumulator, operator,
inputs, descriptor.
"""

from __future__ import annotations

import functools
import threading

import numpy as np

from . import operations as ops
from . import telemetry
from . import validate
from .descriptor import Descriptor
from .errors import GraphBLASError, Info, InvalidValue, NoValue
from .matrix import Matrix
from .scalar import Scalar
from .types import (
    BOOL,
    FP32,
    FP64,
    INT8,
    INT16,
    INT32,
    INT64,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
)
from .vector import Vector

__all__ = [
    "GrB_SUCCESS",
    "GrB_NO_VALUE",
    "GrB_NULL",
    "GrB_ALL",
    "GrB_error",
    "GrB_Matrix_new",
    "GrB_Vector_new",
    "GrB_Scalar_new",
    "GrB_Matrix_nrows",
    "GrB_Matrix_ncols",
    "GrB_Matrix_nvals",
    "GrB_Vector_size",
    "GrB_Vector_nvals",
    "GrB_Matrix_build",
    "GrB_Vector_build",
    "GrB_Matrix_setElement",
    "GrB_Vector_setElement",
    "GrB_Matrix_extractElement",
    "GrB_Vector_extractElement",
    "GrB_Matrix_extractTuples",
    "GrB_Vector_extractTuples",
    "GrB_Matrix_removeElement",
    "GrB_Vector_removeElement",
    "GrB_Matrix_dup",
    "GrB_Vector_dup",
    "GrB_Matrix_clear",
    "GrB_Vector_clear",
    "GrB_Matrix_wait",
    "GrB_Vector_wait",
    "GrB_Matrix_check",
    "GrB_Vector_check",
    "GrB_mxm",
    "GrB_mxv",
    "GrB_vxm",
    "GrB_eWiseAdd",
    "GrB_eWiseMult",
    "GrB_apply",
    "GrB_select",
    "GrB_reduce",
    "GrB_transpose",
    "GrB_extract",
    "GrB_assign",
    "GrB_kronecker",
    "GrB_free",
    "GxB_Burble_set",
    "GxB_Burble_get",
    "GxB_BUDGET_EXCEEDED",
    "GxB_DEADLINE_EXCEEDED",
    "GxB_CANCELLED",
    "GxB_Context_new",
    "GxB_Engine_set",
    "GxB_Engine_get",
    "GxB_Compiled_set",
    "GxB_Compiled_get",
    "GxB_Spill_set",
    "GxB_Spill_get",
    "GxB_Serve_set",
    "GxB_Serve_get",
    "GxB_Obs_set",
    "GxB_Obs_get",
    "GxB_Metrics_get",
    "GxB_NTHREADS",
    "global_stats",
]

GrB_SUCCESS = Info.SUCCESS
GrB_NO_VALUE = Info.NO_VALUE
GrB_NULL = None
GrB_ALL = ops.ALL

# Governor result codes (GxB_* extensions, in the spirit of
# GrB_INSUFFICIENT_SPACE): returned by any GrB_* call whose plan the
# active execution governor rejected or interrupted.
GxB_BUDGET_EXCEEDED = Info.BUDGET_EXCEEDED
GxB_DEADLINE_EXCEEDED = Info.DEADLINE_EXCEEDED
GxB_CANCELLED = Info.CANCELLED

# type aliases in C-API spelling
GrB_BOOL, GrB_FP32, GrB_FP64 = BOOL, FP32, FP64
GrB_INT8, GrB_INT16, GrB_INT32, GrB_INT64 = INT8, INT16, INT32, INT64
GrB_UINT8, GrB_UINT16, GrB_UINT32, GrB_UINT64 = UINT8, UINT16, UINT32, UINT64


# -- error reporting & transactional boundary ---------------------------------

_tls = threading.local()


def GrB_error() -> str:
    """``GrB_error``: message of the last failed call on this thread.

    Returns the empty string when the last ``GrB_*`` call succeeded (or
    none has been made yet).
    """
    return getattr(_tls, "last_error", "")


def _record(exc: BaseException) -> Info:
    """Translate a back-end exception to GrB_Info and stash its message."""
    info = exc.info if isinstance(exc, GraphBLASError) else Info.OUT_OF_MEMORY
    _tls.last_error = str(exc) or type(exc).__name__
    return info


def _snapshot(obj):
    """Shallow snapshot of an opaque object's observable state.

    Safe because the engine never mutates a store or a numpy array in
    place after construction — kernels always build fresh objects and
    assign them, so keeping the old references preserves the old bits.
    """
    if isinstance(obj, Matrix):
        return (
            obj._store,
            obj._alt,
            list(obj._pend_i),
            list(obj._pend_j),
            list(obj._pend_v),
            list(obj._pend_del),
            obj.nrows,
            obj.ncols,
            obj._valid,
            obj._keep_both,
            obj._epoch,
            obj._alt_epoch,
        )
    if isinstance(obj, Vector):
        return (
            obj.indices,
            obj.values,
            list(obj._pend_i),
            list(obj._pend_v),
            list(obj._pend_del),
            obj.size,
            obj._valid,
        )
    if isinstance(obj, Scalar):
        return (obj._value, obj._has)
    return None


def _restore(obj, snap) -> None:
    if isinstance(obj, Matrix):
        (
            obj._store,
            obj._alt,
            obj._pend_i,
            obj._pend_j,
            obj._pend_v,
            obj._pend_del,
            obj.nrows,
            obj.ncols,
            obj._valid,
            obj._keep_both,
            obj._epoch,
            obj._alt_epoch,
        ) = snap
    elif isinstance(obj, Vector):
        (
            obj.indices,
            obj.values,
            obj._pend_i,
            obj._pend_v,
            obj._pend_del,
            obj.size,
            obj._valid,
        ) = snap
    elif isinstance(obj, Scalar):
        obj._value, obj._has = snap


def _snapshot_all(args, kwargs):
    return [
        (o, s)
        for o in (*args, *kwargs.values())
        if (s := _snapshot(o)) is not None
    ]


def _trap(fn):
    """Convert back-end exceptions into GrB_Info codes (IBM-style) and roll
    every operand back to its pre-call state on failure."""

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        snaps = _snapshot_all(args, kwargs)
        try:
            result = fn(*args, **kwargs)
        except (GraphBLASError, MemoryError) as exc:
            for obj, snap in snaps:
                _restore(obj, snap)
            return _record(exc)
        _tls.last_error = ""
        return result

    return wrapper


def _trap_values(n_out: int):
    """Like :func:`_trap` for value-returning wrappers.

    The decorated body returns the payload (a value, or a tuple of
    ``n_out`` values); the wrapper prepends the info code and substitutes
    ``n_out`` ``None``s on failure.  ``NoValue`` maps to ``GrB_NO_VALUE``
    without being recorded as an error (it is informational in the C API).
    """

    def deco(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            snaps = _snapshot_all(args, kwargs)
            try:
                out = fn(*args, **kwargs)
            except NoValue:
                return (GrB_NO_VALUE,) + (None,) * n_out
            except (GraphBLASError, MemoryError) as exc:
                for obj, snap in snaps:
                    _restore(obj, snap)
                return (_record(exc),) + (None,) * n_out
            _tls.last_error = ""
            if not isinstance(out, tuple):
                out = (out,)
            return (GrB_SUCCESS,) + out

        return wrapper

    return deco


# -- object management -------------------------------------------------------

@_trap_values(1)
def GrB_Matrix_new(dtype, nrows, ncols):
    """Returns (info, matrix)."""
    return Matrix(dtype, nrows, ncols)


@_trap_values(1)
def GrB_Vector_new(dtype, size):
    """Returns (info, vector)."""
    return Vector(dtype, size)


@_trap_values(1)
def GrB_Scalar_new(dtype):
    return Scalar(dtype)


@_trap_values(1)
def GrB_Matrix_nrows(A):
    return A.nrows


@_trap_values(1)
def GrB_Matrix_ncols(A):
    return A.ncols


@_trap_values(1)
def GrB_Matrix_nvals(A):
    return A.nvals


@_trap_values(1)
def GrB_Vector_size(v):
    return v.size


@_trap_values(1)
def GrB_Vector_nvals(v):
    return v.nvals


@_trap
def GrB_Matrix_build(C, I, J, X, nvals=None, dup="PLUS"):
    C.build(np.asarray(I)[:nvals], np.asarray(J)[:nvals], np.asarray(X)[:nvals], dup=dup)
    return GrB_SUCCESS


@_trap
def GrB_Vector_build(w, I, X, nvals=None, dup="PLUS"):
    w.build(np.asarray(I)[:nvals], np.asarray(X)[:nvals], dup=dup)
    return GrB_SUCCESS


@_trap
def GrB_Matrix_setElement(C, x, i, j):
    C.set_element(i, j, x)
    return GrB_SUCCESS


@_trap
def GrB_Vector_setElement(w, x, i):
    w.set_element(i, x)
    return GrB_SUCCESS


@_trap_values(1)
def GrB_Matrix_extractElement(A, i, j):
    """Returns (info, value) — info is GrB_NO_VALUE when absent."""
    return A.extract_element(i, j)


@_trap_values(1)
def GrB_Vector_extractElement(v, i):
    return v.extract_element(i)


@_trap_values(3)
def GrB_Matrix_extractTuples(A):
    return A.extract_tuples()


@_trap_values(2)
def GrB_Vector_extractTuples(v):
    return v.extract_tuples()


@_trap
def GrB_Matrix_removeElement(C, i, j):
    C.remove_element(i, j)
    return GrB_SUCCESS


@_trap
def GrB_Vector_removeElement(w, i):
    w.remove_element(i)
    return GrB_SUCCESS


@_trap_values(1)
def GrB_Matrix_dup(A):
    return A.dup()


@_trap_values(1)
def GrB_Vector_dup(v):
    return v.dup()


@_trap
def GrB_Matrix_clear(C):
    C.clear()
    return GrB_SUCCESS


@_trap
def GrB_Vector_clear(w):
    w.clear()
    return GrB_SUCCESS


@_trap
def GrB_Matrix_wait(C):
    C.wait()
    return GrB_SUCCESS


@_trap
def GrB_Vector_wait(w):
    w.wait()
    return GrB_SUCCESS


def GrB_Matrix_check(A):
    """``GxB_Matrix_check``-style deep validation; returns (info, report).

    ``info`` is ``GrB_SUCCESS``, ``UNINITIALIZED_OBJECT`` (moved-out), or
    ``INVALID_OBJECT``; ``report`` lists every violated invariant.
    """
    probs = validate.problems(A)
    if not probs:
        return GrB_SUCCESS, ""
    return validate.check(A), "; ".join(probs)


def GrB_Vector_check(v):
    """``GxB_Vector_check``-style deep validation; returns (info, report)."""
    probs = validate.problems(v)
    if not probs:
        return GrB_SUCCESS, ""
    return validate.check(v), "; ".join(probs)


def GrB_free(obj):
    """``GrB_free``: release an object (Python GC does the real work)."""
    if obj is not None and hasattr(obj, "_valid"):
        obj._valid = False
    return GrB_SUCCESS


# -- user-defined algebra (GrB_*_new) -----------------------------------------

@_trap_values(1)
def GrB_Type_new(np_dtype):
    """User-defined type from an arbitrary NumPy dtype."""
    from .types import lookup_type

    return lookup_type(np_dtype)


@_trap_values(1)
def GrB_UnaryOp_new(fn, name="user_unary"):
    """User-defined unary op from a scalar Python function."""
    from .ops import UnaryOp

    return UnaryOp(name, fn, np.vectorize(fn), builtin=False)


@_trap_values(1)
def GrB_BinaryOp_new(fn, name="user_binary"):
    """User-defined binary op from a scalar Python function."""
    from .ops import BinaryOp

    return BinaryOp(name, fn, np.vectorize(fn), builtin=False)


@_trap_values(1)
def GrB_Monoid_new(op, identity):
    """``GrB_Monoid_new``: binary op + identity."""
    from .monoid import make_monoid

    return make_monoid(op, identity)


@_trap_values(1)
def GrB_Semiring_new(add_monoid, mult_op):
    """``GrB_Semiring_new``: additive monoid + multiplicative op."""
    from .semiring import make_semiring

    return make_semiring(add_monoid, mult_op)


@_trap_values(1)
def GrB_Descriptor_new():
    """Returns (info, descriptor); set fields with GrB_Descriptor_set."""
    return Descriptor()


_DESC_FIELDS = {
    ("INP0", "TRAN"): {"transpose_a": True},
    ("INP1", "TRAN"): {"transpose_b": True},
    ("MASK", "COMP"): {"complement_mask": True},
    ("MASK", "STRUCTURE"): {"structural_mask": True},
    ("OUTP", "REPLACE"): {"replace": True},
}

# GxB_NTHREADS takes an integer value, unlike the enum-valued GrB fields.
GxB_NTHREADS = "NTHREADS"


def GrB_Descriptor_set(desc, field, value):
    """Returns (info, new descriptor) — descriptors are immutable here."""
    fname = str(field).upper()
    if fname in ("NTHREADS", "GXB_NTHREADS"):
        try:
            n = int(value)
        except (TypeError, ValueError):
            return Info.INVALID_VALUE, desc
        return GrB_SUCCESS, desc.with_(nthreads=n if n > 0 else None)
    key = (fname, str(value).upper())
    if key not in _DESC_FIELDS:
        return Info.INVALID_VALUE, desc
    return GrB_SUCCESS, desc.with_(**_DESC_FIELDS[key])


@_trap
def GxB_subassign(C, Mask, accum, A, I=None, J=None, desc=None):
    """SuiteSparse's region-masked assign (see operations.subassign)."""
    if isinstance(C, Vector):
        ops.subassign(
            C, A, I if I is not None else GrB_ALL, mask=Mask, accum=accum, desc=desc
        )
    else:
        ops.subassign(
            C,
            A,
            I if I is not None else GrB_ALL,
            J if J is not None else GrB_ALL,
            mask=Mask,
            accum=accum,
            desc=desc,
        )
    return GrB_SUCCESS


# -- operations (C argument order: out, mask, accum, op, inputs, desc) -------

@_trap
def GrB_mxm(C, Mask, accum, semiring, A, B, desc=None):
    ops.mxm(C, A, B, semiring, mask=Mask, accum=accum, desc=desc)
    return GrB_SUCCESS


@_trap
def GrB_mxv(w, mask, accum, semiring, A, u, desc=None):
    ops.mxv(w, A, u, semiring, mask=mask, accum=accum, desc=desc)
    return GrB_SUCCESS


@_trap
def GrB_vxm(w, mask, accum, semiring, u, A, desc=None):
    ops.vxm(w, u, A, semiring, mask=mask, accum=accum, desc=desc)
    return GrB_SUCCESS


@_trap
def GrB_eWiseAdd(C, Mask, accum, op, A, B, desc=None):
    ops.ewise_add(C, A, B, op, mask=Mask, accum=accum, desc=desc)
    return GrB_SUCCESS


@_trap
def GrB_eWiseMult(C, Mask, accum, op, A, B, desc=None):
    ops.ewise_mult(C, A, B, op, mask=Mask, accum=accum, desc=desc)
    return GrB_SUCCESS


@_trap
def GrB_apply(C, Mask, accum, op, A, desc=None, *, left=None, right=None, thunk=None):
    ops.apply(C, A, op, left=left, right=right, thunk=thunk, mask=Mask, accum=accum, desc=desc)
    return GrB_SUCCESS


@_trap
def GrB_select(C, Mask, accum, op, A, thunk=0, desc=None):
    ops.select(C, A, op, thunk, mask=Mask, accum=accum, desc=desc)
    return GrB_SUCCESS


@_trap
def GrB_reduce(out, mask_or_accum, *args, **kwargs):
    """Polymorphic reduce.

    * ``GrB_reduce(w, mask, accum, monoid, A, desc)`` — matrix to vector;
    * ``GrB_reduce(scalar, accum, monoid, A_or_u)`` — to a Scalar object.
    """
    if isinstance(out, Vector):
        mask, accum, mon, A = mask_or_accum, args[0], args[1], args[2]
        desc = args[3] if len(args) > 3 else None
        ops.reduce_rowwise(out, A, mon, mask=mask, accum=accum, desc=desc)
        return GrB_SUCCESS
    accum, mon, A = mask_or_accum, args[0], args[1]
    if accum is not None and out.nvals:
        out.set(ops.reduce_scalar(A, mon, accum=accum, init=out.value))
    else:
        out.set(ops.reduce_scalar(A, mon))
    return GrB_SUCCESS


@_trap
def GrB_transpose(C, Mask, accum, A, desc=None):
    ops.transpose(C, A, mask=Mask, accum=accum, desc=desc)
    return GrB_SUCCESS


@_trap
def GrB_extract(C, Mask, accum, A, I=GrB_ALL, J=GrB_ALL, desc=None):
    if isinstance(A, Vector):
        ops.extract(C, A, I, mask=Mask, accum=accum, desc=desc)
    else:
        ops.extract(C, A, I, J, mask=Mask, accum=accum, desc=desc)
    return GrB_SUCCESS


@_trap
def GrB_assign(C, Mask, accum, A, I=GrB_ALL, J=GrB_ALL, desc=None):
    if isinstance(C, Vector):
        ops.assign(C, A, I, mask=Mask, accum=accum, desc=desc)
    else:
        ops.assign(C, A, I, J, mask=Mask, accum=accum, desc=desc)
    return GrB_SUCCESS


@_trap
def GrB_kronecker(C, Mask, accum, op, A, B, desc=None):
    ops.kronecker(C, A, B, op, mask=Mask, accum=accum, desc=desc)
    return GrB_SUCCESS


# -- GxB-style global diagnostics ---------------------------------------------


def GxB_Burble_set(flag) -> Info:
    """``GxB_Global_Option_set(GxB_BURBLE, …)``: toggle the burble stream.

    Enabling the burble starts a telemetry collector on this thread when
    none is active (so the very first ``GxB_Burble_set(True)`` suffices,
    as in SuiteSparse).  Disabling only silences the stream — counters keep
    accumulating until :func:`repro.graphblas.telemetry.disable`.
    """
    col = telemetry.active()
    if flag:
        if col is None:
            telemetry.enable(burble=True)
        else:
            col.burble = True
    elif col is not None:
        col.burble = False
    return GrB_SUCCESS


def GxB_Burble_get() -> bool:
    """``GxB_Global_Option_get(GxB_BURBLE)``: is the burble on?"""
    col = telemetry.active()
    return col is not None and col.burble


def GxB_Backend_set(name) -> Info:
    """``GxB_Global_Option_set``-style kernel backend selection.

    Sets the process-default :class:`~repro.graphblas.backends.KernelBackend`
    (``"optimized"``, ``"reference"``, ``"scipy"``, ``"differential"``);
    an unknown name returns ``GrB_INVALID_VALUE`` like any other bad
    global option.
    """
    from . import backends as _backends

    try:
        _backends.set_default_backend(name)
    except GraphBLASError as exc:
        return exc.info
    return GrB_SUCCESS


def GxB_Backend_get() -> str:
    """``GxB_Global_Option_get``-style: the currently selected backend name."""
    from . import backends as _backends

    return _backends.current_backend_name()


def GxB_Engine_set(enabled=None, **kwargs) -> Info:
    """``GxB_Global_Option_set``-style performance-engine control.

    ``GxB_Engine_set(False)`` disables every engine mechanism (kernel
    specialization, dual-format twins, parallel blocks) so results can be
    cross-checked bit for bit against the generic paths; keyword arguments
    (``kernel_cache``, ``dual_format``, ``parallel``, ``workers``,
    ``cache_size``) toggle individual mechanisms — see
    :func:`repro.graphblas.engine.set_engine`.
    """
    from . import engine as _engine

    try:
        _engine.set_engine(enabled, **kwargs)
    except (GraphBLASError, TypeError, ValueError) as exc:
        if isinstance(exc, GraphBLASError):
            return exc.info
        _tls.last_error = str(exc)
        return Info.INVALID_VALUE
    return GrB_SUCCESS


def GxB_Engine_get() -> dict:
    """``GxB_Global_Option_get``-style: the engine configuration and the
    kernel-cache counters, as one plain dict."""
    from . import engine as _engine

    cfg = _engine.get_config()
    out = {
        "enabled": cfg.enabled,
        "kernel_cache": cfg.kernel_cache,
        "dual_format": cfg.dual_format,
        "parallel": cfg.parallel,
        "workers": cfg.workers,
        "cache_size": cfg.cache_size,
    }
    out["cache"] = _engine.kernel_cache_stats()
    return out


def GxB_Compiled_set(toolchain=None, *, cache_size=None) -> Info:
    """``GxB_COMPILED_*`` option set: JIT kernel-tier control.

    ``toolchain`` selects the compiler preference (``"auto"``,
    ``"numba"``, ``"cc"``, ``"python"``, or ``"off"`` to disable the
    tier); ``cache_size`` resizes the compiled-kernel LRU — see
    :func:`repro.graphblas.compiled.set_config`.  Arguments left
    ``None`` keep their current (environment-derived) values.
    """
    from . import compiled as _compiled

    try:
        _compiled.set_config(toolchain=toolchain, capacity=cache_size)
    except (GraphBLASError, TypeError, ValueError) as exc:
        if isinstance(exc, GraphBLASError):
            return exc.info
        _tls.last_error = str(exc)
        return Info.INVALID_VALUE
    return GrB_SUCCESS


def GxB_Compiled_get() -> dict:
    """``GxB_COMPILED_*`` option get: the effective tier state — the
    configured preference, the resolved toolchain (None when unusable),
    and the kernel-cache counters, as one plain dict."""
    from . import compiled as _compiled

    cfg = _compiled.get_config()
    return {
        "preference": cfg["preference"],
        "toolchain": _compiled.toolchain_name(),
        "available": _compiled.available(),
        "cache": _compiled.cache_stats(),
    }


def GxB_Spill_set(enabled=None, *, directory=None, budget=None) -> Info:
    """``GxB_SPILL_*`` option set: process-wide spill-to-disk control.

    ``enabled`` turns transparent tiled spill execution on/off for
    over-budget operations, ``directory`` relocates the pools' scratch
    space, and ``budget`` bounds the bytes of tiles kept resident — see
    :func:`repro.graphblas.governor.set_spill_config`.  Arguments left
    ``None`` keep their current (environment-derived) values.
    """
    from . import governor as _governor

    try:
        _governor.set_spill_config(
            enabled=enabled, directory=directory, budget=budget
        )
    except (GraphBLASError, TypeError, ValueError) as exc:
        if isinstance(exc, GraphBLASError):
            return exc.info
        _tls.last_error = str(exc)
        return Info.INVALID_VALUE
    return GrB_SUCCESS


def GxB_Spill_get() -> dict:
    """``GxB_SPILL_*`` option get: the effective spill configuration."""
    from . import governor as _governor

    enabled, directory, budget = _governor.spill_config()
    return {"enabled": enabled, "directory": directory, "budget": budget}


def GxB_Serve_set(**options) -> Info:
    """``GxB_SERVE_*`` option set: process-wide serving-layer defaults.

    Installs defaults inherited by every subsequently constructed
    :class:`repro.serve.GraphServer` — worker count, admission queue
    depth, default per-request deadline/budget, circuit-breaker tuning,
    and the primary backend (see
    :func:`repro.serve.config.set_serve_config` for the settable names).
    Overrides layer above the ``GRAPHBLAS_SERVE_*`` environment;
    arguments left ``None`` keep their current values.
    """
    from ..serve import config as _serve_config

    try:
        _serve_config.set_serve_config(**options)
    except (GraphBLASError, TypeError, ValueError) as exc:
        if isinstance(exc, GraphBLASError):
            return exc.info
        _tls.last_error = str(exc)
        return Info.INVALID_VALUE
    return GrB_SUCCESS


def GxB_Serve_get() -> dict:
    """``GxB_SERVE_*`` option get: the effective serving defaults."""
    from ..serve import config as _serve_config

    return _serve_config.serve_config().as_dict()


def GxB_Obs_set(flag, *, slow_ms=None, slow_capacity=None) -> Info:
    """``GxB_Global_Option_set``-style observability switch.

    ``GxB_Obs_set(True)`` turns on process-wide metrics collection
    (:func:`repro.obs.enable`): every instrumented site feeds the
    cumulative registry behind :func:`GxB_Metrics_get`, from all threads,
    independent of any per-thread telemetry collector.  ``slow_ms`` /
    ``slow_capacity`` retune the slow-op log.  ``GxB_Obs_set(False)``
    stops collection; accumulated totals stay readable.
    """
    from .. import obs as _obs

    try:
        if flag:
            kwargs = {}
            if slow_ms is not None:
                kwargs["slow_ms"] = slow_ms
            if slow_capacity is not None:
                kwargs["slow_capacity"] = slow_capacity
            _obs.enable(**kwargs)
        else:
            _obs.disable()
    except (TypeError, ValueError) as exc:
        _tls.last_error = str(exc)
        return Info.INVALID_VALUE
    return GrB_SUCCESS


def GxB_Obs_get() -> bool:
    """``GxB_Global_Option_get``-style: is metrics collection on?"""
    from .. import obs as _obs

    return _obs.enabled()


def GxB_Metrics_get(format="snapshot"):
    """``GxB_Global``-style metrics export from the process registry.

    ``format`` selects the representation: ``"snapshot"`` (nested dict
    with per-histogram p50/p90/p99), ``"json"`` (the same, serialized),
    or ``"prometheus"`` (text exposition format, ready to serve as a
    scrape body).  Readable whether or not observability is enabled —
    a never-enabled registry simply exports no samples.
    """
    from .. import obs as _obs

    if format == "snapshot":
        return _obs.snapshot()
    if format == "json":
        return _obs.json_snapshot()
    if format == "prometheus":
        return _obs.prometheus_text()
    raise InvalidValue(
        f"unknown metrics format {format!r}; "
        "expected snapshot, json, or prometheus"
    )


def GxB_Context_new(*, memory_budget=None, deadline=None, retry=None,
                    degrade=True, spill=None, spill_dir=None,
                    spill_budget=None):
    """``GxB_Context``-style handle over the execution governor.

    Returns an un-entered
    :class:`~repro.graphblas.governor.ExecutionContext`; use it as a
    context manager around a batch of GrB_* calls.  A call rejected or
    interrupted by the governor returns :data:`GxB_BUDGET_EXCEEDED`,
    :data:`GxB_DEADLINE_EXCEEDED`, or :data:`GxB_CANCELLED` through the
    usual transactional boundary — operands are rolled back and
    :func:`GrB_error` carries the governor's message.  An over-budget
    mxm/mxv/vxm is first re-planned as tiled spill-to-disk execution
    (``spill``/``spill_dir``/``spill_budget`` override the
    ``GxB_Spill_set`` / environment defaults), then routed to a lighter
    backend with ``degrade`` (the default); pass ``degrade=False`` to
    make every over-budget call fail.
    """
    from . import governor as _governor

    return _governor.ExecutionContext(
        memory_budget=memory_budget, deadline=deadline, retry=retry,
        degrade=degrade, spill=spill, spill_dir=spill_dir,
        spill_budget=spill_budget,
    )


def global_stats(include_events: bool = False) -> dict:
    """``GxB_Global``-style diagnostics: this thread's telemetry snapshot.

    Returns an empty dict when no collector is active, so callers can poll
    unconditionally.
    """
    if telemetry.active() is None:
        return {}
    return telemetry.snapshot(include_events=include_events)
