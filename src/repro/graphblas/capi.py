"""Non-polymorphic GraphBLAS C-API facade (``GrB_*``).

Figure 2(d) of the paper shows level-BFS written against the GraphBLAS C
API.  This module reproduces that surface in Python: out-parameters become
return values, every function returns a ``GrB_Info`` code rather than
raising, and errors raised by the back-end are caught at this boundary and
converted — exactly the IBM implementation's front-end/back-end contract
(section II.B: "the body of each GraphBLAS API method is wrapped by a
try/catch block, which then returns the GraphBLAS execution error code
corresponding to the caught exception").

The argument order follows the C API: output, mask, accumulator, operator,
inputs, descriptor.
"""

from __future__ import annotations

import functools

import numpy as np

from . import operations as ops
from .descriptor import Descriptor
from .errors import GraphBLASError, Info, NoValue
from .matrix import Matrix
from .scalar import Scalar
from .types import (
    BOOL,
    FP32,
    FP64,
    INT8,
    INT16,
    INT32,
    INT64,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
)
from .vector import Vector

__all__ = [
    "GrB_SUCCESS",
    "GrB_NO_VALUE",
    "GrB_NULL",
    "GrB_ALL",
    "GrB_Matrix_new",
    "GrB_Vector_new",
    "GrB_Scalar_new",
    "GrB_Matrix_nrows",
    "GrB_Matrix_ncols",
    "GrB_Matrix_nvals",
    "GrB_Vector_size",
    "GrB_Vector_nvals",
    "GrB_Matrix_build",
    "GrB_Vector_build",
    "GrB_Matrix_setElement",
    "GrB_Vector_setElement",
    "GrB_Matrix_extractElement",
    "GrB_Vector_extractElement",
    "GrB_Matrix_extractTuples",
    "GrB_Vector_extractTuples",
    "GrB_Matrix_removeElement",
    "GrB_Vector_removeElement",
    "GrB_Matrix_dup",
    "GrB_Vector_dup",
    "GrB_Matrix_clear",
    "GrB_Vector_clear",
    "GrB_Matrix_wait",
    "GrB_Vector_wait",
    "GrB_mxm",
    "GrB_mxv",
    "GrB_vxm",
    "GrB_eWiseAdd",
    "GrB_eWiseMult",
    "GrB_apply",
    "GrB_select",
    "GrB_reduce",
    "GrB_transpose",
    "GrB_extract",
    "GrB_assign",
    "GrB_kronecker",
    "GrB_free",
]

GrB_SUCCESS = Info.SUCCESS
GrB_NO_VALUE = Info.NO_VALUE
GrB_NULL = None
GrB_ALL = ops.ALL

# type aliases in C-API spelling
GrB_BOOL, GrB_FP32, GrB_FP64 = BOOL, FP32, FP64
GrB_INT8, GrB_INT16, GrB_INT32, GrB_INT64 = INT8, INT16, INT32, INT64
GrB_UINT8, GrB_UINT16, GrB_UINT32, GrB_UINT64 = UINT8, UINT16, UINT32, UINT64


def _trap(fn):
    """Convert back-end exceptions into GrB_Info codes (IBM-style)."""

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        try:
            return fn(*args, **kwargs)
        except GraphBLASError as exc:
            return exc.info
        except MemoryError:
            return Info.OUT_OF_MEMORY

    return wrapper


# -- object management -------------------------------------------------------

def GrB_Matrix_new(dtype, nrows, ncols):
    """Returns (info, matrix)."""
    try:
        return GrB_SUCCESS, Matrix(dtype, nrows, ncols)
    except GraphBLASError as exc:
        return exc.info, None


def GrB_Vector_new(dtype, size):
    """Returns (info, vector)."""
    try:
        return GrB_SUCCESS, Vector(dtype, size)
    except GraphBLASError as exc:
        return exc.info, None


def GrB_Scalar_new(dtype):
    return GrB_SUCCESS, Scalar(dtype)


def GrB_Matrix_nrows(A):
    return GrB_SUCCESS, A.nrows


def GrB_Matrix_ncols(A):
    return GrB_SUCCESS, A.ncols


def GrB_Matrix_nvals(A):
    try:
        return GrB_SUCCESS, A.nvals
    except GraphBLASError as exc:
        return exc.info, None


def GrB_Vector_size(v):
    return GrB_SUCCESS, v.size


def GrB_Vector_nvals(v):
    try:
        return GrB_SUCCESS, v.nvals
    except GraphBLASError as exc:
        return exc.info, None


@_trap
def GrB_Matrix_build(C, I, J, X, nvals=None, dup="PLUS"):
    C.build(np.asarray(I)[:nvals], np.asarray(J)[:nvals], np.asarray(X)[:nvals], dup=dup)
    return GrB_SUCCESS


@_trap
def GrB_Vector_build(w, I, X, nvals=None, dup="PLUS"):
    w.build(np.asarray(I)[:nvals], np.asarray(X)[:nvals], dup=dup)
    return GrB_SUCCESS


@_trap
def GrB_Matrix_setElement(C, x, i, j):
    C.set_element(i, j, x)
    return GrB_SUCCESS


@_trap
def GrB_Vector_setElement(w, x, i):
    w.set_element(i, x)
    return GrB_SUCCESS


def GrB_Matrix_extractElement(A, i, j):
    """Returns (info, value) — info is GrB_NO_VALUE when absent."""
    try:
        return GrB_SUCCESS, A.extract_element(i, j)
    except NoValue:
        return GrB_NO_VALUE, None
    except GraphBLASError as exc:
        return exc.info, None


def GrB_Vector_extractElement(v, i):
    try:
        return GrB_SUCCESS, v.extract_element(i)
    except NoValue:
        return GrB_NO_VALUE, None
    except GraphBLASError as exc:
        return exc.info, None


def GrB_Matrix_extractTuples(A):
    try:
        return (GrB_SUCCESS, *A.extract_tuples())
    except GraphBLASError as exc:
        return exc.info, None, None, None


def GrB_Vector_extractTuples(v):
    try:
        return (GrB_SUCCESS, *v.extract_tuples())
    except GraphBLASError as exc:
        return exc.info, None, None


@_trap
def GrB_Matrix_removeElement(C, i, j):
    C.remove_element(i, j)
    return GrB_SUCCESS


@_trap
def GrB_Vector_removeElement(w, i):
    w.remove_element(i)
    return GrB_SUCCESS


def GrB_Matrix_dup(A):
    try:
        return GrB_SUCCESS, A.dup()
    except GraphBLASError as exc:
        return exc.info, None


def GrB_Vector_dup(v):
    try:
        return GrB_SUCCESS, v.dup()
    except GraphBLASError as exc:
        return exc.info, None


@_trap
def GrB_Matrix_clear(C):
    C.clear()
    return GrB_SUCCESS


@_trap
def GrB_Vector_clear(w):
    w.clear()
    return GrB_SUCCESS


@_trap
def GrB_Matrix_wait(C):
    C.wait()
    return GrB_SUCCESS


@_trap
def GrB_Vector_wait(w):
    w.wait()
    return GrB_SUCCESS


def GrB_free(obj):
    """``GrB_free``: release an object (Python GC does the real work)."""
    if obj is not None and hasattr(obj, "_valid"):
        obj._valid = False
    return GrB_SUCCESS


# -- user-defined algebra (GrB_*_new) -----------------------------------------

def GrB_Type_new(np_dtype):
    """User-defined type from an arbitrary NumPy dtype."""
    from .types import lookup_type

    try:
        return GrB_SUCCESS, lookup_type(np_dtype)
    except GraphBLASError as exc:
        return exc.info, None


def GrB_UnaryOp_new(fn, name="user_unary"):
    """User-defined unary op from a scalar Python function."""
    from .ops import UnaryOp

    op = UnaryOp(name, fn, np.vectorize(fn), builtin=False)
    return GrB_SUCCESS, op


def GrB_BinaryOp_new(fn, name="user_binary"):
    """User-defined binary op from a scalar Python function."""
    from .ops import BinaryOp

    op = BinaryOp(name, fn, np.vectorize(fn), builtin=False)
    return GrB_SUCCESS, op


def GrB_Monoid_new(op, identity):
    """``GrB_Monoid_new``: binary op + identity."""
    from .monoid import make_monoid

    try:
        return GrB_SUCCESS, make_monoid(op, identity)
    except GraphBLASError as exc:
        return exc.info, None


def GrB_Semiring_new(add_monoid, mult_op):
    """``GrB_Semiring_new``: additive monoid + multiplicative op."""
    from .semiring import make_semiring

    try:
        return GrB_SUCCESS, make_semiring(add_monoid, mult_op)
    except GraphBLASError as exc:
        return exc.info, None


def GrB_Descriptor_new():
    """Returns (info, descriptor); set fields with GrB_Descriptor_set."""
    return GrB_SUCCESS, Descriptor()


_DESC_FIELDS = {
    ("INP0", "TRAN"): {"transpose_a": True},
    ("INP1", "TRAN"): {"transpose_b": True},
    ("MASK", "COMP"): {"complement_mask": True},
    ("MASK", "STRUCTURE"): {"structural_mask": True},
    ("OUTP", "REPLACE"): {"replace": True},
}


def GrB_Descriptor_set(desc, field, value):
    """Returns (info, new descriptor) — descriptors are immutable here."""
    key = (str(field).upper(), str(value).upper())
    if key not in _DESC_FIELDS:
        return Info.INVALID_VALUE, desc
    return GrB_SUCCESS, desc.with_(**_DESC_FIELDS[key])


def GxB_subassign(C, Mask, accum, A, I=None, J=None, desc=None):
    """SuiteSparse's region-masked assign (see operations.subassign)."""
    try:
        if isinstance(C, Vector):
            ops.subassign(
                C, A, I if I is not None else GrB_ALL, mask=Mask, accum=accum, desc=desc
            )
        else:
            ops.subassign(
                C,
                A,
                I if I is not None else GrB_ALL,
                J if J is not None else GrB_ALL,
                mask=Mask,
                accum=accum,
                desc=desc,
            )
        return GrB_SUCCESS
    except GraphBLASError as exc:
        return exc.info


# -- operations (C argument order: out, mask, accum, op, inputs, desc) -------

@_trap
def GrB_mxm(C, Mask, accum, semiring, A, B, desc=None):
    ops.mxm(C, A, B, semiring, mask=Mask, accum=accum, desc=desc)
    return GrB_SUCCESS


@_trap
def GrB_mxv(w, mask, accum, semiring, A, u, desc=None):
    ops.mxv(w, A, u, semiring, mask=mask, accum=accum, desc=desc)
    return GrB_SUCCESS


@_trap
def GrB_vxm(w, mask, accum, semiring, u, A, desc=None):
    ops.vxm(w, u, A, semiring, mask=mask, accum=accum, desc=desc)
    return GrB_SUCCESS


@_trap
def GrB_eWiseAdd(C, Mask, accum, op, A, B, desc=None):
    ops.ewise_add(C, A, B, op, mask=Mask, accum=accum, desc=desc)
    return GrB_SUCCESS


@_trap
def GrB_eWiseMult(C, Mask, accum, op, A, B, desc=None):
    ops.ewise_mult(C, A, B, op, mask=Mask, accum=accum, desc=desc)
    return GrB_SUCCESS


@_trap
def GrB_apply(C, Mask, accum, op, A, desc=None, *, left=None, right=None, thunk=None):
    ops.apply(C, A, op, left=left, right=right, thunk=thunk, mask=Mask, accum=accum, desc=desc)
    return GrB_SUCCESS


@_trap
def GrB_select(C, Mask, accum, op, A, thunk=0, desc=None):
    ops.select(C, A, op, thunk, mask=Mask, accum=accum, desc=desc)
    return GrB_SUCCESS


def GrB_reduce(out, mask_or_accum, *args, **kwargs):
    """Polymorphic reduce.

    * ``GrB_reduce(w, mask, accum, monoid, A, desc)`` — matrix to vector;
    * ``GrB_reduce(scalar, accum, monoid, A_or_u)`` — to a Scalar object.
    """
    try:
        if isinstance(out, Vector):
            mask, accum, mon, A = mask_or_accum, args[0], args[1], args[2]
            desc = args[3] if len(args) > 3 else None
            ops.reduce_rowwise(out, A, mon, mask=mask, accum=accum, desc=desc)
            return GrB_SUCCESS
        accum, mon, A = mask_or_accum, args[0], args[1]
        if accum is not None and out.nvals:
            out.set(ops.reduce_scalar(A, mon, accum=accum, init=out.value))
        else:
            out.set(ops.reduce_scalar(A, mon))
        return GrB_SUCCESS
    except GraphBLASError as exc:
        return exc.info


@_trap
def GrB_transpose(C, Mask, accum, A, desc=None):
    ops.transpose(C, A, mask=Mask, accum=accum, desc=desc)
    return GrB_SUCCESS


@_trap
def GrB_extract(C, Mask, accum, A, I=GrB_ALL, J=GrB_ALL, desc=None):
    if isinstance(A, Vector):
        ops.extract(C, A, I, mask=Mask, accum=accum, desc=desc)
    else:
        ops.extract(C, A, I, J, mask=Mask, accum=accum, desc=desc)
    return GrB_SUCCESS


@_trap
def GrB_assign(C, Mask, accum, A, I=GrB_ALL, J=GrB_ALL, desc=None):
    if isinstance(C, Vector):
        ops.assign(C, A, I, mask=Mask, accum=accum, desc=desc)
    else:
        ops.assign(C, A, I, J, mask=Mask, accum=accum, desc=desc)
    return GrB_SUCCESS


@_trap
def GrB_kronecker(C, Mask, accum, op, A, B, desc=None):
    ops.kronecker(C, A, B, op, mask=Mask, accum=accum, desc=desc)
    return GrB_SUCCESS
