"""The compiled kernel tier as a :class:`KernelBackend`.

Serves ``mxm``/``mxv``/``vxm`` with JIT-compiled monomorphic kernels
from :mod:`repro.graphblas.compiled` — Gustavson SpGEMM, fused-mask dot
mxm, and push/pull mxv with *true* terminal-monoid early exit — and
declines everything else, falling back to ``optimized`` through the
normal dispatch chain.  Orchestration (store preparation, method and
direction policy, flop-balanced row blocks on the engine worker pool,
governor admission, the shared accum-then-mask write step) is identical
to the optimized backend by construction: both call the same
``mxm.resolve_method`` / ``mxv.choose_direction`` policy helpers and
finish through :func:`mask.write_matrix` / :func:`mask.write_vector`.

The compiled kernels release the GIL (ctypes foreign calls for the cc
toolchain, ``nogil=True`` for numba), so the engine's thread pool gives
real row parallelism here, not just overlapped NumPy.

Declination rules (``supports``):

* only semiring products with a generated template — builtin add monoid
  in {PLUS, TIMES, MIN, MAX} (+ LOR/LAND on BOOL), builtin non-positional
  multiply, builtin value types;
* all operand dtypes equal to the output dtype (NumPy's promote-then-
  cast semantics for mixed-type products are not worth reproducing in C);
* no toolchain available (numba absent *and* no C compiler) — in which
  case the first declined plan warns once via ``envutil``;
* the heap mxm method (vectorized k-way merge stays with the engine);
* any dimension above ``MAX_DIMENSION`` (the SPA scratch is dense in the
  inner dimension).
"""

from __future__ import annotations

import time

import numpy as np

from .. import compiled as _compiled
from .. import engine, governor, telemetry
from ..mask import mask_true_coords, mask_true_idx, write_matrix, write_vector
from ..mxm import dot_candidates, resolve_method
from ..mxv import choose_direction
from ..errors import InvalidValue
from ..semiring import Semiring
from . import KernelBackend

_INDEX = np.int64

#: SPA/mark scratch and dense pull vectors are O(dimension); cap it so a
#: hypersparse graph with a huge index space cannot allocate gigabytes.
MAX_DIMENSION = 1 << 24


def _prep_index(arr: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(arr, dtype=_INDEX)


def _prep_values(arr: np.ndarray, np_dtype) -> np.ndarray:
    return np.ascontiguousarray(arr, dtype=np_dtype)


def _flop_row_blocks(row_cum: np.ndarray, workers: int) -> list[tuple[int, int]]:
    """Cut rows into ≤ ``workers`` spans of roughly equal flops.

    ``row_cum[i]`` is the flop count of all rows before ``i`` (length
    n_rows + 1, monotone).  Cuts land on row boundaries, so each block's
    SPA is self-contained and concatenated results equal serial output.
    """
    n = row_cum.size - 1
    total = int(row_cum[-1])
    if workers <= 1 or n <= 1 or total == 0:
        return [(0, n)]
    targets = (np.arange(1, workers) * total) // workers
    cuts = np.searchsorted(row_cum, targets, side="left")
    bounds = [0, *np.unique(cuts).tolist(), n]
    bounds = sorted(set(b for b in bounds if 0 <= b <= n))
    return [
        (bounds[t], bounds[t + 1])
        for t in range(len(bounds) - 1)
        if bounds[t] < bounds[t + 1]
    ]


class CompiledBackend(KernelBackend):
    """JIT semiring kernels with terminal early exit; falls back freely."""

    name = "compiled"
    fallback = "optimized"

    # -- dispatch gate ------------------------------------------------------

    def supports(self, plan) -> bool:
        if plan.op not in ("mxm", "mxv", "vxm"):
            return False
        sr = plan.operator
        if not isinstance(sr, Semiring) or plan.out_type is None:
            return False
        if not _compiled.available():
            _compiled.warn_unavailable()
            return False
        if plan.op == "mxm" and plan.params.get("method") == "heap":
            return False
        if not _compiled.supports(sr, plan.out_type):
            return False
        add, mult, arg_types, out_name, _mask_kind, _accum = (
            plan.kernel_signature()
        )
        if any(t != out_name for t in arg_types):
            return False
        for arg in plan.args:
            for dim in getattr(arg, "shape", (getattr(arg, "size", 0),)):
                if dim > MAX_DIMENSION:
                    return False
        return True

    # -- mxm ----------------------------------------------------------------

    def mxm(self, plan):
        A, B = plan.args
        C, d, sr = plan.out, plan.desc, plan.operator
        a_rows = A.by_col().transposed() if d.transpose_a else A.by_row()
        b_rows = B.by_col().transposed() if d.transpose_b else B.by_row()
        mask_hint = None
        if plan.mask is not None and not d.complement_mask:
            mask_hint = mask_true_coords(plan.mask, d)
        method = resolve_method(
            plan.params["method"], sr, mask_hint, False, a_rows, b_rows
        )
        kern = _compiled.kernel_for(sr, plan.out_type)
        if method == "dot":
            tr, tc, tv = self._mxm_dot(
                kern, a_rows, b_rows, plan.out_type, mask_hint
            )
        else:
            tr, tc, tv = self._mxm_gustavson(
                kern, a_rows, b_rows, plan.out_type, d.nthreads
            )
            if mask_hint is not None:
                from ..coords import coords_in

                sel = coords_in(tr, tc, *mask_hint)
                tr, tc, tv = tr[sel], tc[sel], tv[sel]
        return write_matrix(
            C, tr, tc, tv,
            mask=plan.mask, accum=plan.accum, desc=d,
            # compiled kernels emit sorted-unique COO by construction
            sorted_unique=True,
        )

    def _mxm_gustavson(self, kern, a_rows, b_rows, out_type, nthreads):
        a = a_rows.to_full_pointer()
        b = b_rows.to_full_pointer()
        dt = out_type.np_dtype
        empty = (
            np.empty(0, dtype=_INDEX),
            np.empty(0, dtype=_INDEX),
            np.empty(0, dtype=dt),
        )
        if a.nvals == 0 or b.nvals == 0:
            return empty
        ap, aj = _prep_index(a.indptr), _prep_index(a.minor)
        bp, bj = _prep_index(b.indptr), _prep_index(b.minor)
        ax = _prep_values(a.values, dt)
        bx = _prep_values(b.values, dt)
        n_minor = int(b.n_minor)

        ent_flops = bp[aj + 1] - bp[aj]
        cum = np.concatenate(
            [np.zeros(1, dtype=_INDEX), np.cumsum(ent_flops, dtype=_INDEX)]
        )
        row_cum = cum[ap]
        total = int(row_cum[-1])
        if telemetry.ENABLED:
            telemetry.tally("mxm", flops=total)
        if total == 0:
            return empty

        workers = 1
        if engine.PARALLEL and total >= engine.MIN_PARALLEL_FLOPS:
            requested = engine.requested_workers(nthreads)
            if requested > 1:
                # per block: SPA mark+slot, plus its share of the output
                per_block = n_minor * 16 + (total // requested + 1) * (
                    16 + dt.itemsize
                )
                workers = governor.admit_workers(requested, per_block, op="mxm")
        blocks = _flop_row_blocks(row_cum, workers)

        def run_block(lo, hi):
            t0 = time.perf_counter()
            mark = np.full(n_minor, -1, dtype=_INDEX)
            n = kern.spgemm_count(lo, hi, ap, aj, bp, bj, mark)
            mark.fill(-1)
            slot = np.empty(n_minor, dtype=_INDEX)
            ci = np.empty(n, dtype=_INDEX)
            cj = np.empty(n, dtype=_INDEX)
            cx = np.empty(n, dtype=dt)
            kern.spgemm_fill(lo, hi, ap, aj, ax, bp, bj, bx,
                             mark, slot, ci, cj, cx)
            return (ci, cj, cx), t0, time.perf_counter()

        if len(blocks) > 1:
            results = engine.run_blocks(run_block, blocks, len(blocks))
            if telemetry.ENABLED:
                for idx, ((lo, hi), (_, t0, t1)) in enumerate(
                    zip(blocks, results)
                ):
                    telemetry.span_at(
                        "engine.block", t0, t1,
                        op="mxm", block=idx, rows=hi - lo,
                    )
            tr = np.concatenate([r[0] for r, _, _ in results])
            tc = np.concatenate([r[1] for r, _, _ in results])
            tv = np.concatenate([r[2] for r, _, _ in results])
            return tr, tc, tv
        (ci, cj, cx), _, _ = run_block(*blocks[0])
        return ci, cj, cx

    def _mxm_dot(self, kern, a_rows, b_rows, out_type, mask_coords):
        dt = out_type.np_dtype
        b_cols = b_rows.with_orientation(b_rows.orientation.flipped)
        out_i, out_j = dot_candidates(a_rows, b_cols, mask_coords, False)
        if out_i.size == 0:
            return (
                np.empty(0, dtype=_INDEX),
                np.empty(0, dtype=_INDEX),
                np.empty(0, dtype=dt),
            )
        a_start, a_end = a_rows.major_ranges(out_i)
        b_start, b_end = b_cols.major_ranges(out_j)
        if telemetry.ENABLED:
            telemetry.tally(
                "mxm",
                flops=int((a_end - a_start).sum() + (b_end - b_start).sum()),
            )
        aj = _prep_index(a_rows.minor)
        ax = _prep_values(a_rows.values, dt)
        bj = _prep_index(b_cols.minor)
        bx = _prep_values(b_cols.values, dt)
        keep = np.zeros(out_i.size, dtype=np.uint8)
        out = np.zeros(out_i.size, dtype=dt)
        stats = np.zeros(4, dtype=_INDEX)
        kern.dot(
            _prep_index(a_start), _prep_index(a_end),
            _prep_index(b_start), _prep_index(b_end),
            aj, ax, bj, bx, keep, out, stats,
        )
        if telemetry.ENABLED and kern.has_terminal:
            telemetry.decision(
                "compiled.early_exit",
                op="mxm",
                terminated=int(stats[0]),
                eligible=int(stats[1]),
                dots=int(out_i.size),
                scanned=int(stats[2]),
                depth_sum=int(stats[3]),
            )
        kb = keep.view(np.bool_)
        # candidates are row-major sorted, so the filtered result is too
        return out_i[kb], out_j[kb], out[kb]

    # -- mxv / vxm ----------------------------------------------------------

    def _matvec(self, plan):
        p = plan.params
        is_mxv = p["is_mxv"]
        A, u = plan.args if is_mxv else (plan.args[1], plan.args[0])
        w, d, sr = plan.out, plan.desc, plan.operator
        transposed = p["transposed"]
        method = choose_direction(
            p["method"], u, p["optimizer"],
            op_name="mxv" if is_mxv else "vxm",
        )
        if governor.ACTIVE:
            governor.poll()
        kern = _compiled.kernel_for(sr, plan.out_type)
        dt = plan.out_type.np_dtype
        if method == "push":
            store = (A.by_row() if transposed else A.by_col()).to_full_pointer()
            ti, tv = self._push(kern, store, u, dt, matrix_first=is_mxv)
        else:
            store = (
                A.by_col().transposed() if transposed else A.by_row()
            ).to_full_pointer()
            hint = None
            if plan.mask is not None and not d.complement_mask:
                hint = mask_true_idx(plan.mask, d)
            ti, tv = self._pull(kern, store, u, dt, hint,
                                matrix_first=is_mxv,
                                op_name="mxv" if is_mxv else "vxm")
        return write_vector(w, ti, tv, mask=plan.mask, accum=plan.accum, desc=d)

    mxv = _matvec
    vxm = _matvec

    def _push(self, kern, store, u, dt, *, matrix_first):
        u_idx, u_vals = u.extract_tuples()
        if store.n_major != 0 and u_idx.size:
            if int(u_idx.max()) >= store.n_major:
                raise InvalidValue("vector index outside matrix inner dimension")
        empty = (np.empty(0, dtype=_INDEX), np.empty(0, dtype=dt))
        if u_idx.size == 0 or store.nvals == 0:
            if telemetry.ENABLED:
                telemetry.tally("mxv", flops=0)
            return empty
        ap = _prep_index(store.indptr)
        aj = _prep_index(store.minor)
        ax = _prep_values(store.values, dt)
        ui = _prep_index(u_idx)
        ux = _prep_values(u_vals, dt)
        flops = int((ap[ui + 1] - ap[ui]).sum())
        if telemetry.ENABLED:
            telemetry.tally("mxv", flops=flops)
        if flops == 0:
            return empty
        n_out = int(store.n_minor)
        cap = min(n_out, flops)
        mark = np.full(n_out, -1, dtype=_INDEX)
        oi = np.empty(cap, dtype=_INDEX)
        ov = np.empty(cap, dtype=dt)
        nz = kern.push(ui, ux, ap, aj, ax, matrix_first, mark, oi, ov)
        return oi[:nz].copy(), ov[:nz].copy()

    def _pull(self, kern, store, u, dt, hint, *, matrix_first, op_name):
        empty = (np.empty(0, dtype=_INDEX), np.empty(0, dtype=dt))
        if store.nvals == 0 or u.nvals == 0:
            if telemetry.ENABLED:
                telemetry.tally("mxv", flops=0)
            return empty
        ap = _prep_index(store.indptr)
        aj = _prep_index(store.minor)
        ax = _prep_values(store.values, dt)
        rows = (
            _prep_index(hint)
            if hint is not None
            else np.arange(store.n_major, dtype=_INDEX)
        )
        if rows.size == 0:
            return empty
        ud = _prep_values(u.to_dense(), dt)
        up = np.ascontiguousarray(u.pattern(), dtype=np.bool_)
        if telemetry.ENABLED:
            telemetry.tally("mxv", flops=int((ap[rows + 1] - ap[rows]).sum()))
        oi = np.empty(rows.size, dtype=_INDEX)
        ov = np.empty(rows.size, dtype=dt)
        stats = np.zeros(4, dtype=_INDEX)
        nz = kern.pull(rows, ap, aj, ax, ud, up, matrix_first, oi, ov, stats)
        if telemetry.ENABLED and kern.has_terminal:
            telemetry.decision(
                "compiled.early_exit",
                op=op_name,
                terminated=int(stats[0]),
                eligible=int(stats[1]),
                dots=int(rows.size),
                scanned=int(stats[2]),
                depth_sum=int(stats[3]),
            )
        return oi[:nz].copy(), ov[:nz].copy()
