"""Differential backend: run optimized, verify against the dense mimic.

The paper's testing methodology (section II.A) pairs every optimized
kernel with a spec-literal MATLAB-style implementation and compares the
two on random inputs.  This backend turns that offline methodology into
a runtime engine: every dispatched :class:`~repro.graphblas.plan.OpPlan`
executes on the *primary* backend — ``optimized`` by default; pass
``primary="compiled"`` (or set ``GRAPHBLAS_DIFF_PRIMARY``) to put the
JIT tier under test, with plans it declines walked down its fallback
chain exactly as the dispatcher would — and, when the operation is small
enough to afford a dense replay, the same plan is re-run through the
``reference`` kernels on snapshots of the inputs taken *before* the
primary engine mutated the output.  Any disagreement in pattern or
values raises :class:`~repro.graphblas.errors.BackendDivergence`.

Dense replay of an m x n matrix op costs Theta(m*n) (Theta(m*n*k) for
mxm), so verification is budgeted: plans whose estimated dense cost
exceeds ``GRAPHBLAS_DIFF_BUDGET`` cells (default ``1 << 22``) are
executed on the optimized engine only and *counted as skipped* — the
``stats`` dict and ``differential.skip`` telemetry decisions make the
coverage gap explicit rather than silently claiming full verification.
In ``strict=True`` mode a skip is not tolerated: an over-budget plan
raises :class:`~repro.graphblas.errors.BudgetExceeded` instead, so a CI
leg that promises full verification fails loudly when coverage slips.

    with graphblas.backend("differential"):
        level = bfs_level(G, src)          # every affordable op is checked
    graphblas.backends.get_backend("differential").stats
    # {'verified': 812, 'skipped': 40, 'divergences': 0}
"""

from __future__ import annotations

import numpy as np

from .. import envutil, governor, telemetry
from ..errors import BackendDivergence, BudgetExceeded
from ..matrix import Matrix
from ..plan import TABLE1_OPS, OpPlan
from ..reference import RefMatrix, _values_match
from ..vector import Vector
from . import KernelBackend, get_backend
from .reference import run_ref, to_ref

#: Default verification budget in dense cells (~4M: a 2048x2048 replay).
DEFAULT_BUDGET = 1 << 22


def _dense_cells(x) -> int:
    if isinstance(x, Matrix):
        return x.nrows * x.ncols
    if isinstance(x, Vector):
        return x.size
    return 0


def plan_cost(plan: OpPlan) -> int:
    """Estimated dense-replay cost in cells (flop count for mxm)."""
    cells = max(
        [_dense_cells(plan.out)]
        + [_dense_cells(a) for a in plan.args]
        + [_dense_cells(plan.mask)]
    )
    if plan.op == "mxm":
        out = plan.out
        return max(cells, out.nrows * out.ncols * plan.params["inner"])
    return cells


class DifferentialBackend(KernelBackend):
    """Optimized engine with budgeted spec-literal cross-checking."""

    name = "differential"
    fallback = None

    def __init__(
        self,
        budget: int | None = None,
        *,
        strict: bool = False,
        primary: str | None = None,
    ):
        if budget is None:
            # Hardened: a malformed GRAPHBLAS_DIFF_BUDGET warns once and
            # falls back to the default instead of raising ValueError.
            budget = envutil.env_int(
                "GRAPHBLAS_DIFF_BUDGET", DEFAULT_BUDGET, minimum=0
            )
        if primary is None:
            primary = envutil.env_choice(
                "GRAPHBLAS_DIFF_PRIMARY", "optimized",
                ("optimized", "compiled", "scipy"),
            )
        self.budget = budget
        self.strict = bool(strict)
        #: engine under test: each plan runs here (walking its own
        #: ``supports``/fallback chain) and is checked against reference.
        self.primary = primary
        self.stats = {"verified": 0, "skipped": 0, "divergences": 0}

    def _primary_for(self, plan: OpPlan) -> KernelBackend:
        """The engine under test for this plan, honoring declinations.

        A partial primary (``compiled``, ``scipy``) declines plans it
        cannot serve; walking its fallback chain here mirrors what the
        dispatcher would do, so the differential engine verifies exactly
        the kernel that production dispatch would have run.
        """
        be = get_backend(self.primary)
        seen = {be.name}
        while not be.supports(plan):
            fb = be.fallback
            if fb is None or fb in seen:
                return get_backend("optimized")
            if telemetry.ENABLED:
                telemetry.decision(
                    "backend.fallback", op=plan.op, declined=be.name,
                    fallback=fb,
                )
            be = get_backend(fb)
            seen.add(be.name)
        return be

    def reset_stats(self) -> None:
        self.stats = {"verified": 0, "skipped": 0, "divergences": 0}

    def _run(self, plan: OpPlan):
        if governor.ACTIVE:
            governor.poll()
        opt = self._primary_for(plan)
        cost = plan_cost(plan)
        if cost > self.budget:
            self.stats["skipped"] += 1
            if telemetry.ENABLED:
                telemetry.decision(
                    "differential.skip", op=plan.op, cost=cost,
                    budget=self.budget, strict=self.strict,
                )
            if self.strict:
                raise BudgetExceeded(
                    f"{plan.op}: dense-replay cost {cost} cells exceeds the "
                    f"verification budget of {self.budget} cells and the "
                    f"differential backend is strict"
                )
            return getattr(opt, plan.op)(plan)

        # Snapshot operands before the optimized engine mutates the output.
        ref_out = to_ref(plan.out)
        ref_args = tuple(to_ref(a) for a in plan.args)
        ref_mask = to_ref(plan.mask)

        result = getattr(opt, plan.op)(plan)
        expected = run_ref(plan, ref_out, ref_args, ref_mask)

        if plan.op == "reduce_scalar":
            dtype = plan.out_type
            ok = bool(
                _values_match(
                    dtype.cast_array(np.asarray([expected])),
                    dtype.cast_array(np.asarray([result])),
                    dtype,
                )
            )
        else:
            ok = expected.matches(result)

        if not ok:
            self.stats["divergences"] += 1
            if telemetry.ENABLED:
                telemetry.decision("differential.divergence", op=plan.op)
            raise BackendDivergence(
                f"{plan.op}: optimized and reference engines disagree on the "
                f"result (pattern or values)"
            )
        self.stats["verified"] += 1
        if telemetry.ENABLED:
            telemetry.decision("differential.verify", op=plan.op, cost=cost)
        return result


for _op in TABLE1_OPS:
    setattr(DifferentialBackend, _op, DifferentialBackend._run)
del _op
