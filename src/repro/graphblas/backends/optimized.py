"""The sparse production engine, behind the :class:`KernelBackend` protocol.

This is the kernel half of what used to be the monolithic
``operations.py``: CSR/CSC/hypersparse SpGEMM with masked Gustavson/dot
selection, push/pull direction-optimized mxv, vectorized eWise merges via
sorted-coordinate matching, and segment-folded reductions.  Every method
consumes a resolved :class:`~repro.graphblas.plan.OpPlan` and finishes
through the shared accum-then-mask write step in
:mod:`repro.graphblas.mask`.
"""

from __future__ import annotations

import importlib

import numpy as np

# the package re-exports the ``mxv`` *function*, shadowing the submodule
# attribute — fetch the module itself so monkeypatched thresholds are seen
_mxv_mod = importlib.import_module(".mxv", __package__.rsplit(".", 1)[0])

from .. import engine, governor, telemetry
from ..coords import coords_in, idx_in, match_coo, match_idx
from ..descriptor import Descriptor
from ..mask import mask_true_coords, mask_true_idx, write_matrix, write_vector
from ..matrix import Matrix
from ..mxm import _gather_ranges, mxm_coo
from ..mxv import spmspv_push, spmv_pull
from ..types import BOOL
from ..vector import Vector
from . import KernelBackend

_INDEX = np.int64


def _matrix_coo(A: Matrix, transposed: bool):
    rows, cols, vals = A.extract_tuples()
    if transposed:
        rows, cols = cols, rows
    return rows, cols, vals


def _expand_selection(sel: np.ndarray, entry_ids: np.ndarray):
    """Map original indices through a (possibly duplicated) selection list.

    Returns (entry_positions, output_indices): for every occurrence of
    ``entry_ids[p]`` in ``sel``, one pair (p, position-in-sel).
    """
    order = np.argsort(sel, kind="stable")
    sorted_sel = sel[order]
    lo = np.searchsorted(sorted_sel, entry_ids, "left")
    hi = np.searchsorted(sorted_sel, entry_ids, "right")
    reps = hi - lo
    gather = _gather_ranges(lo, hi)
    out_pos = order[gather]
    entry_sel = np.repeat(np.arange(entry_ids.size, dtype=_INDEX), reps)
    return entry_sel, out_pos.astype(_INDEX)


def _position_map(sel: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Map original indices to their position in unique ``sel`` (-1 if absent)."""
    if sel.size == 0 or ids.size == 0:
        return np.full(ids.size, -1, dtype=_INDEX)
    order = np.argsort(sel, kind="stable")
    sorted_sel = sel[order]
    pos = np.searchsorted(sorted_sel, ids)
    pos_c = np.minimum(pos, sel.size - 1)
    hit = sorted_sel[pos_c] == ids
    out = np.full(ids.size, -1, dtype=_INDEX)
    out[hit] = order[pos_c[hit]]
    return out


def _region_z(C: Matrix, mapped, region_rows, region_cols, accum):
    """Assemble Z for assign: region-replacement or accum-union with C."""
    mr, mc, mv = mapped
    cr, cc, cv = C.extract_tuples()
    if accum is None:
        in_region = np.isin(cr, region_rows) & np.isin(cc, region_cols)
        keep = ~in_region
        zr = np.concatenate([cr[keep], mr])
        zc = np.concatenate([cc[keep], mc])
        zv = np.concatenate([cv[keep], C.dtype.cast_array(mv)])
        return zr, zc, zv
    ia, ib, oc, om = match_coo(cr, cc, mr, mc)
    both = accum.apply(cv[ia], mv[ib], C.dtype)
    zr = np.concatenate([cr[ia], cr[oc], mr[om]])
    zc = np.concatenate([cc[ia], cc[oc], mc[om]])
    zv = np.concatenate([both, cv[oc], C.dtype.cast_array(mv[om])])
    return zr, zc, zv


class OptimizedBackend(KernelBackend):
    """The default sparse engine."""

    name = "optimized"
    fallback = None

    # -- mxm / mxv / vxm ----------------------------------------------------

    def mxm(self, plan):
        A, B = plan.args
        C, d, sr = plan.out, plan.desc, plan.operator
        a_rows = A.by_col().transposed() if d.transpose_a else A.by_row()
        b_rows = B.by_col().transposed() if d.transpose_b else B.by_row()
        mask_hint = None
        if plan.mask is not None and not d.complement_mask:
            mask_hint = mask_true_coords(plan.mask, d)
        tr, tc, tv = mxm_coo(
            a_rows,
            b_rows,
            sr,
            plan.out_type,
            method=plan.params["method"],
            mask_coords=mask_hint,
            mask_complement=False,
            nthreads=d.nthreads,
        )
        return write_matrix(
            C,
            tr,
            tc,
            tv,
            mask=plan.mask,
            accum=plan.accum,
            desc=d,
            # mxm_coo's contract is sorted-unique COO output; with the
            # engine on, the rebuild may trust that and skip its sort pass
            sorted_unique=engine.ENABLED,
        )

    def _matvec(self, plan):
        p = plan.params
        is_mxv = p["is_mxv"]
        A, u = plan.args if is_mxv else (plan.args[1], plan.args[0])
        w, d, sr = plan.out, plan.desc, plan.operator
        transposed = p["transposed"]
        method, optimizer = p["method"], p["optimizer"]

        method = _mxv_mod.choose_direction(
            method, u, optimizer, op_name="mxv" if is_mxv else "vxm"
        )

        if governor.ACTIVE:
            # direction boundary: poll before the push/pull kernel runs
            governor.poll()
        if method == "push":
            store = A.by_row() if transposed else A.by_col()
            u_idx, u_vals = u.extract_tuples()
            ti, tv = spmspv_push(
                store, u_idx, u_vals, sr, plan.out_type, matrix_first=is_mxv
            )
        else:
            store = A.by_col().transposed() if transposed else A.by_row()
            hint = None
            if plan.mask is not None and not d.complement_mask:
                hint = mask_true_idx(plan.mask, d)
            ti, tv = spmv_pull(
                store,
                u.to_dense(),
                u.pattern(),
                sr,
                plan.out_type,
                matrix_first=is_mxv,
                outer_hint=hint,
                nthreads=d.nthreads,
            )
        return write_vector(w, ti, tv, mask=plan.mask, accum=plan.accum, desc=d)

    mxv = _matvec
    vxm = _matvec

    # -- element-wise -------------------------------------------------------

    def ewise_add(self, plan):
        A, B = plan.args
        C, d, op, out_type = plan.out, plan.desc, plan.operator, plan.out_type
        if plan.params["is_vector"]:
            ai, av = A.extract_tuples()
            bi, bv = B.extract_tuples()
            ia, ib, oa, ob = match_idx(ai, bi)
            both = op.apply(av[ia], bv[ib], out_type)
            ti = np.concatenate([ai[ia], ai[oa], bi[ob]])
            tv = np.concatenate(
                [both, out_type.cast_array(av[oa]), out_type.cast_array(bv[ob])]
            )
            order = np.argsort(ti, kind="stable")
            return write_vector(
                C, ti[order], tv[order], mask=plan.mask, accum=plan.accum, desc=d
            )
        ar, ac, av = _matrix_coo(A, d.transpose_a)
        br, bc, bv = _matrix_coo(B, d.transpose_b)
        ia, ib, oa, ob = match_coo(ar, ac, br, bc)
        both = op.apply(av[ia], bv[ib], out_type)
        tr = np.concatenate([ar[ia], ar[oa], br[ob]])
        tc = np.concatenate([ac[ia], ac[oa], bc[ob]])
        tv = np.concatenate(
            [both, out_type.cast_array(av[oa]), out_type.cast_array(bv[ob])]
        )
        return write_matrix(C, tr, tc, tv, mask=plan.mask, accum=plan.accum, desc=d)

    def ewise_mult(self, plan):
        A, B = plan.args
        C, d, op, out_type = plan.out, plan.desc, plan.operator, plan.out_type
        if plan.params["is_vector"]:
            ai, av = A.extract_tuples()
            bi, bv = B.extract_tuples()
            ia, ib, _, _ = match_idx(ai, bi)
            tv = op.apply(av[ia], bv[ib], out_type)
            return write_vector(
                C, ai[ia], tv, mask=plan.mask, accum=plan.accum, desc=d
            )
        ar, ac, av = _matrix_coo(A, d.transpose_a)
        br, bc, bv = _matrix_coo(B, d.transpose_b)
        ia, ib, _, _ = match_coo(ar, ac, br, bc)
        tv = op.apply(av[ia], bv[ib], out_type)
        return write_matrix(
            C, ar[ia], ac[ia], tv, mask=plan.mask, accum=plan.accum, desc=d
        )

    # -- apply / select -----------------------------------------------------

    def apply(self, plan):
        (A,) = plan.args
        C, d, p, out_type = plan.out, plan.desc, plan.params, plan.out_type
        if p["is_vector"]:
            ti, tv_in = A.extract_tuples()
            rows, cols = ti, np.zeros_like(ti)
        else:
            rows, cols, tv_in = _matrix_coo(A, d.transpose_a)

        kind = p["kind"]
        if kind == "indexunary":
            iu = plan.operator
            thunk = p["thunk"] if p["thunk"] is not None else 0
            tv = out_type.cast_array(iu.apply(tv_in, rows, cols, thunk))
        elif kind == "bind1st":
            left = np.asarray(p["left"])
            tv = plan.operator.apply(
                np.broadcast_to(left, tv_in.shape), tv_in, out_type
            )
        elif kind == "bind2nd":
            right = np.asarray(p["right"])
            tv = plan.operator.apply(
                tv_in, np.broadcast_to(right, tv_in.shape), out_type
            )
        else:
            tv = plan.operator.apply(tv_in, out_type)

        if p["is_vector"]:
            return write_vector(C, rows, tv, mask=plan.mask, accum=plan.accum, desc=d)
        return write_matrix(C, rows, cols, tv, mask=plan.mask, accum=plan.accum, desc=d)

    def select(self, plan):
        (A,) = plan.args
        C, d, iu, thunk = plan.out, plan.desc, plan.operator, plan.params["thunk"]
        if plan.params["is_vector"]:
            ti, tv = A.extract_tuples()
            keep = BOOL.cast_array(iu.apply(tv, ti, np.zeros_like(ti), thunk))
            return write_vector(
                C, ti[keep], tv[keep], mask=plan.mask, accum=plan.accum, desc=d
            )
        rows, cols, vals = _matrix_coo(A, d.transpose_a)
        keep = BOOL.cast_array(iu.apply(vals, rows, cols, thunk))
        return write_matrix(
            C, rows[keep], cols[keep], vals[keep],
            mask=plan.mask, accum=plan.accum, desc=d,
        )

    # -- reduce -------------------------------------------------------------

    def reduce_rowwise(self, plan):
        (A,) = plan.args
        w, d, mon = plan.out, plan.desc, plan.operator
        store = A.by_col() if d.transpose_a else A.by_row()
        counts = np.diff(store.indptr)
        nonempty = counts > 0
        ids = store.h if store.hyper else np.arange(store.n_major, dtype=_INDEX)
        ti = ids[nonempty]
        starts = store.indptr[:-1][nonempty]
        tv = mon.reduce_segments(store.values, starts, A.dtype)
        return write_vector(w, ti, tv, mask=plan.mask, accum=plan.accum, desc=d)

    def reduce_scalar(self, plan):
        (A,) = plan.args
        mon = plan.operator
        if isinstance(A, Vector):
            _, vals = A.extract_tuples()
        else:
            _, _, vals = A.extract_tuples()
        dtype = A.dtype
        out = mon.reduce_array(vals, dtype)
        accum, init = plan.accum, plan.params["init"]
        if accum is not None and init is not None:
            out = accum.apply(np.asarray(init), np.asarray(out), dtype)
            out = out.item() if dtype.builtin else out
        return out

    # -- transpose / extract ------------------------------------------------

    def transpose(self, plan):
        (A,) = plan.args
        C = plan.out
        if (
            engine.DUAL_FORMAT
            and plan.params["transposed"]
            and plan.mask is None
            and plan.accum is None
            and C is not A
            and C.dtype == A.dtype
        ):
            A.wait()
            store = A._store
            if store.hyper == C._store.hyper:
                # Both orientations of A^T are O(1) views: the primary store
                # transposed, and the (cached or newly built) twin transposed.
                # Install the one matching C's current orientation as C's
                # store; the other becomes C's twin, so a later pull-phase
                # mxv on C converts nothing.
                twin = A._oriented(store.orientation.flipped)
                t_primary = store.transposed()
                t_twin = twin.transposed()
                if t_primary.orientation == C._store.orientation:
                    new_store, new_alt = t_primary, t_twin
                else:
                    new_store, new_alt = t_twin, t_primary
                C._store = new_store
                C._alt = new_alt
                C._pend_i, C._pend_j, C._pend_v, C._pend_del = [], [], [], []
                C._epoch += 1
                C._alt_epoch = C._epoch
                if telemetry.ENABLED:
                    telemetry.decision(
                        "engine.transpose",
                        fast_path=True,
                        nvals=int(store.nvals),
                    )
                return C
        rows, cols, vals = _matrix_coo(A, plan.params["transposed"])
        return write_matrix(
            C, rows, cols, vals,
            mask=plan.mask, accum=plan.accum, desc=plan.desc,
        )

    def extract(self, plan):
        (A,) = plan.args
        C, d, p = plan.out, plan.desc, plan.params
        kind = p["kind"]
        if kind == "vector":
            ai, av = A.extract_tuples()
            entry_sel, out_pos = _expand_selection(p["I"], ai)
            ti, tv = out_pos, av[entry_sel]
            order = np.argsort(ti, kind="stable")
            return write_vector(
                C, ti[order], tv[order], mask=plan.mask, accum=plan.accum, desc=d
            )
        if kind == "col":
            rows, cols, vals = _matrix_coo(A, d.transpose_a)
            in_col = cols == p["j"]
            entry_sel, out_pos = _expand_selection(p["I"], rows[in_col])
            tv = vals[in_col][entry_sel]
            order = np.argsort(out_pos, kind="stable")
            return write_vector(
                C, out_pos[order], tv[order], mask=plan.mask, accum=plan.accum, desc=d
            )
        rows, cols, vals = _matrix_coo(A, d.transpose_a)
        r_sel, r_out = _expand_selection(p["I"], rows)
        cols2, vals2 = cols[r_sel], vals[r_sel]
        c_sel, c_out = _expand_selection(p["J"], cols2)
        return write_matrix(
            C, r_out[c_sel], c_out, vals2[c_sel],
            mask=plan.mask, accum=plan.accum, desc=d,
        )

    # -- assign / subassign -------------------------------------------------

    def assign(self, plan):
        (A,) = plan.args
        C, d, p, mask, accum = plan.out, plan.desc, plan.params, plan.mask, plan.accum

        if p.get("masked_fill"):
            if isinstance(C, Vector):
                mi = mask_true_idx(mask, d)
                ci, cv = C.extract_tuples()
                keep = ~idx_in(ci, mi)
                zi = np.concatenate([ci[keep], mi])
                zv = np.concatenate(
                    [cv[keep],
                     C.dtype.cast_array(np.broadcast_to(np.asarray(A), mi.shape))]
                )
                order = np.argsort(zi, kind="stable")
                return write_vector(
                    C, zi[order], zv[order], mask=None, accum=None, desc=d
                )
            mr, mc = mask_true_coords(mask, d)
            cr, cc, cv = C.extract_tuples()
            keep = ~coords_in(cr, cc, mr, mc)
            zr = np.concatenate([cr[keep], mr])
            zc = np.concatenate([cc[keep], mc])
            zv = np.concatenate(
                [cv[keep],
                 C.dtype.cast_array(np.broadcast_to(np.asarray(A), mr.shape))]
            )
            return write_matrix(C, zr, zc, zv, mask=None, accum=None, desc=d)

        if isinstance(C, Vector):
            I_res = p["I"]
            if isinstance(A, Vector):
                ai, av = A.extract_tuples()
                mi, mv = I_res[ai], av
            else:  # scalar fill
                mi, mv = I_res, np.broadcast_to(np.asarray(A), I_res.shape)
            ci, cv = C.extract_tuples()
            if accum is None:
                keep = ~np.isin(ci, I_res)
                zi = np.concatenate([ci[keep], mi])
                zv = np.concatenate([cv[keep], C.dtype.cast_array(mv)])
            else:
                order = np.argsort(mi, kind="stable")
                mi, mv = mi[order], np.asarray(mv)[order]
                ia, ib, oc, om = match_idx(ci, mi)
                both = accum.apply(cv[ia], mv[ib], C.dtype)
                zi = np.concatenate([ci[ia], ci[oc], mi[om]])
                zv = np.concatenate([both, cv[oc], C.dtype.cast_array(mv[om])])
            order = np.argsort(zi, kind="stable")
            return write_vector(C, zi[order], zv[order], mask=mask, accum=None, desc=d)

        I_res, J_res = p["I"], p["J"]
        if isinstance(A, Matrix):
            ar, ac, av = _matrix_coo(A, d.transpose_a)
            mapped = (I_res[ar], J_res[ac], av)
        elif isinstance(A, Vector):
            # row/column assign: C(i, J) = u or C(I, j) = u
            ai, av = A.extract_tuples()
            if I_res.size == 1 and A.size == J_res.size:
                mapped = (np.full(ai.size, I_res[0], dtype=_INDEX), J_res[ai], av)
            else:
                mapped = (I_res[ai], np.full(ai.size, J_res[0], dtype=_INDEX), av)
        else:  # scalar fill of the whole region
            grid_r = np.repeat(I_res, J_res.size)
            grid_c = np.tile(J_res, I_res.size)
            mapped = (grid_r, grid_c, np.broadcast_to(np.asarray(A), grid_r.shape))

        zr, zc, zv = _region_z(C, mapped, I_res, J_res, accum)
        return write_matrix(C, zr, zc, zv, mask=mask, accum=None, desc=d)

    def subassign(self, plan):
        (A,) = plan.args
        C, d, p, mask, accum = plan.out, plan.desc, plan.params, plan.mask, plan.accum

        if isinstance(C, Vector):
            I_res = p["I"]
            # region view of C, in region coordinates
            order = np.argsort(I_res, kind="stable")
            ci, cv = C.extract_tuples()
            pos = np.searchsorted(I_res[order], ci)
            pos_c = np.minimum(pos, I_res.size - 1)
            inside = (
                (I_res[order][pos_c] == ci) if I_res.size else np.zeros(ci.size, bool)
            )
            region = Vector(C.dtype, max(int(I_res.size), 1))
            reg_idx = order[pos_c[inside]]
            rorder = np.argsort(reg_idx, kind="stable")
            region.build(reg_idx[rorder], cv[inside][rorder], dup=None)
            # the operand in region coordinates
            if isinstance(A, Vector):
                ti, tv = A.extract_tuples()
            else:
                ti = np.arange(I_res.size, dtype=_INDEX)
                tv = np.broadcast_to(np.asarray(A), ti.shape)
            write_vector(region, ti, tv, mask=mask, accum=accum, desc=d)
            # splice the region back
            ri, rv = region.extract_tuples()
            zi = np.concatenate([ci[~inside], I_res[ri]])
            zv = np.concatenate([cv[~inside], rv])
            zorder = np.argsort(zi, kind="stable")
            return write_vector(
                C, zi[zorder], zv[zorder], mask=None, accum=None, desc=Descriptor()
            )

        I_res, J_res = p["I"], p["J"]
        cr, cc, cv = C.extract_tuples()
        rmap = _position_map(I_res, cr)
        cmap = _position_map(J_res, cc)
        inside = (rmap >= 0) & (cmap >= 0)
        region = Matrix(C.dtype, max(int(I_res.size), 1), max(int(J_res.size), 1))
        region.build(rmap[inside], cmap[inside], cv[inside], dup=None)

        if isinstance(A, Matrix):
            tr, tc, tv = _matrix_coo(A, d.transpose_a)
        elif isinstance(A, Vector):
            ai, av = A.extract_tuples()
            if I_res.size == 1 and A.size == J_res.size:
                tr, tc, tv = np.zeros(ai.size, dtype=_INDEX), ai, av
            else:
                tr, tc, tv = ai, np.zeros(ai.size, dtype=_INDEX), av
        else:
            tr = np.repeat(np.arange(I_res.size, dtype=_INDEX), J_res.size)
            tc = np.tile(np.arange(J_res.size, dtype=_INDEX), I_res.size)
            tv = np.broadcast_to(np.asarray(A), tr.shape)
        write_matrix(region, tr, tc, tv, mask=mask, accum=accum, desc=d)

        rr, rc, rv = region.extract_tuples()
        zr = np.concatenate([cr[~inside], I_res[rr]])
        zc = np.concatenate([cc[~inside], J_res[rc]])
        zv = np.concatenate([cv[~inside], rv])
        return write_matrix(C, zr, zc, zv, mask=None, accum=None, desc=Descriptor())

    # -- kronecker ----------------------------------------------------------

    def kronecker(self, plan):
        A, B = plan.args
        C, d, bop, out_type = plan.out, plan.desc, plan.operator, plan.out_type
        nrb, ncb = (B.ncols, B.nrows) if d.transpose_b else (B.nrows, B.ncols)
        ar, ac, av = _matrix_coo(A, d.transpose_a)
        br, bc, bv = _matrix_coo(B, d.transpose_b)
        tr = (np.repeat(ar, br.size) * nrb + np.tile(br, ar.size)).astype(_INDEX)
        tc = (np.repeat(ac, bc.size) * ncb + np.tile(bc, ac.size)).astype(_INDEX)
        tv = bop.apply(np.repeat(av, bv.size), np.tile(bv, av.size), out_type)
        return write_matrix(C, tr, tc, tv, mask=plan.mask, accum=plan.accum, desc=d)
