"""Pluggable kernel backends for the Table-I operation set.

The operation layer splits every GraphBLAS call into an engine-independent
:class:`~repro.graphblas.plan.OpPlan` (built by :mod:`repro.graphblas.plan`)
and a kernel half served by a :class:`KernelBackend`.  Five backends ship:

``optimized``
    The sparse production engine (CSR/CSC/hypersparse kernels, push/pull
    mxv, masked SpGEMM).  The default.
``compiled``
    JIT-compiled monomorphic semiring kernels
    (:mod:`repro.graphblas.compiled`) for mxm/mxv/vxm with true
    terminal-monoid early exit; everything else — and any op without a
    generated template or usable toolchain — falls back to ``optimized``.
``reference``
    The dense spec-literal mimic from :mod:`repro.graphblas.reference`,
    promoted from test helper to a first-class engine.  Slow but written
    directly from the spec's math.
``scipy``
    mxm/mxv/vxm/eWise hot paths bridged through scipy.sparse, with
    graceful fallback to ``optimized`` for everything else (or when scipy
    is not installed).
``differential``
    The paper's testing methodology (section II.A) as a runtime mode:
    every call runs on both ``optimized`` and ``reference`` and raises
    :class:`~repro.graphblas.errors.BackendDivergence` if the two disagree
    on pattern or values.

Selection, outermost wins:

1. per-call override: ``ops.mxm(C, A, B, backend="reference")``;
2. context manager: ``with graphblas.backend("differential"): ...``;
3. environment: ``GRAPHBLAS_BACKEND=reference`` (read once, at first use;
   ``set_default_backend`` changes it at runtime);
4. the ``optimized`` default.

Every dispatch records a ``backend.dispatch`` telemetry decision naming
the backend that served the op, and a ``backend.fallback`` decision
whenever a backend declines a plan via :meth:`KernelBackend.supports`.
"""

from __future__ import annotations

import importlib
import threading

import time

from .. import engine as _engine
from .. import envutil, governor, telemetry
from ..errors import InvalidValue
from ..plan import TABLE1_OPS, OpPlan

__all__ = [
    "KernelBackend",
    "backend",
    "register_backend",
    "get_backend",
    "available_backends",
    "current_backend",
    "current_backend_name",
    "set_default_backend",
    "dispatch",
]


class KernelBackend:
    """Protocol for a kernel engine serving the Table-I operation surface.

    Subclasses implement one method per operation in
    :data:`~repro.graphblas.plan.TABLE1_OPS`; each receives a fully
    resolved :class:`OpPlan`, performs the kernel work, and finishes the
    result through the shared accum-then-mask write step so all engines
    share identical mask/accumulator/replace semantics.

    ``supports`` lets a partial backend decline plans it cannot serve;
    the dispatcher then walks the ``fallback`` chain (recording a
    ``backend.fallback`` telemetry decision at each hop).
    """

    name = "abstract"
    #: backend name to try when ``supports`` returns False (None = error).
    fallback: str | None = "optimized"

    def supports(self, plan: OpPlan) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


def _unimplemented(op_name):
    def method(self, plan):
        raise NotImplementedError(f"{self.name} backend does not implement {op_name}")

    method.__name__ = op_name
    return method


for _op in TABLE1_OPS:
    setattr(KernelBackend, _op, _unimplemented(_op))
del _op


# --------------------------------------------------------------------------
# registry
# --------------------------------------------------------------------------

_factories: dict[str, object] = {}
_instances: dict[str, KernelBackend] = {}
_tls = threading.local()
_default: KernelBackend | None = None


def register_backend(name: str, factory, *, replace: bool = False) -> None:
    """Register a backend under ``name``; ``factory()`` builds the instance.

    Registration is lazy: the factory runs on first :func:`get_backend`
    lookup, so optional dependencies (scipy) are only imported on use.
    """
    if name in _factories and not replace:
        raise InvalidValue(f"backend {name!r} already registered")
    _factories[name] = factory
    _instances.pop(name, None)


def available_backends() -> tuple[str, ...]:
    """Names of all registered backends."""
    return tuple(sorted(_factories))


def get_backend(spec) -> KernelBackend:
    """Resolve a backend instance from a name or instance (cached)."""
    if isinstance(spec, KernelBackend):
        return spec
    inst = _instances.get(spec)
    if inst is None:
        factory = _factories.get(spec)
        if factory is None:
            raise InvalidValue(
                f"unknown backend {spec!r}; available: {', '.join(available_backends())}"
            )
        inst = _instances[spec] = factory()
    return inst


def _builtin(module: str, cls: str):
    def factory():
        mod = importlib.import_module(f".{module}", __package__)
        return getattr(mod, cls)()

    return factory


register_backend("optimized", _builtin("optimized", "OptimizedBackend"))
register_backend("compiled", _builtin("compiled", "CompiledBackend"))
register_backend("reference", _builtin("reference", "ReferenceBackend"))
register_backend("scipy", _builtin("scipy_backend", "SciPyBackend"))
register_backend("differential", _builtin("differential", "DifferentialBackend"))


# --------------------------------------------------------------------------
# selection
# --------------------------------------------------------------------------

def set_default_backend(name: str | None) -> None:
    """Set the process default (overriding ``GRAPHBLAS_BACKEND``).

    ``None`` re-reads the environment on next use.
    """
    global _default
    _default = None if name is None else get_backend(name)


def current_backend() -> KernelBackend:
    """The backend active on this thread (stack top, else the default)."""
    stack = getattr(_tls, "stack", None)
    if stack:
        return stack[-1]
    global _default
    if _default is None:
        # Hardened: an unknown GRAPHBLAS_BACKEND warns once and falls
        # back to the default rather than raising deep inside the first
        # operation of the process.
        name = envutil.env_choice(
            "GRAPHBLAS_BACKEND", "optimized", available_backends()
        )
        _default = get_backend(name)
    return _default


def current_backend_name() -> str:
    """Name of the backend active on this thread."""
    return current_backend().name


class backend:
    """Context manager selecting a backend for the enclosed operations.

    ::

        with graphblas.backend("differential"):
            bfs_level(src, G)   # every Table-I op is cross-checked

    Selection is thread-local and nests; the innermost wins.
    """

    def __init__(self, name):
        self._target = get_backend(name)

    def __enter__(self) -> KernelBackend:
        stack = getattr(_tls, "stack", None)
        if stack is None:
            stack = _tls.stack = []
        stack.append(self._target)
        return self._target

    def __exit__(self, *exc) -> None:
        _tls.stack.pop()


# --------------------------------------------------------------------------
# dispatch
# --------------------------------------------------------------------------

def dispatch(plan: OpPlan, backend=None):
    """Route a plan to the active backend, walking fallbacks as needed.

    Under an active :class:`~repro.graphblas.governor.ExecutionContext`
    three extra steps apply:

    - cancellation/deadline are polled before the kernel runs;
    - a plan the governor marked over-budget is routed to tiled
      spill-to-disk execution (:mod:`repro.graphblas.tiled`) when the
      context allows it, or to the degraded backend it chose (the
      degraded backend's own fallback chain is not walked — falling back
      to the heavy engine would defeat the budget);
    - the context's :class:`~repro.graphblas.governor.RetryPolicy`, if
      any, wraps the kernel call so transient failures are retried with
      seeded exponential backoff.  Tiled execution is deliberately *not*
      wrapped: its spill I/O carries its own seeded retry, and an outer
      retry would multiply the attempts.
    """
    degraded_to = plan.params.pop("governor_degrade_to", None)
    tiled_route = plan.params.pop("governor_tiled", False) or (
        plan.params.get("method") == "tiled"
        and plan.op in ("mxm", "mxv", "vxm")
    )
    if governor.ACTIVE:
        governor.poll()
    if tiled_route:
        from .. import tiled as _tiled

        if telemetry.ENABLED:
            telemetry.decision(
                "governor.tiled", op=plan.op,
                est_bytes=plan.params.get("est_bytes"),
            )
        return _execute(plan, "tiled", "tiled", lambda: _tiled.execute(plan))
    if degraded_to is not None:
        be = get_backend(degraded_to)
        route = "degraded"
        if telemetry.ENABLED:
            telemetry.decision(
                "governor.degrade", op=plan.op, backend=be.name,
                est_bytes=plan.params.get("est_bytes"),
            )
    else:
        route = "direct"
        be = get_backend(backend) if backend is not None else current_backend()
        while not be.supports(plan):
            fb = be.fallback
            if fb is None or fb == be.name:
                raise NotImplementedError(
                    f"backend {be.name!r} cannot serve {plan.op} and has no fallback"
                )
            if telemetry.ENABLED:
                telemetry.decision(
                    "backend.fallback", op=plan.op, declined=be.name, fallback=fb
                )
            be = get_backend(fb)
    if telemetry.ENABLED:
        telemetry.decision("backend.dispatch", op=plan.op, backend=be.name)
    kernel = getattr(be, plan.op)
    retry = None
    if governor.ACTIVE:
        ctx = governor.current()
        if ctx is not None and ctx.retry is not None:
            retry = ctx.retry
    return _execute(plan, route, be.name, lambda: kernel(plan), retry=retry)


def _actual_bytes(plan, out) -> int | None:
    """Measured result footprint, comparable to the admission estimate."""
    try:
        nvals = getattr(out, "nvals", None)
        if nvals is None:
            return None
        return int(nvals) * governor._entry_bytes(out, plan.out_type)
    except (AttributeError, TypeError, ValueError):
        return None


def _execute(plan: OpPlan, route: str, backend_name: str, run, retry=None):
    """Run the chosen kernel, emitting a ``plan.done`` record when wanted.

    ``retry`` is the governing context's
    :class:`~repro.graphblas.governor.RetryPolicy` (or None); applying
    the wrap here lets the ``plan.done`` record carry the number of
    retries this specific plan consumed, not just the context total.

    The record — kernel wall time, dispatch route, estimated vs actual
    result bytes, kernel-cache hit/compile deltas — feeds the process
    metrics (``graphblas_plan_seconds``, slow-op log) and
    :func:`repro.obs.explain`.  It is only produced while observability
    or an EXPLAIN capture is active (``telemetry.PLAN_EVENTS``), so a
    plain collector-only telemetry stream is byte-identical to before.
    """
    if retry is not None:
        inner = run
        run = lambda: retry.call(inner, op=plan.op)  # noqa: E731
    if not (telemetry.ENABLED and telemetry.PLAN_EVENTS):
        return run()
    from .. import compiled as _compiled

    ctx = governor.current() if governor.ACTIVE else None
    r0 = ctx.stats.get("retries", 0) if ctx is not None else 0
    k0 = _engine.kernel_cache_stats()
    c0 = _compiled.cache_stats()
    t0 = time.perf_counter()
    out = run()
    seconds = time.perf_counter() - t0
    k1 = _engine.kernel_cache_stats()
    c1 = _compiled.cache_stats()
    detail = {
        "op": plan.op,
        "backend": backend_name,
        "route": route,
        "seconds": seconds,
        "kernel_hits": k1["hits"] - k0["hits"],
        "kernel_compiles": k1["misses"] - k0["misses"],
    }
    compiled_hits = c1["hits"] - c0["hits"]
    compiled_compiles = c1["misses"] - c0["misses"]
    if compiled_hits or compiled_compiles:
        detail["compiled_hits"] = compiled_hits
        detail["compiled_compiles"] = compiled_compiles
    if ctx is not None and retry is not None:
        replays = ctx.stats.get("retries", 0) - r0
        if replays:
            detail["retries"] = replays
    method = plan.params.get("method")
    if method is not None:
        detail["method"] = method
    est = plan.params.get("est_bytes")
    if est is not None:
        detail["est_bytes"] = int(est)
    actual = _actual_bytes(plan, out)
    if actual is not None:
        detail["actual_bytes"] = actual
    if ctx is not None:
        if ctx.memory_budget is not None:
            detail["budget_bytes"] = ctx.memory_budget
        detail["admission"] = {"tiled": "tiled", "degraded": "degraded"}.get(
            route, "admitted" if ctx.memory_budget is not None else "unbudgeted"
        )
    else:
        detail["admission"] = "ungoverned"
    telemetry.decision("plan.done", **detail)
    return out
