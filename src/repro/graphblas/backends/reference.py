"""The dense spec-literal mimic as a first-class kernel backend.

Promotes :mod:`repro.graphblas.reference` — the paper's "MATLAB mimic",
written line by line from the spec with dense values and a separate
Boolean pattern — from test helper to a selectable engine:

    with graphblas.backend("reference"):
        ops.mxm(C, A, B, "PLUS_TIMES")   # triply-nested loop, for real

Each call converts the sparse operands to :class:`RefMatrix` /
:class:`RefVector`, runs the ``ref_*`` kernel (which applies descriptor,
accumulator, and mask semantics itself, spec-literally), and adopts the
dense result back into the caller's sparse container in place — so
algorithm code cannot tell which engine ran, only how long it took.

:func:`run_ref` is the plan→ref-kernel mapping, shared with the
``differential`` backend, which runs the same kernels as an oracle.

Deliberately O(n^2)/O(n^3): correctness oracle, not a performance path.
"""

from __future__ import annotations

import numpy as np

from .. import governor
from ..matrix import Matrix
from ..plan import TABLE1_OPS, OpPlan
from ..reference import (
    RefMatrix,
    RefVector,
    ref_apply,
    ref_assign,
    ref_ewise_add,
    ref_ewise_mult,
    ref_extract,
    ref_kronecker,
    ref_mxm,
    ref_mxv,
    ref_reduce_rowwise,
    ref_reduce_scalar,
    ref_select,
    ref_subassign,
    ref_transpose,
    ref_vxm,
)
from ..vector import Vector
from . import KernelBackend


def to_ref(x):
    """Sparse container (or scalar) -> dense mimic object (or scalar)."""
    if isinstance(x, Matrix):
        return RefMatrix.from_matrix(x)
    if isinstance(x, Vector):
        return RefVector.from_vector(x)
    return x


def adopt_matrix(C: Matrix, R: RefMatrix) -> Matrix:
    """Write a dense-mimic result into the sparse output container in place."""
    rows, cols = np.nonzero(R.pattern)
    built = Matrix(C.dtype, C.nrows, C.ncols)
    built.build(rows, cols, C.dtype.cast_array(R.vals[rows, cols]), dup=None)
    fmt = C.format
    C._store = built._store
    C._pend_i, C._pend_j = [], []
    C._pend_v, C._pend_del = [], []
    C._alt = None
    if fmt != C.format:
        C.set_format(fmt)
    return C


def adopt_vector(w: Vector, r: RefVector) -> Vector:
    (idx,) = np.nonzero(r.pattern)
    built = Vector(w.dtype, w.size)
    built.build(idx, w.dtype.cast_array(r.vals[idx]), dup=None)
    w.indices = built.indices
    w.values = built.values
    w._pend_i, w._pend_v, w._pend_del = [], [], []
    return w


def run_ref(plan: OpPlan, out, args, mask):
    """Run the dense mimic kernel for a plan on pre-converted Ref operands.

    ``out``/``args``/``mask`` are the plan's containers already converted
    through :func:`to_ref` (callers snapshot them *before* another engine
    mutates the real output).  Returns the resulting Ref object, or the
    Python scalar for ``reduce_scalar``.
    """
    op, p, accum, d = plan.op, plan.params, plan.accum, plan.desc
    if op == "mxm":
        return ref_mxm(out, args[0], args[1], plan.operator,
                       mask=mask, accum=accum, desc=d)
    if op == "mxv":
        return ref_mxv(out, args[0], args[1], plan.operator,
                       mask=mask, accum=accum, desc=d)
    if op == "vxm":
        return ref_vxm(out, args[0], args[1], plan.operator,
                       mask=mask, accum=accum, desc=d)
    if op == "ewise_add":
        return ref_ewise_add(out, args[0], args[1], plan.operator,
                             mask=mask, accum=accum, desc=d)
    if op == "ewise_mult":
        return ref_ewise_mult(out, args[0], args[1], plan.operator,
                              mask=mask, accum=accum, desc=d)
    if op == "apply":
        return ref_apply(out, args[0], plan.operator,
                         left=p["left"], right=p["right"], thunk=p["thunk"],
                         mask=mask, accum=accum, desc=d)
    if op == "select":
        return ref_select(out, args[0], plan.operator, p["thunk"],
                          mask=mask, accum=accum, desc=d)
    if op == "reduce_rowwise":
        return ref_reduce_rowwise(out, args[0], plan.operator,
                                  mask=mask, accum=accum, desc=d)
    if op == "reduce_scalar":
        return ref_reduce_scalar(args[0], plan.operator,
                                 accum=accum, init=p["init"])
    if op == "transpose":
        return ref_transpose(out, args[0], mask=mask, accum=accum, desc=d)
    if op == "extract":
        J = p["j"] if p["kind"] == "col" else p.get("J")
        return ref_extract(out, args[0], p["I"], J,
                           mask=mask, accum=accum, desc=d)
    if op == "assign":
        return ref_assign(out, args[0], p.get("I"), p.get("J"),
                          mask=mask, accum=accum, desc=d)
    if op == "subassign":
        return ref_subassign(out, args[0], p.get("I"), p.get("J"),
                             mask=mask, accum=accum, desc=d)
    if op == "kronecker":
        return ref_kronecker(out, args[0], args[1], plan.operator,
                             mask=mask, accum=accum, desc=d)
    raise NotImplementedError(op)  # pragma: no cover - TABLE1_OPS is closed


class ReferenceBackend(KernelBackend):
    """Spec-literal dense engine (the conformance oracle, promoted)."""

    name = "reference"
    fallback = None

    def _run(self, plan: OpPlan):
        if governor.ACTIVE:
            governor.poll()
        R = run_ref(
            plan,
            to_ref(plan.out),
            tuple(to_ref(a) for a in plan.args),
            to_ref(plan.mask),
        )
        if plan.op == "reduce_scalar":
            return R
        if isinstance(R, RefMatrix):
            return adopt_matrix(plan.out, R)
        return adopt_vector(plan.out, R)


for _op in TABLE1_OPS:
    setattr(ReferenceBackend, _op, ReferenceBackend._run)
del _op
