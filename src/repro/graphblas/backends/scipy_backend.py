"""scipy.sparse bridge backend for the arithmetic hot paths.

Serves mxm/mxv/vxm on the conventional PLUS_TIMES semiring and
eWiseAdd(PLUS)/eWiseMult(TIMES) on builtin numeric domains through
scipy's compiled CSR kernels; every other plan is declined via
``supports`` and falls back to the ``optimized`` engine (recorded as a
``backend.fallback`` telemetry decision).  When scipy is not installed
the backend declines everything — selection still works, it just always
falls back.

The structural subtlety: GraphBLAS results carry a *pattern* (an entry
exists wherever a structural contribution exists, even if its value is
numerically zero), while scipy prunes cancellation zeros produced by
``@``, ``+`` and ``.multiply``.  Each kernel therefore runs twice:

* a **pattern product** over int64 all-ones matrices — sums of positive
  counts cannot cancel, so its stored entries are exactly the GraphBLAS
  pattern;
* the **value product** over the real data, aligned onto the pattern
  coordinates with the sorted-coordinate matcher (positions scipy pruned
  are exact zeros by construction).

Results then funnel through the same accum-then-mask write step as every
other backend.
"""

from __future__ import annotations

import numpy as np

from .. import governor
from ..coords import match_coo
from ..mask import write_matrix, write_vector
from ..matrix import Matrix
from ..vector import Vector
from . import KernelBackend

try:
    import scipy.sparse as _sp
except ImportError:  # pragma: no cover - exercised on scipy-free installs
    _sp = None

_INDEX = np.int64


def _values_csr(A: Matrix, transposed: bool, np_dtype):
    rows, cols, vals = A.extract_tuples()
    if transposed:
        rows, cols = cols, rows
    shape = (A.ncols, A.nrows) if transposed else A.shape
    return _sp.csr_matrix(
        (vals.astype(np_dtype), (rows, cols)), shape=shape
    )


def _pattern_csr(A: Matrix, transposed: bool):
    rows, cols, _ = A.extract_tuples()
    if transposed:
        rows, cols = cols, rows
    shape = (A.ncols, A.nrows) if transposed else A.shape
    return _sp.csr_matrix(
        (np.ones(rows.size, dtype=_INDEX), (rows, cols)), shape=shape
    )


def _vec_col(u: Vector, np_dtype):
    idx, vals = u.extract_tuples()
    zeros = np.zeros(idx.size, dtype=_INDEX)
    return (
        _sp.csc_matrix((vals.astype(np_dtype), (idx, zeros)), shape=(u.size, 1)),
        _sp.csc_matrix((np.ones(idx.size, dtype=_INDEX), (idx, zeros)),
                       shape=(u.size, 1)),
    )


def _align_coo(P, V, out_type):
    """Pattern coords from P, values from V at matching coords (else 0)."""
    P, V = P.tocoo(), V.tocoo()
    tr = P.row.astype(_INDEX)
    tc = P.col.astype(_INDEX)
    tv = np.zeros(tr.size, dtype=out_type.np_dtype)
    ia, ib, _, _ = match_coo(V.row.astype(_INDEX), V.col.astype(_INDEX), tr, tc)
    tv[ib] = out_type.cast_array(V.data)[ia]
    return tr, tc, tv


def _is_plus_times(sr) -> bool:
    return sr.add.op.name == "PLUS" and sr.mult.name == "TIMES"


def _numeric(*dtypes) -> bool:
    return all(t.builtin and t.np_dtype != np.bool_ for t in dtypes)


class SciPyBackend(KernelBackend):
    """Partial engine: conventional arithmetic via scipy, rest falls back."""

    name = "scipy"
    fallback = "optimized"

    def supports(self, plan) -> bool:
        if _sp is None:
            return False
        if plan.op in ("mxm", "mxv", "vxm"):
            sr = plan.operator
            dt = [a.dtype for a in plan.args]
            return _is_plus_times(sr) and _numeric(plan.out_type, *dt)
        if plan.op in ("ewise_add", "ewise_mult"):
            want = "PLUS" if plan.op == "ewise_add" else "TIMES"
            dt = [a.dtype for a in plan.args]
            return plan.operator.name == want and _numeric(plan.out_type, *dt)
        return False

    # -- kernels -------------------------------------------------------------

    def mxm(self, plan):
        if governor.ACTIVE:
            governor.poll()
        A, B = plan.args
        d, out_type = plan.desc, plan.out_type
        V = _values_csr(A, d.transpose_a, out_type.np_dtype) @ _values_csr(
            B, d.transpose_b, out_type.np_dtype
        )
        P = _pattern_csr(A, d.transpose_a) @ _pattern_csr(B, d.transpose_b)
        tr, tc, tv = _align_coo(P, V, out_type)
        return write_matrix(
            plan.out, tr, tc, tv, mask=plan.mask, accum=plan.accum, desc=d
        )

    def _matvec(self, plan):
        p = plan.params
        A, u = plan.args if p["is_mxv"] else (plan.args[1], plan.args[0])
        out_type = plan.out_type
        As = _values_csr(A, p["transposed"], out_type.np_dtype)
        Ap = _pattern_csr(A, p["transposed"])
        uv, up = _vec_col(u, out_type.np_dtype)
        V = (As @ uv).tocoo()
        P = (Ap @ up).tocoo()
        ti = P.row.astype(_INDEX)
        tv = np.zeros(ti.size, dtype=out_type.np_dtype)
        ia, ib, _, _ = match_coo(
            V.row.astype(_INDEX), V.col.astype(_INDEX), ti,
            np.zeros(ti.size, dtype=_INDEX),
        )
        tv[ib] = out_type.cast_array(V.data)[ia]
        order = np.argsort(ti, kind="stable")
        return write_vector(
            plan.out, ti[order], tv[order],
            mask=plan.mask, accum=plan.accum, desc=plan.desc,
        )

    mxv = _matvec
    vxm = _matvec

    def _ewise(self, plan, combine):
        A, B = plan.args
        d, out_type = plan.desc, plan.out_type
        if plan.params["is_vector"]:
            av, ap = _vec_col(A, out_type.np_dtype)
            bv, bp = _vec_col(B, out_type.np_dtype)
            V, P = combine(av, bv).tocoo(), combine(ap, bp).tocoo()
            ti = P.row.astype(_INDEX)
            tv = np.zeros(ti.size, dtype=out_type.np_dtype)
            ia, ib, _, _ = match_coo(
                V.row.astype(_INDEX), V.col.astype(_INDEX), ti,
                np.zeros(ti.size, dtype=_INDEX),
            )
            tv[ib] = out_type.cast_array(V.data)[ia]
            order = np.argsort(ti, kind="stable")
            return write_vector(
                plan.out, ti[order], tv[order],
                mask=plan.mask, accum=plan.accum, desc=d,
            )
        V = combine(
            _values_csr(A, d.transpose_a, out_type.np_dtype),
            _values_csr(B, d.transpose_b, out_type.np_dtype),
        )
        P = combine(_pattern_csr(A, d.transpose_a), _pattern_csr(B, d.transpose_b))
        tr, tc, tv = _align_coo(P, V, out_type)
        return write_matrix(
            plan.out, tr, tc, tv, mask=plan.mask, accum=plan.accum, desc=d
        )

    def ewise_add(self, plan):
        return self._ewise(plan, lambda x, y: x + y)

    def ewise_mult(self, plan):
        return self._ewise(plan, lambda x, y: x.multiply(y))
