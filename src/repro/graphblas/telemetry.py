"""Kernel telemetry: burble diagnostics, per-op metrics, and trace export.

The paper's SuiteSparse and GraphBLAST sections rest on *quantitative*
engineering claims — O(e) hypersparse formats, zombie/pending-tuple
assembly cost, SpGEMM method selection, push/pull direction switching,
terminal-monoid early exit — yet an engine normally executes all of those
decisions invisibly.  This module, modeled on SuiteSparse's ``GxB_BURBLE``
and ``GxB_Global`` diagnostics, makes every one of them observable:

* **counters/timers** — each Table-I operation records calls, wall time,
  output nvals, flop estimates (mxm/mxv), and bytes moved (import/export
  and file I/O) into a per-thread :class:`Collector`;
* **decision events** — the engine reports *why* it chose what it chose:
  SpGEMM method (Gustavson/dot/heap), push vs pull with the frontier
  density behind the switch, early-exit dot-product terminations, format
  (CSR/CSC/hypersparse) selections, zombie/pending-tuple assemblies
  with counts, and kernel-backend routing (``backend.dispatch`` /
  ``backend.fallback`` per dispatched op plan, plus the ``differential``
  engine's verify/skip/divergence events);
* **spans** — LAGraph algorithms wrap themselves in named spans and emit
  per-iteration records (e.g. BFS frontier size per level);
* **sinks** — a human-readable burble stream, a structured
  :func:`snapshot` dict, and Chrome ``trace_event`` JSON
  (:meth:`Collector.chrome_trace`, exported by ``scripts/export_trace.py``
  and viewable in ``chrome://tracing`` / ``ui.perfetto.dev``).

Zero cost when disabled
-----------------------
Instrumented sites reuse the module-attribute fast path proven by
:mod:`repro.graphblas.faults` (~40 ns when disabled)::

    if telemetry.ENABLED:
        telemetry.decision("mxv.direction", direction="push", density=d)

With no collector attached the guard is one module-attribute read per
*operation* (never per element); ``benchmarks/bench_telemetry_overhead.py``
verifies the disabled Table-I workload sits within noise of the
uninstrumented baseline.

Typical use::

    from repro.graphblas import telemetry

    with telemetry.collect(burble=True) as col:
        bfs_level(0, graph)              # burble streams decisions live
    snap = col.snapshot()                # {"ops": {"mxv": {...}}, ...}
    col.write_chrome_trace("trace.json") # open in chrome://tracing

Telemetry is **thread-local**: each thread attaches its own collector and
records only its own work; ``ENABLED`` is a process-wide fast-path flag
that is true while *any* thread is collecting.

Observability fan-out
---------------------
:mod:`repro.obs` installs a process-wide :class:`~repro.obs.sink.
MetricsSink` via :func:`set_sink`; while one is installed, every record
flowing through the module-level functions is *also* folded into the
durable metrics registry (from every thread, collector or not), and
``ENABLED`` stays true so instrumented sites keep reporting.  The sink
sees the same stream a collector would — op timers, decisions, spans,
instants, and ring-buffer drops.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time

__all__ = [
    "ENABLED",
    "PLAN_EVENTS",
    "Collector",
    "OpStats",
    "enable",
    "disable",
    "collect",
    "active",
    "snapshot",
    "reset",
    "record_op",
    "tally",
    "decision",
    "instant",
    "span",
    "span_at",
    "instrumented",
    "chrome_trace_events",
    "chrome_trace_merged",
    "set_sink",
    "get_sink",
    "plan_capture",
]

# Process-wide kill switch: True while any thread has a collector attached
# OR a process-wide observability sink is installed.  Sites guard every
# telemetry call with ``if telemetry.ENABLED`` so the disabled path costs
# a single module-attribute read.
ENABLED = False

# True while per-plan ``plan.done`` dispatch events should be emitted:
# the backend dispatcher times each kernel and reports route/bytes only
# when observability or an EXPLAIN capture wants them, keeping plain
# collector-only telemetry streams unchanged.
PLAN_EVENTS = False

# The installed observability sink (repro.obs.sink.MetricsSink), or None.
_SINK = None
_capture_count = 0

# Keep event streams bounded: a runaway loop must not exhaust memory.
# Overflow is counted (Collector.dropped) and reported in the snapshot.
MAX_EVENTS = 200_000

_lock = threading.Lock()
_active_count = 0
_tls = threading.local()


def _collector() -> "Collector | None":
    return getattr(_tls, "collector", None)


class OpStats:
    """Accumulated metrics for one operation name.

    ``calls``/``seconds``/``out_nvals`` are filled by the per-operation
    timer; ``flops`` (mxm/mxv partial-product estimates) and
    ``bytes_moved`` (import/export and file I/O) are tallied by the
    kernels that know them.
    """

    __slots__ = ("calls", "seconds", "out_nvals", "flops", "bytes_moved")

    def __init__(self):
        self.calls = 0
        self.seconds = 0.0
        self.out_nvals = 0
        self.flops = 0
        self.bytes_moved = 0

    def as_dict(self) -> dict:
        return {
            "calls": self.calls,
            "seconds": self.seconds,
            "out_nvals": self.out_nvals,
            "flops": self.flops,
            "bytes_moved": self.bytes_moved,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OpStats({self.as_dict()})"


class Collector:
    """Per-thread telemetry sink: counters, event log, burble stream.

    Create through :func:`enable` or :func:`collect`; the module-level
    recording functions route to the calling thread's collector.
    """

    def __init__(self, burble: bool = False, stream=None, max_events: int = MAX_EVENTS):
        self.burble = bool(burble)
        self.stream = stream  # None = sys.stdout, resolved at write time
        self.max_events = int(max_events)
        self.t0 = time.perf_counter()
        self.ops: dict[str, OpStats] = {}
        self.events: list[dict] = []
        self.dropped = 0
        self.dropped_by_type: dict[str, int] = {}
        self._span_stack: list[dict] = []
        self._tid = threading.get_ident()

    # -- low-level event plumbing -----------------------------------------

    def _now_us(self) -> float:
        return (time.perf_counter() - self.t0) * 1e6

    def _push(self, ev: dict) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            kind = ev.get("type", "unknown")
            self.dropped_by_type[kind] = self.dropped_by_type.get(kind, 0) + 1
            if self.dropped == 1:
                # silent truncation reads as "nothing happened" — say it once
                self._burble(
                    f"event buffer full at {self.max_events}; further events "
                    "are dropped (counted in snapshot()['events_dropped'])"
                )
            if _SINK is not None:
                _SINK.dropped(kind)
            return
        self.events.append(ev)

    def _burble(self, line: str) -> None:
        if not self.burble:
            return
        import sys

        stream = self.stream if self.stream is not None else sys.stdout
        stream.write(f"burble: {line}\n")

    # -- recording ----------------------------------------------------------

    def record_op(self, name: str, seconds: float, out_nvals: int | None = None, ts_us: float | None = None) -> None:
        """One completed Table-I operation: wall time plus output size."""
        st = self.ops.get(name)
        if st is None:
            st = self.ops[name] = OpStats()
        st.calls += 1
        st.seconds += seconds
        if out_nvals is not None:
            st.out_nvals += int(out_nvals)
        dur_us = seconds * 1e6
        if ts_us is None:
            ts_us = self._now_us() - dur_us
        self._push(
            {
                "type": "op",
                "name": name,
                "ts": ts_us,
                "dur": dur_us,
                "args": {} if out_nvals is None else {"out_nvals": int(out_nvals)},
            }
        )
        nv = "" if out_nvals is None else f" nvals {int(out_nvals)}"
        self._burble(f"{seconds * 1e3:8.3f} ms  [{name}]{nv}")

    def tally(self, name: str, **fields) -> None:
        """Add numeric metrics (flops, bytes_moved, calls, ...) to an op."""
        st = self.ops.get(name)
        if st is None:
            st = self.ops[name] = OpStats()
        for key, value in fields.items():
            setattr(st, key, getattr(st, key) + int(value))

    def decision(self, kind: str, **detail) -> None:
        """Record one engine choice and the numbers that drove it."""
        self._push(
            {
                "type": "decision",
                "name": kind,
                "ts": self._now_us(),
                "args": detail,
            }
        )
        pretty = " ".join(f"{k}={_fmt(v)}" for k, v in detail.items())
        self._burble(f"[{kind}] {pretty}")

    def instant(self, name: str, **attrs) -> None:
        """A point-in-time record inside a span (e.g. one BFS level)."""
        self._push(
            {"type": "instant", "name": name, "ts": self._now_us(), "args": attrs}
        )
        pretty = " ".join(f"{k}={_fmt(v)}" for k, v in attrs.items())
        self._burble(f"  . {name}: {pretty}")

    def begin_span(self, name: str, **attrs) -> None:
        self._span_stack.append({"name": name, "ts": self._now_us(), "args": attrs})
        pretty = " ".join(f"{k}={_fmt(v)}" for k, v in attrs.items())
        self._burble(f"[{name}] begin {pretty}".rstrip())

    def span_at(self, name: str, start_s: float, end_s: float, **attrs) -> None:
        """Record a completed span from absolute ``perf_counter`` stamps.

        Unlike :meth:`begin_span`/:meth:`end_span` (which are wall-now
        based and strictly nested), this represents work that overlapped
        other work — e.g. the engine's parallel row blocks, measured on
        worker threads and reported here by the coordinating thread.
        """
        dur = (end_s - start_s) * 1e6
        self._push(
            {
                "type": "span",
                "name": name,
                "ts": (start_s - self.t0) * 1e6,
                "dur": dur,
                "args": attrs,
            }
        )
        pretty = " ".join(f"{k}={_fmt(v)}" for k, v in attrs.items())
        self._burble(f"[{name}] {dur / 1e3:.3f} ms {pretty}".rstrip())

    def end_span(self) -> None:
        if not self._span_stack:
            return
        rec = self._span_stack.pop()
        dur = self._now_us() - rec["ts"]
        self._push(
            {
                "type": "span",
                "name": rec["name"],
                "ts": rec["ts"],
                "dur": dur,
                "args": rec["args"],
            }
        )
        self._burble(f"[{rec['name']}] end ({dur / 1e3:.3f} ms)")

    # -- sinks ---------------------------------------------------------------

    def snapshot(self, include_events: bool = False) -> dict:
        """Structured, JSON-serializable view of everything collected."""
        decisions: dict[str, int] = {}
        spans: dict[str, dict] = {}
        for ev in self.events:
            if ev["type"] == "decision":
                decisions[ev["name"]] = decisions.get(ev["name"], 0) + 1
            elif ev["type"] == "span":
                agg = spans.setdefault(ev["name"], {"count": 0, "seconds": 0.0})
                agg["count"] += 1
                agg["seconds"] += ev["dur"] / 1e6
        out = {
            "ops": {name: st.as_dict() for name, st in sorted(self.ops.items())},
            "decisions": decisions,
            "spans": spans,
            "events_total": len(self.events),
            "events_dropped": self.dropped,
            "events_dropped_by_type": dict(self.dropped_by_type),
            "elapsed_seconds": time.perf_counter() - self.t0,
            "tid": self._tid,
        }
        gov = {
            name.split(".", 1)[1]: count
            for name, count in decisions.items()
            if name.startswith("governor.")
        }
        if gov:
            # disk traffic of the spill pools, tallied next to the
            # decision counts they explain
            for direction in ("spill", "reload"):
                st = self.ops.get(f"governor.{direction}")
                if st is not None:
                    gov[f"{direction}_bytes"] = st.bytes_moved
            out["governor"] = gov
        if include_events:
            out["events"] = list(self.events)
            # absolute perf_counter origin, so traces from several
            # threads' collectors can be aligned on one timeline
            out["t0_perf"] = self.t0
        return out

    def chrome_trace(self) -> dict:
        """The collected events in Chrome ``trace_event`` JSON format.

        Load the written file in ``chrome://tracing`` or
        ``ui.perfetto.dev``: ops and spans render as duration bars,
        decisions and per-iteration records as instant markers.
        """
        return {
            "traceEvents": chrome_trace_events(self.events, tid=self._tid),
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.graphblas.telemetry"},
        }

    def write_chrome_trace(self, path) -> None:
        """Serialize :meth:`chrome_trace` to ``path``."""
        with open(path, "w", encoding="utf-8") as f:
            json.dump(self.chrome_trace(), f)

    def reset(self) -> None:
        """Clear counters and events; keep the collector attached."""
        self.ops.clear()
        self.events.clear()
        self.dropped = 0
        self.dropped_by_type.clear()
        self._span_stack.clear()
        self.t0 = time.perf_counter()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Collector(ops={len(self.ops)}, events={len(self.events)}, "
            f"burble={self.burble})"
        )


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.6g}"
    return str(v)


def chrome_trace_events(events: list[dict], tid: int = 0) -> list[dict]:
    """Convert raw telemetry events to Chrome ``trace_event`` records.

    ``op`` and ``span`` events become complete (``"ph": "X"``) duration
    events; ``decision`` and ``instant`` events become thread-scoped
    instant (``"ph": "i"``) events.
    """
    out = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "ts": 0,
            "args": {"name": "repro GraphBLAS engine"},
        }
    ]
    for ev in events:
        base = {"name": ev["name"], "pid": 0, "tid": tid, "ts": ev["ts"]}
        if ev["type"] in ("op", "span"):
            base["ph"] = "X"
            base["dur"] = ev.get("dur", 0.0)
            base["cat"] = ev["type"]
        else:
            base["ph"] = "i"
            base["s"] = "t"
            base["cat"] = ev["type"]
        if ev.get("args"):
            base["args"] = ev["args"]
        out.append(base)
    return out


def chrome_trace_merged(sources) -> dict:
    """Merge telemetry from several threads into one Chrome trace.

    ``sources`` is an iterable of per-thread captures: live
    :class:`Collector` objects, event-bearing snapshots
    (``snapshot(include_events=True)``), or ``(tid, events)`` pairs.
    Each source keeps its own ``tid`` (``chrome://tracing`` renders one
    row per thread, with ``thread_name`` metadata) instead of flattening
    every thread onto one track, and sources carrying their
    ``perf_counter`` origin (``Collector.t0`` / snapshot ``t0_perf``)
    are shifted onto a single shared timeline.
    """
    resolved: list[tuple[int, float | None, list[dict]]] = []
    for i, src in enumerate(sources):
        if isinstance(src, Collector):
            resolved.append((src._tid, src.t0, list(src.events)))
        elif isinstance(src, dict):
            resolved.append(
                (int(src.get("tid", i)), src.get("t0_perf"),
                 list(src.get("events", [])))
            )
        else:
            tid, events = src
            resolved.append((int(tid), None, list(events)))

    origins = [t0 for _, t0, _ in resolved if t0 is not None]
    base_t0 = min(origins) if origins else None
    merged: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "ts": 0,
            "args": {"name": "repro GraphBLAS engine"},
        }
    ]
    for tid, t0, events in resolved:
        shift_us = (t0 - base_t0) * 1e6 if (t0 is not None and base_t0 is not None) else 0.0
        merged.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "ts": 0,
                "args": {"name": f"thread-{tid}"},
            }
        )
        for ev in chrome_trace_events(events, tid=tid)[1:]:
            if shift_us:
                ev = dict(ev, ts=ev["ts"] + shift_us)
            merged.append(ev)
    return {
        "traceEvents": merged,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.graphblas.telemetry"},
    }


# -- module-level control ------------------------------------------------------

def _recompute_flags() -> None:
    """Refresh the fast-path flags; callers hold ``_lock``."""
    global ENABLED, PLAN_EVENTS
    ENABLED = _active_count > 0 or _SINK is not None
    PLAN_EVENTS = _SINK is not None or _capture_count > 0


def set_sink(sink) -> None:
    """Install (or with ``None`` remove) the process-wide metrics sink.

    Called by :func:`repro.obs.enable` / :func:`repro.obs.disable`.
    While a sink is installed every thread's telemetry records are folded
    into it, whether or not the thread has a collector attached.
    """
    global _SINK
    with _lock:
        _SINK = sink
        _recompute_flags()


def get_sink():
    """The installed observability sink, or None."""
    return _SINK


@contextlib.contextmanager
def plan_capture():
    """Force per-plan ``plan.done`` dispatch events for the duration.

    Used by :func:`repro.obs.explain` so a capture works even when the
    process-wide observability sink is not installed.
    """
    global _capture_count
    with _lock:
        _capture_count += 1
        _recompute_flags()
    try:
        yield
    finally:
        with _lock:
            _capture_count -= 1
            _recompute_flags()

def enable(burble: bool = False, stream=None, max_events: int = MAX_EVENTS) -> Collector:
    """Attach a collector to the current thread (idempotent) and return it.

    If the thread already has a collector, its ``burble``/``stream``
    settings are updated and the same collector is returned.
    """
    global ENABLED, _active_count
    col = _collector()
    if col is not None:
        col.burble = bool(burble)
        if stream is not None:
            col.stream = stream
        return col
    col = Collector(burble=burble, stream=stream, max_events=max_events)
    _tls.collector = col
    with _lock:
        _active_count += 1
        _recompute_flags()
    return col


def disable() -> Collector | None:
    """Detach (and return) the current thread's collector, if any."""
    global ENABLED, _active_count
    col = _collector()
    if col is None:
        return None
    _tls.collector = None
    with _lock:
        _active_count -= 1
        _recompute_flags()
    return col


@contextlib.contextmanager
def collect(burble: bool = False, stream=None, max_events: int = MAX_EVENTS):
    """Attach a collector for the duration of the ``with`` block.

    Yields the :class:`Collector`; on exit the collector is detached but
    still readable (``snapshot()``, ``chrome_trace()``).  Nested use
    reuses the outer collector and leaves it attached.
    """
    outer = _collector()
    col = enable(burble=burble, stream=stream, max_events=max_events)
    try:
        yield col
    finally:
        if outer is None:
            disable()


def active() -> Collector | None:
    """The current thread's collector (None when telemetry is off)."""
    return _collector()


def snapshot(include_events: bool = False) -> dict:
    """Snapshot of the current thread's collector ({} when disabled)."""
    col = _collector()
    return {} if col is None else col.snapshot(include_events=include_events)


def reset() -> None:
    """Reset the current thread's collector, if any."""
    col = _collector()
    if col is not None:
        col.reset()


# -- module-level recording ----------------------------------------------------
# No-ops when the thread has no collector AND no observability sink is
# installed; otherwise each record goes to whichever consumers exist.

def record_op(name: str, seconds: float, out_nvals: int | None = None) -> None:
    """Record one completed operation (guard with ``telemetry.ENABLED``)."""
    col = _collector()
    if col is not None:
        col.record_op(name, seconds, out_nvals)
    if _SINK is not None:
        _SINK.record_op(name, seconds, out_nvals)


def tally(name: str, **fields) -> None:
    """Add metric increments (flops=, bytes_moved=, calls=) to an op."""
    col = _collector()
    if col is not None:
        col.tally(name, **fields)
    if _SINK is not None:
        _SINK.tally(name, fields)


def decision(kind: str, **detail) -> None:
    """Record an engine decision event with its driving numbers."""
    col = _collector()
    if col is not None:
        col.decision(kind, **detail)
    if _SINK is not None:
        _SINK.decision(kind, detail)


def instant(name: str, **attrs) -> None:
    """Record a per-iteration instant record (e.g. a BFS level)."""
    col = _collector()
    if col is not None:
        col.instant(name, **attrs)
    if _SINK is not None:
        _SINK.instant(name, attrs)


def span_at(name: str, start_s: float, end_s: float, **attrs) -> None:
    """Record a completed, possibly-overlapping span from absolute stamps."""
    col = _collector()
    if col is not None:
        col.span_at(name, start_s, end_s, **attrs)
    if _SINK is not None:
        _SINK.span(name, max(end_s - start_s, 0.0))


@contextlib.contextmanager
def span(name: str, **attrs):
    """Wrap an algorithm phase in a named span (no-op when disabled)."""
    if not ENABLED:
        yield
        return
    col = _collector()
    sink = _SINK
    if col is None and sink is None:
        yield
        return
    t0 = time.perf_counter()
    if col is not None:
        col.begin_span(name, **attrs)
    try:
        yield
    finally:
        if col is not None:
            col.end_span()
        if sink is not None:
            sink.span(name, time.perf_counter() - t0)


def _out_nvals(obj) -> int | None:
    """Cheap output-size probe (duck-typed to avoid circular imports)."""
    try:
        store = getattr(obj, "_store", None)
        if store is not None:
            return int(store.nvals)
        idx = getattr(obj, "indices", None)
        if idx is not None:
            return int(idx.size)
    except (AttributeError, TypeError):
        return None
    return None


def instrumented(op_name: str):
    """Decorator: time a Table-I operation and record its output nvals.

    The disabled path is one module-attribute read plus the wrapper call —
    per operation, never per element.
    """

    def deco(fn):
        import functools

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not ENABLED:
                return fn(*args, **kwargs)
            col = _collector()
            sink = _SINK
            if col is None and sink is None:
                return fn(*args, **kwargs)
            t0 = time.perf_counter()
            out = fn(*args, **kwargs)
            seconds = time.perf_counter() - t0
            nvals = _out_nvals(out)
            if col is not None:
                col.record_op(op_name, seconds, nvals)
            if sink is not None:
                sink.record_op(op_name, seconds, nvals)
            return out

        return wrapper

    return deco
