"""GraphBLAS operators: unary, binary, and index-unary.

Each operator is *polymorphic* (like the mathematical spec): it can be
applied in any built-in domain.  The C API's typed variants
(``GrB_PLUS_INT32``) correspond to applying the polymorphic op to inputs of
that domain.

Every built-in operator carries two implementations:

* ``ufunc`` — a vectorized NumPy callable used by all sparse kernels; and
* ``fn`` — a scalar Python function used by the dense reference
  implementation (:mod:`repro.graphblas.reference`) and by user-defined-type
  fallbacks.

This dual-implementation structure deliberately mirrors the paper's
description of SuiteSparse testing (section II.A): the fast path and the
spec-literal path are written independently and compared by the test suite.

*Positional* binary operators (``FIRSTI``/``SECONDJ``...) are the
SuiteSparse extension needed for parent BFS; they do not look at values at
all, only coordinates, and the matrix kernels special-case them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .errors import DomainMismatch, InvalidValue
from .types import BOOL, FP64, INT64, Type, unify_types

__all__ = [
    "UnaryOp",
    "BinaryOp",
    "IndexUnaryOp",
    "unary",
    "binary",
    "indexunary",
    "UNARY_OPS",
    "BINARY_OPS",
    "INDEXUNARY_OPS",
    "C_API_BINARY_OPS",
    "SUITESPARSE_BINARY_OPS",
    "COMPARISON_OPS",
    "bool_equivalent",
]


def _safe_div(x, y):
    """C-style division: integer div by zero yields 0, float yields inf/nan."""
    x = np.asarray(x)
    y = np.asarray(y)
    if x.dtype.kind == "f" or y.dtype.kind == "f":
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.divide(x, y)
    out_dtype = np.promote_types(x.dtype, y.dtype)
    zero = y == 0
    if not np.any(zero):
        return np.floor_divide(x, y, dtype=out_dtype, casting="unsafe")
    safe_y = np.where(zero, 1, y)
    res = np.floor_divide(x, safe_y, dtype=out_dtype, casting="unsafe")
    return np.where(zero, out_dtype.type(0), res)


def _safe_minv(x):
    x = np.asarray(x)
    if x.dtype.kind == "f":
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.reciprocal(x)
    if x.dtype.kind == "b":
        return np.ones_like(x)
    return _safe_div(np.ones_like(x), x)


@dataclass(frozen=True)
class UnaryOp:
    """``GrB_UnaryOp``: z = f(x)."""

    name: str
    fn: Callable = field(compare=False)
    ufunc: Callable = field(compare=False)
    ztype: Type | None = field(default=None, compare=False)  # None: same as input
    builtin: bool = field(default=True, compare=False)

    def out_type(self, xtype: Type) -> Type:
        if self.ztype is not None:
            return self.ztype
        if self.name in ("SQRT", "EXP", "LOG") and not xtype.is_float:
            return FP64
        return xtype

    def apply(self, x: np.ndarray, out_type: Type | None = None) -> np.ndarray:
        """Vectorized application; result cast into ``out_type`` if given."""
        z = self.ufunc(np.asarray(x))
        if out_type is not None:
            z = out_type.cast_array(z)
        return z

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UnaryOp({self.name})"


@dataclass(frozen=True)
class BinaryOp:
    """``GrB_BinaryOp``: z = f(x, y)."""

    name: str
    fn: Callable = field(compare=False)
    ufunc: Callable = field(compare=False)
    ztype: Type | None = field(default=None, compare=False)  # None: domain of inputs
    commutative: bool = field(default=False, compare=False)
    positional: str | None = field(default=None, compare=False)
    builtin: bool = field(default=True, compare=False)

    def out_type(self, xtype: Type, ytype: Type) -> Type:
        if self.ztype is not None:
            return self.ztype
        if self.positional is not None:
            return INT64
        if self.name == "FIRST":
            return xtype
        if self.name == "SECOND":
            return ytype
        return unify_types(xtype, ytype)

    def apply(
        self,
        x: np.ndarray,
        y: np.ndarray,
        out_type: Type | None = None,
    ) -> np.ndarray:
        """Vectorized application; result cast into ``out_type`` if given."""
        if self.positional is not None:
            raise InvalidValue(
                f"positional op {self.name} cannot be applied to values"
            )
        z = self.ufunc(np.asarray(x), np.asarray(y))
        if out_type is not None:
            z = out_type.cast_array(z)
        return z

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BinaryOp({self.name})"


@dataclass(frozen=True)
class IndexUnaryOp:
    """``GrB_IndexUnaryOp``: z = f(a_ij, i, j, thunk).

    Used by ``select`` (structural filtering: TRIL, VALUEGT, ...) and by
    ``apply`` with index arguments (ROWINDEX, ...).
    """

    name: str
    fn: Callable = field(compare=False)  # (value, i, j, thunk) -> scalar
    ufunc: Callable = field(compare=False)  # (vals, rows, cols, thunk) -> array
    ztype: Type | None = field(default=None, compare=False)
    builtin: bool = field(default=True, compare=False)

    def out_type(self, xtype: Type) -> Type:
        return self.ztype if self.ztype is not None else xtype

    def apply(self, vals, rows, cols, thunk) -> np.ndarray:
        return self.ufunc(np.asarray(vals), np.asarray(rows), np.asarray(cols), thunk)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IndexUnaryOp({self.name})"


# --------------------------------------------------------------------------
# Built-in unary operators
# --------------------------------------------------------------------------

def _np_identity(x):
    return np.asarray(x).copy()


UNARY_OPS: dict[str, UnaryOp] = {}


def _def_unary(name, fn, ufunc, ztype=None):
    op = UnaryOp(name, fn, ufunc, ztype=ztype)
    UNARY_OPS[name] = op
    return op


IDENTITY = _def_unary("IDENTITY", lambda x: x, _np_identity)
AINV = _def_unary("AINV", lambda x: -x, lambda x: -np.asarray(x))
MINV = _def_unary("MINV", lambda x: 1 / x if x else 0, _safe_minv)
LNOT = _def_unary("LNOT", lambda x: not x, lambda x: ~np.asarray(x, dtype=bool), ztype=BOOL)
ONE = _def_unary("ONE", lambda x: 1, lambda x: np.ones_like(np.asarray(x)))
ABS = _def_unary("ABS", abs, lambda x: np.abs(np.asarray(x)))


def _float_unary(ufunc):
    def wrapped(x):
        x = np.asarray(x)
        if x.dtype.kind != "f":
            x = x.astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            return ufunc(x)

    return wrapped


SQRT = _def_unary("SQRT", lambda x: float(np.sqrt(x)), _float_unary(np.sqrt))
EXP = _def_unary("EXP", lambda x: float(np.exp(x)), _float_unary(np.exp))
LOG = _def_unary("LOG", lambda x: float(np.log(x)), _float_unary(np.log))


# --------------------------------------------------------------------------
# Built-in binary operators
# --------------------------------------------------------------------------

BINARY_OPS: dict[str, BinaryOp] = {}


def _def_binary(name, fn, ufunc, ztype=None, commutative=False, positional=None):
    op = BinaryOp(
        name,
        fn,
        ufunc,
        ztype=ztype,
        commutative=commutative,
        positional=positional,
    )
    BINARY_OPS[name] = op
    return op


def _np_first(x, y):
    return np.asarray(x).copy()


def _np_second(x, y):
    return np.asarray(y).copy()


def _np_oneb(x, y):
    return np.ones_like(np.asarray(x))


def _is_bool_pair(x, y) -> bool:
    return np.asarray(x).dtype == np.bool_ and np.asarray(y).dtype == np.bool_


def _bool_aware_ufunc(on_bool, general):
    """Arithmetic ops follow SuiteSparse's Boolean conventions on BOOL
    inputs (PLUS = OR, MINUS = XOR, TIMES = AND, DIV = FIRST, ...)."""

    def wrapped(x, y):
        if _is_bool_pair(x, y):
            return on_bool(np.asarray(x), np.asarray(y))
        return general(x, y)

    return wrapped


def _bool_aware_fn(on_bool, general):
    def wrapped(x, y):
        if isinstance(x, (bool, np.bool_)) and isinstance(y, (bool, np.bool_)):
            return on_bool(x, y)
        return general(x, y)

    return wrapped


FIRST = _def_binary("FIRST", lambda x, y: x, _np_first)
SECOND = _def_binary("SECOND", lambda x, y: y, _np_second)
ONEB = _def_binary("ONEB", lambda x, y: 1, _np_oneb, commutative=True)
PAIR = ONEB  # SuiteSparse's original name for ONEB
BINARY_OPS["PAIR"] = ONEB
MIN = _def_binary(
    "MIN",
    _bool_aware_fn(lambda x, y: bool(x) and bool(y), min),
    np.minimum,
    commutative=True,
)
MAX = _def_binary(
    "MAX",
    _bool_aware_fn(lambda x, y: bool(x) or bool(y), max),
    np.maximum,
    commutative=True,
)
PLUS = _def_binary(
    "PLUS",
    _bool_aware_fn(lambda x, y: bool(x) or bool(y), lambda x, y: x + y),
    np.add,  # np.add on booleans is already logical OR
    commutative=True,
)
MINUS = _def_binary(
    "MINUS",
    _bool_aware_fn(lambda x, y: bool(x) != bool(y), lambda x, y: x - y),
    _bool_aware_ufunc(np.logical_xor, np.subtract),
)
RMINUS = _def_binary(
    "RMINUS",
    _bool_aware_fn(lambda x, y: bool(x) != bool(y), lambda x, y: y - x),
    _bool_aware_ufunc(np.logical_xor, lambda x, y: np.subtract(y, x)),
)
TIMES = _def_binary(
    "TIMES",
    _bool_aware_fn(lambda x, y: bool(x) and bool(y), lambda x, y: x * y),
    np.multiply,  # np.multiply on booleans is already logical AND
    commutative=True,
)
DIV = _def_binary(
    "DIV",
    _bool_aware_fn(lambda x, y: x, lambda x, y: x / y if y else 0),
    _bool_aware_ufunc(lambda x, y: x.copy(), _safe_div),
)
RDIV = _def_binary(
    "RDIV",
    _bool_aware_fn(lambda x, y: y, lambda x, y: y / x if x else 0),
    _bool_aware_ufunc(lambda x, y: y.copy(), lambda x, y: _safe_div(y, x)),
)
POW = _def_binary(
    "POW",
    lambda x, y: x**y,
    lambda x, y: np.power(np.asarray(x, dtype=np.float64), y)
    if np.asarray(x).dtype.kind != "f"
    else np.power(x, y),
)

# Comparison ops: TxT -> BOOL
EQ = _def_binary("EQ", lambda x, y: x == y, np.equal, ztype=BOOL, commutative=True)
NE = _def_binary("NE", lambda x, y: x != y, np.not_equal, ztype=BOOL, commutative=True)
GT = _def_binary("GT", lambda x, y: x > y, np.greater, ztype=BOOL)
LT = _def_binary("LT", lambda x, y: x < y, np.less, ztype=BOOL)
GE = _def_binary("GE", lambda x, y: x >= y, np.greater_equal, ztype=BOOL)
LE = _def_binary("LE", lambda x, y: x <= y, np.less_equal, ztype=BOOL)

# "IS" ops: like comparisons but TxT -> T (SuiteSparse extension)
ISEQ = _def_binary("ISEQ", lambda x, y: type(x)(x == y), lambda x, y: np.equal(x, y), commutative=True)
ISNE = _def_binary("ISNE", lambda x, y: type(x)(x != y), lambda x, y: np.not_equal(x, y), commutative=True)
ISGT = _def_binary("ISGT", lambda x, y: type(x)(x > y), lambda x, y: np.greater(x, y))
ISLT = _def_binary("ISLT", lambda x, y: type(x)(x < y), lambda x, y: np.less(x, y))
ISGE = _def_binary("ISGE", lambda x, y: type(x)(x >= y), lambda x, y: np.greater_equal(x, y))
ISLE = _def_binary("ISLE", lambda x, y: type(x)(x <= y), lambda x, y: np.less_equal(x, y))

# Logical ops.  In the C API these are BOOL-only; SuiteSparse extends them to
# all types by treating nonzero as true (and returning 1/0 in the domain).


def _as_bool(x):
    x = np.asarray(x)
    return x if x.dtype == np.bool_ else x != 0


LOR = _def_binary(
    "LOR",
    lambda x, y: bool(x) or bool(y),
    lambda x, y: np.logical_or(_as_bool(x), _as_bool(y)),
    commutative=True,
)
LAND = _def_binary(
    "LAND",
    lambda x, y: bool(x) and bool(y),
    lambda x, y: np.logical_and(_as_bool(x), _as_bool(y)),
    commutative=True,
)
LXOR = _def_binary(
    "LXOR",
    lambda x, y: bool(x) != bool(y),
    lambda x, y: np.logical_xor(_as_bool(x), _as_bool(y)),
    commutative=True,
)
LXNOR = _def_binary(
    "LXNOR",
    lambda x, y: bool(x) == bool(y),
    lambda x, y: ~np.logical_xor(_as_bool(x), _as_bool(y)),
    commutative=True,
)

# "ANY" — pick either input (SuiteSparse: enables fastest-possible reductions)
ANY = _def_binary("ANY", lambda x, y: y, _np_second, commutative=True)

# Positional ops (SuiteSparse extension; needed e.g. for parent BFS).
# z = f(i, j) where (i, k) indexes A's entry and (k, j) indexes B's in mxm.
FIRSTI = _def_binary("FIRSTI", None, None, positional="firsti")
FIRSTI1 = _def_binary("FIRSTI1", None, None, positional="firsti1")
FIRSTJ = _def_binary("FIRSTJ", None, None, positional="firstj")
SECONDI = _def_binary("SECONDI", None, None, positional="secondi")
SECONDJ = _def_binary("SECONDJ", None, None, positional="secondj")
SECONDJ1 = _def_binary("SECONDJ1", None, None, positional="secondj1")


# --------------------------------------------------------------------------
# Built-in index-unary operators
# --------------------------------------------------------------------------

INDEXUNARY_OPS: dict[str, IndexUnaryOp] = {}


def _def_iuop(name, fn, ufunc, ztype=None):
    op = IndexUnaryOp(name, fn, ufunc, ztype=ztype)
    INDEXUNARY_OPS[name] = op
    return op


ROWINDEX = _def_iuop(
    "ROWINDEX",
    lambda v, i, j, t: i + t,
    lambda v, i, j, t: i + t,
    ztype=INT64,
)
COLINDEX = _def_iuop(
    "COLINDEX",
    lambda v, i, j, t: j + t,
    lambda v, i, j, t: j + t,
    ztype=INT64,
)
DIAGINDEX = _def_iuop(
    "DIAGINDEX",
    lambda v, i, j, t: j - i + t,
    lambda v, i, j, t: j - i + t,
    ztype=INT64,
)
TRIL = _def_iuop(
    "TRIL", lambda v, i, j, t: j <= i + t, lambda v, i, j, t: j <= i + t, ztype=BOOL
)
TRIU = _def_iuop(
    "TRIU", lambda v, i, j, t: j >= i + t, lambda v, i, j, t: j >= i + t, ztype=BOOL
)
DIAG = _def_iuop(
    "DIAG", lambda v, i, j, t: j == i + t, lambda v, i, j, t: j == i + t, ztype=BOOL
)
OFFDIAG = _def_iuop(
    "OFFDIAG", lambda v, i, j, t: j != i + t, lambda v, i, j, t: j != i + t, ztype=BOOL
)
ROWLE = _def_iuop(
    "ROWLE", lambda v, i, j, t: i <= t, lambda v, i, j, t: i <= t, ztype=BOOL
)
ROWGT = _def_iuop(
    "ROWGT", lambda v, i, j, t: i > t, lambda v, i, j, t: i > t, ztype=BOOL
)
COLLE = _def_iuop(
    "COLLE", lambda v, i, j, t: j <= t, lambda v, i, j, t: j <= t, ztype=BOOL
)
COLGT = _def_iuop(
    "COLGT", lambda v, i, j, t: j > t, lambda v, i, j, t: j > t, ztype=BOOL
)
VALUEEQ = _def_iuop(
    "VALUEEQ", lambda v, i, j, t: v == t, lambda v, i, j, t: v == t, ztype=BOOL
)
VALUENE = _def_iuop(
    "VALUENE", lambda v, i, j, t: v != t, lambda v, i, j, t: v != t, ztype=BOOL
)
VALUELT = _def_iuop(
    "VALUELT", lambda v, i, j, t: v < t, lambda v, i, j, t: v < t, ztype=BOOL
)
VALUELE = _def_iuop(
    "VALUELE", lambda v, i, j, t: v <= t, lambda v, i, j, t: v <= t, ztype=BOOL
)
VALUEGT = _def_iuop(
    "VALUEGT", lambda v, i, j, t: v > t, lambda v, i, j, t: v > t, ztype=BOOL
)
VALUEGE = _def_iuop(
    "VALUEGE", lambda v, i, j, t: v >= t, lambda v, i, j, t: v >= t, ztype=BOOL
)


# --------------------------------------------------------------------------
# Lookup helpers
# --------------------------------------------------------------------------

def unary(spec) -> UnaryOp:
    """Resolve a :class:`UnaryOp` from an op or (case-insensitive) name."""
    if isinstance(spec, UnaryOp):
        return spec
    try:
        return UNARY_OPS[str(spec).upper()]
    except KeyError:
        raise InvalidValue(f"unknown unary op {spec!r}") from None


def binary(spec) -> BinaryOp:
    """Resolve a :class:`BinaryOp` from an op or (case-insensitive) name."""
    if isinstance(spec, BinaryOp):
        return spec
    try:
        return BINARY_OPS[str(spec).upper()]
    except KeyError:
        raise InvalidValue(f"unknown binary op {spec!r}") from None


def indexunary(spec) -> IndexUnaryOp:
    """Resolve an :class:`IndexUnaryOp` from an op or name."""
    if isinstance(spec, IndexUnaryOp):
        return spec
    try:
        return INDEXUNARY_OPS[str(spec).upper()]
    except KeyError:
        raise InvalidValue(f"unknown index-unary op {spec!r}") from None


# Operator families used by the semiring census (bench E6).
#
# The GraphBLAS C API defines logical ops for BOOL only and has no "IS" ops;
# SuiteSparse extends logical ops to all domains and adds ISEQ..ISLE.  These
# two families reproduce the paper's "600" and "960" semiring counts.
C_API_BINARY_OPS: tuple[str, ...] = (
    "FIRST",
    "SECOND",
    "MIN",
    "MAX",
    "PLUS",
    "MINUS",
    "TIMES",
    "DIV",
)
SUITESPARSE_BINARY_OPS: tuple[str, ...] = C_API_BINARY_OPS + (
    "ISEQ",
    "ISNE",
    "ISGT",
    "ISLT",
    "ISGE",
    "ISLE",
    "LOR",
    "LAND",
    "LXOR",
)
COMPARISON_OPS: tuple[str, ...] = ("EQ", "NE", "GT", "LT", "GE", "LE")

# Canonical representative of each binary op when restricted to BOOL.
# E.g. MIN == LAND == TIMES on booleans.  Used to count *unique* semirings.
_BOOL_EQUIV = {
    "FIRST": "FIRST",
    "DIV": "FIRST",
    "SECOND": "SECOND",
    "ANY": "SECOND",
    "RDIV": "SECOND",
    "MIN": "LAND",
    "TIMES": "LAND",
    "LAND": "LAND",
    "ISLE": "LAND",  # on bool: x<=y is implication, not AND -> see below
    "MAX": "LOR",
    "PLUS": "LOR",
    "LOR": "LOR",
    "MINUS": "LXOR",
    "RMINUS": "LXOR",
    "LXOR": "LXOR",
    "NE": "LXOR",
    "ISNE": "LXOR",
    "EQ": "EQ",
    "ISEQ": "EQ",
    "LXNOR": "EQ",
    "GT": "GT",
    "ISGT": "GT",
    "LT": "LT",
    "ISLT": "LT",
    "GE": "GE",
    "ISGE": "GE",
    "LE": "LE",
    "ONEB": "ONEB",
    "PAIR": "ONEB",
    "POW": "GE",  # on bool: x**y == (x >= y) ... == !y || x
}
# Correction: on BOOL, x <= y is "implies" (== GE with args swapped), and
# x >= y is "is implied".  ISLE therefore matches LE, not LAND.
_BOOL_EQUIV["ISLE"] = "LE"
_BOOL_EQUIV["ISGE"] = "GE"


def bool_equivalent(name: str) -> str:
    """Canonical name of ``name`` when its domain is restricted to BOOL."""
    try:
        return _BOOL_EQUIV[name.upper()]
    except KeyError:
        raise DomainMismatch(f"no boolean restriction known for {name!r}") from None
