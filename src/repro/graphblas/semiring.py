"""GraphBLAS semirings and the built-in semiring census.

A semiring pairs an *additive* monoid with a *multiplicative* binary op.
``mxm``/``mxv``/``vxm`` are defined over a semiring: C = A (+).(x) B.

The paper (section II.A) reports that SuiteSparse's code generator expands a
handful of kernel templates into **960 unique built-in semirings**, of which
**600** can be built from the pure GraphBLAS C API's types and operators.
:func:`enumerate_builtin_semirings` reproduces both counts from first
principles:

* *SuiteSparse family* (960): 17 multiply ops {FIRST, SECOND, MIN, MAX,
  PLUS, MINUS, TIMES, DIV, ISEQ, ISNE, ISGT, ISLT, ISGE, ISLE, LOR, LAND,
  LXOR} x 4 arithmetic monoids {MIN, MAX, PLUS, TIMES} x 10 non-Boolean
  domains = **680**; 6 comparison ops {EQ, NE, GT, LT, GE, LE} x 4 Boolean
  monoids {LOR, LAND, LXOR, EQ} x 10 non-Boolean domains = **240**; and the
  purely Boolean semirings, where the 17+6 ops collapse to **10** distinct
  Boolean functions {FIRST, SECOND, LOR, LAND, LXOR, EQ, GT, LT, GE, LE},
  x 4 Boolean monoids = **40**.  680 + 240 + 40 = 960.
* *C API family* (600): the C API defines logical ops for BOOL only and has
  no IS* ops, leaving 8 arithmetic multiply ops: 8 x 4 x 10 = **320**;
  comparisons contribute the same **240**; Boolean ops again collapse to 10
  distinct functions for **40**.  320 + 240 + 40 = 600.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .errors import InvalidValue
from .monoid import ARITH_MONOIDS, BOOL_MONOIDS, Monoid, monoid
from .ops import (
    BinaryOp,
    C_API_BINARY_OPS,
    COMPARISON_OPS,
    SUITESPARSE_BINARY_OPS,
    binary,
    bool_equivalent,
)
from .types import BOOL, BUILTIN_TYPES, Type

__all__ = [
    "Semiring",
    "semiring",
    "SEMIRINGS",
    "enumerate_builtin_semirings",
    "semiring_census",
]


@dataclass(frozen=True)
class Semiring:
    """``GrB_Semiring``: an add monoid plus a multiply op."""

    name: str
    add: Monoid = field(compare=False)
    mult: BinaryOp = field(compare=False)
    builtin: bool = field(default=True, compare=False)

    def out_type(self, atype: Type, btype: Type) -> Type:
        """Domain of the multiply (and hence of the reduction)."""
        return self.mult.out_type(atype, btype)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Semiring({self.name})"


SEMIRINGS: dict[str, Semiring] = {}


def _def_semiring(addname: str, multname: str) -> Semiring:
    name = f"{addname}_{multname}"
    s = Semiring(name, monoid(addname), binary(multname))
    SEMIRINGS[name] = s
    return s


# The workhorse semirings used throughout LAGraph.
PLUS_TIMES = _def_semiring("PLUS", "TIMES")
MIN_PLUS = _def_semiring("MIN", "PLUS")
MAX_PLUS = _def_semiring("MAX", "PLUS")
MIN_TIMES = _def_semiring("MIN", "TIMES")
MIN_FIRST = _def_semiring("MIN", "FIRST")
MIN_SECOND = _def_semiring("MIN", "SECOND")
MIN_MAX = _def_semiring("MIN", "MAX")
MAX_MIN = _def_semiring("MAX", "MIN")
MAX_TIMES = _def_semiring("MAX", "TIMES")
MAX_SECOND = _def_semiring("MAX", "SECOND")
MAX_FIRST = _def_semiring("MAX", "FIRST")
PLUS_FIRST = _def_semiring("PLUS", "FIRST")
PLUS_SECOND = _def_semiring("PLUS", "SECOND")
PLUS_PLUS = _def_semiring("PLUS", "PLUS")
PLUS_MIN = _def_semiring("PLUS", "MIN")
PLUS_ONEB = _def_semiring("PLUS", "ONEB")
PLUS_PAIR = PLUS_ONEB
SEMIRINGS["PLUS_PAIR"] = PLUS_ONEB
LOR_LAND = _def_semiring("LOR", "LAND")
LAND_LOR = _def_semiring("LAND", "LOR")
LXOR_LAND = _def_semiring("LXOR", "LAND")
ANY_ONEB = _def_semiring("ANY", "ONEB")
ANY_PAIR = ANY_ONEB
SEMIRINGS["ANY_PAIR"] = ANY_ONEB
ANY_FIRST = _def_semiring("ANY", "FIRST")
ANY_SECOND = _def_semiring("ANY", "SECOND")
# Positional semirings (parent BFS etc.)
ANY_SECONDI = _def_semiring("ANY", "SECONDI")
MIN_SECONDI = _def_semiring("MIN", "SECONDI")
MIN_FIRSTI = _def_semiring("MIN", "FIRSTI")
ANY_FIRSTI = _def_semiring("ANY", "FIRSTI")
# The logical semiring of Figure 2's BFS.
LOGICAL = LOR_LAND
SEMIRINGS["LOGICAL"] = LOR_LAND


def semiring(spec) -> Semiring:
    """Resolve a Semiring from a Semiring, name, or "add_mult" string."""
    if isinstance(spec, Semiring):
        return spec
    key = str(spec).upper()
    if key in SEMIRINGS:
        return SEMIRINGS[key]
    if "_" in key:
        addname, _, multname = key.partition("_")
        try:
            s = Semiring(key, monoid(addname), binary(multname))
        except InvalidValue:
            raise InvalidValue(f"unknown semiring {spec!r}") from None
        SEMIRINGS[key] = s
        return s
    raise InvalidValue(f"unknown semiring {spec!r}")


def make_semiring(add, mult, name: str | None = None) -> Semiring:
    """``GrB_Semiring_new``: build a semiring from a monoid and a binary op."""
    add = monoid(add)
    mult = binary(mult)
    return Semiring(name or f"{add.name}_{mult.name}", add, mult, builtin=False)


# --------------------------------------------------------------------------
# The built-in semiring census (bench E6)
# --------------------------------------------------------------------------

def enumerate_builtin_semirings(api: str = "suitesparse") -> list[tuple[str, str, Type]]:
    """Enumerate unique built-in semirings as (monoid, mult-op, domain) triples.

    ``api`` selects the operator family: ``"suitesparse"`` (extensions
    included; 960 semirings) or ``"c-api"`` (pure C API operators; 600).
    Uniqueness on the Boolean domain is decided by
    :func:`repro.graphblas.ops.bool_equivalent`.
    """
    api = api.lower()
    if api in ("suitesparse", "ss", "gxb"):
        mult_ops: Iterable[str] = SUITESPARSE_BINARY_OPS
    elif api in ("c-api", "c", "grb"):
        mult_ops = C_API_BINARY_OPS
    else:
        raise InvalidValue(f"unknown api family {api!r}")

    out: list[tuple[str, str, Type]] = []
    nonbool = [t for t in BUILTIN_TYPES if t is not BOOL]

    # T x T -> T semirings over the ten non-Boolean domains.
    for add in ARITH_MONOIDS:
        for mult in mult_ops:
            for t in nonbool:
                out.append((add, mult, t))

    # T x T -> BOOL semirings: comparison multiply with a Boolean monoid.
    for add in BOOL_MONOIDS:
        for mult in COMPARISON_OPS:
            for t in nonbool:
                out.append((add, mult, t))

    # Purely Boolean semirings: ops collapse to distinct Boolean functions.
    bool_ops = sorted({bool_equivalent(op) for op in (*mult_ops, *COMPARISON_OPS)})
    for add in BOOL_MONOIDS:
        for mult in bool_ops:
            out.append((add, mult, BOOL))

    # Deduplicate (e.g. a future op list with aliases); order-preserving.
    seen: set[tuple[str, str, str]] = set()
    unique = []
    for add, mult, t in out:
        key = (add, mult, t.name)
        if key not in seen:
            seen.add(key)
            unique.append((add, mult, t))
    return unique


def semiring_census(api: str = "suitesparse") -> dict[str, int]:
    """Count unique built-in semirings, broken down as in the paper."""
    triples = enumerate_builtin_semirings(api)
    arith = sum(1 for a, m, t in triples if t is not BOOL and m not in COMPARISON_OPS)
    cmp_ = sum(1 for a, m, t in triples if t is not BOOL and m in COMPARISON_OPS)
    boolean = sum(1 for a, m, t in triples if t is BOOL)
    return {
        "arithmetic": arith,
        "comparison": cmp_,
        "boolean": boolean,
        "total": len(triples),
    }
