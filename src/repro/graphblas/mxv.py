"""Sparse matrix-vector multiply: push, pull, and direction optimization.

Section II.E of the paper describes GraphBLAST's key optimization,
direction-optimized traversal (Beamer et al.'s push-pull), implemented
*inside* ``GrB_mxv``:

* **push** — sparse-matrix sparse-vector product (SpMSpV, Gustavson's
  method): scatter from the entries of the sparse input vector through the
  matrix stored so its *inner* dimension is the major axis.  Work is
  proportional to the frontier's outgoing edges.
* **pull** — dot-product SpMV against the dense form of the input vector,
  reading the matrix by its *outer* dimension.  With an output mask, only
  the admitted output positions are computed.  Work is proportional to the
  edges incident on the unvisited set.
* **auto** — the GraphBLAST rule reproduced literally: if the vector's
  density crossed above the threshold, switch to pull; if below, switch to
  push; otherwise *keep the direction used last iteration* (hysteresis,
  held in :class:`DirectionOptimizer`).

The same two kernels serve both ``mxv`` (A's columns indexed by u) and
``vxm`` (A's rows indexed by u) — the caller passes the appropriately
oriented store and sets ``matrix_first`` for the multiply argument order.
"""

from __future__ import annotations

import time

import numpy as np

from . import engine, faults, governor, telemetry
from .errors import InvalidValue
from .formats import SparseStore
from .mxm import _gather_ranges
from .semiring import Semiring
from .types import Type

__all__ = [
    "spmspv_push",
    "spmv_pull",
    "choose_direction",
    "DirectionOptimizer",
    "DEFAULT_SWITCH_THRESHOLD",
    "get_switch_threshold",
    "set_switch_threshold",
]

_INDEX = np.int64

# GraphBLAST switches push<->pull when frontier density crosses a threshold;
# its default is a small constant fraction of the vertices.
DEFAULT_SWITCH_THRESHOLD = 0.03

# The live knob behind every "auto" direction choice.  Settable (see
# set_switch_threshold) so telemetry experiments can sweep the switch point
# without monkey-patching; DEFAULT_SWITCH_THRESHOLD records the shipped value.
SWITCH_THRESHOLD = DEFAULT_SWITCH_THRESHOLD


def get_switch_threshold() -> float:
    """The current push<->pull density threshold used by ``method="auto"``."""
    return SWITCH_THRESHOLD


def set_switch_threshold(value: float) -> float:
    """Set the push<->pull density threshold; returns the previous value.

    Applies to every subsequent ``mxv``/``vxm`` with ``method="auto"`` and
    to :class:`DirectionOptimizer` instances created without an explicit
    threshold.  Values must lie strictly between 0 and 1; restore the
    shipped default with ``set_switch_threshold(DEFAULT_SWITCH_THRESHOLD)``.
    """
    global SWITCH_THRESHOLD
    value = float(value)
    if not 0 < value < 1:
        raise InvalidValue("switch threshold must be in (0, 1)")
    prev = SWITCH_THRESHOLD
    SWITCH_THRESHOLD = value
    return prev


def _vec_positional(kind: str, k: np.ndarray, m: np.ndarray, matrix_first: bool):
    """Positional multiply for matrix-vector products.

    ``k`` is the inner (vector) index of each partial product, ``m`` the
    output index.  With ``matrix_first`` (mxv: A(i,k) x u(k)): FIRSTI = m,
    FIRSTJ = SECONDI = k, SECONDJ = 0.  Otherwise (vxm: u(k) x A(k,j)):
    FIRSTI = SECONDI = k, FIRSTJ = 0, SECONDJ = m.
    """
    if kind in ("secondi", "secondi1"):
        base = k
    elif kind in ("firsti", "firsti1"):
        base = m if matrix_first else k
    elif kind in ("firstj", "firstj1"):
        base = k if matrix_first else np.zeros_like(k)
    elif kind in ("secondj", "secondj1"):
        base = np.zeros_like(k) if matrix_first else m
    else:
        raise InvalidValue(f"unknown positional kind {kind!r}")
    out = base.astype(np.int64)
    return out + 1 if kind.endswith("1") else out


def spmspv_push(
    a_by_inner: SparseStore,
    u_idx: np.ndarray,
    u_vals: np.ndarray,
    semiring: Semiring,
    out_type: Type,
    matrix_first: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Push traversal: scatter from each entry of the sparse vector.

    ``a_by_inner`` must be oriented with the vector's dimension as its major
    axis (CSC for mxv, CSR for vxm).  Returns (indices, values) sorted.
    """
    if faults.ENABLED:
        faults.trip("mxv.push")
    if a_by_inner.n_major != 0 and u_idx.size:
        if int(u_idx.max()) >= a_by_inner.n_major:
            raise InvalidValue("vector index outside matrix inner dimension")
    starts, ends = a_by_inner.major_ranges(u_idx)
    lens = ends - starts
    gather = _gather_ranges(starts, ends)
    if telemetry.ENABLED:
        telemetry.tally("mxv", flops=int(gather.size))
    if gather.size == 0:
        return np.empty(0, dtype=_INDEX), np.empty(0, dtype=out_type.np_dtype)
    out_idx = a_by_inner.minor[gather]
    mult = semiring.mult
    kern = engine.kernel_for(semiring, out_type, method="push")
    if mult.positional is not None:
        k = np.repeat(u_idx, lens)
        vals = _vec_positional(mult.positional, k, out_idx, matrix_first)
    elif kern is not None:
        a_v = a_by_inner.values[gather]
        u_v = np.repeat(u_vals, lens)
        vals = kern.combine(a_v, u_v) if matrix_first else kern.combine(u_v, a_v)
    else:
        a_v = a_by_inner.values[gather]
        u_v = np.repeat(u_vals, lens)
        vals = mult.apply(a_v, u_v) if matrix_first else mult.apply(u_v, a_v)

    order = np.argsort(out_idx, kind="stable")
    out_idx, vals = out_idx[order], vals[order]
    change = np.empty(out_idx.size, dtype=bool)
    change[0] = True
    np.not_equal(out_idx[1:], out_idx[:-1], out=change[1:])
    seg = np.flatnonzero(change).astype(_INDEX)
    if seg.size != out_idx.size:
        if kern is not None:
            vals = kern.segment_reduce(vals, seg)
        else:
            vals = semiring.add.reduce_segments(vals, seg, out_type)
        out_idx = out_idx[seg]
    else:
        vals = out_type.cast_array(vals)
    return out_idx, vals


def _major_blocks(major: np.ndarray, nblocks: int) -> list[tuple[int, int]]:
    """Cut ``major`` (sorted) into up to ``nblocks`` contiguous spans.

    Every cut lands on a major-index boundary, so per-segment reductions in
    one block never see partial products belonging to another block and the
    concatenated block results equal the serial result bit for bit.
    """
    cuts = [0]
    for k in range(1, nblocks):
        pos = (major.size * k) // nblocks
        while 0 < pos < major.size and major[pos] == major[pos - 1]:
            pos += 1
        if cuts[-1] < pos < major.size:
            cuts.append(pos)
    cuts.append(major.size)
    return [(cuts[t], cuts[t + 1]) for t in range(len(cuts) - 1)]


def _pull_block(lo: int, hi: int, major, vals, kern):
    """Segment-reduce one major-aligned span of pull partial products."""
    m = major[lo:hi]
    v = vals[lo:hi]
    change = np.empty(m.size, dtype=bool)
    change[0] = True
    np.not_equal(m[1:], m[:-1], out=change[1:])
    seg = np.flatnonzero(change).astype(_INDEX)
    return m[seg], kern.segment_reduce(v, seg)


def spmv_pull(
    a_by_outer: SparseStore,
    u_dense: np.ndarray,
    u_present: np.ndarray,
    semiring: Semiring,
    out_type: Type,
    matrix_first: bool = True,
    outer_hint: np.ndarray | None = None,
    nthreads: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Pull traversal: per-output-position dot against the densified vector.

    ``a_by_outer`` is oriented with the *output* dimension major (CSR for
    mxv, CSC for vxm).  ``outer_hint`` (sorted) restricts computation to
    those output positions — the pull-side payoff of an output mask.
    Returns (indices, values) sorted.
    """
    if faults.ENABLED:
        faults.trip("mxv.pull")
    mult = semiring.mult
    if outer_hint is not None:
        starts, ends = a_by_outer.major_ranges(outer_hint)
        lens = ends - starts
        gather = _gather_ranges(starts, ends)
        major = np.repeat(outer_hint, lens)
        minor = a_by_outer.minor[gather]
        a_vals = a_by_outer.values[gather]
    else:
        major, minor, a_vals = a_by_outer.to_coo()

    if major.size == 0:
        return np.empty(0, dtype=_INDEX), np.empty(0, dtype=out_type.np_dtype)
    sel = u_present[minor]
    major, minor, a_vals = major[sel], minor[sel], a_vals[sel]
    if telemetry.ENABLED:
        telemetry.tally("mxv", flops=int(major.size))
    if major.size == 0:
        return np.empty(0, dtype=_INDEX), np.empty(0, dtype=out_type.np_dtype)

    mask_kind = "none" if outer_hint is None else "mask"
    kern = engine.kernel_for(semiring, out_type, mask_kind=mask_kind, method="pull")
    if mult.positional is not None:
        vals = _vec_positional(mult.positional, minor, major, matrix_first)
        kern = None
    elif kern is not None:
        u_v = u_dense[minor]
        vals = kern.combine(a_vals, u_v) if matrix_first else kern.combine(u_v, a_vals)
    else:
        u_v = u_dense[minor]
        vals = mult.apply(a_vals, u_v) if matrix_first else mult.apply(u_v, a_vals)

    if (
        engine.PARALLEL
        and kern is not None
        and major.size >= engine.MIN_PARALLEL_ENTRIES
    ):
        requested = engine.requested_workers(nthreads)
        if requested > 1:
            per_block = (major.size // requested + 1) * (16 + out_type.np_dtype.itemsize)
            workers = governor.admit_workers(requested, per_block, op="mxv")
            blocks = _major_blocks(major, workers) if workers > 1 else []
            if len(blocks) > 1:
                def timed(lo, hi):
                    t0 = time.perf_counter()
                    res = _pull_block(lo, hi, major, vals, kern)
                    return res, t0, time.perf_counter()

                results = engine.run_blocks(timed, blocks, len(blocks))
                if telemetry.ENABLED:
                    for idx, ((lo, hi), (_, t0, t1)) in enumerate(zip(blocks, results)):
                        telemetry.span_at(
                            "engine.block", t0, t1, op="mxv", block=idx, entries=hi - lo
                        )
                out_idx = np.concatenate([r[0] for r, _, _ in results])
                out_vals = np.concatenate([r[1] for r, _, _ in results])
                return out_idx, out_vals

    change = np.empty(major.size, dtype=bool)
    change[0] = True
    np.not_equal(major[1:], major[:-1], out=change[1:])
    seg = np.flatnonzero(change).astype(_INDEX)
    out_idx = major[seg]
    if kern is not None:
        vals = kern.segment_reduce(vals, seg)
    else:
        vals = semiring.add.reduce_segments(vals, seg, out_type)
    return out_idx, vals


def choose_direction(method: str, u, optimizer, *, op_name: str) -> str:
    """Resolve a matvec plan's method to ``push`` or ``pull``.

    The one direction-choice policy shared by every kernel backend
    (optimized and compiled both route through here, so their
    ``mxv.direction`` telemetry and hysteresis state are identical):
    ``tiled`` degrades to the bit-identical in-memory ``pull``;
    ``auto`` applies the GraphBLAST density rule — through the plan's
    :class:`DirectionOptimizer` when the caller is iterating, the
    module threshold otherwise; explicit directions pass through.
    """
    if method == "tiled":
        method = "pull"
    if method == "auto":
        density = u.nvals / u.size
        threshold = (
            optimizer.threshold
            if optimizer is not None
            else get_switch_threshold()
        )
        if optimizer is not None:
            method = optimizer.choose(density)
        else:
            method = "push" if density <= threshold else "pull"
        if telemetry.ENABLED:
            telemetry.decision(
                "mxv.direction",
                op=op_name,
                direction=method,
                density=density,
                threshold=threshold,
                frontier_nvals=u.nvals,
                size=u.size,
                hysteresis=optimizer is not None,
            )
    elif telemetry.ENABLED:
        telemetry.decision(
            "mxv.direction",
            op=op_name,
            direction=method,
            forced=True,
            frontier_nvals=u.nvals,
            size=u.size,
        )
    return method


class DirectionOptimizer:
    """Push/pull chooser with GraphBLAST's hysteresis rule (section II.E).

    "In each iteration of an mxv, the backend checks whether the vector
    sparsity has crossed a threshold k.  If it has gone above, switch from
    push to pull.  If below, switch from pull to push.  Otherwise use the
    traversal of the previous iteration."
    """

    def __init__(self, threshold: float | None = None):
        if threshold is None:
            threshold = SWITCH_THRESHOLD
        if not 0 < threshold < 1:
            raise InvalidValue("threshold must be in (0, 1)")
        self.threshold = threshold
        self.direction = "push"
        self._prev_density: float | None = None
        self.history: list[str] = []

    def choose(self, density: float) -> str:
        prev = self._prev_density
        if prev is None:
            self.direction = "push" if density <= self.threshold else "pull"
        elif prev <= self.threshold < density:
            self.direction = "pull"  # crossed above: switch to pull
        elif density <= self.threshold < prev:
            self.direction = "push"  # crossed below: switch to push
        # else: keep previous direction
        self._prev_density = density
        self.history.append(self.direction)
        return self.direction
