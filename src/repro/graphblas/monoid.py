"""GraphBLAS monoids: an associative commutative binary op with identity.

A monoid may also carry a *terminal* (annihilator) value.  The paper
(section II.A) describes SuiteSparse's early-exit mechanism for the MIN,
MAX, OR, and AND monoids: a reduction can stop as soon as the terminal
value is reached.  The dot-product SpGEMM kernel in :mod:`repro.graphblas.mxm`
uses :attr:`Monoid.terminal` exactly that way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .errors import DomainMismatch, InvalidValue
from .ops import BinaryOp, binary
from .types import Type

__all__ = ["Monoid", "monoid", "MONOIDS", "BOOL_MONOIDS", "ARITH_MONOIDS"]


@dataclass(frozen=True)
class Monoid:
    """``GrB_Monoid``: (op, identity[, terminal]).

    ``identity`` and ``terminal`` may be callables taking the domain
    :class:`~repro.graphblas.types.Type` (MIN/MAX identities depend on the
    domain) or plain values.
    """

    name: str
    op: BinaryOp = field(compare=False)
    _identity: Any = field(compare=False)
    _terminal: Any = field(default=None, compare=False)
    builtin: bool = field(default=True, compare=False)

    def identity(self, dtype: Type):
        """The identity element in domain ``dtype``."""
        v = self._identity(dtype) if callable(self._identity) else self._identity
        return dtype.np_dtype.type(v) if dtype.builtin else v

    def terminal(self, dtype: Type):
        """The annihilator in ``dtype``, or None if the monoid has none."""
        if self._terminal is None:
            return None
        v = self._terminal(dtype) if callable(self._terminal) else self._terminal
        return dtype.np_dtype.type(v) if dtype.builtin else v

    @property
    def reduce_ufunc(self) -> np.ufunc | None:
        """NumPy ufunc with working ``reduce``/``reduceat``, if one exists."""
        uf = self.op.ufunc
        return uf if isinstance(uf, np.ufunc) else _REDUCE_UFUNCS.get(self.name)

    def reduce_array(self, values: np.ndarray, dtype: Type):
        """Reduce a 1-D array to a scalar of domain ``dtype``."""
        values = dtype.cast_array(np.asarray(values))
        if values.size == 0:
            return self.identity(dtype)
        if self.name == "ANY":  # pick an arbitrary member: O(1)
            return values[0].item() if dtype.builtin else values[0]
        uf = self.reduce_ufunc
        if uf is not None:
            return dtype.cast_array(np.asarray(uf.reduce(values))).item()
        acc = values[0]
        for v in values[1:]:
            acc = self.op.fn(acc, v)
        return dtype.cast_scalar(acc)

    def reduce_segments(
        self, values: np.ndarray, segment_starts: np.ndarray, dtype: Type
    ) -> np.ndarray:
        """Reduce contiguous segments of ``values`` (a vectorized groupby).

        ``segment_starts`` is the start offset of each segment; segment ``s``
        covers ``values[segment_starts[s]:segment_starts[s+1]]`` with the last
        segment running to the end.  Empty segments yield the identity.
        """
        values = dtype.cast_array(np.asarray(values))
        starts = np.asarray(segment_starts, dtype=np.int64)
        if starts.size == 0:
            return np.empty(0, dtype=dtype.np_dtype)
        if self.name == "ANY" and values.size:  # first of each segment
            ends = np.append(starts[1:], values.size)
            out = values[np.minimum(starts, values.size - 1)].copy()
            empty = starts >= ends
            if np.any(empty):
                out[empty] = self.identity(dtype)
            return out
        uf = self.reduce_ufunc
        if uf is not None and values.size:
            clipped = np.minimum(starts, values.size - 1)
            out = uf.reduceat(values, clipped)
            ends = np.append(starts[1:], values.size)
            empty = starts >= ends
            if np.any(empty):
                out = out.astype(dtype.np_dtype, copy=True)
                out[empty] = self.identity(dtype)
            return dtype.cast_array(out)
        ends = np.append(starts[1:], values.size)
        out = np.empty(starts.size, dtype=dtype.np_dtype)
        for s in range(starts.size):
            out[s] = self.reduce_array(values[starts[s] : ends[s]], dtype)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Monoid({self.name})"


def _min_identity(t: Type):
    if t.is_bool:
        return True
    if t.is_float:
        return np.inf
    return np.iinfo(t.np_dtype).max


def _max_identity(t: Type):
    if t.is_bool:
        return False
    if t.is_float:
        return -np.inf
    return np.iinfo(t.np_dtype).min


MONOIDS: dict[str, Monoid] = {}


def _def_monoid(name, opname, identity, terminal=None):
    m = Monoid(name, binary(opname), identity, terminal)
    MONOIDS[name] = m
    return m


PLUS_MONOID = _def_monoid("PLUS", "PLUS", 0)
TIMES_MONOID = _def_monoid("TIMES", "TIMES", 1, terminal=0)
MIN_MONOID = _def_monoid("MIN", "MIN", _min_identity, terminal=_max_identity)
MAX_MONOID = _def_monoid("MAX", "MAX", _max_identity, terminal=_min_identity)
LOR_MONOID = _def_monoid("LOR", "LOR", False, terminal=True)
LAND_MONOID = _def_monoid("LAND", "LAND", True, terminal=False)
LXOR_MONOID = _def_monoid("LXOR", "LXOR", False)
EQ_MONOID = _def_monoid("EQ", "LXNOR", True)  # a.k.a. LXNOR monoid
MONOIDS["LXNOR"] = EQ_MONOID
# ANY: pick an arbitrary member; any value is terminal (maximal early exit).
ANY_MONOID = Monoid("ANY", binary("ANY"), 0, None)
MONOIDS["ANY"] = ANY_MONOID

# ufuncs for monoids whose op.ufunc is a lambda (logical ops coerce to bool
# first, so plain np.logical_* reduce correctly once values are boolean).
_REDUCE_UFUNCS: dict[str, np.ufunc] = {
    "LOR": np.logical_or,
    "LAND": np.logical_and,
    "LXOR": np.logical_xor,
    "EQ": np.equal,
    "LXNOR": np.equal,
}

# The four Boolean monoids of the built-in-semiring census (paper's "960").
BOOL_MONOIDS: tuple[str, ...] = ("LOR", "LAND", "LXOR", "EQ")
# The four arithmetic monoids over each non-Boolean domain.
ARITH_MONOIDS: tuple[str, ...] = ("MIN", "MAX", "PLUS", "TIMES")


def monoid(spec) -> Monoid:
    """Resolve a :class:`Monoid` from a Monoid or (case-insensitive) name."""
    if isinstance(spec, Monoid):
        return spec
    try:
        return MONOIDS[str(spec).upper()]
    except KeyError:
        raise InvalidValue(f"unknown monoid {spec!r}") from None


def make_monoid(op, identity, terminal=None, name: str | None = None) -> Monoid:
    """``GrB_Monoid_new``: build a user-defined monoid."""
    op = binary(op)
    if op.positional:
        raise DomainMismatch("positional ops cannot form monoids")
    return Monoid(name or f"user_{op.name}", op, identity, terminal, builtin=False)
