"""Hot-path performance engine: specialized kernels, dual-format twins,
and row-blocked parallelism.

Section II.A of the paper credits SuiteSparse:GraphBLAS's speed to
code-generated semiring kernels (960 built-ins compiled to monomorphic
inner loops) and early-exit terminal-monoid dot products, and section
II.E's direction-optimizing ``mxv`` "requires both CSR and CSC copies"
of the adjacency matrix.  This module supplies the Python analogue of
all three mechanisms for the optimized backend:

1. **Kernel specialization cache** — :func:`kernel_for` closure-compiles
   a :class:`SpecializedKernel` for a ``(semiring, dtype, mask kind,
   accum, method)`` combination and memoizes it in an LRU, so hot
   semirings get pre-bound numpy ufuncs instead of generic ``Op.apply``
   dispatch.  Specialized kernels replicate the generic numerics
   *bit for bit* (same cast points, same reduction ufuncs), which the
   differential backend cross-checks.
2. **Dual-orientation storage** — when :data:`DUAL_FORMAT` is on,
   ``Matrix._oriented`` caches the opposite-orientation twin with
   mutation-epoch invalidation, making pull-phase ``mxv``/``vxm`` and
   ``transpose`` O(1) after first use.
3. **Row-blocked parallelism** — a shared, lazily created
   :class:`~concurrent.futures.ThreadPoolExecutor` runs row blocks of
   Gustavson SpGEMM / pull ``mxv``; worker counts are admitted by the
   execution governor (:func:`repro.graphblas.governor.admit_workers`).

Everything is disableable: set ``GRAPHBLAS_ENGINE=off`` (or call
``set_engine(False)``) and every kernel falls back to the generic path,
so engine-on vs engine-off results can be compared bit for bit.

Env knobs (read once at import; :func:`reset` re-reads them):

* ``GRAPHBLAS_ENGINE`` — ``on`` (default) / ``off``.
* ``GRAPHBLAS_ENGINE_WORKERS`` — thread pool size for row-blocked
  kernels (default 4, minimum 1).
* ``GRAPHBLAS_ENGINE_CACHE`` — kernel LRU capacity (default 64).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from . import telemetry
from .envutil import env_int, env_on_off

__all__ = [
    "EngineConfig",
    "SpecializedKernel",
    "get_config",
    "set_engine",
    "reset",
    "kernel_for",
    "kernel_cache_stats",
    "clear_kernel_cache",
    "pool_stats",
    "run_blocks",
    "requested_workers",
    "MIN_PARALLEL_FLOPS",
    "MIN_PARALLEL_ENTRIES",
    "MIN_PARALLEL_TILES",
]

DEFAULT_WORKERS = 4
DEFAULT_CACHE_SIZE = 64

# Below these work sizes the thread-pool handoff costs more than it saves.
MIN_PARALLEL_FLOPS = 1 << 18
MIN_PARALLEL_ENTRIES = 1 << 16
#: Fewest tile-pair expansions per inner step worth fanning out to the
#: shared pool (tiled execution; see repro.graphblas.tiled).
MIN_PARALLEL_TILES = 2

# Composite sort keys (major * n_minor + minor) must stay inside int64.
KEY_LIMIT = 2**62


@dataclass
class EngineConfig:
    """Snapshot of the engine's tunables (see module docstring)."""

    enabled: bool
    kernel_cache: bool
    dual_format: bool
    twin_patch: bool
    parallel: bool
    workers: int
    cache_size: int


def _config_from_env() -> EngineConfig:
    on = env_on_off("GRAPHBLAS_ENGINE", True)
    workers = env_int("GRAPHBLAS_ENGINE_WORKERS", DEFAULT_WORKERS, minimum=1)
    cache_size = env_int("GRAPHBLAS_ENGINE_CACHE", DEFAULT_CACHE_SIZE, minimum=1)
    return EngineConfig(
        enabled=on,
        kernel_cache=on,
        dual_format=on,
        twin_patch=env_on_off("GRAPHBLAS_ENGINE_TWIN_PATCH", True),
        parallel=on,
        workers=workers,
        cache_size=cache_size,
    )


_config = _config_from_env()

# Module-level fast flags mirrored from _config so hot paths pay one
# attribute load, not a config-object traversal.
ENABLED = _config.enabled
KERNEL_CACHE = _config.kernel_cache
DUAL_FORMAT = _config.dual_format
TWIN_PATCH = _config.twin_patch
PARALLEL = _config.parallel
WORKERS = _config.workers


def _apply_config() -> None:
    global ENABLED, KERNEL_CACHE, DUAL_FORMAT, TWIN_PATCH, PARALLEL, WORKERS
    ENABLED = _config.enabled
    KERNEL_CACHE = _config.enabled and _config.kernel_cache
    DUAL_FORMAT = _config.enabled and _config.dual_format
    TWIN_PATCH = _config.enabled and _config.twin_patch
    PARALLEL = _config.enabled and _config.parallel
    WORKERS = _config.workers


def get_config() -> EngineConfig:
    """The live engine configuration (mutate via :func:`set_engine`)."""
    return _config


def set_engine(
    enabled: bool | None = None,
    *,
    kernel_cache: bool | None = None,
    dual_format: bool | None = None,
    twin_patch: bool | None = None,
    parallel: bool | None = None,
    workers: int | None = None,
    cache_size: int | None = None,
) -> EngineConfig:
    """Reconfigure the engine; ``None`` leaves a field unchanged.

    ``set_engine(False)`` turns every mechanism off (the generic code
    paths run); ``set_engine(True)`` turns them back on.  Individual
    mechanisms can be toggled while the engine stays on.
    """
    if enabled is not None:
        _config.enabled = bool(enabled)
    if kernel_cache is not None:
        _config.kernel_cache = bool(kernel_cache)
    if dual_format is not None:
        _config.dual_format = bool(dual_format)
    if twin_patch is not None:
        _config.twin_patch = bool(twin_patch)
    if parallel is not None:
        _config.parallel = bool(parallel)
    if workers is not None:
        _config.workers = max(1, int(workers))
    if cache_size is not None:
        _config.cache_size = max(1, int(cache_size))
        _trim_cache()
    _apply_config()
    return _config


def reset() -> None:
    """Re-read the environment and drop all cached state (for tests)."""
    global _config
    _config = _config_from_env()
    _apply_config()
    clear_kernel_cache()
    _shutdown_executor()


# -- specialized kernels ------------------------------------------------------


class SpecializedKernel:
    """Monomorphic inner loops for one (semiring, out dtype) combination.

    Every method replicates the corresponding generic path —
    ``BinaryOp.apply`` / ``Monoid.reduce_segments`` /
    ``Monoid.reduce_array`` — with the operator dispatch, identity
    handling, and cast points resolved once at compile time instead of
    per call.  The outputs are bit-identical to the generic path for the
    inputs the sparse kernels produce (non-empty, in-bounds segments).
    """

    __slots__ = (
        "semiring_name",
        "out_type",
        "mult_uf",
        "add_uf",
        "reduce_uf",
        "is_any",
        "cast",
        "np_dtype",
        "identity",
        "terminal",
    )

    def __init__(self, semiring, out_type):
        add = semiring.add
        self.semiring_name = semiring.name
        self.out_type = out_type
        self.mult_uf = semiring.mult.ufunc
        self.add_uf = add.op.ufunc
        self.reduce_uf = add.reduce_ufunc
        self.is_any = add.name == "ANY"
        self.cast = out_type.cast_array
        self.np_dtype = out_type.np_dtype
        self.identity = add.identity(out_type)
        self.terminal = add.terminal(out_type)

    def combine(self, x, y):
        """= ``mult.apply(x, y)`` for array inputs (no output cast)."""
        return self.mult_uf(x, y)

    def segment_reduce(self, values, starts):
        """= ``add.reduce_segments(values, starts, out_type)`` for the
        kernel case: values non-empty, every start in-bounds, no empty
        segments."""
        values = self.cast(np.asarray(values))
        if self.is_any:
            return values[starts].copy()
        return self.cast(self.reduce_uf.reduceat(values, starts))

    def reduce_all(self, values):
        """= ``add.reduce_array(values, out_type)`` for non-empty input."""
        values = self.cast(np.asarray(values))
        if self.is_any:
            return values[0].item()
        return self.cast(np.asarray(self.reduce_uf.reduce(values))).item()

    def fold2(self, acc, blk):
        """Scalar accumulate: = ``cast(add.op.apply(acc, blk)).item()``."""
        return self.cast(self.add_uf(np.asarray(acc), np.asarray(blk))).item()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpecializedKernel({self.semiring_name}, {self.out_type.name})"


_cache_lock = threading.Lock()
_kernel_cache: OrderedDict[tuple, SpecializedKernel] = OrderedDict()
_cache_stats = {"hits": 0, "misses": 0, "evictions": 0, "unspecializable": 0}


def _specializable(semiring, out_type) -> bool:
    mult, add = semiring.mult, semiring.add
    if mult.positional is not None or mult.ufunc is None:
        return False
    if not (mult.builtin and add.builtin and out_type.builtin):
        return False
    return add.name == "ANY" or add.reduce_ufunc is not None


def kernel_for(semiring, out_type, mask_kind="none", accum=None, method="gustavson"):
    """Fetch (or compile) the specialized kernel for a hot combination.

    Returns ``None`` when the combination cannot be specialized
    (positional multiply ops, user-defined ops or types, monoids with no
    reduction ufunc) — callers then take the generic path.  Builtin op
    names are unique, so they key the cache; user-defined ops are never
    cached.
    """
    if not KERNEL_CACHE:
        return None
    if not _specializable(semiring, out_type):
        _cache_stats["unspecializable"] += 1
        return None
    key = (
        semiring.add.name,
        semiring.mult.name,
        out_type.name,
        mask_kind,
        getattr(accum, "name", accum),
        method,
    )
    with _cache_lock:
        kern = _kernel_cache.get(key)
        if kern is not None:
            _kernel_cache.move_to_end(key)
            _cache_stats["hits"] += 1
            return kern
        kern = SpecializedKernel(semiring, out_type)
        _kernel_cache[key] = kern
        _cache_stats["misses"] += 1
        evicted = 0
        while len(_kernel_cache) > _config.cache_size:
            _kernel_cache.popitem(last=False)
            evicted += 1
        _cache_stats["evictions"] += evicted
    if telemetry.ENABLED:
        telemetry.decision(
            "engine.kernel",
            event="compile",
            semiring=semiring.name,
            dtype=out_type.name,
            mask=mask_kind,
            method=method,
            evicted=evicted,
        )
    return kern


def kernel_cache_stats() -> dict:
    """Counters for the kernel LRU: hits/misses/evictions/unspecializable."""
    with _cache_lock:
        stats = dict(_cache_stats)
        stats["size"] = len(_kernel_cache)
        stats["capacity"] = _config.cache_size
    return stats


def clear_kernel_cache() -> None:
    with _cache_lock:
        _kernel_cache.clear()
        for k in _cache_stats:
            _cache_stats[k] = 0


def _trim_cache() -> None:
    with _cache_lock:
        while len(_kernel_cache) > _config.cache_size:
            _kernel_cache.popitem(last=False)
            _cache_stats["evictions"] += 1


# -- shared thread pool -------------------------------------------------------

_pool_lock = threading.Lock()
_executor: ThreadPoolExecutor | None = None
_executor_workers = 0


def _get_executor(workers: int) -> ThreadPoolExecutor:
    global _executor, _executor_workers
    with _pool_lock:
        if _executor is None or _executor_workers < workers:
            if _executor is not None:
                _executor.shutdown(wait=True)
            _executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="gb-engine"
            )
            _executor_workers = workers
        return _executor


def _shutdown_executor() -> None:
    global _executor, _executor_workers
    with _pool_lock:
        if _executor is not None:
            _executor.shutdown(wait=True)
            _executor = None
            _executor_workers = 0


def pool_stats() -> dict:
    """Shared-pool occupancy for observability gauges.

    ``configured`` is the engine-wide worker setting; ``started`` is the
    actual size of the lazily created executor (0 until the first
    parallel kernel runs); ``live_threads`` counts its worker threads
    still alive.
    """
    with _pool_lock:
        started = _executor_workers if _executor is not None else 0
        live = sum(
            1 for t in getattr(_executor, "_threads", ()) if t.is_alive()
        ) if _executor is not None else 0
    return {"configured": WORKERS, "started": started, "live_threads": live}


def requested_workers(nthreads: int | None) -> int:
    """The worker count a kernel should request: the descriptor's
    ``GxB_NTHREADS`` when set, else the engine-wide default."""
    if nthreads is not None and nthreads >= 1:
        return int(nthreads)
    return WORKERS


def run_blocks(fn, arg_tuples, workers: int):
    """Run ``fn(*args)`` for each tuple on the shared pool, preserving order.

    Worker threads must not touch thread-local machinery (telemetry
    collectors, governor contexts, fault plans are all thread-local by
    design) — block functions do pure numpy work and return their piece;
    the coordinator merges and reports.  Exceptions propagate to the
    caller with all futures drained first, so a failed parallel section
    leaves no stray work running.
    """
    ex = _get_executor(workers)
    futures = [ex.submit(fn, *args) for args in arg_tuples]
    results = []
    first_exc = None
    for fut in futures:
        try:
            results.append(fut.result())
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            if first_exc is None:
                first_exc = exc
            results.append(None)
    if first_exc is not None:
        raise first_exc
    return results
