"""Sparse storage formats: CSR, CSC, and their hypersparse variants.

The paper (section II.A) describes SuiteSparse's four storage forms: a
matrix is a packed collection of sparse vectors, stored row-major (CSR) or
column-major (CSC), each with an optional *hypersparse* variant in which the
pointer array itself becomes sparse so that storage is O(e) instead of
O(n + e) — letting matrices of enormous dimension exist as long as e << n.

:class:`SparseStore` implements one orientation of such a structure over
NumPy arrays.  All kernels consume stores through two access patterns:

* :meth:`SparseStore.to_coo` — the entries as sorted coordinate arrays, and
* :meth:`SparseStore.major_ranges` — (start, end) slices of selected major
  vectors, O(k log nvec) for hypersparse, O(k) otherwise;

so every kernel works on all four formats, as the paper requires ("all
methods can operate on all four matrix formats in any combination").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from . import engine
from .errors import InvalidObject, InvalidValue
from .monoid import Monoid
from .types import Type

__all__ = [
    "Orientation",
    "SparseStore",
    "reduce_by_segments",
    "group_starts",
    "coo_sort_order",
    "merge_sorted_delta",
    "ragged_take",
]

_INDEX = np.int64

# Composite sort keys (major * n_minor + minor) must stay inside int64;
# beyond this the sort falls back to np.lexsort on the index pair.
_KEY_LIMIT = 2**62


def _composite_key(
    major: np.ndarray, minor: np.ndarray, n_major: int, n_minor: int
) -> np.ndarray | None:
    """``major * n_minor + minor`` as one int64 key, or None when unsafe.

    Safe only when both index arrays are in-range for the stated dims and
    the product cannot overflow (huge hypersparse dims fall back).
    """
    if major.size == 0 or n_minor <= 0 or n_major > _KEY_LIMIT // n_minor:
        return None
    if major.min() < 0 or major.max() >= n_major:
        return None
    if minor.min() < 0 or minor.max() >= n_minor:
        return None
    return major * np.int64(n_minor) + minor


def coo_sort_order(
    major: np.ndarray,
    minor: np.ndarray,
    n_major: int,
    n_minor: int,
) -> np.ndarray | None:
    """Stable (major, minor) sort permutation, or None if already strictly
    sorted and duplicate-free.

    Uses a single composite-key argsort when the key fits in int64 (one
    sort instead of lexsort's two passes); the permutation is identical to
    ``np.lexsort((minor, major))`` either way, both being stable.
    """
    major = np.asarray(major, dtype=_INDEX)
    minor = np.asarray(minor, dtype=_INDEX)
    key = _composite_key(major, minor, n_major, n_minor)
    if key is not None:
        if key.size == 1 or bool(np.all(key[1:] > key[:-1])):
            return None
        return np.argsort(key, kind="stable")
    if major.size <= 1:
        return None
    sorted_unique = bool(
        np.all(
            (major[1:] > major[:-1])
            | ((major[1:] == major[:-1]) & (minor[1:] > minor[:-1]))
        )
    )
    if sorted_unique:
        return None
    return np.lexsort((minor, major))


def ragged_take(
    arr: np.ndarray, starts: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Concatenate ``arr[starts[k] : starts[k] + counts[k]]`` for every k.

    The vectorized gather behind delta-restricted kernels (push sweeps,
    per-window wedge counting): one arange plus one repeat instead of a
    Python loop over slices.
    """
    counts = np.asarray(counts, dtype=_INDEX)
    total = int(counts.sum())
    if total == 0:
        return arr[:0]
    ends = np.cumsum(counts)
    shift = np.repeat(np.asarray(starts, dtype=_INDEX) - (ends - counts), counts)
    return arr[np.arange(total, dtype=_INDEX) + shift]


def merge_sorted_delta(
    orientation: "Orientation",
    n_major: int,
    n_minor: int,
    kept_major: np.ndarray,
    kept_minor: np.ndarray,
    kept_values: np.ndarray,
    ins_major: np.ndarray,
    ins_minor: np.ndarray,
    ins_values: np.ndarray,
    dtype: Type,
    *,
    hyper: bool,
) -> "SparseStore | None":
    """Merge surviving entries with a disjoint batch of insertions.

    ``kept_*`` must be sorted-unique in (major, minor) order (a store's
    entries after dropping the coordinates an update window touched);
    ``ins_*`` are the window's insertions, unique among themselves and
    disjoint from ``kept_*``.  The merge is O(e + d log d) — a searchsorted
    interleave instead of the O(e log e) full re-sort ``from_coo`` would
    pay — which is what makes per-window twin patching and incremental
    assembly cheaper than rebuild.

    Returns None when the composite sort key would overflow (enormous
    hypersparse dimensions); callers fall back to the re-sort path.
    """
    ins_major = np.asarray(ins_major, dtype=_INDEX)
    ins_minor = np.asarray(ins_minor, dtype=_INDEX)
    if ins_major.size == 0:
        return SparseStore.from_coo(
            orientation, n_major, n_minor, kept_major, kept_minor, kept_values,
            dtype, hyper=hyper, assume_sorted_unique=True,
        )
    order = coo_sort_order(ins_major, ins_minor, n_major, n_minor)
    if order is not None:
        ins_major = ins_major[order]
        ins_minor = ins_minor[order]
        ins_values = np.asarray(ins_values)[order]
    if kept_major.size == 0:
        return SparseStore.from_coo(
            orientation, n_major, n_minor, ins_major, ins_minor, ins_values,
            dtype, hyper=hyper, assume_sorted_unique=True,
        )
    kept_key = _composite_key(kept_major, kept_minor, n_major, n_minor)
    ins_key = _composite_key(ins_major, ins_minor, n_major, n_minor)
    if kept_key is None or ins_key is None:
        return None
    pos = np.searchsorted(kept_key, ins_key)
    major = np.insert(kept_major, pos, ins_major)
    minor = np.insert(kept_minor, pos, ins_minor)
    values = np.insert(
        dtype.cast_array(kept_values), pos, dtype.cast_array(ins_values)
    )
    return SparseStore.from_coo(
        orientation, n_major, n_minor, major, minor, values,
        dtype, hyper=hyper, assume_sorted_unique=True,
    )


class Orientation(str, enum.Enum):
    ROW = "row"
    COL = "col"

    @property
    def flipped(self) -> "Orientation":
        return Orientation.COL if self is Orientation.ROW else Orientation.ROW


def reduce_by_segments(op, values: np.ndarray, starts: np.ndarray, dtype: Type):
    """Left-fold ``op`` over contiguous segments of ``values``.

    ``op`` may be a :class:`Monoid` or a plain :class:`BinaryOp` (the ``dup``
    argument of ``build``); the fold is applied in storage order, matching
    the spec's rule that duplicates combine in sequence order.
    """
    if isinstance(op, Monoid):
        return op.reduce_segments(values, starts, dtype)
    values = dtype.cast_array(np.asarray(values))
    starts = np.asarray(starts, dtype=_INDEX)
    if starts.size == 0:
        return np.empty(0, dtype=dtype.np_dtype)
    uf = op.ufunc if isinstance(op.ufunc, np.ufunc) else None
    if uf is not None:
        return dtype.cast_array(uf.reduceat(values, starts))
    # Non-ufunc fold, vectorized across segments: advance all segments one
    # position per step, so each segment still sees a strict left-to-right
    # fold (sequence order matters — the op need not be associative).
    ends = np.append(starts[1:], values.size)
    lengths = ends - starts
    vfn = np.frompyfunc(op.fn, 2, 1)
    acc = values[starts].astype(object)
    for k in range(1, int(lengths.max())):
        active = lengths > k
        if not np.any(active):
            break
        acc[active] = vfn(acc[active], values[starts[active] + k])
    return dtype.cast_array(acc)


def group_starts(sorted_keys: np.ndarray) -> np.ndarray:
    """Offsets where each run of equal keys begins in a sorted key array."""
    if sorted_keys.size == 0:
        return np.empty(0, dtype=_INDEX)
    change = np.empty(sorted_keys.size, dtype=bool)
    change[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=change[1:])
    return np.flatnonzero(change).astype(_INDEX)


@dataclass
class SparseStore:
    """One orientation of a sparse matrix (or a sparse vector when 1 x n).

    Attributes
    ----------
    orientation:
        ROW for CSR/HyperCSR, COL for CSC/HyperCSC.
    n_major, n_minor:
        Dimensions along/across the storage direction.
    h:
        For hypersparse stores, the sorted ids of non-empty major vectors;
        ``None`` for plain CSR/CSC.
    indptr:
        Vector boundaries: length ``len(h)+1`` if hypersparse else
        ``n_major+1``.
    minor:
        Minor indices of entries, sorted within each major vector.
    values:
        Entry values, parallel to ``minor``.
    """

    orientation: Orientation
    n_major: int
    n_minor: int
    h: np.ndarray | None
    indptr: np.ndarray
    minor: np.ndarray
    values: np.ndarray

    # -- constructors ------------------------------------------------------

    @staticmethod
    def empty(
        orientation: Orientation,
        n_major: int,
        n_minor: int,
        dtype: Type,
        hyper: bool = False,
    ) -> "SparseStore":
        if hyper:
            return SparseStore(
                orientation,
                n_major,
                n_minor,
                np.empty(0, dtype=_INDEX),
                np.zeros(1, dtype=_INDEX),
                np.empty(0, dtype=_INDEX),
                np.empty(0, dtype=dtype.np_dtype),
            )
        return SparseStore(
            orientation,
            n_major,
            n_minor,
            None,
            np.zeros(n_major + 1, dtype=_INDEX),
            np.empty(0, dtype=_INDEX),
            np.empty(0, dtype=dtype.np_dtype),
        )

    @staticmethod
    def from_coo(
        orientation: Orientation,
        n_major: int,
        n_minor: int,
        major: np.ndarray,
        minor: np.ndarray,
        values: np.ndarray,
        dtype: Type,
        dup=None,
        hyper: bool = False,
        assume_sorted_unique: bool = False,
    ) -> "SparseStore":
        """Build a store from coordinate arrays.

        Duplicates are folded with ``dup`` (a BinaryOp or Monoid); if ``dup``
        is None duplicates raise :class:`InvalidValue`, matching
        ``GrB_Matrix_build`` with ``dup == NULL``.
        """
        major = np.asarray(major, dtype=_INDEX)
        minor = np.asarray(minor, dtype=_INDEX)
        values = np.asarray(values)
        if not (major.shape == minor.shape == values.shape):
            raise InvalidValue("COO arrays must have identical length")
        if assume_sorted_unique or not major.size:
            order = None
        elif engine.ENABLED:
            # engine path: presorted detection + single composite-key sort
            order = coo_sort_order(major, minor, n_major, n_minor)
        else:
            # baseline path: unconditional stable lexsort (pre-engine code)
            order = np.lexsort((minor, major))
        if order is not None:
            major, minor, values = major[order], minor[order], values[order]
            # duplicate pairs are adjacent after the sort
            change = np.empty(major.size, dtype=bool)
            change[0] = True
            np.logical_or(
                major[1:] != major[:-1], minor[1:] != minor[:-1], out=change[1:]
            )
            starts = np.flatnonzero(change).astype(_INDEX)
            if starts.size != major.size:  # duplicates present
                if dup is None:
                    raise InvalidValue("duplicate indices and no dup operator")
                values = reduce_by_segments(dup, values, starts, dtype)
                major, minor = major[starts], minor[starts]
            else:
                values = dtype.cast_array(values)
        else:
            # already sorted-unique (or caller asserted so): nothing to fold
            values = dtype.cast_array(values)

        if hyper:
            hstarts = group_starts(major)
            h = major[hstarts] if major.size else np.empty(0, dtype=_INDEX)
            indptr = np.empty(h.size + 1, dtype=_INDEX)
            indptr[:-1] = hstarts
            indptr[-1] = major.size
        else:
            h = None
            indptr = np.zeros(n_major + 1, dtype=_INDEX)
            if major.size:
                np.add.at(indptr, major + 1, 1)
                np.cumsum(indptr, out=indptr)
        return SparseStore(orientation, n_major, n_minor, h, indptr, minor, values)

    # -- basic properties --------------------------------------------------

    @property
    def hyper(self) -> bool:
        return self.h is not None

    @property
    def nvals(self) -> int:
        return int(self.minor.size)

    @property
    def nvec(self) -> int:
        """Number of (stored) major vectors."""
        return int(self.h.size) if self.hyper else self.n_major

    @property
    def nbytes(self) -> int:
        """Bytes of index+value storage: O(e) hypersparse, O(n+e) otherwise."""
        total = self.indptr.nbytes + self.minor.nbytes + self.values.nbytes
        if self.hyper:
            total += self.h.nbytes
        return total

    def check_valid(self) -> None:
        """Internal-consistency check (used by tests and GxB-style verify)."""
        if self.indptr[0] != 0 or self.indptr[-1] != self.nvals:
            raise InvalidObject("indptr endpoints corrupt")
        if np.any(np.diff(self.indptr) < 0):
            raise InvalidObject("indptr not monotone")
        if self.hyper:
            if np.any(np.diff(self.h) <= 0):
                raise InvalidObject("hyperlist not strictly increasing")
            if self.h.size and (self.h[0] < 0 or self.h[-1] >= self.n_major):
                raise InvalidObject("hyperlist out of range")
        if self.minor.size:
            if self.minor.min() < 0 or self.minor.max() >= self.n_minor:
                raise InvalidObject("minor index out of range")
        starts = self.indptr[:-1]
        ends = self.indptr[1:]
        for s, e in zip(starts, ends):  # sortedness within each vector
            seg = self.minor[s:e]
            if seg.size > 1 and np.any(np.diff(seg) <= 0):
                raise InvalidObject("minor indices unsorted or duplicated")

    # -- access patterns for kernels ---------------------------------------

    def expand_major(self) -> np.ndarray:
        """Major index of every entry (COO expansion), O(e)."""
        counts = np.diff(self.indptr)
        ids = self.h if self.hyper else np.arange(self.n_major, dtype=_INDEX)
        return np.repeat(ids, counts)

    def to_coo(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Entries as (major, minor, values), sorted major-then-minor."""
        return self.expand_major(), self.minor, self.values

    def major_ranges(self, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(start, end) positions of each requested major vector's entries.

        Missing (empty) vectors get start == end.  O(k log nvec) for
        hypersparse stores, O(k) for full stores.
        """
        rows = np.asarray(rows, dtype=_INDEX)
        if self.hyper:
            if self.h.size == 0:
                # empty store: indptr is just [0], and np.where evaluates
                # indptr[pos_c + 1] even under an all-False condition
                z = np.zeros(rows.size, dtype=_INDEX)
                return z, z.copy()
            pos = np.searchsorted(self.h, rows)
            pos_c = np.minimum(pos, self.h.size - 1)
            found = self.h[pos_c] == rows
            starts = np.where(found, self.indptr[pos_c], 0)
            ends = np.where(found, self.indptr[pos_c + 1], 0)
            return starts.astype(_INDEX), ends.astype(_INDEX)
        return self.indptr[rows], self.indptr[rows + 1]

    def major_slab(self, lo: int, hi: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Entries of major vectors ``[lo, hi)`` as (major, minor, values).

        Major indices are global; minor/values are views into the store's
        arrays (callers must copy before mutating).  Entries keep the
        store's canonical (major, minor) sort.  O(log nvec) span lookup
        for hypersparse stores, O(1) otherwise — the slab-extraction
        primitive behind :mod:`repro.graphblas.tiled`.
        """
        lo = max(0, min(int(lo), self.n_major))
        hi = max(lo, min(int(hi), self.n_major))
        if self.hyper:
            a = int(np.searchsorted(self.h, lo))
            b = int(np.searchsorted(self.h, hi))
            p0, p1 = int(self.indptr[a]), int(self.indptr[b])
            major = np.repeat(self.h[a:b], np.diff(self.indptr[a:b + 1]))
        else:
            p0, p1 = int(self.indptr[lo]), int(self.indptr[hi])
            major = np.repeat(
                np.arange(lo, hi, dtype=_INDEX),
                np.diff(self.indptr[lo:hi + 1]),
            )
        return major, self.minor[p0:p1], self.values[p0:p1]

    def vector_counts(self) -> np.ndarray:
        """Entry count of each major vector, length ``n_major`` (dense)."""
        counts = np.zeros(self.n_major, dtype=_INDEX)
        ids = self.h if self.hyper else np.arange(self.n_major, dtype=_INDEX)
        counts[ids] = np.diff(self.indptr)
        return counts

    # -- conversions -------------------------------------------------------

    def with_orientation(self, orientation: Orientation) -> "SparseStore":
        """Convert to the requested orientation (O(e log e) sort if flipped)."""
        if orientation == self.orientation:
            return self
        major, minor, values = self.to_coo()
        return SparseStore.from_coo(
            orientation,
            self.n_minor,
            self.n_major,
            minor,
            major,
            values,
            _dtype_of(values),
            hyper=self.hyper,
        )

    def transposed(self) -> "SparseStore":
        """O(1) logical transpose: same arrays, flipped orientation."""
        return SparseStore(
            self.orientation.flipped,
            self.n_major,
            self.n_minor,
            self.h,
            self.indptr,
            self.minor,
            self.values,
        )

    def to_hyper(self) -> "SparseStore":
        if self.hyper:
            return self
        counts = np.diff(self.indptr)
        nonempty = np.flatnonzero(counts).astype(_INDEX)
        indptr = np.empty(nonempty.size + 1, dtype=_INDEX)
        indptr[0] = 0
        np.cumsum(counts[nonempty], out=indptr[1:])
        return SparseStore(
            self.orientation,
            self.n_major,
            self.n_minor,
            nonempty,
            indptr,
            self.minor,
            self.values,
        )

    def to_full_pointer(self) -> "SparseStore":
        if not self.hyper:
            return self
        indptr = np.zeros(self.n_major + 1, dtype=_INDEX)
        counts = np.diff(self.indptr)
        indptr[self.h + 1] = counts
        np.cumsum(indptr, out=indptr)
        return SparseStore(
            self.orientation,
            self.n_major,
            self.n_minor,
            None,
            indptr,
            self.minor,
            self.values,
        )

    def copy(self) -> "SparseStore":
        return SparseStore(
            self.orientation,
            self.n_major,
            self.n_minor,
            None if self.h is None else self.h.copy(),
            self.indptr.copy(),
            self.minor.copy(),
            self.values.copy(),
        )


def _dtype_of(values: np.ndarray) -> Type:
    from .types import lookup_type

    return lookup_type(values.dtype)
