"""The engine-independent front half of every Table-I operation.

Each GraphBLAS operation splits cleanly into two halves:

1. a *planning* half that is identical no matter which engine runs the
   kernel — resolve string names to operator objects (ops, monoids,
   semirings, accumulators), apply descriptor flags, validate shapes,
   domains and index sets, and compute the output type; and
2. a *kernel* half that actually computes — the optimized sparse engine,
   the dense spec-literal mimic, a scipy.sparse bridge, or any future
   backend (GPU, distributed).

This module is half 1.  Every planner returns a typed :class:`OpPlan`
carrying the resolved pieces; :mod:`repro.graphblas.backends` routes the
plan to a :class:`~repro.graphblas.backends.KernelBackend`.  The split is
what the paper's testing methodology (section II.A) implies: two engines
can only be compared pattern-for-pattern and value-for-value if everything
*around* the kernel — masks, accumulators, descriptors, typecasting rules —
is decided once, in one place.

The resolvers here are the canonical name→object lookups for the whole
package; :mod:`repro.graphblas.operations` and the pygb DSL both use them
rather than re-implementing their own.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from . import governor, telemetry
from .descriptor import Descriptor, desc as _desc
from .errors import (
    DimensionMismatch,
    DomainMismatch,
    IndexOutOfBounds,
    InvalidValue,
)
from .matrix import Matrix
from .monoid import Monoid, monoid as _monoid
from .ops import (
    BinaryOp,
    INDEXUNARY_OPS,
    IndexUnaryOp,
    UnaryOp,
    binary as _binary,
    indexunary as _indexunary,
    unary as _unary,
)
from .semiring import Semiring, semiring as _semiring
from .types import Type, lookup_type
from .vector import Vector

__all__ = [
    "ALL",
    "OpPlan",
    "TABLE1_OPS",
    "resolve_descriptor",
    "resolve_accum",
    "resolve_binary",
    "resolve_ewise_op",
    "resolve_semiring",
    "resolve_monoid",
    "resolve_unary",
    "resolve_indexunary",
    "resolve_index",
    "resolver_cache_stats",
    "reset_resolver_cache",
    "plan_mxm",
    "plan_mxv",
    "plan_vxm",
    "plan_ewise_add",
    "plan_ewise_mult",
    "plan_apply",
    "plan_select",
    "plan_reduce_rowwise",
    "plan_reduce_scalar",
    "plan_transpose",
    "plan_extract",
    "plan_assign",
    "plan_subassign",
    "plan_kronecker",
]

_INDEX = np.int64

# The Table-I kernel surface every backend must serve.
TABLE1_OPS = (
    "mxm",
    "mxv",
    "vxm",
    "ewise_add",
    "ewise_mult",
    "apply",
    "select",
    "reduce_rowwise",
    "reduce_scalar",
    "transpose",
    "extract",
    "assign",
    "subassign",
    "kronecker",
)


class _All:
    """``GrB_ALL``: select every index of a dimension."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ALL"


ALL = _All()


# --------------------------------------------------------------------------
# canonical resolvers (name -> operator object)
# --------------------------------------------------------------------------

# String-spec resolutions are memoized: the resolved operator objects are
# immutable registry singletons, and hot loops (BFS, PageRank iterations)
# re-resolve the same handful of names on every call.  Non-string specs
# (already-resolved objects, user-defined ops) bypass the cache.
_resolve_cache: dict[tuple[str, str], object] = {}
_resolve_stats = {"hits": 0, "misses": 0}


def _cached_resolve(kind: str, spec, resolver):
    if not isinstance(spec, str):
        return resolver(spec)
    key = (kind, spec.upper())
    hit = _resolve_cache.get(key)
    if hit is not None:
        _resolve_stats["hits"] += 1
        if telemetry.ENABLED:
            telemetry.tally("plan.resolve_cache", calls=1)
        return hit
    obj = resolver(spec)
    _resolve_cache[key] = obj
    _resolve_stats["misses"] += 1
    return obj


def resolver_cache_stats() -> dict:
    """Hit/miss counters and size of the name->operator memo table."""
    stats = dict(_resolve_stats)
    stats["size"] = len(_resolve_cache)
    return stats


def reset_resolver_cache() -> None:
    _resolve_cache.clear()
    _resolve_stats["hits"] = 0
    _resolve_stats["misses"] = 0


def resolve_descriptor(spec) -> Descriptor:
    """Resolve a Descriptor from a Descriptor, None, or predefined name."""
    if spec is None:
        return _desc(None)
    return _cached_resolve("desc", spec, _desc)


def resolve_accum(spec) -> BinaryOp | None:
    """Resolve an accumulator: None stays None, else a BinaryOp."""
    return None if spec is None else _cached_resolve("binary", spec, _binary)


def resolve_binary(spec) -> BinaryOp:
    """Resolve a BinaryOp from an op object or (case-insensitive) name."""
    return _cached_resolve("binary", spec, _binary)


def resolve_ewise_op(spec) -> BinaryOp:
    """eWise ops accept a BinaryOp, Monoid (its op), or Semiring (its add)."""
    if isinstance(spec, Semiring):
        return spec.add.op
    if isinstance(spec, Monoid):
        return spec.op
    return _cached_resolve("binary", spec, _binary)


def resolve_semiring(spec) -> Semiring:
    """Resolve a Semiring from a Semiring, name, or "add_mult" string."""
    return _cached_resolve("semiring", spec, _semiring)


def resolve_monoid(spec) -> Monoid:
    """Resolve a Monoid from a Monoid or (case-insensitive) name."""
    return _cached_resolve("monoid", spec, _monoid)


def resolve_unary(spec) -> UnaryOp:
    """Resolve a UnaryOp from an op object or (case-insensitive) name."""
    return _cached_resolve("unary", spec, _unary)


def resolve_indexunary(spec) -> IndexUnaryOp:
    """Resolve an IndexUnaryOp from an op object or name."""
    return _cached_resolve("indexunary", spec, _indexunary)


def resolve_index(I, dim: int) -> np.ndarray:
    """Resolve an index specification (ALL, slice, int, array) to indices."""
    if I is None or isinstance(I, _All):
        return np.arange(dim, dtype=_INDEX)
    if isinstance(I, slice):
        return np.arange(*I.indices(dim), dtype=_INDEX)
    if np.isscalar(I):
        I = [I]
    I = np.asarray(I, dtype=_INDEX)
    if I.size and (I.min() < 0 or I.max() >= dim):
        raise IndexOutOfBounds(f"index set exceeds dimension {dim}")
    return I


def _is_all(I) -> bool:
    return I is None or isinstance(I, _All)


def _check_write(out, mask, accum) -> None:
    """The shared write step's validation, hoisted so every engine agrees.

    Messages match :mod:`repro.graphblas.mask` exactly; raising at plan
    time keeps error behavior identical across backends.
    """
    if accum is not None and accum.positional:
        raise DomainMismatch("positional ops cannot be accumulators")
    if mask is None:
        return
    if isinstance(out, Vector):
        if mask.size != out.size:
            raise DimensionMismatch(
                f"mask size {mask.size} != output size {out.size}"
            )
    elif mask.shape != out.shape:
        raise DimensionMismatch(
            f"mask shape {mask.shape} != output shape {out.shape}"
        )


def _mat_shape(A: Matrix, transposed: bool) -> tuple[int, int]:
    return (A.ncols, A.nrows) if transposed else A.shape


# --------------------------------------------------------------------------
# the plan object
# --------------------------------------------------------------------------

@dataclass
class OpPlan:
    """A fully resolved, validated Table-I operation, ready for any backend.

    Attributes
    ----------
    op:
        Operation name; also the :class:`KernelBackend` method invoked.
    out:
        The output container (Matrix or Vector); None for ``reduce_scalar``,
        which returns a Python value.
    args:
        The input containers/scalars in positional order.
    desc:
        The resolved :class:`~repro.graphblas.descriptor.Descriptor`.
    mask, accum:
        The (unresolved mask container, resolved accumulator) pair of the
        shared accum-then-mask write step.
    operator:
        The resolved algebraic object: Semiring, BinaryOp, Monoid, UnaryOp,
        or IndexUnaryOp depending on ``op``.
    out_type:
        Domain of the intermediate result T (None where not applicable).
    params:
        Engine-independent op-specific extras (resolved index sets, mxv
        method, apply binding, ...).  Backends read what they need and are
        free to ignore hints (e.g. the reference engine ignores ``method``).
    """

    op: str
    out: Matrix | Vector | None
    args: tuple
    desc: Descriptor
    mask: Matrix | Vector | None = None
    accum: BinaryOp | None = None
    operator: object | None = None
    out_type: Type | None = None
    params: dict = field(default_factory=dict)

    def kernel_signature(self) -> tuple:
        """The tuple both kernel tiers specialize on.

        ``(add, mult, arg type names, out type, mask kind, accum)`` —
        the engine's closure cache and the compiled tier's JIT cache key
        off (subsets of) this, and backend ``supports()`` checks read it
        instead of re-deriving the fields from the operator objects.
        Non-semiring operators yield None add/mult.
        """
        op = self.operator
        add = getattr(getattr(op, "add", None), "name", None)
        mult = getattr(getattr(op, "mult", None), "name", None)
        arg_types = tuple(
            a.dtype.name if hasattr(a, "dtype") else type(a).__name__
            for a in self.args
        )
        if self.mask is None:
            mask_kind = "none"
        else:
            mask_kind = "comp" if self.desc.complement_mask else "mask"
        return (
            add,
            mult,
            arg_types,
            self.out_type.name if self.out_type is not None else None,
            mask_kind,
            self.accum.name if self.accum is not None else None,
        )


def _admitted(*args, **kwargs) -> OpPlan:
    """Build an OpPlan and submit it to the execution governor.

    Every planner funnels its finished plan through here — after all
    shape/domain validation, before any backend sees it — so a plan the
    governor rejects (budget, deadline, cancellation) raises its typed
    error without allocating the output, leaving all operands valid.
    """
    p = OpPlan(*args, **kwargs)
    if governor.ACTIVE:
        governor.admit(p)
    return p


# --------------------------------------------------------------------------
# planners — one per Table-I operation
# --------------------------------------------------------------------------

def plan_mxm(C, A, B, semiring="PLUS_TIMES", *, mask=None, accum=None,
             desc=None, method: str = "auto") -> OpPlan:
    d = resolve_descriptor(desc)
    sr = resolve_semiring(semiring)
    accum = resolve_accum(accum)
    nra, nca = _mat_shape(A, d.transpose_a)
    nrb, ncb = _mat_shape(B, d.transpose_b)
    if nca != nrb:
        raise DimensionMismatch(f"inner dims differ: {nca} vs {nrb}")
    if C.shape != (nra, ncb):
        raise DimensionMismatch(f"output is {C.shape}, expected {(nra, ncb)}")
    _check_write(C, mask, accum)
    return _admitted(
        "mxm", C, (A, B), d, mask=mask, accum=accum, operator=sr,
        out_type=sr.out_type(A.dtype, B.dtype),
        params={"method": method, "inner": nca},
    )


def _plan_matvec(op, w, A, u, semiring, mask, accum, desc, method,
                 optimizer) -> OpPlan:
    is_mxv = op == "mxv"
    d = resolve_descriptor(desc)
    sr = resolve_semiring(semiring)
    accum = resolve_accum(accum)
    # effective transpose: vxm(u, A) is mxv with A^T, so fold the flag
    transposed = d.transpose_a if is_mxv else not d.transpose_a
    inner = A.nrows if transposed else A.ncols
    outer = A.ncols if transposed else A.nrows
    if u.size != inner:
        raise DimensionMismatch(f"vector size {u.size}, matrix inner dim {inner}")
    if w.size != outer:
        raise DimensionMismatch(f"output size {w.size}, matrix outer dim {outer}")
    if method not in ("auto", "push", "pull", "tiled"):
        raise InvalidValue(f"unknown mxv method {method!r}")
    _check_write(w, mask, accum)
    out_type = (
        sr.out_type(A.dtype, u.dtype) if is_mxv else sr.out_type(u.dtype, A.dtype)
    )
    args = (A, u) if is_mxv else (u, A)
    return _admitted(
        op, w, args, d, mask=mask, accum=accum, operator=sr, out_type=out_type,
        params={
            "method": method,
            "optimizer": optimizer,
            "transposed": transposed,
            "is_mxv": is_mxv,
        },
    )


def plan_mxv(w, A, u, semiring="PLUS_TIMES", *, mask=None, accum=None,
             desc=None, method="auto", optimizer=None) -> OpPlan:
    return _plan_matvec("mxv", w, A, u, semiring, mask, accum, desc, method,
                        optimizer)


def plan_vxm(w, u, A, semiring="PLUS_TIMES", *, mask=None, accum=None,
             desc=None, method="auto", optimizer=None) -> OpPlan:
    return _plan_matvec("vxm", w, A, u, semiring, mask, accum, desc, method,
                        optimizer)


def _plan_ewise(op_name, which, C, A, B, op, mask, accum, desc) -> OpPlan:
    d = resolve_descriptor(desc)
    bop = resolve_ewise_op(op)
    accum = resolve_accum(accum)
    if bop.positional:
        raise DomainMismatch(f"positional ops are not valid in {which}")
    if isinstance(A, Vector):
        if A.size != B.size or C.size != A.size:
            raise DimensionMismatch(f"{which} vector sizes differ")
        is_vector = True
    else:
        shape_a = _mat_shape(A, d.transpose_a)
        shape_b = _mat_shape(B, d.transpose_b)
        if shape_a != shape_b or C.shape != shape_a:
            raise DimensionMismatch(f"{which} matrix shapes differ")
        is_vector = False
    _check_write(C, mask, accum)
    return _admitted(
        op_name, C, (A, B), d, mask=mask, accum=accum, operator=bop,
        out_type=bop.out_type(A.dtype, B.dtype),
        params={"is_vector": is_vector},
    )


def plan_ewise_add(C, A, B, op="PLUS", *, mask=None, accum=None, desc=None) -> OpPlan:
    return _plan_ewise("ewise_add", "eWiseAdd", C, A, B, op, mask, accum, desc)


def plan_ewise_mult(C, A, B, op="TIMES", *, mask=None, accum=None, desc=None) -> OpPlan:
    return _plan_ewise("ewise_mult", "eWiseMult", C, A, B, op, mask, accum, desc)


def plan_apply(C, A, op="IDENTITY", *, left=None, right=None, thunk=None,
               mask=None, accum=None, desc=None) -> OpPlan:
    """``GrB_apply`` planning: classify the operator form and bind arguments.

    ``op`` may be a UnaryOp; a BinaryOp with ``left`` or ``right`` bound
    (``GrB_apply_BinaryOp1st/2nd``); or an IndexUnaryOp with ``thunk``.
    """
    d = resolve_descriptor(desc)
    accum = resolve_accum(accum)
    is_vec = isinstance(A, Vector)
    if is_vec:
        if C.size != A.size:
            raise DimensionMismatch("apply vector sizes differ")
    elif C.shape != _mat_shape(A, d.transpose_a):
        raise DimensionMismatch("apply matrix shapes differ")

    if isinstance(op, IndexUnaryOp) or (
        isinstance(op, str) and op.upper() in INDEXUNARY_OPS
    ):
        iu = resolve_indexunary(op)
        kind = "indexunary"
        operator = iu
        out_type = iu.out_type(A.dtype)
    elif left is not None or right is not None:
        if left is not None and right is not None:
            raise InvalidValue("bind only one side of the binary op")
        bop = resolve_binary(op)
        operator = bop
        if left is not None:
            kind = "bind1st"
            out_type = bop.out_type(lookup_type(np.asarray(left).dtype), A.dtype)
        else:
            kind = "bind2nd"
            out_type = bop.out_type(A.dtype, lookup_type(np.asarray(right).dtype))
    else:
        uop = resolve_unary(op)
        kind = "unary"
        operator = uop
        out_type = uop.out_type(A.dtype)

    _check_write(C, mask, accum)
    return _admitted(
        "apply", C, (A,), d, mask=mask, accum=accum, operator=operator,
        out_type=out_type,
        params={
            "kind": kind,
            "left": left,
            "right": right,
            "thunk": thunk,
            "is_vector": is_vec,
        },
    )


def plan_select(C, A, op, thunk=0, *, mask=None, accum=None, desc=None) -> OpPlan:
    d = resolve_descriptor(desc)
    accum = resolve_accum(accum)
    iu = resolve_indexunary(op)
    if isinstance(A, Vector):
        if C.size != A.size:
            raise DimensionMismatch("select vector sizes differ")
        is_vector = True
    else:
        if C.shape != _mat_shape(A, d.transpose_a):
            raise DimensionMismatch("select matrix shapes differ")
        is_vector = False
    _check_write(C, mask, accum)
    return _admitted(
        "select", C, (A,), d, mask=mask, accum=accum, operator=iu,
        out_type=A.dtype, params={"thunk": thunk, "is_vector": is_vector},
    )


def plan_reduce_rowwise(w, A, op="PLUS", *, mask=None, accum=None, desc=None) -> OpPlan:
    d = resolve_descriptor(desc)
    mon = resolve_monoid(op)
    accum = resolve_accum(accum)
    nr, _ = _mat_shape(A, d.transpose_a)
    if w.size != nr:
        raise DimensionMismatch(f"output size {w.size}, expected {nr}")
    _check_write(w, mask, accum)
    return _admitted(
        "reduce_rowwise", w, (A,), d, mask=mask, accum=accum, operator=mon,
        out_type=A.dtype,
    )


def plan_reduce_scalar(A, op="PLUS", *, accum=None, init=None) -> OpPlan:
    mon = resolve_monoid(op)
    return _admitted(
        "reduce_scalar", None, (A,), Descriptor(), accum=resolve_accum(accum),
        operator=mon, out_type=A.dtype, params={"init": init},
    )


def plan_transpose(C, A, *, mask=None, accum=None, desc=None) -> OpPlan:
    """Per the C API's quirk, the INP0 flag cancels the transpose."""
    d = resolve_descriptor(desc)
    accum = resolve_accum(accum)
    transposed = not d.transpose_a
    if C.shape != _mat_shape(A, transposed):
        raise DimensionMismatch("transpose output shape mismatch")
    _check_write(C, mask, accum)
    return _admitted(
        "transpose", C, (A,), d, mask=mask, accum=accum, out_type=A.dtype,
        params={"transposed": transposed},
    )


def plan_extract(C, A, I=ALL, J=ALL, *, mask=None, accum=None, desc=None) -> OpPlan:
    d = resolve_descriptor(desc)
    accum = resolve_accum(accum)
    params: dict = {}
    if isinstance(A, Vector):
        I_res = resolve_index(I, A.size)
        if C.size != I_res.size:
            raise DimensionMismatch("extract output size mismatch")
        params.update(kind="vector", I=I_res)
    else:
        nr, nc = _mat_shape(A, d.transpose_a)
        col_extract = (
            isinstance(C, Vector) and np.isscalar(J) and not isinstance(J, _All)
        )
        if col_extract:
            I_res = resolve_index(I, nr)
            j = int(J)
            if not 0 <= j < nc:
                raise IndexOutOfBounds(f"column {j} outside [0,{nc})")
            params.update(kind="col", I=I_res, j=j)
        else:
            I_res = resolve_index(I, nr)
            J_res = resolve_index(J, nc)
            if C.shape != (I_res.size, J_res.size):
                raise DimensionMismatch(
                    f"extract output is {C.shape}, expected "
                    f"{(I_res.size, J_res.size)}"
                )
            params.update(kind="matrix", I=I_res, J=J_res)
    _check_write(C, mask, accum)
    return _admitted(
        "extract", C, (A,), d, mask=mask, accum=accum, out_type=A.dtype,
        params=params,
    )


def plan_assign(C, A, I=ALL, J=ALL, *, mask=None, accum=None, desc=None) -> OpPlan:
    d = resolve_descriptor(desc)
    accum = resolve_accum(accum)
    _check_write(C, mask, accum)
    params: dict = {}

    # The ubiquitous "masked fill" (e.g. BFS level stamping): C<mask> = scalar
    # over the full region with no accum/complement/replace.  Flag it so the
    # optimized engine can write the scalar exactly at the mask's admitted
    # coordinates without materializing index sets.
    if (
        not isinstance(A, (Matrix, Vector))
        and _is_all(I)
        and _is_all(J)
        and mask is not None
        and accum is None
        and not d.complement_mask
        and not d.replace
    ):
        params["masked_fill"] = True
        return _admitted(
            "assign", C, (A,), d, mask=mask, accum=accum,
            out_type=C.dtype, params=params,
        )

    if isinstance(C, Vector):
        I_res = resolve_index(I, C.size)
        if isinstance(A, Vector):
            if A.size != I_res.size:
                raise DimensionMismatch("assign input length != index count")
            ai, _ = A.extract_tuples()
            mapped = I_res[ai]
        else:
            mapped = I_res
        if np.unique(mapped).size != mapped.size:
            raise InvalidValue("duplicate indices in assign")
        params.update(I=I_res)
    else:
        I_res = resolve_index(I, C.nrows)
        J_res = resolve_index(J, C.ncols)
        if np.unique(I_res).size != I_res.size or np.unique(J_res).size != J_res.size:
            raise InvalidValue("duplicate indices in assign")
        if isinstance(A, Matrix):
            if _mat_shape(A, d.transpose_a) != (I_res.size, J_res.size):
                raise DimensionMismatch("assign input shape != region shape")
        elif isinstance(A, Vector):
            row_assign = I_res.size == 1 and A.size == J_res.size
            col_assign = J_res.size == 1 and A.size == I_res.size
            if not row_assign and not col_assign:
                raise DimensionMismatch("vector assign needs a single row or column")
        params.update(I=I_res, J=J_res)
    return _admitted(
        "assign", C, (A,), d, mask=mask, accum=accum, out_type=C.dtype,
        params=params,
    )


def plan_subassign(C, A, I=ALL, J=ALL, *, mask=None, accum=None, desc=None) -> OpPlan:
    """``GxB_subassign``: the mask has the I x J *region's* dimensions."""
    d = resolve_descriptor(desc)
    accum = resolve_accum(accum)
    if accum is not None and accum.positional:
        raise DomainMismatch("positional ops cannot be accumulators")
    params: dict = {}
    if isinstance(C, Vector):
        I_res = resolve_index(I, C.size)
        if np.unique(I_res).size != I_res.size:
            raise InvalidValue("duplicate indices in subassign")
        if mask is not None and mask.size != I_res.size:
            raise DimensionMismatch("subassign mask must have region size")
        if isinstance(A, Vector) and A.size != I_res.size:
            raise DimensionMismatch("subassign input length != index count")
        params.update(I=I_res)
    else:
        I_res = resolve_index(I, C.nrows)
        J_res = resolve_index(J, C.ncols)
        if np.unique(I_res).size != I_res.size or np.unique(J_res).size != J_res.size:
            raise InvalidValue("duplicate indices in subassign")
        if mask is not None and mask.shape != (I_res.size, J_res.size):
            raise DimensionMismatch("subassign mask must have region shape")
        if isinstance(A, Matrix):
            if _mat_shape(A, d.transpose_a) != (I_res.size, J_res.size):
                raise DimensionMismatch("subassign input shape != region shape")
        elif isinstance(A, Vector):
            row_assign = I_res.size == 1 and A.size == J_res.size
            col_assign = J_res.size == 1 and A.size == I_res.size
            if not row_assign and not col_assign:
                raise DimensionMismatch("vector subassign needs one row or column")
        params.update(I=I_res, J=J_res)
    return _admitted(
        "subassign", C, (A,), d, mask=mask, accum=accum, out_type=C.dtype,
        params=params,
    )


def plan_kronecker(C, A, B, op="TIMES", *, mask=None, accum=None, desc=None) -> OpPlan:
    d = resolve_descriptor(desc)
    accum = resolve_accum(accum)
    bop = resolve_ewise_op(op)
    nra, nca = _mat_shape(A, d.transpose_a)
    nrb, ncb = _mat_shape(B, d.transpose_b)
    if C.shape != (nra * nrb, nca * ncb):
        raise DimensionMismatch("kronecker output shape mismatch")
    _check_write(C, mask, accum)
    return _admitted(
        "kronecker", C, (A, B), d, mask=mask, accum=accum, operator=bop,
        out_type=bop.out_type(A.dtype, B.dtype),
    )
