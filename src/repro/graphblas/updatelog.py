"""The shared deferred-update log and its settled delta batches.

The paper's section II.A machinery — *pending tuples* (fast unordered
insertions) and *zombies* (entries tagged for deferred deletion) — used to
be a private implementation detail of :class:`Matrix` and :class:`Vector`,
interleaved with their assembly code and discarded at ``wait()``.  This
module makes it a first-class layer:

* :class:`UpdateLog` — one ordered log of insert/delete actions shared by
  matrices and vectors.  Ordering matters when both action kinds touch the
  same coordinate: the *last* action wins, exactly as if each had been
  applied eagerly.
* :class:`ResolvedLog` — the log reduced to one surviving action per
  coordinate (the sort/dedup pass both containers previously inlined),
  including the sortedness fast path exploited by bulk loads.
* :class:`DeltaBatch` — what an assembled window *was*: the surviving
  insertions, the entries they displaced, and the deletions that landed,
  exposed as a hypersparse delta (rows/cols touched + values) instead of
  being forgotten.  This is the unit consumed by incremental maintenance
  (``repro.lagraph.Graph`` cached-property patching, ``repro.stream``
  algorithm maintainers) — the hypersparse update block of
  arXiv 2509.18984.

The module also hosts the pending-work depth registry behind the
``graphblas_pending_tuples`` / ``graphblas_zombies`` observability gauges:
containers register themselves (weakly) on their first deferred action
while tracking is enabled, so a metrics scrape can report how much
unassembled work the process is carrying.
"""

from __future__ import annotations

import weakref

import numpy as np

__all__ = [
    "UpdateLog",
    "ResolvedLog",
    "DeltaBatch",
    "coords_isin",
    "enable_depth_tracking",
    "depth_tracking_enabled",
    "register_for_depth",
    "pending_depth",
    "zombie_depth",
]

_INDEX = np.int64


def coords_isin(
    rows: np.ndarray,
    cols: np.ndarray,
    qi: np.ndarray,
    qj: np.ndarray,
    ncols: int,
) -> np.ndarray:
    """Boolean mask of which (rows, cols) pairs appear in (qi, qj)."""
    if rows.size == 0 or qi.size == 0:
        return np.zeros(rows.size, dtype=bool)
    if ncols <= 2**31:  # composite key fits comfortably in int64
        key = rows * np.int64(ncols) + cols
        qkey = qi * np.int64(ncols) + qj
        return np.isin(key, qkey)
    # huge dimensions: sort query pairs and binary-search both coordinates
    order = np.lexsort((qj, qi))
    qi, qj = qi[order], qj[order]
    lo = np.searchsorted(qi, rows, side="left")
    hi = np.searchsorted(qi, rows, side="right")
    out = np.zeros(rows.size, dtype=bool)
    for k in np.flatnonzero(hi > lo):
        seg = qj[lo[k] : hi[k]]
        p = np.searchsorted(seg, cols[k])
        out[k] = p < seg.size and seg[p] == cols[k]
    return out


class ResolvedLog:
    """One surviving action per coordinate, in assembly-ready form.

    ``i``/``j`` are the surviving coordinates (``j`` is None for vectors),
    ``ins`` masks which of them are insertions (the rest are deletions),
    ``values`` holds the cast insertion values (aligned with ``i[ins]``),
    and ``fast`` records that the raw log was already strictly sorted,
    duplicate-free, and zombie-free — the bulk-load fast path where the
    append order *is* the assembly order.
    """

    __slots__ = ("i", "j", "ins", "values", "fast")

    def __init__(self, i, j, ins, values, fast):
        self.i = i
        self.j = j
        self.ins = ins
        self.values = values
        self.fast = fast


class UpdateLog:
    """Ordered log of deferred updates: pending tuples and zombies.

    One list quartet (``i``, ``j``, ``v``, ``deleted``) in append order;
    ``j`` is None for vector logs.  ``from_epoch`` remembers the owner's
    settled mutation epoch when the current run of appends began, so the
    :class:`DeltaBatch` assembled from this log can be chained onto the
    previous one.
    """

    __slots__ = ("i", "j", "v", "deleted", "from_epoch")

    def __init__(self, *, matrix: bool = True):
        self.i: list[int] = []
        self.j: list[int] | None = [] if matrix else None
        self.v: list = []
        self.deleted: list[bool] = []
        self.from_epoch: int = 0

    # -- mutation ----------------------------------------------------------

    def append(self, i: int, j: int | None, value, is_delete: bool) -> None:
        self.i.append(i)
        if self.j is not None:
            self.j.append(j)
        self.v.append(value)
        self.deleted.append(is_delete)

    def extend(self, i, j, values, deleted) -> None:
        """Append a batch of actions (vectorized setElement/removeElement)."""
        self.i.extend(i)
        if self.j is not None:
            self.j.extend(j)
        self.v.extend(values)
        self.deleted.extend(deleted)

    def pop(self) -> None:
        """Un-append the newest action (blocking-mode rollback)."""
        del self.i[-1]
        if self.j is not None:
            del self.j[-1]
        del self.v[-1]
        del self.deleted[-1]

    def truncate(self, length: int) -> None:
        """Drop every action past ``length`` (batch rollback)."""
        del self.i[length:]
        if self.j is not None:
            del self.j[length:]
        del self.v[length:]
        del self.deleted[length:]

    def clear(self) -> None:
        self.i, self.v, self.deleted = [], [], []
        if self.j is not None:
            self.j = []

    # -- inspection --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.i)

    def __bool__(self) -> bool:
        return bool(self.i)

    @property
    def npending(self) -> int:
        """Logged insertions (the paper's *pending tuples*)."""
        return sum(1 for d in self.deleted if not d)

    @property
    def nzombies(self) -> int:
        """Logged deletions (the paper's *zombies*)."""
        return sum(1 for d in self.deleted if d)

    # -- resolution --------------------------------------------------------

    def resolve(self, dtype, *, major_is_row: bool | None = None) -> ResolvedLog:
        """Reduce the log to one surviving action per coordinate.

        The last log action per coordinate wins (lexsort is stable, so the
        final occurrence in append order is the last in its group).
        ``major_is_row`` selects which coordinate leads the sortedness
        fast-path check (the owner's storage orientation); None means a
        vector log.
        """
        pi = np.asarray(self.i, dtype=_INDEX)
        pdel = np.asarray(self.deleted, dtype=bool)
        if self.j is None:
            fast = not pdel.any() and (
                pi.size == 1 or bool(np.all(pi[1:] > pi[:-1]))
            )
            if fast:
                return ResolvedLog(
                    pi,
                    None,
                    np.ones(pi.size, dtype=bool),
                    dtype.cast_array(np.asarray(self.v)),
                    True,
                )
            order = np.argsort(pi, kind="stable")
            pi_s = pi[order]
            last = np.empty(pi_s.size, dtype=bool)
            last[-1] = True
            np.not_equal(pi_s[1:], pi_s[:-1], out=last[:-1])
            sel = order[last]
            li, ldel = pi[sel], pdel[sel]
            ins = ~ldel
            if np.any(ins):
                lv = dtype.cast_array(np.asarray([self.v[k] for k in sel[ins]]))
            else:
                lv = np.empty(0, dtype=dtype.np_dtype)
            return ResolvedLog(li, None, ins, lv, False)

        pj = np.asarray(self.j, dtype=_INDEX)
        pmaj, pmin = (pi, pj) if major_is_row else (pj, pi)
        fast = not pdel.any() and (
            pi.size == 1
            or bool(
                np.all(
                    (pmaj[1:] > pmaj[:-1])
                    | ((pmaj[1:] == pmaj[:-1]) & (pmin[1:] > pmin[:-1]))
                )
            )
        )
        if fast:
            return ResolvedLog(
                pi,
                pj,
                np.ones(pi.size, dtype=bool),
                dtype.cast_array(np.asarray(self.v)),
                True,
            )
        order = np.lexsort((pj, pi))
        pi_s, pj_s = pi[order], pj[order]
        last = np.empty(pi_s.size, dtype=bool)
        last[-1] = True
        np.logical_or(pi_s[1:] != pi_s[:-1], pj_s[1:] != pj_s[:-1], out=last[:-1])
        sel = order[last]
        li, lj, ldel = pi[sel], pj[sel], pdel[sel]
        ins = ~ldel
        if np.any(ins):
            lv = dtype.cast_array(np.asarray([self.v[k] for k in sel[ins]]))
        else:
            lv = np.empty(0, dtype=dtype.np_dtype)
        return ResolvedLog(li, lj, ins, lv, False)


_EMPTY_I = np.empty(0, dtype=_INDEX)


class DeltaBatch:
    """One assembled update window, as a hypersparse delta.

    Everything ``wait()`` learns while merging the update log into the
    store, kept instead of discarded:

    * ``ins_rows/ins_cols/ins_values`` — the surviving insertions (the
      entries now present at those coordinates);
    * ``del_rows/del_cols`` — coordinates a surviving deletion landed on
      (whether or not an entry actually existed there);
    * ``prev_rows/prev_cols/prev_values`` — the stored entries the window
      displaced (each was either *overwritten* by an insertion or *killed*
      by a deletion).

    ``epoch_from``/``epoch_to`` chain consecutive batches: a consumer that
    cached derived state at epoch E can patch forward through every batch
    whose chain starts at E and ends at the container's current epoch.
    """

    __slots__ = (
        "nrows",
        "ncols",
        "dtype",
        "ins_rows",
        "ins_cols",
        "ins_values",
        "del_rows",
        "del_cols",
        "prev_rows",
        "prev_cols",
        "prev_values",
        "epoch_from",
        "epoch_to",
        "_ins_existed",
    )

    def __init__(
        self,
        nrows,
        ncols,
        dtype,
        ins_rows,
        ins_cols,
        ins_values,
        del_rows,
        del_cols,
        prev_rows,
        prev_cols,
        prev_values,
        epoch_from,
        epoch_to,
    ):
        self.nrows = nrows
        self.ncols = ncols
        self.dtype = dtype
        self.ins_rows = ins_rows
        self.ins_cols = ins_cols
        self.ins_values = ins_values
        self.del_rows = del_rows
        self.del_cols = del_cols
        self.prev_rows = prev_rows
        self.prev_cols = prev_cols
        self.prev_values = prev_values
        self.epoch_from = epoch_from
        self.epoch_to = epoch_to
        self._ins_existed = None

    def __len__(self) -> int:
        return int(self.ins_rows.size + self.del_rows.size)

    def _existed(self) -> np.ndarray:
        """Mask over insertions: did the coordinate hold an entry before?"""
        if self._ins_existed is None:
            self._ins_existed = coords_isin(
                self.ins_rows, self.ins_cols,
                self.prev_rows, self.prev_cols, self.ncols,
            )
        return self._ins_existed

    def new_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Insertions at coordinates that held no entry before."""
        fresh = ~self._existed()
        return self.ins_rows[fresh], self.ins_cols[fresh], self.ins_values[fresh]

    def overwritten_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Insertions that replaced an existing entry (value change only)."""
        hit = self._existed()
        return self.ins_rows[hit], self.ins_cols[hit], self.ins_values[hit]

    def removed_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Previously stored entries physically removed by this window.

        Zombie actions on coordinates that never held an entry are no-ops
        and do not appear here.
        """
        if self.prev_rows.size == 0:
            return _EMPTY_I, _EMPTY_I, self.prev_values
        killed = ~coords_isin(
            self.prev_rows, self.prev_cols,
            self.ins_rows, self.ins_cols, self.ncols,
        )
        return (
            self.prev_rows[killed],
            self.prev_cols[killed],
            self.prev_values[killed],
        )

    def touched_rows(self) -> np.ndarray:
        """Sorted unique row indices this window wrote or deleted at."""
        return np.unique(np.concatenate([self.ins_rows, self.del_rows]))

    def touched_cols(self) -> np.ndarray:
        """Sorted unique column indices this window wrote or deleted at."""
        return np.unique(np.concatenate([self.ins_cols, self.del_cols]))

    def as_matrix(self):
        """The surviving insertions as a hypersparse Matrix (the window's
        delta block, per arXiv 2509.18984)."""
        from .formats import Orientation, SparseStore
        from .matrix import Matrix

        m = Matrix(self.dtype, self.nrows, self.ncols)
        m._store = SparseStore.from_coo(
            Orientation.ROW,
            self.nrows,
            self.ncols,
            self.ins_rows,
            self.ins_cols,
            self.ins_values,
            self.dtype,
            hyper=True,
        )
        return m

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeltaBatch({self.nrows}x{self.ncols}, +{self.ins_rows.size}"
            f" -{self.del_rows.size}, epochs {self.epoch_from}->{self.epoch_to})"
        )


# -- pending-work depth registry (observability) ------------------------------

#: Flipped by ``repro.obs.enable()``: while True, containers add themselves
#: to the weak registry on their first deferred action so the depth gauges
#: below can see them.  Off by default — zero overhead on the hot path
#: beyond one module-attribute read.
TRACK_DEPTH = False

_tracked: "weakref.WeakSet" = weakref.WeakSet()


def enable_depth_tracking(flag: bool = True) -> None:
    """Turn the pending/zombie depth registry on or off."""
    global TRACK_DEPTH
    TRACK_DEPTH = bool(flag)


def depth_tracking_enabled() -> bool:
    return TRACK_DEPTH


def register_for_depth(obj) -> None:
    """Add a container to the depth registry (weakly; idempotent)."""
    _tracked.add(obj)


def pending_depth() -> int:
    """Total pending insertions across live registered containers."""
    return sum(o._log.npending for o in list(_tracked) if o._log)


def zombie_depth() -> int:
    """Total pending deletions across live registered containers."""
    return sum(o._log.nzombies for o in list(_tracked) if o._log)
