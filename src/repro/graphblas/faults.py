"""Fault injection: named failure points threaded through the engine.

The LAGraph follow-on work (Szárnyas et al., arXiv:2104.01661) makes
error-checked entry points a design pillar: a GraphBLAS library must keep
user objects consistent even when an operation fails mid-flight — out of
memory during SpGEMM, an invalid index discovered at execution time.  To
*prove* that property (rather than assume it), this module lets tests make
any internal step fail on demand:

* every instrumented site names an **injection point** (``"alloc"``,
  ``"assemble"``, ``"spgemm.flop"``, ``"io.read"``, ...);
* a test arms a point with :func:`inject`, choosing a **deterministic**
  trigger (fail on the nth call) or a **seeded-probabilistic** one (fail
  each call with probability p under a fixed seed);
* the armed site raises the configured exception exactly as a real failure
  would, and the resilience suite then asserts that every operand is
  unchanged, still passes :mod:`repro.graphblas.validate`, and that the
  retried call completes correctly.

Zero overhead when disabled
---------------------------
Instrumented sites are guarded by the module-level flag :data:`ENABLED`::

    if faults.ENABLED:
        faults.trip("spgemm.flop")

With no armed plan the guard is a single module-attribute read per
*operation* (never per element), so production runs pay nothing measurable
(see ``benchmarks/bench_resilience_overhead.py``).

Typical use::

    from repro.graphblas import faults
    from repro.graphblas.errors import OutOfMemory

    with faults.inject("spgemm.flop", OutOfMemory, nth=1):
        ops.mxm(C, A, B)          # raises OutOfMemory from inside SpGEMM
    ops.mxm(C, A, B)              # retry outside the context: succeeds
"""

from __future__ import annotations

import contextlib
import os
import threading
import warnings

import numpy as np

from .errors import OutOfMemory

__all__ = [
    "ENABLED",
    "POINTS",
    "FaultPlan",
    "inject",
    "trip",
    "register_point",
    "active_plans",
    "call_count",
    "fired",
    "reset_stats",
    "run_seed",
    "set_run_seed",
]

# Module-level kill switch.  False in production; flipped by inject().
# Sites guard their trip() call with ``if faults.ENABLED`` so the disabled
# path costs one attribute read.
ENABLED = False

# Registered injection points.  register_point() extends this set; trip()
# on an unregistered point is a programming error (caught in FaultPlan).
POINTS = {
    # object lifecycle
    "alloc",          # Matrix/Vector construction (storage allocation)
    "build",          # bulk build from tuples (also the write-commit path)
    "assemble",       # wait(): zombie kill + pending-tuple assembly
    "setElement",     # deferred single-element insert
    "removeElement",  # deferred single-element delete
    # kernels
    "spgemm.flop",    # sparse matrix-matrix multiply kernel
    "mxv.push",       # SpMSpV push traversal
    "mxv.pull",       # SpMV pull traversal
    "ewise",          # eWiseAdd / eWiseMult
    "apply",          # apply (unary / bound-binary / index-unary)
    "select",         # select
    "reduce",         # reduce (row-wise and scalar)
    "transpose",      # transpose
    "extract",        # extract
    "assign",         # assign / subassign
    "kronecker",      # kronecker product
    # i/o
    "io.read",        # Matrix Market / edge list / npz reading
    "io.write",       # Matrix Market / edge list / npz writing
    # serving
    "serve.exec",     # repro.serve query attempt (chaos harness)
}

_lock = threading.Lock()
_plans: list["FaultPlan"] = []
_counts: dict[str, int] = {}          # armed-call counts per targeted point
_fired: list[tuple[str, int]] = []    # (point, call number) of raised faults

# point -> tuple of armed plans targeting it, rebuilt on arm/disarm and
# swapped atomically.  trip() on a point with no armed plan is then one
# attribute read plus one dict probe, so arming a plan at one point does
# not tax every other instrumented site in the process (the serving
# chaos benchmark runs thousands of kernel ops per injected fault).
_armed_points: dict[str, tuple["FaultPlan", ...]] = {}


def _rebuild_index() -> None:
    index: dict[str, tuple["FaultPlan", ...]] = {}
    for plan in _plans:
        index[plan.point] = index.get(plan.point, ()) + (plan,)
    global _armed_points
    _armed_points = index

# Per-run base seed for probabilistic plans armed without an explicit
# seed: read once from GRAPHBLAS_FAULT_SEED (else fresh OS entropy) and
# combined with a monotone arm counter so every armed plan draws a
# distinct but reproducible stream.  The resilience suite prints the seed
# on failure so probabilistic failures replay deterministically.
_run_seed: int | None = None
_arm_counter = 0


def run_seed() -> int:
    """The recorded per-run fault-injection seed (created on first use)."""
    global _run_seed
    if _run_seed is None:
        raw = os.environ.get("GRAPHBLAS_FAULT_SEED")
        if raw is not None:
            try:
                _run_seed = int(raw) & 0xFFFFFFFF
            except ValueError:
                warnings.warn(
                    f"ignoring GRAPHBLAS_FAULT_SEED={raw!r} (not an integer); "
                    f"using fresh entropy",
                    RuntimeWarning,
                )
        if _run_seed is None:
            _run_seed = int(np.random.SeedSequence().entropy) & 0xFFFFFFFF
    return _run_seed


def set_run_seed(seed: int | None) -> None:
    """Pin (or with None, reset) the per-run seed; also resets arm order."""
    global _run_seed, _arm_counter
    with _lock:
        _run_seed = None if seed is None else int(seed) & 0xFFFFFFFF
        _arm_counter = 0


def _next_plan_seed() -> int:
    """Derive the next armed plan's seed from the run seed + arm order."""
    global _arm_counter
    base = run_seed()
    with _lock:
        n = _arm_counter
        _arm_counter += 1
    return (base + 0x9E3779B9 * (n + 1)) & 0xFFFFFFFF


def register_point(name: str) -> str:
    """Register an extension injection point (idempotent)."""
    with _lock:
        POINTS.add(name)
    return name


class FaultPlan:
    """One armed fault: where, what to raise, and when to fire.

    Triggers (mutually exclusive):

    * ``nth`` — deterministic: fire on exactly the nth armed call of the
      point (1-based), counted from when the plan was armed;
    * ``probability`` + ``seed`` — probabilistic: fire each call with the
      given probability, reproducibly under the seed.  With ``seed=None``
      the seed is derived from the recorded per-run seed
      (:func:`run_seed`) and the plan's arm order, and recorded on the
      plan's ``seed`` attribute — so every probabilistic failure can be
      replayed with ``GRAPHBLAS_FAULT_SEED=<run seed>``.

    ``max_fires`` bounds how many times the plan raises (default 1, so a
    retried call outside the deterministic window succeeds); pass ``None``
    for unlimited.
    """

    __slots__ = (
        "point", "exc", "message", "nth", "probability", "seed",
        "_rng", "max_fires", "fires", "calls",
    )

    def __init__(
        self,
        point: str,
        exc=OutOfMemory,
        *,
        nth: int = 1,
        probability: float | None = None,
        seed: int | None = None,
        message: str | None = None,
        max_fires: int | None = 1,
    ):
        if point not in POINTS:
            raise ValueError(
                f"unknown injection point {point!r}; registered: {sorted(POINTS)}"
            )
        if not (isinstance(exc, type) and issubclass(exc, BaseException)):
            raise TypeError("exc must be an exception class")
        if probability is not None and not (0.0 <= probability <= 1.0):
            raise ValueError("probability must be in [0, 1]")
        self.point = point
        self.exc = exc
        self.message = message
        self.nth = int(nth)
        self.probability = probability
        if probability is not None and seed is None:
            seed = _next_plan_seed()
        self.seed = seed
        self._rng = np.random.default_rng(seed) if probability is not None else None
        self.max_fires = max_fires
        self.fires = 0
        self.calls = 0

    def should_fire(self) -> bool:
        self.calls += 1
        if self.max_fires is not None and self.fires >= self.max_fires:
            return False
        if self.probability is not None:
            fire = bool(self._rng.random() < self.probability)
        else:
            fire = self.calls == self.nth
        if fire:
            self.fires += 1
        return fire

    def make_exception(self) -> BaseException:
        msg = self.message or (
            f"injected fault at {self.point!r} (armed call #{self.calls})"
        )
        return self.exc(msg)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        trig = (
            f"p={self.probability}" if self.probability is not None
            else f"nth={self.nth}"
        )
        return f"FaultPlan({self.point!r}, {self.exc.__name__}, {trig})"


def trip(point: str) -> None:
    """Raise an armed fault if one matches ``point``; otherwise a no-op.

    Sites call this behind the ``faults.ENABLED`` guard; calling it with
    injection disabled is also safe (it returns immediately).
    """
    if not ENABLED:
        return
    plans = _armed_points.get(point)
    if plans is None:
        return
    _counts[point] = _counts.get(point, 0) + 1
    for plan in plans:
        if plan.should_fire():
            _fired.append((point, plan.calls))
            raise plan.make_exception()


@contextlib.contextmanager
def inject(
    point: str,
    exc=OutOfMemory,
    *,
    nth: int = 1,
    probability: float | None = None,
    seed: int | None = None,
    message: str | None = None,
    max_fires: int | None = 1,
):
    """Arm a fault for the duration of the ``with`` block.

    Yields the :class:`FaultPlan` so the caller can inspect ``plan.fires``
    (0 means the point never lay on the executed path) and ``plan.calls``.
    Nested/overlapping injections compose; injection is globally disabled
    again once the last plan is disarmed.
    """
    plan = FaultPlan(
        point, exc, nth=nth, probability=probability, seed=seed,
        message=message, max_fires=max_fires,
    )
    global ENABLED
    with _lock:
        _plans.append(plan)
        _rebuild_index()
        ENABLED = True
    try:
        yield plan
    finally:
        with _lock:
            _plans.remove(plan)
            _rebuild_index()
            ENABLED = bool(_plans)


def active_plans() -> list[FaultPlan]:
    """The currently armed plans (empty in production)."""
    return list(_plans)


def call_count(point: str) -> int:
    """Calls seen by ``point`` while a plan targeting it was armed,
    since the last :func:`reset_stats`."""
    return _counts.get(point, 0)


def fired() -> list[tuple[str, int]]:
    """(point, call#) pairs of every fault raised since the last reset."""
    return list(_fired)


def reset_stats() -> None:
    """Clear the call counters and fired-fault log."""
    with _lock:
        _counts.clear()
        _fired.clear()
