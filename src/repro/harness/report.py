"""Plain-text table rendering for the benchmark harness.

Every bench prints its paper-table reproduction through this one
formatter, so EXPERIMENTS.md and the bench output stay visually aligned.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Table", "format_table"]


@dataclass
class Table:
    """An incrementally built table: title, column headers, rows."""

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *row) -> None:
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(row))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        return format_table(self.title, self.columns, self.rows, self.notes)

    def show(self) -> None:
        print("\n" + self.render())


def _cell(x) -> str:
    if isinstance(x, float):
        if x == 0:
            return "0"
        if abs(x) >= 1000 or abs(x) < 0.001:
            return f"{x:.3e}"
        return f"{x:.4g}"
    return str(x)


def format_table(title: str, columns, rows, notes=()) -> str:
    cells = [[_cell(c) for c in row] for row in rows]
    widths = [
        max(len(str(col)), *(len(r[i]) for r in cells)) if cells else len(str(col))
        for i, col in enumerate(columns)
    ]
    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    out = [title, sep]
    out.append(
        "|" + "|".join(f" {str(c).ljust(w)} " for c, w in zip(columns, widths)) + "|"
    )
    out.append(sep)
    for r in cells:
        out.append("|" + "|".join(f" {c.rjust(w)} " for c, w in zip(r, widths)) + "|")
    out.append(sep)
    for n in notes:
        out.append(f"  note: {n}")
    return "\n".join(out)
