"""Benchmark/reporting harness: LoC counting (Table II), table printing,
and experiment bookkeeping."""

from .loc import count_loc, count_function_loc
from .report import Table, format_table

__all__ = ["count_loc", "count_function_loc", "Table", "format_table"]
