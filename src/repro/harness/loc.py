"""Line-of-code counting for the Table II comparison.

The paper's Table II counts "lines of C++ application code counted by
'cloc'" for BFS / SSSP / local graph clustering.  This module applies the
same rule — physical source lines excluding blanks and comments — to
Python source, at file granularity or per function.
"""

from __future__ import annotations

import ast
import inspect
import io
import textwrap
import tokenize

__all__ = ["count_loc", "count_function_loc"]


def count_loc(source: str) -> int:
    """cloc-style count: lines that are neither blank nor comment-only.

    Docstrings (string-expression statements) are treated as comments,
    matching how cloc discounts block comments in C++.
    """
    source = textwrap.dedent(source)
    doc_lines: set[int] = set()
    try:
        tree = ast.parse(source)
        for node in ast.walk(tree):
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Constant):
                if isinstance(node.value.value, str):
                    for ln in range(node.lineno, node.end_lineno + 1):
                        doc_lines.add(ln)
    except SyntaxError:
        pass

    comment_only: set[int] = set()
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                line = source.splitlines()[tok.start[0] - 1]
                if line.strip().startswith("#"):
                    comment_only.add(tok.start[0])
    except tokenize.TokenizeError:
        pass

    count = 0
    for i, line in enumerate(source.splitlines(), start=1):
        if not line.strip():
            continue
        if i in doc_lines or i in comment_only:
            continue
        count += 1
    return count


def count_function_loc(fn) -> int:
    """LoC of one function (signature included, docstring excluded)."""
    return count_loc(inspect.getsource(fn))
