"""E1 — section II.A: zombies & pending tuples make incremental build fast.

Claim: "it is just as fast to use a sequence of e setElement operations to
build a matrix as it is to create an array of e tuples and use build" —
because non-blocking mode defers each insertion as a pending tuple and
assembles once, in O(n + e + p log p).  In blocking mode each setElement
reassembles immediately, so the loop degrades to O(e^2).

Reproduction target (shape): nonblocking-setElement / build ratio stays
O(1)-ish as e grows, while blocking-setElement / build explodes.
"""

import numpy as np
import pytest

from _common import emit, wall
from repro.graphblas import Matrix, blocking, nonblocking
from repro.harness import Table

SIZES = [500, 2000, 8000]


def _edges(e, n, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, n, e),
        rng.integers(0, n, e),
        rng.random(e),
    )


def build_batch(r, c, v, n):
    A = Matrix("FP64", n, n)
    A.build(r, c, v, dup="SECOND")
    A.wait()
    return A


def build_incremental_nonblocking(r, c, v, n):
    with nonblocking():
        A = Matrix("FP64", n, n)
        for i, j, x in zip(r, c, v):
            A.set_element(i, j, x)
        A.wait()
    return A


def build_incremental_blocking(r, c, v, n):
    with blocking():
        A = Matrix("FP64", n, n)
        for i, j, x in zip(r, c, v):
            A.set_element(i, j, x)
    return A


def test_e1_table(benchmark):
    def run():
        t = Table(
            "E1: e x setElement vs one build (paper II.A pending tuples)",
            [
                "e",
                "build (s)",
                "setElement nonblocking (s)",
                "setElement blocking (s)",
                "nonblk/build",
                "blk/build",
            ],
        )
        for e in SIZES:
            n = e
            r, c, v = _edges(e, n)
            tb = wall(build_batch, r, c, v, n, repeat=2)
            tn = wall(build_incremental_nonblocking, r, c, v, n, repeat=2)
            # blocking mode is quadratic: cap the size actually measured
            if e <= 2000:
                tk = wall(build_incremental_blocking, r, c, v, n, repeat=1)
                blk = f"{tk / tb:.1f}x"
            else:
                tk, blk = float("nan"), "(skipped: quadratic)"
            t.add(e, tb, tn, tk, f"{tn / tb:.1f}x", blk)
        t.note("claim: nonblocking incremental ~ batch build; blocking blows up")
        emit(t, "e1_incremental_build")

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_e1_shape_nonblocking_stays_near_build():
    """The paper's claim, asserted: the nonblocking/build ratio must stay
    bounded while blocking/build grows with e."""
    ratios_nb, ratios_blk = [], []
    for e in (400, 1600):
        n = e
        r, c, v = _edges(e, n)
        tb = wall(build_batch, r, c, v, n, repeat=3)
        tn = wall(build_incremental_nonblocking, r, c, v, n, repeat=3)
        tk = wall(build_incremental_blocking, r, c, v, n, repeat=1)
        ratios_nb.append(tn / tb)
        ratios_blk.append(tk / tb)
    # blocking degrades at least 3x faster than nonblocking as e quadruples
    assert ratios_blk[1] / ratios_blk[0] > 2 * (ratios_nb[1] / ratios_nb[0])


def test_e1_results_identical():
    r, c, v = _edges(1000, 1000)
    A = build_batch(r, c, v, 1000)
    B = build_incremental_nonblocking(r, c, v, 1000)
    C = build_incremental_blocking(r, c, v, 1000)
    assert A.isequal(B) and A.isequal(C)


@pytest.mark.parametrize("mode", ["build", "nonblocking"])
def test_bench_e1(benchmark, mode):
    e = n = 4000
    r, c, v = _edges(e, n)
    fn = build_batch if mode == "build" else build_incremental_nonblocking
    benchmark(fn, r, c, v, n)
