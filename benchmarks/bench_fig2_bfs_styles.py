"""F2 — Figure 2: the same level BFS in three runnable notations.

The paper's Figure 2 shows one algorithm (level BFS) written as math
pseudocode, PyGB DSL, GBTL C++, and the GraphBLAS C API.  We reproduce the
three runnable styles — the PyGB DSL (2b), the core library surface (2c's
role), and the GrB_* C-API facade (2d) — assert they produce identical
levels, compare their LoC, and benchmark each.
"""

import numpy as np
import pytest

from _common import emit, wall
from repro import pygb as gbd
from repro.graphblas import Vector
from repro.graphblas import capi as grb
from repro.graphblas import operations as ops
from repro.harness import Table, count_function_loc
from repro.lagraph.compact import bfs_levels_compact


def bfs_pygb(graph, frontier, levels):
    """Figure 2(b): the PyGB DSL, verbatim modulo imports."""
    depth = 0
    while frontier.nvals > 0:
        depth += 1
        levels[frontier][:] = depth
        with gbd.LogicalSemiring, gbd.Replace:
            frontier[~levels] = graph.T @ frontier


# descriptor: transpose A, complement (value) mask, replace — Fig 2's
# Desc_TranA_ScmpM_Replace
from repro.graphblas.descriptor import Descriptor  # noqa: E402

_rc_t0 = Descriptor(transpose_a=True, complement_mask=True, replace=True)


def bfs_core(graph, frontier, levels):
    """Figure 2(c)'s role: the library's native operation surface."""
    depth = 0
    while frontier.nvals > 0:
        depth += 1
        ops.assign(levels, depth, ops.ALL, mask=frontier)
        ops.mxv(frontier, graph, frontier, "LOR_LAND", mask=levels, desc=_rc_t0)


def bfs_capi(graph, frontier):
    """Figure 2(d): the GraphBLAS C API, line for line."""
    info, n = grb.GrB_Matrix_nrows(graph)
    info, levels = grb.GrB_Vector_new(grb.GrB_INT64, n)
    info, nvals = grb.GrB_Vector_nvals(frontier)
    depth = 0
    while nvals > 0:
        depth += 1
        grb.GrB_assign(levels, frontier, grb.GrB_NULL, depth, grb.GrB_ALL)
        grb.GrB_mxv(frontier, levels, grb.GrB_NULL, "LOR_LAND", graph, frontier, _rc_t0)
        info, nvals = grb.GrB_Vector_nvals(frontier)
    return levels


def _setup(g):
    n = g.n
    frontier = Vector("BOOL", n)
    frontier.set_element(0, True)
    levels = Vector("INT64", n)
    return frontier, levels


def _run_pygb(g):
    frontier, levels = _setup(g)
    bfs_pygb(gbd.Matrix(g.A), gbd.Vector(frontier), gbd.Vector(levels))
    return levels


def _run_core(g):
    frontier, levels = _setup(g)
    bfs_core(g.A, frontier, levels)
    return levels


def _run_capi(g):
    frontier, _ = _setup(g)
    return bfs_capi(g.A, frontier)


def test_all_styles_agree(rmat_small):
    """All three notations compute identical levels (Fig 2's premise)."""
    lv_pygb = _run_pygb(rmat_small)
    lv_core = _run_core(rmat_small)
    lv_capi = _run_capi(rmat_small)
    assert lv_pygb.isequal(lv_core)
    assert lv_core.isequal(lv_capi)
    # and they match the library BFS (depth offset: Fig 2 roots at 1)
    lib = bfs_levels_compact(0, rmat_small)
    i1, v1 = lv_core.extract_tuples()
    i2, v2 = lib.extract_tuples()
    assert i1.tolist() == i2.tolist()
    assert (np.asarray(v1) - 1).tolist() == list(v2)


def test_figure2_table(benchmark, rmat_small):
    def run():
        t = Table(
            "Figure 2 reproduction: level BFS in three notations "
            f"(RMAT scale 9, n={rmat_small.n})",
            ["notation", "paper analogue", "LoC", "seconds"],
        )
        t.add("PyGB DSL", "Fig 2(b) PyGB", count_function_loc(bfs_pygb),
              wall(_run_pygb, rmat_small))
        t.add("core library", "Fig 2(c) GBTL C++", count_function_loc(bfs_core),
              wall(_run_core, rmat_small))
        t.add("GrB_* C API", "Fig 2(d) C API", count_function_loc(bfs_capi),
              wall(_run_capi, rmat_small))
        t.note("identical levels asserted across all notations")
        emit(t, "fig2_bfs_styles")

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("style", ["pygb", "core", "capi"])
def test_bench_fig2(benchmark, rmat_small, style):
    runner = {"pygb": _run_pygb, "core": _run_core, "capi": _run_capi}[style]
    benchmark(runner, rmat_small)
