"""PR10 — the compiled kernel tier vs the vectorized optimized engine.

Claims measured (the BENCH_PR10.json acceptance gates):

* **Warm Gustavson SpGEMM**: on an RMAT graph the compiled scalar-SPA
  kernel beats the vectorized engine's expand/sort/reduceat pipeline —
  the JIT loop skips the O(flops log flops) duplicate sort entirely.
  Gate: >= 1.5x at scale 14.
* **Terminal early exit**: a masked LOR_LAND pull mxv on selective
  masks, where every surviving dot product hits OR's annihilator in the
  first few terms.  The compiled kernel bails per *element*; the
  vectorized path can only skip per 64-wide block.  Gate: >= 3x.
* **Cold-start amortization**: the first compiled call pays the JIT
  build; the LRU makes every later call warm.
* **Correctness riders**: the differential engine with
  ``primary="compiled"`` reports zero divergences, and disabling the
  tier (``GRAPHBLAS_COMPILED_TOOLCHAIN=off``) reproduces the optimized
  engine's results bit for bit.

Runs two ways: under pytest (small scale, asserts structure not speed)
and as a script — ``python benchmarks/bench_compiled_kernels.py
--scale 14 --out BENCH_PR10.json`` — which writes the committed JSON.
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.dirname(__file__))

import numpy as np

from _common import emit, wall
from repro.graphblas import Matrix, Vector, compiled, telemetry
from repro.graphblas import operations as ops
from repro.graphblas.backends.differential import DifferentialBackend
from repro.graphblas.types import BOOL, FP64
from repro.generators.rmat import rmat_graph
from repro.harness import Table

try:
    import pytest
except ImportError:  # script mode does not need it
    pytest = None


def _mxm_inputs(scale):
    G = rmat_graph(scale, 16, seed=7, kind="directed", weighted=True)
    A = G.A
    r, c, v = A.extract_tuples()
    return Matrix.from_coo(r, c, v.astype(np.float64),
                           nrows=A.nrows, ncols=A.ncols, dtype=FP64)


def _mxv_inputs(scale, mask_frac=0.25, edge_factor=64):
    """A dense BOOL graph, a full frontier, and a selective row mask:
    the direction-optimized BFS pull step late in the traversal, where
    nearly every surviving dot product hits OR's terminal immediately
    but the rows are long enough that a full scan is real work."""
    G = rmat_graph(scale, edge_factor, seed=11, kind="directed")
    r, c, _ = G.A.extract_tuples()
    A = Matrix.from_coo(r, c, np.ones(r.size, dtype=np.bool_),
                        nrows=G.A.nrows, ncols=G.A.ncols, dtype=BOOL)
    n = A.nrows
    u = Vector.from_dense(np.ones(n, dtype=np.bool_), missing=False)
    rng = np.random.default_rng(3)
    sel = np.flatnonzero(rng.random(n) < mask_frac)
    mask = Vector.from_coo(sel, np.ones(sel.size, dtype=np.bool_),
                           size=n, dtype=BOOL)
    return A, u, mask


def _bench_mxm(A, repeat=3):
    def run(backend):
        C = Matrix(FP64, A.nrows, A.ncols)
        ops.mxm(C, A, A, "PLUS_TIMES", method="gustavson", backend=backend)
        return C

    t_opt = wall(lambda: run("optimized"), repeat=repeat)
    compiled.clear_cache()
    t_cold = wall(lambda: run("compiled"), repeat=1)  # includes the JIT build
    t_warm = wall(lambda: run("compiled"), repeat=repeat)
    return {
        "optimized_s": t_opt,
        "compiled_cold_s": t_cold,
        "compiled_warm_s": t_warm,
        "warm_speedup": t_opt / t_warm,
    }


def _bench_mxv(A, u, mask, repeat=3):
    def run(backend):
        w = Vector(BOOL, A.nrows)
        ops.mxv(w, A, u, "LOR_LAND", mask=mask, backend=backend)
        return w

    t_opt = wall(lambda: run("optimized"), repeat=repeat)
    run("compiled")  # absorb the compile
    t_cmp = wall(lambda: run("compiled"), repeat=repeat)
    with telemetry.collect() as col:
        run("compiled")
    exits = [e["args"] for e in col.events
             if e["type"] == "decision" and e["name"] == "compiled.early_exit"]
    ex = exits[-1] if exits else {}
    terminated = int(ex.get("terminated", 0))
    depth = (ex.get("depth_sum", 0) / terminated) if terminated else None
    return {
        "optimized_s": t_opt,
        "compiled_s": t_cmp,
        "speedup": t_opt / t_cmp,
        "dots": int(ex.get("dots", 0)),
        "terminated": terminated,
        "mean_hit_depth": depth,
    }


def _check_differential(A):
    # keep the dense replay under the differential budget (1<<22 cells):
    # 128**3 = 2M flops for the mxm cost model
    sub_n = min(A.nrows, 128)
    rs, cs, vs = A.extract_tuples()
    keep = (rs < sub_n) & (cs < sub_n)
    S = Matrix.from_coo(rs[keep], cs[keep], vs[keep],
                        nrows=sub_n, ncols=sub_n, dtype=FP64)
    be = DifferentialBackend(primary="compiled")
    for sr in ("PLUS_TIMES", "MIN_PLUS", "MAX_MIN"):
        ops.mxm(Matrix(FP64, sub_n, sub_n), S, S, sr, backend=be)
    return dict(be.stats)


def _check_tier_disabled(A):
    """GRAPHBLAS_COMPILED_TOOLCHAIN=off must be a bit-exact pass-through."""
    import warnings

    C_opt = Matrix(FP64, A.nrows, A.ncols)
    ops.mxm(C_opt, A, A, "PLUS_TIMES", backend="optimized")
    prior = os.environ.get("GRAPHBLAS_COMPILED_TOOLCHAIN")
    os.environ["GRAPHBLAS_COMPILED_TOOLCHAIN"] = "off"
    compiled.reset()
    try:
        C_off = Matrix(FP64, A.nrows, A.ncols)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            ops.mxm(C_off, A, A, "PLUS_TIMES", backend="compiled")
    finally:
        if prior is None:
            del os.environ["GRAPHBLAS_COMPILED_TOOLCHAIN"]
        else:
            os.environ["GRAPHBLAS_COMPILED_TOOLCHAIN"] = prior
        compiled.reset()
    r1, c1, v1 = C_opt.extract_tuples()
    r2, c2, v2 = C_off.extract_tuples()
    return (np.array_equal(r1, r2) and np.array_equal(c1, c2)
            and np.array_equal(v1, v2))


def run_suite(scale: int, repeat: int = 3) -> dict:
    A = _mxm_inputs(scale)
    Ab, u, mask = _mxv_inputs(scale)
    results = {
        "scale": scale,
        "nrows": A.nrows,
        "nvals": A.nvals,
        "toolchain": compiled.toolchain_name(),
        "mxm_gustavson": _bench_mxm(A, repeat=repeat),
        "mxv_early_exit": _bench_mxv(Ab, u, mask, repeat=repeat),
        "differential": _check_differential(A),
        "tier_disabled_bit_identical": _check_tier_disabled(A),
        "compiled_cache": compiled.cache_stats(),
    }
    return results


def validate(results: dict, *, strict: bool) -> list[str]:
    """The acceptance gates; ``strict`` enforces the speed floors."""
    problems = []
    if results["differential"]["divergences"] != 0:
        problems.append("differential divergences != 0")
    if not results["tier_disabled_bit_identical"]:
        problems.append("tier-off results not bit-identical to optimized")
    if results["mxv_early_exit"]["terminated"] == 0:
        problems.append("no early exits taken on the selective-mask mxv")
    if strict:
        if results["mxm_gustavson"]["warm_speedup"] < 1.5:
            problems.append(
                f"warm mxm speedup {results['mxm_gustavson']['warm_speedup']:.2f}x < 1.5x")
        if results["mxv_early_exit"]["speedup"] < 3.0:
            problems.append(
                f"early-exit mxv speedup {results['mxv_early_exit']['speedup']:.2f}x < 3x")
    return problems


def _emit_table(results: dict) -> None:
    t = Table(
        f"PR10: compiled kernel tier vs optimized engine "
        f"(RMAT-{results['scale']}, {results['toolchain']} toolchain)",
        ["kernel", "optimized s", "compiled s", "speedup"],
    )
    g = results["mxm_gustavson"]
    t.add("mxm gustavson (warm)", g["optimized_s"], g["compiled_warm_s"],
          f"{g['warm_speedup']:.2f}x")
    t.add("mxm gustavson (cold, incl. JIT)", g["optimized_s"],
          g["compiled_cold_s"], f"{g['optimized_s'] / g['compiled_cold_s']:.2f}x")
    e = results["mxv_early_exit"]
    t.add("mxv LOR_LAND pull, selective mask", e["optimized_s"],
          e["compiled_s"], f"{e['speedup']:.2f}x")
    d = results["differential"]
    t.note(f"early exit: {e['terminated']}/{e['dots']} dots terminated, "
           f"mean hit depth {e['mean_hit_depth']:.1f} terms"
           if e["terminated"] else "early exit: none taken")
    t.note(f"differential (primary=compiled): {d['verified']} verified, "
           f"{d['divergences']} divergences")
    t.note("tier disabled: bit-identical = "
           f"{results['tier_disabled_bit_identical']}")
    emit(t, "compiled_kernels")


# -- pytest entry points ------------------------------------------------------

if pytest is not None:
    needs_tier = pytest.mark.skipif(
        not compiled.available(),
        reason="no compiled toolchain (numba or cc) available")

    @needs_tier
    def test_compiled_suite(benchmark):
        def run():
            results = run_suite(10, repeat=2)
            problems = validate(results, strict=False)
            assert not problems, problems
            _emit_table(results)

        benchmark.pedantic(run, rounds=1, iterations=1)

    @needs_tier
    def test_compiled_warm_beats_cold():
        A = _mxm_inputs(9)
        r = _bench_mxm(A, repeat=2)
        assert r["compiled_warm_s"] <= r["compiled_cold_s"]


def main(argv=None) -> int:
    import argparse

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", type=int, default=14,
                    help="RMAT scale (2**scale vertices; default 14)")
    ap.add_argument("--repeat", type=int, default=3)
    ap.add_argument("--out", default=None,
                    help="write the results JSON here (e.g. BENCH_PR10.json)")
    ap.add_argument("--strict", action="store_true",
                    help="fail on the speedup floors, not just correctness")
    args = ap.parse_args(argv)

    if not compiled.available():
        print("no compiled toolchain available; nothing to measure",
              file=sys.stderr)
        return 1
    results = run_suite(args.scale, repeat=args.repeat)
    _emit_table(results)
    problems = validate(results, strict=args.strict)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(results, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.out}")
    for p in problems:
        print(f"GATE FAILED: {p}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
