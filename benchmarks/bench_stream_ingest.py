"""Streaming ingestion: sustained edges/s, incremental-vs-full speedup,
bounded-memory windows.

Standalone (argparse, not pytest) so CI and developers can run it at any
scale and get a machine-readable JSON verdict:

    PYTHONPATH=src python benchmarks/bench_stream_ingest.py \
        --scale 14 --windows 20 --budget 64m --out BENCH_PR8.json

Two phases:

* **bounded ingest** (runs first so the RSS high-water mark is not
  polluted): the full RMAT event stream is ingested under a governor
  ``ExecutionContext`` with a memory budget; over-budget windows must be
  chunked (not rejected) and the peak-RSS increase over the post-setup
  baseline must stay within ``budget * 1.2``.
* **speedup + parity** (the headline): the same stream drives the three
  incremental maintainers — dynamic PageRank, incremental connected
  components, per-delta triangle counts — and on **every** window each
  result is parity-asserted against its from-scratch counterpart on a
  copy of the current graph, while both sides are timed.  The acceptance
  criterion is a median per-window combined speedup >= 5x.
"""

from __future__ import annotations

import argparse
import json
import time

_SUFFIX = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def parse_bytes(text: str) -> int:
    text = text.strip().lower()
    scale = 1
    if text and text[-1] in _SUFFIX:
        scale = _SUFFIX[text[-1]]
        text = text[:-1]
    return int(text) * scale


def peak_rss_bytes() -> int:
    """VmHWM (the process peak RSS high-water mark) in bytes."""
    with open("/proc/self/status", encoding="ascii") as f:
        for line in f:
            if line.startswith("VmHWM:"):
                return int(line.split()[1]) << 10
    raise RuntimeError("VmHWM not found in /proc/self/status")


def rmat_events(scale: int, edge_factor: int, windows: int, seed: int):
    """Timestamped RMAT edge events: Graph500 quadrant sampling, with
    duplicates kept (a real stream re-asserts hot edges), uniform
    timestamps over ``windows`` unit windows."""
    import numpy as np

    a, b, c = 0.57, 0.19, 0.19
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = edge_factor * n
    rows = np.zeros(m, dtype=np.int64)
    cols = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        r = rng.random(m)
        right = (r >= a) & (r < a + b)
        lower = (r >= a + b) & (r < a + b + c)
        both = r >= a + b + c
        bit = np.int64(1 << level)
        rows += bit * (lower | both)
        cols += bit * (right | both)
    off = rows != cols
    rows, cols = rows[off], cols[off]
    ts = np.sort(rng.uniform(0.0, float(windows), rows.size))
    return n, rows, cols, ts


def _drive(stream, src, dst, ts, batch, on_window):
    import numpy as np  # noqa: F401 - keep signature symmetric with tests

    for lo in range(0, ts.size, batch):
        for win in stream.ingest(src[lo:lo + batch], dst[lo:lo + batch],
                                 ts[lo:lo + batch]):
            on_window(win)
    win = stream.flush()
    if win is not None:
        on_window(win)


def run_bounded(scale: int, edge_factor: int, windows: int, budget: int,
                chunk_budget: int, batch: int) -> dict:
    """Ingest under a tight governor working-set budget (forces chunked
    window assembly) while the process peak RSS must stay within the
    outer ``budget`` envelope."""
    from repro.graphblas import governor
    from repro.lagraph import GraphKind
    from repro.stream import GraphStream

    n, src, dst, ts = rmat_events(scale, edge_factor, windows, seed=7)
    stream = GraphStream(n, kind=GraphKind.UNDIRECTED, window="tumbling",
                         width=1.0)
    closed = []
    baseline = peak_rss_bytes()
    t0 = time.perf_counter()
    with governor.ExecutionContext(memory_budget=chunk_budget):
        _drive(stream, src, dst, ts, batch, closed.append)
    elapsed = time.perf_counter() - t0
    delta = peak_rss_bytes() - baseline
    assembly_s = sum(w.seconds for w in closed)
    events = sum(w.n_events for w in closed)
    return {
        "n": n,
        "events": events,
        "windows": len(closed),
        "chunks": sum(w.chunks for w in closed),
        "chunked_windows": sum(1 for w in closed if w.chunks > 1),
        "elapsed_s": elapsed,
        "assembly_s": assembly_s,
        "edges_per_s": events / assembly_s if assembly_s else 0.0,
        "peak_rss_delta_bytes": delta,
        "rss_within_budget": bool(delta <= budget * 1.2),
        "nvals_final": int(stream.graph.A.nvals),
    }


def run_speedup(scale: int, edge_factor: int, windows: int, batch: int,
                pr_tol: float) -> dict:
    import numpy as np

    from repro.lagraph import (
        Graph,
        GraphKind,
        connected_components,
        pagerank,
        triangle_count,
    )
    from repro.stream import (
        DynamicPageRank,
        GraphStream,
        IncrementalComponents,
        IncrementalTriangles,
    )

    n, src, dst, ts = rmat_events(scale, edge_factor, windows, seed=7)
    stream = GraphStream(n, kind=GraphKind.UNDIRECTED, window="tumbling",
                         width=1.0)
    pr = DynamicPageRank(stream.graph, tol=pr_tol)
    cc = IncrementalComponents(stream.graph)
    tri = IncrementalTriangles(stream.graph)
    per_window = []
    assembly_s = 0.0
    events = 0

    def on_window(win):
        nonlocal assembly_s, events
        assembly_s += win.seconds
        events += win.n_events

        t0 = time.perf_counter()
        ranks, sweeps = pr.update()
        t_pr = time.perf_counter() - t0
        t0 = time.perf_counter()
        labels = cc.update()
        t_cc = time.perf_counter() - t0
        t0 = time.perf_counter()
        count = tri.update()
        t_tri = time.perf_counter() - t0

        oracle = Graph(stream.graph.A.dup(), stream.graph.kind)
        t0 = time.perf_counter()
        full_pr, _ = pagerank(oracle, tol=pr_tol)
        f_pr = time.perf_counter() - t0
        t0 = time.perf_counter()
        full_cc = connected_components(oracle)
        f_cc = time.perf_counter() - t0
        t0 = time.perf_counter()
        full_tri = triangle_count(oracle)
        f_tri = time.perf_counter() - t0

        gap = float(np.abs(full_pr.to_dense(0.0) - ranks).sum())
        assert gap < 1e-6, f"window {win.index}: pagerank gap {gap}"
        assert np.array_equal(labels, full_cc.to_dense()), (
            f"window {win.index}: component labels diverge"
        )
        assert count == full_tri, (
            f"window {win.index}: triangles {count} != {full_tri}"
        )
        inc = t_pr + t_cc + t_tri
        full = f_pr + f_cc + f_tri
        per_window.append({
            "window": win.index,
            "events": win.n_events,
            "assembly_s": win.seconds,
            "pr_sweeps": sweeps,
            "pr_gap_l1": gap,
            "inc_s": {"pagerank": t_pr, "components": t_cc,
                      "triangles": t_tri},
            "full_s": {"pagerank": f_pr, "components": f_cc,
                       "triangles": f_tri},
            "speedup": {
                "pagerank": f_pr / t_pr if t_pr else float("inf"),
                "components": f_cc / t_cc if t_cc else float("inf"),
                "triangles": f_tri / t_tri if t_tri else float("inf"),
                "combined": full / inc if inc else float("inf"),
            },
        })

    _drive(stream, src, dst, ts, batch, on_window)
    assert per_window, "stream produced no windows"
    assert pr.recomputes == cc.recomputes == tri.recomputes == 0, (
        "tumbling stream must never fall back to recompute"
    )

    def median(key):
        vals = sorted(w["speedup"][key] for w in per_window)
        return vals[len(vals) // 2]

    summary = {
        "n": n,
        "events": events,
        "windows": len(per_window),
        "assembly_s": assembly_s,
        "edges_per_s": events / assembly_s if assembly_s else 0.0,
        "median_speedup": {k: median(k) for k in
                           ("pagerank", "components", "triangles",
                            "combined")},
        "max_pr_gap_l1": max(w["pr_gap_l1"] for w in per_window),
        "parity_windows": len(per_window),
    }
    return {"summary": summary, "per_window": per_window}


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=14,
                        help="RMAT scale (2**scale vertices)")
    parser.add_argument("--edge-factor", type=int, default=8)
    parser.add_argument("--windows", type=int, default=20,
                        help="tumbling windows the stream spans")
    parser.add_argument("--batch", type=int, default=8192,
                        help="events per ingest call")
    parser.add_argument("--budget", default="64m",
                        help="peak-RSS envelope (k/m/g suffixes)")
    parser.add_argument("--chunk-budget", default="2m",
                        help="governor working-set budget for the bounded "
                             "phase; sized to force chunked assembly")
    parser.add_argument("--pr-tol", type=float, default=1e-10)
    parser.add_argument("--min-speedup", type=float, default=5.0)
    parser.add_argument("--out", default="BENCH_PR8.json")
    args = parser.parse_args(argv)
    budget = parse_bytes(args.budget)

    chunk_budget = parse_bytes(args.chunk_budget)

    results = {
        "scale": args.scale,
        "edge_factor": args.edge_factor,
        "windows": args.windows,
        "budget": args.budget,
        "budget_bytes": budget,
        "chunk_budget": args.chunk_budget,
        "chunk_budget_bytes": chunk_budget,
    }

    results["bounded"] = b = run_bounded(
        args.scale, args.edge_factor, args.windows, budget, chunk_budget,
        args.batch,
    )
    print(
        f"bounded @ scale {args.scale}: {b['windows']} windows, "
        f"{b['chunks']} chunks ({b['chunked_windows']} windows split), "
        f"{b['edges_per_s']:.0f} edges/s, peak RSS delta "
        f"{b['peak_rss_delta_bytes'] / (1 << 20):.1f} MiB vs budget "
        f"{budget / (1 << 20):.0f} MiB: "
        f"{'WITHIN' if b['rss_within_budget'] else 'OVER'} budget*1.2"
    )
    assert b["rss_within_budget"], "peak RSS exceeded budget * 1.2"
    assert b["chunked_windows"] > 0, (
        "budget never forced chunked assembly; lower --budget or raise scale"
    )

    results["speedup"] = s = run_speedup(
        args.scale, args.edge_factor, args.windows, args.batch, args.pr_tol
    )
    summary = s["summary"]
    med = summary["median_speedup"]
    print(
        f"speedup @ scale {args.scale}: {summary['windows']} windows "
        f"parity-asserted, sustained {summary['edges_per_s']:.0f} edges/s, "
        f"median speedup pagerank {med['pagerank']:.1f}x, components "
        f"{med['components']:.1f}x, triangles {med['triangles']:.1f}x, "
        f"combined {med['combined']:.1f}x "
        f"(max PR L1 gap {summary['max_pr_gap_l1']:.2e})"
    )
    assert med["combined"] >= args.min_speedup, (
        f"median combined speedup {med['combined']:.2f}x below "
        f"{args.min_speedup}x"
    )

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(results, f, indent=2, sort_keys=True)
    print(f"wrote {args.out}")
    return results


if __name__ == "__main__":
    main()
