"""Backend dispatch overhead: plan + registry routing must be ~free.

The pluggable-backend refactor inserts an :class:`OpPlan` build and a
registry dispatch between the public Table-I functions and the kernels.
This bench quantifies that layer two ways:

* **micro** — a tiny mxv (where fixed costs dominate) through the public
  path vs. calling the optimized backend directly with a pre-built plan:
  the difference is the plan+dispatch cost per call;
* **macro** — a realistic Table-I workload per backend, demonstrating
  that the optimized engine's end-to-end timings are unchanged and
  showing what the reference/scipy/differential engines cost instead.
"""

import numpy as np
import pytest

from _common import emit, wall
from repro.generators import random_matrix, random_vector
from repro.graphblas import Matrix, Vector, backends
from repro.graphblas import operations as ops
from repro.graphblas import plan as planmod
from repro.harness import Table

N = 1500
DENSITY = 0.004


@pytest.fixture(scope="module")
def workload():
    A = random_matrix(N, N, DENSITY, seed=1)
    B = random_matrix(N, N, DENSITY, seed=2)
    u = random_vector(N, 0.05, seed=3)
    return A, B, u


def test_dispatch_micro_overhead(workload):
    A, _, u = workload
    tiny_A = random_matrix(64, 64, 0.05, seed=9)
    tiny_u = random_vector(64, 0.3, seed=10)
    opt = backends.get_backend("optimized")
    reps = 300

    def via_public():
        w = Vector("FP64", 64)
        for _ in range(reps):
            ops.mxv(w, tiny_A, tiny_u, "PLUS_TIMES")

    def via_prebuilt_plan():
        w = Vector("FP64", 64)
        p = planmod.plan_mxv(w, tiny_A, tiny_u, "PLUS_TIMES")
        for _ in range(reps):
            opt.mxv(p)

    t_pub = wall(via_public, repeat=5)
    t_raw = wall(via_prebuilt_plan, repeat=5)
    per_call_us = (t_pub - t_raw) / reps * 1e6

    table = Table(
        "Dispatch micro-overhead (tiny mxv, fixed costs dominate)",
        ["path", "total s (x%d)" % reps, "per-call us"],
    )
    table.add("public op (plan+dispatch)", f"{t_pub:.4f}", f"{t_pub / reps * 1e6:.1f}")
    table.add("pre-built plan, direct kernel", f"{t_raw:.4f}", f"{t_raw / reps * 1e6:.1f}")
    table.add("plan+dispatch layer", "-", f"{per_call_us:.1f}")
    table.notes.append(
        "layer cost is per *operation*, never per element; it amortizes to "
        "noise on realistic operands (see macro table)"
    )
    emit(table, "bench_backend_dispatch_micro")


def test_backend_macro_comparison(workload):
    A, B, u = workload
    small_A = random_matrix(128, 128, 0.05, seed=20)
    small_B = random_matrix(128, 128, 0.05, seed=21)
    small_u = random_vector(128, 0.2, seed=22)

    def suite(be, A_, B_, u_):
        n = A_.nrows
        with backends.backend(be):
            C = Matrix("FP64", n, n)
            ops.mxm(C, A_, B_, "PLUS_TIMES")
            w = Vector("FP64", n)
            ops.mxv(w, A_, u_, "PLUS_TIMES")
            D = Matrix("FP64", n, n)
            ops.ewise_add(D, A_, B_, "PLUS")
            ops.reduce_scalar(A_, "PLUS")

    table = Table(
        "Table-I workload per backend",
        ["backend", "n=128 (all engines) s", "n=1500 s"],
    )
    for name in ("optimized", "scipy", "differential", "reference"):
        t_small = wall(suite, name, small_A, small_B, small_u, repeat=3)
        if name in ("optimized", "scipy"):
            t_big = f"{wall(suite, name, A, B, u, repeat=3):.4f}"
        else:
            t_big = "(dense replay: small shapes only)"
        table.add(name, f"{t_small:.4f}", t_big)
    table.notes.append(
        "differential = optimized + dense verification of every in-budget op; "
        "reference = pure dense spec-literal engine"
    )
    emit(table, "bench_backend_dispatch_macro")
