"""Ablations of the substrate's design knobs (DESIGN.md's design-choice list).

Three tunables whose values the paper's systems pick empirically; each
ablation sweeps the knob and reports where our substrate's optimum falls:

* **Gustavson chunk cap** — the expansion SpGEMM bounds its intermediate
  partial-product buffer; too small re-pays per-chunk overhead, too large
  blows the cache/allocator.
* **Direction-switch threshold** — GraphBLAST's push/pull density cutoff
  (section II.E): sweep it over a BFS and compare traversal time.
* **Dual-orientation storage** — GraphBLAST's 2x-memory CSR+CSC mode
  (Figure 3 / the env-var the paper mentions): direction-optimized BFS
  with and without the second copy.
"""

import numpy as np
import pytest

from _common import emit, wall
from repro.generators import rmat_graph
import importlib

# the package re-exports the mxm *function*, shadowing the submodule name
mxm_mod = importlib.import_module("repro.graphblas.mxm")
from repro.graphblas import DirectionOptimizer, Matrix
from repro.graphblas import operations as ops
from repro.harness import Table
from repro.lagraph.bfs import bfs_level


def test_ablation_gustavson_chunk(benchmark, rmat_medium):
    A = rmat_medium.structure("FP64")

    def product():
        C = Matrix("FP64", A.nrows, A.ncols)
        ops.mxm(C, A, A, "PLUS_TIMES", method="gustavson")
        return C

    def run():
        t = Table(
            "Ablation: Gustavson expansion chunk cap (A*A, RMAT scale 11)",
            ["chunk cap (partial products)", "seconds"],
        )
        default = mxm_mod.GUSTAVSON_CHUNK_FLOPS
        try:
            for cap in (1 << 12, 1 << 16, 1 << 20, 1 << 23, 1 << 26):
                mxm_mod.GUSTAVSON_CHUNK_FLOPS = cap
                t.add(cap, wall(product, repeat=2))
        finally:
            mxm_mod.GUSTAVSON_CHUNK_FLOPS = default
        t.note("too small: per-chunk overhead; too large: giant intermediates")
        emit(t, "ablation_gustavson_chunk")

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_ablation_chunk_results_identical(rmat_small):
    A = rmat_small.structure("FP64")
    default = mxm_mod.GUSTAVSON_CHUNK_FLOPS
    outs = []
    try:
        for cap in (1 << 8, 1 << 14, 1 << 23):
            mxm_mod.GUSTAVSON_CHUNK_FLOPS = cap
            C = Matrix("FP64", A.nrows, A.ncols)
            ops.mxm(C, A, A, "PLUS_TIMES", method="gustavson")
            outs.append(C)
    finally:
        mxm_mod.GUSTAVSON_CHUNK_FLOPS = default
    assert outs[0].isequal(outs[1]) and outs[0].isequal(outs[2])


def test_ablation_direction_threshold(benchmark, rmat_medium):
    def run():
        t = Table(
            "Ablation: push/pull switch threshold (BFS, RMAT scale 11)",
            ["threshold", "seconds", "directions used"],
        )
        for thr in (0.005, 0.02, 0.05, 0.2, 0.8):
            opt = DirectionOptimizer(threshold=thr)
            sec = wall(
                lambda: bfs_level(0, rmat_medium, optimizer=DirectionOptimizer(thr)),
                repeat=3,
            )
            bfs_level(0, rmat_medium, optimizer=opt)
            t.add(thr, sec, "+".join(sorted(set(opt.history))))
        t.note("0.8 never pulls; 0.005 pulls almost immediately")
        emit(t, "ablation_direction_threshold")

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_ablation_dual_storage(benchmark):
    def run():
        t = Table(
            "Ablation: GraphBLAST dual CSR+CSC storage (direction-opt BFS)",
            ["storage", "bytes", "seconds"],
        )
        for dual in (False, True):
            g = rmat_graph(11, 8, seed=7, kind="undirected")
            if dual:
                g.enable_dual_storage()
            sec = wall(
                lambda: bfs_level(0, g, optimizer=DirectionOptimizer(0.03)),
                repeat=3,
            )
            nbytes = g.A.nbytes + (g.A._alt.nbytes if g.A._alt is not None else 0)
            t.add("CSR + CSC (2x)" if dual else "CSR only", nbytes, sec)
        t.note("the paper: an environment variable selects this memory/speed trade")
        emit(t, "ablation_dual_storage")

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_ablation_dual_storage_speedup():
    g1 = rmat_graph(11, 8, seed=7, kind="undirected")
    g2 = rmat_graph(11, 8, seed=7, kind="undirected").enable_dual_storage()
    t_single = wall(lambda: bfs_level(0, g1, optimizer=DirectionOptimizer(0.03)), repeat=3)
    t_dual = wall(lambda: bfs_level(0, g2, optimizer=DirectionOptimizer(0.03)), repeat=3)
    assert t_dual < t_single  # the second copy pays for itself in BFS
