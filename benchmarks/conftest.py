"""Benchmark fixtures: shared workload graphs (built once per session)."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.generators import erdos_renyi_gnp, rmat_graph


@pytest.fixture(scope="session")
def rmat_small():
    """RMAT scale 9 (512 vertices), the quick-turnaround workload."""
    return rmat_graph(9, 8, seed=7, kind="undirected").enable_dual_storage()


@pytest.fixture(scope="session")
def rmat_medium():
    """RMAT scale 11 (2048 vertices), the headline workload."""
    return rmat_graph(11, 8, seed=7, kind="undirected").enable_dual_storage()


@pytest.fixture(scope="session")
def rmat_directed():
    return rmat_graph(10, 8, seed=3, kind="directed")


@pytest.fixture(scope="session")
def er_graph():
    return erdos_renyi_gnp(2000, 0.004, seed=5, kind="undirected")
