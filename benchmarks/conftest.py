"""Benchmark fixtures: shared workload graphs (built once per session)."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.generators import erdos_renyi_gnp, rmat_graph


def pytest_addoption(parser):
    parser.addoption(
        "--telemetry",
        action="store_true",
        default=False,
        help="collect kernel telemetry during benches and attach a "
        "<name>.telemetry.json snapshot next to each results table",
    )


@pytest.fixture(autouse=True)
def _bench_telemetry(request):
    """When --telemetry is on, wrap every bench in a telemetry collector."""
    if not request.config.getoption("--telemetry"):
        yield
        return
    import _common
    from repro.graphblas import telemetry

    _common.TELEMETRY = True
    telemetry.enable()
    try:
        yield
    finally:
        telemetry.disable()


@pytest.fixture(scope="session")
def rmat_small():
    """RMAT scale 9 (512 vertices), the quick-turnaround workload."""
    return rmat_graph(9, 8, seed=7, kind="undirected").enable_dual_storage()


@pytest.fixture(scope="session")
def rmat_medium():
    """RMAT scale 11 (2048 vertices), the headline workload."""
    return rmat_graph(11, 8, seed=7, kind="undirected").enable_dual_storage()


@pytest.fixture(scope="session")
def rmat_directed():
    return rmat_graph(10, 8, seed=3, kind="directed")


@pytest.fixture(scope="session")
def er_graph():
    return erdos_renyi_gnp(2000, 0.004, seed=5, kind="undirected")
