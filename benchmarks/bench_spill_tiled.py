"""Bounded-memory tiled mxm: parity + peak-RSS verdict for spill execution.

Standalone (argparse, not pytest) so CI and developers can run it at any
scale and get a machine-readable JSON verdict:

    PYTHONPATH=src python benchmarks/bench_spill_tiled.py \
        --scale 16 --budget 64m --out BENCH_PR6.json

Two phases:

* **parity** (small scale): an mxm forced over-budget by the governor
  completes transparently via tiled spill and must match unbudgeted
  in-memory execution bit for bit;
* **bounded RSS** (the headline): ``C = A*A`` on an RMAT graph through
  the tiled API with the result streamed stripe by stripe (checksummed,
  never fully materialized).  The peak-RSS increase over the post-setup
  baseline must stay within ``budget * 1.2`` — the acceptance criterion
  — while the pool spills and reloads tiles under a resident budget far
  below the matrix's in-memory product footprint.
"""

from __future__ import annotations

import argparse
import json
import time

_SUFFIX = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def parse_bytes(text: str) -> int:
    text = text.strip().lower()
    scale = 1
    if text and text[-1] in _SUFFIX:
        scale = _SUFFIX[text[-1]]
        text = text[:-1]
    return int(text) * scale


def peak_rss_bytes() -> int:
    """VmHWM (the process peak RSS high-water mark) in bytes."""
    with open("/proc/self/status", encoding="ascii") as f:
        for line in f:
            if line.startswith("VmHWM:"):
                return int(line.split()[1]) << 10
    raise RuntimeError("VmHWM not found in /proc/self/status")


def _weighted_rmat(scale: int, edge_factor: int, seed: int):
    import numpy as np

    from repro.generators import rmat_graph
    from repro.graphblas import Matrix

    A0 = rmat_graph(scale, edge_factor, seed=seed).A
    r, c, _ = A0.extract_tuples()
    rng = np.random.default_rng(seed + 1)
    return Matrix.from_coo(r, c, rng.uniform(-1.0, 1.0, r.size),
                           nrows=A0.nrows, ncols=A0.ncols, dtype="FP64")


def run_parity(scale: int, edge_factor: int) -> dict:
    """Transparent governed tiled mxm == in-memory mxm, bit for bit."""
    from repro.graphblas import Matrix, governor
    from repro.graphblas import operations as ops

    A = _weighted_rmat(scale, edge_factor, seed=7)
    expected = Matrix("FP64", A.nrows, A.ncols)
    ops.mxm(expected, A, A, "PLUS_TIMES")
    C = Matrix("FP64", A.nrows, A.ncols)
    with governor.ExecutionContext(
        memory_budget=1 << 20, spill_budget=1 << 20
    ) as ctx:
        ops.mxm(C, A, A, "PLUS_TIMES")
    assert ctx.stats["tiled"] == 1, "parity op was not routed to tiled"
    er, ec, ev = expected.extract_tuples()
    cr, cc, cv = C.extract_tuples()
    assert (er == cr).all() and (ec == cc).all(), "parity: coordinates differ"
    assert ev.tobytes() == cv.tobytes(), "parity: values not bit-identical"
    return {"scale": scale, "nvals": int(A.nvals), "bit_identical": True}


def run_bounded(scale: int, edge_factor: int, budget: int,
                tile_dim: int = 0) -> dict:
    """Stream C = A*A through tiled spill execution; measure peak RSS."""
    from repro.graphblas import tiled

    import numpy as np

    A = _weighted_rmat(scale, edge_factor, seed=7)
    n, nvals = A.nrows, A.nvals
    a_rows = A.by_row()
    # exact flop count of A*A (sum of B-row lengths over A's entries):
    # the unreduced expansion an in-memory product must hold, and what
    # the budget is being compared against
    rowlen = np.diff(a_rows.indptr)
    flops = int(rowlen[a_rows.minor].sum())
    est_bytes = flops * 24
    # the chunked fold (chunk_bytes) bounds the expansion regardless of
    # tile size, so the grid only needs enough tiles for spill locality
    # — a ~32x32 grid keeps per-stripe scheduling overhead low
    td = tile_dim if tile_dim else max(tiled.MIN_TILE_DIM, n // 32)
    pool_budget = max(1 << 16, budget // 6)

    rss0 = peak_rss_bytes()
    t0 = time.perf_counter()
    with tiled.SpillPool(budget=pool_budget) as pool:
        A_t = tiled.TiledMatrix.from_store(a_rows, td, pool, dtype=A.dtype)
        C_t = tiled.mxm_tiled(A_t, A_t, "PLUS_TIMES", pool=pool,
                              chunk_bytes=budget // 6)
        checksum = 0.0
        out_nvals = 0
        for _, _, vals in C_t.iter_stripes(max_bytes=budget // 8):
            checksum += float(vals.sum())
            out_nvals += int(vals.size)
        stats = dict(pool.stats)
    elapsed = time.perf_counter() - t0
    rss_delta = peak_rss_bytes() - rss0

    assert stats["spills"] > 0, "pool budget never forced a spill"
    within = rss_delta <= budget * 1.2
    return {
        "scale": scale,
        "edge_factor": edge_factor,
        "n": n,
        "nvals": nvals,
        "out_nvals": out_nvals,
        "checksum": checksum,
        "budget_bytes": budget,
        "est_inmemory_bytes": int(est_bytes),
        "tile_dim": int(td),
        "grid": [A_t.grid_rows, A_t.grid_cols],
        "pool_budget_bytes": int(pool_budget),
        "spills": stats["spills"],
        "reloads": stats["reloads"],
        "spilled_bytes": stats["spilled_bytes"],
        "reloaded_bytes": stats["reloaded_bytes"],
        "elapsed_s": elapsed,
        "peak_rss_delta_bytes": int(rss_delta),
        "rss_within_budget": bool(within),
    }


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=16,
                        help="RMAT scale (2**scale vertices)")
    parser.add_argument("--edge-factor", type=int, default=8)
    parser.add_argument("--budget", default="64m",
                        help="memory budget (k/m/g suffixes)")
    parser.add_argument("--parity-scale", type=int, default=12,
                        help="scale for the bit-parity phase")
    parser.add_argument("--tile-dim", type=int, default=0,
                        help="tile edge (0 = n/32)")
    parser.add_argument("--out", default="BENCH_PR6.json")
    args = parser.parse_args(argv)
    budget = parse_bytes(args.budget)

    results = {"budget": args.budget, "budget_bytes": budget}
    results["parity"] = run_parity(args.parity_scale, args.edge_factor)
    print(f"parity @ scale {args.parity_scale}: bit-identical")

    results["bounded"] = b = run_bounded(args.scale, args.edge_factor,
                                         budget, args.tile_dim)
    print(
        f"bounded @ scale {args.scale}: grid={b['grid']} "
        f"tile_dim={b['tile_dim']} spills={b['spills']} "
        f"reloads={b['reloads']} elapsed={b['elapsed_s']:.2f}s"
    )
    print(
        f"peak RSS delta {b['peak_rss_delta_bytes'] / (1 << 20):.1f} MiB vs "
        f"budget {budget / (1 << 20):.0f} MiB "
        f"(in-memory estimate {b['est_inmemory_bytes'] / (1 << 20):.1f} MiB): "
        f"{'WITHIN' if b['rss_within_budget'] else 'OVER'} budget*1.2"
    )
    assert b["rss_within_budget"], "peak RSS exceeded budget * 1.2"

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(results, f, indent=2, sort_keys=True)
    print(f"wrote {args.out}")
    return results


if __name__ == "__main__":
    main()
