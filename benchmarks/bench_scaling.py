"""S1 — scaling shapes: near-linear growth of the core algorithms.

Not a table in the paper, but the paper's central *hypothesis* (section
III): "a linear algebra implementation brings inherent efficiency
advantages ... due to the more structured access to data".  The measurable
shape on this substrate: core algorithm time grows near-linearly with
edges on RMAT graphs (flat work per edge), because every kernel is a
vectorized sweep rather than pointer chasing.
"""

import pytest

from _common import emit, wall
from repro.generators import rmat_graph
from repro.lagraph import (
    bfs_level,
    connected_components,
    pagerank,
    triangle_count,
)

SCALES = [8, 9, 10, 11]


@pytest.fixture(scope="module")
def graphs():
    out = {}
    for s in SCALES:
        g = rmat_graph(s, 8, seed=7, kind="undirected")
        g.enable_dual_storage()
        g.AT  # warm caches so the table measures the algorithms
        out[s] = g
    return out


ALGOS = {
    "BFS (level)": lambda g: bfs_level(0, g),
    "PageRank": lambda g: pagerank(g, tol=1e-6)[0],
    "Connected components": connected_components,
    "Triangle count": lambda g: triangle_count(g, "sandia_ll"),
}


def test_scaling_table(benchmark, graphs):
    def run():
        from repro.harness import Table

        t = Table(
            "S1: algorithm scaling across RMAT scales (edge_factor 8)",
            ["scale", "vertices", "edges"] + list(ALGOS),
        )
        for s in SCALES:
            g = graphs[s]
            row = [s, g.n, g.nedges]
            for fn in ALGOS.values():
                row.append(wall(fn, g, repeat=2))
            t.add(*row)
        t.note("shape target: near-linear growth in edges (vectorized sweeps)")
        emit(t, "scaling")

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("name", list(ALGOS))
def test_scaling_is_subquadratic(graphs, name):
    """8x the edges must cost far less than 64x the time (subquadratic)."""
    fn = ALGOS[name]
    t_small = wall(fn, graphs[8], repeat=2)
    t_large = wall(fn, graphs[11], repeat=2)
    edge_ratio = graphs[11].nedges / graphs[8].nedges
    assert t_large / max(t_small, 1e-6) < edge_ratio**2 / 2, name


@pytest.mark.parametrize("scale", SCALES)
def test_bench_scaling_bfs(benchmark, graphs, scale):
    benchmark(lambda: bfs_level(0, graphs[scale]))
