"""T2 — Table II: lines-of-code comparison.

The paper's Table II counts application lines (cloc) for three algorithms
in Ligra, GraphIt, and GraphBLAS (GraphBLAST).  We apply the same counting
rule to *our* GraphBLAS-based implementations and print the table with the
paper's published baselines alongside.

The reproduction target is the *shape*: the GraphBLAS formulation stays in
the same few-dozen-lines class as the DSL (GraphIt) and far below the
hand-rolled framework (Ligra) for the harder algorithms.
"""

import pytest

from _common import emit
from repro.harness import Table, count_function_loc
from repro.lagraph.compact import (
    bfs_levels_compact,
    local_clustering_compact,
    sssp_compact,
)

# Table II of the paper, verbatim.
PAPER = {
    "Breadth-first-search": {"ligra": 29, "graphit": 22, "graphblas": 25},
    "Single-source shortest-path": {"ligra": 55, "graphit": 25, "graphblas": 25},
    "Local graph clustering": {"ligra": 84, "graphit": None, "graphblas": 45},
}

# Table II counts single-purpose *application* code, so the comparison
# subjects are the plain variants of repro.lagraph.compact (the library's
# full-featured versions fold several algorithms into one function).
OURS = {
    "Breadth-first-search": bfs_levels_compact,
    "Single-source shortest-path": sssp_compact,
    "Local graph clustering": local_clustering_compact,
}


def test_table2_loc(benchmark):
    def run():
        t = Table(
            "Table II reproduction: lines of application code per algorithm",
            ["algorithm", "Ligra", "GraphIt", "GraphBLAS (paper)", "this repo"],
        )
        for name, row in PAPER.items():
            t.add(
                name,
                row["ligra"],
                row["graphit"] if row["graphit"] is not None else "N/A",
                row["graphblas"],
                count_function_loc(OURS[name]),
            )
        t.note("Ligra/GraphIt/GraphBLAS columns are the paper's published counts")
        t.note("'this repo' counts our Python implementation with the same rule")
        emit(t, "table2_loc")

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("name", list(PAPER))
def test_loc_stays_in_graphblas_class(name):
    """Our count must stay within ~2x of the paper's GraphBLAS column and
    below Ligra's count for the algorithms where GraphBLAS wins on paper."""
    ours = count_function_loc(OURS[name])
    paper_gb = PAPER[name]["graphblas"]
    assert ours <= 2 * paper_gb, (name, ours)
    if PAPER[name]["ligra"] > paper_gb:
        assert ours < PAPER[name]["ligra"], (name, ours)
